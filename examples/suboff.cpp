// DARPA-Suboff-like submarine hull in a towing channel (paper §V-B,
// Fig. 18).  Demonstrates the full pre-processing pipeline: generate the
// hull as a body of revolution, round-trip it through STL (the CAD input
// path), voxelize it into the lattice, then run the flow and extract the
// drag force and the fields shown in the paper's figure.
//
// Usage: suboff [lengthCells] [steps]   (default L=96, 1200 steps)
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "core/observables.hpp"
#include "core/solver.hpp"
#include "io/ppm.hpp"
#include "io/vtk.hpp"
#include "mesh/stl.hpp"
#include "mesh/voxelizer.hpp"

using namespace swlb;

int main(int argc, char** argv) {
  const int hullLen = argc > 1 ? std::atoi(argv[1]) : 96;
  const int steps = argc > 2 ? std::atoi(argv[2]) : 1200;
  const Real maxRadius = hullLen / 11.6;  // Suboff L/D ~ 8.6 => R ~ L/17; padded
  const int nx = 2 * hullLen, ny = static_cast<int>(6 * maxRadius),
            nz = static_cast<int>(6 * maxRadius);
  const Real uIn = 0.05;

  // --- pre-processing: CAD-style geometry through the STL pipeline ------
  mesh::TriangleMesh hull = mesh::make_suboff(hullLen, maxRadius);
  mesh::write_stl_binary("suboff.stl", hull, "suboff-like hull");
  const mesh::TriangleMesh loaded = mesh::read_stl("suboff.stl");
  std::cout << "Hull: " << loaded.size() << " triangles, surface area "
            << loaded.surfaceArea() << " cells^2 (via suboff.stl)\n";

  CollisionConfig collision;
  collision.omega = 1.7;  // moderate Re; LES keeps it stable
  collision.les = true;
  collision.smagorinskyCs = 0.12;

  Solver<D3Q19> solver(Grid(nx, ny, nz), collision,
                       Periodicity{false, true, true});
  const auto inlet = solver.materials().addVelocityInlet({uIn, 0, 0});
  const auto outlet = solver.materials().addOutflow({-1, 0, 0});
  solver.paint({{0, 0, 0}, {1, ny, nz}}, inlet);
  solver.paint({{nx - 1, 0, 0}, {nx, ny, nz}}, outlet);
  // Dedicated material id for the hull: the force probe must not include
  // the tank walls (also bounce-back cells).
  const auto hullMat = solver.materials().add(
      Material{CellClass::Solid, {0, 0, 0}, 1.0, {0, 0, 0}});

  // Voxelize the hull at lattice resolution and drop it 1/4 into the tank.
  const mesh::VoxelGrid voxels = mesh::voxelize(
      loaded, {hullLen, static_cast<int>(2 * maxRadius) + 2,
               static_cast<int>(2 * maxRadius) + 2},
      {0, -maxRadius - 1, -maxRadius - 1}, 1.0);
  voxels.paint(solver.mask(), hullMat,
               {nx / 4, ny / 2 - static_cast<int>(maxRadius) - 1,
                nz / 2 - static_cast<int>(maxRadius) - 1});
  std::cout << "Voxelized hull: " << voxels.solidCount() << " solid cells\n";

  solver.finalizeMask();
  solver.initUniform(1.0, {uIn, 0, 0});

  const double mlups = solver.runMeasured(steps);
  const Vec3 force = momentum_exchange_force<D3Q19>(
      solver.f(), solver.mask(), solver.materials(), hullMat);
  const Real frontalArea = std::numbers::pi_v<Real> * maxRadius * maxRadius;
  const Real cd = force.x / (0.5 * uIn * uIn * frontalArea);

  std::cout << "Ran " << steps << " steps at " << mlups << " MLUPS\n"
            << "Drag force (lattice) = " << force.x << ", Cd(frontal) = " << cd
            << "\n";

  // Fig. 18-style output: velocity/pressure contours + Q-criterion.
  ScalarField rho(solver.grid());
  VectorField u(solver.grid());
  solver.computeMacroscopic(rho, u);
  ScalarField q(solver.grid());
  q_criterion(u, q);

  io::write_ppm_velocity_slice("suboff_velocity.ppm", u, nz / 2, 1.5 * uIn);
  io::write_ppm_slice("suboff_pressure.ppm", rho, nz / 2, 0, 0,
                      io::Colormap::BlueWhiteRed);
  io::write_ppm_slice("suboff_qcriterion.ppm", q, nz / 2, -1e-6, 1e-6,
                      io::Colormap::BlueWhiteRed);
  io::VtkWriter vtk(solver.grid());
  vtk.addScalar("density", rho);
  vtk.addVector("velocity", u);
  vtk.addScalar("qcriterion", q);
  vtk.write("suboff.vtk");
  std::cout << "Wrote suboff.stl, suboff_velocity.ppm, suboff_pressure.ppm, "
               "suboff_qcriterion.ppm, suboff.vtk\n";

  // Sanity: positive drag, wake slower than free stream.
  const Vec3 wake = solver.velocity(nx / 4 + hullLen + 4, ny / 2, nz / 2);
  std::cout << "Wake velocity = " << wake.x << " (free stream " << uIn << ")\n";
  return force.x > 0 && wake.x < uIn ? 0 : 1;
}
