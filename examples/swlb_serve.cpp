// Multi-tenant simulation daemon (DESIGN.md §12): the swlb::serve Server
// exposed over an AF_UNIX socket with the line-delimited flat-JSON
// protocol.
//
// Usage:
//   swlb_serve --socket PATH [--workers N] [--quantum STEPS]
//              [--max-resident N] [--ckpt-dir DIR]
//       Run the daemon until a client sends {"op":"shutdown"}.
//
//   swlb_serve --connect PATH
//       Minimal client: request lines from stdin go to the daemon, event
//       lines from the daemon go to stdout.  Example session:
//         {"op":"submit","tenant":"acme","steps":100,"cfg.case":"cavity",
//          "cfg.nx":"16","cfg.ny":"16","cfg.nz":"16"}
//         {"op":"status","job":1}
//         {"op":"shutdown"}
//
//   swlb_serve --smoke CLIENTS JOBS
//       Self-contained CI smoke: daemon on a scratch socket, CLIENTS
//       concurrent client connections each submitting JOBS cavity jobs,
//       wait for every job to finish, shut down cleanly, and fail unless
//       all jobs completed and zero serve_job*.ckpt files remain.
#include <atomic>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "serve/server.hpp"
#include "serve/socket.hpp"

using namespace swlb;
using namespace swlb::serve;

namespace {

constexpr const char* kUsage =
    "usage: swlb_serve --socket PATH [--workers N] [--quantum STEPS]\n"
    "                  [--max-resident N] [--ckpt-dir DIR]\n"
    "       swlb_serve --connect PATH\n"
    "       swlb_serve --smoke CLIENTS JOBS\n";

int runDaemon(const ServerConfig& cfg, const std::string& path) {
  Server server(cfg);
  std::cout << "swlb_serve: listening on " << path << " (" << cfg.workers
            << " workers, quantum " << cfg.quantumSteps << " steps, "
            << cfg.maxResident << " resident)" << std::endl;
  serve_unix(server, path);
  std::cout << "swlb_serve: shut down" << std::endl;
  return 0;
}

int runClient(const std::string& path) {
  LineStream stream(connect_unix(path));
  std::atomic<bool> done{false};
  std::thread reader([&] {
    while (const auto line = stream.readLine()) std::cout << *line << "\n";
    done = true;
  });
  std::string line;
  while (!done && std::getline(std::cin, line)) {
    if (line.empty()) continue;
    if (!stream.writeLine(line)) break;
  }
  stream.close();
  reader.join();
  return 0;
}

/// One smoke client: submit `jobs` small cavity jobs over its own
/// connection, then read events until every one of them is done.
bool smokeClient(const std::string& path, int index, int jobs) {
  LineStream stream(connect_unix(path));
  for (int j = 0; j < jobs; ++j) {
    WireMap req;
    req["op"] = WireValue::ofString("submit");
    req["tenant"] = WireValue::ofString("smoke" + std::to_string(index));
    req["steps"] = WireValue::ofNumber(40);
    req["priority"] = WireValue::ofNumber(1 + (index + j) % 3);
    req["cfg.case"] = WireValue::ofString("cavity");
    req["cfg.nx"] = WireValue::ofString("12");
    req["cfg.ny"] = WireValue::ofString("12");
    req["cfg.nz"] = WireValue::ofString("12");
    if (!stream.writeLine(encode_line(req))) return false;
  }
  int accepted = 0, finished = 0;
  while (finished < jobs) {
    const auto line = stream.readLine();
    if (!line) return false;
    const WireMap ev = decode_line(*line);
    const std::string kind = wire_string(ev, "event", "");
    if (kind == "accepted") ++accepted;
    if (kind == "done") ++finished;
    if (kind == "failed" || kind == "rejected" || kind == "error") {
      std::cerr << "smoke client " << index << ": " << *line << "\n";
      return false;
    }
  }
  return accepted == jobs;
}

int runSmoke(int clients, int jobs) {
  const std::string dir = "swlb_serve_smoke";
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/daemon.sock";

  ServerConfig cfg;
  cfg.workers = 2;
  cfg.quantumSteps = 10;
  cfg.maxResident = 2;
  cfg.admission.maxActive = 8;
  cfg.admission.maxQueueDepth =
      static_cast<std::size_t>(clients) * static_cast<std::size_t>(jobs);
  cfg.admission.maxPerTenant = static_cast<std::size_t>(jobs);
  cfg.checkpointDir = dir;
  Server server(cfg);
  std::thread daemon([&] { serve_unix(server, path); });
  // serve_unix binds before accepting; wait for the socket file.
  for (int i = 0; i < 200 && !std::filesystem::exists(path); ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(10));

  std::atomic<int> ok{0};
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c)
    threads.emplace_back([&, c] {
      try {
        if (smokeClient(path, c, jobs)) ++ok;
      } catch (const std::exception& e) {
        std::cerr << "smoke client " << c << ": " << e.what() << "\n";
      }
    });
  for (auto& t : threads) t.join();

  {
    LineStream ctl(connect_unix(path));
    WireMap req;
    req["op"] = WireValue::ofString("shutdown");
    ctl.writeLine(encode_line(req));
    ctl.readLine();  // "bye"
  }
  daemon.join();

  int debris = 0;
  for (const auto& e : std::filesystem::directory_iterator(dir))
    if (e.path().filename().string().rfind("serve_job", 0) == 0) ++debris;
  std::filesystem::remove_all(dir);

  const bool pass = ok == clients && debris == 0;
  std::cout << "smoke: " << ok << "/" << clients << " clients ok, " << debris
            << " checkpoint files left -> " << (pass ? "PASS" : "FAIL")
            << std::endl;
  return pass ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    std::string socketPath, connectPath;
    int smokeClients = 0, smokeJobs = 0;
    ServerConfig cfg;
    for (int i = 1; i < argc; ++i) {
      const std::string a = argv[i];
      auto next = [&]() -> std::string {
        if (i + 1 >= argc) throw Error(a + " needs a value");
        return argv[++i];
      };
      if (a == "--socket") {
        socketPath = next();
      } else if (a == "--connect") {
        connectPath = next();
      } else if (a == "--smoke") {
        smokeClients = std::stoi(next());
        smokeJobs = std::stoi(next());
      } else if (a == "--workers") {
        cfg.workers = std::stoi(next());
      } else if (a == "--quantum") {
        cfg.quantumSteps = static_cast<std::uint64_t>(std::stoul(next()));
      } else if (a == "--max-resident") {
        cfg.maxResident = static_cast<std::size_t>(std::stoul(next()));
      } else if (a == "--ckpt-dir") {
        cfg.checkpointDir = next();
      } else {
        std::cerr << kUsage;
        return 2;
      }
    }
    if (!socketPath.empty()) return runDaemon(cfg, socketPath);
    if (!connectPath.empty()) return runClient(connectPath);
    if (smokeClients > 0) return runSmoke(smokeClients, smokeJobs);
    std::cerr << kUsage;
    return 2;
  } catch (const Error& e) {
    std::cerr << "swlb_serve: " << e.what() << "\n";
    return 1;
  }
}
