// Quickstart: 3-D lid-driven cavity with the SunwayLB-reproduction API.
//
//   * build a Solver over a closed box (default boundary = no-slip walls)
//   * mark the top layer as a moving wall (the lid)
//   * run, report MLUPS, and write PPM / VTK output
//
// Usage: quickstart [N] [steps]   (default 48^3, 400 steps)
#include <cstdlib>
#include <iostream>

#include "core/observables.hpp"
#include "core/solver.hpp"
#include "core/units.hpp"
#include "io/ppm.hpp"
#include "io/vtk.hpp"

using namespace swlb;

int main(int argc, char** argv) {
  const int n = argc > 1 ? std::atoi(argv[1]) : 48;
  const int steps = argc > 2 ? std::atoi(argv[2]) : 400;

  // Physical setup: a 1 m cavity of glycerine-like fluid, lid at 1 m/s,
  // Re = 100.  The converter derives the lattice parameters and checks
  // stability.
  UnitConverter units(/*L=*/1.0, /*U=*/1.0, /*nu=*/0.01, /*rho=*/1260.0,
                      /*resolution=*/n, /*uLattice=*/0.08);
  std::cout << "Lid-driven cavity, Re = " << units.reynolds()
            << ", tau = " << units.tau() << ", " << n << "^3 cells\n";

  CollisionConfig collision;
  collision.omega = units.omega();

  Solver<D3Q19> solver(Grid(n, n, n), collision);
  const auto lid =
      solver.materials().addMovingWall({units.latticeVelocity(), 0, 0});
  solver.paint({{0, 0, n - 1}, {n, n, n}}, lid);
  solver.finalizeMask();
  solver.initUniform(1.0, {0, 0, 0});

  const double mlups = solver.runMeasured(steps);
  std::cout << "Ran " << steps << " steps at " << mlups << " MLUPS\n";

  // Post-processing: velocity magnitude on the mid-plane + full VTK dump.
  ScalarField rho(solver.grid());
  VectorField u(solver.grid());
  solver.computeMacroscopic(rho, u);

  io::write_ppm_velocity_slice("cavity_midplane.ppm", u, n / 2,
                               units.latticeVelocity());
  io::VtkWriter vtk(solver.grid(), units.dx());
  vtk.addScalar("density", rho);
  vtk.addVector("velocity", u);
  vtk.write("cavity.vtk");

  // The primary cavity vortex: fluid below the lid moves with it, the
  // return flow at the bottom runs against it.
  const Vec3 nearLid = solver.velocity(n / 2, n / 2, n - 2);
  const Vec3 nearBottom = solver.velocity(n / 2, n / 2, 1);
  std::cout << "u_x under lid:   " << units.toPhysVelocity(nearLid.x) << " m/s\n"
            << "u_x near bottom: " << units.toPhysVelocity(nearBottom.x)
            << " m/s\n"
            << "Wrote cavity_midplane.ppm and cavity.vtk\n";
  return nearLid.x > 0 && nearBottom.x < 0 ? 0 : 1;
}
