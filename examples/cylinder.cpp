// Flow past a circular cylinder — the paper's main validation case
// (§V-A1, Fig. 12 shows the Re=3900 DNS).  This scaled-down 2-D run at
// Re = 100 develops the classic Karman vortex street; we measure the
// drag coefficient and Strouhal number with the momentum-exchange method
// and write Q-criterion / vorticity fields like the paper's figures.
//
// Usage: cylinder [diameterCells] [steps]   (default D=20, 16000 steps)
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "core/observables.hpp"
#include "core/solver.hpp"
#include "io/csv.hpp"
#include "io/ppm.hpp"
#include "io/vtk.hpp"

using namespace swlb;

int main(int argc, char** argv) {
  const int d = argc > 1 ? std::atoi(argv[1]) : 20;     // cylinder diameter
  const int steps = argc > 2 ? std::atoi(argv[2]) : 16000;
  const int nx = 22 * d, ny = 9 * d;
  const Real uIn = 0.08;
  const Real re = 100.0;
  const Real nu = uIn * d / re;

  CollisionConfig collision;
  collision.omega = omega_from_tau(tau_from_viscosity(nu));
  std::cout << "Cylinder, Re = " << re << ", D = " << d << " cells, domain "
            << nx << "x" << ny << ", tau = " << 1.0 / collision.omega << "\n";

  Solver<D2Q9> solver(Grid(nx, ny, 1), collision, Periodicity{false, false, true});
  const auto inlet = solver.materials().addVelocityInlet({uIn, 0, 0});
  const auto outlet = solver.materials().addOutflow({-1, 0, 0});
  solver.paint({{0, 0, 0}, {1, ny, 1}}, inlet);
  solver.paint({{nx - 1, 0, 0}, {nx, ny, 1}}, outlet);
  // Dedicated material id for the cylinder so the momentum-exchange force
  // sums only over its surface (the domain walls are also bounce-back).
  const auto cyl = solver.materials().add(Material{CellClass::Solid, {0, 0, 0}, 1.0, {0, 0, 0}});

  // Cylinder slightly off-centre to trigger the vortex street sooner.
  const Real cx = 5.0 * d, cy = ny / 2.0 + 0.5;
  for (int y = 0; y < ny; ++y)
    for (int x = 0; x < nx; ++x) {
      const Real dx = x + 0.5 - cx, dy = y + 0.5 - cy;
      if (dx * dx + dy * dy < d * d / 4.0) solver.mask()(x, y, 0) = cyl;
    }
  solver.finalizeMask();
  solver.initField([&](int, int y, int, Real& rho, Vec3& u) {
    rho = 1.0;
    u = {uIn * (1.0 + 1e-3 * std::sin(0.1 * y)), 0, 0};  // seed asymmetry
  });

  // Warm up, then record force history for Cd and Strouhal.
  const int warmup = steps / 2;
  solver.run(warmup);
  io::CsvWriter history("cylinder_forces.csv", {"step", "cd", "cl"});
  std::vector<Real> lift;
  Real cdSum = 0;
  const Real dyn = 0.5 * 1.0 * uIn * uIn * d;  // 0.5 rho U^2 D (per unit depth)
  for (int s = warmup; s < steps; ++s) {
    solver.step();
    const Vec3 f = momentum_exchange_force<D2Q9>(solver.f(), solver.mask(),
                                                 solver.materials(), cyl);
    const Real cd = f.x / dyn, cl = f.y / dyn;
    history.row({static_cast<Real>(s), cd, cl});
    lift.push_back(cl);
    cdSum += cd;
  }
  const Real cdMean = cdSum / static_cast<Real>(lift.size());

  // Strouhal from zero crossings of the lift signal.
  int crossings = 0;
  int first = -1, last = -1;
  for (std::size_t i = 1; i < lift.size(); ++i) {
    if ((lift[i - 1] < 0) != (lift[i] < 0)) {
      ++crossings;
      if (first < 0) first = static_cast<int>(i);
      last = static_cast<int>(i);
    }
  }
  Real strouhal = 0;
  if (crossings >= 3) {
    const Real period = 2.0 * (last - first) / (crossings - 1);
    strouhal = d / (period * uIn);
  }

  std::cout << "mean Cd = " << cdMean << "  (literature ~1.3-1.5 at Re=100)\n"
            << "Strouhal = " << strouhal << "  (literature ~0.16-0.17)\n";

  // Fig. 12-style post-processing: Q-criterion and vorticity.
  ScalarField rho(solver.grid());
  VectorField u(solver.grid());
  solver.computeMacroscopic(rho, u);
  ScalarField q(solver.grid());
  VectorField curl(solver.grid());
  q_criterion(u, q);
  vorticity(u, curl);
  io::write_ppm_slice("cylinder_qcriterion.ppm", q, 0, -1e-5, 1e-5,
                      io::Colormap::BlueWhiteRed);
  io::write_ppm_slice("cylinder_vorticity.ppm", curl.z(), 0, -0.02, 0.02,
                      io::Colormap::BlueWhiteRed);
  io::VtkWriter vtk(solver.grid());
  vtk.addVector("velocity", u);
  vtk.addScalar("qcriterion", q);
  vtk.write("cylinder.vtk");
  std::cout << "Wrote cylinder_forces.csv, cylinder_qcriterion.ppm, "
               "cylinder_vorticity.ppm, cylinder.vtk\n";

  const bool ok = cdMean > 1.0 && cdMean < 2.0 && strouhal > 0.1 && strouhal < 0.25;
  return ok ? 0 : 1;
}
