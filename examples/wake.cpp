// Wake simulation (paper Fig. 16's second strong-scaling case): flow over
// a row of porous actuator disks — the standard abstraction of wind
// turbines in wake/wind-farm studies.  Exercises the porous partial
// bounce-back model, the sponge outflow buffer, and the running flow
// statistics (mean velocity deficit + turbulence intensity per disk).
//
// Usage: wake [ny] [steps]   (default 48, 3000)
#include <cmath>
#include <cstdlib>
#include <iostream>

#include "core/solver.hpp"
#include "core/sponge.hpp"
#include "core/statistics.hpp"
#include "io/csv.hpp"
#include "io/ppm.hpp"

using namespace swlb;

int main(int argc, char** argv) {
  const int ny = argc > 1 ? std::atoi(argv[1]) : 48;
  const int steps = argc > 2 ? std::atoi(argv[2]) : 3000;
  const int nx = 6 * ny;
  const Real uIn = 0.06;

  CollisionConfig cfg;
  cfg.omega = 1.7;
  cfg.les = true;  // wakes at this effective Re need the subgrid model
  cfg.smagorinskyCs = 0.14;

  Solver<D2Q9> solver(Grid(nx, ny, 1), cfg, Periodicity{false, true, true});
  const auto in = solver.materials().addVelocityInlet({uIn, 0, 0});
  const auto out = solver.materials().addOutflow({-1, 0, 0});
  solver.paint({{0, 0, 0}, {1, ny, 1}}, in);
  solver.paint({{nx - 1, 0, 0}, {nx, ny, 1}}, out);

  // Three staggered actuator disks (solidity 0.12), like a turbine row.
  const auto disk = solver.materials().addPorous(0.12);
  const int d = ny / 3;
  const int diskX[3] = {ny, 5 * ny / 2, 4 * ny};
  const int diskY[3] = {ny / 2 - d / 2, ny / 3 - d / 2, ny / 2 - d / 2};
  for (int k = 0; k < 3; ++k)
    solver.paint({{diskX[k], diskY[k], 0}, {diskX[k] + 2, diskY[k] + d, 1}}, disk);

  solver.finalizeMask();
  solver.initField([&](int, int y, int, Real& rho, Vec3& u) {
    rho = 1.0;
    u = {uIn * (1 + Real(1e-3) * std::sin(Real(0.37) * y)), 0, 0};
  });

  SpongeZone sponge;
  sponge.box = {{nx - ny / 2, 0, 0}, {nx - 1, ny, 1}};
  sponge.maxStrength = 0.15;
  sponge.targetU = {uIn, 0, 0};

  // Develop the flow, then average.
  FlowStatistics stats(solver.grid());
  ScalarField rho(solver.grid());
  VectorField u(solver.grid());
  for (int s = 0; s < steps; ++s) {
    solver.step();
    apply_sponge<D2Q9>(solver.f(), sponge);
    if (s >= steps / 2 && s % 5 == 0) {
      solver.computeMacroscopic(rho, u);
      stats.accumulate(rho, u);
    }
  }
  std::cout << "wake run: " << nx << "x" << ny << ", " << steps << " steps, "
            << stats.samples() << " statistics samples\n";

  // Mean centreline velocity deficit and turbulence intensity downstream
  // of each disk (the quantities wind-farm studies report).
  io::CsvWriter csv("wake_profile.csv", {"x", "mean_u", "tke"});
  for (int x = 1; x < nx - 1; x += 2) {
    const int y = ny / 2;
    csv.row({static_cast<Real>(x), stats.meanVelocity(x, y, 0).x,
             stats.turbulentKineticEnergy(x, y, 0)});
  }
  bool deficitsOk = true;
  for (int k = 0; k < 3; ++k) {
    const int probeX = diskX[k] + 5 * d / 2;  // past the near-wake bubble
    const int probeY = diskY[k] + d / 2;
    const Real meanU = stats.meanVelocity(probeX, probeY, 0).x;
    const Real ti = std::sqrt(std::max<Real>(
                        0, 2.0 / 3.0 * stats.turbulentKineticEnergy(
                                           probeX, probeY, 0))) /
                    uIn;
    std::cout << "disk " << k << ": wake u/U = " << meanU / uIn
              << ", turbulence intensity = " << ti << "\n";
    deficitsOk = deficitsOk && meanU < uIn;
  }

  solver.computeMacroscopic(rho, u);
  io::write_ppm_velocity_slice("wake_velocity.ppm", u, 0, 1.3 * uIn);
  std::cout << "Wrote wake_profile.csv, wake_velocity.ppm\n";
  return deficitsOk ? 0 : 1;
}
