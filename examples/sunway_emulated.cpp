// Run one core-group block through the emulated SW26010 / SW26010-Pro CPE
// cluster and print the REG-LDM-MEM traffic report — the view a Sunway
// performance engineer works from (paper §IV-C2/D2).
//
// Usage: sunway_emulated [nx ny nz]   (default 64 x 64 x 16)
#include <cstdlib>
#include <iostream>

#include "core/kernels.hpp"
#include "perf/report.hpp"
#include "perf/sw_estimate.hpp"
#include "sw/sw_kernels.hpp"

using namespace swlb;

namespace {

sw::SwKernelReport runOn(const sw::MachineSpec& machine, int chunkX,
                         const PopulationField& src, PopulationField& dst,
                         const MaskField& mask, const MaterialTable& mats) {
  sw::CpeCluster cluster(machine.cg);
  sw::SwKernelConfig cfg;
  cfg.collision.omega = 1.6;
  cfg.chunkX = chunkX;
  return sw::sw_stream_collide<D3Q19>(cluster, src, dst, mask, mats, cfg);
}

}  // namespace

int main(int argc, char** argv) {
  const int nx = argc > 1 ? std::atoi(argv[1]) : 64;
  const int ny = argc > 2 ? std::atoi(argv[2]) : 64;
  const int nz = argc > 3 ? std::atoi(argv[3]) : 16;

  Grid grid(nx, ny, nz);
  PopulationField src(grid, D3Q19::Q), dst(grid, D3Q19::Q);
  MaskField mask(grid, MaterialTable::kFluid);
  MaterialTable mats;

  // A lid-driven-cavity-like state: closed box, moving top wall.
  const auto lid = mats.addMovingWall({0.05, 0, 0});
  for (int y = 0; y < ny; ++y)
    for (int x = 0; x < nx; ++x) mask(x, y, nz - 1) = lid;
  fill_halo_mask(mask, Periodicity{}, MaterialTable::kSolid);
  Real feq[D3Q19::Q];
  equilibria<D3Q19>(1.0, {0, 0, 0}, feq);
  for (int q = 0; q < D3Q19::Q; ++q)
    for (int z = -1; z <= nz; ++z)
      for (int y = -1; y <= ny; ++y)
        for (int x = -1; x <= nx; ++x) src(q, x, y, z) = feq[q];

  perf::printHeading("Emulated CPE-cluster step, " + std::to_string(nx) + "x" +
                     std::to_string(ny) + "x" + std::to_string(nz) + " block");
  perf::Table t({"machine", "chunkX", "LDM high-water", "DMA bytes/cell",
                 "DMA transactions", "fabric KiB", "ghost rows fabric/DMA",
                 "modeled DMA ms", "est. MLUPS/CG", "bound"});
  for (const auto& [machine, chunk] :
       {std::pair{sw::MachineSpec::sw26010(), 32},
        std::pair{sw::MachineSpec::sw26010pro(), std::min(nx, 128)}}) {
    const auto rep = runOn(machine, chunk, src, dst, mask, mats);
    const auto est =
        perf::estimate_sw_step(rep, machine.cg, perf::LbmCostModel{}, 0.9);
    t.addRow({machine.name, std::to_string(chunk),
              std::to_string(rep.ldmHighWater) + " B",
              perf::Table::num(rep.dmaBytesPerCell(), 1),
              std::to_string(rep.dma.transactions()),
              perf::Table::num(rep.fabric.bytes / 1024.0, 1),
              std::to_string(rep.boundaryRowsViaFabric) + "/" +
                  std::to_string(rep.boundaryRowsViaDma),
              perf::Table::num(rep.dmaSeconds * 1e3, 3),
              perf::Table::num(est.mlups, 1),
              est.memoryBound() ? "memory" : "compute"});
  }
  t.print();

  // Prove the emulated result matches the reference kernel.
  PopulationField ref(grid, D3Q19::Q);
  CollisionConfig col;
  col.omega = 1.6;
  stream_collide_fused<D3Q19>(src, ref, mask, mats, col, grid.interior());
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < ref.size(); ++i)
    if (ref.data()[i] != dst.data()[i]) ++mismatches;
  std::cout << "\nEmulated vs reference kernel: " << mismatches
            << " mismatching values (expect 0)\n";
  return mismatches == 0 ? 0 : 1;
}
