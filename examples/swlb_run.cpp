// Config-file driver: the framework front end.  Reads a `key = value`
// case description, runs it, and writes the requested outputs — the
// "holistic solution" entry point of the paper's Fig. 4 framework.
//
// Usage: swlb_run <config-file> [--trace out.json] [--tune]
//                 [--tuning-cache cache.json]
//        swlb_run --demo [--trace out.json] [--tune] [...]
//
// --trace records every solver phase (periodic wrap, fused kernel,
// checkpoint writes) on a Chrome trace-event timeline; open the file in
// chrome://tracing or https://ui.perfetto.dev (DESIGN.md §6).
//
// --tune runs the auto-tuner (DESIGN.md §9) for this case's problem shape
// before the run and prints the resulting plan: halo scheduling, the
// collective ring threshold, the CPE LDM chunk width and the storage
// precision advisory.  With --tuning-cache the plan is read from /
// written to the given swlb-tune-v1 JSON file, so a second identical run
// reports a cache hit and skips the search.
//
// Example config:
//   case = cylinder
//   nx = 240
//   ny = 120
//   nz = 12
//   steps = 2000
//   viscosity = 0.01
//   operator = trt
//   inlet_velocity = 0.06
//   vtk = true
//   ppm = true
//   output_prefix = cyl
//   checkpoint_interval = 1000
#include <cstring>
#include <iostream>
#include <sstream>

#include "app/cases.hpp"
#include "core/observables.hpp"
#include "io/checkpoint_controller.hpp"
#include "io/ppm.hpp"
#include "io/vtk.hpp"
#include "obs/context.hpp"
#include "obs/trace.hpp"
#include "tune/tuner.hpp"

using namespace swlb;

namespace {
constexpr const char* kUsage =
    "usage: swlb_run <config-file> | --demo [--trace out.json] [--tune] "
    "[--tuning-cache cache.json]\n";
}

int main(int argc, char** argv) {
  std::string configArg, tracePath, tuneCachePath;
  bool tuneFlag = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      tracePath = argv[++i];
    } else if (std::strcmp(argv[i], "--tune") == 0) {
      tuneFlag = true;
    } else if (std::strcmp(argv[i], "--tuning-cache") == 0 && i + 1 < argc) {
      tuneCachePath = argv[++i];
      tuneFlag = true;
    } else if (configArg.empty()) {
      configArg = argv[i];
    } else {
      std::cerr << kUsage;
      return 2;
    }
  }
  if (configArg.empty()) {
    std::cerr << kUsage;
    return 2;
  }

  app::Config cfg;
  try {
    if (configArg == "--demo") {
      std::istringstream demo(
          "case = cavity\nnx = 32\nny = 32\nnz = 32\nsteps = 300\n"
          "omega = 1.6\nlid_velocity = 0.05\nppm = true\n");
      cfg = app::Config::parse(demo);
    } else {
      cfg = app::Config::load(configArg);
    }

    app::Case sim = app::build_case(cfg);
    const long steps = cfg.getInt("steps", 1000);
    const std::string prefix = cfg.getString("output_prefix", sim.name);
    std::cout << "case '" << sim.name << "', "
              << sim.solver->grid().nx << "x" << sim.solver->grid().ny << "x"
              << sim.solver->grid().nz << " cells, " << steps << " steps\n";

    if (tuneFlag) {
      tune::TuningInput tin;
      tin.lattice = "D3Q19";  // app cases run the D3Q19 host solver
      tin.extent = {sim.solver->grid().nx, sim.solver->grid().ny,
                    sim.solver->grid().nz};
      tin.ranks = 1;
      tune::TuningCache cache;
      if (!tuneCachePath.empty()) cache = tune::TuningCache::load(tuneCachePath);
      const bool hadPlan = cache.lookup(tin.key()).has_value();
      const tune::TuningPlan plan = tune::Tuner().planCached(cache, tin);
      std::cout << "tuning [" << tin.key().toString() << "]: "
                << tune::summary(plan)
                << (hadPlan ? " (cache hit)" : " (searched)") << "\n"
                << "tuning advice: " << plan.precisionAdvice << "\n";
      if (!tuneCachePath.empty()) {
        cache.save(tuneCachePath);
        if (!hadPlan) std::cout << "tuning cache written: " << tuneCachePath << "\n";
      }
    }

    const long ckptEvery = cfg.getInt("checkpoint_interval", 0);
    std::unique_ptr<io::CheckpointController> ckpt;
    if (ckptEvery > 0) {
      ckpt = std::make_unique<io::CheckpointController>(
          prefix, io::CheckpointPolicy{static_cast<std::uint64_t>(ckptEvery),
                                       static_cast<int>(cfg.getInt("checkpoint_keep", 2))});
    }

    obs::Tracer tracer;
    const auto t0 = std::chrono::steady_clock::now();
    {
      obs::ScopedBind bind(tracePath.empty() ? nullptr : &tracer, nullptr);
      for (long s = 0; s < steps; ++s) {
        sim.solver->step();
        if (ckpt) ckpt->maybeSave(*sim.solver);
      }
    }
    const double sec =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    const double mlups = static_cast<double>(sim.solver->grid().interiorVolume()) *
                         static_cast<double>(steps) / sec / 1e6;
    std::cout << "done in " << sec << " s (" << mlups << " MLUPS)\n";

    if (!tracePath.empty()) {
      tracer.writeChromeTrace(tracePath);
      std::cout << "wrote " << tracePath << " (" << tracer.eventCount()
                << " events; open in chrome://tracing or Perfetto)\n";
    }

    ScalarField rho(sim.solver->grid());
    VectorField u(sim.solver->grid());
    sim.solver->computeMacroscopic(rho, u);
    if (cfg.getBool("vtk", false)) {
      io::VtkWriter vtk(sim.solver->grid());
      vtk.addScalar("density", rho);
      vtk.addVector("velocity", u);
      vtk.write(prefix + ".vtk");
      std::cout << "wrote " << prefix << ".vtk\n";
    }
    if (cfg.getBool("ppm", false)) {
      io::write_ppm_velocity_slice(prefix + ".ppm", u,
                                   sim.solver->grid().nz / 2, 1.3 * sim.uRef);
      std::cout << "wrote " << prefix << ".ppm\n";
    }
    if (sim.obstacleId != 0) {
      const Vec3 f = momentum_exchange_force<D3Q19>(
          sim.solver->f(), sim.solver->mask(), sim.solver->materials(),
          sim.obstacleId);
      std::cout << "obstacle force = (" << f.x << ", " << f.y << ", " << f.z
                << ")\n";
    }
    return 0;
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
