// Config-file driver: the framework front end.  Reads a `key = value`
// case description, runs it, and writes the requested outputs — the
// "holistic solution" entry point of the paper's Fig. 4 framework.
//
// Usage: swlb_run <config-file> [--trace out.json] [--tune]
//                 [--tuning-cache cache.json] [--ranks N] [--max-shrinks K]
//                 [--patches N] [--rebalance-every K] [--backend NAME]
//        swlb_run --demo [--trace out.json] [--tune] [...]
//
// --backend NAME selects the stream/collide backend from the registry
// (DESIGN.md §14: fused, generic, twostep, push, simd, esoteric, threads,
// swcpe) on every path — single-rank, --ranks and --patches.  An unknown
// name or a capability conflict (e.g. an in-place backend under
// --patches) is an explicit error, never a silent fallback.  The flag
// overrides the tuned plan's pick.
//
// --ranks N runs the case on the N-rank distributed runtime (cavity only
// in this driver) under the resilient driver; --max-shrinks K additionally
// arms elastic shrink-to-fit recovery (DESIGN.md §10), so up to K
// permanently lost ranks degrade the run instead of killing it.
//
// --patches N switches the distributed path to the patch-aware runtime
// (runtime/patches, DESIGN.md §13) with N patches per rank, assigned by
// fluid-weighted bisection along the Morton curve; --rebalance-every K
// additionally migrates patches every K steps whenever the measured
// per-patch step-time imbalance exceeds the threshold.
//
// --trace records every solver phase (periodic wrap, fused kernel,
// checkpoint writes) on a Chrome trace-event timeline; open the file in
// chrome://tracing or https://ui.perfetto.dev (DESIGN.md §6).
//
// --tune runs the auto-tuner (DESIGN.md §9) for this case's problem shape
// before the run and prints the resulting plan: halo scheduling, the
// collective ring threshold, the CPE LDM chunk width, the storage
// precision advisory and the backend pick (plus, under --patches, the
// per-patch backend map from plans produced with backend trials).  With
// --tuning-cache the plan is read from / written to the given
// swlb-tune-v1 JSON file, so a second identical run reports a cache hit
// and skips the search.
//
// Example config:
//   case = cylinder
//   nx = 240
//   ny = 120
//   nz = 12
//   steps = 2000
//   viscosity = 0.01
//   operator = trt
//   inlet_velocity = 0.06
//   vtk = true
//   ppm = true
//   output_prefix = cyl
//   checkpoint_interval = 1000
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <memory>
#include <sstream>

#include "app/cases.hpp"
#include "core/observables.hpp"
#include "io/checkpoint_controller.hpp"
#include "io/ppm.hpp"
#include "io/vtk.hpp"
#include "obs/context.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/patches.hpp"
#include "runtime/resilience.hpp"
#include "tune/tuner.hpp"

using namespace swlb;

namespace {
constexpr const char* kUsage =
    "usage: swlb_run <config-file> | --demo [--trace out.json] [--tune] "
    "[--tuning-cache cache.json] [--ranks N] [--max-shrinks K] "
    "[--patches N] [--rebalance-every K] [--backend NAME]\n";

/// Patch-aware distributed front end (DESIGN.md §13): the cavity case on
/// the patch runtime, fluid-weighted assignment, optional measured
/// rebalancing.
int runPatchedCavity(const app::Config& cfg, int ranks, int patchesPerRank,
                     long rebalanceEvery, const std::string& tracePath,
                     const std::string& backendFlag, bool tuneFlag,
                     const std::string& tuneCachePath) {
  using runtime::Comm;
  using runtime::PatchSolver;
  const Int3 n{static_cast<int>(cfg.getInt("nx", 48)),
               static_cast<int>(cfg.getInt("ny", 48)),
               static_cast<int>(cfg.getInt("nz", 48))};
  const long steps = cfg.getInt("steps", 1000);
  const Real uLid = cfg.getReal("lid_velocity", 0.05);
  const CollisionConfig col = app::collision_from_config(cfg);

  // Backend plan: tuned pick (plus per-patch map from plans produced
  // with backend trials) unless --backend pins one explicitly.
  std::string backend = backendFlag.empty() ? "fused" : backendFlag;
  std::map<int, std::string> patchBackends;
  if (tuneFlag) {
    tune::TuningInput tin;
    tin.lattice = "D3Q19";
    tin.extent = n;
    tin.ranks = ranks;
    // Same layout choice PatchSolver makes, so patch ids line up.
    const runtime::PatchLayout layout(
        n, runtime::Decomposition::choose(
               std::max(1, patchesPerRank) * ranks, n));
    for (int p = 0; p < layout.patchCount(); ++p) {
      const Box3 b = layout.boxOf(p);
      tin.patchCells.push_back(static_cast<double>(b.hi.x - b.lo.x) *
                               (b.hi.y - b.lo.y) * (b.hi.z - b.lo.z));
    }
    tune::TuningCache cache;
    if (!tuneCachePath.empty()) cache = tune::TuningCache::load(tuneCachePath);
    const tune::TuningPlan plan = tune::Tuner().planCached(cache, tin);
    std::cout << "tuning [" << tin.key().toString() << "]: "
              << tune::summary(plan) << "\n";
    if (!tuneCachePath.empty()) cache.save(tuneCachePath);
    if (backendFlag.empty()) {
      tune::apply(plan, backend);
      tune::apply(plan, patchBackends);
      std::cout << "tuning: backend -> " << backend << " ("
                << patchBackends.size() << " per-patch overrides)\n";
    }
  }
  std::cout << "case 'cavity' on " << ranks << " ranks, patch mode: "
            << patchesPerRank << " patches/rank"
            << (rebalanceEvery > 0
                    ? ", rebalance every " + std::to_string(rebalanceEvery) +
                          " steps"
                    : "")
            << ", " << n.x << "x" << n.y << "x" << n.z << " cells, " << steps
            << " steps\n";

  obs::Tracer tracer;
  obs::MetricsRegistry metrics;
  runtime::WorldConfig wcfg;
  if (!tracePath.empty()) wcfg.tracer = &tracer;
  wcfg.metrics = &metrics;
  runtime::World world(ranks, wcfg);
  double mlups = 0, imbalance = 1.0;
  int patchCount = 0;
  world.run([&](Comm& c) {
    PatchSolver<D3Q19>::Config pcfg;
    pcfg.global = n;
    pcfg.collision = col;
    pcfg.patchesPerRank = patchesPerRank;
    pcfg.rebalanceEvery =
        rebalanceEvery > 0 ? static_cast<std::uint64_t>(rebalanceEvery) : 0;
    pcfg.backend = backend;
    pcfg.patchBackends = patchBackends;
    PatchSolver<D3Q19> solver(c, pcfg);
    const auto lid = solver.materials().addMovingWall({uLid, 0, 0});
    solver.paintGlobal({{0, 0, n.z - 1}, {n.x, n.y, n.z}}, lid);
    solver.finalizeMask();
    solver.initUniform(1.0, {0, 0, 0});
    const double m = solver.runMeasured(static_cast<std::uint64_t>(steps));
    const double i = solver.measuredImbalance();
    if (c.rank() == 0) {
      mlups = m;
      imbalance = i;
      patchCount = solver.layout().patchCount();
    }
  });
  std::cout << "done (" << mlups << " MLUPS aggregate, " << patchCount
            << " patches)\n"
            << "patch.rebalances = " << metrics.counterValue("patch.rebalances")
            << ", patch.migrations = "
            << metrics.counterValue("patch.migrations")
            << ", measured imbalance = " << imbalance << "\n";
  if (!tracePath.empty()) {
    tracer.writeChromeTrace(tracePath);
    std::cout << "wrote " << tracePath << " (" << tracer.eventCount()
              << " events, " << tracer.threadCount() << " rank timelines)\n";
  }
  if (cfg.getBool("vtk", false) || cfg.getBool("ppm", false))
    std::cout << "note: vtk/ppm outputs are not wired to patch mode; rerun "
                 "without --patches\n";
  return 0;
}

/// Distributed front end: the cavity case on N threads-as-ranks under the
/// resilient driver, with elastic shrink-to-fit recovery armed when
/// maxShrinks > 0.  Outputs are gathered to rank 0.
int runDistributedCavity(const app::Config& cfg, int ranks, int maxShrinks,
                         const std::string& tracePath,
                         const std::string& backendFlag) {
  using runtime::Comm;
  using runtime::DistributedSolver;
  const Int3 n{static_cast<int>(cfg.getInt("nx", 48)),
               static_cast<int>(cfg.getInt("ny", 48)),
               static_cast<int>(cfg.getInt("nz", 48))};
  const long steps = cfg.getInt("steps", 1000);
  const std::string prefix = cfg.getString("output_prefix", "cavity");
  const Real uLid = cfg.getReal("lid_velocity", 0.05);
  const CollisionConfig col = app::collision_from_config(cfg);
  std::cout << "case 'cavity' on " << ranks << " ranks, " << n.x << "x"
            << n.y << "x" << n.z << " cells, " << steps << " steps"
            << (maxShrinks > 0
                    ? ", elastic recovery armed (max-shrinks " +
                          std::to_string(maxShrinks) + ")"
                    : "")
            << "\n";

  // procGrid stays automatic so the same factory rebuilds the case at
  // whatever rank count survives a shrink.
  auto build = [&](Comm& c) {
    DistributedSolver<D3Q19>::Config dcfg;
    dcfg.global = n;
    dcfg.collision = col;
    if (!backendFlag.empty()) dcfg.backend = backendFlag;
    auto s = std::make_unique<DistributedSolver<D3Q19>>(c, dcfg);
    const auto lid = s->materials().addMovingWall({uLid, 0, 0});
    s->paintGlobal({{0, 0, n.z - 1}, {n.x, n.y, n.z}}, lid);
    s->finalizeMask();
    s->initUniform(1.0, {0, 0, 0});
    return s;
  };

  const long ckptEvery = cfg.getInt("checkpoint_interval", 0);
  const std::string ckptPrefix =
      (std::filesystem::temp_directory_path() / (prefix + "_elastic")).string();

  obs::Tracer tracer;
  obs::MetricsRegistry metrics;
  runtime::WorldConfig wcfg;
  if (!tracePath.empty()) wcfg.tracer = &tracer;
  wcfg.metrics = &metrics;
  runtime::World world(ranks, wcfg);
  double sec = 0;
  std::uint64_t shrinks = 0, ranksLost = 0;
  int finalRanks = ranks;
  ScalarField rho;
  VectorField u;
  world.run([&](Comm& c) {
    auto solver = build(c);
    runtime::ResilientRunnerConfig<D3Q19> rcfg;
    rcfg.checkpoint.interval = static_cast<std::uint64_t>(
        ckptEvery > 0 ? ckptEvery : std::max<long>(1, steps / 4));
    rcfg.checkpoint.keep =
        static_cast<int>(cfg.getInt("checkpoint_keep", 2));
    rcfg.fault.maxShrinks = maxShrinks;
    rcfg.rebuild = build;
    runtime::ResilientRunner<D3Q19> runner(*solver, ckptPrefix, rcfg);
    const auto t0 = std::chrono::steady_clock::now();
    const auto rep = runner.run(static_cast<std::uint64_t>(steps));
    const double s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    runtime::gather_macroscopic(runner.solver(), 0, rho, u);
    runner.checkpoints().clear();
    if (c.rank() == 0) {
      sec = s;
      shrinks = rep.shrinks;
      ranksLost = rep.ranksLost;
      finalRanks = c.size();
    }
  });
  const double mlups = static_cast<double>(n.x) * n.y * n.z *
                       static_cast<double>(steps) / sec / 1e6;
  std::cout << "done in " << sec << " s (" << mlups << " MLUPS aggregate)\n";
  if (maxShrinks > 0) {
    const auto downtime =
        metrics.histogramSummary("resilience.downtime_seconds");
    std::cout << "resilience: " << shrinks << " shrink(s), " << ranksLost
              << " rank(s) lost, finished on " << finalRanks << " ranks\n"
              << "  resilience.shrink.count = "
              << metrics.counterValue("resilience.shrink.count") << "\n"
              << "  resilience.downtime_seconds: count=" << downtime.count
              << " mean=" << downtime.mean << "s\n";
  }
  if (!tracePath.empty()) {
    tracer.writeChromeTrace(tracePath);
    std::cout << "wrote " << tracePath << " (" << tracer.eventCount()
              << " events, " << tracer.threadCount() << " rank timelines)\n";
  }
  if (cfg.getBool("vtk", false)) {
    io::VtkWriter vtk(Grid(n.x, n.y, n.z));
    vtk.addScalar("density", rho);
    vtk.addVector("velocity", u);
    vtk.write(prefix + ".vtk");
    std::cout << "wrote " << prefix << ".vtk\n";
  }
  if (cfg.getBool("ppm", false)) {
    io::write_ppm_velocity_slice(prefix + ".ppm", u, n.z / 2, 1.3 * uLid);
    std::cout << "wrote " << prefix << ".ppm\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string configArg, tracePath, tuneCachePath, backendFlag;
  bool tuneFlag = false;
  int ranks = 1, maxShrinks = 0, patches = 0;
  long rebalanceEvery = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      tracePath = argv[++i];
    } else if (std::strcmp(argv[i], "--tune") == 0) {
      tuneFlag = true;
    } else if (std::strcmp(argv[i], "--tuning-cache") == 0 && i + 1 < argc) {
      tuneCachePath = argv[++i];
      tuneFlag = true;
    } else if (std::strcmp(argv[i], "--ranks") == 0 && i + 1 < argc) {
      ranks = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--max-shrinks") == 0 && i + 1 < argc) {
      maxShrinks = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--patches") == 0 && i + 1 < argc) {
      patches = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--rebalance-every") == 0 &&
               i + 1 < argc) {
      rebalanceEvery = std::atol(argv[++i]);
    } else if (std::strcmp(argv[i], "--backend") == 0 && i + 1 < argc) {
      backendFlag = argv[++i];
    } else if (configArg.empty()) {
      configArg = argv[i];
    } else {
      std::cerr << kUsage;
      return 2;
    }
  }
  if (configArg.empty()) {
    std::cerr << kUsage;
    return 2;
  }

  app::Config cfg;
  try {
    if (configArg == "--demo") {
      std::istringstream demo(
          "case = cavity\nnx = 32\nny = 32\nnz = 32\nsteps = 300\n"
          "omega = 1.6\nlid_velocity = 0.05\nppm = true\n");
      cfg = app::Config::parse(demo);
    } else {
      cfg = app::Config::load(configArg);
    }

    if (ranks > 1 || patches > 0) {
      if (cfg.getString("case") != "cavity")
        throw Error(
            "--ranks/--patches: only 'case = cavity' runs distributed in "
            "this driver");
      if (patches > 0)
        return runPatchedCavity(cfg, ranks, patches, rebalanceEvery,
                                tracePath, backendFlag, tuneFlag,
                                tuneCachePath);
      return runDistributedCavity(cfg, ranks, maxShrinks, tracePath,
                                  backendFlag);
    }

    app::Case sim = app::build_case(cfg);
    const long steps = cfg.getInt("steps", 1000);
    const std::string prefix = cfg.getString("output_prefix", sim.name);
    std::cout << "case '" << sim.name << "', "
              << sim.solver->grid().nx << "x" << sim.solver->grid().ny << "x"
              << sim.solver->grid().nz << " cells, " << steps << " steps\n";

    if (tuneFlag) {
      tune::TuningInput tin;
      tin.lattice = "D3Q19";  // app cases run the D3Q19 host solver
      tin.extent = {sim.solver->grid().nx, sim.solver->grid().ny,
                    sim.solver->grid().nz};
      tin.ranks = 1;
      tune::TuningCache cache;
      if (!tuneCachePath.empty()) cache = tune::TuningCache::load(tuneCachePath);
      const bool hadPlan = cache.lookup(tin.key()).has_value();
      const tune::TuningPlan plan = tune::Tuner().planCached(cache, tin);
      std::cout << "tuning [" << tin.key().toString() << "]: "
                << tune::summary(plan)
                << (hadPlan ? " (cache hit)" : " (searched)") << "\n"
                << "tuning advice: " << plan.precisionAdvice << "\n";
      if (!tuneCachePath.empty()) {
        cache.save(tuneCachePath);
        if (!hadPlan) std::cout << "tuning cache written: " << tuneCachePath << "\n";
      }
      // Apply the plan's backend pick (no-op for the default "fused";
      // cached plans produced with backend trials can switch it) unless
      // --backend pinned one explicitly.
      if (backendFlag.empty()) {
        std::string backend = "fused";
        tune::apply(plan, backend);
        if (backend != "fused") {
          sim.solver->setBackend(backend);
          std::cout << "tuning: backend -> " << backend << "\n";
        }
      }
    }
    if (!backendFlag.empty()) {
      sim.solver->setBackend(backendFlag);
      std::cout << "backend: " << backendFlag << "\n";
    }

    const long ckptEvery = cfg.getInt("checkpoint_interval", 0);
    std::unique_ptr<io::CheckpointController> ckpt;
    if (ckptEvery > 0) {
      ckpt = std::make_unique<io::CheckpointController>(
          prefix, io::CheckpointPolicy{static_cast<std::uint64_t>(ckptEvery),
                                       static_cast<int>(cfg.getInt("checkpoint_keep", 2))});
    }

    obs::Tracer tracer;
    const auto t0 = std::chrono::steady_clock::now();
    {
      obs::ScopedBind bind(tracePath.empty() ? nullptr : &tracer, nullptr);
      for (long s = 0; s < steps; ++s) {
        sim.solver->step();
        if (ckpt) ckpt->maybeSave(*sim.solver);
      }
    }
    const double sec =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    const double mlups = static_cast<double>(sim.solver->grid().interiorVolume()) *
                         static_cast<double>(steps) / sec / 1e6;
    std::cout << "done in " << sec << " s (" << mlups << " MLUPS)\n";

    if (!tracePath.empty()) {
      tracer.writeChromeTrace(tracePath);
      std::cout << "wrote " << tracePath << " (" << tracer.eventCount()
                << " events; open in chrome://tracing or Perfetto)\n";
    }

    ScalarField rho(sim.solver->grid());
    VectorField u(sim.solver->grid());
    sim.solver->computeMacroscopic(rho, u);
    if (cfg.getBool("vtk", false)) {
      io::VtkWriter vtk(sim.solver->grid());
      vtk.addScalar("density", rho);
      vtk.addVector("velocity", u);
      vtk.write(prefix + ".vtk");
      std::cout << "wrote " << prefix << ".vtk\n";
    }
    if (cfg.getBool("ppm", false)) {
      io::write_ppm_velocity_slice(prefix + ".ppm", u,
                                   sim.solver->grid().nz / 2, 1.3 * sim.uRef);
      std::cout << "wrote " << prefix << ".ppm\n";
    }
    if (sim.obstacleId != 0) {
      const Vec3 f = momentum_exchange_force<D3Q19>(
          sim.solver->f(), sim.solver->mask(), sim.solver->materials(),
          sim.obstacleId);
      std::cout << "obstacle force = (" << f.x << ", " << f.y << ", " << f.z
                << ")\n";
    }
    return 0;
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
