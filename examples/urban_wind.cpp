// LES wind-flow simulation over a procedural urban area (paper §V-C,
// Fig. 19: 8 m/s inlet over a 1 km x 1 km piece of Shanghai; here a
// procedurally generated city stands in for the GIS data).
//
// Usage: urban_wind [nx] [steps]   (default 120x96x40 cells, 800 steps)
#include <cstdlib>
#include <iostream>

#include "core/observables.hpp"
#include "core/solver.hpp"
#include "core/units.hpp"
#include "io/ppm.hpp"
#include "io/vtk.hpp"
#include "mesh/urban.hpp"

using namespace swlb;

int main(int argc, char** argv) {
  const int nx = argc > 1 ? std::atoi(argv[1]) : 120;
  const int steps = argc > 2 ? std::atoi(argv[2]) : 800;
  const int ny = nx * 4 / 5, nz = nx / 3;

  // Physical scaling: 4 m cells -> tallest buildings ~80 m like the paper;
  // 8 m/s inlet wind, atmospheric viscosity -> LES mandatory.
  UnitConverter units(/*L=*/4.0 * nz, /*U=*/8.0, /*nu=*/1.5e-5, /*rho=*/1.2,
                      /*resolution=*/nz, /*uLattice=*/0.06, /*minTau=*/0.5);
  std::cout << "Urban wind: " << nx << "x" << ny << "x" << nz << " cells, Re = "
            << units.reynolds() << " (Smagorinsky LES)\n";

  CollisionConfig collision;
  collision.omega = units.omega();
  collision.les = true;
  collision.smagorinskyCs = 0.16;

  Solver<D3Q19> solver(Grid(nx, ny, nz), collision,
                       Periodicity{false, true, false});
  const Real uIn = units.latticeVelocity();
  const auto inlet = solver.materials().addVelocityInlet({uIn, 0, 0});
  const auto outlet = solver.materials().addOutflow({-1, 0, 0});
  solver.paint({{0, 0, 0}, {1, ny, nz}}, inlet);
  solver.paint({{nx - 1, 0, 0}, {nx, ny, nz}}, outlet);

  // Procedural city: blocks, streets, randomized heights (up to nz/2).
  mesh::UrbanConfig city;
  city.blockCells = nx / 10;
  city.streetCells = nx / 20;
  city.minHeight = nz / 8.0;
  city.maxHeight = nz / 2.0;
  const mesh::Heightmap hm = mesh::make_urban_heightmap(nx, ny, city);
  hm.paint(solver.mask(), MaterialTable::kSolid);
  const mesh::UrbanStats stats = mesh::analyze_urban(hm);
  std::cout << "City: " << stats.buildings << " buildings, tallest "
            << units.toPhysLength(stats.tallest) << " m, built fraction "
            << stats.builtFraction << "\n";

  solver.finalizeMask();
  solver.initField([&](int, int, int z, Real& rho, Vec3& u) {
    rho = 1.0;
    // Log-ish inflow profile: slower near the ground.
    u = {uIn * std::min<Real>(1.0, Real(0.3) + Real(0.7) * z / (nz * 0.6)), 0, 0};
  });

  const double mlups = solver.runMeasured(steps);
  std::cout << "Ran " << steps << " steps (" << units.toPhysTime(steps)
            << " s physical) at " << mlups << " MLUPS\n";

  ScalarField rho(solver.grid());
  VectorField u(solver.grid());
  solver.computeMacroscopic(rho, u);
  ScalarField q(solver.grid());
  q_criterion(u, q);

  // Fig. 19(3): velocity contours at several heights above ground.
  for (int level : {2, nz / 4, nz / 2}) {
    io::write_ppm_velocity_slice(
        "urban_velocity_z" + std::to_string(level) + ".ppm", u, level,
        1.3 * uIn);
  }
  io::write_ppm_slice("urban_qcriterion.ppm", q, nz / 4, -1e-5, 1e-5,
                      io::Colormap::BlueWhiteRed);
  io::VtkWriter vtk(solver.grid(), units.dx());
  vtk.addVector("velocity", u);
  vtk.addScalar("qcriterion", q);
  vtk.write("urban.vtk");
  std::cout << "Wrote urban_velocity_z*.ppm, urban_qcriterion.ppm, urban.vtk\n";

  // Sanity: the wind slows inside the street canyon, flows freely above.
  Real streetSpeed = 0, skySpeed = 0;
  int streetSamples = 0, skySamples = 0;
  for (int y = 0; y < ny; ++y)
    for (int x = nx / 4; x < 3 * nx / 4; ++x) {
      if (hm.at(x, y) <= 0) {
        streetSpeed += std::sqrt(u.at(x, y, 2).norm2());
        ++streetSamples;
      }
      skySpeed += std::sqrt(u.at(x, y, nz - 2).norm2());
      ++skySamples;
    }
  streetSpeed /= streetSamples;
  skySpeed /= skySamples;
  std::cout << "mean street-level wind " << units.toPhysVelocity(streetSpeed)
            << " m/s vs above-roof " << units.toPhysVelocity(skySpeed)
            << " m/s\n";
  return skySpeed > streetSpeed ? 0 : 1;
}
