// Distributed run + checkpoint/restart: the runtime and I/O layers the
// paper's framework provides for long, fault-tolerant campaigns (§IV-B).
//
//   1. run a Taylor-Green vortex on 4 ranks with the on-the-fly halo
//      exchange (Fig. 6(2)) and compare against 1 rank bit-for-bit;
//   2. checkpoint a single-block solver mid-run, "crash", restore, and
//      verify the restart is bit-identical to an uninterrupted run;
//   3. resilient 4-rank run: a rank is killed mid-campaign by the fault
//      plan, the survivors vote, roll back to the newest complete
//      distributed checkpoint generation, and finish bit-identical to the
//      fault-free run.
//
//   4. (with --max-shrinks >= 1) elastic recovery: a rank is retired
//      permanently, the survivors probe, shrink the communicator onto a
//      fresh 3-rank decomposition, splice-restore the newest generation
//      and finish — still bit-identical to the fault-free run — printing
//      the resilience.shrink.* counters and the downtime histogram.
//
// Usage: distributed_restart [N] [steps] [--trace out.json] [--tune]
//                            [--tuning-cache cache.json] [--max-shrinks K]
//        (default 32^2, 200 steps; --trace exports the 4-rank run of
//        part 1 as Chrome-trace JSON for chrome://tracing / Perfetto;
//        --tune asks the auto-tuner (DESIGN.md §9) for the 4-rank halo
//        scheduling instead of hardcoding Overlap — results stay
//        bit-identical either way, which part 1 then verifies)
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <numbers>
#include <string>
#include <vector>

#include "io/checkpoint.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/resilience.hpp"
#include "tune/tuner.hpp"

#include <memory>

using namespace swlb;
using runtime::Comm;
using runtime::DistributedSolver;
using runtime::HaloMode;
using runtime::World;

namespace {

void initTgv(int n, Real u0, int x, int y, Real& rho, Vec3& u) {
  const Real k = 2 * std::numbers::pi_v<Real> / n;
  rho = 1.0;
  u = {-u0 * std::cos(k * (x + Real(0.5))) * std::sin(k * (y + Real(0.5))),
       u0 * std::sin(k * (x + Real(0.5))) * std::cos(k * (y + Real(0.5))), 0};
}

}  // namespace

int main(int argc, char** argv) {
  std::string tracePath, tuneCachePath;
  bool tuneFlag = false;
  int maxShrinks = 0;
  std::vector<const char*> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      tracePath = argv[++i];
    } else if (std::strcmp(argv[i], "--tune") == 0) {
      tuneFlag = true;
    } else if (std::strcmp(argv[i], "--tuning-cache") == 0 && i + 1 < argc) {
      tuneCachePath = argv[++i];
      tuneFlag = true;
    } else if (std::strcmp(argv[i], "--max-shrinks") == 0 && i + 1 < argc) {
      maxShrinks = std::atoi(argv[++i]);
    } else {
      positional.push_back(argv[i]);
    }
  }
  const int n = positional.size() > 0 ? std::atoi(positional[0]) : 32;
  const int steps = positional.size() > 1 ? std::atoi(positional[1]) : 200;
  const Real u0 = 0.02;

  CollisionConfig collision;
  collision.omega = omega_from_tau(tau_from_viscosity(0.02));

  // Halo scheduling of the 4-rank runs: hardcoded Overlap by default, the
  // auto-tuner's pick under --tune.  Both schemes produce bit-identical
  // populations, so the comparisons below hold either way.
  HaloMode mode4 = HaloMode::Overlap;
  if (tuneFlag) {
    tune::TuningInput tin;
    tin.lattice = "D2Q9";
    tin.extent = {n, n, 1};
    tin.ranks = 4;
    tune::TuningCache cache;
    if (!tuneCachePath.empty()) cache = tune::TuningCache::load(tuneCachePath);
    const bool hadPlan = cache.lookup(tin.key()).has_value();
    const tune::TuningPlan plan = tune::Tuner().planCached(cache, tin);
    tune::apply(plan, mode4);
    std::cout << "tuning [" << tin.key().toString() << "]: "
              << tune::summary(plan) << (hadPlan ? " (cache hit)" : " (searched)")
              << "\n";
    if (!tuneCachePath.empty()) cache.save(tuneCachePath);
  }

  // ---- part 1: 4 ranks vs 1 rank, overlapped halo exchange -------------
  PopulationField serial, parallel4;
  {
    World world(1);
    world.run([&](Comm& c) {
      DistributedSolver<D2Q9>::Config cfg;
      cfg.global = {n, n, 1};
      cfg.collision = collision;
      cfg.periodic = {true, true, true};
      cfg.procGrid = {1, 1, 1};
      DistributedSolver<D2Q9> solver(c, cfg);
      solver.finalizeMask();
      solver.initField([&](int x, int y, int, Real& rho, Vec3& u) {
        initTgv(n, u0, x, y, rho, u);
      });
      solver.run(steps);
      PopulationField g = solver.gatherPopulations(0);
      if (c.rank() == 0) serial = std::move(g);  // only root holds data
    });
  }
  double mlups4 = 0;
  obs::Tracer tracer;
  {
    runtime::WorldConfig wcfg4;
    if (!tracePath.empty()) wcfg4.tracer = &tracer;
    World world(4, wcfg4);
    world.run([&](Comm& c) {
      DistributedSolver<D2Q9>::Config cfg;
      cfg.global = {n, n, 1};
      cfg.collision = collision;
      cfg.periodic = {true, true, true};
      cfg.procGrid = {2, 2, 1};
      cfg.mode = mode4;
      DistributedSolver<D2Q9> solver(c, cfg);
      solver.finalizeMask();
      solver.initField([&](int x, int y, int, Real& rho, Vec3& u) {
        initTgv(n, u0, ((x % n) + n) % n, ((y % n) + n) % n, rho, u);
      });
      const double m = solver.runMeasured(steps);
      if (c.rank() == 0) mlups4 = m;
      PopulationField g = solver.gatherPopulations(0);
      if (c.rank() == 0) parallel4 = std::move(g);
    });
  }
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < serial.size(); ++i)
    if (serial.data()[i] != parallel4.data()[i]) ++mismatches;
  std::cout << "4-rank overlapped run vs serial: " << mismatches
            << " mismatching values (expect 0), " << mlups4 << " MLUPS\n";
  if (!tracePath.empty()) {
    tracer.writeChromeTrace(tracePath);
    std::cout << "wrote " << tracePath << " (" << tracer.eventCount()
              << " events, " << tracer.threadCount()
              << " rank timelines; open in chrome://tracing or Perfetto)\n";
  }

  // ---- part 2: checkpoint, crash, restart ------------------------------
  auto makeSolver = [&] {
    Solver<D2Q9> s(Grid(n, n, 1), collision, Periodicity{true, true, true});
    s.finalizeMask();
    s.initField([&](int x, int y, int, Real& rho, Vec3& u) {
      initTgv(n, u0, ((x % n) + n) % n, ((y % n) + n) % n, rho, u);
    });
    return s;
  };

  Solver<D2Q9> uninterrupted = makeSolver();
  uninterrupted.run(steps);

  Solver<D2Q9> beforeCrash = makeSolver();
  beforeCrash.run(steps / 2);
  io::save_checkpoint("tgv.ckpt", beforeCrash);
  std::cout << "Checkpointed at step " << beforeCrash.stepsDone() << " ("
            << io::read_checkpoint_meta("tgv.ckpt").interior.x << "^2 cells)\n";

  Solver<D2Q9> restarted = makeSolver();  // fresh process after the "crash"
  io::load_checkpoint("tgv.ckpt", restarted);
  restarted.run(steps - steps / 2);

  std::size_t restartMismatches = 0;
  for (std::size_t i = 0; i < uninterrupted.f().size(); ++i)
    if (uninterrupted.f().data()[i] != restarted.f().data()[i])
      ++restartMismatches;
  std::cout << "Restarted run vs uninterrupted: " << restartMismatches
            << " mismatching values (expect 0)\n";
  std::remove("tgv.ckpt");

  // ---- part 3: kill a rank mid-run, roll back, finish bit-identical ----
  namespace fs = std::filesystem;
  const std::string ckptPrefix =
      (fs::temp_directory_path() / "tgv_resilient").string();
  const int interval = std::max(5, steps / 8);
  const int killAt = steps / 2 + interval / 2;  // between two generations

  runtime::WorldConfig wcfg;
  wcfg.faults.killRank = 2;
  wcfg.faults.killAtStep = killAt;
  World world(4, wcfg);
  PopulationField resilient;
  std::uint64_t recoveries = 0, restoredStep = 0;
  world.run([&](Comm& c) {
    DistributedSolver<D2Q9>::Config cfg;
    cfg.global = {n, n, 1};
    cfg.collision = collision;
    cfg.periodic = {true, true, true};
    cfg.procGrid = {2, 2, 1};
    cfg.mode = mode4;
    DistributedSolver<D2Q9> solver(c, cfg);
    solver.finalizeMask();
    solver.initField([&](int x, int y, int, Real& rho, Vec3& u) {
      initTgv(n, u0, ((x % n) + n) % n, ((y % n) + n) % n, rho, u);
    });
    runtime::ResilientRunnerConfig<D2Q9> rcfg;
    rcfg.checkpoint.interval = static_cast<std::uint64_t>(interval);
    rcfg.checkpoint.keep = 2;
    rcfg.fault.recvTimeout = 0.25;  // survivors time out instead of hanging
    runtime::ResilientRunner<D2Q9> runner(solver, ckptPrefix, rcfg);
    const auto rep = runner.run(steps);
    PopulationField g = solver.gatherPopulations(0);
    if (c.rank() == 0) {
      resilient = std::move(g);
      recoveries = rep.recoveries;
      restoredStep = rep.lastRestoredStep;
    }
  });
  std::size_t resilientMismatches = 0;
  for (std::size_t i = 0; i < parallel4.size(); ++i)
    if (parallel4.data()[i] != resilient.data()[i]) ++resilientMismatches;
  std::cout << "Resilient run: rank 2 killed at step " << killAt << ", "
            << recoveries << " rollback(s) to step " << restoredStep << ", "
            << resilientMismatches
            << " mismatching values vs fault-free run (expect 0)\n";
  {
    std::error_code ec;
    const fs::path dir = fs::path(ckptPrefix).parent_path();
    for (const auto& entry : fs::directory_iterator(dir, ec))
      if (entry.path().filename().string().rfind("tgv_resilient", 0) == 0)
        fs::remove(entry.path(), ec);
  }

  // ---- part 4: retire a rank permanently, shrink to fit, continue ------
  std::size_t elasticMismatches = 0;
  if (maxShrinks > 0) {
    const std::string elasticPrefix =
        (fs::temp_directory_path() / "tgv_elastic").string();
    obs::MetricsRegistry metrics;
    runtime::WorldConfig wcfg2;
    wcfg2.faults.killRank = 2;
    wcfg2.faults.killAtStep = killAt;
    wcfg2.faults.killPermanent = true;  // node retired: no respawn
    wcfg2.metrics = &metrics;
    if (!tracePath.empty()) wcfg2.tracer = &tracer;
    World elasticWorld(4, wcfg2);
    PopulationField elastic;
    std::uint64_t shrinks = 0, ranksLost = 0, elasticRestored = 0;
    int finalRanks = 0;
    elasticWorld.run([&](Comm& c) {
      // The decomposition must adapt to whatever rank count survives, so
      // the factory leaves procGrid on automatic.
      auto build = [&](Comm& cc) {
        DistributedSolver<D2Q9>::Config cfg;
        cfg.global = {n, n, 1};
        cfg.collision = collision;
        cfg.periodic = {true, true, true};
        auto s = std::make_unique<DistributedSolver<D2Q9>>(cc, cfg);
        s->finalizeMask();
        s->initField([&](int x, int y, int, Real& rho, Vec3& u) {
          initTgv(n, u0, ((x % n) + n) % n, ((y % n) + n) % n, rho, u);
        });
        return s;
      };
      auto solver = build(c);
      runtime::ResilientRunnerConfig<D2Q9> rcfg;
      rcfg.checkpoint.interval = static_cast<std::uint64_t>(interval);
      rcfg.checkpoint.keep = 2;
      rcfg.fault.recvTimeout = 0.25;
      rcfg.fault.maxShrinks = maxShrinks;
      rcfg.rebuild = build;
      runtime::ResilientRunner<D2Q9> runner(*solver, elasticPrefix, rcfg);
      // Rank 2's thread unwinds here; the survivors shrink around it.
      const auto rep = runner.run(steps);
      PopulationField g = runner.solver().gatherPopulations(0);
      if (c.rank() == 0) {
        elastic = std::move(g);
        shrinks = rep.shrinks;
        ranksLost = rep.ranksLost;
        elasticRestored = rep.lastRestoredStep;
        finalRanks = c.size();
      }
    });
    for (std::size_t i = 0; i < parallel4.size(); ++i)
      if (parallel4.data()[i] != elastic.data()[i]) ++elasticMismatches;
    std::cout << "Elastic run: rank 2 retired permanently at step " << killAt
              << ", " << shrinks << " shrink(s) lost " << ranksLost
              << " rank(s), finished on " << finalRanks
              << " ranks from step " << elasticRestored << ", "
              << elasticMismatches
              << " mismatching values vs fault-free run (expect 0)\n";
    const auto downtime = metrics.histogramSummary("resilience.downtime_seconds");
    std::cout << "  resilience.shrink.count = "
              << metrics.counterValue("resilience.shrink.count") << "\n"
              << "  resilience.shrink.ranks_lost = "
              << metrics.counterValue("resilience.shrink.ranks_lost") << "\n"
              << "  resilience.downtime_seconds: count=" << downtime.count
              << " mean=" << downtime.mean << "s max=" << downtime.max
              << "s\n";
    if (!tracePath.empty()) {
      tracer.writeChromeTrace(tracePath);  // now includes the shrink scopes
      std::cout << "rewrote " << tracePath << " with the elastic-recovery "
                << "timeline (" << tracer.eventCount() << " events)\n";
    }
    if (shrinks == 0) elasticMismatches = 1;  // the ladder must have fired
    {
      std::error_code ec;
      const fs::path dir = fs::path(elasticPrefix).parent_path();
      for (const auto& entry : fs::directory_iterator(dir, ec))
        if (entry.path().filename().string().rfind("tgv_elastic", 0) == 0)
          fs::remove(entry.path(), ec);
    }
  }

  return mismatches == 0 && restartMismatches == 0 &&
                 resilientMismatches == 0 && elasticMismatches == 0
             ? 0
             : 1;
}
