// Backend-portability ladder — every backend registered for D3Q19/f64
// run on the same 32^3 periodic block, straight out of the registry
// (DESIGN.md §14): adding a backend adds a row here with no bench edits.
//
// Rows report best-of-3 MLUPS, the *actually allocated* population bytes
// (so in-place backends' memory claims are measured, not asserted), the
// memory ratio against the two-lattice fused baseline, and the thread
// count the backend ran with (caps.usesHostThreads backends get one lane
// per hardware core; the rest run the single host thread they promise).
// The swcpe emulator models a 64-CPE core group in scalar host code, so
// its MLUPS row is an emulator throughput, not a Sunway projection —
// perf/ladder.cpp owns those.
//
// With --json <path> the rows are serialized as a swlb-bench-v1
// BenchReport (backend_<name> results) — the writer behind the
// BENCH_backends.json seed and the CI smoke that checks the thread-team
// backend beats single-thread fused whenever the host has >1 core
// (host_cores is in every row so the gate is recorded with the data).
#include <algorithm>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "core/precision.hpp"
#include "core/solver.hpp"
#include "obs/bench_report.hpp"
#include "obs/step_profiler.hpp"
#include "perf/report.hpp"

using namespace swlb;

namespace {

constexpr int kN = 32;
constexpr int kStepsPerRep = 20;  // even: in-place reps end in natural phase
constexpr int kReps = 3;

struct Row {
  std::string backend;
  double mlups = 0;                 ///< best-of-kReps
  std::size_t populationBytes = 0;  ///< actually allocated by the solver
  double memRatio = 0;              ///< vs two-lattice fused
  int threads = 1;                  ///< host threads the backend ran with
};

Row runBackend(const std::string& name, int hostCores) {
  const BackendInfo& info = *find_backend_info(name);
  CollisionConfig cfg;
  cfg.omega = 1.6;
  Solver<D3Q19, double> solver(Grid(kN, kN, kN), cfg,
                               Periodicity{true, true, true});
  solver.setBackend(name);
  Row row;
  row.backend = name;
  row.threads = info.caps.usesHostThreads ? hostCores : 1;
  solver.setHostThreads(row.threads);
  solver.finalizeMask();
  solver.initField([](int x, int y, int z, Real& rho, Vec3& u) {
    rho = 1.0 + 0.01 * ((x + 2 * y + 3 * z) % 7 - 3) / 3.0;
    u = {0.02, 0.01, -0.01};
  });

  const double cells = static_cast<double>(solver.grid().interiorVolume());
  // The emulator sweeps 64 virtual CPEs per step in scalar host code —
  // two orders slower than the native kernels; trim its reps to keep the
  // whole ladder interactive.
  const int steps =
      info.hints.relativeRate < 0.1 ? 2 : kStepsPerRep;
  const int reps = info.hints.relativeRate < 0.1 ? 1 : kReps;
  solver.run(steps);  // warmup (touch pages, warm caches)
  row.populationBytes = solver.populationBytes();
  const std::size_t oneLattice =
      static_cast<std::size_t>(solver.f().size()) * sizeof(double);
  row.memRatio = static_cast<double>(row.populationBytes) /
                 static_cast<double>(2 * oneLattice);
  for (int rep = 0; rep < reps; ++rep) {
    obs::StepProfiler prof(cells);
    for (int s = 0; s < steps; ++s) prof.step([&] { solver.step(); });
    row.mlups = std::max(row.mlups, prof.mlups());
  }
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  std::string jsonPath;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      jsonPath = argv[++i];
    } else {
      std::cerr << "usage: bench_backends [--json <path>]\n";
      return 2;
    }
  }

  const int hostCores =
      std::max(1u, std::thread::hardware_concurrency());
  std::vector<Row> rows;
  // Single-thread fused first: the reference row every ratio reads
  // against (the registry also lists "fused", measured again below at
  // hostCores threads like every other usesHostThreads backend).
  Row fused1 = runBackend("fused", 1);
  fused1.backend = "fused@1";
  rows.push_back(fused1);
  for (const std::string& name : backend_names<D3Q19, double>())
    rows.push_back(runBackend(name, hostCores));

  perf::printHeading("Registered-backend MLUPS ladder — D3Q19 f64 periodic " +
                     std::to_string(kN) + "^3, host cores: " +
                     std::to_string(hostCores));
  perf::Table t({"backend", "threads", "host MLUPS", "population MiB",
                 "mem vs fused"});
  for (const Row& r : rows)
    t.addRow({r.backend, std::to_string(r.threads),
              perf::Table::num(r.mlups, 2),
              perf::Table::num(static_cast<double>(r.populationBytes) /
                                   (1024.0 * 1024.0),
                               1),
              perf::Table::num(r.memRatio, 2)});
  t.print();
  std::cout << "threads-vs-fused@1 is the thread-team speedup (expect >1 "
               "only on multi-core hosts); swcpe is the CPE emulator, not "
               "a Sunway projection.\n";

  if (!jsonPath.empty()) {
    obs::BenchReport report("bench_backends");
    for (const Row& r : rows) {
      std::string key = r.backend;
      std::replace(key.begin(), key.end(), '@', '_');
      obs::BenchReport::Result& res = report.add("backend_" + key);
      res.set("mlups", r.mlups);
      res.set("population_bytes", static_cast<double>(r.populationBytes));
      res.set("mem_ratio_vs_fused", r.memRatio);
      res.set("threads", r.threads);
      res.set("host_cores", hostCores);
      res.set("cells", static_cast<double>(kN) * kN * kN);
      res.setText("backend", r.backend);
    }
    report.write(jsonPath);
    std::cout << "\nwrote " << jsonPath << "\n";
  }
  return 0;
}
