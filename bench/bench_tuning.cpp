// Auto-tuner validation bench (DESIGN.md §9): does the plan the tuner
// picks land at or below the worst untuned configuration?
//
// Three views:
//   1. halo scheduling — both modes measured for real on the
//      threads-as-ranks runtime with synthetic network latency (the same
//      setup as bench_halo_overlap); the tuned row reuses the measurement
//      of whichever mode the plan selected, so "tuned <= worst untuned"
//      is checked against numbers from one table, not separate runs;
//   2. CPE chunk_x — the tuner's deterministic emulator ladder, straight
//      from the plan's evidence;
//   3. ring threshold — the model crossover per rank count, next to the
//      NetworkModel seconds on both sides of it.
#include <algorithm>
#include <cstring>
#include <iostream>

#include "obs/bench_report.hpp"
#include "obs/metrics.hpp"
#include "perf/network.hpp"
#include "perf/report.hpp"
#include "runtime/distributed_solver.hpp"
#include "tune/tuner.hpp"

using namespace swlb;
using runtime::Comm;
using runtime::DistributedSolver;
using runtime::HaloMode;
using runtime::World;
using runtime::WorldConfig;

namespace {

constexpr Int3 kExtent{64, 64, 32};
constexpr int kRanks = 4;
constexpr double kLatency = 2e-3;  // synthetic; see bench_halo_overlap
constexpr int kSteps = 20;

/// Mean step seconds of a 4-rank run under `mode` (slowest rank).
double measureStepSeconds(HaloMode mode) {
  WorldConfig wc;
  wc.latency = kLatency;
  wc.busyWait = true;
  World world(kRanks, wc);
  double mlups = 0;
  world.run([&](Comm& c) {
    DistributedSolver<D3Q19>::Config cfg;
    cfg.global = kExtent;
    cfg.collision.omega = 1.5;
    cfg.periodic = {true, true, true};
    cfg.procGrid = {2, 2, 1};
    cfg.mode = mode;
    DistributedSolver<D3Q19> solver(c, cfg);
    solver.finalizeMask();
    solver.initUniform(1.0, {0.02, 0, 0});
    const double m = solver.runMeasured(kSteps);
    if (c.rank() == 0) mlups = m;
  });
  const double cells =
      static_cast<double>(kExtent.x) * kExtent.y * kExtent.z;
  return cells / (mlups * 1e6);
}

}  // namespace

int main(int argc, char** argv) {
  std::string jsonPath;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      jsonPath = argv[++i];
    } else {
      std::cerr << "usage: bench_tuning [--json <path>]\n";
      return 2;
    }
  }
  obs::BenchReport report("bench_tuning");

  // ---- the plan --------------------------------------------------------
  tune::TuningInput tin;
  tin.lattice = "D3Q19";
  tin.extent = kExtent;
  tin.ranks = kRanks;
  obs::MetricsRegistry tuneReg;
  tune::TuningPlan plan;
  {
    obs::ScopedBind bind(nullptr, &tuneReg);
    plan = tune::Tuner().plan(tin);
  }
  perf::printHeading("Auto-tuned plan for " + tin.key().toString());
  std::cout << tune::summary(plan) << "\n";

  // ---- backend trials (measured MLUPS ladder) --------------------------
  // A second plan with short wall-clock trials enabled: the tuner runs
  // the backend ladder on a proxy lattice and records the pick.
  tune::TunerConfig trialCfg;
  trialCfg.backendTrialSteps = 10;
  tune::TuningPlan trialPlan;
  {
    obs::ScopedBind bind(nullptr, &tuneReg);
    trialPlan = tune::Tuner(trialCfg).plan(tin);
  }
  perf::printHeading("Backend trial ladder (measured, proxy lattice)");
  perf::Table kt({"backend", "trial MLUPS", "note"});
  for (const char* name : {"fused", "simd", "esoteric", "threads"}) {
    const auto it = trialPlan.evidence.find(std::string("trial.backend.") +
                                            name + "_mlups");
    kt.addRow({name,
               it == trialPlan.evidence.end() ? "-"
                                              : perf::Table::num(it->second, 2),
               trialPlan.backend == name ? "<- tuned pick" : ""});
  }
  kt.print();

  // ---- halo scheduling: measured both ways -----------------------------
  const double seqS = measureStepSeconds(HaloMode::Sequential);
  const double ovlS = measureStepSeconds(HaloMode::Overlap);
  const double tunedS =
      plan.haloMode == HaloMode::Overlap ? ovlS : seqS;
  const double worstS = std::max(seqS, ovlS);

  perf::printHeading("Halo scheduling, measured (4 ranks, 64x64x32, " +
                     perf::Table::num(kLatency * 1e6, 0) + " us latency)");
  perf::Table t({"configuration", "step seconds", "note"});
  t.addRow({"sequential", perf::Table::num(seqS * 1e3, 3) + " ms",
            plan.haloMode == HaloMode::Sequential ? "<- tuned pick" : ""});
  t.addRow({"overlap", perf::Table::num(ovlS * 1e3, 3) + " ms",
            plan.haloMode == HaloMode::Overlap ? "<- tuned pick" : ""});
  t.addRow({"tuned plan", perf::Table::num(tunedS * 1e3, 3) + " ms",
            tunedS <= worstS ? "<= worst untuned (ok)" : "REGRESSION"});
  t.print();

  // ---- chunk_x: the tuner's own deterministic emulator ladder ----------
  perf::printHeading("CPE chunk_x ladder (deterministic emulator trials)");
  perf::Table ct({"chunk_x", "modeled DMA+fabric s", "note"});
  double worstChunkS = 0, tunedChunkS = 0;
  for (const auto& [key, sec] : plan.evidence) {
    if (key.rfind("trial.chunk_x.", 0) != 0) continue;
    const int c = std::stoi(key.substr(std::strlen("trial.chunk_x.")));
    worstChunkS = std::max(worstChunkS, sec);
    if (c == plan.chunkX) tunedChunkS = sec;
    ct.addRow({perf::Table::num(c, 0), perf::Table::num(sec * 1e3, 3) + " ms",
               c == plan.chunkX ? "<- tuned pick" : ""});
  }
  ct.print();

  // ---- ring threshold vs the network model -----------------------------
  perf::printHeading("Collective ring threshold (model crossover)");
  const perf::NetworkModel net(tin.machine.net,
                               tin.machine.coreGroupsPerProcessor);
  using CA = perf::NetworkModel::CollAlgo;
  perf::Table rt({"ranks", "crossover bytes", "tree s @ 8 B", "ring s @ 8 B",
                  "tree s @ 16 MiB", "ring s @ 16 MiB"});
  for (int ranks : {4, 16, 64, 256}) {
    const std::size_t cross =
        tune::Tuner::ringCrossoverBytes(tin.machine, ranks);
    rt.addRow({perf::Table::num(ranks, 0), perf::Table::num(double(cross), 0),
               perf::Table::num(net.collectiveSeconds(CA::Tree, 8, ranks) * 1e6,
                                2) + " us",
               perf::Table::num(net.collectiveSeconds(CA::Ring, 8, ranks) * 1e6,
                                2) + " us",
               perf::Table::num(
                   net.collectiveSeconds(CA::Tree, 16 << 20, ranks) * 1e3, 2) +
                   " ms",
               perf::Table::num(
                   net.collectiveSeconds(CA::Ring, 16 << 20, ranks) * 1e3, 2) +
                   " ms"});
  }
  rt.print();

  if (!jsonPath.empty()) {
    obs::BenchReport::Result& rs = report.add("halo_sequential");
    rs.set("step_s", seqS);
    rs.set("steps", kSteps);
    rs.set("latency_s", kLatency);
    obs::BenchReport::Result& ro = report.add("halo_overlap");
    ro.set("step_s", ovlS);
    ro.set("steps", kSteps);
    ro.set("latency_s", kLatency);
    obs::BenchReport::Result& rt2 = report.add("tuned");
    rt2.set("step_s", tunedS);
    rt2.set("worst_untuned_step_s", worstS);
    rt2.set("chunk_x", plan.chunkX);
    rt2.set("ring_threshold_bytes",
            static_cast<double>(plan.ringThresholdBytes));
    rt2.set("halo_overlap", plan.haloMode == HaloMode::Overlap ? 1 : 0);
    rt2.set("chunk_trial_s", tunedChunkS);
    rt2.set("worst_chunk_trial_s", worstChunkS);
    rt2.setText("key", tin.key().toString());
    rt2.setText("halo_mode", tune::halo_mode_name(plan.haloMode));
    rt2.setText("source", plan.source);
    rt2.setText("backend", trialPlan.backend);
    for (const char* name : {"fused", "simd", "esoteric", "threads"}) {
      const auto it = trialPlan.evidence.find(std::string("trial.backend.") +
                                              name + "_mlups");
      if (it != trialPlan.evidence.end())
        rt2.set(std::string("backend_trial_") + name + "_mlups", it->second);
    }
    rt2.addMetrics(tuneReg);
    report.write(jsonPath);
    std::cout << "wrote " << jsonPath << "\n";
  }

  const bool ok = tunedS <= worstS && (worstChunkS == 0 ||
                                       tunedChunkS <= worstChunkS);
  std::cout << (ok ? "tuned plan is <= the worst untuned configuration\n"
                   : "TUNING REGRESSION: tuned plan slower than worst "
                     "untuned configuration\n");
  return ok ? 0 : 1;
}
