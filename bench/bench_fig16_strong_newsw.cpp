// Fig. 16: strong scaling of three simulations on the new Sunway
// supercomputer: wind field (4000x4000x1000, 13k -> 130k cores), wake
// (200000x1000x1500, 65k -> 1.17M cores), flow past cylinder
// (10000x7000x5000, 390k -> 3.9M cores, 72.2% efficiency).
#include <iostream>

#include "perf/report.hpp"
#include "perf/scaling.hpp"

using namespace swlb;

namespace {

void printCase(const char* name, const Int3& global,
               const std::vector<std::pair<int, int>>& grids,
               const perf::ScalingSimulator& sim) {
  perf::printHeading(std::string("Fig. 16 — strong scaling, ") + name + " " +
                     std::to_string(global.x) + "x" + std::to_string(global.y) +
                     "x" + std::to_string(global.z) + " (modeled)");
  perf::Table t({"core groups", "cores", "block/CG", "GLUPS", "efficiency"});
  for (const auto& p : sim.strongScaling(global, grids)) {
    t.addRow({std::to_string(p.nCg), std::to_string(p.cores),
              std::to_string(p.block.x) + "x" + std::to_string(p.block.y) + "x" +
                  std::to_string(p.block.z),
              perf::Table::num(p.glups, 1), perf::Table::pct(p.efficiency)});
  }
  t.print();
}

}  // namespace

int main() {
  perf::ScalingSimulator sim(sw::MachineSpec::sw26010pro(), perf::LbmCostModel{});
  printCase("wind field simulation", {4000, 4000, 1000},
            {{20, 10}, {25, 20}, {40, 25}, {50, 40}}, sim);
  printCase("wake simulation", {200000, 1000, 1500},
            {{500, 2}, {1000, 3}, {2000, 4}, {3600, 5}}, sim);
  printCase("flow past cylinder", {10000, 7000, 5000},
            {{100, 60}, {150, 80}, {200, 150}, {300, 200}}, sim);
  std::cout << "\npaper: cylinder case 72.2% parallel efficiency at 3.9M "
               "cores; Suboff on the new system 84.6%\n";
  return 0;
}
