// Fig. 13: weak scaling on Sunway TaihuLight — 500x700x100 cells per core
// group, 1 CG (65 cores) to 160,000 CGs (10.4M cores).  Paper: 5.6T cells,
// 11,245 GLUPS, 4.7 PFlops, ~94% parallel efficiency, 77% bandwidth
// utilization at the largest run.
#include <iostream>

#include "perf/report.hpp"
#include "perf/scaling.hpp"

using namespace swlb;

int main() {
  perf::ScalingSimulator sim(sw::MachineSpec::sw26010(), perf::LbmCostModel{});
  const Int3 block{500, 700, 100};
  const std::vector<std::pair<int, int>> grids = {
      {1, 1},     {2, 2},     {5, 4},     {10, 10},  {25, 20},
      {50, 50},   {100, 100}, {200, 200}, {320, 250}, {400, 400}};

  perf::printHeading("Fig. 13 — weak scaling, Sunway TaihuLight (modeled)");
  perf::Table t({"core groups", "cores", "cells", "GLUPS", "PFlops",
                 "efficiency", "BW util"});
  for (const auto& p : sim.weakScaling(block, grids)) {
    t.addRow({std::to_string(p.nCg), std::to_string(p.cores),
              perf::Table::eng(p.cells, "", 2), perf::Table::num(p.glups, 1),
              perf::Table::num(p.pflops, 2), perf::Table::pct(p.efficiency),
              perf::Table::pct(p.bwUtilization)});
  }
  t.print();
  std::cout << "paper @160000 CGs: 11245 GLUPS, 4.7 PFlops, ~94% parallel "
               "efficiency, 77% bandwidth utilization\n";
  return 0;
}
