// Fig. 17: strong scaling on the GPU cluster — experimental wind-field
// simulation (1400x2800x100 cells), 1 node (8 GPUs) to 8 nodes (64 GPUs).
// Paper: 86.3% strong-scaling efficiency at 8 nodes.
#include <iostream>

#include "perf/gpu_model.hpp"
#include "perf/report.hpp"

using namespace swlb;

int main() {
  perf::GpuClusterModel gpu;
  perf::printHeading("Fig. 17 — GPU cluster strong scaling (modeled)");
  perf::Table t({"nodes", "GPUs", "s/step", "GLUPS", "efficiency"});
  for (const auto& p : gpu.strongScaling()) {
    t.addRow({std::to_string(p.nodes), std::to_string(p.gpus),
              perf::Table::num(p.stepSeconds, 5), perf::Table::num(p.glups, 1),
              perf::Table::pct(p.efficiency)});
  }
  t.print();
  std::cout << "paper: 86.3% strong-scaling efficiency at 8 nodes / 64 GPUs\n";
  return 0;
}
