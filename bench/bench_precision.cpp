// Storage-precision ladder (DESIGN.md §8): the same D3Q19 lid cavity run
// with f64, f32 and f16 population storage.  For each storage type the
// table reports the streamed memory volume per cell update (2*Q*elem for
// the A-B pull kernel), the measured host MLUPS, the velocity-field error
// against the f64 run after the same number of steps, and the LDM block
// width one SW26010 CPE can hold — the two levers the paper's Fig. 8
// blocking model gains from smaller elements.
//
// With --json <path> the rows are serialized as a swlb-bench-v1
// BenchReport — the writer behind the BENCH_precision.json seed.
#include <cmath>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <vector>

#include "core/precision.hpp"
#include "core/solver.hpp"
#include "obs/bench_report.hpp"
#include "obs/step_profiler.hpp"
#include "perf/report.hpp"
#include "sw/sw_kernels.hpp"

using namespace swlb;

namespace {

constexpr int kN = 32;
constexpr int kSteps = 100;
constexpr Real kULid = 0.08;

struct Row {
  std::string storage;
  double bytesPerCell = 0;  ///< streamed per cell update (read + write)
  double mlups = 0;
  double maxVelErr = 0;  ///< vs the f64 run, in lattice units
  int chunkX = 0;        ///< max LDM block width on one CPE
};

/// Lid-driven cavity: n x n x n fluid cells, a moving-wall lid row on top
/// (+y), periodic in z.
template <class S>
Solver<D3Q19, S> makeCavity() {
  CollisionConfig cfg;
  cfg.omega = omega_from_tau(tau_from_viscosity(kULid * kN / 400.0));
  Solver<D3Q19, S> solver(Grid(kN, kN + 1, kN), cfg,
                          Periodicity{false, false, true});
  const auto lid = solver.materials().addMovingWall({kULid, 0, 0});
  solver.paint({{0, kN, 0}, {kN, kN + 1, kN}}, lid);
  solver.finalizeMask();
  solver.initUniform(1.0, {0, 0, 0});
  return solver;
}

template <class S>
Row runStorage(const std::vector<Vec3>& reference) {
  auto solver = makeCavity<S>();
  obs::StepProfiler prof(static_cast<double>(solver.grid().interiorVolume()));
  for (int s = 0; s < kSteps; ++s) prof.step([&] { solver.step(); });

  Row row;
  row.storage = StorageTraits<S>::name();
  row.bytesPerCell = 2.0 * D3Q19::Q * sizeof(S);
  row.mlups = prof.mlups();
  row.chunkX = sw::max_chunk_x(64u << 10, /*rowsY=*/1, D3Q19::Q, sizeof(S));
  if (!reference.empty()) {
    std::size_t k = 0;
    for (int z = 0; z < kN; ++z)
      for (int y = 0; y < kN; ++y)
        for (int x = 0; x < kN; ++x) {
          const Vec3 u = solver.velocity(x, y, z);
          const Vec3& r = reference[k++];
          row.maxVelErr = std::max(
              {row.maxVelErr, std::abs(u.x - r.x), std::abs(u.y - r.y),
               std::abs(u.z - r.z)});
        }
  }
  return row;
}

std::vector<Vec3> referenceVelocities() {
  auto solver = makeCavity<Real>();
  solver.run(kSteps);
  std::vector<Vec3> out;
  out.reserve(static_cast<std::size_t>(kN) * kN * kN);
  for (int z = 0; z < kN; ++z)
    for (int y = 0; y < kN; ++y)
      for (int x = 0; x < kN; ++x) out.push_back(solver.velocity(x, y, z));
  return out;
}

std::string sci(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2e", v);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  std::string jsonPath;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      jsonPath = argv[++i];
    } else {
      std::cerr << "usage: bench_precision [--json <path>]\n";
      return 2;
    }
  }

  const std::vector<Vec3> ref = referenceVelocities();
  Row rows[3] = {runStorage<double>(ref), runStorage<float>(ref),
                 runStorage<f16>(ref)};

  perf::printHeading("Storage-precision ladder — D3Q19 lid cavity " +
                     std::to_string(kN) + "^3, " + std::to_string(kSteps) +
                     " steps (FP64 compute throughout)");
  perf::Table t({"storage", "bytes/cell/step", "host MLUPS",
                 "max |u - u_f64|", "CPE chunk_x (64 KiB LDM)"});
  for (const Row& r : rows)
    t.addRow({r.storage, perf::Table::num(r.bytesPerCell, 0),
              perf::Table::num(r.mlups, 2),
              r.storage == "f64" ? std::string("0 (reference)") : sci(r.maxVelErr),
              std::to_string(r.chunkX)});
  t.print();
  std::cout << "f32 halves and f16 quarters the streamed bytes and the "
               "halo/checkpoint/DMA volume; weight-shifted storage keeps "
               "the quantization on the deviation from equilibrium.\n";

  if (!jsonPath.empty()) {
    obs::BenchReport report("bench_precision");
    for (const Row& r : rows) {
      obs::BenchReport::Result& res = report.add(r.storage);
      res.set("bytes_per_cell", r.bytesPerCell);
      res.set("mlups", r.mlups);
      res.set("max_vel_err", r.maxVelErr);
      res.set("chunk_x", r.chunkX);
      res.set("cells", static_cast<double>(kN) * kN * kN);
      res.set("steps", kSteps);
      res.setText("size", std::to_string(kN) + "x" + std::to_string(kN + 1) +
                              "x" + std::to_string(kN));
    }
    report.write(jsonPath);
    std::cout << "\nwrote " << jsonPath << "\n";
  }
  return 0;
}
