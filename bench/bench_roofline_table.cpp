// §V-A2 roofline analysis table: 380 B/LUP, 90.4 MLUPS per core group,
// 14,464 GLUPS upper bound over 160,000 CGs, 77% bandwidth utilization on
// TaihuLight (vs 67.4% JUQUEEN / 69% Piz Daint in prior work) and 81.4%
// on the new Sunway.
#include <iostream>

#include "perf/cost_model.hpp"
#include "perf/report.hpp"
#include "perf/roofline.hpp"
#include "sw/spec.hpp"

using namespace swlb;

int main() {
  perf::LbmCostModel cost;
  const auto tl = sw::MachineSpec::sw26010();
  const auto pro = sw::MachineSpec::sw26010pro();

  perf::printHeading("LBM cost model (D3Q19 fused pull kernel)");
  perf::Table c({"quantity", "value"});
  c.addRow({"bytes per lattice update", perf::Table::num(cost.bytesPerLup(), 0) + " B"});
  c.addRow({"bytes per update, unfused", perf::Table::num(cost.bytesPerLupUnfused(), 0) + " B"});
  c.addRow({"flops per lattice update", perf::Table::num(cost.flopsPerLup, 0)});
  c.addRow({"arithmetic intensity", perf::Table::num(cost.arithmeticIntensity(), 2) + " flop/B"});
  c.print();

  perf::printHeading("Roofline bounds (paper §V-A2)");
  perf::Table t({"machine", "BW/CG", "peak flops/CG", "ridge point",
                 "bound MLUPS/CG", "bound GLUPS @ full scale"});
  {
    perf::Roofline r{tl.cg.peakFlops(), tl.cg.dma.peakBandwidth};
    t.addRow({tl.name, perf::Table::eng(tl.cg.dma.peakBandwidth, "B/s"),
              perf::Table::eng(tl.cg.peakFlops(), "F/s"),
              perf::Table::num(r.ridgePoint(), 1) + " flop/B",
              perf::Table::num(cost.lupsUpperBound(tl.cg.dma.peakBandwidth) / 1e6, 1),
              perf::Table::num(cost.lupsUpperBound(tl.cg.dma.peakBandwidth) * 160000 / 1e9, 0)});
  }
  {
    perf::Roofline r{pro.cg.peakFlops(), pro.cg.dma.peakBandwidth};
    t.addRow({pro.name, perf::Table::eng(pro.cg.dma.peakBandwidth, "B/s"),
              perf::Table::eng(pro.cg.peakFlops(), "F/s"),
              perf::Table::num(r.ridgePoint(), 1) + " flop/B",
              perf::Table::num(cost.lupsUpperBound(pro.cg.dma.peakBandwidth) / 1e6, 1),
              perf::Table::num(cost.lupsUpperBound(pro.cg.dma.peakBandwidth) * 60000 / 1e9, 0)});
  }
  t.print();

  perf::printHeading("Measured-by-the-paper utilization, recomputed");
  perf::Table u({"system", "GLUPS", "CGs", "BW utilization", "PFlops"});
  u.addRow({"TaihuLight (paper)", "11245", "160000",
            perf::Table::pct(cost.bandwidthUtilization(11245e9 / 160000,
                                                       tl.cg.dma.peakBandwidth)),
            perf::Table::num(cost.flops(11245e9) / 1e15, 2)});
  u.addRow({"new Sunway (paper)", "6583", "60000",
            perf::Table::pct(cost.bandwidthUtilization(6583e9 / 60000,
                                                       pro.cg.dma.peakBandwidth)),
            perf::Table::num(cost.flops(6583e9) / 1e15, 2)});
  u.print();
  std::cout << "state of the art compared in the paper: JUQUEEN 67.4%, "
               "Piz Daint 69%\n";
  return 0;
}
