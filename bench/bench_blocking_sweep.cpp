// §IV-C2 ablation: DMA block-size sweep on the emulated CPE cluster.
// The paper blocks data so that "as much continuous block size as
// possible" is copied per DMA; this sweep shows the effective-bandwidth
// curve that motivates it, the LDM ceiling that limits it on SW26010,
// and the headroom the 4x larger LDM of SW26010-Pro buys.
#include <iostream>

#include "core/kernels.hpp"
#include "perf/report.hpp"
#include "perf/scaling.hpp"
#include "sw/sw_kernels.hpp"

using namespace swlb;

int main() {
  const int nx = 128, ny = 64, nz = 8;
  Grid grid(nx, ny, nz);
  PopulationField src(grid, D3Q19::Q), dst(grid, D3Q19::Q);
  MaskField mask(grid, MaterialTable::kFluid);
  MaterialTable mats;
  fill_halo_mask(mask, Periodicity{true, true, true}, MaterialTable::kSolid);
  Real feq[D3Q19::Q];
  equilibria<D3Q19>(1.0, {0.02, 0, 0}, feq);
  for (int q = 0; q < D3Q19::Q; ++q)
    for (int z = -1; z <= nz; ++z)
      for (int y = -1; y <= ny; ++y)
        for (int x = -1; x <= nx; ++x) src(q, x, y, z) = feq[q];

  perf::ScalingSimulator simTl(sw::MachineSpec::sw26010(), perf::LbmCostModel{});

  perf::printHeading("DMA chunk-size sweep (emulated, 128x64x8 block)");
  perf::Table t({"machine", "chunkX", "fits LDM?", "LDM high-water",
                 "DMA transactions", "modeled DMA ms", "model eta_dma"});
  for (const auto& machine :
       {sw::MachineSpec::sw26010(), sw::MachineSpec::sw26010pro()}) {
    for (int chunk : {4, 8, 16, 32, 64, 128}) {
      sw::CpeCluster cluster(machine.cg);
      sw::SwKernelConfig cfg;
      cfg.collision.omega = 1.6;
      cfg.chunkX = chunk;
      try {
        const auto rep =
            sw::sw_stream_collide<D3Q19>(cluster, src, dst, mask, mats, cfg);
        t.addRow({machine.name, std::to_string(chunk), "yes",
                  std::to_string(rep.ldmHighWater) + " B",
                  std::to_string(rep.dma.transactions()),
                  perf::Table::num(rep.dmaSeconds * 1e3, 3),
                  perf::Table::pct(simTl.dmaEfficiency(chunk))});
      } catch (const Error&) {
        t.addRow({machine.name, std::to_string(chunk), "NO (LDM overflow)", "-",
                  "-", "-", perf::Table::pct(simTl.dmaEfficiency(chunk))});
      }
    }
  }
  t.print();
  std::cout << "SW26010's 64 KB LDM caps the D3Q19 row plan near chunkX=32; "
               "SW26010-Pro's 256 KB allows 4x longer rows (paper §III-B)\n";
  return 0;
}
