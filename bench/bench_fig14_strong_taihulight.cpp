// Fig. 14: strong scaling of three simulations on Sunway TaihuLight,
// 1,064,960 -> 10,400,000 cores.  Paper: flow-past-cylinder reaches
// 71.48% parallel efficiency at 10.4M cores; DARPA Suboff 68.89%.
#include <iostream>

#include "perf/report.hpp"
#include "perf/scaling.hpp"

using namespace swlb;

namespace {

void printCase(const char* name, const Int3& global,
               const perf::ScalingSimulator& sim) {
  const std::vector<std::pair<int, int>> grids = {
      {128, 128}, {200, 160}, {256, 256}, {400, 400}};
  perf::printHeading(std::string("Fig. 14 — strong scaling, ") + name + " " +
                     std::to_string(global.x) + "x" + std::to_string(global.y) +
                     "x" + std::to_string(global.z) + " (modeled)");
  perf::Table t({"core groups", "cores", "block/CG", "GLUPS", "efficiency"});
  for (const auto& p : sim.strongScaling(global, grids)) {
    t.addRow({std::to_string(p.nCg), std::to_string(p.cores),
              std::to_string(p.block.x) + "x" + std::to_string(p.block.y) + "x" +
                  std::to_string(p.block.z),
              perf::Table::num(p.glups, 1), perf::Table::pct(p.efficiency)});
  }
  t.print();
}

}  // namespace

int main() {
  perf::ScalingSimulator sim(sw::MachineSpec::sw26010(), perf::LbmCostModel{});
  // The paper's three strong-scaling cases (§V-A2 and §V-B/C).
  printCase("external flow around cylinder", {10000, 10000, 5000}, sim);
  printCase("DARPA Suboff", {20000, 6000, 4000}, sim);
  printCase("urban wind (Shanghai area)", {11511, 14744, 1600}, sim);
  std::cout << "\npaper @10.4M cores: cylinder 71.48% efficiency, Suboff "
               "68.89%, urban wind ~89% at >8000 GLUPS\n";
  return 0;
}
