// §IV-C1 ablation: on-the-fly halo exchange vs sequential exchange
// (paper: the overlap improves overall performance by ~10%).
//
// Measured for real on the threads-as-ranks runtime with a synthetic
// network latency (without it, shared-memory message passing is too fast
// for the overlap to matter), plus the model's view at full scale.
#include <cstring>
#include <iostream>

#include "obs/bench_report.hpp"
#include "obs/metrics.hpp"
#include "perf/report.hpp"
#include "perf/scaling.hpp"
#include "runtime/distributed_solver.hpp"

using namespace swlb;
using runtime::Comm;
using runtime::DistributedSolver;
using runtime::HaloMode;
using runtime::World;
using runtime::WorldConfig;

namespace {

double measure(HaloMode mode, double latency, int steps,
               obs::MetricsRegistry* metrics = nullptr) {
  WorldConfig wc;
  wc.latency = latency;
  wc.busyWait = true;  // the MPE polls while waiting (see WorldConfig)
  wc.metrics = metrics;
  World world(4, wc);
  double mlups = 0;
  world.run([&](Comm& c) {
    DistributedSolver<D3Q19>::Config cfg;
    cfg.global = {64, 64, 32};
    cfg.collision.omega = 1.5;
    cfg.periodic = {true, true, true};
    cfg.procGrid = {2, 2, 1};
    cfg.mode = mode;
    DistributedSolver<D3Q19> solver(c, cfg);
    solver.finalizeMask();
    solver.initUniform(1.0, {0.02, 0, 0});
    const double m = solver.runMeasured(steps);
    if (c.rank() == 0) mlups = m;
  });
  return mlups;
}

}  // namespace

int main(int argc, char** argv) {
  std::string jsonPath;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      jsonPath = argv[++i];
    } else {
      std::cerr << "usage: bench_halo_overlap [--json <path>]\n";
      return 2;
    }
  }
  obs::BenchReport report("bench_halo_overlap");

  perf::printHeading(
      "On-the-fly halo exchange vs sequential (measured, 4 ranks, 64x64x32)");
  perf::Table t({"network latency", "sequential MLUPS", "overlapped MLUPS",
                 "overlap gain"});
  for (double latency : {0.0, 2e-3, 5e-3}) {
    const int steps = 20;
    const std::string label =
        "latency_" + perf::Table::num(latency * 1e6, 0) + "us";
    obs::MetricsRegistry seqReg, ovlReg;
    const double seq = measure(HaloMode::Sequential, latency, steps,
                               jsonPath.empty() ? nullptr : &seqReg);
    const double ovl = measure(HaloMode::Overlap, latency, steps,
                               jsonPath.empty() ? nullptr : &ovlReg);
    t.addRow({perf::Table::num(latency * 1e6, 0) + " us",
              perf::Table::num(seq, 2), perf::Table::num(ovl, 2),
              perf::Table::num((ovl / seq - 1.0) * 100, 1) + "%"});
    if (!jsonPath.empty()) {
      obs::BenchReport::Result& rs = report.add(label + "_sequential");
      rs.set("mlups", seq);
      rs.set("steps", steps);
      rs.set("latency_s", latency);
      rs.addMetrics(seqReg);
      obs::BenchReport::Result& ro = report.add(label + "_overlap");
      ro.set("mlups", ovl);
      ro.set("steps", steps);
      ro.set("latency_s", latency);
      ro.addMetrics(ovlReg);
    }
  }
  t.print();
  if (!jsonPath.empty()) {
    report.write(jsonPath);
    std::cout << "wrote " << jsonPath << "\n";
  }

  perf::printHeading("Model view at TaihuLight full scale (160,000 CGs)");
  perf::LbmCostModel cost;
  perf::ScalingOptions ovl, seq;
  seq.overlapHalo = false;
  perf::ScalingSimulator simOvl(sw::MachineSpec::sw26010(), cost, ovl);
  perf::ScalingSimulator simSeq(sw::MachineSpec::sw26010(), cost, seq);
  const auto pOvl = simOvl.weakPoint({500, 700, 100}, 400, 400);
  const auto pSeq = simSeq.weakPoint({500, 700, 100}, 400, 400);
  perf::Table m({"scheme", "GLUPS", "efficiency"});
  m.addRow({"sequential (Fig 6(1))", perf::Table::num(pSeq.glups, 0),
            perf::Table::pct(pSeq.efficiency)});
  m.addRow({"on-the-fly (Fig 6(2))", perf::Table::num(pOvl.glups, 0),
            perf::Table::pct(pOvl.efficiency)});
  m.print();
  std::cout << "paper: the on-the-fly scheme improves overall performance by "
               "approximately 10%\n";
  return 0;
}
