// Fig. 15: weak scaling on the new Sunway supercomputer (SW26010-Pro) —
// 1000x700x100 cells per CG, 6,000 -> 60,000 CGs (390k -> 3.9M cores).
// Paper: 4.2T cells, 6,583 GLUPS, 81.4% bandwidth utilization, 2.76 PFlops.
#include <iostream>

#include "perf/report.hpp"
#include "perf/scaling.hpp"

using namespace swlb;

int main() {
  perf::ScalingSimulator sim(sw::MachineSpec::sw26010pro(), perf::LbmCostModel{});
  const Int3 block{1000, 700, 100};
  const std::vector<std::pair<int, int>> grids = {
      {100, 60}, {150, 80}, {200, 100}, {240, 150}, {300, 200}};

  perf::printHeading("Fig. 15 — weak scaling, new Sunway supercomputer (modeled)");
  perf::Table t({"core groups", "cores", "cells", "GLUPS", "PFlops",
                 "efficiency", "BW util"});
  for (const auto& p : sim.weakScaling(block, grids)) {
    t.addRow({std::to_string(p.nCg), std::to_string(p.cores),
              perf::Table::eng(p.cells, "", 2), perf::Table::num(p.glups, 1),
              perf::Table::num(p.pflops, 2), perf::Table::pct(p.efficiency),
              perf::Table::pct(p.bwUtilization)});
  }
  t.print();
  std::cout << "paper @60000 CGs: 6583 GLUPS, 2.76 PFlops, 81.4% bandwidth "
               "utilization\n";
  return 0;
}
