// swlb::coll ablation: naive vs binomial-tree vs ring allreduce
// (DESIGN.md §7).  The size-based Auto policy should match the winner of
// this table at both extremes: latency-bound small payloads go to the
// log-depth tree, bandwidth-bound large payloads to the ring, whose
// per-rank traffic is the asymptotically optimal 2*(P-1)/P of the buffer.
//
// Also cross-checks the measured byte counters against the analytic
// communication volume and prints the NetworkModel's view of the same
// three algorithms, on the host geometry and at machine scale.
#include <chrono>
#include <cstring>
#include <iostream>
#include <vector>

#include "coll/coll.hpp"
#include "obs/bench_report.hpp"
#include "obs/metrics.hpp"
#include "perf/network.hpp"
#include "perf/report.hpp"
#include "runtime/comm.hpp"
#include "sw/spec.hpp"

using namespace swlb;
using runtime::Comm;
using runtime::World;
using runtime::WorldConfig;

namespace {

constexpr int kRanks = 8;

const char* algoName(coll::Algo a) {
  switch (a) {
    case coll::Algo::Naive: return "naive";
    case coll::Algo::Tree: return "tree";
    case coll::Algo::Ring: return "ring";
    default: return "auto";
  }
}

/// Mean seconds per allreduce of `count` doubles under a forced algorithm,
/// barrier-fenced and reduced Max over ranks so the slowest rank defines
/// the collective's cost (as it does in a real bulk-synchronous step).
double measure(coll::Algo algo, std::size_t count, int iters,
               obs::MetricsRegistry* metrics = nullptr) {
  WorldConfig wc;
  wc.metrics = metrics;
  World world(kRanks, wc);
  double perCall = 0;
  world.run([&](Comm& c) {
    coll::CollConfig cfg;
    cfg.allreduce = algo;
    coll::Collectives cs(c, cfg);
    // Zero payload: Sum stays exactly 0.0 over any iteration count.
    std::vector<double> v(count, 0.0);
    cs.allreduce(std::span<double>(v), coll::Op::Sum);  // warm-up
    c.barrier();
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i)
      cs.allreduce(std::span<double>(v), coll::Op::Sum);
    const double sec =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    const double worst = c.allreduce(sec, Comm::Op::Max);
    if (c.rank() == 0) perCall = worst / iters;
  });
  return perCall;
}

/// One clean ring allreduce with metering; returns measured total payload
/// bytes sent across all ranks, for the analytic-volume cross-check.
std::uint64_t meteredRingBytes(std::size_t count) {
  obs::MetricsRegistry reg;
  WorldConfig wc;
  wc.metrics = &reg;
  World world(kRanks, wc);
  world.run([&](Comm& c) {
    coll::CollConfig cfg;
    cfg.allreduce = coll::Algo::Ring;
    coll::Collectives cs(c, cfg);
    std::vector<double> v(count, 1.0);
    cs.allreduce(std::span<double>(v), coll::Op::Sum);
  });
  return reg.counterValue("coll.allreduce.bytes_sent");
}

}  // namespace

int main(int argc, char** argv) {
  std::string jsonPath;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      jsonPath = argv[++i];
    } else {
      std::cerr << "usage: bench_collectives [--json <path>]\n";
      return 2;
    }
  }
  obs::BenchReport report("bench_collectives");

  perf::printHeading("Allreduce algorithms (measured, " +
                     std::to_string(kRanks) + " ranks)");
  perf::Table t({"payload", "algorithm", "per call", "vs naive"});
  const coll::Algo algos[] = {coll::Algo::Naive, coll::Algo::Tree,
                              coll::Algo::Ring};
  struct Case {
    std::size_t count;
    int iters;
    const char* label;
  };
  const Case cases[] = {{1, 200, "8 B"}, {131072, 20, "1 MiB"}};
  for (const Case& cs : cases) {
    double naive = 0;
    for (coll::Algo algo : algos) {
      obs::MetricsRegistry reg;
      const double sec = measure(algo, cs.count, cs.iters,
                                 jsonPath.empty() ? nullptr : &reg);
      if (algo == coll::Algo::Naive) naive = sec;
      t.addRow({cs.label, algoName(algo), perf::Table::num(sec * 1e6, 1) + " us",
                perf::Table::num(naive / sec, 2) + "x"});
      if (!jsonPath.empty()) {
        obs::BenchReport::Result& r = report.add(
            std::string(algoName(algo)) + "_" +
            std::to_string(cs.count * sizeof(double)) + "B");
        r.set("seconds_per_call", sec);
        r.set("payload_bytes", static_cast<double>(cs.count * sizeof(double)));
        r.set("ranks", kRanks);
        r.set("iters", cs.iters);
        r.set("speedup_vs_naive", naive / sec);
        r.setText("algorithm", algoName(algo));
        r.addMetrics(reg);
      }
    }
  }
  t.print();

  perf::printHeading("Measured vs analytic communication volume (ring)");
  {
    const std::size_t count = 131072;
    const std::uint64_t bytes = count * sizeof(double);
    // Ring allreduce: every rank sends 2*(P-1) chunks of bytes/P, so the
    // world-total payload traffic is exactly 2*(P-1)*bytes.
    const std::uint64_t analytic = 2ull * (kRanks - 1) * bytes;
    const std::uint64_t measured = meteredRingBytes(count);
    perf::Table v({"quantity", "bytes"});
    v.addRow({"analytic 2(P-1)*N", std::to_string(analytic)});
    v.addRow({"measured coll.allreduce.bytes_sent", std::to_string(measured)});
    v.print();
    if (measured != analytic) {
      std::cerr << "FAIL: measured ring volume deviates from analytic\n";
      return 1;
    }
    std::cout << "ring volume check: PASS\n";
    if (!jsonPath.empty()) {
      obs::BenchReport::Result& r = report.add("ring_volume_check");
      r.set("analytic_bytes", static_cast<double>(analytic));
      r.set("measured_bytes", static_cast<double>(measured));
      r.set("ranks", kRanks);
    }
  }

  perf::printHeading("NetworkModel cost view (sw26010 geometry)");
  {
    const perf::NetworkModel model(sw::MachineSpec::sw26010().net, kRanks);
    using CA = perf::NetworkModel::CollAlgo;
    perf::Table m({"ranks", "payload", "naive", "tree", "ring"});
    for (int P : {kRanks, 1024, 160000}) {
      const perf::NetworkModel big(sw::MachineSpec::sw26010().net, P);
      for (std::size_t bytes : {std::size_t(8), std::size_t(1) << 20}) {
        m.addRow({std::to_string(P),
                  bytes == 8 ? "8 B" : "1 MiB",
                  perf::Table::num(big.collectiveSeconds(CA::Naive, bytes, P) * 1e6, 1) + " us",
                  perf::Table::num(big.collectiveSeconds(CA::Tree, bytes, P) * 1e6, 1) + " us",
                  perf::Table::num(big.collectiveSeconds(CA::Ring, bytes, P) * 1e6, 1) + " us"});
      }
    }
    m.print();
    (void)model;
  }

  if (!jsonPath.empty()) {
    report.write(jsonPath);
    std::cout << "wrote " << jsonPath << "\n";
  }
  return 0;
}
