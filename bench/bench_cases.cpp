// Measured mini versions of the paper's §V flow cases (cylinder DNS,
// Suboff, urban wind, plus the framework's lid cavity): host MLUPS, the
// modeled core-group MLUPS for the same block, and a key observable per
// case.  These are the "who wins, what's the magnitude" measured rows
// behind Figs. 12/18/19.
//
// With --json <path> the same rows are serialized as a swlb-bench-v1
// BenchReport (per-case phase breakdowns from a bound MetricsRegistry) —
// the writer behind the BENCH_baseline.json seed at the repo root.
#include <cstring>
#include <iostream>

#include "app/cases.hpp"
#include "core/observables.hpp"
#include "core/profiler.hpp"
#include "obs/bench_report.hpp"
#include "obs/context.hpp"
#include "perf/report.hpp"
#include "perf/scaling.hpp"

using namespace swlb;

namespace {

struct Row {
  std::string name;
  std::string size;
  double cells;
  double steps;
  double mlups;
  std::string observable;
  obs::MetricsRegistry metrics;
};

void runCase(Row& row, const std::string& config, int steps,
             const std::string& obsName, bool withMetrics) {
  std::istringstream in(config);
  app::Case c = app::build_case(app::Config::parse(in));
  const Grid& g = c.solver->grid();
  StepProfiler prof(static_cast<double>(g.interiorVolume()));
  {
    // Bind the registry only for --json runs: the default path measures
    // the kernel with observability fully off (the no-op TLS branch).
    obs::ScopedBind bind(nullptr, withMetrics ? &row.metrics : nullptr);
    for (int s = 0; s < steps; ++s)
      prof.step([&] { c.solver->step(); });
  }

  row.name = c.name;
  row.size = std::to_string(g.nx) + "x" + std::to_string(g.ny) + "x" +
             std::to_string(g.nz);
  row.cells = static_cast<double>(g.interiorVolume());
  row.steps = steps;
  row.mlups = prof.mlups();
  if (c.obstacleId != 0) {
    const Vec3 f = momentum_exchange_force<D3Q19>(
        c.solver->f(), c.solver->mask(), c.solver->materials(), c.obstacleId);
    row.observable = obsName + " = " + perf::Table::num(f.x, 5);
  } else {
    const Vec3 u = c.solver->velocity(g.nx / 2, g.ny / 2, g.nz / 2);
    row.observable = obsName + " = " + perf::Table::num(u.x, 5);
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string jsonPath;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      jsonPath = argv[++i];
    } else {
      std::cerr << "usage: bench_cases [--json <path>]\n";
      return 2;
    }
  }

  perf::printHeading("Measured flow cases (host, D3Q19 fused kernel)");
  perf::Table t({"case", "cells", "host MLUPS", "observable"});

  const bool withMetrics = !jsonPath.empty();
  Row rows[4];
  runCase(rows[0], "case = cavity\nnx = 32\nny = 32\nnz = 32\nomega = 1.6\n",
          150, "u_x(centre)", withMetrics);
  runCase(rows[1],
          "case = channel\nnx = 8\nny = 24\nnz = 8\nbody_force = 1e-6\n", 400,
          "u_x(centre)", withMetrics);
  runCase(rows[2],
          "case = cylinder\nnx = 96\nny = 48\nnz = 8\ndiameter = 10\n"
          "omega = 1.4\ninlet_velocity = 0.05\n",
          300, "drag F_x", withMetrics);
  runCase(rows[3], "case = tgv\nnx = 48\nny = 48\nomega = 1.0\n", 300,
          "u_x(centre)", withMetrics);
  for (const Row& r : rows)
    t.addRow({r.name, r.size, perf::Table::num(r.mlups, 2), r.observable});
  t.print();

  if (!jsonPath.empty()) {
    obs::BenchReport report("bench_cases");
    for (const Row& r : rows) {
      obs::BenchReport::Result& res = report.add(r.name);
      res.set("mlups", r.mlups);
      res.set("cells", r.cells);
      res.set("steps", r.steps);
      res.setText("size", r.size);
      res.setText("observable", r.observable);
      res.addMetrics(r.metrics);
    }
    report.write(jsonPath);
    std::cout << "\nwrote " << jsonPath << "\n";
  }

  // Modeled per-core-group rate for comparison: what one SW26010 CG would
  // sustain on the same kernel (90.4 MLUPS bound x efficiency).
  perf::ScalingSimulator sim(sw::MachineSpec::sw26010(), perf::LbmCostModel{});
  const auto cost = sim.cgStepCost({500, 700, 100}, 1);
  std::cout << "\nmodeled SW26010 core group on its 35M-cell block: "
            << perf::Table::num(35.0e6 / cost.stepSeconds / 1e6, 1)
            << " MLUPS (bound 90.4)\n";
  return 0;
}
