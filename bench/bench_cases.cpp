// Measured mini versions of the paper's §V flow cases (cylinder DNS,
// Suboff, urban wind, plus the framework's lid cavity): host MLUPS, the
// modeled core-group MLUPS for the same block, and a key observable per
// case.  These are the "who wins, what's the magnitude" measured rows
// behind Figs. 12/18/19.
#include <iostream>

#include "app/cases.hpp"
#include "core/observables.hpp"
#include "core/profiler.hpp"
#include "perf/report.hpp"
#include "perf/scaling.hpp"

using namespace swlb;

namespace {

struct Row {
  std::string name;
  std::string size;
  double mlups;
  std::string observable;
};

Row runCase(const std::string& config, int steps, const std::string& obsName) {
  std::istringstream in(config);
  app::Case c = app::build_case(app::Config::parse(in));
  const Grid& g = c.solver->grid();
  StepProfiler prof(static_cast<double>(g.interiorVolume()));
  for (int s = 0; s < steps; ++s)
    prof.step([&] { c.solver->step(); });

  Row row;
  row.name = c.name;
  row.size = std::to_string(g.nx) + "x" + std::to_string(g.ny) + "x" +
             std::to_string(g.nz);
  row.mlups = prof.mlups();
  if (c.obstacleId != 0) {
    const Vec3 f = momentum_exchange_force<D3Q19>(
        c.solver->f(), c.solver->mask(), c.solver->materials(), c.obstacleId);
    row.observable = obsName + " = " + perf::Table::num(f.x, 5);
  } else {
    const Vec3 u = c.solver->velocity(g.nx / 2, g.ny / 2, g.nz / 2);
    row.observable = obsName + " = " + perf::Table::num(u.x, 5);
  }
  return row;
}

}  // namespace

int main() {
  perf::printHeading("Measured flow cases (host, D3Q19 fused kernel)");
  perf::Table t({"case", "cells", "host MLUPS", "observable"});

  const Row rows[] = {
      runCase("case = cavity\nnx = 32\nny = 32\nnz = 32\nomega = 1.6\n", 150,
              "u_x(centre)"),
      runCase("case = channel\nnx = 8\nny = 24\nnz = 8\nbody_force = 1e-6\n",
              400, "u_x(centre)"),
      runCase(
          "case = cylinder\nnx = 96\nny = 48\nnz = 8\ndiameter = 10\n"
          "omega = 1.4\ninlet_velocity = 0.05\n",
          300, "drag F_x"),
      runCase("case = tgv\nnx = 48\nny = 48\nomega = 1.0\n", 300, "u_x(centre)"),
  };
  for (const Row& r : rows)
    t.addRow({r.name, r.size, perf::Table::num(r.mlups, 2), r.observable});
  t.print();

  // Modeled per-core-group rate for comparison: what one SW26010 CG would
  // sustain on the same kernel (90.4 MLUPS bound x efficiency).
  perf::ScalingSimulator sim(sw::MachineSpec::sw26010(), perf::LbmCostModel{});
  const auto cost = sim.cgStepCost({500, 700, 100}, 1);
  std::cout << "\nmodeled SW26010 core group on its 35M-cell block: "
            << perf::Table::num(35.0e6 / cost.stepSeconds / 1e6, 1)
            << " MLUPS (bound 90.4)\n";
  return 0;
}
