// Kernel-variant MLUPS ladder — the measured ablations behind the
// paper's design choices (§IV-A/C) plus the two optimized variants this
// repo adds on top of the fused pull kernel:
//
//   * fused     — production scalar SoA pull kernel (baseline, ratio 1.0)
//   * simd      — explicitly vectorized bulk lanes (#pragma omp simd) with
//                 scalar fallback runs around boundary cells
//   * esoteric  — in-place single-buffer streaming (Esoteric-Pull): half
//                 the population memory, no second lattice
//
// Each is run at f64/f32/f16 population storage; the legacy ablations
// (generic pull, two-step, push, AoS layout) ride along at f64.  Rows
// report best-of-3 MLUPS, the *actual allocated* population bytes of the
// solver (so the esoteric 0.5x memory claim is measured, not asserted),
// and the memory ratio against the two-lattice fused baseline at the same
// storage width.
//
// With --json <path> the rows are serialized as a swlb-bench-v1
// BenchReport — the writer behind the BENCH_kernels.json seed and the CI
// smoke that checks simd >= fused MLUPS and the esoteric memory halving.
#include <algorithm>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "core/precision.hpp"
#include "core/solver.hpp"
#include "obs/bench_report.hpp"
#include "obs/step_profiler.hpp"
#include "perf/report.hpp"

using namespace swlb;

namespace {

constexpr int kN = 48;
constexpr int kStepsPerRep = 20;  // even: esoteric reps end in natural phase
constexpr int kReps = 3;

struct Row {
  std::string variant;
  std::string storage;
  double mlups = 0;              ///< best-of-kReps
  std::size_t populationBytes = 0;  ///< actually allocated by the solver
  double memRatio = 0;           ///< vs two-lattice fused, same storage
};

template <class S>
Row runVariant(KernelVariant v) {
  CollisionConfig cfg;
  cfg.omega = 1.6;
  Solver<D3Q19, S> solver(Grid(kN, kN, kN), cfg, Periodicity{true, true, true});
  solver.setVariant(v);
  solver.finalizeMask();
  solver.initField([](int x, int y, int z, Real& rho, Vec3& u) {
    rho = 1.0 + 0.01 * ((x + 2 * y + 3 * z) % 7 - 3) / 3.0;
    u = {0.02, 0.01, -0.01};
  });

  const double cells = static_cast<double>(solver.grid().interiorVolume());
  solver.run(kStepsPerRep);  // warmup (touch pages, warm caches)
  Row row;
  row.variant = kernel_variant_name(v);
  row.storage = StorageTraits<S>::name();
  row.populationBytes = solver.populationBytes();
  const std::size_t oneLattice =
      static_cast<std::size_t>(solver.f().size()) * sizeof(S);
  row.memRatio = static_cast<double>(row.populationBytes) /
                 static_cast<double>(2 * oneLattice);
  for (int rep = 0; rep < kReps; ++rep) {
    obs::StepProfiler prof(cells);
    for (int s = 0; s < kStepsPerRep; ++s) prof.step([&] { solver.step(); });
    row.mlups = std::max(row.mlups, prof.mlups());
  }
  return row;
}

template <class S>
void runLadder(std::vector<Row>& rows) {
  rows.push_back(runVariant<S>(KernelVariant::Fused));
  rows.push_back(runVariant<S>(KernelVariant::Simd));
  rows.push_back(runVariant<S>(KernelVariant::Esoteric));
}

}  // namespace

int main(int argc, char** argv) {
  std::string jsonPath;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      jsonPath = argv[++i];
    } else {
      std::cerr << "usage: bench_kernels [--json <path>]\n";
      return 2;
    }
  }

  std::vector<Row> rows;
  runLadder<double>(rows);
  runLadder<float>(rows);
  runLadder<f16>(rows);
  // Legacy ablations at f64 (§IV-A/C: layout, fusion, push-vs-pull).
  rows.push_back(runVariant<double>(KernelVariant::Generic));
  rows.push_back(runVariant<double>(KernelVariant::TwoStep));
  rows.push_back(runVariant<double>(KernelVariant::Push));

  perf::printHeading("Kernel-variant MLUPS ladder — D3Q19 periodic " +
                     std::to_string(kN) + "^3, best of " +
                     std::to_string(kReps) + "x" +
                     std::to_string(kStepsPerRep) + " steps");
  perf::Table t({"variant", "storage", "host MLUPS", "population MiB",
                 "mem vs fused"});
  for (const Row& r : rows)
    t.addRow({r.variant, r.storage, perf::Table::num(r.mlups, 2),
              perf::Table::num(static_cast<double>(r.populationBytes) /
                                   (1024.0 * 1024.0),
                               1),
              perf::Table::num(r.memRatio, 2)});
  t.print();
  std::cout << "simd vectorizes the all-fluid bulk runs; esoteric streams "
               "in place (single lattice, 0.5x population memory) at the "
               "cost of a rotating layout on odd steps.\n";

  if (!jsonPath.empty()) {
    obs::BenchReport report("bench_kernels");
    for (const Row& r : rows) {
      obs::BenchReport::Result& res = report.add(r.variant + "_" + r.storage);
      res.set("mlups", r.mlups);
      res.set("population_bytes", static_cast<double>(r.populationBytes));
      res.set("mem_ratio_vs_fused", r.memRatio);
      res.set("cells", static_cast<double>(kN) * kN * kN);
      res.set("steps", kStepsPerRep);
      res.setText("variant", r.variant);
      res.setText("storage", r.storage);
    }
    report.write(jsonPath);
    std::cout << "\nwrote " << jsonPath << "\n";
  }
  return 0;
}
