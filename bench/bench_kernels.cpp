// Host microbenchmarks of the kernel variants — the measured ablations
// behind the paper's design choices (§IV-A/C): SoA vs AoS layout, fused
// vs two-step (split) update, pull vs push streaming, optimized vs
// generic fused kernel.
#include <benchmark/benchmark.h>

#include "core/kernels.hpp"

namespace {

using namespace swlb;
using D = D3Q19;

struct BenchState {
  Grid grid;
  PopulationField src, dst;
  PopulationFieldAoS srcA, dstA;
  MaskField mask;
  MaterialTable mats;
  CollisionConfig cfg;
  Periodicity per{true, true, true};

  explicit BenchState(int n)
      : grid(n, n, n),
        src(grid, D::Q),
        dst(grid, D::Q),
        srcA(grid, D::Q),
        dstA(grid, D::Q),
        mask(grid, MaterialTable::kFluid) {
    cfg.omega = 1.6;
    Real feq[D::Q];
    equilibria<D>(1.0, {0.02, 0.01, -0.01}, feq);
    for (int q = 0; q < D::Q; ++q)
      for (int z = -1; z <= grid.nz; ++z)
        for (int y = -1; y <= grid.ny; ++y)
          for (int x = -1; x <= grid.nx; ++x) {
            src(q, x, y, z) = feq[q];
            srcA(q, x, y, z) = feq[q];
          }
    fill_halo_mask(mask, per, MaterialTable::kSolid);
  }

  void counters(benchmark::State& state) const {
    const double cells = static_cast<double>(grid.interiorVolume());
    state.counters["MLUPS"] = benchmark::Counter(
        cells * static_cast<double>(state.iterations()) / 1e6,
        benchmark::Counter::kIsRate);
    state.counters["B/LUP"] = 380;  // cost-model traffic per update
  }
};

void BM_FusedSoA(benchmark::State& state) {
  BenchState b(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    stream_collide_fused<D>(b.src, b.dst, b.mask, b.mats, b.cfg,
                            b.grid.interior());
    benchmark::DoNotOptimize(b.dst.data());
  }
  b.counters(state);
}
BENCHMARK(BM_FusedSoA)->Arg(16)->Arg(32)->Arg(48);

void BM_GenericSoA(benchmark::State& state) {
  BenchState b(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    stream_collide_generic<D>(b.src, b.dst, b.mask, b.mats, b.cfg,
                              b.grid.interior());
    benchmark::DoNotOptimize(b.dst.data());
  }
  b.counters(state);
}
BENCHMARK(BM_GenericSoA)->Arg(32);

void BM_GenericAoS(benchmark::State& state) {
  // The layout the paper rejects: per-cell interleaved populations.
  BenchState b(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    stream_collide_generic<D>(b.srcA, b.dstA, b.mask, b.mats, b.cfg,
                              b.grid.interior());
    benchmark::DoNotOptimize(b.dstA.data());
  }
  b.counters(state);
}
BENCHMARK(BM_GenericAoS)->Arg(32);

void BM_TwoStep(benchmark::State& state) {
  // Separate propagation + collision: the extra field pass the ~30%
  // fusion gain of §IV-C3 removes.
  BenchState b(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    stream_only<D>(b.src, b.dst, b.mask, b.mats, b.grid.interior());
    collide_inplace<D>(b.dst, b.mask, b.mats, b.cfg, b.grid.interior());
    benchmark::DoNotOptimize(b.dst.data());
  }
  b.counters(state);
}
BENCHMARK(BM_TwoStep)->Arg(32);

void BM_Push(benchmark::State& state) {
  BenchState b(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    stream_collide_push<D>(b.src, b.dst, b.mask, b.mats, b.cfg,
                           b.grid.interior(), b.per);
    benchmark::DoNotOptimize(b.dst.data());
  }
  b.counters(state);
}
BENCHMARK(BM_Push)->Arg(32);

void BM_D2Q9Fused(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Grid grid(n, n, 1);
  PopulationField src(grid, D2Q9::Q), dst(grid, D2Q9::Q);
  MaskField mask(grid, MaterialTable::kFluid);
  MaterialTable mats;
  CollisionConfig cfg;
  cfg.omega = 1.5;
  Real feq[D2Q9::Q];
  equilibria<D2Q9>(1.0, {0.03, 0.01, 0}, feq);
  for (int q = 0; q < D2Q9::Q; ++q)
    for (int y = -1; y <= n; ++y)
      for (int x = -1; x <= n; ++x) src(q, x, y, 0) = feq[q];
  fill_halo_mask(mask, Periodicity{true, true, true}, MaterialTable::kSolid);
  for (auto _ : state) {
    stream_collide_fused<D2Q9>(src, dst, mask, mats, cfg, grid.interior());
    benchmark::DoNotOptimize(dst.data());
  }
  state.counters["MLUPS"] = benchmark::Counter(
      static_cast<double>(n) * n * static_cast<double>(state.iterations()) / 1e6,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_D2Q9Fused)->Arg(128)->Arg(256);

}  // namespace

BENCHMARK_MAIN();
