// §IV-C1 ablation: why SunwayLB uses a 2-D xy decomposition.
// "the 1D decomposition scheme cannot expose enough parallelism for
// 160000 MPEs ... the 3D decomposition scheme will bring much more
// complicated communications" — this table quantifies both effects for
// the paper's meshes.
#include <iostream>

#include "perf/report.hpp"
#include "runtime/decomposition.hpp"

using namespace swlb;
using runtime::Decomposition;

namespace {

void tryScheme(perf::Table& t, const char* name, const Int3& global,
               const Int3& grid, int neighbours) {
  try {
    Decomposition d(global, grid);
    t.addRow({name,
              std::to_string(grid.x) + "x" + std::to_string(grid.y) + "x" +
                  std::to_string(grid.z),
              std::to_string(d.rankCount()),
              perf::Table::eng(static_cast<double>(d.totalHaloArea()), "cells"),
              perf::Table::num(d.imbalance(), 3), std::to_string(neighbours)});
  } catch (const Error& e) {
    t.addRow({name,
              std::to_string(grid.x) + "x" + std::to_string(grid.y) + "x" +
                  std::to_string(grid.z),
              "-", std::string("infeasible: ") + e.what(), "-", "-"});
  }
}

}  // namespace

int main() {
  perf::printHeading(
      "Decomposition schemes for the Fig. 13 mesh (200000x280000x100 cells"
      ", 160000 ranks)");
  // Weak-scaling global mesh: 400x400 CGs of 500x700x100.
  const Int3 weak{500 * 400, 700 * 400, 100};
  perf::Table t({"scheme", "process grid", "ranks", "total halo area",
                 "imbalance", "neighbours/rank"});
  // 1-D: fails outright — z (100) and even y cannot host 160000 cuts...
  tryScheme(t, "1-D (z)", weak, {1, 1, 160000}, 2);
  tryScheme(t, "1-D (x)", weak, {160000, 1, 1}, 2);
  tryScheme(t, "2-D xy (paper)", weak, {400, 400, 1}, 8);
  tryScheme(t, "3-D", weak, {100, 80, 20}, 26);
  t.print();

  perf::printHeading(
      "Strong-scaling mesh 10000x10000x5000 on 160000 ranks");
  const Int3 strong{10000, 10000, 5000};
  perf::Table s({"scheme", "process grid", "ranks", "total halo area",
                 "imbalance", "neighbours/rank"});
  tryScheme(s, "1-D (x)", strong, {160000, 1, 1}, 2);
  tryScheme(s, "2-D xy (paper)", strong, {400, 400, 1}, 8);
  tryScheme(s, "3-D", strong, {80, 80, 25}, 26);
  s.print();
  std::cout << "3-D cuts the halo area further but triples the neighbour "
               "count (26 vs 8 messages per step) and complicates the\n"
               "on-the-fly overlap; the paper picks 2-D xy with the full z "
               "axis per subdomain (§IV-C1)\n";

  perf::printHeading(
      "Volume vs fluid-weighted imbalance — 96x96x8 channel, 36% solid "
      "corner block");
  // The volume metric is blind to the mask: every scheme scores ~1.0 while
  // the rank drawing the solid corner idles.  The fluid-weighted overload
  // (runtime/patches feeds on the same counts) exposes the skew the
  // patch-balanced mode removes — see bench_patches for the measured view.
  const Int3 masked{96, 96, 8};
  MaskField mask(Grid(masked.x, masked.y, masked.z), MaterialTable::kFluid);
  for (int z = 0; z < masked.z; ++z)
    for (int y = 0; y < 58; ++y)
      for (int x = 0; x < 58; ++x) mask(x, y, z) = MaterialTable::kSolid;
  perf::Table m({"process grid", "volume imbalance", "fluid imbalance"});
  for (const Int3& g : {Int3{4, 1, 1}, Int3{2, 2, 1}, Int3{1, 4, 1}}) {
    Decomposition d(masked, g);
    m.addRow({std::to_string(g.x) + "x" + std::to_string(g.y) + "x" +
                  std::to_string(g.z),
              perf::Table::num(d.imbalance(), 3),
              perf::Table::num(d.imbalance(mask), 3)});
  }
  m.print();

  perf::printHeading("Auto-chosen grids (halo-minimizing, pz = 1)");
  perf::Table a({"ranks", "mesh", "chosen grid", "halo area"});
  for (int ranks : {64, 1024, 16384}) {
    for (const Int3& mesh : {Int3{4000, 4000, 1000}, Int3{200000, 1000, 1500}}) {
      const Int3 g = Decomposition::choose(ranks, mesh);
      Decomposition d(mesh, g);
      a.addRow({std::to_string(ranks),
                std::to_string(mesh.x) + "x" + std::to_string(mesh.y) + "x" +
                    std::to_string(mesh.z),
                std::to_string(g.x) + "x" + std::to_string(g.y),
                perf::Table::eng(static_cast<double>(d.totalHaloArea()), "cells")});
    }
  }
  a.print();
  return 0;
}
