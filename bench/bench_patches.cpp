// Patch-based decomposition vs the static uniform split (DESIGN.md §13).
//
// The paper's §IV-C1 decomposition gives every rank the same cell
// *volume*; on a masked case (here 36 % solid) the rank that draws the
// all-fluid block becomes the critical path while the solid-heavy rank
// idles.  This bench runs the same masked channel three ways:
//
//   static         — DistributedSolver, uniform 2x2 split
//   patch_balanced — PatchSolver, fluid-weighted bisection over the
//                    Morton curve (4x4 patches on 4 ranks)
//   rebalance      — PatchSolver seeded with the *uniform-count*
//                    assignment (the static-split proxy) on a finer 8x8
//                    patch grid, then one measured rebalance from
//                    per-patch step-time EMAs
//
// and reports MLUPS, the max/min per-rank compute seconds, and the
// measured imbalance before/after the rebalance migration.
//
// With --json <path> the rows are serialized as a swlb-bench-v1
// BenchReport — the writer behind the BENCH_patches.json seed.
#include <cstring>
#include <iostream>
#include <vector>

#include "obs/bench_report.hpp"
#include "obs/context.hpp"
#include "obs/metrics.hpp"
#include "perf/report.hpp"
#include "runtime/distributed_solver.hpp"
#include "runtime/patches.hpp"

using namespace swlb;
using namespace swlb::runtime;

namespace {

constexpr Int3 kGlobal{96, 96, 8};
constexpr int kRanks = 4;
constexpr int kSteps = 40;
// Solid block covering the low-x/low-y corner: 0.6 * 0.6 = 36 % of the
// domain, entirely inside the static split's rank (0,0).
constexpr Box3 kSolidBox{{0, 0, 0}, {58, 58, kGlobal.z}};

void initSmooth(int x, int y, int z, Real& rho, Vec3& u) {
  rho = 1.0 + 0.01 * ((x + 2 * y + 3 * z) % 7);
  u = {0.02, 0.01, 0.0};
}

double solidFraction() {
  const double solid = static_cast<double>(kSolidBox.volume());
  const double all =
      static_cast<double>(kGlobal.x) * kGlobal.y * kGlobal.z;
  return solid / all;
}

struct RunResult {
  double mlups = 0;
  double maxRankComputeS = 0;
  double minRankComputeS = 0;
  double fluidImbalance = 0;  ///< fluid-weighted load imbalance (max/mean)
};

/// Static uniform split: per-rank compute time comes from each rank's own
/// metrics registry (compute.interior + compute.frontier span totals).
RunResult runStatic() {
  RunResult out;
  std::vector<double> computeS(kRanks, 0.0);
  World world(kRanks);
  world.run([&](Comm& c) {
    obs::MetricsRegistry reg;
    obs::ScopedBind bind(nullptr, &reg);
    typename DistributedSolver<D3Q19>::Config cfg;
    cfg.global = kGlobal;
    cfg.collision.omega = 1.7;
    cfg.periodic = {true, true, true};
    cfg.procGrid = {2, 2, 1};
    DistributedSolver<D3Q19> solver(c, cfg);
    solver.paintGlobal(kSolidBox, MaterialTable::kSolid);
    solver.finalizeMask();
    solver.initField(initSmooth);
    const double mlups = solver.runMeasured(kSteps);
    computeS[static_cast<std::size_t>(c.rank())] =
        reg.histogramSummary("compute.interior").total +
        reg.histogramSummary("compute.frontier").total;
    if (c.rank() == 0) out.mlups = mlups;
  });
  out.maxRankComputeS = *std::max_element(computeS.begin(), computeS.end());
  out.minRankComputeS = *std::min_element(computeS.begin(), computeS.end());
  Decomposition d(kGlobal, {2, 2, 1});
  MaskField mask(Grid(kGlobal.x, kGlobal.y, kGlobal.z),
                 MaterialTable::kFluid);
  for (int z = kSolidBox.lo.z; z < kSolidBox.hi.z; ++z)
    for (int y = kSolidBox.lo.y; y < kSolidBox.hi.y; ++y)
      for (int x = kSolidBox.lo.x; x < kSolidBox.hi.x; ++x)
        mask(x, y, z) = MaterialTable::kSolid;
  out.fluidImbalance = d.imbalance(mask);
  return out;
}

RunResult runPatchBalanced() {
  RunResult out;
  std::vector<double> computeS(kRanks, 0.0);
  World world(kRanks);
  world.run([&](Comm& c) {
    typename PatchSolver<D3Q19>::Config cfg;
    cfg.global = kGlobal;
    cfg.collision.omega = 1.7;
    cfg.periodic = {true, true, true};
    cfg.patchGrid = {4, 4, 1};
    PatchSolver<D3Q19> solver(c, cfg);
    solver.paintGlobal(kSolidBox, MaterialTable::kSolid);
    solver.finalizeMask();
    solver.initField(initSmooth);
    const double mlups = solver.runMeasured(kSteps);
    computeS[static_cast<std::size_t>(c.rank())] = solver.computeSeconds();
    if (c.rank() == 0) {
      out.mlups = mlups;
      out.fluidImbalance = PatchLayout::rankImbalance(
          solver.owners(),
          solver.layout().fluidWeights(solver.globalMask(),
                                       solver.materials()),
          c.size());
    }
  });
  out.maxRankComputeS = *std::max_element(computeS.begin(), computeS.end());
  out.minRankComputeS = *std::min_element(computeS.begin(), computeS.end());
  return out;
}

struct RebalanceResult {
  double imbalanceBefore = 0;
  double imbalanceAfter = 0;
  int migrations = 0;
};

/// Uniform-count start (the static-split proxy), a few steps to warm the
/// per-patch EMAs, one measured rebalance.
RebalanceResult runRebalance() {
  RebalanceResult out;
  World world(kRanks);
  world.run([&](Comm& c) {
    typename PatchSolver<D3Q19>::Config cfg;
    cfg.global = kGlobal;
    cfg.collision.omega = 1.7;
    cfg.periodic = {true, true, true};
    cfg.patchGrid = {8, 8, 1};
    cfg.assignment = PatchSolver<D3Q19>::Assignment::UniformCount;
    PatchSolver<D3Q19> solver(c, cfg);
    solver.paintGlobal(kSolidBox, MaterialTable::kSolid);
    solver.finalizeMask();
    solver.initField(initSmooth);
    solver.run(8);  // warm the measured EMAs
    const std::vector<double> w = solver.measuredWeights();
    const double before =
        PatchLayout::rankImbalance(solver.owners(), w, c.size());
    const int moved = solver.rebalanceNow(w, 1.05);
    const double after =
        PatchLayout::rankImbalance(solver.owners(), w, c.size());
    solver.run(4);  // prove the migrated layout still steps
    if (c.rank() == 0) {
      out.imbalanceBefore = before;
      out.imbalanceAfter = after;
      out.migrations = moved;
    }
  });
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string jsonPath;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      jsonPath = argv[++i];
    } else {
      std::cerr << "usage: bench_patches [--json <path>]\n";
      return 2;
    }
  }

  const RunResult stat = runStatic();
  const RunResult bal = runPatchBalanced();
  const RebalanceResult reb = runRebalance();

  perf::printHeading(
      "Patch-balanced vs static decomposition — masked channel " +
      std::to_string(kGlobal.x) + "x" + std::to_string(kGlobal.y) + "x" +
      std::to_string(kGlobal.z) + ", 36% solid, " + std::to_string(kRanks) +
      " ranks, " + std::to_string(kSteps) + " steps");
  perf::Table t({"scheme", "MLUPS", "max rank compute", "min rank compute",
                 "fluid imbalance"});
  t.addRow({"static 2x2", perf::Table::num(stat.mlups, 2),
            perf::Table::num(stat.maxRankComputeS * 1e3, 2) + " ms",
            perf::Table::num(stat.minRankComputeS * 1e3, 2) + " ms",
            perf::Table::num(stat.fluidImbalance, 3)});
  t.addRow({"patch-balanced 4x4", perf::Table::num(bal.mlups, 2),
            perf::Table::num(bal.maxRankComputeS * 1e3, 2) + " ms",
            perf::Table::num(bal.minRankComputeS * 1e3, 2) + " ms",
            perf::Table::num(bal.fluidImbalance, 3)});
  t.print();
  std::cout << "Fluid-weighted bisection spreads the streaming cells the "
               "static volume split cannot see.\n";

  perf::printHeading("Measured rebalance from per-patch step-time EMAs");
  perf::Table r({"imbalance before", "imbalance after", "patches migrated"});
  r.addRow({perf::Table::num(reb.imbalanceBefore, 3),
            perf::Table::num(reb.imbalanceAfter, 3),
            std::to_string(reb.migrations)});
  r.print();

  if (!jsonPath.empty()) {
    obs::BenchReport report("bench_patches");
    const double cells =
        static_cast<double>(kGlobal.x) * kGlobal.y * kGlobal.z;
    auto common = [&](obs::BenchReport::Result& res) {
      res.set("cells", cells);
      res.set("steps", kSteps);
      res.set("ranks", kRanks);
      res.set("solid_fraction", solidFraction());
      res.setText("size", std::to_string(kGlobal.x) + "x" +
                              std::to_string(kGlobal.y) + "x" +
                              std::to_string(kGlobal.z));
    };
    obs::BenchReport::Result& rs = report.add("static");
    common(rs);
    rs.set("mlups", stat.mlups);
    rs.set("max_rank_compute_s", stat.maxRankComputeS);
    rs.set("min_rank_compute_s", stat.minRankComputeS);
    rs.set("fluid_imbalance", stat.fluidImbalance);
    obs::BenchReport::Result& rb = report.add("patch_balanced");
    common(rb);
    rb.set("mlups", bal.mlups);
    rb.set("max_rank_compute_s", bal.maxRankComputeS);
    rb.set("min_rank_compute_s", bal.minRankComputeS);
    rb.set("fluid_imbalance", bal.fluidImbalance);
    obs::BenchReport::Result& rr = report.add("rebalance");
    common(rr);
    rr.set("imbalance_before", reb.imbalanceBefore);
    rr.set("imbalance_after", reb.imbalanceAfter);
    rr.set("migrations", reb.migrations);
    report.write(jsonPath);
    std::cout << "\nwrote " << jsonPath << "\n";
  }
  return 0;
}
