// Multi-tenant service bench (DESIGN.md §12): can one swlb_serve daemon
// sustain N concurrent clients, and does the round-robin scheduler keep
// the jobs progressing evenly?
//
// Drives in-process Sessions (no socket hop) so the numbers isolate the
// service layer: admission, scheduling, eviction and checkpoint traffic.
// Reported:
//   jobs_per_sec    submitted-to-done throughput over the whole run
//   ttfs_p95_s      p95 submit -> first completed step (serve.ttfs_seconds)
//   e2e_p95_s       p95 submit -> done              (serve.job_seconds)
//   fairness_ratio  max/min completed quanta over unfinished jobs at the
//                   moment the FIRST job completes — strict round-robin
//                   with equal priorities keeps this near 1; a starving
//                   scheduler lets it blow up
//   evictions/resumes/faults/rollbacks from the serve.* counters
//
// Usage: bench_serve [--clients N] [--jobs M] [--steps S] [--faults K]
//                    [--json out.json]
// --faults K poisons the first quantum of K jobs (NaN injection through
// the beforeQuantum hook) to show recovery traffic under load.
#include <atomic>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "obs/bench_report.hpp"
#include "serve/server.hpp"

using namespace swlb;
using namespace swlb::serve;

namespace {

struct Options {
  int clients = 32;
  int jobs = 2;       ///< per client
  int steps = 60;     ///< per job (6 quanta at the default quantum below)
  int faults = 0;
  std::string jsonPath;
};

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) throw Error(a + " needs a value");
      return argv[++i];
    };
    if (a == "--clients") opt.clients = std::stoi(next());
    else if (a == "--jobs") opt.jobs = std::stoi(next());
    else if (a == "--steps") opt.steps = std::stoi(next());
    else if (a == "--faults") opt.faults = std::stoi(next());
    else if (a == "--json") opt.jsonPath = next();
    else {
      std::cerr << "usage: bench_serve [--clients N] [--jobs M] [--steps S]"
                   " [--faults K] [--json out.json]\n";
      return 2;
    }
  }

  const std::string dir = "bench_serve_ckpt";
  std::filesystem::create_directories(dir);

  obs::MetricsRegistry reg;
  ServerConfig cfg;
  cfg.workers = 2;
  cfg.quantumSteps = 10;
  cfg.maxResident = 2;  // << active jobs: eviction traffic is part of the run
  cfg.admission.maxActive = 16;
  cfg.admission.maxQueueDepth =
      static_cast<std::size_t>(opt.clients) *
      static_cast<std::size_t>(opt.jobs);
  cfg.admission.maxPerTenant = static_cast<std::size_t>(opt.jobs);
  cfg.checkpointDir = dir;
  cfg.checkpointQuanta = 1;  // rollbacks resume mid-run, not from step 0
  cfg.maxRecoveries = 1;
  cfg.metrics = &reg;

  // Poison the first quantum of jobs 1..K once each: the guard trips, the
  // job rolls back and recovers — other jobs must be unaffected.
  std::mutex poisonM;
  std::set<std::uint64_t> poisoned;
  const auto faultBudget = static_cast<std::uint64_t>(opt.faults);
  cfg.beforeQuantum = [&](Solver<D3Q19>& s, std::uint64_t id, std::uint64_t) {
    {
      std::lock_guard<std::mutex> lk(poisonM);
      if (id > faultBudget || !poisoned.insert(id).second) return;
    }
    // Poison an interior fluid cell (cell 0 is a solid cavity wall, which
    // both collision and totalMass mask out).
    const Grid& g = s.grid();
    s.f()(0, g.nx / 2, g.ny / 2, g.nz / 2) =
        std::numeric_limits<Real>::quiet_NaN();
  };

  Server server(cfg);

  // Fairness probe: when the first job completes, snapshot everyone
  // else's completed-quanta counts.
  std::atomic<bool> firstDone{false};
  std::atomic<double> fairness{0};
  const auto probe = [&] {
    if (firstDone.exchange(true)) return;
    std::uint64_t lo = UINT64_MAX, hi = 0;
    for (const auto& info : server.snapshot()) {
      if (info.state == JobState::Done || info.state == JobState::Failed)
        continue;
      if (info.quantaDone == 0) continue;  // still queued / never scheduled
      lo = std::min(lo, info.quantaDone);
      hi = std::max(hi, info.quantaDone);
    }
    fairness = lo == UINT64_MAX ? 1.0
                                : static_cast<double>(hi) /
                                      static_cast<double>(lo);
  };

  const auto t0 = std::chrono::steady_clock::now();
  std::atomic<int> done{0}, failed{0};
  std::vector<std::thread> clients;
  clients.reserve(static_cast<std::size_t>(opt.clients));
  for (int c = 0; c < opt.clients; ++c)
    clients.emplace_back([&, c] {
      Session& session = server.openSession();
      for (int j = 0; j < opt.jobs; ++j) {
        WireMap req;
        req["op"] = WireValue::ofString("submit");
        req["tenant"] = WireValue::ofString("t" + std::to_string(c));
        req["steps"] = WireValue::ofNumber(opt.steps);
        req["cfg.case"] = WireValue::ofString("cavity");
        req["cfg.nx"] = WireValue::ofString("12");
        req["cfg.ny"] = WireValue::ofString("12");
        req["cfg.nz"] = WireValue::ofString("12");
        session.request(encode_line(req));
      }
      int finished = 0;
      while (finished < opt.jobs) {
        const auto line = session.nextEvent();
        if (!line) break;
        const WireMap ev = decode_line(*line);
        const std::string kind = wire_string(ev, "event", "");
        if (kind == "done") {
          probe();
          ++done;
          ++finished;
        } else if (kind == "failed" || kind == "rejected" ||
                   kind == "error") {
          ++failed;
          ++finished;
          std::cerr << "client " << c << ": " << *line << "\n";
        }
      }
      session.close();
    });
  for (auto& t : clients) t.join();
  const double elapsed = seconds_since(t0);
  server.shutdown();
  std::filesystem::remove_all(dir);

  const int total = opt.clients * opt.jobs;
  const double jobsPerSec = elapsed > 0 ? done / elapsed : 0;
  const auto ttfs = reg.histogramSummary("serve.ttfs_seconds");
  const auto e2e = reg.histogramSummary("serve.job_seconds");

  std::printf("bench_serve: %d clients x %d jobs (%d steps each)\n",
              opt.clients, opt.jobs, opt.steps);
  std::printf("%-22s %12s\n", "metric", "value");
  std::printf("%-22s %12d\n", "jobs_done", done.load());
  std::printf("%-22s %12d\n", "jobs_failed", failed.load());
  std::printf("%-22s %12.2f\n", "jobs_per_sec", jobsPerSec);
  std::printf("%-22s %12.4f\n", "ttfs_p95_s", ttfs.p95);
  std::printf("%-22s %12.4f\n", "e2e_p95_s", e2e.p95);
  std::printf("%-22s %12.2f\n", "fairness_ratio", fairness.load());
  std::printf("%-22s %12llu\n", "evictions",
              static_cast<unsigned long long>(
                  reg.counterValue("serve.evictions")));
  std::printf("%-22s %12llu\n", "resumes",
              static_cast<unsigned long long>(
                  reg.counterValue("serve.resumes")));
  std::printf("%-22s %12llu\n", "faults",
              static_cast<unsigned long long>(reg.counterValue("serve.faults")));
  std::printf("%-22s %12llu\n", "rollbacks",
              static_cast<unsigned long long>(
                  reg.counterValue("serve.rollbacks")));

  if (!opt.jsonPath.empty()) {
    obs::BenchReport report("bench_serve");
    auto& row = report.add("serve");
    row.set("clients", opt.clients);
    row.set("jobs_per_client", opt.jobs);
    row.set("steps_per_job", opt.steps);
    row.set("jobs_done", done);
    row.set("jobs_failed", failed);
    row.set("jobs_per_sec", jobsPerSec);
    row.set("ttfs_p95_s", ttfs.p95);
    row.set("e2e_p95_s", e2e.p95);
    row.set("fairness_ratio", fairness);
    row.addMetrics(reg);
    report.write(opt.jsonPath);
    std::cout << "wrote " << opt.jsonPath << "\n";
  }

  return done == total ? 0 : 1;
}
