// Fig. 11: optimization results on a GPU node (2x Xeon 6248R + 8x RTX
// 3090).  Paper: the tuned version reaches 191x over the one-socket MPI
// baseline with 83.8% memory-bandwidth utilization; stages are kernel
// fusion, parallelization with pinned memory, computation optimization
// (pre-computed divisions), and NCCL communication.
#include <iostream>

#include "perf/gpu_model.hpp"
#include "perf/report.hpp"

using namespace swlb;

int main() {
  perf::GpuClusterModel gpu;
  const Int3 cells{1400, 2800, 100};
  const double nCells = static_cast<double>(cells.x) * cells.y * cells.z;

  perf::printHeading("Fig. 11 — GPU node optimization ladder (modeled, FP32)");
  perf::Table t({"stage", "s/step", "speedup", "gain vs prev", "BW util"});
  for (const auto& s : gpu.nodeLadder(cells)) {
    t.addRow({s.name, perf::Table::num(s.stepSeconds, 4),
              perf::Table::num(s.speedup, 1) + "x",
              perf::Table::num(s.gainOverPrev, 2) + "x",
              perf::Table::pct(gpu.bandwidthUtilization(nCells, s.stepSeconds))});
  }
  t.print();
  std::cout << "paper: 191x over one CPU socket, 83.8% memory-bandwidth "
               "utilization after all optimizations\n";
  return 0;
}
