// Head-to-head machine comparison table: the hardware context of §III
// (SW26010 vs SW26010-Pro vs a GPU node) and what each implies for the
// memory-bound D3Q19 kernel.
#include <iostream>

#include "perf/cost_model.hpp"
#include "perf/gpu_model.hpp"
#include "perf/report.hpp"
#include "sw/spec.hpp"

using namespace swlb;

int main() {
  perf::LbmCostModel cost;
  const auto tl = sw::MachineSpec::sw26010();
  const auto pro = sw::MachineSpec::sw26010pro();
  const sw::GpuNodeSpec gpu;

  perf::printHeading("Compute devices (paper §III-B / §IV-E)");
  perf::Table t({"device", "peak flops", "mem BW", "B/F", "LDM/cache",
                 "fast on-chip comm", "bound MLUPS (D3Q19)"});
  t.addRow({"SW26010 core group", perf::Table::eng(tl.cg.peakFlops(), "F/s"),
            perf::Table::eng(tl.cg.dma.peakBandwidth, "B/s"),
            perf::Table::num(tl.cg.dma.peakBandwidth / tl.cg.peakFlops(), 3),
            "64 KB LDM x 64 CPEs", "register buses (row/col)",
            perf::Table::num(cost.lupsUpperBound(tl.cg.dma.peakBandwidth) / 1e6, 1)});
  t.addRow({"SW26010-Pro core group", perf::Table::eng(pro.cg.peakFlops(), "F/s"),
            perf::Table::eng(pro.cg.dma.peakBandwidth, "B/s"),
            perf::Table::num(pro.cg.dma.peakBandwidth / pro.cg.peakFlops(), 3),
            "256 KB LDM x 64 CPEs", "RMA (any pair + bcast)",
            perf::Table::num(cost.lupsUpperBound(pro.cg.dma.peakBandwidth) / 1e6, 1)});
  const perf::LbmCostModel fp32 = perf::GpuClusterModel::fp32Cost();
  t.addRow({"RTX 3090 (FP32 kernel)", "35.6 TF/s",
            perf::Table::eng(gpu.gpuMemBandwidth, "B/s"),
            perf::Table::num(gpu.gpuMemBandwidth / 35.6e12, 3), "6 MB L2",
            "NCCL P2P",
            perf::Table::num(fp32.lupsUpperBound(gpu.gpuMemBandwidth) / 1e6, 1)});
  t.print();

  perf::printHeading("Full systems at the paper's scales");
  perf::Table s({"system", "units", "aggregate BW", "bound GLUPS",
                 "paper-measured GLUPS", "utilization"});
  s.addRow({"Sunway TaihuLight", "160000 CGs",
            perf::Table::eng(160000.0 * tl.cg.dma.peakBandwidth, "B/s"),
            perf::Table::num(cost.lupsUpperBound(tl.cg.dma.peakBandwidth) * 160000 / 1e9, 0),
            "11245",
            perf::Table::pct(cost.bandwidthUtilization(11245e9 / 160000,
                                                       tl.cg.dma.peakBandwidth))});
  s.addRow({"new Sunway", "60000 CGs",
            perf::Table::eng(60000.0 * pro.cg.dma.peakBandwidth, "B/s"),
            perf::Table::num(cost.lupsUpperBound(pro.cg.dma.peakBandwidth) * 60000 / 1e9, 0),
            "6583",
            perf::Table::pct(cost.bandwidthUtilization(6583e9 / 60000,
                                                       pro.cg.dma.peakBandwidth))});
  s.addRow({"GPU cluster", "8 nodes x 8 GPUs",
            perf::Table::eng(64.0 * gpu.gpuMemBandwidth, "B/s"),
            perf::Table::num(fp32.lupsUpperBound(gpu.gpuMemBandwidth) * 64 / 1e9, 0),
            "~225 (modeled)", perf::Table::pct(0.838)});
  s.print();
  std::cout << "GPUs win on per-device bandwidth; the Sunway systems win on "
               "scale (paper Conclusion)\n";
  return 0;
}
