// Collision-operator cost comparison: BGK (the paper's choice), TRT, MRT
// and BGK+Smagorinsky-LES on the fused D3Q19 kernel.  LBM stays
// memory-bound on Sunway regardless (the extra flops hide under DMA),
// but on a cache-fed host the operator cost is visible — this bench
// quantifies what the CPEs' dual pipelines have to hide.
#include <benchmark/benchmark.h>

#include "core/kernels.hpp"

namespace {

using namespace swlb;
using D = D3Q19;

struct OpBench {
  Grid grid;
  PopulationField src, dst;
  MaskField mask;
  MaterialTable mats;

  explicit OpBench(int n)
      : grid(n, n, n),
        src(grid, D::Q),
        dst(grid, D::Q),
        mask(grid, MaterialTable::kFluid) {
    Real feq[D::Q];
    equilibria<D>(1.0, {0.02, 0.01, -0.01}, feq);
    for (int q = 0; q < D::Q; ++q)
      for (int z = -1; z <= grid.nz; ++z)
        for (int y = -1; y <= grid.ny; ++y)
          for (int x = -1; x <= grid.nx; ++x) src(q, x, y, z) = feq[q];
    fill_halo_mask(mask, Periodicity{true, true, true}, MaterialTable::kSolid);
  }

  void run(benchmark::State& state, const CollisionConfig& cfg) {
    for (auto _ : state) {
      stream_collide_fused<D>(src, dst, mask, mats, cfg, grid.interior());
      benchmark::DoNotOptimize(dst.data());
    }
    state.counters["MLUPS"] = benchmark::Counter(
        static_cast<double>(grid.interiorVolume()) *
            static_cast<double>(state.iterations()) / 1e6,
        benchmark::Counter::kIsRate);
  }
};

void BM_CollideBGK(benchmark::State& state) {
  OpBench b(static_cast<int>(state.range(0)));
  CollisionConfig cfg;
  cfg.omega = 1.5;
  b.run(state, cfg);
}
BENCHMARK(BM_CollideBGK)->Arg(24);

void BM_CollideTRT(benchmark::State& state) {
  OpBench b(static_cast<int>(state.range(0)));
  CollisionConfig cfg;
  cfg.omega = 1.5;
  cfg.op = CollisionOp::TRT;
  b.run(state, cfg);
}
BENCHMARK(BM_CollideTRT)->Arg(24);

void BM_CollideMRT(benchmark::State& state) {
  OpBench b(static_cast<int>(state.range(0)));
  CollisionConfig cfg;
  cfg.omega = 1.5;
  cfg.op = CollisionOp::MRT;
  b.run(state, cfg);
}
BENCHMARK(BM_CollideMRT)->Arg(24);

void BM_CollideBgkLes(benchmark::State& state) {
  OpBench b(static_cast<int>(state.range(0)));
  CollisionConfig cfg;
  cfg.omega = 1.5;
  cfg.les = true;
  cfg.smagorinskyCs = 0.16;
  b.run(state, cfg);
}
BENCHMARK(BM_CollideBgkLes)->Arg(24);

}  // namespace

BENCHMARK_MAIN();
