// Fig. 8: speedup of the major kernels of SunwayLB as the optimization
// strategies are applied on Sunway TaihuLight.  Paper: one time step of
// the largest Re=3900 DNS drops from 73.6 s (MPE only) to 0.426 s — 172x.
//
// The modeled ladder is complemented by the emulator: a small core-group
// block is actually executed in every configuration, and its metered
// DMA/fabric traffic shows *why* each stage helps.
#include <iostream>

#include "core/kernels.hpp"
#include "perf/ladder.hpp"
#include "perf/report.hpp"
#include "sw/sw_kernels.hpp"

using namespace swlb;

namespace {

void printModeledLadder() {
  const auto stages =
      perf::taihulight_ladder(sw::MachineSpec::sw26010(), perf::LbmCostModel{});
  perf::printHeading(
      "Fig. 8 — optimization ladder, 500x700x100 cells/CG (modeled)");
  perf::Table t({"stage", "s/step", "speedup vs baseline", "gain vs prev"});
  for (const auto& s : stages)
    t.addRow({s.name, perf::Table::num(s.stepSeconds, 3),
              perf::Table::num(s.speedup, 1) + "x",
              perf::Table::num(s.gainOverPrev, 2) + "x"});
  t.print();
  std::cout << "paper: baseline 73.6 s -> 0.426 s, 172x; CPE stage >75x, "
               "on-the-fly ~10%, fusion ~30%\n";
}

void printEmulatedAblation() {
  // Execute a real (small) block on the emulated CPE cluster in the same
  // configurations and show the metered traffic ladder.
  const int nx = 48, ny = 64, nz = 8;
  Grid grid(nx, ny, nz);
  PopulationField src(grid, D3Q19::Q), dst(grid, D3Q19::Q);
  MaskField mask(grid, MaterialTable::kFluid);
  MaterialTable mats;
  fill_halo_mask(mask, Periodicity{true, true, true}, MaterialTable::kSolid);
  apply_periodic(mask, Periodicity{true, true, true});
  Real feq[D3Q19::Q];
  equilibria<D3Q19>(1.0, {0.02, 0, 0}, feq);
  for (int q = 0; q < D3Q19::Q; ++q)
    for (int z = -1; z <= nz; ++z)
      for (int y = -1; y <= ny; ++y)
        for (int x = -1; x <= nx; ++x) src(q, x, y, z) = feq[q];

  struct Config {
    const char* name;
    sw::SwBlocking blocking;
    bool reuse, share;
  };
  const Config configs[] = {
      {"per-cell DMA (no blocking)", sw::SwBlocking::PerCell, false, false},
      {"row blocking", sw::SwBlocking::Rows, false, false},
      {"+ z-window reuse (Fig 5(3))", sw::SwBlocking::Rows, true, false},
      {"+ regcomm sharing (Fig 5(4))", sw::SwBlocking::Rows, true, true},
  };

  perf::printHeading("Emulated CPE traffic ladder, 48x64x8 block (measured "
                     "on the SW26010 emulator)");
  perf::Table t({"configuration", "DMA B/cell", "DMA transactions",
                 "fabric KiB", "modeled DMA ms", "speedup"});
  double base = 0;
  for (const auto& c : configs) {
    sw::CpeCluster cluster(sw::MachineSpec::sw26010().cg);
    sw::SwKernelConfig cfg;
    cfg.collision.omega = 1.6;
    cfg.blocking = c.blocking;
    cfg.reuseZWindow = c.reuse;
    cfg.shareBoundary = c.share;
    const auto rep =
        sw::sw_stream_collide<D3Q19>(cluster, src, dst, mask, mats, cfg);
    if (base == 0) base = rep.dmaSeconds;
    t.addRow({c.name, perf::Table::num(rep.dmaBytesPerCell(), 1),
              std::to_string(rep.dma.transactions()),
              perf::Table::num(rep.fabric.bytes / 1024.0, 1),
              perf::Table::num(rep.dmaSeconds * 1e3, 3),
              perf::Table::num(base / rep.dmaSeconds, 1) + "x"});
  }
  t.print();
}

}  // namespace

int main() {
  printModeledLadder();
  printEmulatedAblation();
  return 0;
}
