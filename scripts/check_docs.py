#!/usr/bin/env python3
"""Documentation consistency checks (the CI docs job).

1. Every relative markdown link in the top-level *.md files resolves to
   a file or directory in the repo (http(s) links are not fetched).
2. The README's bench mapping table lists exactly the bench targets
   defined in bench/CMakeLists.txt — no stale rows, no missing benches.

Exit status is non-zero with one line per problem, so a failing run
reads as a to-do list.
"""
import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
BENCH_ROW = re.compile(r"^\|\s*`(bench_\w+)`", re.MULTILINE)
BENCH_TARGET = re.compile(r"^swlb_add_(?:bench|table)\((bench_\w+)\b",
                          re.MULTILINE)


def check_links(problems):
    for md in sorted(ROOT.glob("*.md")):
        text = md.read_text(encoding="utf-8")
        # Strip fenced code blocks: sample output may contain [x](y).
        text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
        for target in LINK.findall(text):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            path = (md.parent / target.split("#")[0]).resolve()
            if not path.exists():
                problems.append(f"{md.name}: broken link -> {target}")


def check_bench_table(problems):
    readme = (ROOT / "README.md").read_text(encoding="utf-8")
    cmake = (ROOT / "bench" / "CMakeLists.txt").read_text(encoding="utf-8")
    listed = set(BENCH_ROW.findall(readme))
    defined = set(BENCH_TARGET.findall(cmake))
    for name in sorted(defined - listed):
        problems.append(f"README.md: bench table is missing `{name}` "
                        "(defined in bench/CMakeLists.txt)")
    for name in sorted(listed - defined):
        problems.append(f"README.md: bench table lists `{name}` "
                        "which is not a target in bench/CMakeLists.txt")
    if not listed:
        problems.append("README.md: no bench mapping table rows found")


def main():
    problems = []
    check_links(problems)
    check_bench_table(problems)
    for p in problems:
        print(p)
    if not problems:
        print("docs OK: links resolve, bench table matches bench/")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
