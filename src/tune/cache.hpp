// JSON tuning cache (DESIGN.md §9): plans keyed by TuningKey so repeat
// runs of the same (lattice, extent, ranks, precision) skip the search.
//
// File format ("swlb-tune-v1"):
//
//   {
//     "schema": "swlb-tune-v1",
//     "plans": [
//       { "key": "D3Q19:64x64x64:r4:f64",
//         "plan": { "halo_mode": "overlap", "ring_threshold_bytes": 123,
//                   "chunk_x": 32, "precision": "f64",
//                   "precision_advice": "...", "advised_quant_error": 5.9e-8,
//                   "source": "model", "evidence": { "<name>": <num>, ... } } }
//     ]
//   }
//
// Invalidation is structural: a missing file or a file with a different
// schema tag loads as an *empty* cache (the stale format is discarded and
// re-tuned, never half-parsed), and a lookup whose key differs in any
// field misses.  Writes are byte-deterministic for identical contents.
#pragma once

#include <map>
#include <optional>
#include <string>

#include "tune/plan.hpp"

namespace swlb::tune {

inline constexpr const char* kTuneSchema = "swlb-tune-v1";

class TuningCache {
 public:
  /// Load from `path`.  Missing file or wrong/unknown schema -> empty
  /// cache; a present, schema-matching but syntactically broken file
  /// throws Error (that is corruption, not staleness).
  static TuningCache load(const std::string& path);

  /// Write the whole cache (deterministic key order).  Throws Error when
  /// the file cannot be written.
  void save(const std::string& path) const;

  /// The stored plan for `key`, or nullopt on any mismatch.
  std::optional<TuningPlan> lookup(const TuningKey& key) const;

  void store(const TuningKey& key, const TuningPlan& plan) {
    plans_[key.toString()] = plan;
  }

  std::size_t size() const { return plans_.size(); }
  bool empty() const { return plans_.empty(); }

  /// Serialized form (what save() writes), exposed for tests.
  std::string toString() const;

 private:
  std::map<std::string, TuningPlan> plans_;  ///< by TuningKey::toString()
};

}  // namespace swlb::tune
