// Tuning plans and their cache key (DESIGN.md §9).
//
// A TuningPlan is the auto-tuner's output: one value per performance knob
// the runtime exposes (halo scheduling, collective ring threshold, CPE
// LDM chunk width) plus an *advisory* storage-precision report — the
// tuner never switches precision behind the user's back, because storage
// precision changes the results (DESIGN.md §8).  Every number that went
// into the decision is kept in `evidence`, so a plan is auditable after
// the fact and diffable across machines.
//
// Plans are keyed by (lattice, global extent, ranks, storage precision):
// the four inputs that change the communication/computation balance the
// knobs trade against.  Serialization is byte-deterministic (std::map
// ordering, %.17g doubles), so identical inputs give identical plan files
// — the property test_tune pins down.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "core/common.hpp"
#include "runtime/halo.hpp"

namespace swlb::tune {

/// Identity of the tuned problem.  Two runs with equal keys may reuse one
/// plan; any field changing invalidates the cache entry (lookup misses).
struct TuningKey {
  std::string lattice = "D3Q19";  ///< lattice descriptor name (D3Q19, D2Q9)
  Int3 extent{0, 0, 0};           ///< global interior cells
  int ranks = 1;                  ///< world size the plan was tuned for
  std::string precision = "f64";  ///< storage precision tag (f64/f32/f16)

  /// Canonical flat form, e.g. "D3Q19:64x64x64:r4:f64" — the cache-file
  /// key and the name tuning rows appear under in bench reports.
  std::string toString() const;

  friend bool operator==(const TuningKey&, const TuningKey&) = default;
};

/// One resolved configuration: what each subsystem should run with.
struct TuningPlan {
  /// Halo scheduling for DistributedSolver::Config::mode.
  runtime::HaloMode haloMode = runtime::HaloMode::Overlap;
  /// Size threshold (bytes) for coll::CollConfig::ringThresholdBytes:
  /// payloads at or above it run the ring, smaller ones the tree.  Set to
  /// the model crossover of NetworkModel::collectiveSeconds.
  std::size_t ringThresholdBytes = 64 * 1024;
  /// LDM x-chunk width for sw::SwKernelConfig::chunkX (cells; >= 1 and
  /// <= sw::max_chunk_x for the target block).
  int chunkX = 32;
  /// Stream/collide backend for Solver/DistributedSolver (registry name,
  /// core/backend.hpp: "fused" | "simd" | "esoteric" | "threads" | ...).
  /// "fused" unless wall-clock backend trials (TunerConfig::
  /// backendTrialSteps > 0) found a faster one.  Serialized as "backend";
  /// cache files from before the backend layer carry the same value
  /// under "kernel_variant" and parse into this field.
  std::string backend = "fused";
  /// Per-patch backend overrides for PatchSolver::Config::patchBackends
  /// (patch id -> registry name): the heterogeneous mixed-backend plan
  /// derived from measured backend rates and per-patch cell counts
  /// (TuningInput::patchCells).  Empty means every patch runs `backend`.
  /// Absent from old cache files, which parse as empty.
  std::map<int, std::string> patchBackends;
  /// Patches per rank for the patch-aware runtime (runtime/patches,
  /// DESIGN.md §13): granularity of the load balancer.  1 keeps the
  /// classic one-block-per-rank split; absent from old cache files,
  /// which parse as 1.
  int patchesPerRank = 1;
  /// Storage precision the plan was tuned for (matches the key).
  std::string precision = "f64";
  /// Human-readable advisory: what a smaller storage type would buy and
  /// cost for this problem.  Informational only — never auto-applied.
  std::string precisionAdvice;
  /// Relative quantization bound of the *advised* storage type's stored
  /// deviation (StorageTraits<S>::kEpsilon; dimensionless).
  double advisedQuantError = 0;
  /// "model" when the plan came from the deterministic model/emulator
  /// search, "measured" when wall-clock trials overrode the halo pick.
  std::string source = "model";
  /// Every number the search looked at, by name: modeled seconds per
  /// candidate, trial measurements, cross-check ratios.
  std::map<std::string, double> evidence;

  friend bool operator==(const TuningPlan&, const TuningPlan&) = default;
};

/// The ring-vs-tree choice a plan implies for a `payloadBytes` collective
/// (mirrors Collectives::resolve under the plan's threshold).
enum class CollChoice { Tree, Ring };
inline CollChoice collectiveChoice(const TuningPlan& plan,
                                   std::size_t payloadBytes) {
  return payloadBytes >= plan.ringThresholdBytes ? CollChoice::Ring
                                                 : CollChoice::Tree;
}

/// Byte-deterministic JSON of one plan / one key (object literals; see
/// cache.cpp for the grammar the parser accepts).
std::string to_json(const TuningPlan& plan);
std::string to_json(const TuningKey& key);

const char* halo_mode_name(runtime::HaloMode m);

}  // namespace swlb::tune
