// Auto-tuner (DESIGN.md §9): closes the loop between the observability
// layer and the runtime's performance knobs.
//
// After PRs 1-4 every knob of the paper's hand-tuning story exists in
// code — halo overlap (runtime::HaloMode), collective algorithm selection
// (coll::CollConfig::ringThresholdBytes), CPE LDM blocking
// (sw::SwKernelConfig::chunkX) and storage precision (StorageTraits) —
// but each was a scattered compile-time or CLI default.  The Tuner is the
// one audited decision point: it derives a TuningPlan from
//
//   * the perf models (NetworkModel halo/collective costs, LbmCostModel
//     traffic) — deterministic, byte-identical plans for equal inputs;
//   * deterministic trials on the sw emulator (CpeCluster is sequential
//     and its DMA/fabric seconds are modeled, so a chunk_x ladder run
//     through sw_stream_collide is itself reproducible);
//   * optional short wall-clock trials (trialSteps > 0) through the
//     StepProfiler/World plumbing, recorded as evidence and cross-checked
//     against the model; they may override only the halo-mode pick.
//
// Search activity is metered: one "tune.search" trace phase, counters
// tune.plans / tune.trials.* / tune.cache.hit|miss, and gauges with the
// chosen knob values — so a tuned run's Chrome trace shows what was
// decided and why.
#pragma once

#include "coll/coll.hpp"
#include "core/solver.hpp"
#include "sw/spec.hpp"
#include "sw/sw_kernels.hpp"
#include "tune/cache.hpp"
#include "tune/plan.hpp"

namespace swlb::tune {

/// The problem the plan is for.  lattice/extent/ranks/precision form the
/// cache key; the machine spec parameterizes the models and the emulator.
struct TuningInput {
  std::string lattice = "D3Q19";  ///< "D3Q19" or "D2Q9"
  Int3 extent{0, 0, 0};           ///< global interior cells (> 0 each)
  int ranks = 1;                  ///< world size (>= 1)
  std::string precision = "f64";  ///< storage tag: "f64" | "f32" | "f16"
  sw::MachineSpec machine = sw::MachineSpec::sw26010();
  /// Interior cell count per patch (index = patch id) when the run uses
  /// the patch-aware runtime.  Non-empty + backendTrialSteps > 0 makes
  /// the tuner emit a per-patch backend map: measured backend rates and
  /// the catalog's stepOverheadSeconds predict each patch's step time,
  /// and the argmin backend is recorded per patch
  /// (TuningPlan::patchBackends).  Empty skips the map.
  std::vector<double> patchCells;

  TuningKey key() const { return {lattice, extent, ranks, precision}; }
};

struct TunerConfig {
  /// Steps per wall-clock halo trial; 0 (default) keeps the search purely
  /// model/emulator-driven and therefore byte-deterministic.
  int trialSteps = 0;
  /// With trials enabled, adopt the measured halo-mode winner when the
  /// two modes differ by more than `measuredMargin`; otherwise keep the
  /// model's pick (ties and noise must not flip plans).
  bool preferMeasuredHalo = true;
  /// Minimum measured advantage (relative) to override the model.
  double measuredMargin = 0.05;
  /// Overlap is selected when modeled halo time exceeds this fraction of
  /// the modeled compute time (the overlap scheme's frontier pass is not
  /// free, so negligible communication keeps the simpler schedule).
  double overlapMinHaloFraction = 0.01;
  /// Cells per rank above which wall-clock trials run on a proportionally
  /// shrunk proxy domain instead of the full one.
  std::size_t trialCellsPerRank = 32768;
  /// Steps per wall-clock backend trial (the registry ladder — fused,
  /// simd, esoteric, threads — on a single-rank proxy).  0 (default)
  /// skips the ladder and keeps the plan's "fused" default — and the
  /// search byte-deterministic.
  int backendTrialSteps = 0;
  /// Patch granularity recorded in the plan for the patch-aware runtime
  /// (runtime/patches): patches per rank handed to PatchSolver::Config.
  /// Pure pass-through today (the balance win depends on the mask, which
  /// the tuner does not see); >= 1.
  int patchesPerRank = 1;
};

class Tuner {
 public:
  explicit Tuner(const TunerConfig& cfg = {}) : cfg_(cfg) {}

  /// Run the search and return the plan.  Deterministic (byte-identical
  /// plans for equal inputs) when cfg.trialSteps == 0.
  TuningPlan plan(const TuningInput& in) const;

  /// Cache-aware wrapper: return the cached plan on a key hit, otherwise
  /// search and store the result in `cache` (the caller saves the file).
  TuningPlan planCached(TuningCache& cache, const TuningInput& in) const;

  /// The model's ring threshold: the payload size where
  /// NetworkModel::collectiveSeconds(Tree) crosses (Ring) for `ranks`,
  /// found by bisection (exposed for tests/benches).
  static std::size_t ringCrossoverBytes(const sw::MachineSpec& machine,
                                        int ranks);

  const TunerConfig& config() const { return cfg_; }

 private:
  TunerConfig cfg_;
};

// ---- plan consumption --------------------------------------------------
// Each apply() writes the plan's value into one subsystem's config and
// meters it (counter tune.plan.applied + a gauge per knob), so startup
// consumption is visible in traces and bench reports.

/// DistributedSolver: halo scheduling (write into Config::mode).
void apply(const TuningPlan& plan, runtime::HaloMode& mode);
/// Solver/DistributedSolver: stream/collide backend by enum.  Names that
/// are not catalogued (newer plan files) keep the current value (forward
/// compatibility).
void apply(const TuningPlan& plan, KernelVariant& variant);
/// Same knob by registry name (Solver::setBackend / Config::backend /
/// PatchSolver::Config::backend).  Uncatalogued names keep the current
/// value.
void apply(const TuningPlan& plan, std::string& backend);
/// PatchSolver: the per-patch backend map (Config::patchBackends).
/// Entries whose backend name is not catalogued are dropped; catalogued
/// entries overwrite the map wholesale.
void apply(const TuningPlan& plan, std::map<int, std::string>& patchBackends);
/// coll::Collectives: ring/tree size threshold.
void apply(const TuningPlan& plan, coll::CollConfig& cfg);
/// sw kernels: LDM chunk width (clamped to >= 1).
void apply(const TuningPlan& plan, sw::SwKernelConfig& cfg);

/// One-line human summary of a plan (CLI output).
std::string summary(const TuningPlan& plan);

}  // namespace swlb::tune
