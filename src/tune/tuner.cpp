#include "tune/tuner.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <vector>

#include "core/lattice.hpp"
#include "core/precision.hpp"
#include "obs/context.hpp"
#include "obs/step_profiler.hpp"
#include "perf/cost_model.hpp"
#include "perf/network.hpp"
#include "runtime/decomposition.hpp"
#include "runtime/distributed_solver.hpp"
#include "sw/cpe.hpp"

namespace swlb::tune {

namespace {

std::size_t elemBytesOf(const std::string& precision) {
  if (precision == "f64") return sizeof(double);
  if (precision == "f32") return sizeof(float);
  if (precision == "f16") return sizeof(f16);
  throw Error("Tuner: unknown precision \"" + precision + "\"");
}

int qOf(const std::string& lattice) {
  if (lattice == "D3Q19") return D3Q19::Q;
  if (lattice == "D2Q9") return D2Q9::Q;
  throw Error("Tuner: unknown lattice \"" + lattice + "\" (D3Q19 | D2Q9)");
}

/// Zero-padded evidence key, e.g. "trial.chunk_x.032_s", so the ladder
/// sorts numerically in the (lexicographic) evidence map.
std::string chunkKey(int c) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "trial.chunk_x.%03d_s", c);
  return buf;
}

// ---- chunk_x trial ladder on the CPE emulator --------------------------
// CpeCluster executes sequentially and its DMA/fabric seconds are modeled
// (sw/cpe.hpp), so these trials are bit-reproducible: the same candidate
// ladder always produces the same evidence and the same argmin.

template <class D, class S>
std::map<int, double> chunkTrials(const sw::MachineSpec& machine,
                                  const std::vector<int>& candidates,
                                  int proxyNx, int proxyNy, int proxyNz) {
  obs::TraceScope scope("tune.trial.chunk");
  const Grid g(proxyNx, proxyNy, proxyNz);
  PopulationFieldT<S> src(g, D::Q), dst(g, D::Q);
  src.setShift(D::w);
  dst.setShift(D::w);
  MaskField mask(g, MaterialTable::kFluid);
  MaterialTable mats;
  const Periodicity per{true, true, true};
  Real feq[D::Q];
  equilibria<D>(Real(1), {Real(0.02), 0, 0}, feq);
  for (int q = 0; q < D::Q; ++q)
    for (int z = 0; z < g.nz; ++z)
      for (int y = 0; y < g.ny; ++y)
        for (int x = 0; x < g.nx; ++x) src(q, x, y, z) = feq[q];
  fill_halo_mask(mask, per, MaterialTable::kSolid);
  apply_periodic(src, per);

  sw::CpeCluster cluster(machine.cg);
  std::map<int, double> seconds;
  for (int c : candidates) {
    sw::SwKernelConfig cfg;
    cfg.collision.omega = 1.5;
    cfg.chunkX = c;
    const sw::SwKernelReport rep =
        sw_stream_collide<D, S>(cluster, src, dst, mask, mats, cfg);
    seconds[c] = rep.dmaSeconds + rep.fabricSeconds;
    obs::count("tune.trials.chunk");
  }
  return seconds;
}

std::map<int, double> runChunkTrials(const TuningInput& in,
                                     const std::vector<int>& candidates,
                                     int proxyNx, int proxyNy, int proxyNz) {
  const bool d3 = in.lattice == "D3Q19";
  if (in.precision == "f64")
    return d3 ? chunkTrials<D3Q19, double>(in.machine, candidates, proxyNx,
                                           proxyNy, proxyNz)
              : chunkTrials<D2Q9, double>(in.machine, candidates, proxyNx,
                                          proxyNy, proxyNz);
  if (in.precision == "f32")
    return d3 ? chunkTrials<D3Q19, float>(in.machine, candidates, proxyNx,
                                          proxyNy, proxyNz)
              : chunkTrials<D2Q9, float>(in.machine, candidates, proxyNx,
                                         proxyNy, proxyNz);
  return d3 ? chunkTrials<D3Q19, f16>(in.machine, candidates, proxyNx,
                                      proxyNy, proxyNz)
            : chunkTrials<D2Q9, f16>(in.machine, candidates, proxyNx, proxyNy,
                                     proxyNz);
}

// ---- wall-clock halo-mode trials ---------------------------------------
// Short measured runs through the World/StepProfiler plumbing.  Evidence
// only by default; they override the model's halo pick when decisively
// faster (TunerConfig::measuredMargin).  Not deterministic — guarded by
// trialSteps > 0.

template <class D>
double haloTrial(runtime::HaloMode mode, const Int3& extent, int ranks,
                 int steps) {
  obs::TraceScope scope("tune.trial.halo");
  runtime::World world(ranks);
  double meanStep = 0;
  world.run([&](runtime::Comm& c) {
    typename runtime::DistributedSolver<D>::Config cfg;
    cfg.global = extent;
    cfg.collision.omega = 1.5;
    cfg.periodic = {true, true, true};
    cfg.mode = mode;
    runtime::DistributedSolver<D> solver(c, cfg);
    solver.finalizeMask();
    solver.initUniform(1.0, {0.02, 0, 0});
    solver.run(2);  // warm-up outside the profiled window
    c.barrier();
    obs::StepProfiler prof(static_cast<double>(extent.x) * extent.y *
                           extent.z);
    for (int s = 0; s < steps; ++s) prof.step([&] { solver.step(); });
    const double worst = c.allreduce(prof.meanSeconds(), runtime::Comm::Op::Max);
    if (c.rank() == 0) meanStep = worst;
  });
  obs::count("tune.trials.halo");
  return meanStep;
}

// ---- wall-clock backend trials -----------------------------------------
// Single-rank proxy runs of the registered host backends.  Evidence +
// pick; not deterministic — guarded by backendTrialSteps > 0 (the plan's
// default stays "fused").

template <class D, class S>
double backendTrial(const std::string& name, const Int3& extent, int steps) {
  obs::TraceScope scope("tune.trial.backend");
  const Grid g(extent.x, extent.y, extent.z);
  Solver<D, S> solver(g, CollisionConfig{}, Periodicity{true, true, true});
  solver.collision().omega = 1.5;
  solver.setBackend(name);
  // The thread-team backend exists to use the whole host; trial it that
  // way (<= 0 resolves to one lane per hardware core).  Other backends
  // keep the serial default so the ladder compares single-thread rates.
  if (name == "threads") solver.setHostThreads(0);
  solver.finalizeMask();
  solver.initUniform(1.0, {0.02, 0, 0});
  solver.run(2);  // warm-up
  const double mlups = solver.runMeasured(static_cast<std::uint64_t>(steps));
  obs::count("tune.trials.backend");
  return mlups;
}

double runBackendTrial(const TuningInput& in, const std::string& name,
                       const Int3& extent, int steps) {
  const bool d3 = in.lattice == "D3Q19";
  if (in.precision == "f64")
    return d3 ? backendTrial<D3Q19, double>(name, extent, steps)
              : backendTrial<D2Q9, double>(name, extent, steps);
  if (in.precision == "f32")
    return d3 ? backendTrial<D3Q19, float>(name, extent, steps)
              : backendTrial<D2Q9, float>(name, extent, steps);
  return d3 ? backendTrial<D3Q19, f16>(name, extent, steps)
            : backendTrial<D2Q9, f16>(name, extent, steps);
}

/// Catalog index of a backend name (gauge encoding; -1 when unknown).
double backendGaugeValue(const std::string& name) {
  const auto& catalog = backend_catalog();
  for (std::size_t i = 0; i < catalog.size(); ++i)
    if (catalog[i].name == name) return static_cast<double>(i);
  return -1;
}

/// Shrink the domain until each rank's block is at most `cellsPerRank`
/// cells, halving the largest axis (deterministic; aspect roughly kept).
Int3 proxyExtent(Int3 e, int ranks, std::size_t cellsPerRank) {
  auto volume = [](const Int3& v) {
    return static_cast<std::size_t>(v.x) * v.y * v.z;
  };
  while (volume(e) > cellsPerRank * static_cast<std::size_t>(ranks)) {
    int* largest = &e.x;
    if (e.y > *largest) largest = &e.y;
    if (e.z > *largest) largest = &e.z;
    if (*largest <= 8) break;
    *largest /= 2;
  }
  return e;
}

}  // namespace

std::size_t Tuner::ringCrossoverBytes(const sw::MachineSpec& machine,
                                      int ranks) {
  if (ranks <= 1) return 64 * 1024;  // no collectives: keep the default
  const perf::NetworkModel net(machine.net, machine.coreGroupsPerProcessor);
  using CA = perf::NetworkModel::CollAlgo;
  auto diff = [&](std::size_t b) {
    // > 0 when the tree is slower (ring wins) at payload b.
    return net.collectiveSeconds(CA::Tree, b, ranks) -
           net.collectiveSeconds(CA::Ring, b, ranks);
  };
  std::size_t lo = 1, hi = std::size_t(1) << 30;
  if (diff(lo) >= 0) return lo;   // ring wins everywhere (e.g. P == 2)
  if (diff(hi) <= 0) return hi;   // tree wins up to any practical payload
  // diff is monotone in b (linear with positive slope where a crossover
  // exists), so bisection pins the crossover byte exactly.
  while (lo + 1 < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    (diff(mid) <= 0 ? lo : hi) = mid;
  }
  return hi;
}

TuningPlan Tuner::plan(const TuningInput& in) const {
  obs::TraceScope scope("tune.search");
  if (in.extent.x <= 0 || in.extent.y <= 0 || in.extent.z <= 0)
    throw Error("Tuner: extent must be positive in every axis");
  if (in.ranks < 1) throw Error("Tuner: ranks must be >= 1");
  const int q = qOf(in.lattice);
  const std::size_t elem = elemBytesOf(in.precision);

  TuningPlan plan;
  plan.precision = in.precision;

  // ---- halo scheduling: modeled compute vs communication ---------------
  const Int3 procGrid = runtime::Decomposition::choose(in.ranks, in.extent);
  const runtime::Decomposition decomp(in.extent, procGrid);
  const Int3 local = decomp.localSize(0);
  const Grid localGrid(local.x, local.y, local.z);
  const runtime::HaloExchange halo(decomp, 0, Periodicity{true, true, true},
                                   localGrid);
  const std::size_t haloBytes = halo.bytesPerExchange(q, elem);
  const int haloMessages = halo.neighborCount();

  perf::LbmCostModel cost;
  cost.q = q;
  cost.bytesPerValue = static_cast<int>(elem);
  const double cellsPerRank = static_cast<double>(localGrid.interiorVolume());
  const double computeS =
      cellsPerRank * cost.bytesPerLup() / in.machine.cg.dma.peakBandwidth;
  const perf::NetworkModel net(in.machine.net,
                               in.machine.coreGroupsPerProcessor);
  const double haloS =
      in.ranks > 1 ? net.haloExchangeSeconds(haloBytes, haloMessages, in.ranks)
                   : 0.0;
  const double haloFraction =
      computeS + haloS > 0 ? haloS / (computeS + haloS) : 0.0;
  plan.haloMode = (in.ranks > 1 && haloFraction > cfg_.overlapMinHaloFraction)
                      ? runtime::HaloMode::Overlap
                      : runtime::HaloMode::Sequential;
  plan.evidence["model.compute_s_per_step"] = computeS;
  plan.evidence["model.halo.bytes"] = static_cast<double>(haloBytes);
  plan.evidence["model.halo.messages"] = haloMessages;
  plan.evidence["model.halo.exchange_s"] = haloS;
  plan.evidence["model.halo.fraction"] = haloFraction;

  // ---- collective algorithm threshold ----------------------------------
  plan.ringThresholdBytes = ringCrossoverBytes(in.machine, in.ranks);
  plan.evidence["model.coll.crossover_bytes"] =
      static_cast<double>(plan.ringThresholdBytes);
  if (in.ranks > 1) {
    using CA = perf::NetworkModel::CollAlgo;
    plan.evidence["model.coll.tree_s_8B"] =
        net.collectiveSeconds(CA::Tree, 8, in.ranks);
    plan.evidence["model.coll.ring_s_8B"] =
        net.collectiveSeconds(CA::Ring, 8, in.ranks);
    plan.evidence["model.coll.tree_s_1MiB"] =
        net.collectiveSeconds(CA::Tree, 1 << 20, in.ranks);
    plan.evidence["model.coll.ring_s_1MiB"] =
        net.collectiveSeconds(CA::Ring, 1 << 20, in.ranks);
  }

  // ---- CPE chunk_x: deterministic emulator ladder ----------------------
  // Cap by the LDM plan of the *real* slab geometry; rank candidates by
  // modeled DMA+fabric seconds of a fixed proxy block (the per-cell
  // traffic ratio (bx+2)/bx and the per-transaction startup amortization
  // depend on bx, not on the slab height, so proxy ranking transfers).
  const int cpes = in.machine.cg.cpeCount();
  const int rowsPerCpe = std::max(1, (local.y + cpes - 1) / cpes);
  const int rowsY = rowsPerCpe + 2;
  const int realCap = std::min(
      local.x, sw::max_chunk_x(in.machine.cg.ldmBytes, rowsY, q, elem));
  plan.evidence["chunk.cap"] = realCap;
  const int proxyNy = std::min(local.y, cpes);  // >= 1 row on leading CPEs
  const int proxyNz = in.lattice == "D2Q9" ? 1 : std::min(local.z, 4);
  const int proxyNx = std::min(local.x, 128);
  const int proxyCap = std::min(
      {proxyNx, realCap,
       sw::max_chunk_x(in.machine.cg.ldmBytes, 3, q, elem)});
  std::vector<int> candidates;
  for (int c : {4, 8, 12, 16, 24, 32, 48, 64, 96, 128})
    if (c < proxyCap) candidates.push_back(c);
  if (proxyCap >= 1 &&
      (candidates.empty() || candidates.back() != proxyCap))
    candidates.push_back(proxyCap);
  int best = std::max(1, std::min(realCap, 32));  // fallback: no trials ran
  if (!candidates.empty()) {
    const std::map<int, double> trial =
        runChunkTrials(in, candidates, proxyNx, proxyNy, proxyNz);
    double bestS = 0;
    bool first = true;
    for (const auto& [c, s] : trial) {
      plan.evidence[chunkKey(c)] = s;
      if (first || s < bestS) {  // ties keep the smaller chunk
        best = c;
        bestS = s;
        first = false;
      }
    }
  }
  plan.chunkX = std::max(1, std::min(best, std::max(1, realCap)));

  // ---- storage precision (advisory only) -------------------------------
  plan.evidence["model.bytes_per_lup"] = cost.bytesPerLup();
  if (in.precision == "f64") {
    plan.advisedQuantError = StorageTraits<float>::kEpsilon;
    plan.precisionAdvice =
        "f32 storage would halve streamed/halo/checkpoint/DMA bytes "
        "(deviation quantization ~6.0e-08, Ghia-validated); f16 quarters "
        "them but is exploratory only. Precision is never switched "
        "automatically.";
  } else if (in.precision == "f32") {
    plan.advisedQuantError = StorageTraits<float>::kEpsilon;
    plan.precisionAdvice =
        "f32 storage active (~2x traffic reduction vs f64). Use f64 for "
        "bit-exact reproduction; f16 is exploratory only.";
  } else {
    plan.advisedQuantError = StorageTraits<f16>::kEpsilon;
    plan.precisionAdvice =
        "f16 storage active: exploratory (deviation quantization ~4.9e-04)."
        " Use f32 or f64 for production accuracy.";
  }

  // ---- optional wall-clock halo trials (evidence + cross-check) --------
  if (cfg_.trialSteps > 0 && in.ranks > 1 && in.ranks <= 64) {
    const Int3 proxy =
        proxyExtent(in.extent, in.ranks, cfg_.trialCellsPerRank);
    const bool d3 = in.lattice == "D3Q19";
    const double seqS =
        d3 ? haloTrial<D3Q19>(runtime::HaloMode::Sequential, proxy, in.ranks,
                              cfg_.trialSteps)
           : haloTrial<D2Q9>(runtime::HaloMode::Sequential, proxy, in.ranks,
                             cfg_.trialSteps);
    const double ovlS =
        d3 ? haloTrial<D3Q19>(runtime::HaloMode::Overlap, proxy, in.ranks,
                              cfg_.trialSteps)
           : haloTrial<D2Q9>(runtime::HaloMode::Overlap, proxy, in.ranks,
                             cfg_.trialSteps);
    plan.evidence["measured.halo.sequential_s"] = seqS;
    plan.evidence["measured.halo.overlap_s"] = ovlS;
    // Cross-check: does the measured ordering agree with the model's
    // exposed-communication estimate?  (Recorded; mismatches mean the
    // model's balance is off for this host, which is exactly what the
    // audit trail should show.)
    if (ovlS > 0 && computeS + haloS > 0) {
      plan.evidence["crosscheck.halo.measured_ratio"] = seqS / ovlS;
      plan.evidence["crosscheck.halo.model_ratio"] =
          (computeS + haloS) / std::max(computeS, haloS);
    }
    if (cfg_.preferMeasuredHalo && seqS > 0 && ovlS > 0) {
      const runtime::HaloMode measuredPick =
          ovlS < seqS ? runtime::HaloMode::Overlap
                      : runtime::HaloMode::Sequential;
      const double gain = std::abs(seqS - ovlS) / std::max(seqS, ovlS);
      if (measuredPick != plan.haloMode && gain > cfg_.measuredMargin) {
        plan.haloMode = measuredPick;
        plan.source = "measured";
      }
    }
  }

  // ---- host backend: wall-clock trial ladder ---------------------------
  // The registered host ladder (fused, simd, esoteric, threads) on a
  // single-rank proxy block.  The pick is MLUPS-argmax with ties (within
  // 1%) kept on "fused"; without trials the default "fused" stands,
  // keeping plan() deterministic.
  std::map<std::string, double> backendMlups;
  if (cfg_.backendTrialSteps > 0) {
    Int3 proxy = proxyExtent(in.extent, 1, cfg_.trialCellsPerRank);
    if (in.lattice == "D2Q9") proxy.z = 1;
    const char* ladder[] = {"fused", "simd", "esoteric", "threads"};
    double fusedMlups = 0, pickMlups = 0;
    for (const char* name : ladder) {
      const double mlups =
          runBackendTrial(in, name, proxy, cfg_.backendTrialSteps);
      backendMlups[name] = mlups;
      plan.evidence[std::string("trial.backend.") + name + "_mlups"] = mlups;
      if (std::string(name) == "fused") {
        fusedMlups = pickMlups = mlups;
      } else if (mlups > pickMlups && mlups > fusedMlups * 1.01) {
        pickMlups = mlups;
        plan.backend = name;
      }
    }
    plan.source = "measured";
  }

  plan.patchesPerRank = std::max(1, cfg_.patchesPerRank);

  // ---- per-patch backend map -------------------------------------------
  // With measured rates and per-patch cell counts in hand, predict each
  // patch's step seconds per candidate as cells / (rate * 1e6) + the
  // catalog's fixed per-step overhead, and record the argmin.  Candidates
  // are the two-lattice backends the patch runtime accepts (in-place
  // backends are rejected there); small patches land on serial backends
  // because the thread team's fork/join overhead dominates them.
  if (!in.patchCells.empty() && !backendMlups.empty()) {
    const char* candidates[] = {"fused", "simd", "threads"};
    for (std::size_t pid = 0; pid < in.patchCells.size(); ++pid) {
      std::string bestName = "fused";
      double bestS = 0;
      bool first = true;
      for (const char* name : candidates) {
        const auto it = backendMlups.find(name);
        if (it == backendMlups.end() || it->second <= 0) continue;
        const double s = in.patchCells[pid] / (it->second * 1e6) +
                         find_backend_info(name)->hints.stepOverheadSeconds;
        if (first || s < bestS) {
          bestName = name;
          bestS = s;
          first = false;
        }
      }
      if (bestName != plan.backend)
        plan.patchBackends[static_cast<int>(pid)] = bestName;
    }
    plan.evidence["patchmap.overrides"] =
        static_cast<double>(plan.patchBackends.size());
  }

  obs::count("tune.plans");
  obs::gaugeSet("tune.backend", backendGaugeValue(plan.backend));
  obs::gaugeSet("tune.chunk_x", plan.chunkX);
  obs::gaugeSet("tune.patches_per_rank", plan.patchesPerRank);
  obs::gaugeSet("tune.ring_threshold_bytes",
                static_cast<double>(plan.ringThresholdBytes));
  obs::gaugeSet("tune.halo_overlap",
                plan.haloMode == runtime::HaloMode::Overlap ? 1 : 0);
  return plan;
}

TuningPlan Tuner::planCached(TuningCache& cache, const TuningInput& in) const {
  const TuningKey key = in.key();
  if (auto hit = cache.lookup(key)) {
    obs::count("tune.cache.hit");
    return *hit;
  }
  obs::count("tune.cache.miss");
  TuningPlan p = plan(in);
  cache.store(key, p);
  return p;
}

void apply(const TuningPlan& plan, runtime::HaloMode& mode) {
  mode = plan.haloMode;
  obs::count("tune.plan.applied");
  obs::gaugeSet("tune.halo_overlap",
                plan.haloMode == runtime::HaloMode::Overlap ? 1 : 0);
}

void apply(const TuningPlan& plan, KernelVariant& variant) {
  // Uncatalogued names (newer plan files) keep the caller's current value.
  if (find_backend_info(plan.backend))
    variant = kernel_variant_from_name(plan.backend);
  obs::count("tune.plan.applied");
  obs::gaugeSet("tune.backend", backendGaugeValue(plan.backend));
}

void apply(const TuningPlan& plan, std::string& backend) {
  if (find_backend_info(plan.backend)) backend = plan.backend;
  obs::count("tune.plan.applied");
  obs::gaugeSet("tune.backend", backendGaugeValue(plan.backend));
}

void apply(const TuningPlan& plan, std::map<int, std::string>& patchBackends) {
  patchBackends.clear();
  for (const auto& [id, name] : plan.patchBackends)
    if (find_backend_info(name)) patchBackends[id] = name;
  obs::count("tune.plan.applied");
  obs::gaugeSet("tune.patch_backends",
                static_cast<double>(patchBackends.size()));
}

void apply(const TuningPlan& plan, coll::CollConfig& cfg) {
  cfg.ringThresholdBytes = plan.ringThresholdBytes;
  obs::count("tune.plan.applied");
  obs::gaugeSet("tune.ring_threshold_bytes",
                static_cast<double>(plan.ringThresholdBytes));
}

void apply(const TuningPlan& plan, sw::SwKernelConfig& cfg) {
  cfg.chunkX = std::max(1, plan.chunkX);
  obs::count("tune.plan.applied");
  obs::gaugeSet("tune.chunk_x", cfg.chunkX);
}

std::string summary(const TuningPlan& plan) {
  std::ostringstream os;
  os << "halo=" << halo_mode_name(plan.haloMode)
     << " ring_threshold=" << plan.ringThresholdBytes << "B"
     << " chunk_x=" << plan.chunkX << " backend=" << plan.backend
     << " patch_overrides=" << plan.patchBackends.size()
     << " patches_per_rank=" << plan.patchesPerRank
     << " precision=" << plan.precision << " source=" << plan.source;
  return os.str();
}

}  // namespace swlb::tune
