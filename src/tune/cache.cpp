#include "tune/cache.hpp"

#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

namespace swlb::tune {

namespace {

// ---- writing -----------------------------------------------------------

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Shortest round-trip formatting: %.17g reproduces every double exactly
/// and identically across runs (byte-deterministic plans).
std::string numStr(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

// ---- minimal JSON parser ----------------------------------------------
// Accepts the subset this module writes: objects, arrays, strings with
// the escapes above, numbers, true/false/null.  Grammar errors throw.

struct JsonValue {
  enum class Type { Null, Bool, Number, String, Object, Array };
  Type type = Type::Null;
  bool boolean = false;
  double number = 0;
  std::string str;
  std::map<std::string, JsonValue> object;
  std::vector<JsonValue> array;
};

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  JsonValue parse() {
    JsonValue v = value();
    ws();
    if (pos_ != s_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw Error("tuning cache: malformed JSON at byte " +
                std::to_string(pos_) + ": " + why);
  }

  void ws() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
  }

  char peek() {
    if (pos_ >= s_.size()) fail("unexpected end of input");
    return s_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  JsonValue value() {
    ws();
    const char c = peek();
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') {
      JsonValue v;
      v.type = JsonValue::Type::String;
      v.str = string();
      return v;
    }
    if (c == 't' || c == 'f') return boolean();
    if (c == 'n') {
      literal("null");
      return JsonValue{};
    }
    return number();
  }

  void literal(const char* word) {
    for (const char* p = word; *p; ++p) expect(*p);
  }

  JsonValue boolean() {
    JsonValue v;
    v.type = JsonValue::Type::Bool;
    if (peek() == 't') {
      literal("true");
      v.boolean = true;
    } else {
      literal("false");
    }
    return v;
  }

  JsonValue number() {
    const std::size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '-' || s_[pos_] == '+' || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E'))
      ++pos_;
    if (pos_ == start) fail("expected a value");
    JsonValue v;
    v.type = JsonValue::Type::Number;
    try {
      v.number = std::stod(s_.substr(start, pos_ - start));
    } catch (const std::exception&) {
      fail("bad number");
    }
    return v;
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= s_.size()) fail("unterminated string");
      char c = s_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= s_.size()) fail("unterminated escape");
      c = s_[pos_++];
      switch (c) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > s_.size()) fail("truncated \\u escape");
          const std::string hex = s_.substr(pos_, 4);
          pos_ += 4;
          out += static_cast<char>(std::stoi(hex, nullptr, 16));
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  JsonValue object() {
    expect('{');
    JsonValue v;
    v.type = JsonValue::Type::Object;
    ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      ws();
      std::string key = string();
      ws();
      expect(':');
      v.object[key] = value();
      ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue array() {
    expect('[');
    JsonValue v;
    v.type = JsonValue::Type::Array;
    ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(value());
      ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

const JsonValue& field(const JsonValue& obj, const char* name) {
  const auto it = obj.object.find(name);
  if (it == obj.object.end())
    throw Error(std::string("tuning cache: missing field \"") + name + "\"");
  return it->second;
}

std::string stringField(const JsonValue& obj, const char* name) {
  const JsonValue& v = field(obj, name);
  if (v.type != JsonValue::Type::String)
    throw Error(std::string("tuning cache: field \"") + name +
                "\" is not a string");
  return v.str;
}

double numberField(const JsonValue& obj, const char* name) {
  const JsonValue& v = field(obj, name);
  if (v.type != JsonValue::Type::Number)
    throw Error(std::string("tuning cache: field \"") + name +
                "\" is not a number");
  return v.number;
}

TuningPlan planFromJson(const JsonValue& obj) {
  TuningPlan p;
  const std::string mode = stringField(obj, "halo_mode");
  if (mode == "sequential") {
    p.haloMode = runtime::HaloMode::Sequential;
  } else if (mode == "overlap") {
    p.haloMode = runtime::HaloMode::Overlap;
  } else {
    throw Error("tuning cache: unknown halo_mode \"" + mode + "\"");
  }
  p.ringThresholdBytes =
      static_cast<std::size_t>(numberField(obj, "ring_threshold_bytes"));
  p.chunkX = static_cast<int>(numberField(obj, "chunk_x"));
  // Tolerant read: "backend" is the current spelling; plans written when
  // the knob was called the kernel variant carry "kernel_variant" with
  // the same value set; older plans have neither and mean "fused".
  const auto be = obj.object.find("backend");
  const auto kv = obj.object.find("kernel_variant");
  if (be != obj.object.end()) {
    if (be->second.type != JsonValue::Type::String)
      throw Error("tuning cache: \"backend\" is not a string");
    p.backend = be->second.str;
  } else if (kv != obj.object.end()) {
    if (kv->second.type != JsonValue::Type::String)
      throw Error("tuning cache: \"kernel_variant\" is not a string");
    p.backend = kv->second.str;
  }
  // Tolerant read: the per-patch backend map postdates every older
  // schema revision and defaults to empty (every patch runs `backend`).
  const auto pb = obj.object.find("patch_backends");
  if (pb != obj.object.end()) {
    if (pb->second.type != JsonValue::Type::Object)
      throw Error("tuning cache: \"patch_backends\" is not an object");
    for (const auto& [k, v] : pb->second.object) {
      if (v.type != JsonValue::Type::String)
        throw Error("tuning cache: patch_backends[\"" + k +
                    "\"] is not a string");
      try {
        p.patchBackends[std::stoi(k)] = v.str;
      } catch (const std::exception&) {
        throw Error("tuning cache: patch_backends key \"" + k +
                    "\" is not a patch id");
      }
    }
  }
  // Tolerant read: plans written before the patch knob existed mean one
  // block per rank.
  const auto ppr = obj.object.find("patches_per_rank");
  if (ppr != obj.object.end()) {
    if (ppr->second.type != JsonValue::Type::Number)
      throw Error("tuning cache: \"patches_per_rank\" is not a number");
    p.patchesPerRank = static_cast<int>(ppr->second.number);
  }
  p.precision = stringField(obj, "precision");
  p.precisionAdvice = stringField(obj, "precision_advice");
  p.advisedQuantError = numberField(obj, "advised_quant_error");
  p.source = stringField(obj, "source");
  const JsonValue& ev = field(obj, "evidence");
  if (ev.type != JsonValue::Type::Object)
    throw Error("tuning cache: \"evidence\" is not an object");
  for (const auto& [k, v] : ev.object) {
    if (v.type != JsonValue::Type::Number)
      throw Error("tuning cache: evidence \"" + k + "\" is not a number");
    p.evidence[k] = v.number;
  }
  return p;
}

}  // namespace

const char* halo_mode_name(runtime::HaloMode m) {
  return m == runtime::HaloMode::Sequential ? "sequential" : "overlap";
}

std::string to_json(const TuningKey& key) {
  return '"' + escape(key.toString()) + '"';
}

std::string TuningKey::toString() const {
  return lattice + ":" + std::to_string(extent.x) + "x" +
         std::to_string(extent.y) + "x" + std::to_string(extent.z) + ":r" +
         std::to_string(ranks) + ":" + precision;
}

std::string to_json(const TuningPlan& plan) {
  // Keys in lexicographic order, matching the map-backed sections, so the
  // whole document is byte-stable for identical contents.
  // "kernel_variant" repeats the backend value: binaries from before the
  // backend layer tolerant-read that key, so a new cache file still
  // applies there (and new readers prefer "backend").
  std::ostringstream os;
  os << "{\"advised_quant_error\": " << numStr(plan.advisedQuantError)
     << ", \"backend\": \"" << escape(plan.backend)
     << "\", \"chunk_x\": " << plan.chunkX << ", \"evidence\": {";
  bool first = true;
  for (const auto& [k, v] : plan.evidence) {
    if (!first) os << ", ";
    first = false;
    os << '"' << escape(k) << "\": " << numStr(v);
  }
  os << "}, \"halo_mode\": \"" << halo_mode_name(plan.haloMode)
     << "\", \"kernel_variant\": \"" << escape(plan.backend)
     << "\", \"patch_backends\": {";
  first = true;
  for (const auto& [id, name] : plan.patchBackends) {
    if (!first) os << ", ";
    first = false;
    os << '"' << id << "\": \"" << escape(name) << '"';
  }
  os << "}, \"patches_per_rank\": " << plan.patchesPerRank
     << ", \"precision\": \"" << escape(plan.precision)
     << "\", \"precision_advice\": \"" << escape(plan.precisionAdvice)
     << "\", \"ring_threshold_bytes\": " << plan.ringThresholdBytes
     << ", \"source\": \"" << escape(plan.source) << "\"}";
  return os.str();
}

std::string TuningCache::toString() const {
  std::ostringstream os;
  os << "{\n  \"schema\": \"" << kTuneSchema << "\",\n  \"plans\": [";
  bool first = true;
  for (const auto& [key, plan] : plans_) {
    if (!first) os << ",";
    first = false;
    os << "\n    {\"key\": \"" << escape(key)
       << "\",\n     \"plan\": " << to_json(plan) << "}";
  }
  os << (plans_.empty() ? "]" : "\n  ]") << "\n}\n";
  return os.str();
}

void TuningCache::save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw Error("tuning cache: cannot write " + path);
  out << toString();
  if (!out) throw Error("tuning cache: write failed for " + path);
}

TuningCache TuningCache::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return TuningCache{};  // no cache yet: empty, not an error
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();

  const JsonValue root = Parser(text).parse();
  if (root.type != JsonValue::Type::Object)
    throw Error("tuning cache: root is not an object in " + path);
  const auto schema = root.object.find("schema");
  if (schema == root.object.end() ||
      schema->second.type != JsonValue::Type::String ||
      schema->second.str != kTuneSchema)
    return TuningCache{};  // stale/unknown format: discard, re-tune

  TuningCache cache;
  const JsonValue& plans = field(root, "plans");
  if (plans.type != JsonValue::Type::Array)
    throw Error("tuning cache: \"plans\" is not an array in " + path);
  for (const JsonValue& entry : plans.array) {
    if (entry.type != JsonValue::Type::Object)
      throw Error("tuning cache: plan entry is not an object in " + path);
    const std::string key = stringField(entry, "key");
    const JsonValue& plan = field(entry, "plan");
    if (plan.type != JsonValue::Type::Object)
      throw Error("tuning cache: \"plan\" is not an object in " + path);
    cache.plans_[key] = planFromJson(plan);
  }
  return cache;
}

std::optional<TuningPlan> TuningCache::lookup(const TuningKey& key) const {
  const auto it = plans_.find(key.toString());
  if (it == plans_.end()) return std::nullopt;
  return it->second;
}

}  // namespace swlb::tune
