#include "sw/cpe.hpp"

#include "obs/context.hpp"

namespace swlb::sw {

CpeCluster::CpeCluster(const CoreGroupSpec& spec)
    : spec_(spec),
      reg_(spec.cpeRows, spec.cpeCols),
      rma_(spec.cpeRows, spec.cpeCols) {
  const int n = spec_.cpeCount();
  ldm_.reserve(static_cast<std::size_t>(n));
  dma_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    ldm_.push_back(std::make_unique<Ldm>(spec_.ldmBytes));
    dma_.push_back(std::make_unique<DmaEngine>(spec_.dma));
  }
}

void CpeCluster::run(const std::function<void(CpeContext&)>& kernel) {
  obs::TraceScope runScope("sw.run");
  // Delta metering: the cluster's engines accumulate across run() calls,
  // but the observability counters should attribute traffic to this launch
  // only.  Skipped entirely when no obs context is bound.
  const bool metered = obs::current() != nullptr;
  DmaStats dmaBefore;
  FabricStats regBefore, rmaBefore;
  if (metered) {
    dmaBefore = dmaTotal();
    regBefore = reg_.stats();
    rmaBefore = rma_.stats();
  }
  for (int i = 0; i < cpeCount(); ++i) {
    CpeContext ctx;
    ctx.id = i;
    ctx.row = i / spec_.cpeCols;
    ctx.col = i % spec_.cpeCols;
    ctx.count = cpeCount();
    ctx.ldm = ldm_[static_cast<std::size_t>(i)].get();
    ctx.dma = dma_[static_cast<std::size_t>(i)].get();
    ctx.reg = spec_.hasRegisterComm ? &reg_ : nullptr;
    ctx.rma = spec_.hasRma ? &rma_ : nullptr;
    ctx.ldm->reset();
    kernel(ctx);
  }
  if (metered) {
    const DmaStats dmaAfter = dmaTotal();
    const FabricStats regAfter = reg_.stats();
    const FabricStats rmaAfter = rma_.stats();
    obs::count("sw.dma.bytes", dmaAfter.bytes() - dmaBefore.bytes());
    obs::count("sw.dma.transactions",
               dmaAfter.transactions() - dmaBefore.transactions());
    obs::count("sw.regcomm.bytes", regAfter.bytes - regBefore.bytes);
    obs::count("sw.regcomm.packets", regAfter.packets - regBefore.packets);
    obs::count("sw.rma.bytes", rmaAfter.bytes - rmaBefore.bytes);
    obs::gaugeMax("sw.ldm_high_water", static_cast<double>(ldmHighWater()));
    obs::gaugeSet("sw.dma.modeled_seconds", dmaModeledSeconds());
  }
}

DmaStats CpeCluster::dmaTotal() const {
  DmaStats total;
  for (const auto& d : dma_) total += d->stats();
  return total;
}

double CpeCluster::dmaModeledSeconds() const {
  // All CPEs share one memory controller per core group, so transactions
  // serialize on the DMA bus: total time is the sum over engines.
  double s = 0;
  for (const auto& d : dma_) s += d->modeledSeconds();
  return s;
}

FabricStats CpeCluster::fabricTotal() const {
  FabricStats total = reg_.stats();
  total += rma_.stats();
  return total;
}

double CpeCluster::fabricModeledSeconds() const {
  return (static_cast<double>(reg_.stats().bytes) +
          static_cast<double>(rma_.stats().bytes)) /
         spec_.fabricBandwidth;
}

std::size_t CpeCluster::ldmHighWater() const {
  std::size_t hw = 0;
  for (const auto& l : ldm_) hw = std::max(hw, l->highWater());
  return hw;
}

void CpeCluster::resetStats() {
  for (const auto& d : dma_) d->resetStats();
  reg_.resetStats();
  rma_.resetStats();
}

}  // namespace swlb::sw
