// Athread-style API over the CPE cluster emulator.
//
// The paper's solver is written against Athread, "a specialized
// lightweight thread library designed specifically for Sunway
// Supercomputers" (§IV-A): the MPE spawns a kernel on the 64 CPEs, each
// CPE moves data with athread_get/athread_put DMA calls and synchronizes
// with sync_array.  This adapter exposes the same verbs over the
// emulator so kernel code reads like SunwayLB's.
#pragma once

#include <functional>

#include "sw/cpe.hpp"

namespace swlb::sw {

/// One "athread domain": an initialized CPE cluster accepting spawns.
class Athread {
 public:
  explicit Athread(const CoreGroupSpec& spec) : cluster_(spec) {}

  /// athread_init: nothing to do in the emulator, kept for fidelity.
  void init() { initialized_ = true; }
  bool initialized() const { return initialized_; }

  /// athread_spawn + athread_join: run `kernel` on all 64 CPEs to
  /// completion.  The kernel receives the per-CPE context.
  void spawnJoin(const std::function<void(CpeContext&)>& kernel) {
    if (!initialized_) throw Error("Athread: spawn before init");
    cluster_.run(kernel);
  }

  /// athread_halt.
  void halt() { initialized_ = false; }

  CpeCluster& cluster() { return cluster_; }

 private:
  CpeCluster cluster_;
  bool initialized_ = false;
};

/// athread_get: main memory -> LDM (one DMA transaction).
template <typename T>
void athread_get(CpeContext& ctx, const T* mem, std::span<T> ldm) {
  ctx.dma->get(mem, ldm);
}

/// athread_put: LDM -> main memory.
template <typename T>
void athread_put(CpeContext& ctx, T* mem, std::span<const T> ldm) {
  ctx.dma->put(mem, ldm);
}

/// ldm_malloc equivalent: allocate from the CPE's scratchpad arena.
template <typename T>
std::span<T> ldm_malloc(CpeContext& ctx, std::size_t n, const char* label = "") {
  return ctx.ldm->alloc<T>(n, label);
}

/// Register-communication send along a row/column bus (SW26010).
inline void reg_putr(CpeContext& ctx, int dstCpe, std::span<const Real> data,
                     std::span<Real> remoteBuf) {
  if (!ctx.reg) throw Error("reg_putr: no register communication on this machine");
  ctx.reg->transfer(ctx.id, dstCpe, data, remoteBuf);
}

/// RMA put (SW26010-Pro).
inline void rma_put(CpeContext& ctx, int dstCpe, std::span<const Real> data,
                    std::span<Real> remoteBuf) {
  if (!ctx.rma) throw Error("rma_put: no RMA on this machine");
  ctx.rma->put(ctx.id, dstCpe, data, remoteBuf);
}

}  // namespace swlb::sw
