// Metered DMA engine between main memory and LDM.
//
// Functionally a memcpy; every transaction is recorded and costed with the
// latency/bandwidth model of DmaModel, which is what makes "few large
// contiguous transfers" beat "many small strided ones" in the emulator —
// the central constraint the paper's blocking scheme is designed around.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>

#include "core/common.hpp"
#include "sw/spec.hpp"

namespace swlb::sw {

struct DmaStats {
  std::uint64_t getTransactions = 0;
  std::uint64_t getBytes = 0;
  std::uint64_t putTransactions = 0;
  std::uint64_t putBytes = 0;

  std::uint64_t transactions() const { return getTransactions + putTransactions; }
  std::uint64_t bytes() const { return getBytes + putBytes; }

  DmaStats& operator+=(const DmaStats& o) {
    getTransactions += o.getTransactions;
    getBytes += o.getBytes;
    putTransactions += o.putTransactions;
    putBytes += o.putBytes;
    return *this;
  }
};

class DmaEngine {
 public:
  explicit DmaEngine(const DmaModel& model) : model_(model) {}

  /// Main memory -> LDM, one contiguous transaction.
  template <typename T>
  void get(const T* mem, std::span<T> ldm) {
    std::memcpy(ldm.data(), mem, ldm.size_bytes());
    ++stats_.getTransactions;
    stats_.getBytes += ldm.size_bytes();
  }

  /// LDM -> main memory, one contiguous transaction.
  template <typename T>
  void put(T* mem, std::span<const T> ldm) {
    std::memcpy(mem, ldm.data(), ldm.size_bytes());
    ++stats_.putTransactions;
    stats_.putBytes += ldm.size_bytes();
  }

  /// Strided get: `rows` transactions of rowElems each (row-by-row DMA, the
  /// pattern of a naive AoS layout or of loading a 2-D tile).
  template <typename T>
  void getStrided(const T* mem, std::size_t strideElems, std::size_t rows,
                  std::size_t rowElems, std::span<T> ldm) {
    SWLB_ASSERT(ldm.size() >= rows * rowElems);
    for (std::size_t r = 0; r < rows; ++r) {
      std::memcpy(ldm.data() + r * rowElems, mem + r * strideElems,
                  rowElems * sizeof(T));
      ++stats_.getTransactions;
      stats_.getBytes += rowElems * sizeof(T);
    }
  }

  const DmaStats& stats() const { return stats_; }
  void resetStats() { stats_ = DmaStats{}; }

  /// Modeled wall time of all recorded transactions on this engine.
  double modeledSeconds() const {
    return static_cast<double>(stats_.transactions()) * model_.startupSeconds +
           static_cast<double>(stats_.bytes()) / model_.peakBandwidth;
  }

  const DmaModel& model() const { return model_; }

 private:
  DmaModel model_;
  DmaStats stats_;
};

}  // namespace swlb::sw
