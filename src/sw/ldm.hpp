// Local Data Memory (LDM) arena of one CPE.
//
// Each CPE has 64 KB (SW26010) / 256 KB (SW26010-Pro) of software-managed
// scratchpad.  Kernels must plan their working set explicitly; the arena
// enforces the capacity as a hard error so any blocking plan that would
// not fit on real silicon fails loudly in the emulator too (paper §IV-C2).
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "core/common.hpp"

namespace swlb::sw {

class Ldm {
 public:
  explicit Ldm(std::size_t capacityBytes) : capacity_(capacityBytes) {
    storage_.resize(capacityBytes);
  }

  /// Allocate n elements of T; throws Error when the plan exceeds LDM.
  template <typename T>
  std::span<T> alloc(std::size_t n, const char* label = "") {
    const std::size_t align = alignof(T);
    std::size_t off = (used_ + align - 1) / align * align;
    const std::size_t bytes = n * sizeof(T);
    if (off + bytes > capacity_) {
      throw Error("LDM overflow allocating '" + std::string(label) + "': " +
                  std::to_string(bytes) + " B requested, " +
                  std::to_string(capacity_ - used_) + " B free of " +
                  std::to_string(capacity_) + " B");
    }
    T* p = reinterpret_cast<T*>(storage_.data() + off);
    used_ = off + bytes;
    highWater_ = std::max(highWater_, used_);
    return std::span<T>(p, n);
  }

  /// Release everything (end of a processing phase).  Cheap: arena reset.
  void reset() { used_ = 0; }

  std::size_t capacity() const { return capacity_; }
  std::size_t used() const { return used_; }
  std::size_t highWater() const { return highWater_; }
  std::size_t freeBytes() const { return capacity_ - used_; }

 private:
  std::size_t capacity_;
  std::size_t used_ = 0;
  std::size_t highWater_ = 0;
  std::vector<std::byte> storage_;
};

}  // namespace swlb::sw
