// Register communication fabric of the SW26010 CPE mesh (paper Fig. 5(4)).
//
// The 8x8 mesh has 8 row buses and 8 column buses: a CPE can exchange
// 256-bit register packets with any CPE *in the same row or column*.  The
// emulator enforces that topology constraint and meters packets/bytes;
// payload movement is a functional copy.
#pragma once

#include <cstdint>
#include <span>

#include "core/common.hpp"

namespace swlb::sw {

struct FabricStats {
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;
  std::uint64_t broadcasts = 0;

  FabricStats& operator+=(const FabricStats& o) {
    packets += o.packets;
    bytes += o.bytes;
    broadcasts += o.broadcasts;
    return *this;
  }
};

class RegCommFabric {
 public:
  static constexpr std::size_t kPacketBytes = 32;  // 256-bit registers

  RegCommFabric(int rows, int cols) : rows_(rows), cols_(cols) {}

  /// True when src and dst CPEs share a row or a column bus.
  bool reachable(int srcCpe, int dstCpe) const {
    return row(srcCpe) == row(dstCpe) || col(srcCpe) == col(dstCpe);
  }

  /// Point-to-point transfer along a row/column bus.  `data` is copied to
  /// `out`; the cost is metered in 256-bit packets.  Throws when the mesh
  /// topology does not allow the pair (no routing through third CPEs on
  /// SW26010 register buses).
  template <typename T>
  void transfer(int srcCpe, int dstCpe, std::span<const T> data,
                std::span<T> out) {
    if (!reachable(srcCpe, dstCpe)) {
      throw Error("RegCommFabric: CPE " + std::to_string(srcCpe) + " -> " +
                  std::to_string(dstCpe) +
                  " not on a shared row/column bus; use DMA instead");
    }
    SWLB_ASSERT(out.size() >= data.size());
    std::copy(data.begin(), data.end(), out.begin());
    meter(data.size_bytes());
  }

  /// Row or column broadcast (one sender, 7 receivers); metered once.
  template <typename T>
  void broadcast(int srcCpe, std::span<const T> data) {
    (void)srcCpe;
    meter(data.size_bytes());
    ++stats_.broadcasts;
  }

  const FabricStats& stats() const { return stats_; }
  void resetStats() { stats_ = FabricStats{}; }

  /// Modeled seconds for all metered traffic at `bandwidth` bytes/s.
  double modeledSeconds(double bandwidth) const {
    return static_cast<double>(stats_.bytes) / bandwidth;
  }

  int row(int cpe) const { return cpe / cols_; }
  int col(int cpe) const { return cpe % cols_; }

 private:
  void meter(std::size_t bytes) {
    stats_.packets += (bytes + kPacketBytes - 1) / kPacketBytes;
    stats_.bytes += bytes;
  }

  int rows_, cols_;
  FabricStats stats_;
};

}  // namespace swlb::sw
