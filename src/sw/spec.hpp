// Hardware specifications of the Sunway processors (paper §III) and the
// GPU cluster used for the portability study (§IV-E).
//
// These numbers parameterize the functional emulator (LDM capacities are
// enforced, DMA transactions costed) and the performance model that
// regenerates the paper's scaling figures.
#pragma once

#include <cstddef>

#include "core/common.hpp"

namespace swlb::sw {

/// DMA cost model: a transfer of b bytes takes
///   startupSeconds + b / peakBandwidth
/// equivalently the effective bandwidth curve bw(b) = peak / (1 + b0/b)
/// with b0 = startupSeconds * peak — small/strided transfers waste the
/// engine (paper §III-C: "discontinuous memory accesses will prevent the
/// program from achieving high DMA bandwidth utilization").
struct DmaModel {
  double peakBandwidth = 0;   ///< bytes/second (per core group)
  double startupSeconds = 0;  ///< per-transaction overhead

  double transferSeconds(std::size_t bytes) const {
    return startupSeconds + static_cast<double>(bytes) / peakBandwidth;
  }
  double effectiveBandwidth(std::size_t bytes) const {
    return static_cast<double>(bytes) / transferSeconds(bytes);
  }
};

/// One core group: 1 MPE + an 8x8 CPE mesh sharing a memory controller.
struct CoreGroupSpec {
  int cpeRows = 8;
  int cpeCols = 8;
  std::size_t ldmBytes = 0;     ///< local data memory per CPE
  DmaModel dma;                 ///< CG-aggregate DMA engine
  double cpeFrequencyHz = 0;
  int vectorBits = 256;         ///< SIMD width of a CPE
  double flopsPerCpePerCycle = 8;  ///< FMA * vector lanes (double precision)
  bool hasRegisterComm = false;    ///< SW26010: row/col register communication
  bool hasRma = false;             ///< SW26010-Pro: remote memory access
  /// Register-communication / RMA fabric bandwidth between CPEs (bytes/s).
  double fabricBandwidth = 0;

  int cpeCount() const { return cpeRows * cpeCols; }
  double peakFlops() const {
    return static_cast<double>(cpeCount()) * cpeFrequencyHz * flopsPerCpePerCycle;
  }
};

/// Interconnect: 256 processors per supernode on a full-crossbar switch
/// board; supernodes connected by a fat tree (paper Fig. 2(b)).
struct NetworkSpec {
  int processorsPerSupernode = 256;
  double intraSupernodeBandwidth = 0;  ///< bytes/s per link
  double intraSupernodeLatency = 0;    ///< seconds
  double fatTreeBandwidth = 0;
  double fatTreeLatency = 0;
};

struct MachineSpec {
  const char* name = "";
  int coreGroupsPerProcessor = 0;
  CoreGroupSpec cg;
  double mpeFrequencyHz = 0;
  /// Effective bandwidth of scalar MPE-only code (gld/gst through the
  /// small data cache — the Fig. 8 baseline runs everything on the MPE).
  double mpeEffectiveBandwidth = 0;
  NetworkSpec net;

  double processorPeakFlops() const {
    return coreGroupsPerProcessor * cg.peakFlops();
  }

  /// Sunway TaihuLight's SW26010 (paper §III-B).
  static MachineSpec sw26010() {
    MachineSpec m;
    m.name = "SW26010 (Sunway TaihuLight)";
    m.coreGroupsPerProcessor = 4;
    m.cg.ldmBytes = 64 * 1024;
    m.cg.dma.peakBandwidth = 32.0 * (1ull << 30);  // paper: max DMA bw 32 GB/s
    m.cg.dma.startupSeconds = 1.0e-7;
    m.cg.cpeFrequencyHz = 1.45e9;
    m.cg.vectorBits = 256;
    m.cg.flopsPerCpePerCycle = 8;  // 4 lanes FMA
    m.cg.hasRegisterComm = true;
    m.cg.hasRma = false;
    m.cg.fabricBandwidth = 180.0 * (1ull << 30);  // register-level mesh
    m.mpeFrequencyHz = 1.45e9;
    // Calibrated so an MPE-only step over the paper's 35M-cell CG block
    // costs ~73.6 s (the Fig. 8 baseline).
    m.mpeEffectiveBandwidth = 0.22 * (1ull << 30);
    m.net.intraSupernodeBandwidth = 14.0 * (1ull << 30);
    m.net.intraSupernodeLatency = 1.0e-6;
    m.net.fatTreeBandwidth = 7.0 * (1ull << 30);
    m.net.fatTreeLatency = 2.0e-6;
    return m;
  }

  /// SW26010-Pro (the new Sunway supercomputer, paper §III-B).
  static MachineSpec sw26010pro() {
    MachineSpec m;
    m.name = "SW26010-Pro (new Sunway)";
    m.coreGroupsPerProcessor = 6;
    m.cg.ldmBytes = 256 * 1024;
    m.cg.dma.peakBandwidth = 51.2e9;  // 307.2 GB/s aggregate over 6 CGs
    m.cg.dma.startupSeconds = 6.0e-8;
    m.cg.cpeFrequencyHz = 2.25e9;
    m.cg.vectorBits = 512;
    m.cg.flopsPerCpePerCycle = 16;  // 8 lanes FMA
    m.cg.hasRegisterComm = false;
    m.cg.hasRma = true;
    m.cg.fabricBandwidth = 400.0 * (1ull << 30);
    m.mpeFrequencyHz = 2.1e9;
    m.mpeEffectiveBandwidth = 0.35 * (1ull << 30);
    m.net.intraSupernodeBandwidth = 28.0 * (1ull << 30);
    m.net.intraSupernodeLatency = 0.8e-6;
    m.net.fatTreeBandwidth = 14.0 * (1ull << 30);
    m.net.fatTreeLatency = 1.6e-6;
    return m;
  }
};

/// GPU cluster node used in §IV-E: 2x Xeon 6248R + 8x RTX 3090.
struct GpuNodeSpec {
  const char* name = "8x RTX 3090 + 2x Xeon 6248R";
  int gpusPerNode = 8;
  double gpuMemBandwidth = 936.0e9;  ///< GDDR6X bytes/s per GPU
  double gpuPeakFlopsFp64 = 556.0e9; ///< RTX 3090 FP64 is 1/64 of FP32
  double pcieBandwidth = 16.0e9;     ///< host<->device, pinned
  double pcieBandwidthPageable = 6.0e9;  ///< extra staging copy
  double ncclP2pBandwidth = 20.0e9;  ///< GPU<->GPU via NCCL rings
  /// Effective bandwidth of the basic one-socket MPI baseline (24-core
  /// Xeon 6248R, untuned AoS kernel); calibrated so the full GPU ladder
  /// lands at the paper's 191x.
  double cpuSocketBandwidth = 42.7e9;
  double nodeInterconnectBandwidth = 12.5e9;  ///< 100 Gb/s IB between nodes
  double nodeInterconnectLatency = 2.0e-6;
};

}  // namespace swlb::sw
