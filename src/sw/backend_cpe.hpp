// The SW CPE emulator as a registered kernel backend (DESIGN.md §14).
//
// sw_stream_collide is a whole-block kernel: the core group partitions
// the block along y over 64 CPEs and sweeps everything, so the backend
// advertises caps.subRange = false — DistributedSolver then forces the
// Sequential halo schedule instead of silently mis-running the overlap
// split, and Solver/PatchSolver (which always pass the full interior)
// use it unchanged.  Output stays bit-identical to the fused reference
// (the emulator computes with the same per-cell arithmetic; test_sw_
// kernels and the conformance suite both pin this).
#pragma once

#include "core/backend.hpp"
#include "sw/spec.hpp"
#include "sw/sw_kernels.hpp"

namespace swlb::sw {

template <class D, class S>
class SwCpeBackend final : public KernelBackend<D, S> {
 public:
  using Field = PopulationFieldT<S>;

  const BackendInfo& info() const override {
    return *find_backend_info("swcpe");
  }

  void init(const Grid& grid, const MaskField& mask,
            const MaterialTable& mats) override {
    KernelBackend<D, S>::init(grid, mask, mats);
    if (!cluster_) cluster_ = std::make_unique<CpeCluster>(spec_.cg);
  }

  void step(const BackendStepArgs<D, S>& a) override {
    if (a.range != a.src->grid().interior())
      throw Error(
          "backend 'swcpe' updates the whole block per call (capability "
          "'subRange' is off; no inner/shell overlap split)");
    if (!cluster_) cluster_ = std::make_unique<CpeCluster>(spec_.cg);
    SwKernelConfig cfg;
    cfg.collision = *a.cfg;
    cfg.chunkX = chunkFor(a.src->grid());
    sw_stream_collide<D, S>(*cluster_, *a.src, *a.dst, *a.mask, *a.mats, cfg);
  }

 private:
  /// Largest LDM-feasible x-chunk for this block (capped at the default
  /// 32): the y-slab height per CPE plus two ghost rows sizes the plan.
  int chunkFor(const Grid& g) const {
    const int cpes = spec_.cg.cpeCount();
    const int rowsPerCpe = std::max(1, (g.ny + cpes - 1) / cpes);
    const int cap =
        max_chunk_x(spec_.cg.ldmBytes, rowsPerCpe + 2, D::Q, sizeof(S));
    return std::max(1, std::min({32, cap, g.nx}));
  }

  MachineSpec spec_ = MachineSpec::sw26010();
  std::unique_ptr<CpeCluster> cluster_;
};

}  // namespace swlb::sw
