// Remote Memory Access fabric of the SW26010-Pro CPE mesh (paper §IV-D2).
//
// RMA replaces register communication on the new Sunway: it supports
// one-sided P2P transfers between *any* two CPEs plus row/column
// broadcasts, with larger payloads (LDM-to-LDM) and non-blocking issue.
// The emulator meters operations and bytes; payloads are copied
// functionally.
#pragma once

#include <cstdint>
#include <span>

#include "core/common.hpp"
#include "sw/regcomm.hpp"

namespace swlb::sw {

class RmaFabric {
 public:
  RmaFabric(int rows, int cols) : rows_(rows), cols_(cols) {}

  /// One-sided put: any CPE pair is reachable (mesh routes the transfer).
  /// Element type is generic: reduced-precision population rows move
  /// proportionally fewer bytes over the mesh.
  template <typename T>
  void put([[maybe_unused]] int srcCpe, [[maybe_unused]] int dstCpe,
           std::span<const T> data, std::span<T> out) {
    SWLB_ASSERT(srcCpe >= 0 && srcCpe < rows_ * cols_);
    SWLB_ASSERT(dstCpe >= 0 && dstCpe < rows_ * cols_);
    SWLB_ASSERT(out.size() >= data.size());
    std::copy(data.begin(), data.end(), out.begin());
    ++stats_.packets;
    stats_.bytes += data.size_bytes();
  }

  /// One-sided get (symmetric to put in the emulator).
  template <typename T>
  void get(int srcCpe, int dstCpe, std::span<const T> remote,
           std::span<T> local) {
    put(dstCpe, srcCpe, remote, local);
  }

  /// Row or column broadcast.
  template <typename T>
  void broadcastRow(int srcCpe, std::span<const T> data) {
    (void)srcCpe;
    ++stats_.broadcasts;
    stats_.bytes += data.size_bytes();
  }

  const FabricStats& stats() const { return stats_; }
  void resetStats() { stats_ = FabricStats{}; }
  double modeledSeconds(double bandwidth) const {
    return static_cast<double>(stats_.bytes) / bandwidth;
  }

 private:
  int rows_, cols_;
  FabricStats stats_;
};

}  // namespace swlb::sw
