#include "sw/sw_kernels.hpp"

#include "core/equilibrium.hpp"
#include "core/kernels.hpp"
#include "core/lattice.hpp"

namespace swlb::sw {

namespace {

/// Contiguous split of [0, n) into `parts`; remainder spread over the
/// leading parts (same policy as the MPI-level decomposition).
void splitRange(int n, int parts, int idx, int& lo, int& hi) {
  const int base = n / parts;
  const int extra = n % parts;
  lo = idx * base + std::min(idx, extra);
  hi = lo + base + (idx < extra ? 1 : 0);
}

/// Which CPE's slab owns row y (inverse of splitRange).
int ownerOf(int y, int n, int parts) {
  const int base = n / parts;
  const int extra = n % parts;
  const int cut = extra * (base + 1);
  if (base == 0) return y;  // fewer rows than CPEs: one row per leading CPE
  if (y < cut) return y / (base + 1);
  return extra + (y - cut) / base;
}

}  // namespace

int max_chunk_x(std::size_t ldmBytes, int rowsY, int q,
                std::size_t elemBytes) {
  // cost(bx) = A * (bx + 2) + B * bx with
  //   A = 3 * rowsY * (q * elemBytes + 1)   (pops + mask rows)
  //   B = q * elemBytes                     (output row)
  const std::size_t A = static_cast<std::size_t>(3) * rowsY *
                        (static_cast<std::size_t>(q) * elemBytes + 1);
  const std::size_t B = static_cast<std::size_t>(q) * elemBytes;
  if (ldmBytes <= 2 * A) return 0;
  const std::size_t bx = (ldmBytes - 2 * A) / (A + B);
  return static_cast<int>(bx);
}

template <class D, class S>
SwKernelReport sw_stream_collide(CpeCluster& cluster,
                                 const PopulationFieldT<S>& src,
                                 PopulationFieldT<S>& dst,
                                 const MaskField& mask,
                                 const MaterialTable& mats,
                                 const SwKernelConfig& cfg) {
  using Traits = StorageTraits<S>;
  const Grid& g = src.grid();
  SWLB_ASSERT(dst.grid() == g && mask.grid() == g);
  if (g.halo != 1) throw Error("sw_stream_collide: halo width must be 1");
  const int nx = g.nx, ny = g.ny, nz = g.nz;

  Real sh[D::Q];
  for (int i = 0; i < D::Q; ++i) sh[i] = src.shift(i);

  cluster.resetStats();
  std::uint64_t viaFabric = 0, viaDma = 0;

  // Raw-pointer views (const operator() returns by value; DMA needs
  // addresses into the field storage).
  auto srcPtr = [&](int q, int x, int y, int z) {
    return src.data() + src.slab(q) + g.idx(x, y, z);
  };
  auto dstPtr = [&](int q, int x, int y, int z) {
    return dst.data() + dst.slab(q) + g.idx(x, y, z);
  };
  auto maskPtr = [&](int x, int y, int z) { return mask.data() + g.idx(x, y, z); };

  auto rowsKernel = [&](CpeContext& ctx) {
    int y0, y1;
    splitRange(ny, ctx.count, ctx.id, y0, y1);
    if (y0 >= y1) return;
    const int rowsY = (y1 - y0) + 2;  // slab plus one ghost row per side

    for (int x0 = 0; x0 < nx; x0 += cfg.chunkX) {
      const int bx = std::min(cfg.chunkX, nx - x0);
      const int exl = bx + 2;

      ctx.ldm->reset();
      auto pops = ctx.ldm->alloc<S>(
          static_cast<std::size_t>(3) * rowsY * D::Q * exl, "z-window pops");
      auto masks = ctx.ldm->alloc<std::uint8_t>(
          static_cast<std::size_t>(3) * rowsY * exl, "z-window masks");
      auto out = ctx.ldm->alloc<S>(static_cast<std::size_t>(D::Q) * bx,
                                   "output row");

      auto slotOf = [](int zp) { return ((zp % 3) + 3) % 3; };
      auto popAt = [&](int slot, int yl, int q, int xl) -> S& {
        return pops[((static_cast<std::size_t>(slot) * rowsY + yl) * D::Q + q) *
                        exl +
                    xl];
      };
      // Decoded (full-precision) value of one windowed population; `q` is
      // the direction whose shift applies.
      auto ldp = [&](int slot, int yl, int q, int xl) -> Real {
        return Traits::decode(popAt(slot, yl, q, xl), sh[q]);
      };
      auto enc = [&](int q, Real v) -> S { return Traits::encode(v, sh[q]); };
      auto maskAt = [&](int slot, int yl, int xl) -> std::uint8_t& {
        return masks[(static_cast<std::size_t>(slot) * rowsY + yl) * exl + xl];
      };

      // Load one (y, zp) row into the window: Q direction-rows + mask row.
      auto loadRow = [&](int y, int zp) {
        const int slot = slotOf(zp);
        const int yl = y - (y0 - 1);
        const bool ghost = (y == y0 - 1 || y == y1);
        const bool neighbourOwned = ghost && y >= 0 && y < ny;
        bool fabricPath = false;
        int owner = ctx.id;
        if (cfg.shareBoundary && neighbourOwned) {
          owner = ownerOf(y, ny, ctx.count);
          if (owner != ctx.id) {
            // Register communication needs a shared row/column bus;
            // SW26010 pairs off the buses fall back to DMA (documented
            // deviation from the all-reachable RMA of SW26010-Pro).
            fabricPath = ctx.rma != nullptr ||
                         (ctx.reg != nullptr && ctx.reg->reachable(ctx.id, owner));
          }
        }
        for (int q = 0; q < D::Q; ++q) {
          const S* memRow = srcPtr(q, x0 - 1, y, zp);  // x-contiguous
          std::span<S> dstSpan(&popAt(slot, yl, q, 0), static_cast<std::size_t>(exl));
          if (fabricPath) {
            // Functional shortcut: the payload equals what the owning CPE
            // holds in its LDM, so the emulator copies from the field and
            // meters the transfer on the fabric.
            std::span<const S> srcSpan(memRow, static_cast<std::size_t>(exl));
            if (ctx.rma)
              ctx.rma->put(owner, ctx.id, srcSpan, dstSpan);
            else
              ctx.reg->transfer(owner, ctx.id, srcSpan, dstSpan);
          } else {
            ctx.dma->get(memRow, dstSpan);
          }
        }
        if (fabricPath)
          ++viaFabric;
        else if (ghost && neighbourOwned)
          ++viaDma;
        // Mask rows are one byte per cell; they always ride DMA.
        ctx.dma->get(maskPtr(x0 - 1, y, zp),
                     std::span<std::uint8_t>(&maskAt(slot, yl, 0),
                                             static_cast<std::size_t>(exl)));
      };

      auto loadPlane = [&](int zp) {
        for (int y = y0 - 1; y <= y1; ++y) loadRow(y, zp);
      };

      for (int z = 0; z < nz; ++z) {
        if (z == 0 || !cfg.reuseZWindow) {
          loadPlane(z - 1);
          loadPlane(z);
          loadPlane(z + 1);
        } else {
          loadPlane(z + 1);  // rolling window: only the new plane
        }

        const int cSlot = slotOf(z);
        for (int y = y0; y < y1; ++y) {
          const int ylC = y - (y0 - 1);
          for (int x = x0; x < x0 + bx; ++x) {
            const int xlC = x - x0 + 1;
            const std::uint8_t cid = maskAt(cSlot, ylC, xlC);
            const Material* zh = nullptr;
            if (cid != MaterialTable::kFluid) {
              const Material& m = mats[cid];
              switch (m.cls) {
                case CellClass::Fluid:
                  break;  // treated as fluid below
                case CellClass::ZouHeVelocity:
                case CellClass::ZouHePressure:
                case CellClass::Porous:
                  zh = &m;  // gather, fix/blend, collide
                  break;
                case CellClass::VelocityInlet: {
                  Real feq[D::Q];
                  equilibria<D>(m.rho, m.u, feq);
                  for (int i = 0; i < D::Q; ++i)
                    out[static_cast<std::size_t>(i) * bx + (x - x0)] =
                        enc(i, feq[i]);
                  continue;
                }
                case CellClass::Outflow: {
                  const int slot = slotOf(z + m.normal.z);
                  const int yl = ylC + m.normal.y;
                  const int xl = xlC + m.normal.x;
                  // decode -> encode, matching update_boundary_cell's
                  // proxy-assignment semantics exactly.
                  for (int i = 0; i < D::Q; ++i)
                    out[static_cast<std::size_t>(i) * bx + (x - x0)] =
                        enc(i, ldp(slot, yl, i, xl));
                  continue;
                }
                default:  // Solid / MovingWall: keep populations defined
                  for (int i = 0; i < D::Q; ++i)
                    out[static_cast<std::size_t>(i) * bx + (x - x0)] =
                        enc(i, ldp(cSlot, ylC, i, xlC));
                  continue;
              }
            }
            // Fluid update: gather with bounce-back, then collide —
            // identical arithmetic to the reference kernels.
            Real fin[D::Q];
            for (int i = 0; i < D::Q; ++i) {
              const int slot = slotOf(z - D::c[i][2]);
              const int yl = ylC - D::c[i][1];
              const int xl = xlC - D::c[i][0];
              const std::uint8_t nid = maskAt(slot, yl, xl);
              if (nid == MaterialTable::kFluid) {
                fin[i] = ldp(slot, yl, i, xl);
                continue;
              }
              const Material& m = mats[nid];
              if (is_pullable(m.cls)) {
                fin[i] = ldp(slot, yl, i, xl);
              } else if (m.cls == CellClass::Solid) {
                fin[i] = ldp(cSlot, ylC, D::opp(i), xlC);
              } else {  // MovingWall
                const Real cu = D::c[i][0] * m.u.x + D::c[i][1] * m.u.y +
                                D::c[i][2] * m.u.z;
                fin[i] =
                    ldp(cSlot, ylC, D::opp(i), xlC) + Real(6) * D::w[i] * m.rho * cu;
              }
            }
            Real fpre[D::Q] = {};
            if (zh && zh->cls == CellClass::Porous) {
              for (int i = 0; i < D::Q; ++i) fpre[i] = fin[i];
            } else if (zh) {
              swlb::zouhe_fix<D>(fin, *zh);
            }
            Real rho;
            Vec3 u;
            collide_cell<D>(fin, cfg.collision, rho, u);
            if (zh && zh->cls == CellClass::Porous)
              swlb::porous_blend<D>(fin, fpre, zh->solidity);
            for (int i = 0; i < D::Q; ++i)
              out[static_cast<std::size_t>(i) * bx + (x - x0)] = enc(i, fin[i]);
          }
          // Write the finished row back: one contiguous put per direction.
          for (int q = 0; q < D::Q; ++q) {
            ctx.dma->put(dstPtr(q, x0, y, z),
                         std::span<const S>(&out[static_cast<std::size_t>(q) * bx],
                                            static_cast<std::size_t>(bx)));
          }
        }
      }
    }
  };

  auto perCellKernel = [&](CpeContext& ctx) {
    int y0, y1;
    splitRange(ny, ctx.count, ctx.id, y0, y1);
    if (y0 >= y1) return;
    ctx.ldm->reset();
    auto fin = ctx.ldm->alloc<Real>(D::Q, "cell in");
    auto one = ctx.ldm->alloc<S>(1, "scratch");
    auto m9 = ctx.ldm->alloc<std::uint8_t>(1, "mask scratch");

    for (int z = 0; z < nz; ++z)
      for (int y = y0; y < y1; ++y)
        for (int x = 0; x < nx; ++x) {
          ctx.dma->get(maskPtr(x, y, z), std::span<std::uint8_t>(m9.data(), 1));
          const std::uint8_t cid = m9[0];
          if (cid != MaterialTable::kFluid && !is_streaming(mats[cid].cls)) {
            // Boundary cells: same semantics, still metered per value.
            Real tmp[D::Q];
            const Material& m = mats[cid];
            if (m.cls == CellClass::VelocityInlet) {
              equilibria<D>(m.rho, m.u, tmp);
            } else if (m.cls == CellClass::Outflow) {
              for (int i = 0; i < D::Q; ++i) {
                ctx.dma->get(srcPtr(i, x + m.normal.x, y + m.normal.y, z + m.normal.z),
                             std::span<S>(one.data(), 1));
                tmp[i] = Traits::decode(one[0], sh[i]);
              }
            } else {
              for (int i = 0; i < D::Q; ++i) {
                ctx.dma->get(srcPtr(i, x, y, z), std::span<S>(one.data(), 1));
                tmp[i] = Traits::decode(one[0], sh[i]);
              }
            }
            for (int i = 0; i < D::Q; ++i) {
              one[0] = Traits::encode(tmp[i], sh[i]);
              ctx.dma->put(dstPtr(i, x, y, z), std::span<const S>(one.data(), 1));
            }
            continue;
          }
          for (int i = 0; i < D::Q; ++i) {
            const int xn = x - D::c[i][0];
            const int yn = y - D::c[i][1];
            const int zn = z - D::c[i][2];
            ctx.dma->get(maskPtr(xn, yn, zn), std::span<std::uint8_t>(m9.data(), 1));
            const std::uint8_t nid = m9[0];
            const Material& m = mats[nid];
            if (nid == MaterialTable::kFluid || is_pullable(m.cls)) {
              ctx.dma->get(srcPtr(i, xn, yn, zn), std::span<S>(one.data(), 1));
              fin[i] = Traits::decode(one[0], sh[i]);
            } else if (m.cls == CellClass::Solid) {
              ctx.dma->get(srcPtr(D::opp(i), x, y, z), std::span<S>(one.data(), 1));
              fin[i] = Traits::decode(one[0], sh[D::opp(i)]);
            } else {
              ctx.dma->get(srcPtr(D::opp(i), x, y, z), std::span<S>(one.data(), 1));
              const Real cu =
                  D::c[i][0] * m.u.x + D::c[i][1] * m.u.y + D::c[i][2] * m.u.z;
              fin[i] = Traits::decode(one[0], sh[D::opp(i)]) +
                       Real(6) * D::w[i] * m.rho * cu;
            }
          }
          if (cid != MaterialTable::kFluid &&
              mats[cid].cls != CellClass::Fluid) {
            swlb::zouhe_fix<D>(fin.data(), mats[cid]);
          }
          Real rho;
          Vec3 u;
          collide_cell<D>(fin.data(), cfg.collision, rho, u);
          for (int i = 0; i < D::Q; ++i) {
            one[0] = Traits::encode(fin[i], sh[i]);
            ctx.dma->put(dstPtr(i, x, y, z), std::span<const S>(one.data(), 1));
          }
        }
  };

  if (cfg.blocking == SwBlocking::Rows)
    cluster.run(rowsKernel);
  else
    cluster.run(perCellKernel);

  SwKernelReport rep;
  rep.dma = cluster.dmaTotal();
  rep.fabric = cluster.fabricTotal();
  rep.ldmHighWater = cluster.ldmHighWater();
  rep.boundaryRowsViaFabric = viaFabric;
  rep.boundaryRowsViaDma = viaDma;
  rep.cellsUpdated = static_cast<std::uint64_t>(nx) * ny * nz;
  rep.dmaSeconds = cluster.dmaModeledSeconds();
  rep.fabricSeconds = cluster.fabricModeledSeconds();
  return rep;
}

#define SWLB_INSTANTIATE_SW(D, S)                                        \
  template SwKernelReport sw_stream_collide<D, S>(                       \
      CpeCluster&, const PopulationFieldT<S>&, PopulationFieldT<S>&,     \
      const MaskField&, const MaterialTable&, const SwKernelConfig&)

SWLB_INSTANTIATE_SW(D3Q19, double);
SWLB_INSTANTIATE_SW(D3Q19, float);
SWLB_INSTANTIATE_SW(D3Q19, f16);
SWLB_INSTANTIATE_SW(D2Q9, double);
SWLB_INSTANTIATE_SW(D2Q9, float);
SWLB_INSTANTIATE_SW(D2Q9, f16);

#undef SWLB_INSTANTIATE_SW

}  // namespace swlb::sw
