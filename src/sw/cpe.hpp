// CPE cluster emulator: runs kernels on 64 logical CPEs with per-CPE LDM
// arenas, metered DMA engines and the row/column communication fabrics.
//
// Execution is sequential and deterministic (the pull scheme has no
// intra-step data hazards between CPEs); fidelity comes from the enforced
// LDM capacity and the metered DMA/fabric traffic, which drive the
// performance model exactly like the REG-LDM-MEM hierarchy of Fang et al.
// drives kernels on real silicon (paper §III-B).
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "sw/dma.hpp"
#include "sw/ldm.hpp"
#include "sw/regcomm.hpp"
#include "sw/rma.hpp"
#include "sw/spec.hpp"

namespace swlb::sw {

/// Per-CPE view handed to a kernel: identity, scratchpad, engines.
struct CpeContext {
  int id = 0;
  int row = 0;
  int col = 0;
  int count = 0;
  Ldm* ldm = nullptr;
  DmaEngine* dma = nullptr;
  RegCommFabric* reg = nullptr;  ///< SW26010 only
  RmaFabric* rma = nullptr;      ///< SW26010-Pro only
};

class CpeCluster {
 public:
  explicit CpeCluster(const CoreGroupSpec& spec);

  const CoreGroupSpec& spec() const { return spec_; }
  int cpeCount() const { return spec_.cpeCount(); }

  /// Launch `kernel` on every CPE (athread_spawn + join equivalent).
  void run(const std::function<void(CpeContext&)>& kernel);

  /// Aggregate DMA statistics across all CPEs since the last reset.
  DmaStats dmaTotal() const;
  /// Modeled seconds of all DMA traffic on the shared memory controller.
  double dmaModeledSeconds() const;
  FabricStats fabricTotal() const;
  double fabricModeledSeconds() const;
  /// Highest LDM fill across all CPEs (bytes).
  std::size_t ldmHighWater() const;

  void resetStats();

  RegCommFabric& regFabric() { return reg_; }
  RmaFabric& rmaFabric() { return rma_; }

 private:
  CoreGroupSpec spec_;
  std::vector<std::unique_ptr<Ldm>> ldm_;
  std::vector<std::unique_ptr<DmaEngine>> dma_;
  RegCommFabric reg_;
  RmaFabric rma_;
};

}  // namespace swlb::sw
