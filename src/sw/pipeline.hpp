// Dual-pipeline issue model of a CPE (paper Fig. 10(2)).
//
// Each CPE issues from two pipelines: L0 executes scalar/vector
// floating-point and integer operations, L1 executes load/store and RMA
// operations.  A perfectly scheduled instruction stream overlaps the two
// (cycles = max(L0, L1)); an unscheduled stream serializes on
// dependencies (cycles -> L0 + L1).  The model interpolates with a
// scheduling-quality factor and is what quantifies the paper's
// "+assembly & pipelining" ladder stage.
#pragma once

#include <algorithm>

#include "core/common.hpp"

namespace swlb::sw {

struct InstructionMix {
  double flops = 0;        ///< floating-point operations
  double memOps = 0;       ///< LDM load/store + RMA issue slots
  double flopsPerCycle = 1;  ///< L0 throughput (vector width x FMA)
  double memOpsPerCycle = 1; ///< L1 throughput
};

class PipelineModel {
 public:
  /// @param scheduling 0 = naive (fully serialized on dependencies),
  ///                   1 = perfectly software-pipelined (full overlap)
  explicit PipelineModel(double scheduling) : scheduling_(clamp01(scheduling)) {}

  double scheduling() const { return scheduling_; }

  /// Modeled cycles to retire the mix on the two pipelines.
  double cycles(const InstructionMix& mix) const {
    const double l0 = mix.flops / mix.flopsPerCycle;
    const double l1 = mix.memOps / mix.memOpsPerCycle;
    const double serial = l0 + l1;
    const double overlapped = std::max(l0, l1);
    return serial + scheduling_ * (overlapped - serial);
  }

  /// Speedup of this schedule over the naive (serialized) one.
  double speedupOverNaive(const InstructionMix& mix) const {
    return PipelineModel(0).cycles(mix) / cycles(mix);
  }

  /// Best possible speedup for the mix (perfect software pipelining).
  static double idealSpeedup(const InstructionMix& mix) {
    return PipelineModel(0).cycles(mix) / PipelineModel(1).cycles(mix);
  }

 private:
  static double clamp01(double v) { return std::clamp(v, 0.0, 1.0); }
  double scheduling_;
};

/// Instruction mix of the fused D3Q19 stream/collide inner loop on one
/// cell: ~250 useful flops (the BGK update) on L0 and ~38 LDM accesses
/// (19 row loads + 19 stores, vectorized 4-wide) plus address arithmetic
/// on L1.
inline InstructionMix d3q19_cell_mix(int vectorLanes) {
  InstructionMix mix;
  mix.flops = 250;
  mix.memOps = 38.0 / vectorLanes + 10;  // vector ld/st + bookkeeping
  mix.flopsPerCycle = 2.0 * vectorLanes;  // FMA per lane
  mix.memOpsPerCycle = 1.0;
  return mix;
}

}  // namespace swlb::sw
