// Heightmap terrain support: the "terrain files from GIS software" input
// of the paper's mesh generator (§IV-B), with a synthetic generator
// standing in for proprietary GIS data.
#pragma once

#include <functional>
#include <vector>

#include "core/field.hpp"

namespace swlb::mesh {

class Heightmap {
 public:
  Heightmap() = default;
  Heightmap(int nx, int ny, Real init = 0)
      : nx_(nx), ny_(ny), h_(static_cast<std::size_t>(nx) * ny, init) {
    if (nx <= 0 || ny <= 0) throw Error("Heightmap: size must be positive");
  }

  int nx() const { return nx_; }
  int ny() const { return ny_; }
  Real& at(int x, int y) { return h_[index(x, y)]; }
  Real at(int x, int y) const { return h_[index(x, y)]; }

  Real maxHeight() const;
  Real minHeight() const;

  /// Fill from a function of (x, y) cell coordinates.
  void fill(const std::function<Real(int, int)>& fn);

  /// Paint all lattice cells with z < height(x, y) as material `id`.
  /// Heights are in lattice units (cells).
  void paint(MaskField& mask, std::uint8_t id) const;

 private:
  std::size_t index(int x, int y) const {
    SWLB_ASSERT(x >= 0 && x < nx_ && y >= 0 && y < ny_);
    return static_cast<std::size_t>(y) * nx_ + x;
  }
  int nx_ = 0, ny_ = 0;
  std::vector<Real> h_;
};

/// Smooth synthetic terrain: a deterministic sum of sinusoidal ridges
/// (substitute for GIS input), heights in [0, amplitude].
Heightmap make_rolling_terrain(int nx, int ny, Real amplitude, unsigned seed = 1);

}  // namespace swlb::mesh
