#include "mesh/stl.hpp"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <sstream>

namespace swlb::mesh {

namespace {

struct BinTriangle {
  float n[3];
  float v[3][3];
  std::uint16_t attr;
};

void writeFloat3(std::ostream& os, const Vec3& v) {
  const float f[3] = {static_cast<float>(v.x), static_cast<float>(v.y),
                      static_cast<float>(v.z)};
  os.write(reinterpret_cast<const char*>(f), sizeof(f));
}

Vec3 readFloat3(std::istream& is) {
  float f[3];
  is.read(reinterpret_cast<char*>(f), sizeof(f));
  return {f[0], f[1], f[2]};
}

TriangleMesh readBinary(std::istream& in) {
  char header[80];
  in.read(header, sizeof(header));
  std::uint32_t count = 0;
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (!in) throw Error("STL: truncated binary header");

  TriangleMesh mesh;
  for (std::uint32_t i = 0; i < count; ++i) {
    (void)readFloat3(in);  // stored normal: recomputed on demand
    Triangle t;
    t.a = readFloat3(in);
    t.b = readFloat3(in);
    t.c = readFloat3(in);
    std::uint16_t attr;
    in.read(reinterpret_cast<char*>(&attr), sizeof(attr));
    if (!in) throw Error("STL: truncated binary facet " + std::to_string(i));
    mesh.add(t);
  }
  return mesh;
}

TriangleMesh readAscii(std::istream& in) {
  TriangleMesh mesh;
  std::string tok;
  Triangle t;
  int vtx = 0;
  bool sawSolid = false;
  while (in >> tok) {
    if (tok == "solid") {
      sawSolid = true;
      std::string rest;
      std::getline(in, rest);  // skip name
    } else if (tok == "vertex") {
      Vec3 p;
      if (!(in >> p.x >> p.y >> p.z)) throw Error("STL: malformed vertex");
      if (vtx == 0)
        t.a = p;
      else if (vtx == 1)
        t.b = p;
      else
        t.c = p;
      if (++vtx == 3) {
        mesh.add(t);
        vtx = 0;
      }
    }
    // facet/normal/outer/loop/endloop/endfacet/endsolid tokens are skipped.
  }
  if (!sawSolid) throw Error("STL: not an ASCII solid");
  if (vtx != 0) throw Error("STL: dangling vertices at end of file");
  return mesh;
}

}  // namespace

TriangleMesh read_stl(std::istream& in) {
  // Auto-detect: ASCII files start with "solid" AND contain "facet"; some
  // binary files also start with "solid", so verify parseability.
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string content = buffer.str();
  if (content.size() < 6) throw Error("STL: file too short");

  if (content.rfind("solid", 0) == 0 &&
      content.find("facet") != std::string::npos) {
    std::istringstream ascii(content);
    return readAscii(ascii);
  }
  std::istringstream bin(content);
  return readBinary(bin);
}

TriangleMesh read_stl(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("STL: cannot open '" + path + "'");
  return read_stl(in);
}

void write_stl_binary(const std::string& path, const TriangleMesh& mesh,
                      const std::string& header) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw Error("STL: cannot write '" + path + "'");
  char head[80] = {};
  std::memcpy(head, header.data(), std::min<std::size_t>(header.size(), 79));
  os.write(head, sizeof(head));
  const std::uint32_t count = static_cast<std::uint32_t>(mesh.size());
  os.write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (const auto& t : mesh.triangles()) {
    writeFloat3(os, t.normal());
    writeFloat3(os, t.a);
    writeFloat3(os, t.b);
    writeFloat3(os, t.c);
    const std::uint16_t attr = 0;
    os.write(reinterpret_cast<const char*>(&attr), sizeof(attr));
  }
  if (!os) throw Error("STL: write failed for '" + path + "'");
}

void write_stl_ascii(const std::string& path, const TriangleMesh& mesh,
                     const std::string& solidName) {
  std::ofstream os(path);
  if (!os) throw Error("STL: cannot write '" + path + "'");
  os << "solid " << solidName << "\n";
  for (const auto& t : mesh.triangles()) {
    const Vec3 n = t.normal();
    os << "  facet normal " << n.x << ' ' << n.y << ' ' << n.z << "\n"
       << "    outer loop\n"
       << "      vertex " << t.a.x << ' ' << t.a.y << ' ' << t.a.z << "\n"
       << "      vertex " << t.b.x << ' ' << t.b.y << ' ' << t.b.z << "\n"
       << "      vertex " << t.c.x << ' ' << t.c.y << ' ' << t.c.z << "\n"
       << "    endloop\n"
       << "  endfacet\n";
  }
  os << "endsolid " << solidName << "\n";
  if (!os) throw Error("STL: write failed for '" + path + "'");
}

}  // namespace swlb::mesh
