// Procedural urban geometry: city blocks with streets and randomized
// building heights — the substitute for the Shanghai GIS data of the
// paper's urban wind simulation (§V-C, Fig. 19).
#pragma once

#include "mesh/terrain.hpp"

namespace swlb::mesh {

struct UrbanConfig {
  int blockCells = 12;      ///< building footprint edge (lattice cells)
  int streetCells = 6;      ///< street width between buildings
  Real minHeight = 4;       ///< lattice cells
  Real maxHeight = 20;      ///< lattice cells (paper: tallest ~80 m at 4 m/cell)
  double buildProbability = 0.85;  ///< some lots stay empty (parks/plazas)
  unsigned seed = 7;
};

/// Generate a city heightmap: a regular street grid with buildings of
/// deterministic pseudo-random heights on the lots.
Heightmap make_urban_heightmap(int nx, int ny, const UrbanConfig& cfg = {});

/// Statistics used by tests and the wind example.
struct UrbanStats {
  int buildings = 0;
  Real tallest = 0;
  double builtFraction = 0;  ///< of ground area covered by buildings
};
UrbanStats analyze_urban(const Heightmap& hm);

}  // namespace swlb::mesh
