// Geometry primitives and mesh generators (pre-processing module,
// paper §IV-B: "geometries from CAD tools with stl format, terrain files
// ... and the outline described directly inside SunwayLB").
#pragma once

#include <functional>
#include <vector>

#include "core/common.hpp"

namespace swlb::mesh {

struct Triangle {
  Vec3 a, b, c;

  Vec3 normal() const;
  double area() const;
};

struct Bounds {
  Vec3 lo{0, 0, 0};
  Vec3 hi{0, 0, 0};

  Vec3 extent() const { return hi - lo; }
  Vec3 center() const { return (lo + hi) * 0.5; }
};

class TriangleMesh {
 public:
  TriangleMesh() = default;
  explicit TriangleMesh(std::vector<Triangle> tris) : tris_(std::move(tris)) {}

  void add(const Triangle& t) { tris_.push_back(t); }
  const std::vector<Triangle>& triangles() const { return tris_; }
  std::size_t size() const { return tris_.size(); }
  bool empty() const { return tris_.empty(); }

  Bounds bounds() const;
  double surfaceArea() const;

  /// In-place affine transforms (builder style).
  TriangleMesh& translate(const Vec3& d);
  TriangleMesh& scale(Real s);
  TriangleMesh& scale(const Vec3& s);

  void append(const TriangleMesh& other);

 private:
  std::vector<Triangle> tris_;
};

// ---- generators (all produce closed, outward-oriented surfaces) --------

/// Axis-aligned box [lo, hi].
TriangleMesh make_box(const Vec3& lo, const Vec3& hi);

/// UV sphere centred at `center`.
TriangleMesh make_sphere(const Vec3& center, Real radius, int segments = 24,
                         int rings = 12);

/// Cylinder along the z axis: caps at z0 and z1.
TriangleMesh make_cylinder(const Vec3& baseCenter, Real radius, Real height,
                           int segments = 32);

/// Body of revolution around the x axis: `radius(t)` gives the radius at
/// normalized station t in [0, 1]; the body spans x in [0, length].
/// Stations with zero radius close the surface.
TriangleMesh make_revolution(Real length,
                             const std::function<Real(Real)>& radius,
                             int stations = 48, int segments = 32);

/// Radius profile (fraction of max radius) of a DARPA-Suboff-like
/// axisymmetric hull: elliptic bow, parallel midbody, tapered stern
/// (substitute for the DARPA CAD geometry, paper §V-B).
Real suboff_profile(Real t);

/// Convenience: the Suboff-like hull at a given length and max radius.
TriangleMesh make_suboff(Real length, Real maxRadius, int stations = 64,
                         int segments = 32);

}  // namespace swlb::mesh
