// STL (stereolithography) reader/writer for CAD input (paper §IV-B).
// Supports both ASCII and little-endian binary STL; the reader
// auto-detects the format.
#pragma once

#include <iosfwd>
#include <string>

#include "mesh/geometry.hpp"

namespace swlb::mesh {

/// Read an STL file (ASCII or binary, auto-detected).
/// Throws swlb::Error on missing files or malformed content.
TriangleMesh read_stl(const std::string& path);
TriangleMesh read_stl(std::istream& in);

/// Write binary STL (the compact interchange default).
void write_stl_binary(const std::string& path, const TriangleMesh& mesh,
                      const std::string& header = "swlb");
/// Write ASCII STL (human-readable).
void write_stl_ascii(const std::string& path, const TriangleMesh& mesh,
                     const std::string& solidName = "swlb");

}  // namespace swlb::mesh
