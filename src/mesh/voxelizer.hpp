// Triangle-mesh voxelizer: turns watertight surfaces into solid cell
// masks for the LBM solver (the mesh-generation feature of the paper's
// pre-processing module, §IV-B).
#pragma once

#include <vector>

#include "core/field.hpp"
#include "mesh/geometry.hpp"

namespace swlb::mesh {

/// A solid/fluid occupancy grid in lattice-cell space.
class VoxelGrid {
 public:
  VoxelGrid() = default;
  VoxelGrid(const Int3& size, const Vec3& origin, Real spacing)
      : size_(size),
        origin_(origin),
        spacing_(spacing),
        solid_(static_cast<std::size_t>(size.x) * size.y * size.z, 0) {}

  const Int3& size() const { return size_; }
  const Vec3& origin() const { return origin_; }
  Real spacing() const { return spacing_; }

  bool at(int x, int y, int z) const { return solid_[index(x, y, z)] != 0; }
  void set(int x, int y, int z, bool v) { solid_[index(x, y, z)] = v ? 1 : 0; }

  /// Number of solid cells.
  long long solidCount() const;

  /// Centre of cell (x, y, z) in world coordinates.
  Vec3 cellCenter(int x, int y, int z) const {
    return {origin_.x + (x + Real(0.5)) * spacing_,
            origin_.y + (y + Real(0.5)) * spacing_,
            origin_.z + (z + Real(0.5)) * spacing_};
  }

  /// Paint all solid cells into a solver mask with material `id`,
  /// offsetting by `at` (lattice coordinates of this grid's origin).
  void paint(MaskField& mask, std::uint8_t id, const Int3& at = {0, 0, 0}) const;

 private:
  std::size_t index(int x, int y, int z) const {
    SWLB_ASSERT(x >= 0 && x < size_.x && y >= 0 && y < size_.y && z >= 0 &&
                z < size_.z);
    return (static_cast<std::size_t>(z) * size_.y + y) * size_.x + x;
  }

  Int3 size_{0, 0, 0};
  Vec3 origin_{0, 0, 0};
  Real spacing_ = 1;
  std::vector<std::uint8_t> solid_;
};

/// Voxelize a watertight mesh by x-ray parity counting: for every (y, z)
/// cell column a ray is cast along +x and crossings with the surface
/// toggle inside/outside.
VoxelGrid voxelize(const TriangleMesh& mesh, const Int3& size,
                   const Vec3& origin, Real spacing);

/// Convenience: voxelize into a lattice box of `size` cells that tightly
/// fits the mesh bounds with `padding` empty cells on each side.
VoxelGrid voxelize_fit(const TriangleMesh& mesh, const Int3& size,
                       int padding = 1);

/// Möller-Trumbore ray/triangle intersection along +x from `orig`;
/// returns the distance t >= 0 or a negative value when there is no hit.
Real ray_x_triangle(const Vec3& orig, const Triangle& tri);

}  // namespace swlb::mesh
