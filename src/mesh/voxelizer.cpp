#include "mesh/voxelizer.hpp"

#include <algorithm>
#include <cmath>

namespace swlb::mesh {

long long VoxelGrid::solidCount() const {
  long long n = 0;
  for (auto v : solid_) n += v;
  return n;
}

void VoxelGrid::paint(MaskField& mask, std::uint8_t id, const Int3& at) const {
  const Grid& g = mask.grid();
  for (int z = 0; z < size_.z; ++z)
    for (int y = 0; y < size_.y; ++y)
      for (int x = 0; x < size_.x; ++x) {
        if (!this->at(x, y, z)) continue;
        const int gx = at.x + x, gy = at.y + y, gz = at.z + z;
        if (gx < 0 || gx >= g.nx || gy < 0 || gy >= g.ny || gz < 0 || gz >= g.nz)
          continue;
        mask(gx, gy, gz) = id;
      }
}

Real ray_x_triangle(const Vec3& orig, const Triangle& tri) {
  // Möller-Trumbore specialized for direction (1, 0, 0).
  const Vec3 e1 = tri.b - tri.a;
  const Vec3 e2 = tri.c - tri.a;
  // pvec = dir x e2 = (0, -e2.z, e2.y)
  const Real det = e1.z * e2.y - e1.y * e2.z;  // e1 . pvec
  if (std::abs(det) < Real(1e-12)) return -1;
  const Real invDet = Real(1) / det;
  const Vec3 tvec = orig - tri.a;
  const Real u = (tvec.z * e2.y - tvec.y * e2.z) * invDet;  // tvec . pvec
  if (u < 0 || u > 1) return -1;
  // qvec = tvec x e1
  const Vec3 qvec{tvec.y * e1.z - tvec.z * e1.y, tvec.z * e1.x - tvec.x * e1.z,
                  tvec.x * e1.y - tvec.y * e1.x};
  const Real v = qvec.x * invDet;  // dir . qvec = qvec.x
  if (v < 0 || u + v > 1) return -1;
  const Real t = (e2.x * qvec.x + e2.y * qvec.y + e2.z * qvec.z) * invDet;
  return t;
}

VoxelGrid voxelize(const TriangleMesh& mesh, const Int3& size, const Vec3& origin,
                   Real spacing) {
  if (size.x <= 0 || size.y <= 0 || size.z <= 0)
    throw Error("voxelize: grid size must be positive");
  if (spacing <= 0) throw Error("voxelize: spacing must be positive");

  VoxelGrid grid(size, origin, spacing);
  // Tiny deterministic jitter keeps rays off vertices/edges, where parity
  // counting would double-count crossings.
  const Real jy = spacing * Real(1.0e-4);
  const Real jz = spacing * Real(2.3e-4);

  std::vector<Real> hits;
  for (int z = 0; z < size.z; ++z)
    for (int y = 0; y < size.y; ++y) {
      const Vec3 ray{origin.x - spacing,
                     origin.y + (y + Real(0.5)) * spacing + jy,
                     origin.z + (z + Real(0.5)) * spacing + jz};
      hits.clear();
      for (const auto& tri : mesh.triangles()) {
        const Real t = ray_x_triangle(ray, tri);
        if (t >= 0) hits.push_back(t);
      }
      if (hits.size() < 2) continue;
      std::sort(hits.begin(), hits.end());
      // Walk the column: a cell is solid when its centre lies between an
      // odd and the following even crossing.
      std::size_t k = 0;
      bool inside = false;
      for (int x = 0; x < size.x; ++x) {
        const Real tx = (x + Real(0.5)) * spacing + spacing;  // ray starts 1 cell early
        while (k < hits.size() && hits[k] <= tx) {
          inside = !inside;
          ++k;
        }
        if (inside) grid.set(x, y, z, true);
      }
    }
  return grid;
}

VoxelGrid voxelize_fit(const TriangleMesh& mesh, const Int3& size, int padding) {
  if (mesh.empty()) throw Error("voxelize_fit: empty mesh");
  const Bounds b = mesh.bounds();
  const Vec3 ext = b.extent();
  const Real spacing =
      std::max({ext.x / (size.x - 2 * padding), ext.y / (size.y - 2 * padding),
                ext.z / (size.z - 2 * padding)});
  if (spacing <= 0) throw Error("voxelize_fit: grid too small for padding");
  const Vec3 center = b.center();
  const Vec3 origin{center.x - size.x * spacing / 2,
                    center.y - size.y * spacing / 2,
                    center.z - size.z * spacing / 2};
  return voxelize(mesh, size, origin, spacing);
}

}  // namespace swlb::mesh
