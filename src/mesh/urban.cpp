#include "mesh/urban.hpp"

namespace swlb::mesh {

Heightmap make_urban_heightmap(int nx, int ny, const UrbanConfig& cfg) {
  if (cfg.blockCells <= 0 || cfg.streetCells < 0)
    throw Error("make_urban_heightmap: invalid block/street sizes");
  Heightmap hm(nx, ny, 0);

  auto lcg = [state = cfg.seed]() mutable {
    state = state * 1664525u + 1013904223u;
    return static_cast<double>(state) / 4294967296.0;
  };

  const int pitch = cfg.blockCells + cfg.streetCells;
  for (int by = 0; by * pitch < ny; ++by) {
    for (int bx = 0; bx * pitch < nx; ++bx) {
      const double r = lcg();
      const double hr = lcg();
      if (r > cfg.buildProbability) continue;  // empty lot
      const Real h =
          cfg.minHeight + static_cast<Real>(hr) * (cfg.maxHeight - cfg.minHeight);
      const int x0 = bx * pitch + cfg.streetCells / 2;
      const int y0 = by * pitch + cfg.streetCells / 2;
      for (int y = y0; y < std::min(ny, y0 + cfg.blockCells); ++y)
        for (int x = x0; x < std::min(nx, x0 + cfg.blockCells); ++x)
          hm.at(x, y) = h;
    }
  }
  return hm;
}

UrbanStats analyze_urban(const Heightmap& hm) {
  UrbanStats s;
  long long built = 0;
  // Count connected lots loosely: a building is a local plateau start
  // (cheap heuristic: cell is built and left/bottom neighbours differ).
  for (int y = 0; y < hm.ny(); ++y)
    for (int x = 0; x < hm.nx(); ++x) {
      const Real h = hm.at(x, y);
      if (h <= 0) continue;
      ++built;
      s.tallest = std::max(s.tallest, h);
      const bool newX = x == 0 || hm.at(x - 1, y) != h;
      const bool newY = y == 0 || hm.at(x, y - 1) != h;
      if (newX && newY) ++s.buildings;
    }
  s.builtFraction =
      static_cast<double>(built) / (static_cast<double>(hm.nx()) * hm.ny());
  return s;
}

}  // namespace swlb::mesh
