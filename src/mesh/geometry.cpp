#include "mesh/geometry.hpp"

#include <cmath>
#include <functional>
#include <numbers>

namespace swlb::mesh {

namespace {
Vec3 cross(const Vec3& a, const Vec3& b) {
  return {a.y * b.z - a.z * b.y, a.z * b.x - a.x * b.z, a.x * b.y - a.y * b.x};
}
}  // namespace

Vec3 Triangle::normal() const {
  const Vec3 n = cross(b - a, c - a);
  const Real len = std::sqrt(n.norm2());
  if (len == 0) return {0, 0, 0};
  return n * (Real(1) / len);
}

double Triangle::area() const {
  const Vec3 n = cross(b - a, c - a);
  return 0.5 * std::sqrt(n.norm2());
}

Bounds TriangleMesh::bounds() const {
  Bounds b;
  if (tris_.empty()) return b;
  b.lo = b.hi = tris_.front().a;
  auto extend = [&](const Vec3& p) {
    b.lo = {std::min(b.lo.x, p.x), std::min(b.lo.y, p.y), std::min(b.lo.z, p.z)};
    b.hi = {std::max(b.hi.x, p.x), std::max(b.hi.y, p.y), std::max(b.hi.z, p.z)};
  };
  for (const auto& t : tris_) {
    extend(t.a);
    extend(t.b);
    extend(t.c);
  }
  return b;
}

double TriangleMesh::surfaceArea() const {
  double s = 0;
  for (const auto& t : tris_) s += t.area();
  return s;
}

TriangleMesh& TriangleMesh::translate(const Vec3& d) {
  for (auto& t : tris_) {
    t.a = t.a + d;
    t.b = t.b + d;
    t.c = t.c + d;
  }
  return *this;
}

TriangleMesh& TriangleMesh::scale(Real s) { return scale(Vec3{s, s, s}); }

TriangleMesh& TriangleMesh::scale(const Vec3& s) {
  auto mul = [&](Vec3& p) {
    p.x *= s.x;
    p.y *= s.y;
    p.z *= s.z;
  };
  for (auto& t : tris_) {
    mul(t.a);
    mul(t.b);
    mul(t.c);
  }
  return *this;
}

void TriangleMesh::append(const TriangleMesh& other) {
  tris_.insert(tris_.end(), other.tris_.begin(), other.tris_.end());
}

TriangleMesh make_box(const Vec3& lo, const Vec3& hi) {
  const Vec3 v[8] = {
      {lo.x, lo.y, lo.z}, {hi.x, lo.y, lo.z}, {hi.x, hi.y, lo.z}, {lo.x, hi.y, lo.z},
      {lo.x, lo.y, hi.z}, {hi.x, lo.y, hi.z}, {hi.x, hi.y, hi.z}, {lo.x, hi.y, hi.z},
  };
  // Faces as quads split into two triangles each, outward oriented.
  const int faces[6][4] = {
      {0, 3, 2, 1},  // -z
      {4, 5, 6, 7},  // +z
      {0, 1, 5, 4},  // -y
      {2, 3, 7, 6},  // +y
      {0, 4, 7, 3},  // -x
      {1, 2, 6, 5},  // +x
  };
  TriangleMesh m;
  for (const auto& f : faces) {
    m.add({v[f[0]], v[f[1]], v[f[2]]});
    m.add({v[f[0]], v[f[2]], v[f[3]]});
  }
  return m;
}

TriangleMesh make_sphere(const Vec3& c, Real r, int segments, int rings) {
  TriangleMesh m;
  const Real pi = std::numbers::pi_v<Real>;
  auto point = [&](int i, int j) -> Vec3 {
    const Real theta = pi * j / rings;              // 0..pi
    const Real phi = 2 * pi * i / segments;         // 0..2pi
    return {c.x + r * std::sin(theta) * std::cos(phi),
            c.y + r * std::sin(theta) * std::sin(phi), c.z + r * std::cos(theta)};
  };
  for (int j = 0; j < rings; ++j)
    for (int i = 0; i < segments; ++i) {
      const Vec3 p00 = point(i, j), p10 = point(i + 1, j);
      const Vec3 p01 = point(i, j + 1), p11 = point(i + 1, j + 1);
      if (j > 0) m.add({p00, p11, p10});
      if (j < rings - 1) m.add({p00, p01, p11});
    }
  return m;
}

TriangleMesh make_cylinder(const Vec3& base, Real r, Real h, int segments) {
  TriangleMesh m;
  const Real pi = std::numbers::pi_v<Real>;
  const Vec3 top{base.x, base.y, base.z + h};
  auto rim = [&](int i, Real z) -> Vec3 {
    const Real phi = 2 * pi * i / segments;
    return {base.x + r * std::cos(phi), base.y + r * std::sin(phi), z};
  };
  for (int i = 0; i < segments; ++i) {
    const Vec3 b0 = rim(i, base.z), b1 = rim(i + 1, base.z);
    const Vec3 t0 = rim(i, top.z), t1 = rim(i + 1, top.z);
    // Side (outward).
    m.add({b0, b1, t1});
    m.add({b0, t1, t0});
    // Caps.
    m.add({base, b1, b0});
    m.add({top, t0, t1});
  }
  return m;
}

TriangleMesh make_revolution(Real length, const std::function<Real(Real)>& radius,
                             int stations, int segments) {
  if (stations < 2 || segments < 3)
    throw Error("make_revolution: need >= 2 stations and >= 3 segments");
  TriangleMesh m;
  const Real pi = std::numbers::pi_v<Real>;
  auto point = [&](int s, int i) -> Vec3 {
    const Real t = static_cast<Real>(s) / stations;
    const Real r = std::max<Real>(0, radius(t));
    const Real phi = 2 * pi * i / segments;
    return {t * length, r * std::cos(phi), r * std::sin(phi)};
  };
  for (int s = 0; s < stations; ++s)
    for (int i = 0; i < segments; ++i) {
      const Vec3 p00 = point(s, i), p10 = point(s, i + 1);
      const Vec3 p01 = point(s + 1, i), p11 = point(s + 1, i + 1);
      // Degenerate quads at closed tips collapse naturally.
      m.add({p00, p01, p11});
      m.add({p00, p11, p10});
    }
  // Close open ends (radius > 0 at t=0 or t=1) with fans.
  if (radius(0) > 0) {
    const Vec3 c{0, 0, 0};
    for (int i = 0; i < segments; ++i) m.add({c, point(0, i), point(0, i + 1)});
  }
  if (radius(1) > 0) {
    const Vec3 c{length, 0, 0};
    for (int i = 0; i < segments; ++i)
      m.add({c, point(stations, i + 1), point(stations, i)});
  }
  return m;
}

Real suboff_profile(Real t) {
  // Axisymmetric hull resembling the DARPA Suboff bare hull: elliptic bow
  // over the first ~23% of the length, parallel midbody, smoothly tapered
  // stern over the last ~29%.
  t = std::clamp<Real>(t, 0, 1);
  constexpr Real bowEnd = 0.233;
  constexpr Real sternStart = 0.71;
  if (t < bowEnd) {
    const Real s = t / bowEnd;                 // 0..1 along the bow
    return std::sqrt(std::max<Real>(0, 1 - (1 - s) * (1 - s)));
  }
  if (t < sternStart) return 1.0;
  const Real s = (t - sternStart) / (1 - sternStart);  // 0..1 along the stern
  // Cubic taper to a small tail radius, C1 at the midbody joint.
  const Real r = 1 - s * s * (3 - 2 * s) * Real(0.96);
  return std::max<Real>(r, 0);
}

TriangleMesh make_suboff(Real length, Real maxRadius, int stations, int segments) {
  return make_revolution(
      length, [maxRadius](Real t) { return maxRadius * suboff_profile(t); },
      stations, segments);
}

}  // namespace swlb::mesh
