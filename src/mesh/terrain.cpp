#include "mesh/terrain.hpp"

#include <cmath>
#include <numbers>

namespace swlb::mesh {

Real Heightmap::maxHeight() const {
  Real m = h_.empty() ? 0 : h_[0];
  for (Real v : h_) m = std::max(m, v);
  return m;
}

Real Heightmap::minHeight() const {
  Real m = h_.empty() ? 0 : h_[0];
  for (Real v : h_) m = std::min(m, v);
  return m;
}

void Heightmap::fill(const std::function<Real(int, int)>& fn) {
  for (int y = 0; y < ny_; ++y)
    for (int x = 0; x < nx_; ++x) at(x, y) = fn(x, y);
}

void Heightmap::paint(MaskField& mask, std::uint8_t id) const {
  const Grid& g = mask.grid();
  const int nx = std::min(nx_, g.nx);
  const int ny = std::min(ny_, g.ny);
  for (int y = 0; y < ny; ++y)
    for (int x = 0; x < nx; ++x) {
      const int top = std::min(g.nz, static_cast<int>(std::floor(at(x, y))));
      for (int z = 0; z < top; ++z) mask(x, y, z) = id;
    }
}

Heightmap make_rolling_terrain(int nx, int ny, Real amplitude, unsigned seed) {
  Heightmap hm(nx, ny);
  const Real pi = std::numbers::pi_v<Real>;
  // Deterministic pseudo-random phases from a small LCG.
  auto lcg = [state = seed]() mutable {
    state = state * 1664525u + 1013904223u;
    return static_cast<Real>(state) / Real(4294967296.0);
  };
  struct Ridge {
    Real kx, ky, phase, weight;
  };
  std::vector<Ridge> ridges;
  for (int i = 0; i < 6; ++i) {
    ridges.push_back({(1 + 3 * lcg()) * 2 * pi / nx, (1 + 3 * lcg()) * 2 * pi / ny,
                      2 * pi * lcg(), Real(1) / (i + 1)});
  }
  Real wsum = 0;
  for (const auto& r : ridges) wsum += r.weight;
  hm.fill([&](int x, int y) {
    Real v = 0;
    for (const auto& r : ridges)
      v += r.weight * (Real(0.5) + Real(0.5) * std::sin(r.kx * x + r.ky * y + r.phase));
    return amplitude * v / wsum;
  });
  return hm;
}

}  // namespace swlb::mesh
