// Topology-aware rank ordering for collectives (paper Fig. 2(b)).
//
// The interconnect is a supernode crossbar bridged by a fat tree: links
// inside a supernode are roughly twice the bandwidth and half the latency
// of links that cross it (perf::NetworkModel).  A ring collective visits
// every rank exactly once per step, so the fraction of ring edges that
// cross supernodes is pure overhead the rank *ordering* controls: placing
// the ranks of each supernode contiguously on the ring leaves exactly one
// crossing edge per supernode instead of O(P) of them.
//
// A Topology is a permutation: `order[v]` is the physical rank sitting at
// virtual position v.  Collective algorithms run their ring/tree
// arithmetic on virtual positions and translate to physical ranks only
// when addressing messages, so any permutation preserves correctness and
// determinism (the fold order is fixed by the virtual positions).
#pragma once

#include <map>
#include <vector>

#include "core/common.hpp"
#include "perf/network.hpp"

namespace swlb::coll {

struct Topology {
  std::vector<int> order;  ///< virtual position -> physical rank
  std::vector<int> pos;    ///< physical rank -> virtual position

  int size() const { return static_cast<int>(order.size()); }

  static Topology identity(int ranks) {
    Topology t;
    t.order.resize(static_cast<std::size_t>(ranks));
    t.pos.resize(static_cast<std::size_t>(ranks));
    for (int r = 0; r < ranks; ++r) {
      t.order[static_cast<std::size_t>(r)] = r;
      t.pos[static_cast<std::size_t>(r)] = r;
    }
    return t;
  }

  /// Group ranks by node id (stable within a node, nodes in ascending id
  /// order), so ring neighbours share a node wherever possible.
  static Topology fromMapping(const std::vector<int>& nodeOf) {
    std::map<int, std::vector<int>> groups;
    for (int r = 0; r < static_cast<int>(nodeOf.size()); ++r)
      groups[nodeOf[static_cast<std::size_t>(r)]].push_back(r);
    Topology t;
    t.pos.resize(nodeOf.size());
    for (const auto& [node, ranks] : groups)
      for (int r : ranks) {
        t.pos[static_cast<std::size_t>(r)] = static_cast<int>(t.order.size());
        t.order.push_back(r);
      }
    return t;
  }

  /// Block mapping implied by the network model: consecutive ranks fill a
  /// supernode before spilling into the next one.
  static Topology fromNetworkModel(const perf::NetworkModel& m, int ranks) {
    std::vector<int> nodeOf(static_cast<std::size_t>(ranks));
    const int per = m.ranksPerSupernode() > 0 ? m.ranksPerSupernode() : ranks;
    for (int r = 0; r < ranks; ++r)
      nodeOf[static_cast<std::size_t>(r)] = r / per;
    return fromMapping(nodeOf);
  }

  /// Number of ring edges (successor edges including the wrap-around) whose
  /// endpoints live on different nodes — the fat-tree hops a ring pays.
  int ringCrossings(const std::vector<int>& nodeOf) const {
    const int P = size();
    if (P < 2) return 0;
    int crossings = 0;
    for (int v = 0; v < P; ++v) {
      const int a = order[static_cast<std::size_t>(v)];
      const int b = order[static_cast<std::size_t>((v + 1) % P)];
      if (nodeOf[static_cast<std::size_t>(a)] != nodeOf[static_cast<std::size_t>(b)])
        ++crossings;
    }
    return crossings;
  }
};

}  // namespace swlb::coll
