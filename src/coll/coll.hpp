// swlb::coll — scalable collective communication (DESIGN.md §7).
//
// The paper's 160,000-rank campaigns cannot afford centralized O(P)
// collectives: this subsystem provides typed vector collectives layered
// purely on Comm's point-to-point primitives, so every collective
// automatically inherits the runtime's fault injection, receive timeouts,
// optional checksums and obs metering.  Per heavy collective at least two
// algorithms are available — log-depth binomial trees for small payloads,
// bandwidth-optimal ring reduce-scatter/allgather for large — behind a
// size-threshold selection policy (CollConfig), all correct for any rank
// count including non-powers of two.
//
// Determinism contract (required by the resilience layer's bit-identical
// recovery): for a fixed (CollConfig, world size, payload length, root),
// every algorithm reduces in a fixed operand order — binomial trees fold
// sub-ranges with the lower virtual-rank range as the left operand, rings
// fold each chunk linearly around the ring from its owner slot — and the
// selection policy is a pure function of (payload bytes, rank count,
// thresholds).  Repeated runs are therefore bit-identical, and every rank
// of an allreduce holds byte-identical results (the reduced value is
// computed once per chunk and distributed, never re-reduced per rank).
//
// Concurrency: each collective call consumes one sequence number from the
// owning Comm (collectives are globally ordered per communicator, so the
// counter agrees across ranks) and derives its message tags from it, so a
// fast rank entering the next collective can never have its traffic
// matched by a peer still inside the previous one, and stale messages
// from a faulted, abandoned collective are identifiable by their stale
// sequence (Comm::drainMailbox discards exactly those).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "coll/topology.hpp"
#include "runtime/comm.hpp"

namespace swlb::coll {

enum class Op { Sum, Min, Max };

enum class Algo {
  Auto,   ///< size-threshold policy (ring for large payloads, tree below)
  Naive,  ///< centralized / flat — the seed-era shape, kept as baseline
  Tree,   ///< binomial tree / log-depth rounds
  Ring,   ///< ring reduce-scatter + allgather (bandwidth-optimal)
};

/// Per-communicator collective configuration.  The defaults are correct
/// for any rank count; the auto-tuner (src/tune/) writes the modeled
/// ring/tree crossover into `ringThresholdBytes` via
/// `tune::apply(plan, cfg)` (DESIGN.md §9).
struct CollConfig {
  /// Ring/tree switch point under Algo::Auto, in *payload bytes*
  /// (element count × element size, before any checksum framing).
  /// Payloads of at least this many bytes select Ring (allreduce /
  /// allgather / reduce_scatter; gather switches Tree->Naive flat at the
  /// same point, trading message count for pipelining); smaller payloads
  /// take the latency-bound Tree.  Valid range: >= 1; 0 would make every
  /// collective a ring.  Default 64 KiB — a generic latency-vs-bandwidth
  /// break-even; `tune::Tuner::ringCrossoverBytes` replaces it with the
  /// exact crossover of NetworkModel::collectiveSeconds for the machine
  /// and rank count.  Never affects results, only message schedules.
  std::size_t ringThresholdBytes = 64 * 1024;
  Algo allreduce = Algo::Auto;
  Algo reduce = Algo::Auto;
  Algo broadcast = Algo::Auto;
  Algo gather = Algo::Auto;
  Algo allgather = Algo::Auto;
  Algo reduceScatter = Algo::Auto;
  /// Frame every payload with an FNV-1a checksum (Comm::sendChecksummed):
  /// in-transit corruption surfaces as CorruptionError instead of a wrong
  /// answer.  Costs 8 bytes per message.
  bool checksummed = false;
  /// When set, ring/tree neighbours are ordered so consecutive ring slots
  /// share a supernode (Topology::fromNetworkModel).  Never affects
  /// results — only which physical rank sits at which virtual position.
  const perf::NetworkModel* topology = nullptr;
};

/// Collective operations over one communicator.  Cheap to construct (one
/// permutation); all state lives in the Comm (the shared tag sequence) so
/// any number of instances may be interleaved safely as long as every
/// rank executes the same collectives in the same order.
class Collectives {
 public:
  explicit Collectives(runtime::Comm& comm, const CollConfig& cfg = {});

  int size() const { return size_; }
  int rank() const { return rank_; }
  const Topology& topology() const { return topo_; }

  /// Tree (dissemination) barrier: ceil(log2 P) zero-byte message rounds;
  /// no rank exits before every rank has entered.
  void barrier();

  /// Element-wise in-place reduction of `data` across all ranks; every
  /// rank ends with byte-identical results.
  template <typename T>
  void allreduce(std::span<T> data, Op op);

  /// Reduction into `data` on `root` (other ranks' buffers are scratch;
  /// their final contents are unspecified).
  template <typename T>
  void reduce(int root, std::span<T> data, Op op);

  template <typename T>
  void broadcast(int root, std::span<T> data);

  /// Fixed-size gather: every rank contributes `local`; on `root`, `out`
  /// (size() * local.size() elements) receives the blocks in physical
  /// rank order.  Non-root ranks may pass an empty `out`.
  template <typename T>
  void gather(int root, std::span<const T> local, std::span<T> out);

  /// Variable-size gather.  `counts` (root only; may be empty elsewhere)
  /// holds every rank's element count in rank order; `out` on root must
  /// hold their sum.  Flat algorithm: all receives posted up front, so no
  /// head-of-line blocking on slow sources.
  template <typename T>
  void gatherv(int root, std::span<const T> local,
               std::span<const std::size_t> counts, std::span<T> out);

  /// Allgather: `out` (size() * local.size()) receives every rank's block
  /// in physical rank order, on every rank.
  template <typename T>
  void allgather(std::span<const T> local, std::span<T> out);

  /// Reduce-scatter: `in` is the full vector (identical layout on every
  /// rank, chunked by chunkRange); `out` (chunk size of this rank)
  /// receives this rank's fully reduced chunk.
  template <typename T>
  void reduce_scatter(std::span<const T> in, std::span<T> out, Op op);

  // ---- scalar conveniences -------------------------------------------
  template <typename T>
  T allreduce_value(T v, Op op) {
    allreduce(std::span<T>(&v, 1), op);
    return v;
  }

  /// Balanced chunk partition used by ring algorithms and reduce_scatter:
  /// element range [first, last) of chunk `idx` when `n` elements split
  /// across `parts` (the first n % parts chunks get one extra element).
  static std::pair<std::size_t, std::size_t> chunkRange(std::size_t n,
                                                        int parts, int idx);

  /// The algorithm the size-threshold policy resolves `cfgAlgo` to for a
  /// `payloadBytes`-byte heavy collective (exposed for tests/benches).
  Algo resolve(Algo cfgAlgo, std::size_t payloadBytes) const;

  /// Observability names of one collective kind: a trace phase plus sent
  /// byte/message counters (payload bytes, before any checksum framing).
  /// Aggregates coll.bytes_sent / coll.messages_sent are counted too.
  struct Meter {
    const char* phase;
    const char* bytesSent;
    const char* messagesSent;
  };

 private:

  int vrank() const { return topo_.pos[static_cast<std::size_t>(rank_)]; }
  int rankAt(int v) const { return topo_.order[static_cast<std::size_t>(v)]; }

  void sendBytes(int dst, int tag, const void* data, std::size_t bytes,
                 const Meter& m);
  void recvBytes(int src, int tag, void* data, std::size_t bytes,
                 const Meter& m);

  template <typename T>
  void reduceTree(int root, std::span<T> data, Op op, int tag, const Meter& m);
  template <typename T>
  void reduceNaive(int root, std::span<T> data, Op op, int tag, const Meter& m);
  template <typename T>
  void broadcastTree(int root, std::span<T> data, int tag, const Meter& m);
  template <typename T>
  void broadcastNaive(int root, std::span<T> data, int tag, const Meter& m);
  template <typename T>
  void allreduceRing(std::span<T> data, Op op, int tag, const Meter& m);
  template <typename T>
  void gatherTree(int root, std::span<const T> local, std::span<T> out,
                  int tag, const Meter& m);
  template <typename T>
  void gatherNaive(int root, std::span<const T> local, std::span<T> out,
                   int tag, const Meter& m);
  template <typename T>
  void allgatherRing(std::span<const T> local, std::span<T> out, int tag,
                     const Meter& m);
  template <typename T>
  void reduceScatterRing(std::span<const T> in, std::span<T> out, Op op,
                         int tag, const Meter& m);

  runtime::Comm& comm_;
  CollConfig cfg_;
  Topology topo_;
  int size_;
  int rank_;
};

}  // namespace swlb::coll
