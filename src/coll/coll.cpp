// swlb::coll implementation — see coll.hpp for the contracts.
//
// All algorithms run in *virtual* rank space (topo_.pos/order) and
// translate to physical ranks only when addressing messages, so a
// topology permutation never changes the operand order of a reduction.
// Rooted trees use MPICH-style relative ranks (rel = (v - vroot) mod P),
// which makes every binomial pattern correct for any P, not just powers
// of two.  The deterministic bracket: the lower relative-rank sub-range
// is always the LEFT operand of the combine.

#include "coll/coll.hpp"

#include <algorithm>
#include <cstring>

#include "obs/context.hpp"

namespace swlb::coll {

namespace {

constexpr Collectives::Meter kBarrierMeter{
    "coll.barrier", "coll.barrier.bytes_sent", "coll.barrier.messages_sent"};
constexpr Collectives::Meter kAllreduceMeter{
    "coll.allreduce", "coll.allreduce.bytes_sent",
    "coll.allreduce.messages_sent"};
constexpr Collectives::Meter kReduceMeter{
    "coll.reduce", "coll.reduce.bytes_sent", "coll.reduce.messages_sent"};
constexpr Collectives::Meter kBroadcastMeter{
    "coll.broadcast", "coll.broadcast.bytes_sent",
    "coll.broadcast.messages_sent"};
constexpr Collectives::Meter kGatherMeter{
    "coll.gather", "coll.gather.bytes_sent", "coll.gather.messages_sent"};
constexpr Collectives::Meter kGathervMeter{
    "coll.gatherv", "coll.gatherv.bytes_sent", "coll.gatherv.messages_sent"};
constexpr Collectives::Meter kAllgatherMeter{
    "coll.allgather", "coll.allgather.bytes_sent",
    "coll.allgather.messages_sent"};
constexpr Collectives::Meter kReduceScatterMeter{
    "coll.reduce_scatter", "coll.reduce_scatter.bytes_sent",
    "coll.reduce_scatter.messages_sent"};

/// Deterministic combine: `a` is the earlier (lower virtual rank range)
/// operand.  For Sum the operand order fixes the floating-point result.
template <typename T>
T applyOp(T a, T b, Op op) {
  switch (op) {
    case Op::Sum:
      return a + b;
    case Op::Min:
      return a < b ? a : b;
    case Op::Max:
      return b < a ? a : b;
  }
  return a;
}

}  // namespace

Collectives::Collectives(runtime::Comm& comm, const CollConfig& cfg)
    : comm_(comm),
      cfg_(cfg),
      topo_(cfg.topology
                ? Topology::fromNetworkModel(*cfg.topology, comm.size())
                : Topology::identity(comm.size())),
      size_(comm.size()),
      rank_(comm.rank()) {}

std::pair<std::size_t, std::size_t> Collectives::chunkRange(std::size_t n,
                                                            int parts,
                                                            int idx) {
  const std::size_t p = static_cast<std::size_t>(parts);
  const std::size_t i = static_cast<std::size_t>(idx);
  const std::size_t base = n / p;
  const std::size_t extra = n % p;
  const std::size_t lo = i * base + std::min(i, extra);
  return {lo, lo + base + (i < extra ? 1 : 0)};
}

Algo Collectives::resolve(Algo cfgAlgo, std::size_t payloadBytes) const {
  if (cfgAlgo != Algo::Auto) return cfgAlgo;
  return payloadBytes >= cfg_.ringThresholdBytes ? Algo::Ring : Algo::Tree;
}

void Collectives::sendBytes(int dst, int tag, const void* data,
                            std::size_t bytes, const Meter& m) {
  if (cfg_.checksummed)
    comm_.sendChecksummed(dst, tag, data, bytes);
  else
    comm_.send(dst, tag, data, bytes);
  obs::count("coll.messages_sent");
  obs::count("coll.bytes_sent", bytes);
  obs::count(m.messagesSent);
  obs::count(m.bytesSent, bytes);
}

void Collectives::recvBytes(int src, int tag, void* data, std::size_t bytes,
                            const Meter& m) {
  (void)m;
  if (cfg_.checksummed)
    comm_.recvChecksummed(src, tag, data, bytes);
  else
    comm_.recv(src, tag, data, bytes);
}

void Collectives::barrier() {
  obs::TraceScope scope(kBarrierMeter.phase);
  const int tag = runtime::colltag::encode(comm_.nextCollSequence());
  if (size_ <= 1) return;
  // Dissemination barrier: in round k each slot signals (v + k) mod P and
  // waits on (v - k) mod P; after ceil(log2 P) rounds every rank has a
  // (transitive) signal from every other, for any P.
  std::uint8_t token = 0;
  const int v = vrank();
  for (int k = 1; k < size_; k <<= 1) {
    sendBytes(rankAt((v + k) % size_), tag, &token, 0, kBarrierMeter);
    recvBytes(rankAt((v - k + size_) % size_), tag, &token, 0, kBarrierMeter);
  }
}

// ---- rooted binomial trees (relative virtual ranks) ----------------------

template <typename T>
void Collectives::reduceTree(int root, std::span<T> data, Op op, int tag,
                             const Meter& m) {
  const int P = size_;
  const int vroot = topo_.pos[static_cast<std::size_t>(root)];
  const int rel = (vrank() - vroot + P) % P;
  auto physOfRel = [&](int rr) { return rankAt((rr + vroot) % P); };
  std::vector<T> tmp(data.size());
  for (int mask = 1; mask < P; mask <<= 1) {
    if (rel & mask) {
      // Contributed every sub-range below `mask`; hand the partial up.
      sendBytes(physOfRel(rel - mask), tag, data.data(), data.size_bytes(), m);
      return;
    }
    const int src = rel + mask;
    if (src < P) {
      recvBytes(physOfRel(src), tag, tmp.data(), data.size_bytes(), m);
      for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = applyOp(data[i], tmp[i], op);  // lower range on the left
    }
  }
}

template <typename T>
void Collectives::broadcastTree(int root, std::span<T> data, int tag,
                                const Meter& m) {
  const int P = size_;
  const int vroot = topo_.pos[static_cast<std::size_t>(root)];
  const int rel = (vrank() - vroot + P) % P;
  auto physOfRel = [&](int rr) { return rankAt((rr + vroot) % P); };
  int mask = 1;
  while (mask < P) {
    if (rel & mask) {
      recvBytes(physOfRel(rel - mask), tag, data.data(), data.size_bytes(), m);
      break;
    }
    mask <<= 1;
  }
  for (mask >>= 1; mask > 0; mask >>= 1)
    if (rel + mask < P)
      sendBytes(physOfRel(rel + mask), tag, data.data(), data.size_bytes(), m);
}

template <typename T>
void Collectives::reduceNaive(int root, std::span<T> data, Op op, int tag,
                              const Meter& m) {
  const std::size_t n = data.size();
  if (rank_ != root) {
    sendBytes(root, tag, data.data(), data.size_bytes(), m);
    return;
  }
  std::vector<T> blocks(static_cast<std::size_t>(size_) * n);
  std::vector<runtime::Request> reqs;
  for (int src = 0; src < size_; ++src) {
    if (src == root) continue;
    T* dst = blocks.data() + static_cast<std::size_t>(src) * n;
    if (cfg_.checksummed)
      comm_.recvChecksummed(src, tag, dst, n * sizeof(T));
    else
      reqs.push_back(comm_.irecv(src, tag, dst, n * sizeof(T)));
  }
  for (auto& r : reqs) r.wait();
  // Canonical left fold in physical rank order (the serial reference).
  auto block = [&](int r) -> const T* {
    return r == root ? data.data()
                     : blocks.data() + static_cast<std::size_t>(r) * n;
  };
  std::vector<T> acc(block(0), block(0) + n);
  for (int r = 1; r < size_; ++r)
    for (std::size_t i = 0; i < n; ++i)
      acc[i] = applyOp(acc[i], block(r)[i], op);
  std::copy(acc.begin(), acc.end(), data.begin());
}

template <typename T>
void Collectives::broadcastNaive(int root, std::span<T> data, int tag,
                                 const Meter& m) {
  if (rank_ == root) {
    for (int dst = 0; dst < size_; ++dst)
      if (dst != root)
        sendBytes(dst, tag, data.data(), data.size_bytes(), m);
  } else {
    recvBytes(root, tag, data.data(), data.size_bytes(), m);
  }
}

// ---- ring (bandwidth-optimal) --------------------------------------------

template <typename T>
void Collectives::allreduceRing(std::span<T> data, Op op, int tag,
                                const Meter& m) {
  const int P = size_;
  const std::size_t n = data.size();
  const int v = vrank();
  const int right = rankAt((v + 1) % P);
  const int left = rankAt((v - 1 + P) % P);
  const std::size_t maxChunk = n / static_cast<std::size_t>(P) + 1;
  std::vector<T> tmp(maxChunk);
  // Reduce-scatter: in step s, slot v forwards chunk (v - s) mod P and
  // folds the incoming partial of chunk (v - s - 1) mod P.  Each chunk
  // thus travels the ring once, folding linearly from its owner slot —
  // a fixed operand order (traveling accumulator on the left).
  for (int s = 0; s < P - 1; ++s) {
    const int sc = (v - s + P) % P;
    const int rc = (v - s - 1 + P) % P;
    const auto [sLo, sHi] = chunkRange(n, P, sc);
    const auto [rLo, rHi] = chunkRange(n, P, rc);
    sendBytes(right, tag, data.data() + sLo, (sHi - sLo) * sizeof(T), m);
    recvBytes(left, tag, tmp.data(), (rHi - rLo) * sizeof(T), m);
    for (std::size_t i = 0; i < rHi - rLo; ++i)
      data[rLo + i] = applyOp(tmp[i], data[rLo + i], op);
  }
  // Allgather: slot v now holds the final chunk (v + 1) mod P; circulate
  // the finished chunks the rest of the way around.
  for (int s = 0; s < P - 1; ++s) {
    const int sc = (v + 1 - s + P) % P;
    const int rc = (v - s + P) % P;
    const auto [sLo, sHi] = chunkRange(n, P, sc);
    const auto [rLo, rHi] = chunkRange(n, P, rc);
    sendBytes(right, tag, data.data() + sLo, (sHi - sLo) * sizeof(T), m);
    recvBytes(left, tag, data.data() + rLo, (rHi - rLo) * sizeof(T), m);
  }
}

template <typename T>
void Collectives::allgatherRing(std::span<const T> local, std::span<T> out,
                                int tag, const Meter& m) {
  const int P = size_;
  const std::size_t n = local.size();
  const int v = vrank();
  const int right = rankAt((v + 1) % P);
  const int left = rankAt((v - 1 + P) % P);
  std::copy(local.begin(), local.end(),
            out.begin() + static_cast<std::size_t>(rank_) * n);
  // Step s forwards the block of ring slot (v - s) mod P; blocks land at
  // their owner's *physical* index in `out`.
  for (int s = 0; s < P - 1; ++s) {
    const int sPhys = rankAt((v - s + P) % P);
    const int rPhys = rankAt((v - s - 1 + P) % P);
    sendBytes(right, tag, out.data() + static_cast<std::size_t>(sPhys) * n,
              n * sizeof(T), m);
    recvBytes(left, tag, out.data() + static_cast<std::size_t>(rPhys) * n,
              n * sizeof(T), m);
  }
}

template <typename T>
void Collectives::reduceScatterRing(std::span<const T> in, std::span<T> out,
                                    Op op, int tag, const Meter& m) {
  const int P = size_;
  const std::size_t n = in.size();
  const int v = vrank();
  const int right = rankAt((v + 1) % P);
  const int left = rankAt((v - 1 + P) % P);
  // The data layout is chunked by *physical* rank (chunk p belongs to
  // rank p), but the ring folds chunks in virtual slot order.  Map ring
  // chunk c to the data range of physical rank order[(c - 1 + P) mod P]:
  // slot v then finishes ring chunk (v + 1) mod P = its own physical
  // chunk order[v] == rank_.
  auto ringRange = [&](int c) {
    return chunkRange(n, P, rankAt((c - 1 + P) % P));
  };
  std::vector<T> work(in.begin(), in.end());
  const std::size_t maxChunk = n / static_cast<std::size_t>(P) + 1;
  std::vector<T> tmp(maxChunk);
  for (int s = 0; s < P - 1; ++s) {
    const auto [sLo, sHi] = ringRange((v - s + P) % P);
    const auto [rLo, rHi] = ringRange((v - s - 1 + P) % P);
    sendBytes(right, tag, work.data() + sLo, (sHi - sLo) * sizeof(T), m);
    recvBytes(left, tag, tmp.data(), (rHi - rLo) * sizeof(T), m);
    for (std::size_t i = 0; i < rHi - rLo; ++i)
      work[rLo + i] = applyOp(tmp[i], work[rLo + i], op);
  }
  const auto [lo, hi] = chunkRange(n, P, rank_);
  SWLB_ASSERT(out.size() >= hi - lo && "reduce_scatter: out chunk too small");
  std::copy(work.begin() + static_cast<std::ptrdiff_t>(lo),
            work.begin() + static_cast<std::ptrdiff_t>(hi), out.begin());
}

// ---- gathers -------------------------------------------------------------

template <typename T>
void Collectives::gatherNaive(int root, std::span<const T> local,
                              std::span<T> out, int tag, const Meter& m) {
  const std::size_t n = local.size();
  if (rank_ != root) {
    sendBytes(root, tag, local.data(), local.size_bytes(), m);
    return;
  }
  std::copy(local.begin(), local.end(),
            out.begin() + static_cast<std::size_t>(root) * n);
  if (cfg_.checksummed) {
    // Checksummed frames carry a trailer, so sizes cannot be matched by a
    // plain irecv; fall back to in-order verified receives.
    for (int src = 0; src < size_; ++src)
      if (src != root)
        comm_.recvChecksummed(
            src, tag, out.data() + static_cast<std::size_t>(src) * n,
            n * sizeof(T));
    return;
  }
  // Post every receive up front, then wait: a slow source never blocks
  // the others from landing (no head-of-line blocking).
  std::vector<runtime::Request> reqs;
  reqs.reserve(static_cast<std::size_t>(size_ - 1));
  for (int src = 0; src < size_; ++src)
    if (src != root)
      reqs.push_back(comm_.irecv(src, tag,
                                 out.data() + static_cast<std::size_t>(src) * n,
                                 n * sizeof(T)));
  for (auto& r : reqs) r.wait();
}

template <typename T>
void Collectives::gatherTree(int root, std::span<const T> local,
                             std::span<T> out, int tag, const Meter& m) {
  const int P = size_;
  const std::size_t n = local.size();
  const int vroot = topo_.pos[static_cast<std::size_t>(root)];
  const int rel = (vrank() - vroot + P) % P;
  auto physOfRel = [&](int rr) { return rankAt((rr + vroot) % P); };
  // buf accumulates the blocks of relative ranks [rel, rel + held) — a
  // binomial subtree is always a contiguous relative-rank range.
  std::vector<T> buf(static_cast<std::size_t>(P - rel) * n);
  std::copy(local.begin(), local.end(), buf.begin());
  for (int mask = 1; mask < P; mask <<= 1) {
    if (rel & mask) {
      const std::size_t held =
          static_cast<std::size_t>(std::min(mask, P - rel));
      sendBytes(physOfRel(rel - mask), tag, buf.data(), held * n * sizeof(T),
                m);
      return;
    }
    const int src = rel + mask;
    if (src < P) {
      const std::size_t childBlocks =
          static_cast<std::size_t>(std::min(mask, P - src));
      recvBytes(physOfRel(src), tag,
                buf.data() + static_cast<std::size_t>(mask) * n,
                childBlocks * n * sizeof(T), m);
    }
  }
  // Root (rel == 0): unpack relative order back to physical positions.
  for (int rr = 0; rr < P; ++rr) {
    const std::size_t phys = static_cast<std::size_t>(physOfRel(rr));
    std::copy(buf.begin() + static_cast<std::ptrdiff_t>(rr * n),
              buf.begin() + static_cast<std::ptrdiff_t>((rr + 1) * n),
              out.begin() + static_cast<std::ptrdiff_t>(phys * n));
  }
}

// ---- public dispatchers --------------------------------------------------

template <typename T>
void Collectives::allreduce(std::span<T> data, Op op) {
  obs::TraceScope scope(kAllreduceMeter.phase);
  const int tag = runtime::colltag::encode(comm_.nextCollSequence());
  if (size_ <= 1) return;
  switch (resolve(cfg_.allreduce, data.size_bytes())) {
    case Algo::Naive:
      reduceNaive(0, data, op, tag, kAllreduceMeter);
      broadcastNaive(0, data, tag, kAllreduceMeter);
      break;
    case Algo::Ring:
      allreduceRing(data, op, tag, kAllreduceMeter);
      break;
    default:
      // Reduce to a single result, then distribute it: every rank ends
      // with byte-identical values because the fold happens exactly once.
      reduceTree(0, data, op, tag, kAllreduceMeter);
      broadcastTree(0, data, tag, kAllreduceMeter);
      break;
  }
}

template <typename T>
void Collectives::reduce(int root, std::span<T> data, Op op) {
  obs::TraceScope scope(kReduceMeter.phase);
  const int tag = runtime::colltag::encode(comm_.nextCollSequence());
  if (size_ <= 1) return;
  if (resolve(cfg_.reduce, data.size_bytes()) == Algo::Naive)
    reduceNaive(root, data, op, tag, kReduceMeter);
  else
    reduceTree(root, data, op, tag, kReduceMeter);
}

template <typename T>
void Collectives::broadcast(int root, std::span<T> data) {
  obs::TraceScope scope(kBroadcastMeter.phase);
  const int tag = runtime::colltag::encode(comm_.nextCollSequence());
  if (size_ <= 1) return;
  if (resolve(cfg_.broadcast, data.size_bytes()) == Algo::Naive)
    broadcastNaive(root, data, tag, kBroadcastMeter);
  else
    broadcastTree(root, data, tag, kBroadcastMeter);
}

template <typename T>
void Collectives::gather(int root, std::span<const T> local,
                         std::span<T> out) {
  obs::TraceScope scope(kGatherMeter.phase);
  const int tag = runtime::colltag::encode(comm_.nextCollSequence());
  if (size_ <= 1) {
    std::copy(local.begin(), local.end(), out.begin());
    return;
  }
  // Large payloads: flat gather (receives posted up front) keeps every
  // source streaming straight to the root instead of store-and-forwarding
  // ever-growing subtree buffers; small payloads: log-depth tree.
  if (resolve(cfg_.gather, local.size_bytes()) == Algo::Tree)
    gatherTree(root, local, out, tag, kGatherMeter);
  else
    gatherNaive(root, local, out, tag, kGatherMeter);
}

template <typename T>
void Collectives::gatherv(int root, std::span<const T> local,
                          std::span<const std::size_t> counts,
                          std::span<T> out) {
  obs::TraceScope scope(kGathervMeter.phase);
  const int tag = runtime::colltag::encode(comm_.nextCollSequence());
  if (rank_ != root) {
    sendBytes(root, tag, local.data(), local.size_bytes(), kGathervMeter);
    return;
  }
  SWLB_ASSERT(static_cast<int>(counts.size()) == size_ &&
              "gatherv: counts must list every rank");
  SWLB_ASSERT(counts[static_cast<std::size_t>(root)] == local.size() &&
              "gatherv: root count mismatch");
  std::vector<std::size_t> offset(static_cast<std::size_t>(size_) + 1, 0);
  for (int r = 0; r < size_; ++r)
    offset[static_cast<std::size_t>(r) + 1] =
        offset[static_cast<std::size_t>(r)] + counts[static_cast<std::size_t>(r)];
  SWLB_ASSERT(out.size() >= offset[static_cast<std::size_t>(size_)] &&
              "gatherv: out too small");
  std::copy(local.begin(), local.end(),
            out.begin() + static_cast<std::ptrdiff_t>(
                              offset[static_cast<std::size_t>(root)]));
  if (cfg_.checksummed) {
    for (int src = 0; src < size_; ++src)
      if (src != root)
        comm_.recvChecksummed(src, tag,
                              out.data() + offset[static_cast<std::size_t>(src)],
                              counts[static_cast<std::size_t>(src)] * sizeof(T));
    return;
  }
  std::vector<runtime::Request> reqs;
  reqs.reserve(static_cast<std::size_t>(size_ - 1));
  for (int src = 0; src < size_; ++src)
    if (src != root)
      reqs.push_back(
          comm_.irecv(src, tag, out.data() + offset[static_cast<std::size_t>(src)],
                      counts[static_cast<std::size_t>(src)] * sizeof(T)));
  for (auto& r : reqs) r.wait();
}

template <typename T>
void Collectives::allgather(std::span<const T> local, std::span<T> out) {
  obs::TraceScope scope(kAllgatherMeter.phase);
  const int tag = runtime::colltag::encode(comm_.nextCollSequence());
  if (size_ <= 1) {
    std::copy(local.begin(), local.end(), out.begin());
    return;
  }
  switch (resolve(cfg_.allgather, local.size_bytes())) {
    case Algo::Ring:
      allgatherRing(local, out, tag, kAllgatherMeter);
      break;
    case Algo::Naive:
      gatherNaive(0, local, out, tag, kAllgatherMeter);
      broadcastNaive(0, out, tag, kAllgatherMeter);
      break;
    default:
      gatherTree(0, local, out, tag, kAllgatherMeter);
      broadcastTree(0, out, tag, kAllgatherMeter);
      break;
  }
}

template <typename T>
void Collectives::reduce_scatter(std::span<const T> in, std::span<T> out,
                                 Op op) {
  obs::TraceScope scope(kReduceScatterMeter.phase);
  const int tag = runtime::colltag::encode(comm_.nextCollSequence());
  if (size_ <= 1) {
    std::copy(in.begin(), in.end(), out.begin());
    return;
  }
  if (resolve(cfg_.reduceScatter, in.size_bytes()) == Algo::Ring) {
    reduceScatterRing(in, out, op, tag, kReduceScatterMeter);
    return;
  }
  // Small payloads: full reduce on rank 0, then a flat scatter of chunks.
  std::vector<T> work(in.begin(), in.end());
  const std::span<T> wspan(work);
  if (resolve(cfg_.reduceScatter, in.size_bytes()) == Algo::Naive)
    reduceNaive(0, wspan, op, tag, kReduceScatterMeter);
  else
    reduceTree(0, wspan, op, tag, kReduceScatterMeter);
  const auto [myLo, myHi] = chunkRange(in.size(), size_, rank_);
  if (rank_ == 0) {
    for (int dst = 1; dst < size_; ++dst) {
      const auto [lo, hi] = chunkRange(in.size(), size_, dst);
      sendBytes(dst, tag, work.data() + lo, (hi - lo) * sizeof(T),
                kReduceScatterMeter);
    }
    std::copy(work.begin() + static_cast<std::ptrdiff_t>(myLo),
              work.begin() + static_cast<std::ptrdiff_t>(myHi), out.begin());
  } else {
    recvBytes(0, tag, out.data(), (myHi - myLo) * sizeof(T),
              kReduceScatterMeter);
  }
}

// ---- explicit instantiations ---------------------------------------------

#define SWLB_COLL_INSTANTIATE_REDUCING(T)                                    \
  template void Collectives::allreduce<T>(std::span<T>, Op);                 \
  template void Collectives::reduce<T>(int, std::span<T>, Op);               \
  template void Collectives::reduce_scatter<T>(std::span<const T>,           \
                                               std::span<T>, Op);

#define SWLB_COLL_INSTANTIATE_DATA(T)                                        \
  template void Collectives::broadcast<T>(int, std::span<T>);                \
  template void Collectives::gather<T>(int, std::span<const T>,              \
                                       std::span<T>);                        \
  template void Collectives::gatherv<T>(int, std::span<const T>,             \
                                        std::span<const std::size_t>,        \
                                        std::span<T>);                       \
  template void Collectives::allgather<T>(std::span<const T>, std::span<T>);

SWLB_COLL_INSTANTIATE_REDUCING(double)
SWLB_COLL_INSTANTIATE_REDUCING(float)
SWLB_COLL_INSTANTIATE_REDUCING(std::int64_t)
SWLB_COLL_INSTANTIATE_DATA(double)
SWLB_COLL_INSTANTIATE_DATA(float)
SWLB_COLL_INSTANTIATE_DATA(std::int64_t)
SWLB_COLL_INSTANTIATE_DATA(std::uint8_t)

#undef SWLB_COLL_INSTANTIATE_REDUCING
#undef SWLB_COLL_INSTANTIATE_DATA

}  // namespace swlb::coll
