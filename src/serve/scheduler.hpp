// Fair-share rotation of the `swlb::serve` scheduler (DESIGN.md §12).
// A strict round-robin deque of active job ids: the front job runs the
// next step quantum and rejoins at the back, so with J active jobs no
// job waits more than J-1 quanta between turns — the starvation bound
// the serve acceptance test pins down.  Priorities scale the *length*
// of a job's quantum (JobSpec::priority), never its place in the
// rotation, so a low-priority job still progresses every round.
//
// Pure data structure: the Server drives it under its own mutex.
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <optional>

namespace swlb::serve {

class Scheduler {
 public:
  /// A newly admitted job joins the back of the rotation.
  void add(std::uint64_t id) { rr_.push_back(id); }

  /// Pop the next job to run one quantum (front of the rotation).
  std::optional<std::uint64_t> next() {
    if (rr_.empty()) return std::nullopt;
    const std::uint64_t id = rr_.front();
    rr_.pop_front();
    return id;
  }

  /// Peek without popping (workers test runnability before committing).
  std::optional<std::uint64_t> peek() const {
    if (rr_.empty()) return std::nullopt;
    return rr_.front();
  }

  /// A job whose quantum just ended rejoins at the back.
  void requeue(std::uint64_t id) { rr_.push_back(id); }

  /// Put a popped job back at the front (its turn was not consumed).
  void pushFront(std::uint64_t id) { rr_.push_front(id); }

  /// Remove a job that finished or failed while still in the rotation.
  void remove(std::uint64_t id) {
    rr_.erase(std::remove(rr_.begin(), rr_.end(), id), rr_.end());
  }

  bool empty() const { return rr_.empty(); }
  std::size_t size() const { return rr_.size(); }

  /// Eviction victim: the waiting job that will not run again for the
  /// longest time, i.e. the one nearest the *back* of the rotation (it
  /// just finished a quantum).  `runnable(id)` filters to jobs that can
  /// actually be evicted (resident, not running).
  template <class Pred>
  std::optional<std::uint64_t> pickVictim(Pred runnable) const {
    for (auto it = rr_.rbegin(); it != rr_.rend(); ++it)
      if (runnable(*it)) return *it;
    return std::nullopt;
  }

 private:
  std::deque<std::uint64_t> rr_;
};

}  // namespace swlb::serve
