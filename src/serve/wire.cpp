#include "serve/wire.hpp"

#include <cctype>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <optional>

namespace swlb::serve {

namespace {

/// Deterministic number text: integers in [-2^53, 2^53] print without a
/// fraction, everything else as shortest-round-trip %.17g.
std::string format_number(double v) {
  char buf[40];
  if (std::isfinite(v) && v == std::floor(v) && std::abs(v) <= 9.0e15) {
    std::snprintf(buf, sizeof(buf), "%" PRId64, static_cast<std::int64_t>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
  }
  return buf;
}

void append_escaped(std::string& out, const std::string& s) {
  out.push_back('"');
  for (const char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(ch)));
          out += buf;
        } else {
          out.push_back(ch);
        }
    }
  }
  out.push_back('"');
}

class Parser {
 public:
  explicit Parser(std::string_view text) : s_(text) {}

  WireMap parseObject() {
    WireMap out;
    skipWs();
    expect('{');
    skipWs();
    if (peek() == '}') {
      ++i_;
      finish();
      return out;
    }
    for (;;) {
      skipWs();
      std::string key = parseString();
      skipWs();
      expect(':');
      skipWs();
      out[std::move(key)] = parseValue();
      skipWs();
      const char c = next();
      if (c == '}') break;
      if (c != ',') fail("expected ',' or '}'");
    }
    finish();
    return out;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw Error("serve wire: " + why + " at offset " + std::to_string(i_) +
                " in '" + std::string(s_.substr(0, 120)) + "'");
  }
  char peek() const { return i_ < s_.size() ? s_[i_] : '\0'; }
  char next() {
    if (i_ >= s_.size()) fail("unexpected end of line");
    return s_[i_++];
  }
  void expect(char c) {
    if (next() != c) fail(std::string("expected '") + c + "'");
  }
  void skipWs() {
    while (i_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[i_])))
      ++i_;
  }
  void finish() {
    skipWs();
    if (i_ != s_.size()) fail("trailing garbage after object");
  }

  void appendUtf8(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  std::string parseString() {
    expect('"');
    std::string out;
    for (;;) {
      const char c = next();
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      const char e = next();
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'n': out.push_back('\n'); break;
        case 't': out.push_back('\t'); break;
        case 'r': out.push_back('\r'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'u': {
          unsigned cp = 0;
          for (int k = 0; k < 4; ++k) {
            const char h = next();
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          appendUtf8(out, cp);
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  WireValue parseValue() {
    const char c = peek();
    if (c == '"') return WireValue::ofString(parseString());
    if (c == '{' || c == '[')
      fail("nested objects/arrays are not part of the flat grammar");
    if (c == 't' || c == 'f') {
      const std::string_view want = c == 't' ? "true" : "false";
      for (const char w : want)
        if (next() != w) fail("bad literal");
      return WireValue::ofBool(c == 't');
    }
    if (c == 'n') {
      for (const char w : std::string_view("null"))
        if (next() != w) fail("bad literal");
      return WireValue::ofString("");  // null decays to the empty string
    }
    // Number: hand strtod the remaining text, then verify it consumed a
    // plausible token (strtod accepts leading whitespace we already ate).
    const std::string rest(s_.substr(i_));
    char* end = nullptr;
    const double v = std::strtod(rest.c_str(), &end);
    if (end == rest.c_str()) fail("expected a value");
    i_ += static_cast<std::size_t>(end - rest.c_str());
    return WireValue::ofNumber(v);
  }

  std::string_view s_;
  std::size_t i_ = 0;
};

}  // namespace

std::string WireValue::asText() const {
  switch (kind) {
    case Kind::String: return str;
    case Kind::Number: return format_number(num);
    case Kind::Bool: return boolean ? "true" : "false";
  }
  return {};
}

std::string encode_line(const WireMap& m) {
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : m) {
    if (!first) out.push_back(',');
    first = false;
    append_escaped(out, k);
    out.push_back(':');
    switch (v.kind) {
      case WireValue::Kind::String: append_escaped(out, v.str); break;
      case WireValue::Kind::Number: out += format_number(v.num); break;
      case WireValue::Kind::Bool: out += v.boolean ? "true" : "false"; break;
    }
  }
  out.push_back('}');
  return out;
}

WireMap decode_line(std::string_view line) { return Parser(line).parseObject(); }

const WireValue* wire_find(const WireMap& m, const std::string& key) {
  const auto it = m.find(key);
  return it == m.end() ? nullptr : &it->second;
}

std::string wire_string(const WireMap& m, const std::string& key) {
  const WireValue* v = wire_find(m, key);
  if (!v || v->kind != WireValue::Kind::String)
    throw Error("serve wire: missing string field '" + key + "'");
  return v->str;
}

std::string wire_string(const WireMap& m, const std::string& key,
                        const std::string& fallback) {
  const WireValue* v = wire_find(m, key);
  if (!v) return fallback;
  if (v->kind != WireValue::Kind::String)
    throw Error("serve wire: field '" + key + "' is not a string");
  return v->str;
}

namespace {

/// Booleans coerce to 1/0 — clients may send either on a flat protocol.
std::optional<double> numeric_value(const WireValue* v) {
  if (!v) return std::nullopt;
  if (v->kind == WireValue::Kind::Number) return v->num;
  if (v->kind == WireValue::Kind::Bool) return v->boolean ? 1.0 : 0.0;
  return std::nullopt;
}

}  // namespace

double wire_number(const WireMap& m, const std::string& key) {
  const auto num = numeric_value(wire_find(m, key));
  if (!num) throw Error("serve wire: missing numeric field '" + key + "'");
  return *num;
}

double wire_number(const WireMap& m, const std::string& key, double fallback) {
  const WireValue* v = wire_find(m, key);
  if (!v) return fallback;
  const auto num = numeric_value(v);
  if (!num) throw Error("serve wire: field '" + key + "' is not a number");
  return *num;
}

}  // namespace swlb::serve
