// Job model of the `swlb::serve` multi-tenant simulation service
// (DESIGN.md §12): what a client submits, the lifecycle states the
// scheduler moves a job through, and the read-only snapshot rows the
// server exposes to drivers and benches.
#pragma once

#include <cstdint>
#include <string>

#include "app/config.hpp"

namespace swlb::serve {

/// Lifecycle of a job (admission/eviction state machine, DESIGN.md §12):
///
///   submit -> Queued ----promote----> Waiting <-> Running -> Done
///                (admission queue)      ^  |                \-> Failed
///                                 resume|  |evict
///                                       (checkpoint on disk)
///
/// Waiting covers both a resident job between quanta and an evicted job
/// whose newest state lives in its v2 checkpoint file; JobInfo::resident
/// distinguishes them.
enum class JobState { Queued, Waiting, Running, Done, Failed };

inline const char* job_state_name(JobState s) {
  switch (s) {
    case JobState::Queued: return "queued";
    case JobState::Waiting: return "waiting";
    case JobState::Running: return "running";
    case JobState::Done: return "done";
    case JobState::Failed: return "failed";
  }
  return "?";
}

/// What a client submits: which tenant it bills to, how urgent it is,
/// the step budget, and the case description (same `key = value` space
/// as the swlb_run config files — "case", "nx", "omega", ...).
struct JobSpec {
  std::string tenant = "default";
  /// Fair-share weight: a priority-p job receives p step quanta per
  /// scheduler rotation (clamped to [1, kMaxPriority]).
  int priority = 1;
  static constexpr int kMaxPriority = 8;
  /// Total steps to advance before the job is Done.
  std::uint64_t steps = 100;
  app::Config config;
};

/// One row of Server::snapshot(): enough to audit fairness and progress
/// without touching server internals.
struct JobInfo {
  std::uint64_t id = 0;
  std::string tenant;
  JobState state = JobState::Queued;
  int priority = 1;
  std::uint64_t stepsDone = 0;
  std::uint64_t targetSteps = 0;
  std::uint64_t quantaDone = 0;
  int recoveries = 0;
  bool resident = false;  ///< holds a live solver instance right now
  bool onDisk = false;    ///< newest state lives in its checkpoint file
};

}  // namespace swlb::serve
