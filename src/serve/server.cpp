#include "serve/server.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "app/cases.hpp"
#include "io/checkpoint.hpp"

namespace swlb::serve {

namespace {

std::string hash_hex(std::uint64_t h) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

WireMap event(const char* name) {
  WireMap m;
  m["event"] = WireValue::ofString(name);
  return m;
}

}  // namespace

// ---- Session -----------------------------------------------------------

void Session::request(const std::string& line) { server_->dispatch(*this, line); }

std::optional<std::string> Session::nextEvent() {
  std::unique_lock<std::mutex> lk(m_);
  cv_.wait(lk, [&] { return !outbox_.empty() || closed_; });
  if (outbox_.empty()) return std::nullopt;
  std::string line = std::move(outbox_.front());
  outbox_.pop_front();
  return line;
}

std::optional<std::string> Session::tryNextEvent() {
  std::lock_guard<std::mutex> lk(m_);
  if (outbox_.empty()) return std::nullopt;
  std::string line = std::move(outbox_.front());
  outbox_.pop_front();
  return line;
}

void Session::close() {
  std::lock_guard<std::mutex> lk(m_);
  closed_ = true;
  cv_.notify_all();
}

void Session::push(const std::string& line) {
  std::lock_guard<std::mutex> lk(m_);
  if (closed_) return;
  outbox_.push_back(line);
  cv_.notify_all();
}

// ---- Server ------------------------------------------------------------

Server::Server(const ServerConfig& cfg)
    : cfg_(cfg), queue_(cfg.admission) {
  if (cfg_.workers < 1) throw Error("ServerConfig: workers must be >= 1");
  if (cfg_.quantumSteps < 1)
    throw Error("ServerConfig: quantumSteps must be >= 1");
  if (cfg_.maxResident < 1) cfg_.maxResident = 1;
  if (cfg_.metrics) {
    metrics_ = cfg_.metrics;
  } else {
    ownedMetrics_ = std::make_unique<obs::MetricsRegistry>();
    metrics_ = ownedMetrics_.get();
  }
  paused_ = cfg_.startPaused;
  workers_.reserve(static_cast<std::size_t>(cfg_.workers));
  for (int w = 0; w < cfg_.workers; ++w)
    workers_.emplace_back([this, w] { workerLoop(w); });
}

Server::~Server() { shutdown(); }

Session& Server::openSession() {
  std::lock_guard<std::mutex> lk(m_);
  const std::uint64_t id = nextSessionId_++;
  auto& slot = sessions_[id];
  slot.reset(new Session(this, id));
  return *slot;
}

void Server::resume() {
  std::lock_guard<std::mutex> lk(m_);
  paused_ = false;
  cv_.notify_all();
}

bool Server::shuttingDown() const {
  std::lock_guard<std::mutex> lk(m_);
  return stop_;
}

void Server::addShutdownHook(std::function<void()> hook) {
  std::lock_guard<std::mutex> lk(m_);
  if (stop_) {
    // Shutdown already began: run immediately (outside would be nicer but
    // hooks only close listeners, which is lock-free).
    hook();
    return;
  }
  shutdownHooks_.push_back(std::move(hook));
}

void Server::shutdown() {
  std::vector<std::function<void()>> hooks;
  {
    std::lock_guard<std::mutex> lk(m_);
    stop_ = true;
    hooks.swap(shutdownHooks_);
    cv_.notify_all();
  }
  for (auto& h : hooks) h();
  // Join exactly once; concurrent callers block until the first finishes.
  {
    std::lock_guard<std::mutex> joinLk(joinM_);
    if (!joined_) {
      for (auto& t : workers_) t.join();
      joined_ = true;
      std::lock_guard<std::mutex> lk(m_);
      for (auto& [id, s] : sessions_) s->close();
      // Sweep checkpoint files of jobs that never reached Done/Failed so
      // an aborted daemon leaves zero serve_job*.ckpt debris behind.
      for (auto& [id, j] : jobs_) {
        if (j->onDisk) {
          std::remove(checkpointPath(id).c_str());
          j->onDisk = false;
        }
      }
    }
  }
}

std::vector<JobInfo> Server::snapshot() const {
  std::lock_guard<std::mutex> lk(m_);
  std::vector<JobInfo> out;
  out.reserve(jobs_.size());
  for (const auto& [id, j] : jobs_) {
    JobInfo info;
    info.id = id;
    info.tenant = j->spec.tenant;
    info.state = j->state;
    info.priority = j->spec.priority;
    info.stepsDone = j->stepsDone;
    info.targetSteps = j->spec.steps;
    info.quantaDone = j->quantaDone;
    info.recoveries = j->recoveries;
    info.resident = j->solver != nullptr;
    info.onDisk = j->onDisk;
    out.push_back(std::move(info));
  }
  return out;
}

std::string Server::checkpointPath(std::uint64_t id) const {
  return cfg_.checkpointDir + "/serve_job" + std::to_string(id) + ".ckpt";
}

void Server::emit(std::uint64_t sessionId, const WireMap& ev) {
  const auto it = sessions_.find(sessionId);
  if (it == sessions_.end()) return;
  it->second->push(encode_line(ev));
}

void Server::updateGauges() {
  metrics_->gauge("serve.resident").set(static_cast<double>(residentCount_));
  metrics_->gauge("serve.queue_depth")
      .set(static_cast<double>(queue_.queueDepth()));
  metrics_->gauge("serve.active").set(static_cast<double>(queue_.active()));
}

// ---- protocol dispatch -------------------------------------------------

void Server::dispatch(Session& s, const std::string& line) {
  obs::ScopedBind bind(cfg_.tracer, metrics_, 0);
  WireMap req;
  std::string op;
  try {
    req = decode_line(line);
    op = wire_string(req, "op");
  } catch (const Error& e) {
    WireMap ev = event("error");
    ev["reason"] = WireValue::ofString(e.what());
    s.push(encode_line(ev));
    return;
  }
  try {
    if (op == "submit") {
      handleSubmit(s, req);
    } else if (op == "status") {
      handleStatus(s, req);
    } else if (op == "stats") {
      handleStats(s);
    } else if (op == "shutdown") {
      s.push(encode_line(event("bye")));
      shutdown();
    } else {
      WireMap ev = event("error");
      ev["reason"] = WireValue::ofString("unknown op '" + op + "'");
      s.push(encode_line(ev));
    }
  } catch (const Error& e) {
    WireMap ev = event("error");
    ev["reason"] = WireValue::ofString(e.what());
    s.push(encode_line(ev));
  }
}

void Server::handleSubmit(Session& s, const WireMap& req) {
  JobSpec spec;
  spec.tenant = wire_string(req, "tenant", "default");
  spec.priority = std::clamp(
      static_cast<int>(wire_number(req, "priority", 1)), 1,
      JobSpec::kMaxPriority);
  const double steps = wire_number(req, "steps");
  if (!(steps >= 1) || steps != std::floor(steps))
    throw Error("submit: 'steps' must be a positive integer");
  spec.steps = static_cast<std::uint64_t>(steps);
  for (const auto& [k, v] : req)
    if (k.rfind("cfg.", 0) == 0) spec.config.set(k.substr(4), v.asText());
  if (!spec.config.has("case"))
    throw Error("submit: missing 'cfg.case' (which simulation to run)");

  std::lock_guard<std::mutex> lk(m_);
  obs::TraceScope admitScope("serve.admit");
  if (stop_) {
    metrics_->counter("serve.rejected.shutdown").add(1);
    WireMap ev = event("rejected");
    ev["reason"] = WireValue::ofString("shutdown");
    ev["tenant"] = WireValue::ofString(spec.tenant);
    s.push(encode_line(ev));
    return;
  }
  const std::uint64_t id = nextJobId_++;
  const JobQueue::Admission verdict = queue_.admit(id, spec.tenant);
  if (verdict == JobQueue::Admission::RejectTenantCap ||
      verdict == JobQueue::Admission::RejectQueueFull) {
    const char* reason = JobQueue::admission_name(verdict);
    metrics_->counter(std::string("serve.rejected.") + reason).add(1);
    WireMap ev = event("rejected");
    ev["reason"] = WireValue::ofString(reason);
    ev["tenant"] = WireValue::ofString(spec.tenant);
    s.push(encode_line(ev));
    updateGauges();
    return;
  }

  auto job = std::make_unique<Job>();
  job->id = id;
  job->spec = std::move(spec);
  job->sessionId = s.id();
  job->tSubmit = std::chrono::steady_clock::now();
  const bool queued = verdict == JobQueue::Admission::Enqueue;
  job->state = queued ? JobState::Queued : JobState::Waiting;
  const std::string tenant = job->spec.tenant;
  jobs_[id] = std::move(job);
  if (queued) {
    metrics_->counter("serve.queued").add(1);
  } else {
    metrics_->counter("serve.admitted").add(1);
    sched_.add(id);
    cv_.notify_all();
  }
  metrics_->scoped("serve.tenant").scoped(tenant).counter("submitted").add(1);
  WireMap ev = event("accepted");
  ev["job"] = WireValue::ofNumber(static_cast<double>(id));
  ev["queued"] = WireValue::ofNumber(queued ? 1 : 0);
  s.push(encode_line(ev));
  updateGauges();
}

void Server::handleStatus(Session& s, const WireMap& req) {
  const auto id = static_cast<std::uint64_t>(wire_number(req, "job"));
  std::lock_guard<std::mutex> lk(m_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end())
    throw Error("status: unknown job " + std::to_string(id));
  const Job& j = *it->second;
  WireMap ev = event("status");
  ev["job"] = WireValue::ofNumber(static_cast<double>(id));
  ev["state"] = WireValue::ofString(job_state_name(j.state));
  ev["tenant"] = WireValue::ofString(j.spec.tenant);
  ev["priority"] = WireValue::ofNumber(j.spec.priority);
  ev["steps"] = WireValue::ofNumber(static_cast<double>(j.stepsDone));
  ev["target"] = WireValue::ofNumber(static_cast<double>(j.spec.steps));
  ev["quanta"] = WireValue::ofNumber(static_cast<double>(j.quantaDone));
  ev["recoveries"] = WireValue::ofNumber(j.recoveries);
  ev["resident"] = WireValue::ofNumber(j.solver ? 1 : 0);
  ev["on_disk"] = WireValue::ofNumber(j.onDisk ? 1 : 0);
  s.push(encode_line(ev));
}

void Server::handleStats(Session& s) {
  WireMap ev = event("stats");
  for (const auto& [k, v] : metrics_->counterSnapshot())
    if (k.rfind("serve.", 0) == 0)
      ev[k] = WireValue::ofNumber(static_cast<double>(v));
  for (const auto& [k, v] : metrics_->gaugeSnapshot())
    if (k.rfind("serve.", 0) == 0) ev[k] = WireValue::ofNumber(v);
  s.push(encode_line(ev));
}

// ---- scheduling / workers ----------------------------------------------

bool Server::frontRunnableLocked() const {
  const auto front = sched_.peek();
  if (!front) return false;
  if (jobs_.at(*front)->solver) return true;
  if (residentCount_ < cfg_.maxResident) return true;
  return sched_
      .pickVictim(
          [&](std::uint64_t vid) { return jobs_.at(vid)->solver != nullptr; })
      .has_value();
}

void Server::workerLoop(int index) {
  obs::ScopedBind bind(cfg_.tracer, metrics_, index);
  std::unique_lock<std::mutex> lk(m_);
  for (;;) {
    cv_.wait(lk, [&] { return stop_ || (!paused_ && frontRunnableLocked()); });
    if (stop_) return;
    const std::uint64_t id = *sched_.next();
    Job& j = *jobs_.at(id);
    if (!j.solver && !makeResident(j, lk)) continue;  // failed to build
    j.state = JobState::Running;
    Solver<D3Q19>* s = j.solver.get();
    const std::uint64_t quantum =
        cfg_.quantumSteps * static_cast<std::uint64_t>(j.spec.priority);
    const std::uint64_t n =
        std::min<std::uint64_t>(quantum, j.spec.steps - j.stepsDone);
    const bool needFirst = !j.firstStepDone;
    const auto tSubmit = j.tSubmit;
    const std::uint64_t preSteps = j.stepsDone;
    const double mass0 = j.mass0;
    lk.unlock();

    bool fault = false;
    std::string reason;
    bool firstDone = false;
    double ttfs = 0;
    {
      obs::TraceScope quantumScope("serve.quantum");
      try {
        if (cfg_.beforeQuantum) cfg_.beforeQuantum(*s, id, preSteps);
        std::uint64_t left = n;
        if (needFirst && left > 0) {
          s->step();
          ttfs = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - tSubmit)
                     .count();
          firstDone = true;
          --left;
        }
        s->run(left);
        const double mass = static_cast<double>(s->totalMass());
        if (!std::isfinite(mass)) {
          fault = true;
          reason = "population guard: non-finite mass";
        } else if (cfg_.massTolerance > 0 &&
                   std::abs(mass - mass0) >
                       cfg_.massTolerance * std::max(std::abs(mass0), 1.0)) {
          fault = true;
          reason = "population guard: mass drift";
        }
      } catch (const std::exception& e) {
        fault = true;
        reason = e.what();
      }
    }

    lk.lock();
    if (firstDone && !j.firstStepDone) {
      j.firstStepDone = true;
      j.ttfsSeconds = ttfs;
      metrics_->histogram("serve.ttfs_seconds").observe(ttfs);
    }
    if (fault) {
      handleFault(j, reason);
      continue;
    }
    j.stepsDone = s->stepsDone();
    ++j.quantaDone;
    metrics_->counter("serve.quanta").add(1);
    metrics_->counter("serve.steps").add(n);
    {
      auto tenant = metrics_->scoped("serve.tenant").scoped(j.spec.tenant);
      tenant.counter("quanta").add(1);
      tenant.counter("steps").add(n);
    }
    WireMap prog = event("progress");
    prog["job"] = WireValue::ofNumber(static_cast<double>(id));
    prog["steps"] = WireValue::ofNumber(static_cast<double>(j.stepsDone));
    prog["target"] = WireValue::ofNumber(static_cast<double>(j.spec.steps));
    prog["quanta"] = WireValue::ofNumber(static_cast<double>(j.quantaDone));
    emit(j.sessionId, prog);
    if (j.stepsDone >= j.spec.steps) {
      finishJob(j, io::fnv1a(s->f().data(), s->f().bytes()));
    } else {
      if (cfg_.checkpointQuanta > 0 &&
          j.quantaDone % cfg_.checkpointQuanta == 0)
        saveJobCheckpoint(j);
      j.state = JobState::Waiting;
      sched_.requeue(id);
      cv_.notify_all();
    }
  }
}

bool Server::makeResident(Job& j, std::unique_lock<std::mutex>& lk) {
  SWLB_ASSERT(lk.owns_lock());
  (void)lk;  // held throughout; the parameter documents the contract
  while (residentCount_ >= cfg_.maxResident) {
    const auto victim = sched_.pickVictim(
        [&](std::uint64_t vid) { return jobs_.at(vid)->solver != nullptr; });
    if (!victim) {
      // frontRunnableLocked guaranteed capacity or a victim when this job
      // was popped and the lock was never released since; this branch is
      // defensive — hand the turn back and re-wait.
      sched_.pushFront(j.id);
      return false;
    }
    evict(*jobs_.at(*victim));
  }
  obs::TraceScope resumeScope("serve.resume");
  try {
    app::Case c = app::build_case(j.spec.config);
    j.solver = std::move(c.solver);
    if (j.onDisk) {
      io::load_checkpoint(checkpointPath(j.id), *j.solver);
      j.stepsDone = j.solver->stepsDone();
      metrics_->counter("serve.resumes").add(1);
      WireMap ev = event("resumed");
      ev["job"] = WireValue::ofNumber(static_cast<double>(j.id));
      ev["steps"] = WireValue::ofNumber(static_cast<double>(j.stepsDone));
      emit(j.sessionId, ev);
    }
    ++residentCount_;
    if (cfg_.massTolerance > 0)
      j.mass0 = static_cast<double>(j.solver->totalMass());
    updateGauges();
    return true;
  } catch (const std::exception& e) {
    j.solver.reset();
    failJob(j, std::string("build/resume failed: ") + e.what());
    return false;
  }
}

void Server::evict(Job& victim) {
  obs::TraceScope evictScope("serve.evict");
  saveJobCheckpoint(victim);
  victim.solver.reset();
  --residentCount_;
  metrics_->counter("serve.evictions").add(1);
  metrics_->scoped("serve.tenant")
      .scoped(victim.spec.tenant)
      .counter("evictions")
      .add(1);
  WireMap ev = event("evicted");
  ev["job"] = WireValue::ofNumber(static_cast<double>(victim.id));
  ev["steps"] = WireValue::ofNumber(static_cast<double>(victim.stepsDone));
  emit(victim.sessionId, ev);
  updateGauges();
}

void Server::saveJobCheckpoint(Job& j) {
  SWLB_ASSERT(j.solver);
  io::save_checkpoint(checkpointPath(j.id), *j.solver);
  j.onDisk = true;
  j.lastCkptStep = j.solver->stepsDone();
}

void Server::handleFault(Job& j, const std::string& reason) {
  ++j.recoveries;
  metrics_->counter("serve.faults").add(1);
  metrics_->scoped("serve.tenant")
      .scoped(j.spec.tenant)
      .counter("faults")
      .add(1);
  releaseResidency(j);  // a poisoned state is never saved or reused
  if (j.recoveries > cfg_.maxRecoveries) {
    failJob(j, reason);
    return;
  }
  // Rung 2 of the ladder at job scope: roll back to the newest on-disk
  // state (or a fresh rebuild) and rejoin the rotation.
  j.stepsDone = j.onDisk ? j.lastCkptStep : 0;
  j.state = JobState::Waiting;
  sched_.requeue(j.id);
  metrics_->counter("serve.rollbacks").add(1);
  WireMap ev = event("rollback");
  ev["job"] = WireValue::ofNumber(static_cast<double>(j.id));
  ev["to_step"] = WireValue::ofNumber(static_cast<double>(j.stepsDone));
  ev["recoveries"] = WireValue::ofNumber(j.recoveries);
  ev["reason"] = WireValue::ofString(reason);
  emit(j.sessionId, ev);
  cv_.notify_all();
  updateGauges();
}

void Server::finishJob(Job& j, std::uint64_t stateHash) {
  const double seconds = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - j.tSubmit)
                             .count();
  releaseResidency(j);
  if (j.onDisk) {
    std::remove(checkpointPath(j.id).c_str());
    j.onDisk = false;
  }
  j.state = JobState::Done;
  queue_.finish(j.spec.tenant);
  metrics_->counter("serve.jobs_done").add(1);
  metrics_->histogram("serve.job_seconds").observe(seconds);
  metrics_->scoped("serve.tenant")
      .scoped(j.spec.tenant)
      .counter("jobs_done")
      .add(1);
  WireMap ev = event("done");
  ev["job"] = WireValue::ofNumber(static_cast<double>(j.id));
  ev["steps"] = WireValue::ofNumber(static_cast<double>(j.stepsDone));
  ev["seconds"] = WireValue::ofNumber(seconds);
  ev["ttfs_s"] = WireValue::ofNumber(j.ttfsSeconds);
  ev["state_hash"] = WireValue::ofString(hash_hex(stateHash));
  emit(j.sessionId, ev);
  promoteQueued();
  updateGauges();
  cv_.notify_all();
}

void Server::failJob(Job& j, const std::string& reason) {
  releaseResidency(j);
  if (j.onDisk) {
    std::remove(checkpointPath(j.id).c_str());
    j.onDisk = false;
  }
  j.state = JobState::Failed;
  queue_.finish(j.spec.tenant);
  metrics_->counter("serve.jobs_failed").add(1);
  metrics_->scoped("serve.tenant")
      .scoped(j.spec.tenant)
      .counter("jobs_failed")
      .add(1);
  WireMap ev = event("failed");
  ev["job"] = WireValue::ofNumber(static_cast<double>(j.id));
  ev["steps"] = WireValue::ofNumber(static_cast<double>(j.stepsDone));
  ev["reason"] = WireValue::ofString(reason);
  emit(j.sessionId, ev);
  promoteQueued();
  updateGauges();
  cv_.notify_all();
}

void Server::releaseResidency(Job& j) {
  if (j.solver) {
    j.solver.reset();
    --residentCount_;
  }
}

void Server::promoteQueued() {
  while (const auto id = queue_.promote()) {
    Job& p = *jobs_.at(*id);
    p.state = JobState::Waiting;
    sched_.add(*id);
    metrics_->counter("serve.admitted").add(1);
  }
}

}  // namespace swlb::serve
