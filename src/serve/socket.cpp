#include "serve/socket.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <thread>
#include <vector>

#include "core/common.hpp"
#include "serve/server.hpp"

namespace swlb::serve {

namespace {

sockaddr_un make_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path))
    throw Error("socket path too long: " + path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

}  // namespace

// ---- LineStream --------------------------------------------------------

LineStream::~LineStream() { close(); }

std::optional<std::string> LineStream::readLine() {
  for (;;) {
    const auto nl = buf_.find('\n');
    if (nl != std::string::npos) {
      std::string line = buf_.substr(0, nl);
      buf_.erase(0, nl + 1);
      return line;
    }
    if (fd_ < 0) return std::nullopt;
    char chunk[4096];
    const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n > 0) {
      buf_.append(chunk, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return std::nullopt;  // EOF or error: a partial last line is dropped
  }
}

bool LineStream::writeLine(const std::string& line) {
  if (fd_ < 0) return false;
  std::string out = line;
  out.push_back('\n');
  std::size_t off = 0;
  while (off < out.size()) {
    const ssize_t n = ::write(fd_, out.data() + off, out.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

void LineStream::close() {
  if (fd_ >= 0) {
    ::shutdown(fd_, SHUT_RDWR);
    ::close(fd_);
    fd_ = -1;
  }
}

// ---- UnixListener ------------------------------------------------------

UnixListener::UnixListener(const std::string& path) : path_(path), fd_(-1) {
  const sockaddr_un addr = make_addr(path);
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) throw Error("socket() failed: " + std::string(strerror(errno)));
  ::unlink(path.c_str());  // replace a stale socket from a crashed daemon
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const int err = errno;
    ::close(fd_);
    throw Error("bind(" + path + ") failed: " + strerror(err));
  }
  if (::listen(fd_, 64) < 0) {
    const int err = errno;
    ::close(fd_);
    ::unlink(path.c_str());
    throw Error("listen(" + path + ") failed: " + strerror(err));
  }
}

UnixListener::~UnixListener() {
  close();
  ::unlink(path_.c_str());
}

std::optional<int> UnixListener::accept() {
  for (;;) {
    const int fd = fd_;
    if (fd < 0) return std::nullopt;
    const int c = ::accept(fd, nullptr, nullptr);
    if (c >= 0) return c;
    if (errno == EINTR) continue;
    return std::nullopt;  // listener closed under us
  }
}

void UnixListener::close() {
  if (fd_ >= 0) {
    // shutdown() wakes a blocked accept() portably on Linux.
    ::shutdown(fd_, SHUT_RDWR);
    ::close(fd_);
    fd_ = -1;
  }
}

int connect_unix(const std::string& path) {
  const sockaddr_un addr = make_addr(path);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw Error("socket() failed: " + std::string(strerror(errno)));
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const int err = errno;
    ::close(fd);
    throw Error("connect(" + path + ") failed: " + strerror(err));
  }
  return fd;
}

// ---- serve_unix --------------------------------------------------------

void serve_unix(Server& server, const std::string& path) {
  UnixListener listener(path);
  server.addShutdownHook([&listener] { listener.close(); });

  std::vector<std::thread> conns;
  while (const auto fd = listener.accept()) {
    conns.emplace_back([&server, cfd = *fd] {
      auto stream = std::make_shared<LineStream>(cfd);
      Session& session = server.openSession();
      // Writer: session events -> socket.  Ends when the session closes
      // (server shutdown) or the peer stops reading.
      std::thread writer([stream, &session] {
        while (const auto ev = session.nextEvent())
          if (!stream->writeLine(*ev)) break;
        stream->close();  // wake the reader if the peer is still connected
      });
      // Reader: socket lines -> dispatch, on this connection's thread.
      while (const auto line = stream->readLine()) {
        if (line->empty()) continue;
        session.request(*line);
      }
      session.close();
      writer.join();
    });
  }
  for (auto& t : conns) t.join();
}

}  // namespace swlb::serve
