// Local-socket transport for the `swlb::serve` daemon (DESIGN.md §12).
//
// The Server itself is transport-agnostic (Sessions are in-process
// mailboxes); this layer exposes it over an AF_UNIX stream socket with
// the same line-delimited flat-JSON protocol: one request per line in,
// one event per line out.  Used by the `swlb_serve` example daemon; the
// tests and bench drive Sessions directly and skip the socket.
#pragma once

#include <optional>
#include <string>

namespace swlb::serve {

class Server;

/// Buffered line reader/writer over a connected stream socket fd.
/// Owns the fd; closes it on destruction.
class LineStream {
 public:
  explicit LineStream(int fd) : fd_(fd) {}
  ~LineStream();

  LineStream(const LineStream&) = delete;
  LineStream& operator=(const LineStream&) = delete;

  /// Next '\n'-terminated line (terminator stripped); std::nullopt at
  /// EOF or on a read error.
  std::optional<std::string> readLine();

  /// Write one line + '\n'; false once the peer is gone.
  bool writeLine(const std::string& line);

  /// Shut the socket down (wakes a blocked readLine); idempotent.
  void close();

  int fd() const { return fd_; }

 private:
  int fd_;
  std::string buf_;
};

/// Listening AF_UNIX socket bound at `path` (any stale socket file is
/// replaced).  Unlinks the path on destruction.
class UnixListener {
 public:
  explicit UnixListener(const std::string& path);
  ~UnixListener();

  UnixListener(const UnixListener&) = delete;
  UnixListener& operator=(const UnixListener&) = delete;

  /// Block for the next connection; std::nullopt once close()d.
  std::optional<int> accept();

  /// Stop accepting (wakes a blocked accept); idempotent.
  void close();

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  int fd_;
};

/// Connect to a serve daemon's socket; throws Error on failure.  The
/// returned fd is owned by the caller (hand it to a LineStream).
int connect_unix(const std::string& path);

/// Run the accept loop for `server` on a socket at `path`: each
/// connection gets a Session, a reader pumping request lines in and a
/// writer pumping event lines out.  Blocks until the server shuts down
/// (a shutdown hook closes the listener), then joins all connection
/// threads.
void serve_unix(Server& server, const std::string& path);

}  // namespace swlb::serve
