// Admission control of the `swlb::serve` daemon (DESIGN.md §12): bounded
// active set, bounded backlog queue, per-tenant in-flight caps.  Pure
// bookkeeping — the Server calls it under its own mutex, tests drive it
// directly.
//
// Verdict order for a submit:
//   1. tenant already at its in-flight cap          -> RejectTenantCap
//   2. active set below maxActive                   -> Admit
//   3. backlog below maxQueueDepth                  -> Enqueue (FIFO)
//   4. otherwise                                    -> RejectQueueFull
//
// "In flight" counts a tenant's admitted-or-queued jobs until they reach
// Done/Failed, so a tenant cannot sidestep its cap by flooding the
// backlog.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <string>

#include "core/common.hpp"

namespace swlb::serve {

struct JobQueueLimits {
  std::size_t maxActive = 8;       ///< jobs multiplexed by the scheduler
  std::size_t maxQueueDepth = 64;  ///< backlog bound beyond the active set
  std::size_t maxPerTenant = 8;    ///< one tenant's admitted+queued jobs
};

class JobQueue {
 public:
  using Limits = JobQueueLimits;

  enum class Admission { Admit, Enqueue, RejectTenantCap, RejectQueueFull };

  static const char* admission_name(Admission a) {
    switch (a) {
      case Admission::Admit: return "admit";
      case Admission::Enqueue: return "enqueue";
      case Admission::RejectTenantCap: return "tenant_cap";
      case Admission::RejectQueueFull: return "queue_full";
    }
    return "?";
  }

  explicit JobQueue(const Limits& lim = {}) : lim_(lim) {
    if (lim_.maxActive < 1) throw Error("JobQueue: maxActive must be >= 1");
  }

  /// Decide (and record) the fate of a new job.  On Admit the job joins
  /// the active set immediately; on Enqueue it waits in FIFO order for
  /// promote().  Rejections record nothing.
  Admission admit(std::uint64_t id, const std::string& tenant) {
    if (inFlight(tenant) >= lim_.maxPerTenant)
      return Admission::RejectTenantCap;
    if (active_ < lim_.maxActive) {
      ++active_;
      ++tenantInFlight_[tenant];
      return Admission::Admit;
    }
    if (queued_.size() >= lim_.maxQueueDepth) return Admission::RejectQueueFull;
    queued_.push_back(id);
    ++tenantInFlight_[tenant];
    return Admission::Enqueue;
  }

  /// Move the oldest queued job into the active set when capacity allows.
  std::optional<std::uint64_t> promote() {
    if (active_ >= lim_.maxActive || queued_.empty()) return std::nullopt;
    const std::uint64_t id = queued_.front();
    queued_.pop_front();
    ++active_;
    return id;
  }

  /// A previously admitted job reached Done/Failed: release its active
  /// slot and its tenant's in-flight share.
  void finish(const std::string& tenant) {
    SWLB_ASSERT(active_ > 0);
    --active_;
    const auto it = tenantInFlight_.find(tenant);
    SWLB_ASSERT(it != tenantInFlight_.end() && it->second > 0);
    if (--it->second == 0) tenantInFlight_.erase(it);
  }

  std::size_t active() const { return active_; }
  std::size_t queueDepth() const { return queued_.size(); }
  std::size_t inFlight(const std::string& tenant) const {
    const auto it = tenantInFlight_.find(tenant);
    return it == tenantInFlight_.end() ? 0 : it->second;
  }
  const Limits& limits() const { return lim_; }

 private:
  Limits lim_;
  std::size_t active_ = 0;
  std::deque<std::uint64_t> queued_;
  std::map<std::string, std::size_t> tenantInFlight_;
};

}  // namespace swlb::serve
