// Wire format of the `swlb::serve` protocol (DESIGN.md §12): one JSON
// object per newline-terminated line, *flat* — string keys mapping to
// string / number / boolean values only.  Nested objects and arrays are
// rejected on decode so both ends stay trivially auditable; structured
// payloads (a job's case description) travel as dotted key prefixes
// ("cfg.case", "cfg.nx", ...).  Encoding sorts keys (std::map) so equal
// maps serialize to byte-equal lines.
#pragma once

#include <map>
#include <string>
#include <string_view>

#include "core/common.hpp"

namespace swlb::serve {

/// One protocol field value: a tagged string / number / boolean.
struct WireValue {
  enum class Kind { String, Number, Bool };

  Kind kind = Kind::String;
  std::string str;
  double num = 0;
  bool boolean = false;

  static WireValue ofString(std::string s) {
    WireValue v;
    v.kind = Kind::String;
    v.str = std::move(s);
    return v;
  }
  static WireValue ofNumber(double n) {
    WireValue v;
    v.kind = Kind::Number;
    v.num = n;
    return v;
  }
  static WireValue ofBool(bool b) {
    WireValue v;
    v.kind = Kind::Bool;
    v.boolean = b;
    return v;
  }

  /// The value as config-file text: strings verbatim, numbers with
  /// integers printed exactly ("16", not "16.000000"), bools true/false.
  std::string asText() const;
};

using WireMap = std::map<std::string, WireValue>;

/// Serialize to a single JSON line (no trailing newline).  Byte-stable:
/// sorted keys, deterministic number formatting.
std::string encode_line(const WireMap& m);

/// Parse one line back into a map.  Throws Error on anything outside the
/// flat grammar: nested objects/arrays, unterminated strings, unknown
/// escapes, trailing garbage.
WireMap decode_line(std::string_view line);

// ---- typed accessors (throwing forms name the missing/mistyped key) ----

const WireValue* wire_find(const WireMap& m, const std::string& key);
std::string wire_string(const WireMap& m, const std::string& key);
std::string wire_string(const WireMap& m, const std::string& key,
                        const std::string& fallback);
double wire_number(const WireMap& m, const std::string& key);
double wire_number(const WireMap& m, const std::string& key, double fallback);

}  // namespace swlb::serve
