// `swlb::serve` — the multi-tenant simulation service (DESIGN.md §12).
//
// A Server owns a pool of worker threads that multiplex many submitted
// simulation jobs over a bounded set of resident solver instances:
//
//   * admission control (JobQueue): bounded active set, bounded backlog,
//     per-tenant in-flight caps — saturation queues, overflow rejects;
//   * fair-share scheduling (Scheduler): strict round-robin over active
//     jobs, one step quantum per turn, priorities scale quantum length;
//   * checkpoint-backed eviction: when more jobs are active than
//     `maxResident` solver instances fit, the least-soon-to-run resident
//     job is saved to a v2 checkpoint and its solver freed; the next
//     scheduling turn rebuilds the case and restores the checkpoint —
//     a bit-identical continuation (proven by test_serve);
//   * per-job crash isolation, following ResilientRunner's rollback
//     ladder at single-job scope: a quantum that throws or trips the
//     NaN/mass guard rolls just that job back to its newest on-disk
//     state (or a fresh rebuild), bounded by `maxRecoveries`, and never
//     takes down the daemon or other jobs;
//   * progress streaming: every lifecycle transition is pushed to the
//     submitting session as a flat JSON event line, and per-tenant
//     accounting flows through MetricsRegistry::scoped("serve.tenant").
//
// Thread model: client/reader threads call Session::request (dispatch
// holds the server mutex briefly); workers hold the mutex for scheduling
// decisions and eviction/resume I/O but release it for the quantum
// itself, so quanta from different jobs overlap across workers.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/solver.hpp"
#include "obs/context.hpp"
#include "serve/job.hpp"
#include "serve/queue.hpp"
#include "serve/scheduler.hpp"
#include "serve/wire.hpp"

namespace swlb::serve {

class Server;

/// One client connection: requests go in (dispatched on the calling
/// thread), event lines come out of a thread-safe outbox.  Created by
/// Server::openSession; lives until the Server is destroyed.
class Session {
 public:
  std::uint64_t id() const { return id_; }

  /// Parse + dispatch one protocol line; responses and later lifecycle
  /// events appear in the outbox.  Malformed lines produce an "error"
  /// event instead of throwing.
  void request(const std::string& line);

  /// Blocking pop of the next event line; std::nullopt once the session
  /// is closed and drained.
  std::optional<std::string> nextEvent();
  /// Non-blocking variant.
  std::optional<std::string> tryNextEvent();

  /// Stop receiving events (pending ones stay readable); idempotent.
  void close();

 private:
  friend class Server;
  Session(Server* server, std::uint64_t id) : server_(server), id_(id) {}

  void push(const std::string& line);

  Server* server_;
  std::uint64_t id_;
  std::mutex m_;
  std::condition_variable cv_;
  std::deque<std::string> outbox_;
  bool closed_ = false;
};

struct ServerConfig {
  int workers = 2;              ///< worker threads executing step quanta
  std::uint64_t quantumSteps = 25;  ///< steps per quantum at priority 1
  std::size_t maxResident = 4;  ///< solver instances alive simultaneously
  JobQueue::Limits admission;   ///< active/backlog/per-tenant bounds
  std::string checkpointDir = ".";  ///< eviction + rollback checkpoints
  /// Per-job rollback budget before the job is Failed (rung 2 of the
  /// ladder; rung 3 — losing the whole daemon — never happens for a
  /// job-local fault).
  int maxRecoveries = 1;
  /// Write a rollback checkpoint every K quanta (0: only evictions leave
  /// on-disk state, so an un-evicted faulting job restarts from step 0).
  std::uint64_t checkpointQuanta = 0;
  /// > 0 arms the per-residency mass-drift guard (closed cases only);
  /// the NaN/finite guard is always on.
  double massTolerance = 0;
  /// Start with workers parked until resume() — deterministic admission
  /// tests submit a burst before any job runs.
  bool startPaused = false;
  obs::MetricsRegistry* metrics = nullptr;  ///< external registry (else owned)
  obs::Tracer* tracer = nullptr;
  /// Test hook, mirrors ResilientRunnerConfig::beforeStep: called on the
  /// worker right before a job's quantum (solver, job id, steps done).
  std::function<void(Solver<D3Q19>&, std::uint64_t, std::uint64_t)>
      beforeQuantum;
};

class Server {
 public:
  explicit Server(const ServerConfig& cfg = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Open a client session.  The reference stays valid for the server's
  /// lifetime.
  Session& openSession();

  /// Release workers parked by ServerConfig::startPaused.
  void resume();

  /// Stop accepting work, park workers after their current quantum, run
  /// shutdown hooks, close every session, and sweep checkpoint files of
  /// jobs that never finished.  Idempotent; also run by the destructor.
  void shutdown();
  bool shuttingDown() const;

  /// Called (outside the server mutex) when shutdown begins — transports
  /// register listener-closing callbacks here.
  void addShutdownHook(std::function<void()> hook);

  /// Read-only view of every job ever submitted (admitted or queued).
  std::vector<JobInfo> snapshot() const;

  obs::MetricsRegistry& metrics() { return *metrics_; }
  const ServerConfig& config() const { return cfg_; }

 private:
  friend class Session;

  struct Job {
    std::uint64_t id = 0;
    JobSpec spec;
    JobState state = JobState::Queued;
    std::unique_ptr<Solver<D3Q19>> solver;  ///< non-null while resident
    bool onDisk = false;          ///< checkpoint file holds newest state
    std::uint64_t lastCkptStep = 0;
    std::uint64_t stepsDone = 0;
    std::uint64_t quantaDone = 0;
    int recoveries = 0;
    double mass0 = 0;             ///< guard baseline for this residency
    std::uint64_t sessionId = 0;  ///< owner for event delivery
    std::chrono::steady_clock::time_point tSubmit;
    bool firstStepDone = false;
    double ttfsSeconds = 0;       ///< submit -> first completed step
  };

  void dispatch(Session& s, const std::string& line);
  void handleSubmit(Session& s, const WireMap& req);
  void handleStatus(Session& s, const WireMap& req);
  void handleStats(Session& s);

  void workerLoop(int index);
  /// Can the front-of-rotation job run right now?  True when it is
  /// resident, a resident slot is free, or an evictable victim exists —
  /// workers test this BEFORE popping so no worker ever holds a popped
  /// job while blocked (preserves round-robin order).
  bool frontRunnableLocked() const;
  /// Materialize a solver for `j` (build the case; restore its checkpoint
  /// when one exists), evicting victims while the resident set is full.
  /// Returns false when the job failed to build or the server stopped.
  bool makeResident(Job& j, std::unique_lock<std::mutex>& lk);
  void evict(Job& victim);
  void saveJobCheckpoint(Job& j);
  void handleFault(Job& j, const std::string& reason);
  void finishJob(Job& j, std::uint64_t stateHash);
  void failJob(Job& j, const std::string& reason);
  void releaseResidency(Job& j);
  void promoteQueued();
  void updateGauges();
  std::string checkpointPath(std::uint64_t id) const;

  void emit(std::uint64_t sessionId, const WireMap& event);

  ServerConfig cfg_;
  std::unique_ptr<obs::MetricsRegistry> ownedMetrics_;
  obs::MetricsRegistry* metrics_;

  mutable std::mutex m_;
  std::condition_variable cv_;
  bool stop_ = false;
  bool paused_ = false;
  std::uint64_t nextJobId_ = 1;
  std::uint64_t nextSessionId_ = 1;
  std::size_t residentCount_ = 0;
  JobQueue queue_;
  Scheduler sched_;
  std::map<std::uint64_t, std::unique_ptr<Job>> jobs_;
  std::map<std::uint64_t, std::unique_ptr<Session>> sessions_;
  std::vector<std::function<void()>> shutdownHooks_;
  std::vector<std::thread> workers_;
  std::mutex joinM_;  ///< serializes the join in shutdown(); never nested in m_
  bool joined_ = false;
};

}  // namespace swlb::serve
