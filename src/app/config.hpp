// Simple key = value configuration files for the CLI driver — the
// "outline described directly inside SunwayLB" input path of the paper's
// pre-processing module (§IV-B).
//
// Format: one `key = value` per line; '#' starts a comment; keys are
// case-sensitive.  Typed getters validate on access.
#pragma once

#include <iosfwd>
#include <map>
#include <string>

#include "core/common.hpp"

namespace swlb::app {

class Config {
 public:
  Config() = default;

  /// Parse from a stream/file; throws Error on malformed lines.
  static Config parse(std::istream& in);
  static Config load(const std::string& path);

  bool has(const std::string& key) const { return values_.count(key) > 0; }

  /// Typed getters: the defaulted forms return `fallback` when the key is
  /// absent; the strict forms throw.
  std::string getString(const std::string& key) const;
  std::string getString(const std::string& key, const std::string& fallback) const;
  long getInt(const std::string& key) const;
  long getInt(const std::string& key, long fallback) const;
  double getReal(const std::string& key) const;
  double getReal(const std::string& key, double fallback) const;
  bool getBool(const std::string& key, bool fallback) const;

  void set(const std::string& key, const std::string& value) {
    values_[key] = value;
  }

  std::size_t size() const { return values_.size(); }

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace swlb::app
