#include "app/cases.hpp"

#include <cmath>
#include <numbers>

#include "mesh/urban.hpp"
#include "mesh/voxelizer.hpp"

namespace swlb::app {

CollisionConfig collision_from_config(const Config& cfg) {
  CollisionConfig col;
  if (cfg.has("omega")) {
    col.omega = cfg.getReal("omega");
  } else if (cfg.has("tau")) {
    col.omega = omega_from_tau(cfg.getReal("tau"));
  } else if (cfg.has("viscosity")) {
    col.omega = omega_from_tau(tau_from_viscosity(cfg.getReal("viscosity")));
  } else {
    col.omega = 1.5;
  }
  if (col.omega <= 0 || col.omega >= 2) {
    throw Error("config: omega = " + std::to_string(col.omega) +
                " outside the stable (0, 2) range");
  }
  const std::string op = cfg.getString("operator", "bgk");
  if (op == "bgk")
    col.op = CollisionOp::BGK;
  else if (op == "trt")
    col.op = CollisionOp::TRT;
  else if (op == "mrt")
    col.op = CollisionOp::MRT;
  else
    throw Error("config: unknown operator '" + op + "' (bgk|trt|mrt)");
  col.les = cfg.getBool("les", false);
  col.smagorinskyCs = cfg.getReal("smagorinsky_cs", 0.14);
  if (col.les && col.op != CollisionOp::BGK)
    throw Error("config: LES requires the BGK operator");
  return col;
}

namespace {

Int3 sizeFrom(const Config& cfg, int dx, int dy, int dz) {
  return {static_cast<int>(cfg.getInt("nx", dx)),
          static_cast<int>(cfg.getInt("ny", dy)),
          static_cast<int>(cfg.getInt("nz", dz))};
}

Case buildCavity(const Config& cfg) {
  const Int3 n = sizeFrom(cfg, 48, 48, 48);
  Case c;
  c.name = "cavity";
  c.uRef = cfg.getReal("lid_velocity", 0.05);
  c.solver = std::make_unique<Solver<D3Q19>>(Grid(n.x, n.y, n.z),
                                             collision_from_config(cfg));
  const auto lid = c.solver->materials().addMovingWall({c.uRef, 0, 0});
  c.solver->paint({{0, 0, n.z - 1}, {n.x, n.y, n.z}}, lid);
  c.solver->finalizeMask();
  c.solver->initUniform(1.0, {0, 0, 0});
  return c;
}

Case buildChannel(const Config& cfg) {
  const Int3 n = sizeFrom(cfg, 8, 32, 8);
  Case c;
  c.name = "channel";
  const Real g = cfg.getReal("body_force", 1e-6);
  CollisionConfig col = collision_from_config(cfg);
  col.bodyForce = {g, 0, 0};
  c.solver = std::make_unique<Solver<D3Q19>>(Grid(n.x, n.y, n.z), col,
                                             Periodicity{true, false, true});
  c.solver->finalizeMask();
  c.solver->initUniform(1.0, {0, 0, 0});
  const Real nu = viscosity_from_tau(1.0 / col.omega);
  c.uRef = g / (8 * nu) * n.y * n.y;  // centreline Poiseuille velocity
  return c;
}

Case buildCylinder(const Config& cfg) {
  const Int3 n = sizeFrom(cfg, 120, 60, 12);
  Case c;
  c.name = "cylinder";
  c.uRef = cfg.getReal("inlet_velocity", 0.05);
  c.solver = std::make_unique<Solver<D3Q19>>(Grid(n.x, n.y, n.z),
                                             collision_from_config(cfg),
                                             Periodicity{false, false, true});
  auto& s = *c.solver;
  const auto inlet = s.materials().addVelocityInlet({c.uRef, 0, 0});
  const auto outlet = s.materials().addOutflow({-1, 0, 0});
  s.paint({{0, 0, 0}, {1, n.y, n.z}}, inlet);
  s.paint({{n.x - 1, 0, 0}, {n.x, n.y, n.z}}, outlet);
  c.obstacleId = s.materials().add(
      Material{CellClass::Solid, {0, 0, 0}, 1.0, {0, 0, 0}});
  const Real d = cfg.getReal("diameter", n.y / 5.0);
  const Real cx = n.x / 4.0, cy = n.y / 2.0 + 0.5;
  for (int y = 0; y < n.y; ++y)
    for (int x = 0; x < n.x; ++x) {
      const Real ddx = x + 0.5 - cx, ddy = y + 0.5 - cy;
      if (ddx * ddx + ddy * ddy < d * d / 4)
        for (int z = 0; z < n.z; ++z) s.mask()(x, y, z) = c.obstacleId;
    }
  s.finalizeMask();
  s.initUniform(1.0, {c.uRef, 0, 0});
  return c;
}

Case buildTgv(const Config& cfg) {
  const Int3 n = sizeFrom(cfg, 32, 32, 1);
  Case c;
  c.name = "tgv";
  c.uRef = cfg.getReal("amplitude", 0.02);
  c.solver = std::make_unique<Solver<D3Q19>>(Grid(n.x, n.y, n.z),
                                             collision_from_config(cfg),
                                             Periodicity{true, true, true});
  c.solver->finalizeMask();
  const Real kx = 2 * std::numbers::pi_v<Real> / n.x;
  const Real ky = 2 * std::numbers::pi_v<Real> / n.y;
  const Real a = c.uRef;
  c.solver->initField([&](int x, int y, int, Real& rho, Vec3& u) {
    rho = 1.0;
    u = {-a * std::cos(kx * (x + Real(0.5))) * std::sin(ky * (y + Real(0.5))),
         a * std::sin(kx * (x + Real(0.5))) * std::cos(ky * (y + Real(0.5))), 0};
  });
  return c;
}

Case buildSuboff(const Config& cfg) {
  const Int3 n = sizeFrom(cfg, 128, 40, 40);
  Case c;
  c.name = "suboff";
  c.uRef = cfg.getReal("inlet_velocity", 0.05);
  c.solver = std::make_unique<Solver<D3Q19>>(Grid(n.x, n.y, n.z),
                                             collision_from_config(cfg),
                                             Periodicity{false, true, true});
  auto& s = *c.solver;
  const auto inlet = s.materials().addVelocityInlet({c.uRef, 0, 0});
  const auto outlet = s.materials().addOutflow({-1, 0, 0});
  s.paint({{0, 0, 0}, {1, n.y, n.z}}, inlet);
  s.paint({{n.x - 1, 0, 0}, {n.x, n.y, n.z}}, outlet);
  c.obstacleId = s.materials().add(
      Material{CellClass::Solid, {0, 0, 0}, 1.0, {0, 0, 0}, 0});
  const int hullLen = static_cast<int>(cfg.getInt("hull_length", n.x / 2));
  const Real maxR = cfg.getReal("hull_radius", hullLen / 12.0);
  const mesh::TriangleMesh hull = mesh::make_suboff(hullLen, maxR);
  const int pad = static_cast<int>(maxR) + 1;
  const mesh::VoxelGrid vox = mesh::voxelize(
      hull, {hullLen, 2 * pad, 2 * pad}, {0, -static_cast<Real>(pad),
      -static_cast<Real>(pad)}, 1.0);
  vox.paint(s.mask(), c.obstacleId, {n.x / 4, n.y / 2 - pad, n.z / 2 - pad});
  s.finalizeMask();
  s.initUniform(1.0, {c.uRef, 0, 0});
  return c;
}

Case buildUrban(const Config& cfg) {
  const Int3 n = sizeFrom(cfg, 96, 72, 30);
  Case c;
  c.name = "urban";
  c.uRef = cfg.getReal("inlet_velocity", 0.06);
  CollisionConfig col = collision_from_config(cfg);
  if (!cfg.has("les")) col.les = true;  // urban wind is an LES case
  c.solver = std::make_unique<Solver<D3Q19>>(Grid(n.x, n.y, n.z), col,
                                             Periodicity{false, true, false});
  auto& s = *c.solver;
  const auto inlet = s.materials().addVelocityInlet({c.uRef, 0, 0});
  const auto outlet = s.materials().addOutflow({-1, 0, 0});
  s.paint({{0, 0, 0}, {1, n.y, n.z}}, inlet);
  s.paint({{n.x - 1, 0, 0}, {n.x, n.y, n.z}}, outlet);
  c.obstacleId = s.materials().add(
      Material{CellClass::Solid, {0, 0, 0}, 1.0, {0, 0, 0}, 0});
  mesh::UrbanConfig city;
  city.blockCells = static_cast<int>(cfg.getInt("block_cells", n.x / 10));
  city.streetCells = static_cast<int>(cfg.getInt("street_cells", n.x / 20));
  city.minHeight = static_cast<Real>(n.z) / 8;
  city.maxHeight = static_cast<Real>(n.z) / 2;
  city.seed = static_cast<unsigned>(cfg.getInt("seed", 7));
  mesh::make_urban_heightmap(n.x, n.y, city).paint(s.mask(), c.obstacleId);
  s.finalizeMask();
  s.initUniform(1.0, {c.uRef, 0, 0});
  return c;
}

}  // namespace

Case build_case(const Config& cfg) {
  const std::string name = cfg.getString("case");
  if (name == "cavity") return buildCavity(cfg);
  if (name == "channel") return buildChannel(cfg);
  if (name == "cylinder") return buildCylinder(cfg);
  if (name == "tgv") return buildTgv(cfg);
  if (name == "suboff") return buildSuboff(cfg);
  if (name == "urban") return buildUrban(cfg);
  throw Error("config: unknown case '" + name +
              "' (cavity|channel|cylinder|tgv|suboff|urban)");
}

}  // namespace swlb::app
