#include "app/config.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

namespace swlb::app {

namespace {

std::string trim(const std::string& s) {
  const auto b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return "";
  const auto e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

}  // namespace

Config Config::parse(std::istream& in) {
  Config cfg;
  std::string line;
  int lineNo = 0;
  while (std::getline(in, line)) {
    ++lineNo;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    const std::string t = trim(line);
    if (t.empty()) continue;
    const auto eq = t.find('=');
    if (eq == std::string::npos) {
      throw Error("Config: line " + std::to_string(lineNo) +
                  " is not 'key = value': '" + t + "'");
    }
    const std::string key = trim(t.substr(0, eq));
    const std::string value = trim(t.substr(eq + 1));
    if (key.empty()) {
      throw Error("Config: empty key on line " + std::to_string(lineNo));
    }
    cfg.values_[key] = value;
  }
  return cfg;
}

Config Config::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("Config: cannot open '" + path + "'");
  return parse(in);
}

std::string Config::getString(const std::string& key) const {
  const auto it = values_.find(key);
  if (it == values_.end()) throw Error("Config: missing key '" + key + "'");
  return it->second;
}

std::string Config::getString(const std::string& key,
                              const std::string& fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

long Config::getInt(const std::string& key) const {
  const std::string v = getString(key);
  try {
    std::size_t pos = 0;
    const long r = std::stol(v, &pos);
    if (pos != v.size()) throw std::invalid_argument(v);
    return r;
  } catch (const std::exception&) {
    throw Error("Config: key '" + key + "' is not an integer: '" + v + "'");
  }
}

long Config::getInt(const std::string& key, long fallback) const {
  return has(key) ? getInt(key) : fallback;
}

double Config::getReal(const std::string& key) const {
  const std::string v = getString(key);
  try {
    std::size_t pos = 0;
    const double r = std::stod(v, &pos);
    if (pos != v.size()) throw std::invalid_argument(v);
    return r;
  } catch (const std::exception&) {
    throw Error("Config: key '" + key + "' is not a number: '" + v + "'");
  }
}

double Config::getReal(const std::string& key, double fallback) const {
  return has(key) ? getReal(key) : fallback;
}

bool Config::getBool(const std::string& key, bool fallback) const {
  if (!has(key)) return fallback;
  std::string v = getString(key);
  std::transform(v.begin(), v.end(), v.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  throw Error("Config: key '" + key + "' is not a boolean: '" + v + "'");
}

}  // namespace swlb::app
