// Built-in simulation cases for the CLI driver: the "outline described
// directly inside SunwayLB" path — each case sets up geometry, boundary
// conditions and initial state from a Config.
#pragma once

#include <memory>
#include <string>

#include "app/config.hpp"
#include "core/solver.hpp"

namespace swlb::app {

/// A configured, ready-to-run simulation.
struct Case {
  std::string name;
  std::unique_ptr<Solver<D3Q19>> solver;
  /// Obstacle material id for force probes (0 when the case has none).
  std::uint8_t obstacleId = 0;
  /// Characteristic velocity (for output scaling).
  Real uRef = 0.05;
};

/// Build a case from its config.  Recognized `case` values:
/// cavity | channel | cylinder | tgv | suboff | urban.  Throws Error for
/// unknown cases or invalid parameters.
Case build_case(const Config& cfg);

/// The collision setup shared by all cases (omega/tau/operator/LES keys).
CollisionConfig collision_from_config(const Config& cfg);

}  // namespace swlb::app
