#include "core/backend.hpp"

namespace swlb {

// The catalog is the single source of truth for what backends exist and
// what they promise.  scripts/check_docs.py parses the block between the
// BACKEND-CATALOG markers and fails CI when a name here is missing from
// the README "Backends" table or DESIGN.md §14 — keep the `{"name",`
// literal on the first line of each entry.
const std::vector<BackendInfo>& backend_catalog() {
  static const std::vector<BackendInfo> catalog = {
      // BACKEND-CATALOG-BEGIN
      {"fused",
       "optimized SoA fused pull kernel (the bit-identity reference)",
       BackendCaps{.usesHostThreads = true},
       BackendCostHints{}},
      {"generic",
       "portable field-agnostic fused pull kernel (readable reference)",
       BackendCaps{},
       BackendCostHints{.relativeRate = 0.9}},
      {"twostep",
       "separate stream + collide passes (fusion ablation baseline)",
       BackendCaps{.distributed = false},
       BackendCostHints{.relativeRate = 0.7}},
      {"push",
       "fused collide + push streaming (layout ablation baseline)",
       BackendCaps{.distributed = false, .stepConformant = false},
       BackendCostHints{.relativeRate = 0.9}},
      {"simd",
       "vectorized bulk-run fused kernel (#pragma omp simd lanes)",
       BackendCaps{.usesHostThreads = true},
       BackendCostHints{}},
      {"esoteric",
       "in-place Esoteric-Pull streaming, single buffer (0.5x memory)",
       BackendCaps{.inPlaceStreaming = true, .supportsOutflow = false,
                   .usesHostThreads = true},
       BackendCostHints{.memoryFactor = 0.5}},
      {"threads",
       "persistent host thread team over z-slabs (OpenMP when available)",
       BackendCaps{.usesHostThreads = true},
       BackendCostHints{.stepOverheadSeconds = 2e-5}},
      {"swcpe",
       "SW26010 CPE-cluster emulator: 64-CPE y-partition, LDM-blocked DMA",
       BackendCaps{.subRange = false},
       BackendCostHints{.relativeRate = 0.02, .stepOverheadSeconds = 1e-4},
       "D2Q9 D3Q19", "all"},
      // BACKEND-CATALOG-END
  };
  return catalog;
}

const BackendInfo* find_backend_info(const std::string& name) {
  for (const BackendInfo& b : backend_catalog())
    if (b.name == name) return &b;
  return nullptr;
}

KernelVariant kernel_variant_from_name(const std::string& name) {
  for (KernelVariant v :
       {KernelVariant::Fused, KernelVariant::Generic, KernelVariant::TwoStep,
        KernelVariant::Push, KernelVariant::Simd, KernelVariant::Esoteric,
        KernelVariant::Threads, KernelVariant::SwCpe})
    if (name == kernel_variant_name(v)) return v;
  std::string known;
  for (const BackendInfo& b : backend_catalog()) {
    if (!known.empty()) known += ", ";
    known += b.name;
  }
  throw Error("unknown kernel backend '" + name + "' (registered: " + known +
              ")");
}

}  // namespace swlb
