// Explicitly vectorized fused pull kernel (DESIGN.md §11).
//
// The scalar fused kernel spends a large fraction of its time in
// per-direction mask branches that almost never fire: in a typical domain
// all but a surface shell of cells have an all-fluid pull stencil.  This
// variant segments each x-row into maximal *bulk runs* (cells whose full
// stencil is fluid) and runs them through a `#pragma omp simd` lane loop —
// gather, collide and store are branch-free and loop-invariant, so the
// compiler can vectorize across cells of the row.  Cells with any
// non-fluid neighbour fall back to the scalar fused kernel verbatim, which
// makes the variant bit-identical to `stream_collide_fused` for every
// storage precision (the lane body calls the exact same inlined
// collision/equilibrium helpers, so the expression trees — and therefore
// any FMA contraction the compiler applies — match; the conformance suite
// pins this).
//
// Included at the bottom of core/kernels.hpp; do not include directly.
#pragma once

// -fopenmp-simd (added by the top-level CMakeLists when supported) honors
// `#pragma omp simd` without pulling in the OpenMP runtime.  Without it the
// pragma would trip -Wunknown-pragmas under -Werror, so it is gated.  The
// macro precedes the include below so it exists whichever of the three
// kernel headers is included first.
#if defined(SWLB_OPENMP_SIMD)
#define SWLB_PRAGMA_SIMD _Pragma("omp simd")
#else
#define SWLB_PRAGMA_SIMD
#endif

#include "core/kernels.hpp"

namespace swlb {

/// Vectorized fused pull stream + collide over `range`.  Bit-identical to
/// stream_collide_fused for any mask and storage type.
template <class D, class S>
void stream_collide_simd(const PopulationFieldT<S>& src,
                         PopulationFieldT<S>& dst, const MaskField& mask,
                         const MaterialTable& mats, const CollisionConfig& cfg,
                         const Box3& range) {
  using Traits = StorageTraits<S>;
  const Grid& g = src.grid();
  SWLB_ASSERT(dst.grid() == g && mask.grid() == g);

  std::ptrdiff_t off[D::Q];
  std::size_t slab[D::Q];
  Real sh[D::Q];
  for (int i = 0; i < D::Q; ++i) {
    off[i] = static_cast<std::ptrdiff_t>(
        (static_cast<long long>(D::c[i][2]) * g.sy() + D::c[i][1]) * g.sx() +
        D::c[i][0]);
    slab[i] = src.slab(i);
    sh[i] = src.shift(i);
  }

  const S* sdata = src.data();
  S* ddata = dst.data();
  const std::uint8_t* mdata = mask.data();

  auto ld = [&](int i, std::size_t p) -> Real {
    if constexpr (PopulationFieldT<S>::kIdentityStorage)
      return sdata[slab[i] + p];
    else
      return Traits::decode(sdata[slab[i] + p], sh[i]);
  };
  auto st = [&](int i, std::size_t p, Real v) {
    if constexpr (PopulationFieldT<S>::kIdentityStorage)
      ddata[slab[i] + p] = v;
    else
      ddata[slab[i] + p] = Traits::encode(v, sh[i]);
  };

  // A cell is "bulk" when it and every upstream cell of its pull stencil
  // are plain fluid: the gather needs no boundary rules at all.
  auto isBulk = [&](std::size_t p) -> bool {
    if (mdata[p] != MaterialTable::kFluid) return false;
    for (int i = 1; i < D::Q; ++i)
      if (mdata[p - off[i]] != MaterialTable::kFluid) return false;
    return true;
  };

  for (int z = range.lo.z; z < range.hi.z; ++z)
    for (int y = range.lo.y; y < range.hi.y; ++y) {
      const std::size_t rowBase = g.idx(range.lo.x, y, z);
      int x = range.lo.x;
      while (x < range.hi.x) {
        std::size_t p = rowBase + static_cast<std::size_t>(x - range.lo.x);
        int xs = x;
        while (xs < range.hi.x && !isBulk(p)) {
          ++xs;
          ++p;
        }
        if (xs > x)
          stream_collide_fused<D>(src, dst, mask, mats, cfg,
                                  Box3{{x, y, z}, {xs, y + 1, z + 1}});
        int xe = xs;
        while (xe < range.hi.x && isBulk(p)) {
          ++xe;
          ++p;
        }
        const int len = xe - xs;
        if (len > 0) {
          const std::size_t p0 =
              rowBase + static_cast<std::size_t>(xs - range.lo.x);
          SWLB_PRAGMA_SIMD
          for (int lane = 0; lane < len; ++lane) {
            const std::size_t pw = p0 + static_cast<std::size_t>(lane);
            Real fin[D::Q];
            for (int i = 0; i < D::Q; ++i) fin[i] = ld(i, pw - off[i]);
            Real rho;
            Vec3 u;
            collide_cell<D>(fin, cfg, rho, u);
            for (int i = 0; i < D::Q; ++i) st(i, pw, fin[i]);
          }
        }
        x = xe;
      }
    }
}

/// Multithreaded SIMD kernel: disjoint z-slabs, one per host thread, same
/// split as stream_collide_fused_mt (bit-identical for any thread count).
template <class D, class S>
void stream_collide_simd_mt(const PopulationFieldT<S>& src,
                            PopulationFieldT<S>& dst, const MaskField& mask,
                            const MaterialTable& mats,
                            const CollisionConfig& cfg, const Box3& range,
                            int nThreads) {
  const int nz = range.hi.z - range.lo.z;
  if (nThreads <= 1 || nz <= 1) {
    stream_collide_simd<D>(src, dst, mask, mats, cfg, range);
    return;
  }
  nThreads = std::min(nThreads, nz);
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(nThreads));
  for (int t = 0; t < nThreads; ++t) {
    Box3 slab = range;
    slab.lo.z =
        range.lo.z + static_cast<int>(static_cast<long long>(nz) * t / nThreads);
    slab.hi.z = range.lo.z +
                static_cast<int>(static_cast<long long>(nz) * (t + 1) / nThreads);
    workers.emplace_back([&, slab] {
      stream_collide_simd<D>(src, dst, mask, mats, cfg, slab);
    });
  }
  for (auto& w : workers) w.join();
}

}  // namespace swlb
