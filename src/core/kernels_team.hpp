// Persistent host-thread team for the "threads" backend (DESIGN.md §14).
//
// The existing _mt kernel drivers spawn-and-join std::threads on every
// step — correct (z-slab writes are disjoint, bit-identical for any
// thread count) but the fork cost is paid per step.  The thread-team
// backend keeps the workers alive instead:
//
//   * with OpenMP (SWLB_OPENMP, set by CMake when the toolchain has it
//     and no sanitizer is active — libgomp's barriers are opaque to
//     TSan), one `#pragma omp parallel` region per step reuses libgomp's
//     persistent team;
//   * otherwise TeamPool below parks std::threads on a condition
//     variable and wakes them per step — same slab split, same results,
//     and clean under every sanitizer.
//
// Both paths run stream_collide_fused over the identical z-slab
// partition as stream_collide_fused_mt, so the backend inherits its
// bit-identity claim (tests/kernel_conformance.hpp enforces it at 1, 2
// and hardware_concurrency threads).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "core/kernels.hpp"

namespace swlb {

/// The canonical z-slab of thread `t` out of `n` over `range` — the same
/// split stream_collide_fused_mt uses, factored out so every threaded
/// driver partitions identically (a prerequisite for bit-identity claims
/// that quote "the MT segmentation").
inline Box3 team_slab(const Box3& range, int t, int n) {
  const long long nz = range.hi.z - range.lo.z;
  Box3 slab = range;
  slab.lo.z = range.lo.z + static_cast<int>(nz * t / n);
  slab.hi.z = range.lo.z + static_cast<int>(nz * (t + 1) / n);
  return slab;
}

/// Resolve a host-thread request against the hardware: <= 0 means one
/// thread per core (never less than 1), anything else is taken as-is.
inline int resolve_host_threads(int requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

/// Persistent worker pool: N parked std::threads woken per parallelFor
/// call.  The calling thread runs index 0 itself, workers run 1..n-1.
/// All shared state is mutex-protected (sanitizer-clean); the job body
/// runs outside the lock.  Workers are created lazily on first use and
/// grown on demand; idle extras (when a call asks for fewer lanes) skip
/// the round at the barrier.
class TeamPool {
 public:
  TeamPool() = default;
  TeamPool(const TeamPool&) = delete;
  TeamPool& operator=(const TeamPool&) = delete;

  ~TeamPool() {
    std::unique_lock<std::mutex> lock(mu_);
    stop_ = true;
    cvWork_.notify_all();
    lock.unlock();
    for (auto& w : workers_) w.join();
  }

  /// Run fn(t) for every t in [0, n) across the team and return when all
  /// lanes finished.  Not reentrant (one parallelFor at a time per pool
  /// — the solvers' step hooks never overlap, see KernelBackend docs).
  void parallelFor(int n, const std::function<void(int)>& fn) {
    if (n <= 1) {
      fn(0);
      return;
    }
    {
      std::unique_lock<std::mutex> lock(mu_);
      while (static_cast<int>(workers_.size()) < n - 1) {
        const int index = static_cast<int>(workers_.size()) + 1;
        workers_.emplace_back([this, index] { workerLoop(index); });
      }
      job_ = &fn;
      active_ = n;
      pending_ = n - 1;
      ++epoch_;
      cvWork_.notify_all();
    }
    fn(0);
    std::unique_lock<std::mutex> lock(mu_);
    cvDone_.wait(lock, [this] { return pending_ == 0; });
    job_ = nullptr;
  }

 private:
  void workerLoop(int index) {
    std::uint64_t seen = 0;
    while (true) {
      const std::function<void(int)>* job = nullptr;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cvWork_.wait(lock, [&] { return stop_ || epoch_ != seen; });
        if (stop_) return;
        seen = epoch_;
        if (index < active_) job = job_;
      }
      if (job) (*job)(index);
      {
        std::unique_lock<std::mutex> lock(mu_);
        if (index < active_ && --pending_ == 0) cvDone_.notify_all();
      }
    }
  }

  std::mutex mu_;
  std::condition_variable cvWork_, cvDone_;
  std::vector<std::thread> workers_;
  const std::function<void(int)>* job_ = nullptr;
  std::uint64_t epoch_ = 0;
  int active_ = 0;
  int pending_ = 0;
  bool stop_ = false;
};

}  // namespace swlb
