#include "core/collision_ops.hpp"

namespace swlb {

namespace {

/// Build the 19 orthogonal moment rows from their defining polynomials in
/// (cx, cy, cz) — evaluated over *our* velocity ordering, which avoids
/// transcription errors against tables using a different ordering.
struct MatrixData {
  int m[19][19];
  int norm[19];

  MatrixData() {
    for (int i = 0; i < 19; ++i) {
      const int cx = D3Q19::c[i][0];
      const int cy = D3Q19::c[i][1];
      const int cz = D3Q19::c[i][2];
      const int c2 = cx * cx + cy * cy + cz * cz;
      int col[19];
      col[0] = 1;                                      // rho
      col[1] = 19 * c2 - 30;                           // e
      col[2] = (21 * c2 * c2 - 53 * c2 + 24) / 2;      // epsilon
      col[3] = cx;                                     // jx
      col[4] = (5 * c2 - 9) * cx;                      // qx
      col[5] = cy;                                     // jy
      col[6] = (5 * c2 - 9) * cy;                      // qy
      col[7] = cz;                                     // jz
      col[8] = (5 * c2 - 9) * cz;                      // qz
      col[9] = 3 * cx * cx - c2;                       // 3 pxx
      col[10] = (3 * c2 - 5) * (3 * cx * cx - c2);     // 3 pi_xx
      col[11] = cy * cy - cz * cz;                     // p_ww
      col[12] = (3 * c2 - 5) * (cy * cy - cz * cz);    // pi_ww
      col[13] = cx * cy;                               // p_xy
      col[14] = cy * cz;                               // p_yz
      col[15] = cx * cz;                               // p_xz
      col[16] = (cy * cy - cz * cz) * cx;              // m_x
      col[17] = (cz * cz - cx * cx) * cy;              // m_y
      col[18] = (cx * cx - cy * cy) * cz;              // m_z
      for (int row = 0; row < 19; ++row) m[row][i] = col[row];
    }
    for (int row = 0; row < 19; ++row) {
      norm[row] = 0;
      for (int i = 0; i < 19; ++i) norm[row] += m[row][i] * m[row][i];
    }
  }
};

const MatrixData& matrixData() {
  static const MatrixData data;
  return data;
}

}  // namespace

const int (&MrtD3Q19::matrix())[19][19] { return matrixData().m; }
const int (&MrtD3Q19::rowNorms())[19] { return matrixData().norm; }

void MrtD3Q19::collide(Real* f, const Rates& rates, Real& rho_out, Vec3& u_out) {
  using D = D3Q19;
  const MatrixData& M = matrixData();

  Real rho;
  Vec3 mom;
  moments<D>(f, rho, mom);
  const Real inv_rho = Real(1) / rho;
  const Vec3 u{mom.x * inv_rho, mom.y * inv_rho, mom.z * inv_rho};

  Real feq[D::Q];
  equilibria<D>(rho, u, feq);

  // Per-moment relaxation rates (conserved moments stay untouched).
  const Real s[19] = {0,          rates.s_e, rates.s_eps, 0,         rates.s_q,
                      0,          rates.s_q, 0,           rates.s_q, rates.s_nu,
                      rates.s_pi, rates.s_nu, rates.s_pi, rates.s_nu, rates.s_nu,
                      rates.s_nu, rates.s_m, rates.s_m,   rates.s_m};

  // Moment-space relaxation: delta_m[k] = s[k] * (M feq - M f)[k].
  Real dm[19];
  for (int k = 0; k < 19; ++k) {
    if (s[k] == 0) {
      dm[k] = 0;
      continue;
    }
    Real mk = 0;
    for (int i = 0; i < 19; ++i) mk += M.m[k][i] * (feq[i] - f[i]);
    dm[k] = s[k] * mk / M.norm[k];
  }
  // Back-transform with the orthogonal inverse: f += M^T diag(1/norm) dm
  // (the 1/norm is already folded into dm above).
  for (int i = 0; i < 19; ++i) {
    Real df = 0;
    for (int k = 0; k < 19; ++k) df += M.m[k][i] * dm[k];
    f[i] += df;
  }

  rho_out = rho;
  u_out = u;
}

}  // namespace swlb
