// Second-order Maxwell-Boltzmann equilibrium for the LBGK model (paper Eq. 1).
#pragma once

#include "core/common.hpp"
#include "core/lattice.hpp"

namespace swlb {

/// Equilibrium distribution in direction i:
///   f_i^eq = w_i rho (1 + 3 (c_i.u) + 4.5 (c_i.u)^2 - 1.5 u^2)
template <class D>
constexpr Real equilibrium(int i, Real rho, const Vec3& u) {
  const Real cu = D::c[i][0] * u.x + D::c[i][1] * u.y + D::c[i][2] * u.z;
  const Real u2 = u.norm2();
  return D::w[i] * rho * (Real(1) + Real(3) * cu + Real(4.5) * cu * cu - Real(1.5) * u2);
}

/// All Q equilibria at once (shared u^2 term).
template <class D>
constexpr void equilibria(Real rho, const Vec3& u, Real* out) {
  const Real u2term = Real(1.5) * u.norm2();
  for (int i = 0; i < D::Q; ++i) {
    const Real cu = D::c[i][0] * u.x + D::c[i][1] * u.y + D::c[i][2] * u.z;
    out[i] = D::w[i] * rho * (Real(1) + Real(3) * cu + Real(4.5) * cu * cu - u2term);
  }
}

/// Density and momentum moments of a population vector.
template <class D>
constexpr void moments(const Real* f, Real& rho, Vec3& mom) {
  rho = 0;
  mom = {0, 0, 0};
  for (int i = 0; i < D::Q; ++i) {
    rho += f[i];
    mom.x += f[i] * D::c[i][0];
    mom.y += f[i] * D::c[i][1];
    mom.z += f[i] * D::c[i][2];
  }
}

}  // namespace swlb
