// Backward-compatible shim: StepProfiler moved into the observability
// layer (obs/step_profiler.hpp) where it is the step-level aggregate next
// to the per-phase Tracer and MetricsRegistry.  Include obs/ directly in
// new code.
#pragma once

#include "obs/step_profiler.hpp"
