// Population and scalar fields over a halo-padded Cartesian grid.
//
// The production layout is structure-of-arrays (SoA): all populations of
// one direction are contiguous, which is what makes the DMA transfers of
// the CPE kernels contiguous (paper §IV-A/C).  An array-of-structures
// (AoS) field is provided as the baseline the paper argues against.
//
// Populations can be *stored* in reduced precision (float / f16) while
// all arithmetic stays in Real: PopulationFieldT<S> keeps one storage
// element per population and decodes/encodes through the weight-shifted
// transform of core/precision.hpp on every access.  PopulationField is
// the identity (double) instantiation, whose accessors return plain
// Real& and whose bytes are bit-compatible with the historical format.
#pragma once

#include <type_traits>
#include <vector>

#include "core/common.hpp"
#include "core/precision.hpp"

namespace swlb {

/// Local Cartesian grid: nx*ny*nz interior cells plus a halo layer of
/// configurable width on every side.  Interior coordinates run over
/// [0, n); halo cells have coordinates in [-halo, 0) or [n, n+halo).
struct Grid {
  int nx = 0, ny = 0, nz = 0;
  int halo = 1;

  constexpr Grid() = default;
  constexpr Grid(int nx_, int ny_, int nz_, int halo_ = 1)
      : nx(nx_), ny(ny_), nz(nz_), halo(halo_) {}

  constexpr int sx() const { return nx + 2 * halo; }
  constexpr int sy() const { return ny + 2 * halo; }
  constexpr int sz() const { return nz + 2 * halo; }
  constexpr std::size_t volume() const {
    return static_cast<std::size_t>(sx()) * sy() * sz();
  }
  constexpr std::size_t interiorVolume() const {
    return static_cast<std::size_t>(nx) * ny * nz;
  }

  /// Linear index of cell (x, y, z); x is the fastest-varying axis.
  constexpr std::size_t idx(int x, int y, int z) const {
    SWLB_ASSERT(x >= -halo && x < nx + halo);
    SWLB_ASSERT(y >= -halo && y < ny + halo);
    SWLB_ASSERT(z >= -halo && z < nz + halo);
    return (static_cast<std::size_t>(z + halo) * sy() + (y + halo)) * sx() +
           (x + halo);
  }

  constexpr Box3 interior() const { return {{0, 0, 0}, {nx, ny, nz}}; }
  constexpr Box3 withHalo() const {
    return {{-halo, -halo, -halo}, {nx + halo, ny + halo, nz + halo}};
  }
  friend constexpr bool operator==(const Grid&, const Grid&) = default;
};

namespace detail {

/// Writable view of one stored population: decodes to Real on read,
/// encodes (with the direction's weight shift) on write.  Returned by the
/// non-const accessors of reduced-precision fields so existing kernel
/// code (`dst(i, x, y, z) = v`, `f(i, x, y, z) += d`) works unchanged.
template <class S>
class StorageRef {
 public:
  StorageRef(S* p, Real shift) : p_(p), shift_(shift) {}

  operator Real() const { return StorageTraits<S>::decode(*p_, shift_); }
  StorageRef& operator=(Real v) {
    *p_ = StorageTraits<S>::encode(v, shift_);
    return *this;
  }
  StorageRef& operator=(const StorageRef& o) {
    return *this = static_cast<Real>(o);
  }
  StorageRef& operator+=(Real v) { return *this = static_cast<Real>(*this) + v; }
  StorageRef& operator-=(Real v) { return *this = static_cast<Real>(*this) - v; }

 private:
  S* p_;
  Real shift_;
};

}  // namespace detail

/// SoA population field: f[q] is one contiguous block over the grid.
///
/// `S` is the storage element type (double, float, or f16).  Reads decode
/// `Real(stored) + shift[q]`, writes encode `S(value - shift[q])`; the
/// per-direction shift is normally the lattice weight (setShift(D::w)).
/// Identity storage (S == Real) bypasses the transform entirely — raw
/// references, no arithmetic — so the default PopulationField behaves
/// exactly as it always has, bit for bit.
template <class S>
class PopulationFieldT {
 public:
  using Storage = S;
  /// Identity storage: no shift, accessors hand out raw Real references.
  static constexpr bool kIdentityStorage = std::is_same_v<S, Real>;

  PopulationFieldT() = default;
  PopulationFieldT(const Grid& grid, int q)
      : grid_(grid), q_(q), data_(grid.volume() * q, S{}), shift_(q, Real(0)) {}

  const Grid& grid() const { return grid_; }
  int q() const { return q_; }

  /// Install the per-direction storage shift (normally the lattice
  /// weights).  Must be called before any population is written; identity
  /// storage ignores the shift (the transform is a no-op there).
  void setShift(const Real* w) {
    for (int i = 0; i < q_; ++i)
      shift_[static_cast<std::size_t>(i)] = kIdentityStorage ? Real(0) : w[i];
  }
  Real shift(int q) const { return shift_[static_cast<std::size_t>(q)]; }
  const Real* shiftData() const { return shift_.data(); }

  using reference =
      std::conditional_t<kIdentityStorage, Real&, detail::StorageRef<S>>;

  reference operator()(int q, int x, int y, int z) {
    return at(q, grid_.idx(x, y, z));
  }
  Real operator()(int q, int x, int y, int z) const {
    return load(q, grid_.idx(x, y, z));
  }
  reference at(int q, std::size_t cell) {
    if constexpr (kIdentityStorage) {
      return data_[slab(q) + cell];
    } else {
      return detail::StorageRef<S>(&data_[slab(q) + cell],
                                   shift_[static_cast<std::size_t>(q)]);
    }
  }
  Real at(int q, std::size_t cell) const { return load(q, cell); }

  /// Decoded value of one stored population (cell = grid linear index).
  Real load(int q, std::size_t cell) const {
    if constexpr (kIdentityStorage)
      return data_[slab(q) + cell];
    else
      return StorageTraits<S>::decode(data_[slab(q) + cell],
                                      shift_[static_cast<std::size_t>(q)]);
  }
  /// Encode and store one population value.
  void store(int q, std::size_t cell, Real v) {
    if constexpr (kIdentityStorage)
      data_[slab(q) + cell] = v;
    else
      data_[slab(q) + cell] =
          StorageTraits<S>::encode(v, shift_[static_cast<std::size_t>(q)]);
  }

  /// Raw (still-encoded) storage element — exact copies between fields of
  /// the same storage type and shift (halo packing, periodic wraps).
  S& raw(int q, int x, int y, int z) {
    return data_[slab(q) + grid_.idx(x, y, z)];
  }
  S raw(int q, int x, int y, int z) const {
    return data_[slab(q) + grid_.idx(x, y, z)];
  }

  /// Start offset of direction q's slab in the linear data array.
  std::size_t slab(int q) const {
    SWLB_ASSERT(q >= 0 && q < q_);
    return static_cast<std::size_t>(q) * grid_.volume();
  }

  S* data() { return data_.data(); }
  const S* data() const { return data_.data(); }
  std::size_t size() const { return data_.size(); }
  std::size_t bytes() const { return data_.size() * sizeof(S); }
  static constexpr std::size_t elemBytes() { return sizeof(S); }

  void fill(Real v) {
    for (int i = 0; i < q_; ++i)
      for (std::size_t c = 0; c < grid_.volume(); ++c) store(i, c, v);
  }

 private:
  Grid grid_;
  int q_ = 0;
  std::vector<S> data_;
  std::vector<Real> shift_;
};

/// Compatibility alias: the identity (double-storage) population field.
using PopulationField = PopulationFieldT<Real>;

/// AoS population field: all Q populations of one cell are adjacent.
/// Baseline layout only — used by the layout-ablation benchmarks/tests.
class PopulationFieldAoS {
 public:
  PopulationFieldAoS() = default;
  PopulationFieldAoS(const Grid& grid, int q)
      : grid_(grid), q_(q), data_(grid.volume() * q, Real(0)) {}

  const Grid& grid() const { return grid_; }
  int q() const { return q_; }

  Real& operator()(int q, int x, int y, int z) {
    return data_[grid_.idx(x, y, z) * q_ + q];
  }
  Real operator()(int q, int x, int y, int z) const {
    return data_[grid_.idx(x, y, z) * q_ + q];
  }

  Real* data() { return data_.data(); }
  const Real* data() const { return data_.data(); }
  std::size_t size() const { return data_.size(); }

 private:
  Grid grid_;
  int q_ = 0;
  std::vector<Real> data_;
};

/// Scalar field over the same halo-padded grid (density, Q-criterion, ...).
template <typename T>
class CellField {
 public:
  CellField() = default;
  explicit CellField(const Grid& grid, T init = T())
      : grid_(grid), data_(grid.volume(), init) {}

  const Grid& grid() const { return grid_; }
  T& operator()(int x, int y, int z) { return data_[grid_.idx(x, y, z)]; }
  T operator()(int x, int y, int z) const { return data_[grid_.idx(x, y, z)]; }
  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }
  std::size_t size() const { return data_.size(); }
  void fill(T v) { std::fill(data_.begin(), data_.end(), v); }

 private:
  Grid grid_;
  std::vector<T> data_;
};

using ScalarField = CellField<Real>;
using MaskField = CellField<std::uint8_t>;

/// Vector field stored as three scalar slabs (SoA).
class VectorField {
 public:
  VectorField() = default;
  explicit VectorField(const Grid& grid)
      : x_(grid), y_(grid), z_(grid) {}

  const Grid& grid() const { return x_.grid(); }
  ScalarField& x() { return x_; }
  ScalarField& y() { return y_; }
  ScalarField& z() { return z_; }
  const ScalarField& x() const { return x_; }
  const ScalarField& y() const { return y_; }
  const ScalarField& z() const { return z_; }

  Vec3 at(int x, int y, int z) const { return {x_(x, y, z), y_(x, y, z), z_(x, y, z)}; }
  void set(int x, int y, int z, const Vec3& v) {
    x_(x, y, z) = v.x;
    y_(x, y, z) = v.y;
    z_(x, y, z) = v.z;
  }

 private:
  ScalarField x_, y_, z_;
};

}  // namespace swlb
