// Population and scalar fields over a halo-padded Cartesian grid.
//
// The production layout is structure-of-arrays (SoA): all populations of
// one direction are contiguous, which is what makes the DMA transfers of
// the CPE kernels contiguous (paper §IV-A/C).  An array-of-structures
// (AoS) field is provided as the baseline the paper argues against.
#pragma once

#include <vector>

#include "core/common.hpp"

namespace swlb {

/// Local Cartesian grid: nx*ny*nz interior cells plus a halo layer of
/// configurable width on every side.  Interior coordinates run over
/// [0, n); halo cells have coordinates in [-halo, 0) or [n, n+halo).
struct Grid {
  int nx = 0, ny = 0, nz = 0;
  int halo = 1;

  constexpr Grid() = default;
  constexpr Grid(int nx_, int ny_, int nz_, int halo_ = 1)
      : nx(nx_), ny(ny_), nz(nz_), halo(halo_) {}

  constexpr int sx() const { return nx + 2 * halo; }
  constexpr int sy() const { return ny + 2 * halo; }
  constexpr int sz() const { return nz + 2 * halo; }
  constexpr std::size_t volume() const {
    return static_cast<std::size_t>(sx()) * sy() * sz();
  }
  constexpr std::size_t interiorVolume() const {
    return static_cast<std::size_t>(nx) * ny * nz;
  }

  /// Linear index of cell (x, y, z); x is the fastest-varying axis.
  constexpr std::size_t idx(int x, int y, int z) const {
    SWLB_ASSERT(x >= -halo && x < nx + halo);
    SWLB_ASSERT(y >= -halo && y < ny + halo);
    SWLB_ASSERT(z >= -halo && z < nz + halo);
    return (static_cast<std::size_t>(z + halo) * sy() + (y + halo)) * sx() +
           (x + halo);
  }

  constexpr Box3 interior() const { return {{0, 0, 0}, {nx, ny, nz}}; }
  constexpr Box3 withHalo() const {
    return {{-halo, -halo, -halo}, {nx + halo, ny + halo, nz + halo}};
  }
  friend constexpr bool operator==(const Grid&, const Grid&) = default;
};

/// SoA population field: f[q] is one contiguous block over the grid.
class PopulationField {
 public:
  PopulationField() = default;
  PopulationField(const Grid& grid, int q)
      : grid_(grid), q_(q), data_(grid.volume() * q, Real(0)) {}

  const Grid& grid() const { return grid_; }
  int q() const { return q_; }

  Real& operator()(int q, int x, int y, int z) {
    return data_[slab(q) + grid_.idx(x, y, z)];
  }
  Real operator()(int q, int x, int y, int z) const {
    return data_[slab(q) + grid_.idx(x, y, z)];
  }
  Real& at(int q, std::size_t cell) { return data_[slab(q) + cell]; }
  Real at(int q, std::size_t cell) const { return data_[slab(q) + cell]; }

  /// Start offset of direction q's slab in the linear data array.
  std::size_t slab(int q) const {
    SWLB_ASSERT(q >= 0 && q < q_);
    return static_cast<std::size_t>(q) * grid_.volume();
  }

  Real* data() { return data_.data(); }
  const Real* data() const { return data_.data(); }
  std::size_t size() const { return data_.size(); }
  std::size_t bytes() const { return data_.size() * sizeof(Real); }

  void fill(Real v) { std::fill(data_.begin(), data_.end(), v); }

 private:
  Grid grid_;
  int q_ = 0;
  std::vector<Real> data_;
};

/// AoS population field: all Q populations of one cell are adjacent.
/// Baseline layout only — used by the layout-ablation benchmarks/tests.
class PopulationFieldAoS {
 public:
  PopulationFieldAoS() = default;
  PopulationFieldAoS(const Grid& grid, int q)
      : grid_(grid), q_(q), data_(grid.volume() * q, Real(0)) {}

  const Grid& grid() const { return grid_; }
  int q() const { return q_; }

  Real& operator()(int q, int x, int y, int z) {
    return data_[grid_.idx(x, y, z) * q_ + q];
  }
  Real operator()(int q, int x, int y, int z) const {
    return data_[grid_.idx(x, y, z) * q_ + q];
  }

  Real* data() { return data_.data(); }
  const Real* data() const { return data_.data(); }
  std::size_t size() const { return data_.size(); }

 private:
  Grid grid_;
  int q_ = 0;
  std::vector<Real> data_;
};

/// Scalar field over the same halo-padded grid (density, Q-criterion, ...).
template <typename T>
class CellField {
 public:
  CellField() = default;
  explicit CellField(const Grid& grid, T init = T())
      : grid_(grid), data_(grid.volume(), init) {}

  const Grid& grid() const { return grid_; }
  T& operator()(int x, int y, int z) { return data_[grid_.idx(x, y, z)]; }
  T operator()(int x, int y, int z) const { return data_[grid_.idx(x, y, z)]; }
  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }
  std::size_t size() const { return data_.size(); }
  void fill(T v) { std::fill(data_.begin(), data_.end(), v); }

 private:
  Grid grid_;
  std::vector<T> data_;
};

using ScalarField = CellField<Real>;
using MaskField = CellField<std::uint8_t>;

/// Vector field stored as three scalar slabs (SoA).
class VectorField {
 public:
  VectorField() = default;
  explicit VectorField(const Grid& grid)
      : x_(grid), y_(grid), z_(grid) {}

  const Grid& grid() const { return x_.grid(); }
  ScalarField& x() { return x_; }
  ScalarField& y() { return y_; }
  ScalarField& z() { return z_; }
  const ScalarField& x() const { return x_; }
  const ScalarField& y() const { return y_; }
  const ScalarField& z() const { return z_; }

  Vec3 at(int x, int y, int z) const { return {x_(x, y, z), y_(x, y, z), z_(x, y, z)}; }
  void set(int x, int y, int z, const Vec3& v) {
    x_(x, y, z) = v.x;
    y_(x, y, z) = v.y;
    z_(x, y, z) = v.z;
  }

 private:
  ScalarField x_, y_, z_;
};

}  // namespace swlb
