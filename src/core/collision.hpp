// Per-cell collision operators: LBGK (paper Eq. 1), optional Guo body
// force and Smagorinsky LES eddy viscosity (used by the urban wind case).
#pragma once

#include <cmath>
#include <type_traits>

#include "core/common.hpp"
#include "core/equilibrium.hpp"
#include "core/lattice.hpp"

namespace swlb {

/// Which collision operator the kernels apply.  The paper uses LBGK
/// (§IV-A); TRT and MRT are provided as the standard extensions (see
/// collision_ops.hpp).
enum class CollisionOp { BGK, TRT, MRT };

/// Collision configuration shared by all kernel variants.
struct CollisionConfig {
  Real omega = 1.0;            ///< 1/tau: sets the kinematic viscosity
  CollisionOp op = CollisionOp::BGK;
  Real magicLambda = 3.0 / 16.0;  ///< TRT magic parameter (3/16: exact walls)
  Vec3 bodyForce{0, 0, 0};     ///< constant body force (Guo forcing, BGK only)
  bool les = false;            ///< Smagorinsky subgrid model (BGK only)
  Real smagorinskyCs = 0.1;    ///< Smagorinsky constant C_s

  bool hasForce() const {
    return bodyForce.x != 0 || bodyForce.y != 0 || bodyForce.z != 0;
  }
};

/// Effective omega from the Smagorinsky closed form
///   tau_eff = (tau0 + sqrt(tau0^2 + 2*sqrt(2) (Cs*Delta)^2 |Pi| / (rho cs^4))) / 2
/// where Pi is the non-equilibrium second moment of the populations.
template <class D>
inline Real smagorinsky_omega(const Real* f, const Real* feq, Real rho,
                              Real omega0, Real cs) {
  Real pxx = 0, pyy = 0, pzz = 0, pxy = 0, pxz = 0, pyz = 0;
  for (int i = 0; i < D::Q; ++i) {
    const Real fneq = f[i] - feq[i];
    const Real cx = D::c[i][0], cy = D::c[i][1], cz = D::c[i][2];
    pxx += fneq * cx * cx;
    pyy += fneq * cy * cy;
    pzz += fneq * cz * cz;
    pxy += fneq * cx * cy;
    pxz += fneq * cx * cz;
    pyz += fneq * cy * cz;
  }
  const Real pi_norm = std::sqrt(pxx * pxx + pyy * pyy + pzz * pzz +
                                 2 * (pxy * pxy + pxz * pxz + pyz * pyz));
  const Real tau0 = Real(1) / omega0;
  // cs^4 = 1/9 for all DnQm lattices used here.
  const Real term = 2 * std::sqrt(Real(2)) * cs * cs * pi_norm * Real(9) / rho;
  const Real tau_eff = Real(0.5) * (tau0 + std::sqrt(tau0 * tau0 + term));
  return Real(1) / tau_eff;
}

/// BGK collision of one cell: `f` holds the Q post-streaming (incoming)
/// populations and is overwritten with post-collision values.
/// Returns the macroscopic (rho, u) used for the update.
template <class D>
inline void bgk_collide_cell(Real* f, const CollisionConfig& cfg, Real& rho_out,
                             Vec3& u_out) {
  Real rho;
  Vec3 mom;
  moments<D>(f, rho, mom);
  const Real inv_rho = Real(1) / rho;
  Vec3 u{mom.x * inv_rho, mom.y * inv_rho, mom.z * inv_rho};
  if (cfg.hasForce()) {
    // Guo forcing: velocity shifted by half the force impulse.
    u.x += Real(0.5) * cfg.bodyForce.x * inv_rho;
    u.y += Real(0.5) * cfg.bodyForce.y * inv_rho;
    u.z += Real(0.5) * cfg.bodyForce.z * inv_rho;
  }

  Real feq[D::Q];
  equilibria<D>(rho, u, feq);

  Real omega = cfg.omega;
  if (cfg.les) omega = smagorinsky_omega<D>(f, feq, rho, cfg.omega, cfg.smagorinskyCs);

  for (int i = 0; i < D::Q; ++i) f[i] += omega * (feq[i] - f[i]);

  if (cfg.hasForce()) {
    // Guo source term: F_i = (1 - omega/2) w_i [3 (c-u) + 9 (c.u) c] . F
    const Real pref = Real(1) - Real(0.5) * omega;
    const Vec3& g = cfg.bodyForce;
    for (int i = 0; i < D::Q; ++i) {
      const Real cx = D::c[i][0], cy = D::c[i][1], cz = D::c[i][2];
      const Real cu = cx * u.x + cy * u.y + cz * u.z;
      const Real sx = Real(3) * (cx - u.x) + Real(9) * cu * cx;
      const Real sy = Real(3) * (cy - u.y) + Real(9) * cu * cy;
      const Real sz = Real(3) * (cz - u.z) + Real(9) * cu * cz;
      f[i] += pref * D::w[i] * (sx * g.x + sy * g.y + sz * g.z);
    }
  }

  rho_out = rho;
  u_out = u;
}

}  // namespace swlb

#include "core/collision_ops.hpp"

namespace swlb {

/// Operator dispatch used by every kernel variant.  Guo forcing and LES
/// are supported on the BGK path only (the configurations the paper runs);
/// MRT is defined for D3Q19.
template <class D>
inline void collide_cell(Real* f, const CollisionConfig& cfg, Real& rho_out,
                         Vec3& u_out) {
  switch (cfg.op) {
    case CollisionOp::BGK:
      bgk_collide_cell<D>(f, cfg, rho_out, u_out);
      return;
    case CollisionOp::TRT:
      SWLB_ASSERT(!cfg.les && !cfg.hasForce());
      trt_collide_cell<D>(f, cfg.omega, cfg.magicLambda, rho_out, u_out);
      return;
    case CollisionOp::MRT:
      SWLB_ASSERT(!cfg.les && !cfg.hasForce());
      if constexpr (std::is_same_v<D, D3Q19>) {
        MrtD3Q19::collide(f, MrtD3Q19::Rates::standard(cfg.omega), rho_out,
                          u_out);
      } else {
        throw Error("MRT collision is implemented for D3Q19 only");
      }
      return;
  }
}

}  // namespace swlb
