// Storage-precision layer for population fields (DESIGN.md §8).
//
// SunwayLB's fused pull kernel is memory-bandwidth-bound: every step moves
// 2 * Q * sizeof(Real) bytes per cell, and halo, checkpoint and DMA volume
// all scale with the storage element size.  LBM retains engineering
// accuracy when populations are *stored* in reduced precision and
// *collided* in full precision (Sailfish; miniLB; FluidX3D's compressed
// DDFs), provided the stored value is shifted by the lattice weight:
//
//   store_i = Storage(f_i - w_i)        load_i = Real(store_i) + w_i
//
// Near equilibrium f_i ~ w_i * rho with rho ~ 1, so f_i - w_i is a small
// number close to zero where a float (or half) spends its mantissa on the
// physically meaningful deviation instead of on the constant weight.  The
// relative quantization error is bounded by the storage type's unit
// roundoff *of the deviation*, not of the full population.
//
// Storage types: double (lossless, the compatibility default), float, and
// a software IEEE 754 binary16 `f16` (no hardware half assumed).  The
// compute path always gathers/collides in Real (double) precision.
#pragma once

#include <cstdint>
#include <cstring>

#include "core/common.hpp"

namespace swlb {

/// Software IEEE 754 binary16 (1 sign, 5 exponent, 10 mantissa bits).
/// Conversions round to nearest, ties to even; overflow saturates to
/// +/-inf; subnormals are handled exactly.  Storage-only type: arithmetic
/// happens after decoding to Real.
struct f16 {
  std::uint16_t bits = 0;

  f16() = default;
  explicit f16(float f) : bits(fromFloat(f)) {}
  explicit operator float() const { return toFloat(bits); }

  friend constexpr bool operator==(const f16&, const f16&) = default;

  static std::uint16_t fromFloat(float f) {
    std::uint32_t x;
    std::memcpy(&x, &f, sizeof(x));
    const std::uint16_t sign = static_cast<std::uint16_t>((x >> 16) & 0x8000u);
    const std::uint32_t absx = x & 0x7FFFFFFFu;
    if (absx >= 0x7F800000u) {  // inf / NaN
      const std::uint16_t payload = absx > 0x7F800000u ? 0x0200u : 0u;
      return static_cast<std::uint16_t>(sign | 0x7C00u | payload);
    }
    if (absx >= 0x47800000u)  // >= 65536: overflows half's range -> inf
      return static_cast<std::uint16_t>(sign | 0x7C00u);
    if (absx < 0x33000000u)  // < 2^-25: underflows to zero (even tie)
      return sign;
    std::uint32_t mant = (absx & 0x007FFFFFu) | 0x00800000u;  // implicit 1
    const int exp = static_cast<int>(absx >> 23) - 127;       // unbiased
    int shift;                                                // mant >> shift
    std::uint16_t half;
    if (exp < -14) {
      // Subnormal half: value = mant * 2^(exp-23), half ulp = 2^-24.
      shift = 13 + (-14 - exp);
      half = sign;
    } else {
      shift = 13;
      half = static_cast<std::uint16_t>(
          sign | ((exp + 15) << 10));
      mant &= 0x007FFFFFu;  // normal: implicit bit lives in the exponent
    }
    std::uint32_t rounded = mant >> shift;
    // Round to nearest, ties to even.
    const std::uint32_t rem = mant & ((1u << shift) - 1);
    const std::uint32_t halfway = 1u << (shift - 1);
    if (rem > halfway || (rem == halfway && (rounded & 1u)))
      ++rounded;  // may carry into the exponent field: that is correct
    return static_cast<std::uint16_t>(half + rounded);
  }

  static float toFloat(std::uint16_t h) {
    const std::uint32_t sign = static_cast<std::uint32_t>(h & 0x8000u) << 16;
    const std::uint32_t exp = (h >> 10) & 0x1Fu;
    std::uint32_t mant = h & 0x03FFu;
    std::uint32_t x;
    if (exp == 0x1Fu) {  // inf / NaN
      x = sign | 0x7F800000u | (mant << 13);
    } else if (exp != 0) {  // normal
      x = sign | ((exp + 112u) << 23) | (mant << 13);
    } else if (mant != 0) {  // subnormal: normalize into a float
      int e = -1;
      do {
        mant <<= 1;
        ++e;
      } while ((mant & 0x0400u) == 0);
      // mant = orig << (e + 1); value = orig * 2^-24, so the float's
      // unbiased exponent is -15 - e  ->  biased 112 - e.
      x = sign | ((112u - e) << 23) | ((mant & 0x03FFu) << 13);
    } else {  // +/- zero
      x = sign;
    }
    float f;
    std::memcpy(&f, &x, sizeof(f));
    return f;
  }
};

/// Encode/decode and metadata for a population storage type.  `decode`
/// and `encode` implement the weight-shifted (DDF-shifting) transform;
/// the shift is zero for identity (double) storage so the default path
/// stays bit-exact with the historical format.
///
/// Valid storage types: exactly `double` ("f64", 8 B, the default —
/// bit-exact reproduction), `float` ("f32", 4 B, ~2x traffic reduction,
/// Ghia-validated) and `f16` ("f16", 2 B, exploratory only).  Per-type
/// constants and their units:
///   * `kBits` — storage width in bits; doubles as the checkpoint
///     precision tag (io/checkpoint.hpp format v2).
///   * `kEpsilon` — dimensionless unit roundoff of the *stored
///     deviation* `f_i - w_i` (half ulp, round-to-nearest): the
///     relative quantization bound the tuner reports in
///     `TuningPlan::advisedQuantError`.
///   * `kMinNormal` — smallest normal magnitude in lattice population
///     units; below it the error floor is absolute
///     (kEpsilon * kMinNormal), not relative.
/// Precision is chosen explicitly (`Solver<D, S>`); the auto-tuner only
/// ever *advises* a storage type, it never switches one (DESIGN.md §9).
template <class S>
struct StorageTraits;

template <>
struct StorageTraits<double> {
  static constexpr const char* name() { return "f64"; }
  static constexpr std::uint32_t kBits = 64;
  /// Unit roundoff of the stored deviation (half ulp, round-to-nearest).
  static constexpr Real kEpsilon = 0x1.0p-53;
  /// Smallest normal magnitude: below it the quantization error is the
  /// fixed subnormal half ulp (kEpsilon * kMinNormal), not relative.
  static constexpr Real kMinNormal = 0x1.0p-1022;
  static Real decode(double s, Real shift) { return s + shift; }
  static double encode(Real f, Real shift) { return f - shift; }
};

template <>
struct StorageTraits<float> {
  static constexpr const char* name() { return "f32"; }
  static constexpr std::uint32_t kBits = 32;
  static constexpr Real kEpsilon = 0x1.0p-24;
  static constexpr Real kMinNormal = 0x1.0p-126;
  static Real decode(float s, Real shift) {
    return static_cast<Real>(s) + shift;
  }
  static float encode(Real f, Real shift) {
    return static_cast<float>(f - shift);
  }
};

template <>
struct StorageTraits<f16> {
  static constexpr const char* name() { return "f16"; }
  static constexpr std::uint32_t kBits = 16;
  static constexpr Real kEpsilon = 0x1.0p-11;
  static constexpr Real kMinNormal = 0x1.0p-14;
  static Real decode(f16 s, Real shift) {
    return static_cast<Real>(static_cast<float>(s)) + shift;
  }
  static f16 encode(Real f, Real shift) {
    return f16(static_cast<float>(f - shift));
  }
};

/// Name of a storage precision by its checkpoint tag ("f64"/"f32"/"f16").
inline const char* precision_name(std::uint32_t bits) {
  switch (bits) {
    case StorageTraits<double>::kBits: return "f64";
    case StorageTraits<float>::kBits: return "f32";
    case StorageTraits<f16>::kBits: return "f16";
    default: return "unknown";
  }
}

}  // namespace swlb
