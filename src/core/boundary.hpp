// Boundary conditions via per-cell material ids.
//
// Each lattice cell carries a one-byte material id; a MaterialTable maps
// ids to behaviours.  This mirrors SunwayLB's pre-processing module, where
// the mesh generator flags cells from CAD/terrain input and the solver
// interprets the flags (paper §IV-B).
#pragma once

#include <cstdint>
#include <vector>

#include "core/common.hpp"
#include "core/field.hpp"

namespace swlb {

enum class CellClass : std::uint8_t {
  Fluid,           ///< regular bulk cell: stream + collide
  Solid,           ///< half-way bounce-back obstacle (no-slip)
  MovingWall,      ///< bounce-back with wall velocity (e.g. cavity lid)
  VelocityInlet,   ///< equilibrium inlet at prescribed (rho, u)
  Outflow,         ///< zeroth-order extrapolation outflow along `normal`
  ZouHeVelocity,   ///< non-equilibrium bounce-back inlet: exact velocity
  ZouHePressure,   ///< non-equilibrium bounce-back outlet: exact density
  Porous,          ///< partial bounce-back (Walsh-Burwinkle-Saar) medium
};

struct Material {
  CellClass cls = CellClass::Fluid;
  Vec3 u{0, 0, 0};   ///< wall / inlet velocity
  Real rho = 1.0;    ///< inlet / wall density
  Int3 normal{0, 0, 0};  ///< Outflow only: unit step from the cell into the interior
  Real solidity = 0;     ///< Porous only: bounce-back fraction in [0, 1]
};

/// Registry of materials.  Ids 0 (fluid) and 1 (solid wall) are built in;
/// halo cells of non-periodic axes default to id 1, which makes an
/// unconfigured domain a closed no-slip box.
class MaterialTable {
 public:
  static constexpr std::uint8_t kFluid = 0;
  static constexpr std::uint8_t kSolid = 1;

  MaterialTable() {
    mats_.push_back(Material{CellClass::Fluid, {0, 0, 0}, 1.0, {0, 0, 0}});
    mats_.push_back(Material{CellClass::Solid, {0, 0, 0}, 1.0, {0, 0, 0}});
  }

  std::uint8_t add(const Material& m) {
    if (mats_.size() >= 255) throw Error("MaterialTable: too many materials");
    mats_.push_back(m);
    return static_cast<std::uint8_t>(mats_.size() - 1);
  }

  std::uint8_t addMovingWall(const Vec3& u, Real rho = 1.0) {
    return add(Material{CellClass::MovingWall, u, rho, {0, 0, 0}});
  }
  std::uint8_t addVelocityInlet(const Vec3& u, Real rho = 1.0) {
    return add(Material{CellClass::VelocityInlet, u, rho, {0, 0, 0}});
  }
  std::uint8_t addOutflow(const Int3& inwardNormal) {
    return add(Material{CellClass::Outflow, {0, 0, 0}, 1.0, inwardNormal});
  }
  /// Zou-He (non-equilibrium bounce-back) velocity boundary on a straight
  /// wall whose inward normal is `inwardNormal`; the local density is
  /// reconstructed from the known populations each step.
  std::uint8_t addZouHeVelocity(const Vec3& u, const Int3& inwardNormal) {
    return add(Material{CellClass::ZouHeVelocity, u, 1.0, inwardNormal});
  }
  /// Zou-He pressure boundary: prescribes rho, reconstructs the normal
  /// velocity (tangential velocity assumed zero).
  std::uint8_t addZouHePressure(Real rho, const Int3& inwardNormal) {
    return add(Material{CellClass::ZouHePressure, {0, 0, 0}, rho, inwardNormal});
  }
  /// Porous medium cell: a fraction `solidity` of each population bounces
  /// back locally every step (partial bounce-back, a linear momentum
  /// sink); solidity 0 is plain fluid, solidity 1 a full diffuse blocker.
  std::uint8_t addPorous(Real solidity) {
    if (solidity < 0 || solidity > 1)
      throw Error("addPorous: solidity must be in [0, 1]");
    Material m;
    m.cls = CellClass::Porous;
    m.solidity = solidity;
    return add(m);
  }

  const Material& operator[](std::uint8_t id) const {
    SWLB_ASSERT(id < mats_.size());
    return mats_[id];
  }
  std::size_t size() const { return mats_.size(); }

 private:
  std::vector<Material> mats_;
};

/// True when a cell of this class participates in stream/collide updates.
constexpr bool is_dynamic(CellClass c) { return c == CellClass::Fluid; }

/// True when neighbours may pull populations straight out of this cell.
constexpr bool is_pullable(CellClass c) {
  return c == CellClass::Fluid || c == CellClass::VelocityInlet ||
         c == CellClass::Outflow || c == CellClass::ZouHeVelocity ||
         c == CellClass::ZouHePressure || c == CellClass::Porous;
}

/// True when a cell streams + collides like a fluid cell (Zou-He cells do,
/// with their unknown populations reconstructed after the gather).
constexpr bool is_streaming(CellClass c) {
  return c == CellClass::Fluid || c == CellClass::ZouHeVelocity ||
         c == CellClass::ZouHePressure || c == CellClass::Porous;
}

}  // namespace swlb
