// Single-block LBM solver: owns the A-B population fields, the material
// mask, and the time loop (paper §IV-A: pull scheme, SoA, A-B pattern).
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>

#include "core/kernels.hpp"
#include "core/macroscopic.hpp"
#include "obs/context.hpp"

namespace swlb {

/// Which stream/collide implementation the solver drives each step.
enum class KernelVariant {
  Fused,     ///< production path: optimized SoA fused pull kernel
  Generic,   ///< portable fused pull kernel (reference implementation)
  TwoStep,   ///< separate stream + collide (fusion ablation baseline)
  Push,      ///< fused collide + push streaming (layout ablation baseline)
  Simd,      ///< vectorized bulk-run fused kernel (bit-identical to Fused)
  Esoteric,  ///< in-place single-buffer streaming (0.5x population memory)
};

inline const char* kernel_variant_name(KernelVariant v) {
  switch (v) {
    case KernelVariant::Fused: return "fused";
    case KernelVariant::Generic: return "generic";
    case KernelVariant::TwoStep: return "twostep";
    case KernelVariant::Push: return "push";
    case KernelVariant::Simd: return "simd";
    case KernelVariant::Esoteric: return "esoteric";
  }
  return "?";
}

/// `S` selects the population *storage* precision (double / float / f16);
/// all collision arithmetic stays in Real.  Defaults to lossless double.
template <class D, class S = Real>
class Solver {
 public:
  using Field = PopulationFieldT<S>;

  Solver(const Grid& grid, const CollisionConfig& collision,
         const Periodicity& periodic = {})
      : grid_(grid),
        cfg_(collision),
        periodic_(periodic),
        f_{Field(grid, D::Q), Field(grid, D::Q)},
        mask_(grid, MaterialTable::kFluid) {
    f_[0].setShift(D::w);
    f_[1].setShift(D::w);
    obs::gaugeSet("solver.population_bytes",
                  static_cast<double>(populationBytes()));
  }

  const Grid& grid() const { return grid_; }
  CollisionConfig& collision() { return cfg_; }
  const CollisionConfig& collision() const { return cfg_; }
  MaterialTable& materials() { return mats_; }
  const MaterialTable& materials() const { return mats_; }
  MaskField& mask() { return mask_; }
  const MaskField& mask() const { return mask_; }
  /// Select the stream/collide implementation.  Switching to Esoteric
  /// releases the second A-B buffer (the whole point of the scheme);
  /// switching away reallocates it.  Either direction requires the buffer
  /// to be in natural layout, i.e. an even phase.
  void setVariant(KernelVariant v) {
    if ((v == KernelVariant::Esoteric) !=
        (variant_ == KernelVariant::Esoteric)) {
      SWLB_ASSERT(parity_ == 0);
      if (v == KernelVariant::Esoteric) {
        f_[1] = Field();
        if (maskFinal_) validateEsotericMask();
      } else {
        f_[1] = Field(grid_, D::Q);
        f_[1].setShift(D::w);
      }
    }
    variant_ = v;
    obs::gaugeSet("solver.population_bytes",
                  static_cast<double>(populationBytes()));
  }
  KernelVariant variant() const { return variant_; }

  /// Bytes held in population storage: two lattices normally, one under
  /// the esoteric single-buffer scheme (the gauge `solver.population_bytes`
  /// tracks this — not the historical unconditional two-lattice figure).
  std::size_t populationBytes() const {
    return f_[0].bytes() + f_[1].bytes();
  }
  /// Host threads for the fused kernel (intra-rank parallelism; results
  /// are bit-identical for any thread count).
  void setHostThreads(int n) { hostThreads_ = n; }
  int hostThreads() const { return hostThreads_; }

  /// Mark every interior cell inside `box` with material `id`.
  void paint(const Box3& box, std::uint8_t id) {
    const Box3 b = intersect(box, grid_.interior());
    for (int z = b.lo.z; z < b.hi.z; ++z)
      for (int y = b.lo.y; y < b.hi.y; ++y)
        for (int x = b.lo.x; x < b.hi.x; ++x) mask_(x, y, z) = id;
  }

  /// Finish mask setup: non-periodic halo becomes solid wall, periodic
  /// halo wraps.  Must be called after all paint()/mask edits and before
  /// the first step.
  void finalizeMask() {
    fill_halo_mask(mask_, periodic_, MaterialTable::kSolid);
    maskFinal_ = true;
    if (variant_ == KernelVariant::Esoteric) validateEsotericMask();
  }

  /// Initialize populations to equilibrium at constant (rho, u).
  void initUniform(Real rho, const Vec3& u) {
    initField([&](int, int, int, Real& r, Vec3& v) {
      r = rho;
      v = u;
    });
  }

  /// Initialize populations to equilibrium from a per-cell (rho, u) field.
  void initField(
      const std::function<void(int, int, int, Real&, Vec3&)>& fn) {
    if (!maskFinal_) finalizeMask();
    Real feq[D::Q];
    for (int z = -grid_.halo; z < grid_.nz + grid_.halo; ++z)
      for (int y = -grid_.halo; y < grid_.ny + grid_.halo; ++y)
        for (int x = -grid_.halo; x < grid_.nx + grid_.halo; ++x) {
          Real rho = 1;
          Vec3 u{0, 0, 0};
          fn(x, y, z, rho, u);
          equilibria<D>(rho, u, feq);
          for (int i = 0; i < D::Q; ++i) {
            f_[0](i, x, y, z) = feq[i];
            if (f_[1].size()) f_[1](i, x, y, z) = feq[i];
          }
        }
  }

  /// Advance one time step: wrap periodic halos, fused update, A-B swap.
  /// Under Esoteric, parity_ is the in-place phase instead of the A-B
  /// index: 0 = natural layout, 1 = rotated (post-even) layout.
  void step() {
    obs::TraceScope stepScope("step");
    SWLB_ASSERT(maskFinal_);
    if (variant_ == KernelVariant::Esoteric) {
      stepEsoteric();
      parity_ = 1 - parity_;
      ++steps_;
      return;
    }
    Field& src = f_[parity_];
    Field& dst = f_[1 - parity_];
    {
      obs::TraceScope wrapScope("periodic_wrap");
      apply_periodic(src, periodic_);
    }
    obs::TraceScope kernelScope("compute.kernel");
    const Box3 range = grid_.interior();
    switch (variant_) {
      case KernelVariant::Fused:
        stream_collide_fused_mt<D>(src, dst, mask_, mats_, cfg_, range,
                                   hostThreads_);
        break;
      case KernelVariant::Generic:
        stream_collide_generic<D>(src, dst, mask_, mats_, cfg_, range);
        break;
      case KernelVariant::TwoStep:
        stream_only<D>(src, dst, mask_, mats_, range);
        collide_inplace<D>(dst, mask_, mats_, cfg_, range);
        break;
      case KernelVariant::Push:
        stream_collide_push<D>(src, dst, mask_, mats_, cfg_, range, periodic_);
        break;
      case KernelVariant::Simd:
        stream_collide_simd_mt<D>(src, dst, mask_, mats_, cfg_, range,
                                  hostThreads_);
        break;
      case KernelVariant::Esoteric:
        break;  // handled above
    }
    parity_ = 1 - parity_;
    ++steps_;
  }

  void run(std::uint64_t nSteps) {
    for (std::uint64_t s = 0; s < nSteps; ++s) step();
  }

  /// Run nSteps and return million lattice-cell updates per second.
  double runMeasured(std::uint64_t nSteps) {
    const auto t0 = std::chrono::steady_clock::now();
    run(nSteps);
    const auto t1 = std::chrono::steady_clock::now();
    const double sec = std::chrono::duration<double>(t1 - t0).count();
    const double lups =
        static_cast<double>(grid_.interiorVolume()) * nSteps / sec;
    return lups / 1e6;
  }

  std::uint64_t stepsDone() const { return steps_; }

  /// Current (most recently written) population field.  Under Esoteric
  /// this is always the single buffer; after an odd number of steps it is
  /// in the rotated layout — use population()/the macroscopic accessors,
  /// which decode it, rather than indexing the raw field.
  const Field& f() const {
    return variant_ == KernelVariant::Esoteric ? f_[0] : f_[parity_];
  }
  Field& f() {
    return variant_ == KernelVariant::Esoteric ? f_[0] : f_[parity_];
  }
  /// The other buffer of the A-B pair (scratch / previous step).
  Field& fOther() { return f_[1 - parity_]; }
  int parity() const { return parity_; }
  void setParity(int p) { parity_ = p; }
  /// Restore step counter and A-B parity (checkpoint restart).  Esoteric
  /// checkpoints must be cut at an even phase (natural layout).
  void restoreState(std::uint64_t steps, int parity) {
    SWLB_ASSERT(parity == 0 || parity == 1);
    SWLB_ASSERT(variant_ != KernelVariant::Esoteric || parity == 0);
    steps_ = steps;
    parity_ = parity;
  }

  /// Canonical post-stream population f_i(x) regardless of variant/phase:
  /// after an esoteric even step, f_i*(x) lives at slot opp(i) of x + c_i.
  Real population(int i, int x, int y, int z) const {
    if (variant_ == KernelVariant::Esoteric && parity_ == 1)
      return f_[0](D::opp(i), x + D::c[i][0], y + D::c[i][1], z + D::c[i][2]);
    return f()(i, x, y, z);
  }

  Real density(int x, int y, int z) const {
    Real rho;
    Vec3 u;
    if (variant_ == KernelVariant::Esoteric && parity_ == 1)
      cell_macroscopic<D>(EsotericPhase1View<D, S>(f_[0]), x, y, z, cfg_, rho,
                          u);
    else
      cell_macroscopic<D>(f(), x, y, z, cfg_, rho, u);
    return rho;
  }
  Vec3 velocity(int x, int y, int z) const {
    Real rho;
    Vec3 u;
    if (variant_ == KernelVariant::Esoteric && parity_ == 1)
      cell_macroscopic<D>(EsotericPhase1View<D, S>(f_[0]), x, y, z, cfg_, rho,
                          u);
    else
      cell_macroscopic<D>(f(), x, y, z, cfg_, rho, u);
    return u;
  }
  void computeMacroscopic(ScalarField& rho, VectorField& u) const {
    if (variant_ == KernelVariant::Esoteric && parity_ == 1)
      compute_macroscopic<D>(EsotericPhase1View<D, S>(f_[0]), mask_, mats_,
                             cfg_, rho, u);
    else
      compute_macroscopic<D>(f(), mask_, mats_, cfg_, rho, u);
  }

  Real totalMass() const {
    if (variant_ == KernelVariant::Esoteric && parity_ == 1)
      return total_mass<D>(EsotericPhase1View<D, S>(f_[0]), mask_, mats_);
    return total_mass<D>(f(), mask_, mats_);
  }
  Vec3 totalMomentum() const {
    if (variant_ == KernelVariant::Esoteric && parity_ == 1)
      return total_momentum<D>(EsotericPhase1View<D, S>(f_[0]), mask_, mats_);
    return total_momentum<D>(f(), mask_, mats_);
  }

 private:
  /// Esoteric in-place step: even phase wraps forward, sweeps, and wraps
  /// the rotated layout back; odd phase is purely local (no halo traffic).
  void stepEsoteric() {
    const Box3 range = grid_.interior();
    if (parity_ == 0) {
      {
        obs::TraceScope wrapScope("periodic_wrap");
        apply_periodic(f_[0], periodic_);
      }
      {
        obs::TraceScope kernelScope("compute.kernel");
        stream_collide_esoteric_even_mt<D>(f_[0], mask_, mats_, cfg_, range,
                                           hostThreads_);
      }
      obs::TraceScope wrapScope("periodic_wrap");
      apply_periodic_reverse<D>(f_[0], periodic_);
    } else {
      obs::TraceScope kernelScope("compute.kernel");
      stream_collide_esoteric_odd_mt<D>(f_[0], mask_, mats_, cfg_, range,
                                        hostThreads_);
    }
  }

  /// The in-place scheme has no outflow rule (an extrapolating copy from a
  /// neighbour would race with that neighbour's own in-place update).
  void validateEsotericMask() const {
    const Box3 range = grid_.interior();
    for (int z = range.lo.z; z < range.hi.z; ++z)
      for (int y = range.lo.y; y < range.hi.y; ++y)
        for (int x = range.lo.x; x < range.hi.x; ++x)
          if (!esoteric_supports(mats_[mask_(x, y, z)].cls))
            throw Error(
                "KernelVariant::Esoteric does not support Outflow cells "
                "(in-place streaming has no extrapolation slot)");
  }
  Grid grid_;
  CollisionConfig cfg_;
  Periodicity periodic_;
  Field f_[2];
  MaskField mask_;
  MaterialTable mats_;
  KernelVariant variant_ = KernelVariant::Fused;
  int hostThreads_ = 1;
  int parity_ = 0;
  std::uint64_t steps_ = 0;
  bool maskFinal_ = false;
};

}  // namespace swlb
