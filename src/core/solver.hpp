// Single-block LBM solver: owns the A-B population fields, the material
// mask, and the time loop (paper §IV-A: pull scheme, SoA, A-B pattern).
// The stream/collide execution itself is delegated to a KernelBackend
// (core/backend.hpp, DESIGN.md §14): the solver schedules wraps, parity
// and observables; the backend runs the update.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>

#include "core/backends.hpp"
#include "core/kernels.hpp"
#include "core/macroscopic.hpp"
#include "obs/context.hpp"

namespace swlb {

// KernelVariant (the enum spelling of backend names) lives in
// core/backend.hpp together with the backend concept and registry.

/// `S` selects the population *storage* precision (double / float / f16);
/// all collision arithmetic stays in Real.  Defaults to lossless double.
template <class D, class S = Real>
class Solver {
 public:
  using Field = PopulationFieldT<S>;

  Solver(const Grid& grid, const CollisionConfig& collision,
         const Periodicity& periodic = {})
      : grid_(grid),
        cfg_(collision),
        periodic_(periodic),
        f_{Field(grid, D::Q), Field(grid, D::Q)},
        mask_(grid, MaterialTable::kFluid),
        backend_(make_backend<D, S>("fused")) {
    f_[0].setShift(D::w);
    f_[1].setShift(D::w);
    obs::gaugeSet("solver.population_bytes",
                  static_cast<double>(populationBytes()));
  }

  const Grid& grid() const { return grid_; }
  CollisionConfig& collision() { return cfg_; }
  const CollisionConfig& collision() const { return cfg_; }
  MaterialTable& materials() { return mats_; }
  const MaterialTable& materials() const { return mats_; }
  MaskField& mask() { return mask_; }
  const MaskField& mask() const { return mask_; }

  /// Select the stream/collide backend by registry name.  Switching to
  /// an in-place backend releases the second A-B buffer (the point of
  /// the scheme); switching away reallocates it.  Either direction
  /// requires the buffer in natural layout, i.e. an even phase.  Unknown
  /// names and capability conflicts (e.g. an in-place backend over an
  /// Outflow mask) throw — no silent fallback.
  void setBackend(const std::string& name) {
    auto next = make_backend<D, S>(name);
    const bool wasInPlace = backend_->info().caps.inPlaceStreaming;
    const bool isInPlace = next->info().caps.inPlaceStreaming;
    if (wasInPlace != isInPlace) {
      SWLB_ASSERT(parity_ == 0);
      if (isInPlace) {
        f_[1] = Field();
      } else {
        f_[1] = Field(grid_, D::Q);
        f_[1].setShift(D::w);
      }
    }
    backend_ = std::move(next);
    variant_ = kernel_variant_from_name(name);
    if (maskFinal_) backend_->init(grid_, mask_, mats_);
    obs::gaugeSet("solver.population_bytes",
                  static_cast<double>(populationBytes()));
  }

  /// Enum spelling of setBackend (kept for config structs and call sites
  /// that predate the registry).
  void setVariant(KernelVariant v) { setBackend(kernel_variant_name(v)); }
  KernelVariant variant() const { return variant_; }
  const KernelBackend<D, S>& backend() const { return *backend_; }
  const std::string& backendName() const { return backend_->info().name; }

  /// Bytes held in population storage: two lattices normally, one under
  /// an in-place single-buffer backend (the gauge `solver.population_
  /// bytes` tracks this — not the historical two-lattice figure).
  std::size_t populationBytes() const {
    return f_[0].bytes() + f_[1].bytes();
  }
  /// Host threads for backends with caps.usesHostThreads (intra-rank
  /// parallelism; results are bit-identical for any thread count).
  /// <= 0 selects one thread per hardware core.
  void setHostThreads(int n) { hostThreads_ = n; }
  int hostThreads() const { return hostThreads_; }

  /// Mark every interior cell inside `box` with material `id`.
  void paint(const Box3& box, std::uint8_t id) {
    const Box3 b = intersect(box, grid_.interior());
    for (int z = b.lo.z; z < b.hi.z; ++z)
      for (int y = b.lo.y; y < b.hi.y; ++y)
        for (int x = b.lo.x; x < b.hi.x; ++x) mask_(x, y, z) = id;
  }

  /// Finish mask setup: non-periodic halo becomes solid wall, periodic
  /// halo wraps.  Must be called after all paint()/mask edits and before
  /// the first step.  Runs the backend's capability validation (e.g.
  /// in-place backends reject Outflow cells here).
  void finalizeMask() {
    fill_halo_mask(mask_, periodic_, MaterialTable::kSolid);
    maskFinal_ = true;
    backend_->init(grid_, mask_, mats_);
  }

  /// Initialize populations to equilibrium at constant (rho, u).
  void initUniform(Real rho, const Vec3& u) {
    initField([&](int, int, int, Real& r, Vec3& v) {
      r = rho;
      v = u;
    });
  }

  /// Initialize populations to equilibrium from a per-cell (rho, u) field.
  void initField(
      const std::function<void(int, int, int, Real&, Vec3&)>& fn) {
    if (!maskFinal_) finalizeMask();
    Real feq[D::Q];
    for (int z = -grid_.halo; z < grid_.nz + grid_.halo; ++z)
      for (int y = -grid_.halo; y < grid_.ny + grid_.halo; ++y)
        for (int x = -grid_.halo; x < grid_.nx + grid_.halo; ++x) {
          Real rho = 1;
          Vec3 u{0, 0, 0};
          fn(x, y, z, rho, u);
          equilibria<D>(rho, u, feq);
          for (int i = 0; i < D::Q; ++i) {
            f_[0](i, x, y, z) = feq[i];
            if (f_[1].size()) f_[1](i, x, y, z) = feq[i];
          }
        }
  }

  /// Advance one time step: wrap periodic halos, backend update, A-B
  /// swap.  Under an in-place backend, parity_ is the phase instead of
  /// the A-B index: 0 = natural layout, 1 = rotated (post-even) layout.
  void step() {
    obs::TraceScope stepScope("step");
    SWLB_ASSERT(maskFinal_);
    if (backend_->info().caps.inPlaceStreaming) {
      stepInPlace();
      parity_ = 1 - parity_;
      ++steps_;
      return;
    }
    Field& src = f_[parity_];
    Field& dst = f_[1 - parity_];
    {
      obs::TraceScope wrapScope("periodic_wrap");
      apply_periodic(src, periodic_);
    }
    obs::TraceScope kernelScope("compute.kernel");
    BackendStepArgs<D, S> args;
    args.src = &src;
    args.dst = &dst;
    args.mask = &mask_;
    args.mats = &mats_;
    args.cfg = &cfg_;
    args.range = grid_.interior();
    args.periodic = periodic_;
    args.threads = hostThreads_;
    backend_->step(args);
    parity_ = 1 - parity_;
    ++steps_;
  }

  void run(std::uint64_t nSteps) {
    for (std::uint64_t s = 0; s < nSteps; ++s) step();
  }

  /// Run nSteps and return million lattice-cell updates per second.
  double runMeasured(std::uint64_t nSteps) {
    const auto t0 = std::chrono::steady_clock::now();
    run(nSteps);
    const auto t1 = std::chrono::steady_clock::now();
    const double sec = std::chrono::duration<double>(t1 - t0).count();
    const double lups =
        static_cast<double>(grid_.interiorVolume()) * nSteps / sec;
    return lups / 1e6;
  }

  std::uint64_t stepsDone() const { return steps_; }

  /// Current (most recently written) population field.  Under an
  /// in-place backend this is always the single buffer; after an odd
  /// number of steps it is in the rotated layout — use population()/the
  /// macroscopic accessors, which decode it, rather than indexing raw.
  const Field& f() const { return inPlace() ? f_[0] : f_[parity_]; }
  Field& f() { return inPlace() ? f_[0] : f_[parity_]; }
  /// The other buffer of the A-B pair (scratch / previous step).
  Field& fOther() { return f_[1 - parity_]; }
  int parity() const { return parity_; }
  void setParity(int p) { parity_ = p; }
  /// Restore step counter and A-B parity (checkpoint restart).  In-place
  /// checkpoints must be cut at an even phase (natural layout).
  void restoreState(std::uint64_t steps, int parity) {
    SWLB_ASSERT(parity == 0 || parity == 1);
    SWLB_ASSERT(!inPlace() || parity == 0);
    steps_ = steps;
    parity_ = parity;
  }

  /// Canonical post-stream population f_i(x) regardless of backend and
  /// phase: after an in-place even step, f_i*(x) lives at slot opp(i) of
  /// x + c_i (the Esoteric-Pull rotated-layout contract).
  Real population(int i, int x, int y, int z) const {
    if (rotated())
      return f_[0](D::opp(i), x + D::c[i][0], y + D::c[i][1], z + D::c[i][2]);
    return f()(i, x, y, z);
  }

  Real density(int x, int y, int z) const {
    Real rho;
    Vec3 u;
    if (rotated())
      cell_macroscopic<D>(EsotericPhase1View<D, S>(f_[0]), x, y, z, cfg_, rho,
                          u);
    else
      cell_macroscopic<D>(f(), x, y, z, cfg_, rho, u);
    return rho;
  }
  Vec3 velocity(int x, int y, int z) const {
    Real rho;
    Vec3 u;
    if (rotated())
      cell_macroscopic<D>(EsotericPhase1View<D, S>(f_[0]), x, y, z, cfg_, rho,
                          u);
    else
      cell_macroscopic<D>(f(), x, y, z, cfg_, rho, u);
    return u;
  }
  void computeMacroscopic(ScalarField& rho, VectorField& u) const {
    if (rotated())
      compute_macroscopic<D>(EsotericPhase1View<D, S>(f_[0]), mask_, mats_,
                             cfg_, rho, u);
    else
      compute_macroscopic<D>(f(), mask_, mats_, cfg_, rho, u);
  }

  Real totalMass() const {
    if (rotated())
      return total_mass<D>(EsotericPhase1View<D, S>(f_[0]), mask_, mats_);
    return total_mass<D>(f(), mask_, mats_);
  }
  Vec3 totalMomentum() const {
    if (rotated())
      return total_momentum<D>(EsotericPhase1View<D, S>(f_[0]), mask_, mats_);
    return total_momentum<D>(f(), mask_, mats_);
  }

 private:
  bool inPlace() const { return backend_->info().caps.inPlaceStreaming; }
  /// True when the single in-place buffer is in the rotated (post-even)
  /// layout and reads must decode through EsotericPhase1View.
  bool rotated() const { return inPlace() && parity_ == 1; }

  /// In-place step schedule: even phase wraps forward, sweeps, and wraps
  /// the rotated layout back; odd phase is purely local (no halo
  /// traffic).  The wrap choreography is part of the in-place contract
  /// (DESIGN.md §11), so it stays in the solver; the backend only sweeps.
  void stepInPlace() {
    const Box3 range = grid_.interior();
    if (parity_ == 0) {
      {
        obs::TraceScope wrapScope("periodic_wrap");
        apply_periodic(f_[0], periodic_);
      }
      {
        obs::TraceScope kernelScope("compute.kernel");
        backend_->stepInPlaceEven(f_[0], mask_, mats_, cfg_, range,
                                  hostThreads_);
      }
      obs::TraceScope wrapScope("periodic_wrap");
      apply_periodic_reverse<D>(f_[0], periodic_);
    } else {
      obs::TraceScope kernelScope("compute.kernel");
      backend_->stepInPlaceOdd(f_[0], mask_, mats_, cfg_, range,
                               hostThreads_);
    }
  }

  Grid grid_;
  CollisionConfig cfg_;
  Periodicity periodic_;
  Field f_[2];
  MaskField mask_;
  MaterialTable mats_;
  std::unique_ptr<KernelBackend<D, S>> backend_;
  KernelVariant variant_ = KernelVariant::Fused;
  int hostThreads_ = 1;
  int parity_ = 0;
  std::uint64_t steps_ = 0;
  bool maskFinal_ = false;
};

}  // namespace swlb
