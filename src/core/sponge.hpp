// Sponge (absorbing) zones: cells near an open boundary are blended
// toward a target equilibrium after each step, damping vortices and
// pressure waves before they hit the outflow and reflect.  Standard
// practice for the wake/cylinder DNS cases the paper runs (§V-A1).
#pragma once

#include <cmath>

#include "core/equilibrium.hpp"
#include "core/field.hpp"

namespace swlb {

struct SpongeZone {
  Box3 box;              ///< cells covered by the sponge (interior coords)
  int axis = 0;          ///< 0/1/2: direction of increasing damping
  bool highSide = true;  ///< damping grows toward box.hi (an outlet at +axis)
  Real maxStrength = 0.1;  ///< blend factor at the strongest edge (0..1]
  Real targetRho = 1.0;
  Vec3 targetU{0, 0, 0};
};

/// Damping strength of `zone` at cell (x, y, z): quadratic ramp from 0 at
/// the inner edge to maxStrength at the outer edge; 0 outside the box.
inline Real sponge_strength(const SpongeZone& zone, int x, int y, int z) {
  if (!zone.box.contains({x, y, z})) return 0;
  const int c = zone.axis == 0 ? x : zone.axis == 1 ? y : z;
  const int lo = zone.axis == 0 ? zone.box.lo.x
                 : zone.axis == 1 ? zone.box.lo.y
                                  : zone.box.lo.z;
  const int hi = zone.axis == 0 ? zone.box.hi.x
                 : zone.axis == 1 ? zone.box.hi.y
                                  : zone.box.hi.z;
  const Real t = hi - lo <= 1
                     ? Real(1)
                     : static_cast<Real>(c - lo) / static_cast<Real>(hi - 1 - lo);
  const Real ramp = zone.highSide ? t : Real(1) - t;
  return zone.maxStrength * ramp * ramp;
}

/// Blend the populations inside the zone toward the target equilibrium:
///   f <- (1 - s) f + s feq(rho_t, u_t).
/// Call after each step on the solver's current field.
template <class D, class S>
void apply_sponge(PopulationFieldT<S>& f, const SpongeZone& zone) {
  const Grid& g = f.grid();
  const Box3 b = intersect(zone.box, g.interior());
  Real feq[D::Q];
  equilibria<D>(zone.targetRho, zone.targetU, feq);
  for (int z = b.lo.z; z < b.hi.z; ++z)
    for (int y = b.lo.y; y < b.hi.y; ++y)
      for (int x = b.lo.x; x < b.hi.x; ++x) {
        const Real s = sponge_strength(zone, x, y, z);
        if (s <= 0) continue;
        for (int i = 0; i < D::Q; ++i)
          f(i, x, y, z) += s * (feq[i] - f(i, x, y, z));
      }
}

}  // namespace swlb
