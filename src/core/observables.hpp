// Flow observables: momentum-exchange forces on obstacles, vorticity and
// Q-criterion fields (paper Figs. 12/18/19 visualize Q-criterion
// isosurfaces), kinetic energy.
#pragma once

#include "core/boundary.hpp"
#include "core/field.hpp"
#include "core/lattice.hpp"

namespace swlb {

/// Momentum-exchange force exerted by the fluid on all bounce-back cells
/// whose material id satisfies `onMaterial` (pass kSolid for a single
/// obstacle painted with the built-in wall id, or a custom id).
///
/// Uses the standard momentum-exchange method on the post-collision field:
/// each fluid->wall link transfers c_i (f_i* + f_opp^in); with half-way
/// bounce-back f_opp^in = f_i* (+ moving-wall correction), giving
/// F = sum over links of c_i (2 f_i* - 6 w_i rho_w (c_i . u_w)).
template <class D, class F>
Vec3 momentum_exchange_force(const F& f, const MaskField& mask,
                             const MaterialTable& mats, std::uint8_t onMaterial) {
  const Grid& g = f.grid();
  Vec3 force{0, 0, 0};
  for (int z = 0; z < g.nz; ++z)
    for (int y = 0; y < g.ny; ++y)
      for (int x = 0; x < g.nx; ++x) {
        if (mats[mask(x, y, z)].cls != CellClass::Fluid) continue;
        for (int i = 1; i < D::Q; ++i) {
          const int xn = x + D::c[i][0];
          const int yn = y + D::c[i][1];
          const int zn = z + D::c[i][2];
          if (mask(xn, yn, zn) != onMaterial) continue;
          const Material& m = mats[onMaterial];
          if (m.cls != CellClass::Solid && m.cls != CellClass::MovingWall) continue;
          const Real cu = D::c[i][0] * m.u.x + D::c[i][1] * m.u.y + D::c[i][2] * m.u.z;
          const Real t = Real(2) * f(i, x, y, z) - Real(6) * D::w[i] * m.rho * cu;
          force.x += t * D::c[i][0];
          force.y += t * D::c[i][1];
          force.z += t * D::c[i][2];
        }
      }
  return force;
}

/// Total kinetic energy (0.5 rho u^2 summed over fluid cells) of a
/// precomputed macroscopic state.
Real kinetic_energy(const ScalarField& rho, const VectorField& u,
                    const MaskField& mask, const MaterialTable& mats);

/// Vorticity field (curl of u) with central differences in the interior
/// and one-sided differences at the domain edge.
void vorticity(const VectorField& u, VectorField& curl);

/// Q-criterion: Q = 0.5 (|Omega|^2 - |S|^2) of the velocity gradient.
/// Positive Q marks vortex cores (paper Figs. 12/18/19).
void q_criterion(const VectorField& u, ScalarField& q);

}  // namespace swlb
