// Lattice descriptors for the DnQm velocity sets used by SunwayLB.
//
// The paper's solver uses D3Q19 (Fig. 3); D2Q9 is the standard 2-D model
// and D3Q15/D3Q27 are provided for completeness and cross-validation.
// All descriptors carry 3-component velocities so that a single kernel
// code path covers 2-D (cz == 0, NZ == 1) and 3-D lattices.
//
// Index convention: population 0 is the rest population; the remaining
// populations are stored in opposite pairs (2k-1, 2k), so
// opp(i) = i odd ? i+1 : i-1 for i >= 1.  Tests verify this invariant.
#pragma once

#include "core/common.hpp"

namespace swlb {

/// Speed of sound squared (lattice units) — identical for all DnQm sets here.
inline constexpr Real kCs2 = 1.0 / 3.0;

namespace detail {
/// Opposite index under the pair-ordering convention.
constexpr int pair_opposite(int i) { return i == 0 ? 0 : (i % 2 == 1 ? i + 1 : i - 1); }
}  // namespace detail

struct D2Q9 {
  static constexpr int dim = 2;
  static constexpr int Q = 9;
  static constexpr int c[Q][3] = {
      {0, 0, 0},
      {1, 0, 0},  {-1, 0, 0},  {0, 1, 0},  {0, -1, 0},
      {1, 1, 0},  {-1, -1, 0}, {1, -1, 0}, {-1, 1, 0},
  };
  static constexpr Real w[Q] = {
      4.0 / 9.0,
      1.0 / 9.0,  1.0 / 9.0,  1.0 / 9.0,  1.0 / 9.0,
      1.0 / 36.0, 1.0 / 36.0, 1.0 / 36.0, 1.0 / 36.0,
  };
  static constexpr int opp(int i) { return detail::pair_opposite(i); }
  static constexpr const char* name() { return "D2Q9"; }
};

struct D3Q15 {
  static constexpr int dim = 3;
  static constexpr int Q = 15;
  static constexpr int c[Q][3] = {
      {0, 0, 0},
      {1, 0, 0},  {-1, 0, 0},  {0, 1, 0},  {0, -1, 0},  {0, 0, 1},  {0, 0, -1},
      {1, 1, 1},  {-1, -1, -1}, {1, 1, -1}, {-1, -1, 1},
      {1, -1, 1}, {-1, 1, -1},  {1, -1, -1}, {-1, 1, 1},
  };
  static constexpr Real w[Q] = {
      2.0 / 9.0,
      1.0 / 9.0,  1.0 / 9.0,  1.0 / 9.0,  1.0 / 9.0,  1.0 / 9.0,  1.0 / 9.0,
      1.0 / 72.0, 1.0 / 72.0, 1.0 / 72.0, 1.0 / 72.0,
      1.0 / 72.0, 1.0 / 72.0, 1.0 / 72.0, 1.0 / 72.0,
  };
  static constexpr int opp(int i) { return detail::pair_opposite(i); }
  static constexpr const char* name() { return "D3Q15"; }
};

/// The production lattice of SunwayLB (paper Fig. 3).
struct D3Q19 {
  static constexpr int dim = 3;
  static constexpr int Q = 19;
  static constexpr int c[Q][3] = {
      {0, 0, 0},
      {1, 0, 0},  {-1, 0, 0},  {0, 1, 0},  {0, -1, 0},  {0, 0, 1},  {0, 0, -1},
      {1, 1, 0},  {-1, -1, 0}, {1, -1, 0}, {-1, 1, 0},
      {1, 0, 1},  {-1, 0, -1}, {1, 0, -1}, {-1, 0, 1},
      {0, 1, 1},  {0, -1, -1}, {0, 1, -1}, {0, -1, 1},
  };
  static constexpr Real w[Q] = {
      1.0 / 3.0,
      1.0 / 18.0, 1.0 / 18.0, 1.0 / 18.0, 1.0 / 18.0, 1.0 / 18.0, 1.0 / 18.0,
      1.0 / 36.0, 1.0 / 36.0, 1.0 / 36.0, 1.0 / 36.0,
      1.0 / 36.0, 1.0 / 36.0, 1.0 / 36.0, 1.0 / 36.0,
      1.0 / 36.0, 1.0 / 36.0, 1.0 / 36.0, 1.0 / 36.0,
  };
  static constexpr int opp(int i) { return detail::pair_opposite(i); }
  static constexpr const char* name() { return "D3Q19"; }
};

struct D3Q27 {
  static constexpr int dim = 3;
  static constexpr int Q = 27;
  static constexpr int c[Q][3] = {
      {0, 0, 0},
      {1, 0, 0},  {-1, 0, 0},  {0, 1, 0},  {0, -1, 0},  {0, 0, 1},  {0, 0, -1},
      {1, 1, 0},  {-1, -1, 0}, {1, -1, 0}, {-1, 1, 0},
      {1, 0, 1},  {-1, 0, -1}, {1, 0, -1}, {-1, 0, 1},
      {0, 1, 1},  {0, -1, -1}, {0, 1, -1}, {0, -1, 1},
      {1, 1, 1},  {-1, -1, -1}, {1, 1, -1}, {-1, -1, 1},
      {1, -1, 1}, {-1, 1, -1},  {1, -1, -1}, {-1, 1, 1},
  };
  static constexpr Real w[Q] = {
      8.0 / 27.0,
      2.0 / 27.0,  2.0 / 27.0,  2.0 / 27.0,  2.0 / 27.0,  2.0 / 27.0,  2.0 / 27.0,
      1.0 / 54.0,  1.0 / 54.0,  1.0 / 54.0,  1.0 / 54.0,
      1.0 / 54.0,  1.0 / 54.0,  1.0 / 54.0,  1.0 / 54.0,
      1.0 / 54.0,  1.0 / 54.0,  1.0 / 54.0,  1.0 / 54.0,
      1.0 / 216.0, 1.0 / 216.0, 1.0 / 216.0, 1.0 / 216.0,
      1.0 / 216.0, 1.0 / 216.0, 1.0 / 216.0, 1.0 / 216.0,
  };
  static constexpr int opp(int i) { return detail::pair_opposite(i); }
  static constexpr const char* name() { return "D3Q27"; }
};

/// Relaxation time tau from lattice kinematic viscosity: nu = (2*tau - 1)/6.
constexpr Real tau_from_viscosity(Real nu) { return 3.0 * nu + 0.5; }
/// Lattice viscosity from relaxation time.
constexpr Real viscosity_from_tau(Real tau) { return (2.0 * tau - 1.0) / 6.0; }
/// Collision frequency omega = 1/tau.
constexpr Real omega_from_tau(Real tau) { return 1.0 / tau; }

}  // namespace swlb
