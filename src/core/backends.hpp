// Built-in kernel backends and the per-(lattice, storage) registry
// (DESIGN.md §14).  Each host backend is a thin adapter from the
// KernelBackend hooks onto the kernels in core/kernels*.hpp; the SW CPE
// emulator adapter lives in sw/backend_cpe.hpp and is registered here
// for the lattices its kernel is instantiated for.  Solvers obtain
// instances through make_backend<D, S>(name); unknown names throw with
// the registered list — requesting a backend never silently degrades to
// another one.
#pragma once

#include <type_traits>

#include "core/backend.hpp"
#include "core/kernels_team.hpp"
#include "sw/backend_cpe.hpp"

#ifdef SWLB_OPENMP
#include <omp.h>
#endif

namespace swlb {

namespace detail {

/// CRTP-free helper: backends that only differ in which kernel function
/// they call share everything else through this base.
template <class D, class S>
class TwoLatticeBackend : public KernelBackend<D, S> {
 public:
  explicit TwoLatticeBackend(const char* name)
      : info_(*find_backend_info(name)) {}
  const BackendInfo& info() const override { return info_; }

 private:
  const BackendInfo& info_;
};

}  // namespace detail

template <class D, class S>
class FusedBackend final : public detail::TwoLatticeBackend<D, S> {
 public:
  FusedBackend() : detail::TwoLatticeBackend<D, S>("fused") {}
  void step(const BackendStepArgs<D, S>& a) override {
    stream_collide_fused_mt<D>(*a.src, *a.dst, *a.mask, *a.mats, *a.cfg,
                               a.range, a.threads);
  }
};

template <class D, class S>
class GenericBackend final : public detail::TwoLatticeBackend<D, S> {
 public:
  GenericBackend() : detail::TwoLatticeBackend<D, S>("generic") {}
  void step(const BackendStepArgs<D, S>& a) override {
    stream_collide_generic<D>(*a.src, *a.dst, *a.mask, *a.mats, *a.cfg,
                              a.range);
  }
};

template <class D, class S>
class TwoStepBackend final : public detail::TwoLatticeBackend<D, S> {
 public:
  TwoStepBackend() : detail::TwoLatticeBackend<D, S>("twostep") {}
  void step(const BackendStepArgs<D, S>& a) override {
    stream_only<D>(*a.src, *a.dst, *a.mask, *a.mats, a.range);
    collide_inplace<D>(*a.dst, *a.mask, *a.mats, *a.cfg, a.range);
  }
};

template <class D, class S>
class PushBackend final : public detail::TwoLatticeBackend<D, S> {
 public:
  PushBackend() : detail::TwoLatticeBackend<D, S>("push") {}
  void step(const BackendStepArgs<D, S>& a) override {
    stream_collide_push<D>(*a.src, *a.dst, *a.mask, *a.mats, *a.cfg, a.range,
                           a.periodic);
  }
};

template <class D, class S>
class SimdBackend final : public detail::TwoLatticeBackend<D, S> {
 public:
  SimdBackend() : detail::TwoLatticeBackend<D, S>("simd") {}
  void step(const BackendStepArgs<D, S>& a) override {
    stream_collide_simd_mt<D>(*a.src, *a.dst, *a.mask, *a.mats, *a.cfg,
                              a.range, a.threads);
  }
};

/// In-place Esoteric-Pull backend: implements the even/odd phase pair,
/// two-lattice step() is rejected (callers branch on
/// caps.inPlaceStreaming, so reaching it is a solver bug).
template <class D, class S>
class EsotericBackend final : public detail::TwoLatticeBackend<D, S> {
 public:
  using Field = PopulationFieldT<S>;
  EsotericBackend() : detail::TwoLatticeBackend<D, S>("esoteric") {}
  void step(const BackendStepArgs<D, S>&) override {
    throw Error("backend 'esoteric' streams in place; use the "
                "stepInPlaceEven/Odd hooks");
  }
  void stepInPlaceEven(Field& f, const MaskField& mask,
                       const MaterialTable& mats, const CollisionConfig& cfg,
                       const Box3& range, int threads) override {
    stream_collide_esoteric_even_mt<D>(f, mask, mats, cfg, range, threads);
  }
  void stepInPlaceOdd(Field& f, const MaskField& mask,
                      const MaterialTable& mats, const CollisionConfig& cfg,
                      const Box3& range, int threads) override {
    stream_collide_esoteric_odd_mt<D>(f, mask, mats, cfg, range, threads);
  }
};

/// Host thread-team backend: the fused kernel over the canonical z-slab
/// split, executed by a persistent team (OpenMP when the build has it,
/// the TeamPool fallback otherwise) instead of per-step thread spawns.
/// `threads <= 0` selects one lane per hardware core — the knob that
/// lets a single rank use the whole host (the CPE-cluster role on
/// commodity machines).
template <class D, class S>
class ThreadTeamBackend final : public detail::TwoLatticeBackend<D, S> {
 public:
  ThreadTeamBackend() : detail::TwoLatticeBackend<D, S>("threads") {}
  void step(const BackendStepArgs<D, S>& a) override {
    const int nz = a.range.hi.z - a.range.lo.z;
    const int n = std::max(1, std::min(resolve_host_threads(a.threads), nz));
    if (n <= 1) {
      stream_collide_fused<D>(*a.src, *a.dst, *a.mask, *a.mats, *a.cfg,
                              a.range);
      return;
    }
#ifdef SWLB_OPENMP
#pragma omp parallel num_threads(n)
    {
      const int t = omp_get_thread_num();
      if (t < n)
        stream_collide_fused<D>(*a.src, *a.dst, *a.mask, *a.mats, *a.cfg,
                                team_slab(a.range, t, n));
    }
#else
    pool_.parallelFor(n, [&](int t) {
      stream_collide_fused<D>(*a.src, *a.dst, *a.mask, *a.mats, *a.cfg,
                              team_slab(a.range, t, n));
    });
#endif
  }

 private:
#ifndef SWLB_OPENMP
  TeamPool pool_;
#endif
};

/// Factory registry for one (lattice, storage) instantiation.  Built-ins
/// register in the constructor; a backend whose kernel is not
/// instantiated for this lattice (swcpe outside D3Q19/D2Q9) is simply
/// absent, so requesting it throws the explicit "not registered" error
/// instead of link-failing or falling back.
template <class D, class S>
class BackendRegistry {
 public:
  using Factory = std::function<std::unique_ptr<KernelBackend<D, S>>()>;

  static BackendRegistry& instance() {
    static BackendRegistry reg;
    return reg;
  }

  bool has(const std::string& name) const {
    return factories_.count(name) > 0;
  }

  std::vector<std::string> names() const {
    std::vector<std::string> out;
    out.reserve(factories_.size());
    for (const BackendInfo& b : backend_catalog())
      if (has(b.name)) out.push_back(b.name);
    return out;
  }

  std::unique_ptr<KernelBackend<D, S>> make(const std::string& name) const {
    const auto it = factories_.find(name);
    if (it == factories_.end()) {
      std::string known;
      for (const std::string& n : names()) {
        if (!known.empty()) known += ", ";
        known += n;
      }
      throw Error("backend '" + name + "' is not registered for lattice " +
                  D::name() + " (registered: " + known + ")");
    }
    return it->second();
  }

 private:
  BackendRegistry() {
    add("fused", [] { return std::make_unique<FusedBackend<D, S>>(); });
    add("generic", [] { return std::make_unique<GenericBackend<D, S>>(); });
    add("twostep", [] { return std::make_unique<TwoStepBackend<D, S>>(); });
    add("push", [] { return std::make_unique<PushBackend<D, S>>(); });
    add("simd", [] { return std::make_unique<SimdBackend<D, S>>(); });
    add("esoteric", [] { return std::make_unique<EsotericBackend<D, S>>(); });
    add("threads",
        [] { return std::make_unique<ThreadTeamBackend<D, S>>(); });
    // The CPE kernel is explicitly instantiated for D3Q19/D2Q9 only
    // (sw/sw_kernels.cpp); other lattices must get the not-registered
    // error above, not a link error.
    if constexpr (std::is_same_v<D, D3Q19> || std::is_same_v<D, D2Q9>) {
      add("swcpe",
          [] { return std::make_unique<sw::SwCpeBackend<D, S>>(); });
    }
  }

  void add(const char* name, Factory f) {
    SWLB_ASSERT(find_backend_info(name) != nullptr);
    factories_.emplace(name, std::move(f));
  }

  std::map<std::string, Factory> factories_;
};

/// Create a backend instance by catalog name for (D, S).  Throws (with
/// the registered list) for unknown names or lattices the backend does
/// not support — the capability-rejection contract.
template <class D, class S>
std::unique_ptr<KernelBackend<D, S>> make_backend(const std::string& name) {
  return BackendRegistry<D, S>::instance().make(name);
}

/// Registered backend names for (D, S), in catalog order.
template <class D, class S>
std::vector<std::string> backend_names() {
  return BackendRegistry<D, S>::instance().names();
}

}  // namespace swlb
