// Running flow statistics for DNS/LES post-processing: time-averaged
// velocity and Reynolds stresses accumulated over steps (what the paper's
// turbulence cases report from, e.g. the Re=3900 cylinder wake).
//
// Uses Welford-style accumulation: numerically stable, single pass, no
// stored history.
#pragma once

#include <cstdint>

#include "core/field.hpp"

namespace swlb {

class FlowStatistics {
 public:
  explicit FlowStatistics(const Grid& grid)
      : mean_(grid), m2xx_(grid, 0), m2yy_(grid, 0), m2zz_(grid, 0),
        m2xy_(grid, 0), m2xz_(grid, 0), m2yz_(grid, 0), meanRho_(grid, 0) {}

  const Grid& grid() const { return mean_.grid(); }
  std::uint64_t samples() const { return n_; }

  /// Accumulate one snapshot of the macroscopic fields.
  void accumulate(const ScalarField& rho, const VectorField& u) {
    SWLB_ASSERT(rho.grid() == grid() && u.grid() == grid());
    ++n_;
    const Real invN = Real(1) / static_cast<Real>(n_);
    const Grid& g = grid();
    for (int z = 0; z < g.nz; ++z)
      for (int y = 0; y < g.ny; ++y)
        for (int x = 0; x < g.nx; ++x) {
          const Vec3 v = u.at(x, y, z);
          const Vec3 m = mean_.at(x, y, z);
          const Vec3 d{v.x - m.x, v.y - m.y, v.z - m.z};
          const Vec3 m1{m.x + d.x * invN, m.y + d.y * invN, m.z + d.z * invN};
          mean_.set(x, y, z, m1);
          // Co-moment updates: M2 += d * (v - new_mean).
          const Vec3 d2{v.x - m1.x, v.y - m1.y, v.z - m1.z};
          m2xx_(x, y, z) += d.x * d2.x;
          m2yy_(x, y, z) += d.y * d2.y;
          m2zz_(x, y, z) += d.z * d2.z;
          m2xy_(x, y, z) += d.x * d2.y;
          m2xz_(x, y, z) += d.x * d2.z;
          m2yz_(x, y, z) += d.y * d2.z;
          meanRho_(x, y, z) += (rho(x, y, z) - meanRho_(x, y, z)) * invN;
        }
  }

  /// Time-averaged velocity at a cell.
  Vec3 meanVelocity(int x, int y, int z) const { return mean_.at(x, y, z); }
  Real meanDensity(int x, int y, int z) const { return meanRho_(x, y, z); }

  /// Reynolds-stress component <u_a' u_b'> at a cell (a, b in {0,1,2}).
  Real reynoldsStress(int a, int b, int x, int y, int z) const {
    if (n_ < 2) return 0;
    const Real invN = Real(1) / static_cast<Real>(n_);
    const ScalarField* comp = nullptr;
    if (a > b) std::swap(a, b);
    if (a == 0 && b == 0) comp = &m2xx_;
    else if (a == 1 && b == 1) comp = &m2yy_;
    else if (a == 2 && b == 2) comp = &m2zz_;
    else if (a == 0 && b == 1) comp = &m2xy_;
    else if (a == 0 && b == 2) comp = &m2xz_;
    else if (a == 1 && b == 2) comp = &m2yz_;
    else throw Error("reynoldsStress: component out of range");
    return (*comp)(x, y, z) * invN;
  }

  /// Turbulent kinetic energy k = 0.5 (<u'u'> + <v'v'> + <w'w'>).
  Real turbulentKineticEnergy(int x, int y, int z) const {
    return Real(0.5) * (reynoldsStress(0, 0, x, y, z) +
                        reynoldsStress(1, 1, x, y, z) +
                        reynoldsStress(2, 2, x, y, z));
  }

  /// Copy the mean-velocity field out (for VTK/PPM writers).
  const VectorField& meanVelocityField() const { return mean_; }

  void reset() {
    n_ = 0;
    VectorField fresh(grid());
    mean_ = fresh;
    m2xx_.fill(0);
    m2yy_.fill(0);
    m2zz_.fill(0);
    m2xy_.fill(0);
    m2xz_.fill(0);
    m2yz_.fill(0);
    meanRho_.fill(0);
  }

 private:
  std::uint64_t n_ = 0;
  VectorField mean_;
  ScalarField m2xx_, m2yy_, m2zz_, m2xy_, m2xz_, m2yz_;
  ScalarField meanRho_;
};

}  // namespace swlb
