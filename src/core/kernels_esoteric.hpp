// In-place single-buffer streaming (Esoteric-Pull, DESIGN.md §11).
//
// The A-B two-lattice pattern doubles population memory purely to make
// streaming race-free.  The Esoteric-Pull scheme (Lehmann 2022, the scheme
// FluidX3D ships) gets the same race-freedom from an index rotation on a
// *single* buffer, halving population memory and therefore doubling the
// largest mesh per rank:
//
//   * Even step (phase 0 -> 1).  The buffer is in natural order
//     (slot [i, x] holds f_i(x)).  Each cell gathers exactly like the
//     fused pull kernel, collides, and scatters f_i* to [opp(i), x + c_i]
//     — the neighbour slot the neighbour would have pulled from anyway.
//   * Odd step (phase 1 -> 0).  f_i arriving at x now sits in the cell's
//     own slot [opp(i), x]; the gather is fully local, and post-collision
//     values are stored back in natural order [i, x].
//
// The key invariant making this order-independent (and thus trivially
// multithreadable over z-slabs): every address a cell reads is written by
// that same cell and no other, in both phases.  Writes that would leave
// the domain land in wall/halo cells as "parks": a population pushed into
// a bounce-back wall during the even step is read back — reversed — by the
// same cell during the odd step ([i, x - c_i]), which *is* half-way
// bounce-back; the moving-wall momentum term is added by the reader.
// Solid/MovingWall storage therefore becomes a scratch mailbox, and
// periodic faces need a *reverse* wrap after the even step to fold the
// halo deposits back onto the opposite interior edge.
//
// Supported cell classes: Fluid, Solid, MovingWall, ZouHeVelocity,
// ZouHePressure, Porous, VelocityInlet.  Outflow (copy from an interior
// neighbour) is ordering-dependent in-place and is rejected by the solver.
//
// Included at the bottom of core/kernels.hpp; do not include directly.
#pragma once

#include "core/kernels_simd.hpp"

namespace swlb {

namespace detail {

/// Reduced-precision bit-identity with the two-lattice kernels requires
/// the DDF shift of a slot to equal the shift of its opposite (a value
/// encoded into slot opp(i) must decode as if stored in slot i).  True for
/// every lattice here: opposite pairs (2k-1, 2k) share their weight.
template <class D>
constexpr bool pair_symmetric_weights() {
  for (int i = 0; i < D::Q; ++i)
    if (D::w[i] != D::w[D::opp(i)]) return false;
  return true;
}

}  // namespace detail

/// Can the esoteric single-buffer scheme handle this cell class?
constexpr bool esoteric_supports(CellClass cls) {
  return cls != CellClass::Outflow;
}

/// Even (phase 0 -> 1) in-place update: pull-gather from the natural
/// layout, collide, scatter post-collision values downstream into the
/// opposite slots.  Any sub-box order is valid (read set == write set per
/// cell), so the _mt wrapper splits z-slabs exactly like the fused kernel.
template <class D, class S>
void stream_collide_esoteric_even(PopulationFieldT<S>& f, const MaskField& mask,
                                  const MaterialTable& mats,
                                  const CollisionConfig& cfg,
                                  const Box3& range) {
  static_assert(detail::pair_symmetric_weights<D>(),
                "esoteric scheme stores populations in opposite slots and "
                "needs w[i] == w[opp(i)] for shift-exact encoding");
  using Traits = StorageTraits<S>;
  const Grid& g = f.grid();
  SWLB_ASSERT(mask.grid() == g);

  std::ptrdiff_t off[D::Q];
  std::size_t slab[D::Q];
  Real sh[D::Q];
  for (int i = 0; i < D::Q; ++i) {
    off[i] = static_cast<std::ptrdiff_t>(
        (static_cast<long long>(D::c[i][2]) * g.sy() + D::c[i][1]) * g.sx() +
        D::c[i][0]);
    slab[i] = f.slab(i);
    sh[i] = f.shift(i);
  }

  S* data = f.data();
  const std::uint8_t* mdata = mask.data();

  auto ld = [&](int i, std::size_t p) -> Real {
    if constexpr (PopulationFieldT<S>::kIdentityStorage)
      return data[slab[i] + p];
    else
      return Traits::decode(data[slab[i] + p], sh[i]);
  };
  auto st = [&](int i, std::size_t p, Real v) {
    if constexpr (PopulationFieldT<S>::kIdentityStorage)
      data[slab[i] + p] = v;
    else
      data[slab[i] + p] = Traits::encode(v, sh[i]);
  };

  auto scalarCell = [&](std::size_t p) {
    const std::uint8_t id = mdata[p];
    const Material* zh = nullptr;
    if (id != MaterialTable::kFluid) {
      const Material& m = mats[id];
      if (!is_streaming(m.cls)) {
        if (m.cls == CellClass::VelocityInlet) {
          Real feq[D::Q];
          equilibria<D>(m.rho, m.u, feq);
          for (int i = 0; i < D::Q; ++i)
            st(D::opp(i), p + off[i], feq[i]);
        }
        // Solid / MovingWall slots are parks (scratch); Outflow is
        // rejected by the solver before the first step.
        return;
      }
      zh = &m;
    }
    Real fin[D::Q];
    for (int i = 0; i < D::Q; ++i) {
      const std::size_t pn = p - off[i];
      if (mdata[pn] == MaterialTable::kFluid) {
        fin[i] = ld(i, pn);
      } else {
        const Material& m = mats[mdata[pn]];
        if (is_pullable(m.cls)) {
          fin[i] = ld(i, pn);
        } else if (m.cls == CellClass::Solid) {
          fin[i] = ld(D::opp(i), p);
        } else {  // MovingWall
          const Real cu =
              D::c[i][0] * m.u.x + D::c[i][1] * m.u.y + D::c[i][2] * m.u.z;
          fin[i] = ld(D::opp(i), p) + Real(6) * D::w[i] * m.rho * cu;
        }
      }
    }
    if (zh && zh->cls == CellClass::Porous) {
      Real fpre[D::Q];
      for (int i = 0; i < D::Q; ++i) fpre[i] = fin[i];
      Real rho;
      Vec3 u;
      collide_cell<D>(fin, cfg, rho, u);
      porous_blend<D>(fin, fpre, zh->solidity);
      for (int i = 0; i < D::Q; ++i) st(D::opp(i), p + off[i], fin[i]);
      return;
    }
    if (zh) zouhe_fix<D>(fin, *zh);
    Real rho;
    Vec3 u;
    collide_cell<D>(fin, cfg, rho, u);
    for (int i = 0; i < D::Q; ++i) st(D::opp(i), p + off[i], fin[i]);
  };

  auto isBulk = [&](std::size_t p) -> bool {
    if (mdata[p] != MaterialTable::kFluid) return false;
    for (int i = 1; i < D::Q; ++i)
      if (mdata[p - off[i]] != MaterialTable::kFluid) return false;
    return true;
  };

  for (int z = range.lo.z; z < range.hi.z; ++z)
    for (int y = range.lo.y; y < range.hi.y; ++y) {
      const std::size_t rowBase = g.idx(range.lo.x, y, z);
      int x = range.lo.x;
      while (x < range.hi.x) {
        std::size_t p = rowBase + static_cast<std::size_t>(x - range.lo.x);
        int xs = x;
        while (xs < range.hi.x && !isBulk(p)) {
          scalarCell(p);
          ++xs;
          ++p;
        }
        int xe = xs;
        while (xe < range.hi.x && isBulk(p)) {
          ++xe;
          ++p;
        }
        const int len = xe - xs;
        if (len > 0) {
          const std::size_t p0 =
              rowBase + static_cast<std::size_t>(xs - range.lo.x);
          // Each lane reads and writes only its own cell's address set, so
          // cross-lane independence holds and omp simd is legal.
          SWLB_PRAGMA_SIMD
          for (int lane = 0; lane < len; ++lane) {
            const std::size_t pw = p0 + static_cast<std::size_t>(lane);
            Real fin[D::Q];
            for (int i = 0; i < D::Q; ++i) fin[i] = ld(i, pw - off[i]);
            Real rho;
            Vec3 u;
            collide_cell<D>(fin, cfg, rho, u);
            for (int i = 0; i < D::Q; ++i)
              st(D::opp(i), pw + off[i], fin[i]);
          }
        }
        x = xe;
      }
    }
}

/// Odd (phase 1 -> 0) in-place update: gather locally from the rotated
/// layout (own opposite slots; wall parks at [i, x - c_i]), collide, store
/// back in natural order.  All writes are cell-local.
template <class D, class S>
void stream_collide_esoteric_odd(PopulationFieldT<S>& f, const MaskField& mask,
                                 const MaterialTable& mats,
                                 const CollisionConfig& cfg,
                                 const Box3& range) {
  static_assert(detail::pair_symmetric_weights<D>(),
                "esoteric scheme stores populations in opposite slots and "
                "needs w[i] == w[opp(i)] for shift-exact encoding");
  using Traits = StorageTraits<S>;
  const Grid& g = f.grid();
  SWLB_ASSERT(mask.grid() == g);

  std::ptrdiff_t off[D::Q];
  std::size_t slab[D::Q];
  Real sh[D::Q];
  for (int i = 0; i < D::Q; ++i) {
    off[i] = static_cast<std::ptrdiff_t>(
        (static_cast<long long>(D::c[i][2]) * g.sy() + D::c[i][1]) * g.sx() +
        D::c[i][0]);
    slab[i] = f.slab(i);
    sh[i] = f.shift(i);
  }

  S* data = f.data();
  const std::uint8_t* mdata = mask.data();

  auto ld = [&](int i, std::size_t p) -> Real {
    if constexpr (PopulationFieldT<S>::kIdentityStorage)
      return data[slab[i] + p];
    else
      return Traits::decode(data[slab[i] + p], sh[i]);
  };
  auto st = [&](int i, std::size_t p, Real v) {
    if constexpr (PopulationFieldT<S>::kIdentityStorage)
      data[slab[i] + p] = v;
    else
      data[slab[i] + p] = Traits::encode(v, sh[i]);
  };

  auto scalarCell = [&](std::size_t p) {
    const std::uint8_t id = mdata[p];
    const Material* zh = nullptr;
    if (id != MaterialTable::kFluid) {
      const Material& m = mats[id];
      if (!is_streaming(m.cls)) {
        if (m.cls == CellClass::VelocityInlet) {
          Real feq[D::Q];
          equilibria<D>(m.rho, m.u, feq);
          for (int i = 0; i < D::Q; ++i) st(i, p, feq[i]);
        }
        return;
      }
      zh = &m;
    }
    Real fin[D::Q];
    for (int i = 0; i < D::Q; ++i) {
      const std::size_t pn = p - off[i];
      const std::uint8_t idn = mdata[pn];
      if (idn == MaterialTable::kFluid) {
        fin[i] = ld(D::opp(i), p);
        continue;
      }
      const Material& m = mats[idn];
      if (is_pullable(m.cls)) {
        fin[i] = ld(D::opp(i), p);
      } else if (m.cls == CellClass::Solid) {
        fin[i] = ld(i, pn);  // park: our own even-step deposit, reversed
      } else {  // MovingWall
        const Real cu =
            D::c[i][0] * m.u.x + D::c[i][1] * m.u.y + D::c[i][2] * m.u.z;
        fin[i] = ld(i, pn) + Real(6) * D::w[i] * m.rho * cu;
      }
    }
    if (zh && zh->cls == CellClass::Porous) {
      Real fpre[D::Q];
      for (int i = 0; i < D::Q; ++i) fpre[i] = fin[i];
      Real rho;
      Vec3 u;
      collide_cell<D>(fin, cfg, rho, u);
      porous_blend<D>(fin, fpre, zh->solidity);
      for (int i = 0; i < D::Q; ++i) st(i, p, fin[i]);
      return;
    }
    if (zh) zouhe_fix<D>(fin, *zh);
    Real rho;
    Vec3 u;
    collide_cell<D>(fin, cfg, rho, u);
    for (int i = 0; i < D::Q; ++i) st(i, p, fin[i]);
  };

  auto isBulk = [&](std::size_t p) -> bool {
    if (mdata[p] != MaterialTable::kFluid) return false;
    for (int i = 1; i < D::Q; ++i)
      if (mdata[p - off[i]] != MaterialTable::kFluid) return false;
    return true;
  };

  for (int z = range.lo.z; z < range.hi.z; ++z)
    for (int y = range.lo.y; y < range.hi.y; ++y) {
      const std::size_t rowBase = g.idx(range.lo.x, y, z);
      int x = range.lo.x;
      while (x < range.hi.x) {
        std::size_t p = rowBase + static_cast<std::size_t>(x - range.lo.x);
        int xs = x;
        while (xs < range.hi.x && !isBulk(p)) {
          scalarCell(p);
          ++xs;
          ++p;
        }
        int xe = xs;
        while (xe < range.hi.x && isBulk(p)) {
          ++xe;
          ++p;
        }
        const int len = xe - xs;
        if (len > 0) {
          const std::size_t p0 =
              rowBase + static_cast<std::size_t>(xs - range.lo.x);
          // Fully local: loads from the cell's own opposite slots, stores
          // to its natural slots — contiguous in x for every slab.
          SWLB_PRAGMA_SIMD
          for (int lane = 0; lane < len; ++lane) {
            const std::size_t pw = p0 + static_cast<std::size_t>(lane);
            Real fin[D::Q];
            for (int i = 0; i < D::Q; ++i) fin[i] = ld(D::opp(i), pw);
            Real rho;
            Vec3 u;
            collide_cell<D>(fin, cfg, rho, u);
            for (int i = 0; i < D::Q; ++i) st(i, pw, fin[i]);
          }
        }
        x = xe;
      }
    }
}

/// z-slab multithreaded drivers: valid because each cell's read and write
/// sets are its own in both phases (writes may cross slab edges, but no
/// two cells share an address).  Bit-identical for any thread count.
template <class D, class S>
void stream_collide_esoteric_even_mt(PopulationFieldT<S>& f,
                                     const MaskField& mask,
                                     const MaterialTable& mats,
                                     const CollisionConfig& cfg,
                                     const Box3& range, int nThreads) {
  const int nz = range.hi.z - range.lo.z;
  if (nThreads <= 1 || nz <= 1) {
    stream_collide_esoteric_even<D>(f, mask, mats, cfg, range);
    return;
  }
  nThreads = std::min(nThreads, nz);
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(nThreads));
  for (int t = 0; t < nThreads; ++t) {
    Box3 slab = range;
    slab.lo.z =
        range.lo.z + static_cast<int>(static_cast<long long>(nz) * t / nThreads);
    slab.hi.z = range.lo.z +
                static_cast<int>(static_cast<long long>(nz) * (t + 1) / nThreads);
    workers.emplace_back([&, slab] {
      stream_collide_esoteric_even<D>(f, mask, mats, cfg, slab);
    });
  }
  for (auto& w : workers) w.join();
}

template <class D, class S>
void stream_collide_esoteric_odd_mt(PopulationFieldT<S>& f,
                                    const MaskField& mask,
                                    const MaterialTable& mats,
                                    const CollisionConfig& cfg,
                                    const Box3& range, int nThreads) {
  const int nz = range.hi.z - range.lo.z;
  if (nThreads <= 1 || nz <= 1) {
    stream_collide_esoteric_odd<D>(f, mask, mats, cfg, range);
    return;
  }
  nThreads = std::min(nThreads, nz);
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(nThreads));
  for (int t = 0; t < nThreads; ++t) {
    Box3 slab = range;
    slab.lo.z =
        range.lo.z + static_cast<int>(static_cast<long long>(nz) * t / nThreads);
    slab.hi.z = range.lo.z +
                static_cast<int>(static_cast<long long>(nz) * (t + 1) / nThreads);
    workers.emplace_back([&, slab] {
      stream_collide_esoteric_odd<D>(f, mask, mats, cfg, slab);
    });
  }
  for (auto& w : workers) w.join();
}

/// Reverse periodic wrap, run *after* the even step: boundary cells have
/// scattered populations into the innermost halo layer; fold each deposit
/// back onto the opposite interior edge.  Per slot j only the halo plane
/// the even step can deposit into (the face c_j points away from) carries
/// data; the interior-edge slots being overwritten are stale (their
/// would-be writer lies outside the domain), and the wall parks that
/// bounce-back reads during the odd step live in *other* slots of the
/// halo, so the copy never destroys live data.  Axes wrap in x, y, z
/// order so edge/corner deposits compose like the forward wrap.
template <class D, class S>
void apply_periodic_reverse(PopulationFieldT<S>& f, const Periodicity& per) {
  const Grid& g = f.grid();
  SWLB_ASSERT(g.halo >= 1);
  for (int j = 0; j < D::Q; ++j) {
    if (per.x && D::c[j][0] != 0) {
      const int from = D::c[j][0] > 0 ? -1 : g.nx;
      const int to = D::c[j][0] > 0 ? g.nx - 1 : 0;
      for (int z = -g.halo; z < g.nz + g.halo; ++z)
        for (int y = -g.halo; y < g.ny + g.halo; ++y)
          f.raw(j, to, y, z) = f.raw(j, from, y, z);
    }
    if (per.y && D::c[j][1] != 0) {
      const int from = D::c[j][1] > 0 ? -1 : g.ny;
      const int to = D::c[j][1] > 0 ? g.ny - 1 : 0;
      for (int z = -g.halo; z < g.nz + g.halo; ++z)
        for (int x = -g.halo; x < g.nx + g.halo; ++x)
          f.raw(j, x, to, z) = f.raw(j, x, from, z);
    }
    if (per.z && D::c[j][2] != 0) {
      const int from = D::c[j][2] > 0 ? -1 : g.nz;
      const int to = D::c[j][2] > 0 ? g.nz - 1 : 0;
      for (int y = -g.halo; y < g.ny + g.halo; ++y)
        for (int x = -g.halo; x < g.nx + g.halo; ++x)
          f.raw(j, x, y, to) = f.raw(j, x, y, from);
    }
  }
}

/// Read-only canonical (natural-order) view of an esoteric field at odd
/// phase: after the even step, the post-collision f_i*(x) sits at
/// [opp(i), x + c_i] — in a neighbour cell, a wall park, or the halo (for
/// periodic faces the reverse wrap *copies*, so the halo original remains
/// valid).  Valid for every streaming-class and inlet cell; Solid /
/// MovingWall slots are scratch in this scheme.  Satisfies the field-like
/// concept of core/macroscopic.hpp.
template <class D, class S>
class EsotericPhase1View {
 public:
  explicit EsotericPhase1View(const PopulationFieldT<S>& f) : f_(&f) {}
  const Grid& grid() const { return f_->grid(); }
  int q() const { return f_->q(); }
  Real operator()(int i, int x, int y, int z) const {
    return (*f_)(D::opp(i), x + D::c[i][0], y + D::c[i][1], z + D::c[i][2]);
  }

 private:
  const PopulationFieldT<S>* f_;
};

}  // namespace swlb
