// Kernel-backend concept (DESIGN.md §14): the one interface every
// stream/collide execution strategy implements, so Solver,
// DistributedSolver and PatchSolver dispatch through a registry instead
// of per-variant switch statements — the miniLB-style portability layer
// (PAPERS.md, arXiv:2409.16781).  A backend owns *how* one fused LBM
// update executes (serial sweep, SIMD runs, a host thread team, the SW
// CPE emulator, in-place Esoteric-Pull); the solvers own *when*: halo
// wraps, exchanges, parity, observables.
//
// Contract summary (details on each hook below):
//
//   * step() performs exactly one two-lattice stream/collide update of
//     `range` and must be bit-identical to stream_collide_fused for the
//     same storage type whenever caps.bitIdentical is set.
//   * In-place backends (caps.inPlaceStreaming) implement the
//     stepInPlaceEven/Odd pair instead; step() throws.  The in-place
//     phase contract IS the Esoteric-Pull rotated layout (DESIGN.md §11):
//     after an even sweep, f_i*(x) lives at slot opp(i) of x + c_i, and
//     solvers decode through EsotericPhase1View.
//   * packHalo/unpackHalo serialize a box of raw storage elements in the
//     HaloExchange order (q outer, then z, y, x) — the bytes ghost
//     messages and patch strips carry.  Backends with exotic layouts
//     override them; the defaults copy PopulationFieldT::raw verbatim.
//   * All hooks are called from the solver's step thread.  A backend may
//     spawn or pool its own workers inside step() (caps.usesHostThreads
//     backends honor the `threads` argument), but must return only after
//     `dst` is fully written — hooks never overlap each other.
//
// Units: cost hints are seconds and dimensionless ratios; `threads` is a
// host-thread count where <= 0 means "one per hardware core".
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/kernels.hpp"

namespace swlb {

/// Which stream/collide implementation a solver drives each step.  Every
/// enumerator is also a registered backend under kernel_variant_name();
/// the enum survives as the cheap config-struct spelling of that name.
enum class KernelVariant {
  Fused,     ///< production path: optimized SoA fused pull kernel
  Generic,   ///< portable fused pull kernel (reference implementation)
  TwoStep,   ///< separate stream + collide (fusion ablation baseline)
  Push,      ///< fused collide + push streaming (layout ablation baseline)
  Simd,      ///< vectorized bulk-run fused kernel (bit-identical to Fused)
  Esoteric,  ///< in-place single-buffer streaming (0.5x population memory)
  Threads,   ///< persistent host thread team over z-slabs (OpenMP or pool)
  SwCpe,     ///< SW26010 CPE-cluster emulator (LDM-blocked, bit-identical)
};

inline const char* kernel_variant_name(KernelVariant v) {
  switch (v) {
    case KernelVariant::Fused: return "fused";
    case KernelVariant::Generic: return "generic";
    case KernelVariant::TwoStep: return "twostep";
    case KernelVariant::Push: return "push";
    case KernelVariant::Simd: return "simd";
    case KernelVariant::Esoteric: return "esoteric";
    case KernelVariant::Threads: return "threads";
    case KernelVariant::SwCpe: return "swcpe";
  }
  return "?";
}

/// Inverse of kernel_variant_name.  Throws on names that are not
/// registered backends — the explicit-rejection path that replaced the
/// old silent switch-default fallbacks.
KernelVariant kernel_variant_from_name(const std::string& name);

/// What a backend can and cannot do.  Solvers check these flags up front
/// and reject unsupported combinations with a named error — never fall
/// back silently to another backend.
struct BackendCaps {
  /// Streams in place in a single buffer (Esoteric-Pull).  Implies the
  /// stepInPlaceEven/Odd pair, the rotated phase-1 layout, 0.5x
  /// population memory, and rejection by PatchSolver (patch ghost
  /// exchange needs the two-lattice A-B contract).
  bool inPlaceStreaming = false;
  /// Handles CellClass::Outflow.  In-place streaming cannot (the
  /// extrapolating copy would race the neighbour's own update), so
  /// init() rejects masks containing Outflow cells when this is off.
  bool supportsOutflow = true;
  /// Step-synchronous full-domain semantics usable under
  /// DistributedSolver / PatchSolver.  Off for the single-rank ablation
  /// baselines (twostep, push).
  bool distributed = true;
  /// step() accepts an arbitrary sub-box of the interior (required for
  /// the overlap schedule's inner/shell split).  Off for whole-block
  /// backends (swcpe): DistributedSolver then forces Sequential mode.
  bool subRange = true;
  /// Output is bit-identical to stream_collide_fused at equal storage.
  /// The conformance harness enforces bitwise equality where set and a
  /// quantization bound otherwise.
  bool bitIdentical = true;
  /// Populations after N steps align step-for-step with the pull
  /// family's trajectory.  Off for push (collide-then-stream sits a
  /// half-update away); such backends are checked via invariants (mass
  /// conservation) instead of lockstep identity.
  bool stepConformant = true;
  /// Honors the `threads` argument of step() (z-slab intra-rank
  /// parallelism, bit-identical for any thread count).
  bool usesHostThreads = false;
};

/// A-priori cost model inputs for the tuner's per-patch backend choice.
/// Trials measure the real rate; hints break ties and scale the measured
/// proxy rate to patches the trial never ran.
struct BackendCostHints {
  /// Expected throughput multiplier vs the fused backend on the same
  /// host (dimensionless; 1.0 = parity).  Advisory only — measured
  /// trial MLUPS always override it.
  double relativeRate = 1.0;
  /// Fixed cost per step() invocation in seconds (thread fork/join
  /// barriers, emulator dispatch).  Dominates on small patches, which is
  /// why the tuner's per-patch map keeps them on serial backends.
  double stepOverheadSeconds = 0.0;
  /// Population-storage bytes relative to the two-lattice A-B pair
  /// (esoteric: 0.5).
  double memoryFactor = 1.0;
};

/// Registry/docs entry for one backend: identity, one-line summary, and
/// the flags/hints above.  `lattices`/`storages` document the (D, S)
/// template combinations the backend is registered for ("all" or a
/// space-separated list) — requesting it outside that set throws at
/// make_backend time, it does not degrade to another backend.
struct BackendInfo {
  std::string name;
  std::string summary;
  BackendCaps caps;
  BackendCostHints hints;
  std::string lattices = "all";
  std::string storages = "all";
};

/// The static catalog of built-in backends, in registration order.  This
/// is the single source the per-(D,S) registries, the docs drift check
/// (scripts/check_docs.py) and bench_backends iterate.
const std::vector<BackendInfo>& backend_catalog();

/// Catalog lookup by name; nullptr when unknown.
const BackendInfo* find_backend_info(const std::string& name);

/// Arguments of one two-lattice update: read `src`, write `dst` over
/// `range` (interior coordinates; halos of `src` are already prepared by
/// the caller exactly as for stream_collide_fused).  `periodic` is only
/// consulted by push-style scatters that wrap in-kernel; `threads` is
/// the host-thread hint for caps.usesHostThreads backends (<= 0 = one
/// per hardware core).
template <class D, class S>
struct BackendStepArgs {
  const PopulationFieldT<S>* src = nullptr;
  PopulationFieldT<S>* dst = nullptr;
  const MaskField* mask = nullptr;
  const MaterialTable* mats = nullptr;
  const CollisionConfig* cfg = nullptr;
  Box3 range;
  Periodicity periodic;
  int threads = 1;
};

/// Abstract kernel backend for lattice D and storage S.  Instances are
/// created per solver (or per patch) through make_backend and may hold
/// mutable execution state (thread pools, the CPE cluster, LDM arenas);
/// they are not shared between solvers.
template <class D, class S>
class KernelBackend {
 public:
  using Field = PopulationFieldT<S>;

  virtual ~KernelBackend() = default;

  /// Catalog entry: name, capability flags, cost hints.
  virtual const BackendInfo& info() const = 0;

  /// One-time setup against the finalized mask: allocate persistent
  /// state and validate capability flags against the actual cell classes
  /// present.  The default rejects Outflow cells when
  /// caps.supportsOutflow is off and accepts everything else.  Called by
  /// the solver at finalizeMask() and again whenever the backend is
  /// swapped in after finalization; must be idempotent.
  virtual void init(const Grid& grid, const MaskField& mask,
                    const MaterialTable& mats) {
    if (info().caps.supportsOutflow) return;
    const Box3 range = grid.interior();
    for (int z = range.lo.z; z < range.hi.z; ++z)
      for (int y = range.lo.y; y < range.hi.y; ++y)
        for (int x = range.lo.x; x < range.hi.x; ++x)
          if (mats[mask(x, y, z)].cls == CellClass::Outflow)
            throw Error("backend '" + info().name +
                        "' does not support Outflow cells (in-place "
                        "streaming has no extrapolation slot)");
  }

  /// One two-lattice stream/collide update (see BackendStepArgs).
  /// In-place backends throw — callers must branch on
  /// caps.inPlaceStreaming first.
  virtual void step(const BackendStepArgs<D, S>& a) = 0;

  /// Even in-place phase: sweep `range` of the single buffer, leaving it
  /// in the rotated Esoteric-Pull layout.  The caller wraps periodic
  /// halos before and folds the outward scatter back (reverse wrap /
  /// reverse exchange) after.  Only caps.inPlaceStreaming backends
  /// implement the pair; the defaults throw.
  virtual void stepInPlaceEven(Field&, const MaskField&,
                               const MaterialTable&, const CollisionConfig&,
                               const Box3&, int /*threads*/) {
    throw Error("backend '" + info().name +
                "' does not stream in place (no even-phase hook)");
  }

  /// Odd in-place phase: purely local rotated-layout sweep (no halo
  /// traffic), restoring the natural layout.
  virtual void stepInPlaceOdd(Field&, const MaskField&, const MaterialTable&,
                              const CollisionConfig&, const Box3&,
                              int /*threads*/) {
    throw Error("backend '" + info().name +
                "' does not stream in place (no odd-phase hook)");
  }

  /// Serialize `box` of `f` into `out` as raw storage elements in the
  /// HaloExchange pack order (q outer, then z, y, x) — `box.volume() *
  /// Q` elements.  Ghost messages between patches carry exactly these
  /// bytes, so sender and receiver backends must agree on the order;
  /// the defaults implement it for the natural SoA layout.
  virtual void packHalo(const Field& f, const Box3& box, S* out) const {
    std::size_t k = 0;
    for (int q = 0; q < D::Q; ++q)
      for (int z = box.lo.z; z < box.hi.z; ++z)
        for (int y = box.lo.y; y < box.hi.y; ++y)
          for (int x = box.lo.x; x < box.hi.x; ++x)
            out[k++] = f.raw(q, x, y, z);
  }

  /// Inverse of packHalo: deposit `box.volume() * Q` raw elements from
  /// `in` into `box` of `f` (halo cells of the receiving block).
  virtual void unpackHalo(Field& f, const Box3& box, const S* in) const {
    std::size_t k = 0;
    for (int q = 0; q < D::Q; ++q)
      for (int z = box.lo.z; z < box.hi.z; ++z)
        for (int y = box.lo.y; y < box.hi.y; ++y)
          for (int x = box.lo.x; x < box.hi.x; ++x)
            f.raw(q, x, y, z) = in[k++];
  }
};

}  // namespace swlb
