#include "core/observables.hpp"

#include <cmath>

namespace swlb {

namespace {

/// One-sided/central difference of component `get` along axis `axis` at
/// (x, y, z), over the grid interior.
template <typename Get>
Real diff(const Get& get, const Grid& g, int axis, int x, int y, int z) {
  const int n = axis == 0 ? g.nx : axis == 1 ? g.ny : g.nz;
  const int c = axis == 0 ? x : axis == 1 ? y : z;
  auto at = [&](int v) {
    const int xx = axis == 0 ? v : x;
    const int yy = axis == 1 ? v : y;
    const int zz = axis == 2 ? v : z;
    return get(xx, yy, zz);
  };
  if (n == 1) return 0;
  if (c == 0) return at(1) - at(0);
  if (c == n - 1) return at(n - 1) - at(n - 2);
  return Real(0.5) * (at(c + 1) - at(c - 1));
}

struct Gradient {
  // grad[i][j] = d u_i / d x_j
  Real g[3][3];
};

Gradient velocity_gradient(const VectorField& u, int x, int y, int z) {
  const Grid& grid = u.grid();
  Gradient out{};
  const ScalarField* comp[3] = {&u.x(), &u.y(), &u.z()};
  for (int i = 0; i < 3; ++i) {
    auto get = [&](int xx, int yy, int zz) { return (*comp[i])(xx, yy, zz); };
    for (int j = 0; j < 3; ++j) out.g[i][j] = diff(get, grid, j, x, y, z);
  }
  return out;
}

}  // namespace

Real kinetic_energy(const ScalarField& rho, const VectorField& u,
                    const MaskField& mask, const MaterialTable& mats) {
  const Grid& g = rho.grid();
  Real e = 0;
  for (int z = 0; z < g.nz; ++z)
    for (int y = 0; y < g.ny; ++y)
      for (int x = 0; x < g.nx; ++x) {
        if (mats[mask(x, y, z)].cls != CellClass::Fluid) continue;
        e += Real(0.5) * rho(x, y, z) * u.at(x, y, z).norm2();
      }
  return e;
}

void vorticity(const VectorField& u, VectorField& curl) {
  const Grid& g = u.grid();
  for (int z = 0; z < g.nz; ++z)
    for (int y = 0; y < g.ny; ++y)
      for (int x = 0; x < g.nx; ++x) {
        const Gradient d = velocity_gradient(u, x, y, z);
        curl.set(x, y, z,
                 {d.g[2][1] - d.g[1][2],   // dw/dy - dv/dz
                  d.g[0][2] - d.g[2][0],   // du/dz - dw/dx
                  d.g[1][0] - d.g[0][1]}); // dv/dx - du/dy
      }
}

void q_criterion(const VectorField& u, ScalarField& q) {
  const Grid& g = u.grid();
  for (int z = 0; z < g.nz; ++z)
    for (int y = 0; y < g.ny; ++y)
      for (int x = 0; x < g.nx; ++x) {
        const Gradient d = velocity_gradient(u, x, y, z);
        Real s2 = 0, o2 = 0;
        for (int i = 0; i < 3; ++i)
          for (int j = 0; j < 3; ++j) {
            const Real s = Real(0.5) * (d.g[i][j] + d.g[j][i]);
            const Real o = Real(0.5) * (d.g[i][j] - d.g[j][i]);
            s2 += s * s;
            o2 += o * o;
          }
        q(x, y, z) = Real(0.5) * (o2 - s2);
      }
}

}  // namespace swlb
