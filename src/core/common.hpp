// Common types and error handling for the SunwayLB reproduction.
#pragma once

#include <algorithm>
#include <array>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace swlb {

/// Floating-point type used for all lattice quantities (the paper runs
/// double precision on the CPE clusters).
using Real = double;

/// Recoverable error (bad input files, invalid configuration, resource
/// plans that exceed hardware limits such as LDM capacity).
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// FNV-1a 64-bit hash: integrity checksum for checkpoint payloads and
/// verified messages (shared by the io and runtime layers).
inline std::uint64_t fnv1a_hash(const void* data, std::size_t bytes) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::uint64_t h = 14695981039346656037ull;
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

#define SWLB_ASSERT(cond) assert(cond)

/// Integer 3-vector (grid coordinates, lattice velocities).
struct Int3 {
  int x = 0, y = 0, z = 0;

  friend constexpr bool operator==(const Int3&, const Int3&) = default;
  constexpr Int3 operator+(const Int3& o) const { return {x + o.x, y + o.y, z + o.z}; }
  constexpr Int3 operator-(const Int3& o) const { return {x - o.x, y - o.y, z - o.z}; }
};

/// Real 3-vector (velocities, forces, physical coordinates).
struct Vec3 {
  Real x = 0, y = 0, z = 0;

  friend constexpr bool operator==(const Vec3&, const Vec3&) = default;
  constexpr Vec3 operator+(const Vec3& o) const { return {x + o.x, y + o.y, z + o.z}; }
  constexpr Vec3 operator-(const Vec3& o) const { return {x - o.x, y - o.y, z - o.z}; }
  constexpr Vec3 operator*(Real s) const { return {x * s, y * s, z * s}; }
  constexpr Real dot(const Vec3& o) const { return x * o.x + y * o.y + z * o.z; }
  constexpr Real norm2() const { return dot(*this); }
};

/// Half-open axis-aligned box of cells: [lo, hi) in each axis.
struct Box3 {
  Int3 lo;
  Int3 hi;

  constexpr long long volume() const {
    if (hi.x <= lo.x || hi.y <= lo.y || hi.z <= lo.z) return 0;
    return static_cast<long long>(hi.x - lo.x) * (hi.y - lo.y) * (hi.z - lo.z);
  }
  constexpr bool contains(const Int3& p) const {
    return p.x >= lo.x && p.x < hi.x && p.y >= lo.y && p.y < hi.y &&
           p.z >= lo.z && p.z < hi.z;
  }
  constexpr bool empty() const { return volume() == 0; }
  friend constexpr bool operator==(const Box3&, const Box3&) = default;
};

/// Intersection of two boxes (empty box when disjoint).
constexpr Box3 intersect(const Box3& a, const Box3& b) {
  Box3 r;
  r.lo = {std::max(a.lo.x, b.lo.x), std::max(a.lo.y, b.lo.y), std::max(a.lo.z, b.lo.z)};
  r.hi = {std::min(a.hi.x, b.hi.x), std::min(a.hi.y, b.hi.y), std::min(a.hi.z, b.hi.z)};
  return r;
}

}  // namespace swlb
