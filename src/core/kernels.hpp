// Stream/collide kernel variants.
//
// The production path of SunwayLB is the *pull* scheme fused into a single
// loop (paper §IV-A, citing Wellein et al.): each cell gathers the
// populations streaming into it from its neighbours, applies half-way
// bounce-back on links into solids, collides, and writes to the second
// (A-B pattern) field.  Baseline variants — two-step (separate stream and
// collide), push, and AoS layout — exist for the ablation benchmarks
// (Fig. 8 / Fig. 11 ladders) and for cross-validation tests.
#pragma once

#include <thread>
#include <vector>

#include "core/boundary.hpp"
#include "core/collision.hpp"
#include "core/equilibrium.hpp"
#include "core/field.hpp"
#include "core/lattice.hpp"

namespace swlb {

/// Which axes wrap periodically (halo copied from the opposite face).
struct Periodicity {
  bool x = false, y = false, z = false;
};

/// Gather the Q populations streaming into cell (x, y, z), applying
/// bounce-back rules on links whose upstream cell is a wall.
template <class D, class FSrc>
inline void gather_incoming(const FSrc& src, const MaskField& mask,
                            const MaterialTable& mats, int x, int y, int z,
                            Real* fin) {
  for (int i = 0; i < D::Q; ++i) {
    const int xn = x - D::c[i][0];
    const int yn = y - D::c[i][1];
    const int zn = z - D::c[i][2];
    const std::uint8_t id = mask(xn, yn, zn);
    if (id == MaterialTable::kFluid) {
      fin[i] = src(i, xn, yn, zn);
      continue;
    }
    const Material& m = mats[id];
    switch (m.cls) {
      case CellClass::Fluid:
      case CellClass::VelocityInlet:
      case CellClass::Outflow:
      case CellClass::ZouHeVelocity:
      case CellClass::ZouHePressure:
      case CellClass::Porous:
        fin[i] = src(i, xn, yn, zn);
        break;
      case CellClass::Solid:
        fin[i] = src(D::opp(i), x, y, z);
        break;
      case CellClass::MovingWall: {
        const Real cu = D::c[i][0] * m.u.x + D::c[i][1] * m.u.y + D::c[i][2] * m.u.z;
        fin[i] = src(D::opp(i), x, y, z) + Real(6) * D::w[i] * m.rho * cu;
        break;
      }
    }
  }
}

/// Update one non-fluid cell (wall copy, inlet equilibrium, outflow copy).
template <class D, class FSrc, class FDst>
inline void update_boundary_cell(const FSrc& src, FDst& dst, const Material& m,
                                 int x, int y, int z) {
  switch (m.cls) {
    case CellClass::VelocityInlet: {
      Real feq[D::Q];
      equilibria<D>(m.rho, m.u, feq);
      for (int i = 0; i < D::Q; ++i) dst(i, x, y, z) = feq[i];
      break;
    }
    case CellClass::Outflow: {
      const int xi = x + m.normal.x, yi = y + m.normal.y, zi = z + m.normal.z;
      for (int i = 0; i < D::Q; ++i) dst(i, x, y, z) = src(i, xi, yi, zi);
      break;
    }
    default:  // Solid / MovingWall: keep populations defined for checkpoints
      for (int i = 0; i < D::Q; ++i) dst(i, x, y, z) = src(i, x, y, z);
      break;
  }
}

/// Zou-He (non-equilibrium bounce-back) reconstruction of the populations
/// streaming in from outside the domain, applied after the gather and
/// before the collision.  `m.normal` is the unit inward normal; unknowns
/// are the directions with c . n > 0.
///
/// Density (velocity BC) or normal velocity (pressure BC) follow from the
/// zeroth/first moments over a straight wall:
///   rho = (S_parallel + 2 S_outgoing) / (1 - u.n)
/// and the unknowns are reconstructed by bouncing back the
/// non-equilibrium part:  f_i = f_opp(i) + (feq_i - feq_opp(i)).
template <class D>
inline void zouhe_fix(Real* fin, const Material& m) {
  const Int3 n = m.normal;
  SWLB_ASSERT(n.x * n.x + n.y * n.y + n.z * n.z == 1);
  Real sPar = 0, sOut = 0;
  for (int i = 0; i < D::Q; ++i) {
    const int cn = D::c[i][0] * n.x + D::c[i][1] * n.y + D::c[i][2] * n.z;
    if (cn == 0)
      sPar += fin[i];
    else if (cn < 0)
      sOut += fin[i];
  }
  Real rho;
  Vec3 u;
  if (m.cls == CellClass::ZouHeVelocity) {
    u = m.u;
    const Real un = u.x * n.x + u.y * n.y + u.z * n.z;
    rho = (sPar + 2 * sOut) / (Real(1) - un);
  } else {  // ZouHePressure: prescribed rho, tangential velocity zero
    rho = m.rho;
    const Real un = Real(1) - (sPar + 2 * sOut) / rho;
    u = {un * n.x, un * n.y, un * n.z};
  }
  Real feq[D::Q];
  equilibria<D>(rho, u, feq);
  for (int i = 0; i < D::Q; ++i) {
    const int cn = D::c[i][0] * n.x + D::c[i][1] * n.y + D::c[i][2] * n.z;
    if (cn > 0) fin[i] = fin[D::opp(i)] + (feq[i] - feq[D::opp(i)]);
  }
}

/// Partial bounce-back of a porous cell (Walsh, Burwinkle & Saar 2009):
/// after collision, a solidity fraction of each population is replaced by
/// the bounce-back of the *incoming* (pre-collision) opposite population:
///   f_i <- (1 - sigma) f_i* + sigma f_opp^in.
/// Mass-conserving for any sigma; sigma acts as a linear momentum sink.
template <class D>
inline void porous_blend(Real* fpost, const Real* fin, Real sigma) {
  Real bounced[D::Q];
  for (int i = 0; i < D::Q; ++i) bounced[i] = fin[D::opp(i)];
  for (int i = 0; i < D::Q; ++i)
    fpost[i] = (Real(1) - sigma) * fpost[i] + sigma * bounced[i];
}

/// Generic fused pull stream + BGK collide over `range`.
/// Works for any field type exposing `Real operator()(q, x, y, z)`,
/// in particular both the SoA and the AoS layouts.
template <class D, class FSrc, class FDst>
void stream_collide_generic(const FSrc& src, FDst& dst, const MaskField& mask,
                            const MaterialTable& mats, const CollisionConfig& cfg,
                            const Box3& range) {
  Real fin[D::Q];
  for (int z = range.lo.z; z < range.hi.z; ++z)
    for (int y = range.lo.y; y < range.hi.y; ++y)
      for (int x = range.lo.x; x < range.hi.x; ++x) {
        const std::uint8_t id = mask(x, y, z);
        const Material* zh = nullptr;
        if (id != MaterialTable::kFluid) {
          const Material& m = mats[id];
          if (!is_streaming(m.cls)) {
            update_boundary_cell<D>(src, dst, m, x, y, z);
            continue;
          }
          if (m.cls != CellClass::Fluid) zh = &m;
        }
        gather_incoming<D>(src, mask, mats, x, y, z, fin);
        if (zh) {
          if (zh->cls == CellClass::Porous) {
            Real fpre[D::Q];
            for (int i = 0; i < D::Q; ++i) fpre[i] = fin[i];
            Real rho;
            Vec3 u;
            collide_cell<D>(fin, cfg, rho, u);
            porous_blend<D>(fin, fpre, zh->solidity);
            for (int i = 0; i < D::Q; ++i) dst(i, x, y, z) = fin[i];
            continue;
          }
          zouhe_fix<D>(fin, *zh);
        }
        Real rho;
        Vec3 u;
        collide_cell<D>(fin, cfg, rho, u);
        for (int i = 0; i < D::Q; ++i) dst(i, x, y, z) = fin[i];
      }
}

/// Optimized fused pull kernel for the SoA layout: raw pointers and
/// precomputed per-direction neighbour offsets; the bulk fast path only
/// touches the mask byte of the upstream cell.  This is the host analogue
/// of the paper's hand-tuned CPE kernel.
///
/// Works for any storage precision: the gather decodes stored elements to
/// a full-precision `Real fin[Q]`, the collision runs entirely in Real,
/// and the write-back encodes once per population.  Identity (double)
/// storage compiles to the historical raw load/store path.
template <class D, class S>
void stream_collide_fused(const PopulationFieldT<S>& src,
                          PopulationFieldT<S>& dst, const MaskField& mask,
                          const MaterialTable& mats, const CollisionConfig& cfg,
                          const Box3& range) {
  using Traits = StorageTraits<S>;
  const Grid& g = src.grid();
  SWLB_ASSERT(dst.grid() == g && mask.grid() == g);

  // Linear offset of neighbour (x - c_i) relative to the current cell.
  std::ptrdiff_t off[D::Q];
  std::size_t slab[D::Q];
  Real sh[D::Q];
  for (int i = 0; i < D::Q; ++i) {
    off[i] = static_cast<std::ptrdiff_t>(
        (static_cast<long long>(D::c[i][2]) * g.sy() + D::c[i][1]) * g.sx() +
        D::c[i][0]);
    slab[i] = src.slab(i);
    sh[i] = src.shift(i);
  }

  const S* sdata = src.data();
  S* ddata = dst.data();
  const std::uint8_t* mdata = mask.data();

  auto ld = [&](int i, std::size_t p) -> Real {
    if constexpr (PopulationFieldT<S>::kIdentityStorage)
      return sdata[slab[i] + p];
    else
      return Traits::decode(sdata[slab[i] + p], sh[i]);
  };
  auto st = [&](int i, std::size_t p, Real v) {
    if constexpr (PopulationFieldT<S>::kIdentityStorage)
      ddata[slab[i] + p] = v;
    else
      ddata[slab[i] + p] = Traits::encode(v, sh[i]);
  };

  Real fin[D::Q];
  for (int z = range.lo.z; z < range.hi.z; ++z)
    for (int y = range.lo.y; y < range.hi.y; ++y) {
      std::size_t p = g.idx(range.lo.x, y, z);
      for (int x = range.lo.x; x < range.hi.x; ++x, ++p) {
        const std::uint8_t id = mdata[p];
        const Material* zh = nullptr;
        if (id != MaterialTable::kFluid) {
          const Material& m = mats[id];
          if (!is_streaming(m.cls)) {
            update_boundary_cell<D>(src, dst, m, x, y, z);
            continue;
          }
          zh = &m;
        }
        for (int i = 0; i < D::Q; ++i) {
          const std::size_t pn = p - off[i];
          if (mdata[pn] == MaterialTable::kFluid) {
            fin[i] = ld(i, pn);
          } else {
            const Material& m = mats[mdata[pn]];
            if (is_pullable(m.cls)) {
              fin[i] = ld(i, pn);
            } else if (m.cls == CellClass::Solid) {
              fin[i] = ld(D::opp(i), p);
            } else {  // MovingWall
              const Real cu =
                  D::c[i][0] * m.u.x + D::c[i][1] * m.u.y + D::c[i][2] * m.u.z;
              fin[i] = ld(D::opp(i), p) + Real(6) * D::w[i] * m.rho * cu;
            }
          }
        }
        if (zh && zh->cls == CellClass::Porous) {
          Real fpre[D::Q];
          for (int i = 0; i < D::Q; ++i) fpre[i] = fin[i];
          Real rho;
          Vec3 u;
          collide_cell<D>(fin, cfg, rho, u);
          porous_blend<D>(fin, fpre, zh->solidity);
          for (int i = 0; i < D::Q; ++i) st(i, p, fin[i]);
          continue;
        }
        if (zh) zouhe_fix<D>(fin, *zh);
        Real rho;
        Vec3 u;
        collide_cell<D>(fin, cfg, rho, u);
        for (int i = 0; i < D::Q; ++i) st(i, p, fin[i]);
      }
    }
}

/// Pull streaming only (no collision): dst receives the incoming
/// populations.  Combined with collide_inplace this reproduces the fused
/// kernel bit-for-bit; the pair exists to measure the cost of *not*
/// fusing (paper §IV-C3 reports ~30 % gain from fusion).
template <class D, class S>
void stream_only(const PopulationFieldT<S>& src, PopulationFieldT<S>& dst,
                 const MaskField& mask, const MaterialTable& mats,
                 const Box3& range) {
  Real fin[D::Q];
  for (int z = range.lo.z; z < range.hi.z; ++z)
    for (int y = range.lo.y; y < range.hi.y; ++y)
      for (int x = range.lo.x; x < range.hi.x; ++x) {
        const std::uint8_t id = mask(x, y, z);
        const Material* zh = nullptr;
        if (id != MaterialTable::kFluid) {
          const Material& m = mats[id];
          if (!is_streaming(m.cls)) {
            update_boundary_cell<D>(src, dst, m, x, y, z);
            continue;
          }
          if (m.cls != CellClass::Fluid) zh = &m;
        }
        gather_incoming<D>(src, mask, mats, x, y, z, fin);
        if (zh && zh->cls != CellClass::Porous) zouhe_fix<D>(fin, *zh);
        for (int i = 0; i < D::Q; ++i) dst(i, x, y, z) = fin[i];
      }
}

/// In-place BGK collision over `range` (second half of the two-step scheme).
template <class D, class S>
void collide_inplace(PopulationFieldT<S>& f, const MaskField& mask,
                     const MaterialTable& mats, const CollisionConfig& cfg,
                     const Box3& range) {
  Real fc[D::Q];
  for (int z = range.lo.z; z < range.hi.z; ++z)
    for (int y = range.lo.y; y < range.hi.y; ++y)
      for (int x = range.lo.x; x < range.hi.x; ++x) {
        const std::uint8_t id = mask(x, y, z);
        if (id != MaterialTable::kFluid && !is_streaming(mats[id].cls)) continue;
        for (int i = 0; i < D::Q; ++i) fc[i] = f(i, x, y, z);
        Real rho;
        Vec3 u;
        collide_cell<D>(fc, cfg, rho, u);
        if (id != MaterialTable::kFluid && mats[id].cls == CellClass::Porous) {
          Real fpre[D::Q];
          for (int i = 0; i < D::Q; ++i) fpre[i] = f(i, x, y, z);
          porous_blend<D>(fc, fpre, mats[id].solidity);
        }
        for (int i = 0; i < D::Q; ++i) f(i, x, y, z) = fc[i];
      }
}

/// Fused collide + *push* streaming: post-collision populations are
/// scattered to downstream neighbours.  Periodic axes are wrapped in-index
/// (push writes would otherwise land in halo cells and be lost).  Supports
/// fluid/solid/moving-wall cells only (the engineering inlet/outlet
/// conditions run on the pull path); used for cross-validation and the
/// pull-vs-push ablation.
template <class D, class S>
void stream_collide_push(const PopulationFieldT<S>& src,
                         PopulationFieldT<S>& dst, const MaskField& mask,
                         const MaterialTable& mats, const CollisionConfig& cfg,
                         const Box3& range, const Periodicity& per = {}) {
  const Grid& g = src.grid();
  Real fc[D::Q];
  for (int z = range.lo.z; z < range.hi.z; ++z)
    for (int y = range.lo.y; y < range.hi.y; ++y)
      for (int x = range.lo.x; x < range.hi.x; ++x) {
        const std::uint8_t id = mask(x, y, z);
        if (id != MaterialTable::kFluid && mats[id].cls != CellClass::Fluid) {
          update_boundary_cell<D>(src, dst, mats[id], x, y, z);
          continue;
        }
        for (int i = 0; i < D::Q; ++i) fc[i] = src(i, x, y, z);
        Real rho;
        Vec3 u;
        collide_cell<D>(fc, cfg, rho, u);
        for (int i = 0; i < D::Q; ++i) {
          int xn = x + D::c[i][0];
          int yn = y + D::c[i][1];
          int zn = z + D::c[i][2];
          if (per.x) xn = (xn + g.nx) % g.nx;
          if (per.y) yn = (yn + g.ny) % g.ny;
          if (per.z) zn = (zn + g.nz) % g.nz;
          const Material& m = mats[mask(xn, yn, zn)];
          switch (m.cls) {
            case CellClass::Fluid:
            case CellClass::VelocityInlet:
            case CellClass::Outflow:
            case CellClass::ZouHeVelocity:
            case CellClass::ZouHePressure:
            case CellClass::Porous:
              // Push supports plain deliveries only; Zou-He/porous cells
              // are documented as pull-path features.
              dst(i, xn, yn, zn) = fc[i];
              break;
            case CellClass::Solid:
              dst(D::opp(i), x, y, z) = fc[i];
              break;
            case CellClass::MovingWall: {
              const Real cu =
                  D::c[i][0] * m.u.x + D::c[i][1] * m.u.y + D::c[i][2] * m.u.z;
              dst(D::opp(i), x, y, z) = fc[i] - Real(6) * D::w[i] * m.rho * cu;
              break;
            }
          }
        }
      }
}

/// Multithreaded fused pull kernel: splits `range` into z-slabs, one per
/// host thread (the intra-rank analogue of the 64-CPE partition; writes
/// are disjoint, so the result is bit-identical to the serial kernel —
/// tested).  nThreads <= 1 falls back to the serial kernel.
template <class D, class S>
void stream_collide_fused_mt(const PopulationFieldT<S>& src,
                             PopulationFieldT<S>& dst, const MaskField& mask,
                             const MaterialTable& mats,
                             const CollisionConfig& cfg, const Box3& range,
                             int nThreads) {
  const int nz = range.hi.z - range.lo.z;
  if (nThreads <= 1 || nz <= 1) {
    stream_collide_fused<D>(src, dst, mask, mats, cfg, range);
    return;
  }
  nThreads = std::min(nThreads, nz);
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(nThreads));
  for (int t = 0; t < nThreads; ++t) {
    Box3 slab = range;
    slab.lo.z = range.lo.z + static_cast<int>(static_cast<long long>(nz) * t / nThreads);
    slab.hi.z = range.lo.z + static_cast<int>(static_cast<long long>(nz) * (t + 1) / nThreads);
    workers.emplace_back([&, slab] {
      stream_collide_fused<D>(src, dst, mask, mats, cfg, slab);
    });
  }
  for (auto& w : workers) w.join();
}

namespace detail {

/// Copy `count` halo layers from the opposite interior face, one axis at a
/// time.  Wrapping x, then y, then z lets edge and corner halo cells pick
/// up already-wrapped data, so diagonal pulls across periodic boundaries
/// are correct.
template <typename FieldLike>
void wrap_axis_x(FieldLike&& get, const Grid& g, int q) {
  for (int z = -g.halo; z < g.nz + g.halo; ++z)
    for (int y = -g.halo; y < g.ny + g.halo; ++y)
      for (int l = 0; l < g.halo; ++l) {
        get(q, -1 - l, y, z) = get(q, g.nx - 1 - l, y, z);
        get(q, g.nx + l, y, z) = get(q, l, y, z);
      }
}

template <typename FieldLike>
void wrap_axis_y(FieldLike&& get, const Grid& g, int q) {
  for (int z = -g.halo; z < g.nz + g.halo; ++z)
    for (int x = -g.halo; x < g.nx + g.halo; ++x)
      for (int l = 0; l < g.halo; ++l) {
        get(q, x, -1 - l, z) = get(q, x, g.ny - 1 - l, z);
        get(q, x, g.ny + l, z) = get(q, x, l, z);
      }
}

template <typename FieldLike>
void wrap_axis_z(FieldLike&& get, const Grid& g, int q) {
  for (int y = -g.halo; y < g.ny + g.halo; ++y)
    for (int x = -g.halo; x < g.nx + g.halo; ++x)
      for (int l = 0; l < g.halo; ++l) {
        get(q, x, y, -1 - l) = get(q, x, y, g.nz - 1 - l);
        get(q, x, y, g.nz + l) = get(q, x, y, l);
      }
}

}  // namespace detail

/// Copy interior faces into the opposite halo layers for periodic axes.
/// Axes are wrapped in x, y, z order so edge/corner halos compose correctly.
/// Population wraps copy the raw storage element — exact for any precision.
template <class S>
void apply_periodic(PopulationFieldT<S>& f, const Periodicity& per) {
  const Grid& g = f.grid();
  auto get = [&f](int q, int x, int y, int z) -> S& {
    return f.raw(q, x, y, z);
  };
  for (int q = 0; q < f.q(); ++q) {
    if (per.x) detail::wrap_axis_x(get, g, q);
    if (per.y) detail::wrap_axis_y(get, g, q);
    if (per.z) detail::wrap_axis_z(get, g, q);
  }
}

void apply_periodic(MaskField& mask, const Periodicity& per);

/// Fill non-periodic halo mask cells with `id` (defaults keep walls).
void fill_halo_mask(MaskField& mask, const Periodicity& per, std::uint8_t id);

}  // namespace swlb

// Vectorized and single-buffer variants build on the definitions above.
#include "core/kernels_esoteric.hpp"
#include "core/kernels_simd.hpp"
