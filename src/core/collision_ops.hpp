// Extended collision operators: TRT (two-relaxation-time) and MRT
// (multiple-relaxation-time, d'Humieres et al. 2002 for D3Q19).
//
// The paper runs LBGK (§IV-A); TRT and MRT are the standard extensions
// any production LBM framework ships (OpenLB/Palabos/waLBerla all do) —
// TRT fixes the viscosity-dependent wall location of BGK bounce-back,
// MRT adds tunable stability at high Reynolds numbers.  Both conserve
// mass and momentum exactly and reduce to BGK when all rates coincide
// (tested properties).
#pragma once

#include <cmath>

#include "core/equilibrium.hpp"
#include "core/lattice.hpp"

namespace swlb {

/// TRT: populations are split into even/odd parts about opposite pairs,
///   f_i^± = (f_i ± f_opp(i)) / 2,
/// relaxed with omega+ (sets the viscosity) and omega- derived from the
/// "magic parameter" Lambda = (1/w+ - 1/2)(1/w- - 1/2):
/// Lambda = 3/16 places half-way bounce-back walls exactly half-way for
/// Poiseuille flow, independent of viscosity.
template <class D>
inline void trt_collide_cell(Real* f, Real omegaPlus, Real magicLambda,
                             Real& rho_out, Vec3& u_out) {
  Real rho;
  Vec3 mom;
  moments<D>(f, rho, mom);
  const Real inv_rho = Real(1) / rho;
  const Vec3 u{mom.x * inv_rho, mom.y * inv_rho, mom.z * inv_rho};

  Real feq[D::Q];
  equilibria<D>(rho, u, feq);

  const Real tauPlus = Real(1) / omegaPlus;
  const Real tauMinus = magicLambda / (tauPlus - Real(0.5)) + Real(0.5);
  const Real omegaMinus = Real(1) / tauMinus;

  // Rest population has no odd part.
  f[0] += omegaPlus * (feq[0] - f[0]);
  for (int i = 1; i < D::Q; i += 2) {
    const int j = i + 1;  // opposite under the pair convention
    const Real fPlus = Real(0.5) * (f[i] + f[j]);
    const Real fMinus = Real(0.5) * (f[i] - f[j]);
    const Real eqPlus = Real(0.5) * (feq[i] + feq[j]);
    const Real eqMinus = Real(0.5) * (feq[i] - feq[j]);
    const Real nPlus = fPlus + omegaPlus * (eqPlus - fPlus);
    const Real nMinus = fMinus + omegaMinus * (eqMinus - fMinus);
    f[i] = nPlus + nMinus;
    f[j] = nPlus - nMinus;
  }
  rho_out = rho;
  u_out = u;
}

/// MRT for D3Q19: collision in moment space m = M f with a diagonal
/// relaxation matrix S; kinematic viscosity is set by the rates of the
/// shear-stress moments (s_nu), bulk viscosity by s_e.
///
/// The transformation matrix follows d'Humieres, Ginzburg, Krafczyk,
/// Lallemand & Luo, "Multiple-relaxation-time lattice Boltzmann models in
/// three dimensions" (2002), with rows orthogonal so that
/// M^-1 = M^T diag(1 / ||row||^2).
struct MrtD3Q19 {
  /// Relaxation rates for the non-conserved moments.
  struct Rates {
    Real s_e = 1.19;     ///< energy
    Real s_eps = 1.4;    ///< energy squared
    Real s_q = 1.2;      ///< energy flux
    Real s_nu = 1.0;     ///< shear stress: omega = 1/tau sets the viscosity
    Real s_pi = 1.4;     ///< third-order stress
    Real s_m = 1.98;     ///< antisymmetric third-order

    /// All rates equal: MRT degenerates to BGK (tested).
    static Rates allEqual(Real omega) { return {omega, omega, omega, omega, omega, omega}; }
    /// Standard stability-tuned rates with the viscosity rate omega.
    static Rates standard(Real omega) { return {1.19, 1.4, 1.2, omega, 1.4, 1.98}; }
  };

  /// m_out/u_out like the BGK cell op; f holds Q post-streaming values and
  /// is overwritten with post-collision values.
  static void collide(Real* f, const Rates& rates, Real& rho_out, Vec3& u_out);

  /// The 19 x 19 integer transformation matrix (row-major).
  static const int (&matrix())[19][19];
  /// Squared norms of the rows (for the orthogonal inverse).
  static const int (&rowNorms())[19];
};

}  // namespace swlb
