// Macroscopic moments (density, velocity) of a population field.
#pragma once

#include "core/boundary.hpp"
#include "core/collision.hpp"
#include "core/field.hpp"

namespace swlb {

/// Density and velocity of one cell.  When `cfg` carries a body force the
/// velocity includes the Guo half-force shift, matching what the collision
/// kernel used.
///
/// `F` is any field-like type with `Real operator()(i, x, y, z)` and
/// `grid()`: a PopulationFieldT of any storage precision, the AoS layout,
/// or a decoding view such as EsotericPhase1View.
template <class D, class F>
inline void cell_macroscopic(const F& f, int x, int y, int z,
                             const CollisionConfig& cfg, Real& rho, Vec3& u) {
  Real fi[D::Q];
  for (int i = 0; i < D::Q; ++i) fi[i] = f(i, x, y, z);
  Vec3 mom;
  moments<D>(fi, rho, mom);
  const Real inv = Real(1) / rho;
  u = {mom.x * inv, mom.y * inv, mom.z * inv};
  if (cfg.hasForce()) {
    u.x += Real(0.5) * cfg.bodyForce.x * inv;
    u.y += Real(0.5) * cfg.bodyForce.y * inv;
    u.z += Real(0.5) * cfg.bodyForce.z * inv;
  }
}

/// Fill density and velocity fields over the interior.  Non-fluid cells get
/// rho = material rho and u = material u (walls: zero).
template <class D, class F>
void compute_macroscopic(const F& f, const MaskField& mask,
                         const MaterialTable& mats, const CollisionConfig& cfg,
                         ScalarField& rho, VectorField& u) {
  const Grid& g = f.grid();
  for (int z = 0; z < g.nz; ++z)
    for (int y = 0; y < g.ny; ++y)
      for (int x = 0; x < g.nx; ++x) {
        const Material& m = mats[mask(x, y, z)];
        if (m.cls == CellClass::Fluid || m.cls == CellClass::VelocityInlet ||
            m.cls == CellClass::Outflow) {
          Real r;
          Vec3 v;
          cell_macroscopic<D>(f, x, y, z, cfg, r, v);
          rho(x, y, z) = r;
          u.set(x, y, z, v);
        } else {
          rho(x, y, z) = m.rho;
          u.set(x, y, z, m.u);
        }
      }
}

/// Total mass over the interior fluid cells (conservation checks).
template <class D, class F>
Real total_mass(const F& f, const MaskField& mask,
                const MaterialTable& mats) {
  const Grid& g = f.grid();
  Real sum = 0;
  for (int z = 0; z < g.nz; ++z)
    for (int y = 0; y < g.ny; ++y)
      for (int x = 0; x < g.nx; ++x) {
        if (mats[mask(x, y, z)].cls != CellClass::Fluid) continue;
        for (int i = 0; i < D::Q; ++i) sum += f(i, x, y, z);
      }
  return sum;
}

/// Total momentum over the interior fluid cells.
template <class D, class F>
Vec3 total_momentum(const F& f, const MaskField& mask,
                    const MaterialTable& mats) {
  const Grid& g = f.grid();
  Vec3 sum{0, 0, 0};
  for (int z = 0; z < g.nz; ++z)
    for (int y = 0; y < g.ny; ++y)
      for (int x = 0; x < g.nx; ++x) {
        if (mats[mask(x, y, z)].cls != CellClass::Fluid) continue;
        for (int i = 0; i < D::Q; ++i) {
          const Real fi = f(i, x, y, z);
          sum.x += fi * D::c[i][0];
          sum.y += fi * D::c[i][1];
          sum.z += fi * D::c[i][2];
        }
      }
  return sum;
}

}  // namespace swlb
