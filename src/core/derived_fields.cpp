#include "core/derived_fields.hpp"

namespace swlb {

void compute_pressure(const ScalarField& rho, ScalarField& p, Real rho0) {
  const Grid& g = rho.grid();
  SWLB_ASSERT(p.grid() == g);
  for (int z = 0; z < g.nz; ++z)
    for (int y = 0; y < g.ny; ++y)
      for (int x = 0; x < g.nx; ++x)
        p(x, y, z) = lattice_pressure(rho(x, y, z), rho0);
}

}  // namespace swlb
