// Physical <-> lattice unit conversion (pre-processing module support).
//
// Follows the standard diffusive/acoustic scaling used by LBM frameworks:
// the user gives the physical problem (characteristic length L, velocity U,
// kinematic viscosity nu, density rho) plus the resolution (cells across L)
// and the lattice Mach proxy u_lat; the converter derives dx, dt and the
// relaxation time, and checks stability.
#pragma once

#include "core/common.hpp"
#include "core/lattice.hpp"

namespace swlb {

class UnitConverter {
 public:
  /// @param length     characteristic physical length [m]
  /// @param velocity   characteristic physical velocity [m/s]
  /// @param viscosity  kinematic viscosity [m^2/s]
  /// @param density    physical density [kg/m^3]
  /// @param resolution lattice cells across the characteristic length
  /// @param uLattice   characteristic velocity in lattice units (<= ~0.1)
  /// @param minTau     stability guard: reject setups with tau below this
  ///                   (tau -> 0.5 means vanishing lattice viscosity; BGK
  ///                   becomes unstable well before that without LES)
  UnitConverter(Real length, Real velocity, Real viscosity, Real density,
                int resolution, Real uLattice, Real minTau = Real(0.501))
      : L_(length),
        U_(velocity),
        nu_(viscosity),
        rho_(density),
        n_(resolution),
        uLat_(uLattice) {
    if (length <= 0 || velocity <= 0 || viscosity <= 0 || density <= 0 ||
        resolution <= 0 || uLattice <= 0) {
      throw Error("UnitConverter: all parameters must be positive");
    }
    dx_ = L_ / n_;
    dt_ = uLat_ / U_ * dx_;
    nuLat_ = nu_ * dt_ / (dx_ * dx_);
    tau_ = tau_from_viscosity(nuLat_);
    if (tau_ < minTau) {
      throw Error("UnitConverter: tau too close to 0.5 (unstable); raise resolution or u_lat");
    }
  }

  Real dx() const { return dx_; }
  Real dt() const { return dt_; }
  Real reynolds() const { return U_ * L_ / nu_; }
  Real latticeViscosity() const { return nuLat_; }
  Real tau() const { return tau_; }
  Real omega() const { return omega_from_tau(tau_); }
  Real latticeVelocity() const { return uLat_; }
  int resolution() const { return n_; }
  Real physDensity() const { return rho_; }

  // -- physical -> lattice --
  Real toLatticeLength(Real m) const { return m / dx_; }
  Real toLatticeTime(Real s) const { return s / dt_; }
  Real toLatticeVelocity(Real ms) const { return ms * dt_ / dx_; }

  // -- lattice -> physical --
  Real toPhysLength(Real l) const { return l * dx_; }
  Real toPhysTime(Real t) const { return t * dt_; }
  Real toPhysVelocity(Real u) const { return u * dx_ / dt_; }
  /// Lattice pressure deviation p = cs^2 (rho - 1) -> physical pressure [Pa].
  Real toPhysPressure(Real rhoLat) const {
    return kCs2 * (rhoLat - Real(1)) * rho_ * (dx_ / dt_) * (dx_ / dt_);
  }

 private:
  Real L_, U_, nu_, rho_;
  int n_;
  Real uLat_;
  Real dx_ = 0, dt_ = 0, nuLat_ = 0, tau_ = 0;
};

}  // namespace swlb
