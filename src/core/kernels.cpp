#include "core/kernels.hpp"

namespace swlb {

namespace {

/// Copy `count` halo layers from the opposite interior face, one axis at a
/// time.  Wrapping x, then y, then z lets edge and corner halo cells pick
/// up already-wrapped data, so diagonal pulls across periodic boundaries
/// are correct.
template <typename FieldLike>
void wrap_axis_x(FieldLike&& get, const Grid& g, int q) {
  for (int z = -g.halo; z < g.nz + g.halo; ++z)
    for (int y = -g.halo; y < g.ny + g.halo; ++y)
      for (int l = 0; l < g.halo; ++l) {
        get(q, -1 - l, y, z) = get(q, g.nx - 1 - l, y, z);
        get(q, g.nx + l, y, z) = get(q, l, y, z);
      }
}

template <typename FieldLike>
void wrap_axis_y(FieldLike&& get, const Grid& g, int q) {
  for (int z = -g.halo; z < g.nz + g.halo; ++z)
    for (int x = -g.halo; x < g.nx + g.halo; ++x)
      for (int l = 0; l < g.halo; ++l) {
        get(q, x, -1 - l, z) = get(q, x, g.ny - 1 - l, z);
        get(q, x, g.ny + l, z) = get(q, x, l, z);
      }
}

template <typename FieldLike>
void wrap_axis_z(FieldLike&& get, const Grid& g, int q) {
  for (int y = -g.halo; y < g.ny + g.halo; ++y)
    for (int x = -g.halo; x < g.nx + g.halo; ++x)
      for (int l = 0; l < g.halo; ++l) {
        get(q, x, y, -1 - l) = get(q, x, y, g.nz - 1 - l);
        get(q, x, y, g.nz + l) = get(q, x, y, l);
      }
}

}  // namespace

void apply_periodic(PopulationField& f, const Periodicity& per) {
  const Grid& g = f.grid();
  auto get = [&f](int q, int x, int y, int z) -> Real& { return f(q, x, y, z); };
  for (int q = 0; q < f.q(); ++q) {
    if (per.x) wrap_axis_x(get, g, q);
    if (per.y) wrap_axis_y(get, g, q);
    if (per.z) wrap_axis_z(get, g, q);
  }
}

void apply_periodic(MaskField& mask, const Periodicity& per) {
  const Grid& g = mask.grid();
  auto get = [&mask](int, int x, int y, int z) -> std::uint8_t& {
    return mask(x, y, z);
  };
  if (per.x) wrap_axis_x(get, g, 0);
  if (per.y) wrap_axis_y(get, g, 0);
  if (per.z) wrap_axis_z(get, g, 0);
}

void fill_halo_mask(MaskField& mask, const Periodicity& per, std::uint8_t id) {
  const Grid& g = mask.grid();
  for (int z = -g.halo; z < g.nz + g.halo; ++z)
    for (int y = -g.halo; y < g.ny + g.halo; ++y)
      for (int x = -g.halo; x < g.nx + g.halo; ++x) {
        const bool inX = x >= 0 && x < g.nx;
        const bool inY = y >= 0 && y < g.ny;
        const bool inZ = z >= 0 && z < g.nz;
        if (inX && inY && inZ) continue;
        mask(x, y, z) = id;
      }
  // Periodic axes get their halo mask from the opposite face instead.
  apply_periodic(mask, per);
}

}  // namespace swlb
