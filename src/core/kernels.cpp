#include "core/kernels.hpp"

namespace swlb {

void apply_periodic(MaskField& mask, const Periodicity& per) {
  const Grid& g = mask.grid();
  auto get = [&mask](int, int x, int y, int z) -> std::uint8_t& {
    return mask(x, y, z);
  };
  if (per.x) detail::wrap_axis_x(get, g, 0);
  if (per.y) detail::wrap_axis_y(get, g, 0);
  if (per.z) detail::wrap_axis_z(get, g, 0);
}

void fill_halo_mask(MaskField& mask, const Periodicity& per, std::uint8_t id) {
  const Grid& g = mask.grid();
  for (int z = -g.halo; z < g.nz + g.halo; ++z)
    for (int y = -g.halo; y < g.ny + g.halo; ++y)
      for (int x = -g.halo; x < g.nx + g.halo; ++x) {
        const bool inX = x >= 0 && x < g.nx;
        const bool inY = y >= 0 && y < g.ny;
        const bool inZ = z >= 0 && z < g.nz;
        if (inX && inY && inZ) continue;
        mask(x, y, z) = id;
      }
  // Periodic axes get their halo mask from the opposite face instead.
  apply_periodic(mask, per);
}

}  // namespace swlb
