// Derived macroscopic fields beyond (rho, u): pressure and the deviatoric
// (viscous) stress tensor recovered from the non-equilibrium populations
// — what the paper's post-processing plots as "pressure field" and what
// resistance analyses of the Suboff case need (§V-B).
#pragma once

#include "core/collision.hpp"
#include "core/field.hpp"
#include "core/kernels.hpp"

namespace swlb {

/// Lattice pressure: p = cs^2 (rho - rho0) (gauge pressure about rho0).
inline Real lattice_pressure(Real rho, Real rho0 = 1.0) {
  return kCs2 * (rho - rho0);
}

/// Fill a pressure field from a density field.
void compute_pressure(const ScalarField& rho, ScalarField& p, Real rho0 = 1.0);

/// Symmetric 3x3 tensor stored as (xx, yy, zz, xy, xz, yz).
struct SymTensor {
  Real xx = 0, yy = 0, zz = 0, xy = 0, xz = 0, yz = 0;

  Real component(int a, int b) const {
    if (a > b) std::swap(a, b);
    if (a == 0 && b == 0) return xx;
    if (a == 1 && b == 1) return yy;
    if (a == 2 && b == 2) return zz;
    if (a == 0 && b == 1) return xy;
    if (a == 0 && b == 2) return xz;
    return yz;
  }
};

/// Deviatoric (viscous) stress of one cell from its *pre-collision*
/// (post-streaming) populations:
///   sigma_ab = -(1 - omega/2) sum_i (f_i - feq_i) c_ia c_ib
/// (second-order accurate for the BGK operator).  Post-collision
/// populations carry fneq scaled by (1 - omega) and would give the wrong
/// stress — use cell_stress(), which regathers the incoming populations.
template <class D>
SymTensor deviatoric_stress(const Real* f, Real omega) {
  Real rho;
  Vec3 mom;
  moments<D>(f, rho, mom);
  const Real invRho = Real(1) / rho;
  Real feq[D::Q];
  equilibria<D>(rho, {mom.x * invRho, mom.y * invRho, mom.z * invRho}, feq);

  SymTensor s;
  for (int i = 0; i < D::Q; ++i) {
    const Real fneq = f[i] - feq[i];
    const Real cx = D::c[i][0], cy = D::c[i][1], cz = D::c[i][2];
    s.xx += fneq * cx * cx;
    s.yy += fneq * cy * cy;
    s.zz += fneq * cz * cz;
    s.xy += fneq * cx * cy;
    s.xz += fneq * cx * cz;
    s.yz += fneq * cy * cz;
  }
  const Real pref = -(Real(1) - Real(0.5) * omega);
  s.xx *= pref;
  s.yy *= pref;
  s.zz *= pref;
  s.xy *= pref;
  s.xz *= pref;
  s.yz *= pref;
  return s;
}

/// Deviatoric stress at a grid cell of the solver's current (post-
/// collision) field: regathers the incoming populations of the *next*
/// step — the pre-collision state the formula needs — exactly as the
/// kernel would, including bounce-back at walls.
template <class D, class S>
SymTensor cell_stress(const PopulationFieldT<S>& f, const MaskField& mask,
                      const MaterialTable& mats, int x, int y, int z,
                      Real omega) {
  Real fin[D::Q];
  gather_incoming<D>(f, mask, mats, x, y, z, fin);
  return deviatoric_stress<D>(fin, omega);
}

}  // namespace swlb
