// Roofline model (Williams et al., paper ref [17]) used in §V-A2 to bound
// the attainable LBM performance.
#pragma once

#include <algorithm>

namespace swlb::perf {

struct Roofline {
  double peakFlops = 0;      ///< flops/s
  double peakBandwidth = 0;  ///< bytes/s

  /// Attainable flops at a given arithmetic intensity (flops/byte).
  double attainable(double intensity) const {
    return std::min(peakFlops, intensity * peakBandwidth);
  }

  /// Intensity where the compute and memory roofs meet.
  double ridgePoint() const { return peakFlops / peakBandwidth; }

  /// True when a kernel of this intensity is memory bound on this machine.
  bool memoryBound(double intensity) const { return intensity < ridgePoint(); }
};

}  // namespace swlb::perf
