// The Fig. 8 optimization ladder: from the MPE-only baseline (73.6 s per
// step on the 500x700x100 CG block of the Re=3900 DNS) to the fully tuned
// kernel (0.426 s, 172x).  Each stage of the paper maps to one modeled
// change:
//
//   baseline      everything on the MPE through its small data cache
//   +CPE          blocking/sharing moves the kernel to the CPE cluster
//                 (paper: >75x), halo exchange still sequential, kernels
//                 not fused, compute not yet pipelined
//   +on-the-fly   halo exchange overlapped with inner compute (~10%)
//   +fusion       propagation+collision fused: 1.3x less DMA traffic (~30%)
//   +assembly     vectorization + dual-pipeline scheduling hides the
//                 floating-point work behind DMA and raises sustained DMA
#pragma once

#include <string>
#include <vector>

#include "perf/cost_model.hpp"
#include "perf/scaling.hpp"

namespace swlb::perf {

struct LadderStage {
  std::string name;
  double stepSeconds = 0;
  double speedup = 1.0;       ///< vs the baseline stage
  double gainOverPrev = 1.0;  ///< vs the previous stage
};

struct LadderOptions {
  Int3 blockPerCg{500, 700, 100};  ///< paper: 35M cells per core group
  int totalRanks = 160000;
  /// Effective rate at which the MPE packs/sends halo buffers in the
  /// sequential scheme (calibrated: on-the-fly overlap buys ~10%).
  double haloHandlingBandwidth = 0.6 * (1ull << 30);
  /// Scalar (pre-assembly-optimization) CPE compute throughput: no
  /// vectorization, single pipeline, unscheduled stalls.
  double scalarClusterFlops = 7.4e10;
  /// Sustained DMA fraction before/after the assembly + double-buffering
  /// work (Fig. 10(2) pipelining).
  double baseKernelEfficiency = 0.88;
  double tunedKernelEfficiency = 0.95;
};

/// Modeled Fig. 8 ladder for a machine (TaihuLight by default).
std::vector<LadderStage> taihulight_ladder(const sw::MachineSpec& machine,
                                           const LbmCostModel& cost,
                                           const LadderOptions& opts = {});

}  // namespace swlb::perf
