// Interconnect model: supernode crossbar + fat tree (paper Fig. 2(b)).
//
// With the 2-D xy rank grid mapped block-wise onto supernodes, most of a
// rank's 8 halo neighbours live in the same supernode (full crossbar);
// only ranks on the perimeter of their supernode tile talk across the fat
// tree.  The model charges latency + bytes/bandwidth per message with the
// appropriate link class and adds a log-depth synchronization term.
#pragma once

#include <cmath>

#include "sw/spec.hpp"

namespace swlb::perf {

class NetworkModel {
 public:
  NetworkModel(const sw::NetworkSpec& spec, int cgsPerProcessor)
      : spec_(spec), cgsPerProcessor_(cgsPerProcessor) {}

  int ranksPerSupernode() const {
    return spec_.processorsPerSupernode * cgsPerProcessor_;
  }

  /// Fraction of halo links that cross supernode boundaries for a
  /// block-mapped square tile of ranks: perimeter/area of the tile.
  double remoteLinkFraction(int totalRanks) const {
    const int per = ranksPerSupernode();
    if (totalRanks <= per) return 0.0;
    const double side = std::sqrt(static_cast<double>(per));
    return std::min(1.0, 4.0 * side / per);
  }

  /// Time for one rank's halo exchange: `messages` messages carrying
  /// `bytesTotal` in aggregate, with the supernode/fat-tree mix implied by
  /// the total rank count.
  double haloExchangeSeconds(std::size_t bytesTotal, int messages,
                             int totalRanks) const {
    const double fRemote = remoteLinkFraction(totalRanks);
    const double bw = (1.0 - fRemote) * spec_.intraSupernodeBandwidth +
                      fRemote * spec_.fatTreeBandwidth;
    const double lat = (1.0 - fRemote) * spec_.intraSupernodeLatency +
                       fRemote * spec_.fatTreeLatency;
    return messages * lat + static_cast<double>(bytesTotal) / bw;
  }

  /// Log-depth synchronization (per-step residual/clock sync overhead).
  double syncSeconds(int totalRanks) const {
    if (totalRanks <= 1) return 0.0;
    return std::log2(static_cast<double>(totalRanks)) * spec_.fatTreeLatency;
  }

  /// Collective-communication algorithm shapes modeled by
  /// collectiveSeconds().  Mirrors swlb::coll's algorithm menu without
  /// depending on it (perf stays a leaf).
  enum class CollAlgo { Naive, Tree, Ring };

  /// Modeled wall time of an allreduce-shaped collective of `bytes` over
  /// `totalRanks`, used as the cross-check for coll's size-threshold
  /// selection policy:
  ///   Naive — centralized: the root serially receives P-1 full payloads,
  ///           then serially sends P-1 back (2(P-1) full-payload hops).
  ///   Tree  — binomial reduce + binomial broadcast: 2 ceil(log2 P) rounds,
  ///           each carrying the full payload.
  ///   Ring  — reduce-scatter + allgather: 2(P-1) rounds of bytes/P, the
  ///           bandwidth-optimal shape for large payloads.
  /// Links are the supernode/fat-tree blend implied by the rank count
  /// (topology-aware ring ordering keeps most hops intra-supernode).
  double collectiveSeconds(CollAlgo algo, std::size_t bytes,
                           int totalRanks) const {
    if (totalRanks <= 1) return 0.0;
    const double fRemote = remoteLinkFraction(totalRanks);
    const double bw = (1.0 - fRemote) * spec_.intraSupernodeBandwidth +
                      fRemote * spec_.fatTreeBandwidth;
    const double lat = (1.0 - fRemote) * spec_.intraSupernodeLatency +
                       fRemote * spec_.fatTreeLatency;
    const double P = static_cast<double>(totalRanks);
    const double b = static_cast<double>(bytes);
    switch (algo) {
      case CollAlgo::Naive:
        return 2.0 * (P - 1.0) * (lat + b / bw);
      case CollAlgo::Tree:
        return 2.0 * std::ceil(std::log2(P)) * (lat + b / bw);
      case CollAlgo::Ring:
        return 2.0 * (P - 1.0) * (lat + b / P / bw);
    }
    return 0.0;
  }

  const sw::NetworkSpec& spec() const { return spec_; }

 private:
  sw::NetworkSpec spec_;
  int cgsPerProcessor_;
};

}  // namespace swlb::perf
