// Interconnect model: supernode crossbar + fat tree (paper Fig. 2(b)).
//
// With the 2-D xy rank grid mapped block-wise onto supernodes, most of a
// rank's 8 halo neighbours live in the same supernode (full crossbar);
// only ranks on the perimeter of their supernode tile talk across the fat
// tree.  The model charges latency + bytes/bandwidth per message with the
// appropriate link class and adds a log-depth synchronization term.
#pragma once

#include <cmath>

#include "sw/spec.hpp"

namespace swlb::perf {

class NetworkModel {
 public:
  NetworkModel(const sw::NetworkSpec& spec, int cgsPerProcessor)
      : spec_(spec), cgsPerProcessor_(cgsPerProcessor) {}

  int ranksPerSupernode() const {
    return spec_.processorsPerSupernode * cgsPerProcessor_;
  }

  /// Fraction of halo links that cross supernode boundaries for a
  /// block-mapped square tile of ranks: perimeter/area of the tile.
  double remoteLinkFraction(int totalRanks) const {
    const int per = ranksPerSupernode();
    if (totalRanks <= per) return 0.0;
    const double side = std::sqrt(static_cast<double>(per));
    return std::min(1.0, 4.0 * side / per);
  }

  /// Time for one rank's halo exchange: `messages` messages carrying
  /// `bytesTotal` in aggregate, with the supernode/fat-tree mix implied by
  /// the total rank count.
  double haloExchangeSeconds(std::size_t bytesTotal, int messages,
                             int totalRanks) const {
    const double fRemote = remoteLinkFraction(totalRanks);
    const double bw = (1.0 - fRemote) * spec_.intraSupernodeBandwidth +
                      fRemote * spec_.fatTreeBandwidth;
    const double lat = (1.0 - fRemote) * spec_.intraSupernodeLatency +
                       fRemote * spec_.fatTreeLatency;
    return messages * lat + static_cast<double>(bytesTotal) / bw;
  }

  /// Log-depth synchronization (per-step residual/clock sync overhead).
  double syncSeconds(int totalRanks) const {
    if (totalRanks <= 1) return 0.0;
    return std::log2(static_cast<double>(totalRanks)) * spec_.fatTreeLatency;
  }

  const sw::NetworkSpec& spec() const { return spec_; }

 private:
  sw::NetworkSpec spec_;
  int cgsPerProcessor_;
};

}  // namespace swlb::perf
