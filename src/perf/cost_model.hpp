// LBM traffic/flop cost model (paper §IV-C3 and §V-A2).
//
// The paper's accounting for the D3Q19 pull kernel: "a total amount of
// 380 bytes including write allocate cache need to be fetched to LDM and
// written back to main memory to update one fluid cell".  That is
//   19 populations * 8 B read  +  19 * 8 B written  +  19 * 4 B
// write-allocate traffic = 2.5 * 152 B = 380 B per lattice update.
//
// The flops-per-update constant is derived from the paper's own reported
// numbers: 4.7 PFlops at 11,245 GLUPS (TaihuLight) and 2.76 PFlops at
// 6,583 GLUPS (new Sunway) both give ~418 flops per lattice update.
#pragma once

#include "core/common.hpp"

namespace swlb::perf {

struct LbmCostModel {
  int q = 19;                     ///< populations per cell (D3Q19)
  int bytesPerValue = 8;          ///< double precision
  double writeAllocateFactor = 0.5;  ///< extra write-allocate traffic
  double flopsPerLup = 418.0;     ///< from the paper's PFlops/GLUPS ratio

  /// Bytes moved per lattice update with the fused pull kernel.
  double bytesPerLup() const {
    return q * bytesPerValue * (2.0 + writeAllocateFactor);
  }
  /// Bytes per update without kernel fusion: the separate propagation and
  /// collision passes each read and write all populations (paper §IV-C3
  /// reports ~30% gain from fusing, i.e. ~1.3x traffic unfused).
  double bytesPerLupUnfused() const { return bytesPerLup() * 1.3; }

  /// Arithmetic intensity (flops per byte): ~1.1 for D3Q19, far below any
  /// processor's ridge point => LBM is memory bound everywhere.
  double arithmeticIntensity() const { return flopsPerLup / bytesPerLup(); }

  /// Roofline bound in lattice updates per second for a memory system of
  /// `bandwidth` bytes/s (paper: 32 GB/s / 380 B = 90.4 MLUPS per CG).
  double lupsUpperBound(double bandwidth) const {
    return bandwidth / bytesPerLup();
  }

  /// Memory-bandwidth utilization implied by a measured update rate.
  double bandwidthUtilization(double lups, double bandwidth) const {
    return lups * bytesPerLup() / bandwidth;
  }

  /// Sustained flops implied by an update rate (what PERF would report).
  double flops(double lups) const { return lups * flopsPerLup; }
};

}  // namespace swlb::perf
