#include "perf/report.hpp"

#include <cmath>
#include <iomanip>
#include <sstream>

#include "core/common.hpp"

namespace swlb::perf {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::addRow(std::vector<std::string> cells) {
  if (cells.size() != headers_.size())
    throw Error("Table: row width does not match header");
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  auto line = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "| " : " | ") << std::setw(static_cast<int>(width[c]))
         << cells[c];
    }
    os << " |\n";
  };
  line(headers_);
  os << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c)
    os << std::string(width[c] + 2, '-') << '|';
  os << '\n';
  for (const auto& row : rows_) line(row);
}

std::string Table::num(double v, int precision) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision) << v;
  return ss.str();
}

std::string Table::eng(double v, const std::string& unit, int precision) {
  static const char* prefixes[] = {"", "k", "M", "G", "T", "P", "E"};
  int idx = 0;
  double x = std::abs(v);
  while (x >= 1000.0 && idx < 6) {
    x /= 1000.0;
    ++idx;
  }
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision) << (v < 0 ? -x : x)
     << ' ' << prefixes[idx] << unit;
  return ss.str();
}

std::string Table::pct(double fraction) { return num(fraction * 100.0, 1) + "%"; }

void printHeading(const std::string& title, std::ostream& os) {
  os << '\n' << title << '\n' << std::string(title.size(), '=') << '\n';
}

}  // namespace swlb::perf
