// Performance model of the GPU-cluster port (paper §IV-E, Figs. 11/17).
//
// The port runs the D3Q19 kernel in single precision (an RTX 3090's FP64
// rate of 1/64 FP32 could never sustain a memory-bound LBM kernel; at
// FP32 the card is memory bound, consistent with the paper's reported
// 83.8% memory-bandwidth utilization).  Calibrated constants:
//   * node kernel efficiency 0.838 of the 8x936 GB/s aggregate GDDR6X —
//     the paper's measured utilization;
//   * CPU socket effective bandwidth such that the full ladder lands at
//     the paper's 191x (a tuned-free AoS MPI code on a 24-core socket).
#pragma once

#include <string>
#include <vector>

#include "perf/cost_model.hpp"
#include "sw/spec.hpp"

namespace swlb::perf {

struct GpuLadderStage {
  std::string name;
  double stepSeconds = 0;
  double speedup = 1.0;       ///< vs the CPU-socket baseline
  double gainOverPrev = 1.0;
};

struct GpuScalingPoint {
  int nodes = 0;
  int gpus = 0;
  double stepSeconds = 0;
  double glups = 0;
  double efficiency = 1.0;  ///< vs the 1-node point
};

class GpuClusterModel {
 public:
  explicit GpuClusterModel(const sw::GpuNodeSpec& spec = {},
                           LbmCostModel cost = fp32Cost());

  /// The FP32 variant of the cost model used on the GPUs.
  static LbmCostModel fp32Cost() {
    LbmCostModel c;
    c.bytesPerValue = 4;
    return c;
  }

  /// Effective memory bandwidth of one node's 8 GPUs for this kernel.
  double nodeEffectiveBandwidth() const;

  /// Fig. 11: optimization ladder on one node (default: the wind-field
  /// case, 1400 x 2800 x 100 cells).
  std::vector<GpuLadderStage> nodeLadder(const Int3& cells = {1400, 2800, 100}) const;

  /// Fig. 17: strong scaling of the wind-field case over 1..8 nodes.
  std::vector<GpuScalingPoint> strongScaling(
      const Int3& global = {1400, 2800, 100},
      const std::vector<int>& nodes = {1, 2, 4, 8}) const;

  /// Modeled memory-bandwidth utilization of a ladder stage time.
  double bandwidthUtilization(double cells, double stepSeconds) const;

  const sw::GpuNodeSpec& spec() const { return spec_; }
  const LbmCostModel& cost() const { return cost_; }

  /// Measured utilization the model is pinned to (paper §IV-E).
  static constexpr double kKernelUtilization = 0.838;

 private:
  sw::GpuNodeSpec spec_;
  LbmCostModel cost_;
};

}  // namespace swlb::perf
