// Weak/strong scaling simulator for the Sunway machines (paper Figs. 13-16).
//
// The per-core-group step cost is built mechanistically from the pieces
// the emulator meters:
//   * bulk cells stream x-contiguous rows through the DMA engine at an
//     effective bandwidth set by the row length (latency/bandwidth model,
//     latency amortized over the 64 concurrently-issuing CPEs);
//   * the one-cell-wide x-boundary strips stream rows of a single cell and
//     pay the full DMA latency — this is what erodes strong scaling as the
//     blocks shrink;
//   * halo messages ride the supernode crossbar / fat tree (NetworkModel)
//     and are hidden behind the inner update when overlap is on (Fig. 6);
//   * a calibrated kernel efficiency factor covers write-allocate and
//     memory-controller effects (matches the paper's measured 77% /
//     81.4% bandwidth utilization).
#pragma once

#include <utility>
#include <vector>

#include "perf/cost_model.hpp"
#include "perf/network.hpp"
#include "sw/spec.hpp"

namespace swlb::perf {

struct CgCostBreakdown {
  double innerSeconds = 0;
  double shellSeconds = 0;
  double commSeconds = 0;
  double syncSeconds = 0;
  double stepSeconds = 0;
};

struct ScalingPoint {
  int nCg = 0;            ///< number of core groups == MPI processes
  long long cores = 0;    ///< nCg * 65 (1 MPE + 64 CPEs)
  Int3 block;             ///< per-CG subdomain
  double cells = 0;       ///< global lattice cells
  double stepSeconds = 0;
  double glups = 0;
  double pflops = 0;
  double efficiency = 1.0;       ///< parallel efficiency vs series baseline
  double bwUtilization = 0;      ///< of aggregate DMA bandwidth
  CgCostBreakdown cost;
};

struct ScalingOptions {
  bool overlapHalo = true;  ///< on-the-fly halo exchange (Fig. 6(2))
  /// Sustained fraction of DMA peak beyond the transfer-size effect
  /// (write-allocate, controller efficiency); calibrated once against the
  /// paper's measured utilizations (77% TaihuLight, 81.4% new Sunway).
  double kernelEfficiency = 0.82;
};

class ScalingSimulator {
 public:
  ScalingSimulator(const sw::MachineSpec& machine, const LbmCostModel& cost,
                   const ScalingOptions& opts = {});

  /// Effective DMA bandwidth fraction for rows of `rowCells` cells
  /// (startup latency amortized over the 64 concurrent CPE queues).
  double dmaEfficiency(int rowCells) const;

  /// Cost of one step for one CG owning `block`, in a world of totalRanks.
  CgCostBreakdown cgStepCost(const Int3& block, int totalRanks) const;

  /// One weak-scaling point: fixed per-CG block on an nCgX x nCgY grid.
  ScalingPoint weakPoint(const Int3& blockPerCg, int nCgX, int nCgY) const;
  /// Weak-scaling series; efficiency is relative to the 1-CG point.
  std::vector<ScalingPoint> weakScaling(
      const Int3& blockPerCg, const std::vector<std::pair<int, int>>& grids) const;

  /// Strong-scaling series over a fixed global mesh; efficiency relative
  /// to the first (smallest) configuration in `grids`.
  std::vector<ScalingPoint> strongScaling(
      const Int3& global, const std::vector<std::pair<int, int>>& grids) const;

  /// Near-square process-grid factorization of n.
  static std::pair<int, int> squareGrid(int n);

  const sw::MachineSpec& machine() const { return machine_; }
  const LbmCostModel& cost() const { return cost_; }

  static constexpr int kCoresPerCg = 65;  // 1 MPE + 64 CPEs

 private:
  ScalingPoint makePoint(const Int3& block, int nCgX, int nCgY) const;

  sw::MachineSpec machine_;
  LbmCostModel cost_;
  ScalingOptions opts_;
  NetworkModel net_;
};

}  // namespace swlb::perf
