#include "perf/gpu_model.hpp"

#include <algorithm>

namespace swlb::perf {

namespace {
// Division-heavy unoptimized CUDA kernel: FP32 divisions have no hardware
// instruction (paper §IV-E) and stall the pipeline for ~45% extra time
// until the pre-computation optimization removes them.
constexpr double kComputeOverheadUnopt = 1.45;
constexpr double kComputeOverheadPrecomputed = 1.05;
// Fraction of the communication hidden behind interior compute once NCCL
// transfers run concurrently with the kernels.
constexpr double kCommOverlap = 0.85;
}  // namespace

GpuClusterModel::GpuClusterModel(const sw::GpuNodeSpec& spec, LbmCostModel cost)
    : spec_(spec), cost_(cost) {}

double GpuClusterModel::nodeEffectiveBandwidth() const {
  return spec_.gpusPerNode * spec_.gpuMemBandwidth * kKernelUtilization;
}

double GpuClusterModel::bandwidthUtilization(double cells,
                                             double stepSeconds) const {
  return cells * cost_.bytesPerLup() /
         (stepSeconds * spec_.gpusPerNode * spec_.gpuMemBandwidth);
}

std::vector<GpuLadderStage> GpuClusterModel::nodeLadder(const Int3& c) const {
  const double cells = static_cast<double>(c.x) * c.y * c.z;
  const double memNode = cells * cost_.bytesPerLup() / nodeEffectiveBandwidth();

  // Intra-node halo volume for the 4x2 GPU decomposition of the node block.
  const double haloBytes = (2.0 * c.y / 2 + 2.0 * c.x / 4) * c.z * cost_.q *
                           cost_.bytesPerValue;
  // Staged path: device -> pinned host -> MPI copy -> pinned host -> device.
  const double commStaged = 2.0 * haloBytes / spec_.pcieBandwidth +
                            haloBytes / spec_.cpuSocketBandwidth;
  const double commNccl =
      haloBytes / spec_.ncclP2pBandwidth * (1.0 - kCommOverlap);

  std::vector<GpuLadderStage> stages;
  auto add = [&](std::string name, double seconds) {
    GpuLadderStage s;
    s.name = std::move(name);
    s.stepSeconds = seconds;
    if (!stages.empty()) {
      s.speedup = stages.front().stepSeconds / seconds;
      s.gainOverPrev = stages.back().stepSeconds / seconds;
    }
    stages.push_back(std::move(s));
  };

  add("CPU (1 socket, MPI baseline)",
      cells * cost_.bytesPerLupUnfused() / spec_.cpuSocketBandwidth);
  add("+kernel fusion", cells * cost_.bytesPerLup() / spec_.cpuSocketBandwidth);
  add("+parallelization (8 GPUs, pinned)",
      memNode * kComputeOverheadUnopt + commStaged);
  add("+computation opt (pre-computed divisions)",
      memNode * kComputeOverheadPrecomputed + commStaged);
  add("+communication opt (NCCL)", memNode + commNccl);
  return stages;
}

std::vector<GpuScalingPoint> GpuClusterModel::strongScaling(
    const Int3& global, const std::vector<int>& nodes) const {
  const double cells = static_cast<double>(global.x) * global.y * global.z;
  std::vector<GpuScalingPoint> out;
  out.reserve(nodes.size());
  for (int n : nodes) {
    GpuScalingPoint p;
    p.nodes = n;
    p.gpus = n * spec_.gpusPerNode;
    const double mem = cells / n * cost_.bytesPerLup() / nodeEffectiveBandwidth();
    double comm = 0;
    if (n > 1) {
      // 1-D node decomposition along y: two faces of x*z cells per node.
      const double faceBytes = 2.0 * global.x * global.z * cost_.q *
                               cost_.bytesPerValue;
      comm = (faceBytes / spec_.nodeInterconnectBandwidth +
              spec_.nodeInterconnectLatency) *
             (1.0 - kCommOverlap);
    }
    p.stepSeconds = mem + comm;
    p.glups = cells / p.stepSeconds / 1e9;
    out.push_back(p);
  }
  if (!out.empty()) {
    const double t0 = out.front().stepSeconds * out.front().nodes;
    for (auto& p : out) p.efficiency = t0 / (p.stepSeconds * p.nodes);
  }
  return out;
}

}  // namespace swlb::perf
