// Step-time estimate for an emulated core-group kernel run: combines the
// metered DMA/fabric traffic (sw::SwKernelReport) with the dual-pipeline
// compute model (Fig. 10(2)) into the quantity the paper plots — seconds
// per time step and MLUPS for one core group.
#pragma once

#include "perf/cost_model.hpp"
#include "sw/pipeline.hpp"
#include "sw/sw_kernels.hpp"

namespace swlb::perf {

struct SwStepEstimate {
  double dmaSeconds = 0;      ///< shared memory controller (from the meter)
  double fabricSeconds = 0;   ///< register-comm / RMA mesh
  double computeSeconds = 0;  ///< 64 CPEs through the dual-pipeline model
  double stepSeconds = 0;     ///< max(dma, compute) + fabric (fused kernel
                              ///< overlaps compute with DMA double buffering)
  double mlups = 0;

  bool memoryBound() const { return dmaSeconds >= computeSeconds; }
};

/// @param pipelineScheduling 0 = unscheduled compiler output,
///        1 = hand-scheduled assembly (the paper's §IV-C4 stage)
inline SwStepEstimate estimate_sw_step(const sw::SwKernelReport& rep,
                                       const sw::CoreGroupSpec& spec,
                                       const LbmCostModel& cost,
                                       double pipelineScheduling = 0.9) {
  SwStepEstimate e;
  e.dmaSeconds = rep.dmaSeconds;
  e.fabricSeconds = rep.fabricSeconds;

  const int lanes = spec.vectorBits / 64;  // double-precision lanes
  sw::InstructionMix mix = sw::d3q19_cell_mix(lanes);
  mix.flops = cost.flopsPerLup;
  const sw::PipelineModel pipe(pipelineScheduling);
  const double cyclesPerCell = pipe.cycles(mix);
  e.computeSeconds = static_cast<double>(rep.cellsUpdated) * cyclesPerCell /
                     (spec.cpeFrequencyHz * spec.cpeCount());

  e.stepSeconds = std::max(e.dmaSeconds, e.computeSeconds) + e.fabricSeconds;
  e.mlups = rep.cellsUpdated ? static_cast<double>(rep.cellsUpdated) /
                                   e.stepSeconds / 1e6
                             : 0;
  return e;
}

}  // namespace swlb::perf
