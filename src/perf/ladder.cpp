#include "perf/ladder.hpp"

#include <algorithm>

namespace swlb::perf {

std::vector<LadderStage> taihulight_ladder(const sw::MachineSpec& machine,
                                           const LbmCostModel& cost,
                                           const LadderOptions& opts) {
  const double cells = static_cast<double>(opts.blockPerCg.x) *
                       opts.blockPerCg.y * opts.blockPerCg.z;

  ScalingOptions so;
  so.kernelEfficiency = opts.baseKernelEfficiency;
  ScalingSimulator sim(machine, cost, so);
  const double etaRow = sim.dmaEfficiency(opts.blockPerCg.x);

  // Halo buffer volume of the 2-D scheme (both directions, all Q).
  const double haloBytes =
      2.0 * (opts.blockPerCg.x + opts.blockPerCg.y + 2) *
      (opts.blockPerCg.z + 2) * cost.q * cost.bytesPerValue;

  const double memUnfused =
      cells * cost.bytesPerLupUnfused() /
      (machine.cg.dma.peakBandwidth * etaRow * opts.baseKernelEfficiency);
  const double memFused =
      cells * cost.bytesPerLup() /
      (machine.cg.dma.peakBandwidth * etaRow * opts.baseKernelEfficiency);
  const double memTuned =
      cells * cost.bytesPerLup() /
      (machine.cg.dma.peakBandwidth * etaRow * opts.tunedKernelEfficiency);
  // Pre-assembly the floating-point work is scalar and not pipelined
  // behind the DMA double buffering, so it adds to the step time.
  const double computeScalar = cells * cost.flopsPerLup / opts.scalarClusterFlops;
  const double commSequential = haloBytes / opts.haloHandlingBandwidth;

  std::vector<LadderStage> stages;
  auto add = [&](std::string name, double seconds) {
    LadderStage s;
    s.name = std::move(name);
    s.stepSeconds = seconds;
    if (!stages.empty()) {
      s.speedup = stages.front().stepSeconds / seconds;
      s.gainOverPrev = stages.back().stepSeconds / seconds;
    }
    stages.push_back(std::move(s));
  };

  // Baseline: the MPE walks the whole block through its data cache.
  add("MPE-only baseline",
      cells * cost.bytesPerLupUnfused() / machine.mpeEffectiveBandwidth);
  // CPE cluster with blocking + data sharing (Fig. 5); halo still
  // sequential, kernels split, scalar compute exposed.
  add("+CPE blocking & sharing", memUnfused + computeScalar + commSequential);
  // On-the-fly halo exchange hides the communication (Fig. 6).
  add("+on-the-fly halo", memUnfused + computeScalar);
  // Kernel fusion cuts the DMA traffic by ~1.3x (paper: ~30% boost).
  add("+kernel fusion", memFused + computeScalar);
  // Assembly optimization: vectorized, dual-pipeline-scheduled compute is
  // fully hidden behind double-buffered DMA at a higher sustained rate.
  add("+assembly & pipelining", std::max(memTuned, computeScalar * 0.25));

  return stages;
}

}  // namespace swlb::perf
