// Plain-text table formatting for the benchmark harness binaries: each
// bench prints the same rows/series the corresponding paper figure shows.
#pragma once

#include <iostream>
#include <string>
#include <vector>

namespace swlb::perf {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void addRow(std::vector<std::string> cells);
  void print(std::ostream& os = std::cout) const;

  /// Fixed-precision number formatting.
  static std::string num(double v, int precision = 2);
  /// Engineering formatting with a unit suffix (k/M/G/T scale).
  static std::string eng(double v, const std::string& unit, int precision = 2);
  /// Percentage with one decimal.
  static std::string pct(double fraction);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Section heading used by the figure-reproduction binaries.
void printHeading(const std::string& title, std::ostream& os = std::cout);

}  // namespace swlb::perf
