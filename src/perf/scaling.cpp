#include "perf/scaling.hpp"

#include <cmath>

namespace swlb::perf {

ScalingSimulator::ScalingSimulator(const sw::MachineSpec& machine,
                                   const LbmCostModel& cost,
                                   const ScalingOptions& opts)
    : machine_(machine),
      cost_(cost),
      opts_(opts),
      net_(machine.net, machine.coreGroupsPerProcessor) {}

double ScalingSimulator::dmaEfficiency(int rowCells) const {
  if (rowCells <= 0) return 1.0;
  const sw::DmaModel& dma = machine_.cg.dma;
  const double rowBytes = static_cast<double>(rowCells) * cost_.bytesPerValue;
  // Per-transaction startup amortized over the 64 CPE queues that keep the
  // shared memory controller busy concurrently.
  const double busStartupBytes =
      dma.startupSeconds / machine_.cg.cpeCount() * dma.peakBandwidth;
  return rowBytes / (rowBytes + busStartupBytes);
}

CgCostBreakdown ScalingSimulator::cgStepCost(const Int3& block,
                                             int totalRanks) const {
  CgCostBreakdown c;
  const double bw = machine_.cg.dma.peakBandwidth * opts_.kernelEfficiency;
  const double bpl = cost_.bytesPerLup();
  const long long cells =
      static_cast<long long>(block.x) * block.y * block.z;

  if (totalRanks <= 1) {
    c.innerSeconds = cells * bpl / (bw * dmaEfficiency(block.x));
    c.stepSeconds = c.innerSeconds;
    return c;
  }

  // Boundary shell (updated after the halo lands, Fig. 9(2)):
  //   x-strips: two 1 x ny x nz columns -> one-cell DMA rows (slow);
  //   y-strips: two (nx-2) x 1 x nz rows -> full-length rows (fast).
  const long long xStrip = 2LL * block.y * block.z;
  const long long yStrip = 2LL * std::max(0, block.x - 2) * block.z;
  const long long inner = cells - xStrip - yStrip;

  c.innerSeconds = inner * bpl / (bw * dmaEfficiency(block.x - 2));
  c.shellSeconds = xStrip * bpl / (bw * dmaEfficiency(1)) +
                   yStrip * bpl / (bw * dmaEfficiency(block.x - 2));

  // Halo traffic of the 2-D scheme: 2 x-faces (ny rows), 2 y-faces, 4
  // corner columns, all spanning nz + 2 halo layers (see runtime/halo.cpp).
  const std::size_t haloBytes =
      static_cast<std::size_t>(2LL * (block.y + block.x + 2) * (block.z + 2)) *
      cost_.q * cost_.bytesPerValue;
  c.commSeconds = net_.haloExchangeSeconds(haloBytes, 8, totalRanks);
  c.syncSeconds = net_.syncSeconds(totalRanks);

  if (opts_.overlapHalo) {
    c.stepSeconds = std::max(c.innerSeconds, c.commSeconds) + c.shellSeconds +
                    c.syncSeconds;
  } else {
    c.stepSeconds =
        c.innerSeconds + c.commSeconds + c.shellSeconds + c.syncSeconds;
  }
  return c;
}

ScalingPoint ScalingSimulator::makePoint(const Int3& block, int nCgX,
                                         int nCgY) const {
  const int nCg = nCgX * nCgY;
  ScalingPoint p;
  p.nCg = nCg;
  p.cores = static_cast<long long>(nCg) * kCoresPerCg;
  p.block = block;
  p.cells = static_cast<double>(block.x) * block.y * block.z * nCg;
  p.cost = cgStepCost(block, nCg);
  p.stepSeconds = p.cost.stepSeconds;
  p.glups = p.cells / p.stepSeconds / 1e9;
  p.pflops = cost_.flops(p.glups * 1e9) / 1e15;
  p.bwUtilization = cost_.bandwidthUtilization(
      p.glups * 1e9 / nCg, machine_.cg.dma.peakBandwidth);
  return p;
}

ScalingPoint ScalingSimulator::weakPoint(const Int3& blockPerCg, int nCgX,
                                         int nCgY) const {
  ScalingPoint p = makePoint(blockPerCg, nCgX, nCgY);
  const CgCostBreakdown base = cgStepCost(blockPerCg, 1);
  p.efficiency = base.stepSeconds / p.stepSeconds;
  return p;
}

std::vector<ScalingPoint> ScalingSimulator::weakScaling(
    const Int3& blockPerCg, const std::vector<std::pair<int, int>>& grids) const {
  std::vector<ScalingPoint> out;
  out.reserve(grids.size());
  for (const auto& [gx, gy] : grids) out.push_back(weakPoint(blockPerCg, gx, gy));
  return out;
}

std::vector<ScalingPoint> ScalingSimulator::strongScaling(
    const Int3& global, const std::vector<std::pair<int, int>>& grids) const {
  std::vector<ScalingPoint> out;
  out.reserve(grids.size());
  for (const auto& [gx, gy] : grids) {
    if (gx > global.x || gy > global.y)
      throw Error("strongScaling: more processes than cells along an axis");
    // Representative (largest) block of the split.
    const Int3 block{(global.x + gx - 1) / gx, (global.y + gy - 1) / gy,
                     global.z};
    ScalingPoint p = makePoint(block, gx, gy);
    p.cells = static_cast<double>(global.x) * global.y * global.z;
    p.glups = p.cells / p.stepSeconds / 1e9;
    p.pflops = cost_.flops(p.glups * 1e9) / 1e15;
    p.bwUtilization = cost_.bandwidthUtilization(
        p.glups * 1e9 / p.nCg, machine_.cg.dma.peakBandwidth);
    out.push_back(p);
  }
  if (!out.empty()) {
    const double t0 = out.front().stepSeconds;
    const int n0 = out.front().nCg;
    for (auto& p : out)
      p.efficiency = (t0 * n0) / (p.stepSeconds * p.nCg);
  }
  return out;
}

std::pair<int, int> ScalingSimulator::squareGrid(int n) {
  int best = 1;
  for (int d = 1; d * d <= n; ++d)
    if (n % d == 0) best = d;
  return {n / best, best};
}

}  // namespace swlb::perf
