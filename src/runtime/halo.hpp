// Halo exchange between neighbouring subdomain blocks (paper Fig. 9(1)).
//
// With the paper's 2-D xy decomposition every rank exchanges one-cell-wide
// strips with up to 8 neighbours (4 faces + 4 corners).  Strips span the
// full z extent *including* the z halo so that diagonal pulls across the
// subdomain corner pick up correct data; the caller must apply the local
// z periodic wrap before exchanging.
//
// Populations are packed, sent and unpacked in their *storage* precision:
// reduced-precision fields move proportionally fewer bytes on the wire
// (the raw storage elements are copied verbatim — no decode/encode error).
#pragma once

#include <array>
#include <cstring>
#include <vector>

#include "core/field.hpp"
#include "core/kernels.hpp"
#include "obs/context.hpp"
#include "runtime/comm.hpp"
#include "runtime/decomposition.hpp"

namespace swlb::runtime {

/// Halo-exchange scheduling scheme of a distributed step (paper Fig. 6).
///
///   * `Sequential` — Fig. 6(1): exchange every halo strip, *then* update
///     the whole subdomain.  Simplest schedule; communication time is
///     fully exposed on the critical path.
///   * `Overlap` — Fig. 6(2), the default: post receives and send packed
///     strips, update the inner cells (which need no remote data) while
///     messages are in flight, then update the one-cell boundary shell
///     after the halo lands.  Hides communication behind computation; the
///     paper credits it with ~10 % end-to-end gain, and both schemes are
///     bit-identical in results (tested by test_distributed).
///
/// Valid values: exactly these two.  The auto-tuner (src/tune/) picks one
/// from the modeled halo-vs-compute ratio (DESIGN.md §9); override it via
/// `DistributedSolver::Config::mode`.
enum class HaloMode { Sequential, Overlap };

class HaloExchange {
 public:
  /// Plan the exchange for `rank`'s block of `decomp`.  `periodic` is the
  /// *global* domain periodicity; periodic axes wrap around the process
  /// grid (possibly onto the same rank).
  HaloExchange(const Decomposition& decomp, int rank, const Periodicity& periodic,
               const Grid& localGrid);

  /// Blocking exchange of all Q population strips (sequential scheme,
  /// Fig. 6(1)).
  template <class S>
  void exchange(Comm& comm, PopulationFieldT<S>& f) {
    begin(comm, f);
    finish(comm, f);
  }

  /// On-the-fly scheme (Fig. 6(2)): post receives and send packed strips,
  /// then return so the caller can update the inner domain meanwhile.
  template <class S>
  void begin(Comm& comm, PopulationFieldT<S>& f) {
    const int q = f.q();
    // Post all receives first, then pack and send: classic non-blocking
    // ordering (also required so self-messages on wrapped axes match).
    for (auto& n : neighbors_) {
      n.recvBuf.resize(static_cast<std::size_t>(n.recvBox.volume()) * q *
                       sizeof(S));
      n.pending = comm.irecv(n.rank, n.recvTag, n.recvBuf.data(),
                             n.recvBuf.size());
    }
    obs::TraceScope packScope("halo.pack");
    for (auto& n : neighbors_) {
      n.sendBuf.resize(static_cast<std::size_t>(n.sendBox.volume()) * q *
                       sizeof(S));
      S* out = reinterpret_cast<S*>(n.sendBuf.data());
      std::size_t k = 0;
      const Box3& box = n.sendBox;
      for (int qq = 0; qq < q; ++qq)
        for (int z = box.lo.z; z < box.hi.z; ++z)
          for (int y = box.lo.y; y < box.hi.y; ++y)
            for (int x = box.lo.x; x < box.hi.x; ++x)
              out[k++] = f.raw(qq, x, y, z);
      comm.isend(n.rank, n.sendTag, n.sendBuf.data(), n.sendBuf.size());
    }
  }

  /// Wait for the posted receives and unpack into the halo.
  template <class S>
  void finish(Comm& comm, PopulationFieldT<S>& f) {
    (void)comm;
    const int q = f.q();
    for (auto& n : neighbors_) {
      {
        obs::TraceScope waitScope("halo.wait");
        n.pending.wait();
      }
      obs::TraceScope unpackScope("halo.unpack");
      const S* in = reinterpret_cast<const S*>(n.recvBuf.data());
      std::size_t k = 0;
      const Box3& box = n.recvBox;
      for (int qq = 0; qq < q; ++qq)
        for (int z = box.lo.z; z < box.hi.z; ++z)
          for (int y = box.lo.y; y < box.hi.y; ++y)
            for (int x = box.lo.x; x < box.hi.x; ++x)
              f.raw(qq, x, y, z) = in[k++];
    }
  }

  /// Reverse halo exchange for the esoteric single-buffer scheme, run
  /// *after* the even in-place step.  That step scatters post-collision
  /// populations outward: a boundary cell writes slot opp(i) of the halo
  /// cell x + c_i, which canonically belongs to the neighbour rank's edge
  /// cell.  So the roles flip relative to the forward exchange — we *pack
  /// from the recvBox* (our halo, where the deposits landed) and *unpack
  /// into the sendBox* (our interior edge, where the neighbour's deposits
  /// belong).  Only slots whose velocity points INTO the neighbour carry
  /// deposits (c_j · d ≥ 0 componentwise with at least the face axis
  /// matching); both sides enumerate the same slot set in ascending j, so
  /// the packed layouts agree.  Wall parks never cross ranks (a park is a
  /// cell's deposit into its *own* adjacent wall), so face strips suffice.
  /// Tags are offset by 16 to stay disjoint from the forward tags (0..8).
  template <class D, class S>
  void exchangeReverse(Comm& comm, PopulationFieldT<S>& f) {
    // A deposit [j, h] in our halo was written by our interior cell
    // h + c_j, so exported slots have c_j pointing from the halo *into*
    // our interior (c_j · d = -d componentwise).  Conversely an interior
    // edge slot [j, e] whose writer e + c_j lives on the neighbour has
    // c_j pointing *toward* the neighbour (c_j · d = +d).  The mirrored
    // neighbour flips d, so both ranks enumerate the same slot set.
    auto fromHalo = [](int dx, int dy, int j) {
      return (dx == 0 || D::c[j][0] == -dx) && (dy == 0 || D::c[j][1] == -dy);
    };
    auto intoEdge = [](int dx, int dy, int j) {
      return (dx == 0 || D::c[j][0] == dx) && (dy == 0 || D::c[j][1] == dy);
    };
    for (auto& n : neighbors_) {
      int slots = 0;
      for (int j = 0; j < D::Q; ++j)
        if (intoEdge(n.dx, n.dy, j)) ++slots;
      n.recvBuf.resize(static_cast<std::size_t>(n.sendBox.volume()) * slots *
                       sizeof(S));
      n.pending = comm.irecv(n.rank, 16 + n.recvTag, n.recvBuf.data(),
                             n.recvBuf.size());
    }
    {
      obs::TraceScope packScope("halo.pack");
      for (auto& n : neighbors_) {
        int slots = 0;
        for (int j = 0; j < D::Q; ++j)
          if (fromHalo(n.dx, n.dy, j)) ++slots;
        n.sendBuf.resize(static_cast<std::size_t>(n.recvBox.volume()) * slots *
                         sizeof(S));
        S* out = reinterpret_cast<S*>(n.sendBuf.data());
        std::size_t k = 0;
        const Box3& box = n.recvBox;
        for (int j = 0; j < D::Q; ++j) {
          if (!fromHalo(n.dx, n.dy, j)) continue;
          for (int z = box.lo.z; z < box.hi.z; ++z)
            for (int y = box.lo.y; y < box.hi.y; ++y)
              for (int x = box.lo.x; x < box.hi.x; ++x)
                out[k++] = f.raw(j, x, y, z);
        }
        comm.isend(n.rank, 16 + n.sendTag, n.sendBuf.data(), n.sendBuf.size());
      }
    }
    {
      obs::TraceScope waitScope("halo.wait");
      for (auto& n : neighbors_) n.pending.wait();
    }
    // Unpack faces first, corners second: a face strip reaches the corner
    // cell, where its diagonal-slot payload is stale on the sender (the
    // canonical writer lives on the *diagonal* rank); the corner message
    // carries the true value and must win.
    obs::TraceScope unpackScope("halo.unpack");
    for (int pass = 0; pass < 2; ++pass) {
      for (auto& n : neighbors_) {
        const bool corner = n.dx != 0 && n.dy != 0;
        if (corner != (pass == 1)) continue;
        const S* in = reinterpret_cast<const S*>(n.recvBuf.data());
        std::size_t k = 0;
        const Box3& box = n.sendBox;
        for (int j = 0; j < D::Q; ++j) {
          if (!intoEdge(n.dx, n.dy, j)) continue;
          for (int z = box.lo.z; z < box.hi.z; ++z)
            for (int y = box.lo.y; y < box.hi.y; ++y)
              for (int x = box.lo.x; x < box.hi.x; ++x)
                f.raw(j, x, y, z) = in[k++];
        }
      }
    }
  }

  /// One-off exchange of the material mask at setup time.
  void exchangeMask(Comm& comm, MaskField& mask);

  int neighborCount() const { return static_cast<int>(neighbors_.size()); }

  /// Cells whose update only touches own interior data (safe to compute
  /// while halo messages are in flight).
  Box3 innerBox() const;
  /// The boundary shell = interior minus innerBox, as up to 4 boxes.
  std::vector<Box3> boundaryShell() const;

  /// Bytes sent per exchange of a Q-population field with `elemBytes`-wide
  /// storage elements (for the perf model and the obs invariants).
  std::size_t bytesPerExchange(int q,
                               std::size_t elemBytes = sizeof(Real)) const;

  /// One planned ghost link, exposed so the patch runtime (runtime/patches)
  /// can reuse the exchange plan — boxes in local coordinates, tags in the
  /// forward tag space 0..8 — without going through Comm.  Pack order is
  /// the same as exchange(): q outer, then z, y, x.
  struct Link {
    int peer = -1;       // neighbour id in the planning decomposition
    int dx = 0, dy = 0;  // direction from this block to the peer
    Box3 sendBox;        // our cells the peer's halo needs
    Box3 recvBox;        // our halo cells the peer fills
    int sendTag = 0, recvTag = 0;
  };

  /// Copy of the planned links (faces + corners, wrapped axes included).
  std::vector<Link> links() const {
    std::vector<Link> out;
    out.reserve(neighbors_.size());
    for (const auto& n : neighbors_)
      out.push_back({n.rank, n.dx, n.dy, n.sendBox, n.recvBox, n.sendTag,
                     n.recvTag});
    return out;
  }

 private:
  struct Neighbor {
    int rank = -1;
    int dx = 0, dy = 0;
    Box3 sendBox;  // local coordinates, may reach into the z halo
    Box3 recvBox;
    int sendTag = 0, recvTag = 0;
    std::vector<std::uint8_t> sendBuf, recvBuf;  // raw storage bytes
    Request pending;
  };

  static int tagOf(int dx, int dy) { return (dx + 1) * 3 + (dy + 1); }

  Grid grid_;
  bool decomposedX_ = false, decomposedY_ = false;
  std::vector<Neighbor> neighbors_;
};

}  // namespace swlb::runtime
