// Halo exchange between neighbouring subdomain blocks (paper Fig. 9(1)).
//
// With the paper's 2-D xy decomposition every rank exchanges one-cell-wide
// strips with up to 8 neighbours (4 faces + 4 corners).  Strips span the
// full z extent *including* the z halo so that diagonal pulls across the
// subdomain corner pick up correct data; the caller must apply the local
// z periodic wrap before exchanging.
#pragma once

#include <array>
#include <vector>

#include "core/field.hpp"
#include "core/kernels.hpp"
#include "runtime/comm.hpp"
#include "runtime/decomposition.hpp"

namespace swlb::runtime {

class HaloExchange {
 public:
  /// Plan the exchange for `rank`'s block of `decomp`.  `periodic` is the
  /// *global* domain periodicity; periodic axes wrap around the process
  /// grid (possibly onto the same rank).
  HaloExchange(const Decomposition& decomp, int rank, const Periodicity& periodic,
               const Grid& localGrid);

  /// Blocking exchange of all Q population strips (sequential scheme,
  /// Fig. 6(1)).
  void exchange(Comm& comm, PopulationField& f);

  /// On-the-fly scheme (Fig. 6(2)): post receives and send packed strips,
  /// then return so the caller can update the inner domain meanwhile.
  void begin(Comm& comm, PopulationField& f);
  /// Wait for the posted receives and unpack into the halo.
  void finish(Comm& comm, PopulationField& f);

  /// One-off exchange of the material mask at setup time.
  void exchangeMask(Comm& comm, MaskField& mask);

  int neighborCount() const { return static_cast<int>(neighbors_.size()); }

  /// Cells whose update only touches own interior data (safe to compute
  /// while halo messages are in flight).
  Box3 innerBox() const;
  /// The boundary shell = interior minus innerBox, as up to 4 boxes.
  std::vector<Box3> boundaryShell() const;

  /// Bytes sent per exchange of a Q-population field (for the perf model).
  std::size_t bytesPerExchange(int q) const;

 private:
  struct Neighbor {
    int rank = -1;
    int dx = 0, dy = 0;
    Box3 sendBox;  // local coordinates, may reach into the z halo
    Box3 recvBox;
    int sendTag = 0, recvTag = 0;
    std::vector<Real> sendBuf, recvBuf;
    std::vector<std::uint8_t> sendBufMask, recvBufMask;
    Request pending;
  };

  static int tagOf(int dx, int dy) { return (dx + 1) * 3 + (dy + 1); }

  Grid grid_;
  bool decomposedX_ = false, decomposedY_ = false;
  std::vector<Neighbor> neighbors_;
};

}  // namespace swlb::runtime
