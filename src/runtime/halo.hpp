// Halo exchange between neighbouring subdomain blocks (paper Fig. 9(1)).
//
// With the paper's 2-D xy decomposition every rank exchanges one-cell-wide
// strips with up to 8 neighbours (4 faces + 4 corners).  Strips span the
// full z extent *including* the z halo so that diagonal pulls across the
// subdomain corner pick up correct data; the caller must apply the local
// z periodic wrap before exchanging.
//
// Populations are packed, sent and unpacked in their *storage* precision:
// reduced-precision fields move proportionally fewer bytes on the wire
// (the raw storage elements are copied verbatim — no decode/encode error).
#pragma once

#include <array>
#include <cstring>
#include <vector>

#include "core/field.hpp"
#include "core/kernels.hpp"
#include "obs/context.hpp"
#include "runtime/comm.hpp"
#include "runtime/decomposition.hpp"

namespace swlb::runtime {

/// Halo-exchange scheduling scheme of a distributed step (paper Fig. 6).
///
///   * `Sequential` — Fig. 6(1): exchange every halo strip, *then* update
///     the whole subdomain.  Simplest schedule; communication time is
///     fully exposed on the critical path.
///   * `Overlap` — Fig. 6(2), the default: post receives and send packed
///     strips, update the inner cells (which need no remote data) while
///     messages are in flight, then update the one-cell boundary shell
///     after the halo lands.  Hides communication behind computation; the
///     paper credits it with ~10 % end-to-end gain, and both schemes are
///     bit-identical in results (tested by test_distributed).
///
/// Valid values: exactly these two.  The auto-tuner (src/tune/) picks one
/// from the modeled halo-vs-compute ratio (DESIGN.md §9); override it via
/// `DistributedSolver::Config::mode`.
enum class HaloMode { Sequential, Overlap };

class HaloExchange {
 public:
  /// Plan the exchange for `rank`'s block of `decomp`.  `periodic` is the
  /// *global* domain periodicity; periodic axes wrap around the process
  /// grid (possibly onto the same rank).
  HaloExchange(const Decomposition& decomp, int rank, const Periodicity& periodic,
               const Grid& localGrid);

  /// Blocking exchange of all Q population strips (sequential scheme,
  /// Fig. 6(1)).
  template <class S>
  void exchange(Comm& comm, PopulationFieldT<S>& f) {
    begin(comm, f);
    finish(comm, f);
  }

  /// On-the-fly scheme (Fig. 6(2)): post receives and send packed strips,
  /// then return so the caller can update the inner domain meanwhile.
  template <class S>
  void begin(Comm& comm, PopulationFieldT<S>& f) {
    const int q = f.q();
    // Post all receives first, then pack and send: classic non-blocking
    // ordering (also required so self-messages on wrapped axes match).
    for (auto& n : neighbors_) {
      n.recvBuf.resize(static_cast<std::size_t>(n.recvBox.volume()) * q *
                       sizeof(S));
      n.pending = comm.irecv(n.rank, n.recvTag, n.recvBuf.data(),
                             n.recvBuf.size());
    }
    obs::TraceScope packScope("halo.pack");
    for (auto& n : neighbors_) {
      n.sendBuf.resize(static_cast<std::size_t>(n.sendBox.volume()) * q *
                       sizeof(S));
      S* out = reinterpret_cast<S*>(n.sendBuf.data());
      std::size_t k = 0;
      const Box3& box = n.sendBox;
      for (int qq = 0; qq < q; ++qq)
        for (int z = box.lo.z; z < box.hi.z; ++z)
          for (int y = box.lo.y; y < box.hi.y; ++y)
            for (int x = box.lo.x; x < box.hi.x; ++x)
              out[k++] = f.raw(qq, x, y, z);
      comm.isend(n.rank, n.sendTag, n.sendBuf.data(), n.sendBuf.size());
    }
  }

  /// Wait for the posted receives and unpack into the halo.
  template <class S>
  void finish(Comm& comm, PopulationFieldT<S>& f) {
    (void)comm;
    const int q = f.q();
    for (auto& n : neighbors_) {
      {
        obs::TraceScope waitScope("halo.wait");
        n.pending.wait();
      }
      obs::TraceScope unpackScope("halo.unpack");
      const S* in = reinterpret_cast<const S*>(n.recvBuf.data());
      std::size_t k = 0;
      const Box3& box = n.recvBox;
      for (int qq = 0; qq < q; ++qq)
        for (int z = box.lo.z; z < box.hi.z; ++z)
          for (int y = box.lo.y; y < box.hi.y; ++y)
            for (int x = box.lo.x; x < box.hi.x; ++x)
              f.raw(qq, x, y, z) = in[k++];
    }
  }

  /// One-off exchange of the material mask at setup time.
  void exchangeMask(Comm& comm, MaskField& mask);

  int neighborCount() const { return static_cast<int>(neighbors_.size()); }

  /// Cells whose update only touches own interior data (safe to compute
  /// while halo messages are in flight).
  Box3 innerBox() const;
  /// The boundary shell = interior minus innerBox, as up to 4 boxes.
  std::vector<Box3> boundaryShell() const;

  /// Bytes sent per exchange of a Q-population field with `elemBytes`-wide
  /// storage elements (for the perf model and the obs invariants).
  std::size_t bytesPerExchange(int q,
                               std::size_t elemBytes = sizeof(Real)) const;

 private:
  struct Neighbor {
    int rank = -1;
    int dx = 0, dy = 0;
    Box3 sendBox;  // local coordinates, may reach into the z halo
    Box3 recvBox;
    int sendTag = 0, recvTag = 0;
    std::vector<std::uint8_t> sendBuf, recvBuf;  // raw storage bytes
    Request pending;
  };

  static int tagOf(int dx, int dy) { return (dx + 1) * 3 + (dy + 1); }

  Grid grid_;
  bool decomposedX_ = false, decomposedY_ = false;
  std::vector<Neighbor> neighbors_;
};

}  // namespace swlb::runtime
