// Message-passing runtime: MPI-style semantics with ranks as threads.
//
// The paper runs one MPI process per core group (160,000 processes on
// TaihuLight).  No MPI implementation is available in this environment, so
// this runtime provides the same programming model — tagged point-to-point
// send/recv, non-blocking isend/irecv with requests, barrier and
// reductions — executed by std::threads within one process.  The
// distributed solver and halo-exchange code are written against this
// interface exactly as they would be against MPI.
//
// A configurable synthetic network model (per-message latency plus
// byte-rate) lets benchmarks reproduce communication/computation overlap
// effects (paper Fig. 6): with zero-cost delivery the on-the-fly scheme
// would show no benefit on shared memory.
//
// For fault-tolerance work (paper §IV-B checkpoint/restart controller) the
// runtime also supports deterministic fault injection (drop / delay /
// corrupt tagged messages, kill a rank at a chosen step), receive deadlines
// that surface lost messages as TimeoutError instead of deadlock, and an
// allreduce-based liveness vote — the failure paths a 160,000-rank campaign
// must survive.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "core/common.hpp"

namespace swlb::obs {
class Tracer;
class MetricsRegistry;
}  // namespace swlb::obs

namespace swlb::runtime {

/// Matches any source rank in recv/irecv.
inline constexpr int kAnySource = -1;
/// Matches any tag in FaultPlan rules (user tags are non-negative).
inline constexpr int kAnyTag = -1;

/// Reserved tag space of the collective subsystem (swlb::coll).  Every
/// collective operation consumes one sequence number from its Comm
/// (collectives are globally ordered per communicator, so the counter
/// agrees across ranks) and tags all of its messages with the encoded
/// sequence: a fast rank entering collective n+1 can never have its
/// traffic matched by a peer still inside collective n, and
/// Comm::drainMailbox can tell stale collective leftovers (sequence
/// behind the rank's counter) from live ones.  User tags are
/// non-negative; collective tags are <= -kBase; -1..-(kBase-1) stay free
/// for future internal protocols.
/// Internal tag of the liveness/health protocol (Comm::probeLiveness).
/// Lives in the -1..-(colltag::kBase-1) space reserved for internal
/// protocols, so it can never collide with user or collective tags.
inline constexpr int kHealthTag = -2;

namespace colltag {
inline constexpr int kBase = 16;
inline constexpr std::uint64_t kWindow = std::uint64_t(1) << 20;
inline int encode(std::uint64_t seq) {
  return -static_cast<int>(kBase + seq % kWindow);
}
inline bool isCollective(int tag) { return tag <= -kBase; }
inline std::uint64_t sequenceOf(int tag) {
  return static_cast<std::uint64_t>(-tag - kBase);
}
}  // namespace colltag

/// A receive (or Request::wait) exceeded its deadline without a matching
/// message becoming deliverable.  Distinct from Error so resilient drivers
/// can treat it as a recoverable communication failure.
class TimeoutError : public Error {
 public:
  explicit TimeoutError(const std::string& what) : Error(what) {}
};

/// A checksummed message failed payload verification on receive.
class CorruptionError : public Error {
 public:
  explicit CorruptionError(const std::string& what) : Error(what) {}
};

/// Thrown by Comm::faultTick on the rank the FaultPlan marked for death —
/// models a fail-stop crash at a chosen simulation step.  A *transient*
/// kill models a crash with warm respawn (the rank comes back and replays
/// from the rollback); a *permanent* kill models a retired node: the rank
/// never returns, and survivors must shrink around it.
class RankKilledError : public Error {
 public:
  RankKilledError(int rank, std::uint64_t step, bool permanent = false)
      : Error("rank " + std::to_string(rank) + " killed by fault plan at step " +
              std::to_string(step) + (permanent ? " (permanent)" : "")),
        rank_(rank),
        step_(step),
        permanent_(permanent) {}
  int rank() const { return rank_; }
  std::uint64_t step() const { return step_; }
  bool permanent() const { return permanent_; }

 private:
  int rank_;
  std::uint64_t step_;
  bool permanent_;
};

/// Deterministic fault-injection plan for a World.  Message rules match on
/// (src, dst, tag) with kAnySource/kAnyTag wildcards and apply to the
/// nth..nth+count-1 matching messages *of each flow* (a flow is a concrete
/// (src, dst, tag) triple, counted in send order, which is deterministic
/// per sender).  Probabilistic rules draw from a hash of (seed, flow, n),
/// never from global state, so the same seed reproduces the same faults
/// regardless of thread interleaving.
struct FaultPlan {
  enum class Action { Drop, Delay, Corrupt };
  struct MessageFault {
    Action action = Action::Drop;
    int src = kAnySource;
    int dst = kAnySource;
    int tag = kAnyTag;
    std::uint64_t nth = 0;    ///< first matching flow index affected (0-based)
    std::uint64_t count = 1;  ///< how many consecutive matches to affect
    double probability = 1.0; ///< per-match apply probability (seeded hash)
    double delay = 0.0;       ///< Delay: extra seconds before delivery
    std::size_t corruptByte = 0;      ///< Corrupt: byte offset (mod size)
    std::uint8_t xorMask = 0x01;      ///< Corrupt: flipped bits
  };
  std::vector<MessageFault> messageFaults;
  /// Kill this rank (fail-stop) when it calls faultTick(killAtStep); -1
  /// disables.  One-shot: the "restarted" rank survives replayed steps.
  /// With killPermanent the rank stays dead (node retired, no respawn).
  /// Ranks in kill rules are *world* ranks — stable across Comm::shrink.
  int killRank = -1;
  std::uint64_t killAtStep = 0;
  bool killPermanent = false;
  /// Additional kills (each one-shot), for campaigns that lose several
  /// ranks over one run (e.g. the 4->3->2 soak test).
  struct RankKill {
    int rank = -1;
    std::uint64_t step = 0;
    bool permanent = false;
  };
  std::vector<RankKill> rankKills;
  std::uint64_t seed = 0;
  bool enabled() const {
    return killRank >= 0 || !rankKills.empty() || !messageFaults.empty();
  }
};

/// Deterministic [0,1) roll used for probabilistic message faults.
double fault_roll(std::uint64_t seed, int src, int dst, int tag, std::uint64_t n);

struct WorldConfig {
  /// Synthetic per-message latency (seconds); 0 disables the network model.
  double latency = 0.0;
  /// Synthetic bandwidth (bytes/second); 0 means infinite.
  double bandwidth = 0.0;
  /// Busy-wait (spin) for pending deliveries instead of sleeping.  This is
  /// how a blocking MPE behaves on the real machine: it polls the network
  /// and cannot do anything else — which is exactly what the on-the-fly
  /// scheme (Fig. 6(2)) avoids.  Meaningful on oversubscribed hosts where
  /// sleeping would hand the core to another rank.
  bool busyWait = false;
  /// Injected faults (drop/delay/corrupt messages, kill a rank).
  FaultPlan faults;
  /// Observability (DESIGN.md §6): when set, World::run binds every rank
  /// thread to this tracer/registry (obs::ScopedBind), so solver phase
  /// scopes trace per rank and Comm meters messages/bytes/timeouts/faults
  /// into named counters.  Both optional and independent; neither is owned.
  obs::Tracer* tracer = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
};

/// Counters of injected faults actually applied (whole world).
struct FaultStats {
  std::uint64_t dropped = 0;
  std::uint64_t delayed = 0;
  std::uint64_t corrupted = 0;
  std::uint64_t kills = 0;
};

/// Per-rank communication counters.
struct CommStats {
  std::uint64_t messagesSent = 0;
  std::uint64_t bytesSent = 0;
  std::uint64_t messagesReceived = 0;
  std::uint64_t bytesReceived = 0;
};

/// Knobs of the message-based liveness probe (Comm::probeLiveness): a peer
/// is pinged up to 1 + `retries` times, each detection round waiting
/// `timeout * backoff^round` seconds, before it is declared dead.  The
/// retry-and-backoff ladder keeps one slow scheduler hiccup from being
/// mistaken for a retired node.
struct HealthConfig {
  double timeout = 0.25;  ///< first detection round's window (seconds)
  int retries = 3;        ///< extra rounds after the first
  double backoff = 2.0;   ///< window multiplier per round
};

/// Per-rank counters of the health protocol.
struct HealthStats {
  std::uint64_t probes = 0;        ///< probeLiveness calls
  std::uint64_t retries = 0;       ///< detection rounds beyond the first
  std::uint64_t suspected = 0;     ///< peers unheard after a full ladder
  std::uint64_t declaredDead = 0;  ///< peers declared dead by a probe
};

class World;

/// Handle on a pending non-blocking operation.  Default-constructed
/// requests are complete.
class Request {
 public:
  Request() = default;
  /// Block until the operation finishes (recv: data landed in the buffer).
  /// Honors the owning Comm's default receive timeout (TimeoutError).
  void wait();
  /// Block at most `timeoutSec` seconds; throws TimeoutError on expiry.
  /// timeoutSec <= 0 waits forever.
  void wait(double timeoutSec);
  /// Poll without blocking.
  bool test();

 private:
  friend class Comm;
  struct State;
  std::shared_ptr<State> state_;
};

/// Per-rank endpoint passed to the rank function by World::run.
///
/// A Comm starts out congruent with its World (rank i of N).  After a
/// permanent rank loss, Comm::shrink compacts the surviving ranks into a
/// dense 0..M-1 numbering over the same World: rank()/size() and every
/// p2p/collective destination are then *communicator* ranks, while the
/// underlying mailboxes (and fault-plan rules) keep using the immutable
/// *world* ranks, exposed via worldRank()/worldRankOf().
class Comm {
 public:
  int rank() const { return rank_; }
  int size() const;

  /// Immutable world (thread) rank of this endpoint — equal to rank()
  /// until a shrink renumbers the survivors.
  int worldRank() const { return group_.empty() ? rank_ : group_[rank_]; }
  /// World rank behind a communicator rank.
  int worldRankOf(int commRank) const {
    return group_.empty() ? commRank : group_[static_cast<std::size_t>(commRank)];
  }

  // ---- point to point ------------------------------------------------
  void send(int dst, int tag, const void* data, std::size_t bytes);
  /// Blocking receive; honors the default receive timeout (setRecvTimeout).
  void recv(int src, int tag, void* data, std::size_t bytes);
  /// Blocking receive with an explicit deadline: throws TimeoutError after
  /// `timeoutSec` seconds without a deliverable match (<= 0 waits forever).
  void recv(int src, int tag, void* data, std::size_t bytes, double timeoutSec);
  /// Buffered (eager) send: safe to reuse `data` immediately.
  Request isend(int dst, int tag, const void* data, std::size_t bytes);
  Request irecv(int src, int tag, void* data, std::size_t bytes);

  /// Send with an appended FNV-1a payload checksum; the matching
  /// recvChecksummed verifies it and throws CorruptionError on mismatch —
  /// the detection path for bit-corrupted halo/checkpoint traffic.
  void sendChecksummed(int dst, int tag, const void* data, std::size_t bytes);
  void recvChecksummed(int src, int tag, void* data, std::size_t bytes);

  /// Default timeout (seconds) applied by recv/Request::wait when no
  /// explicit deadline is given; 0 (the default) blocks forever.  Resilient
  /// drivers set this so a lost message surfaces as TimeoutError instead
  /// of deadlocking the world.
  void setRecvTimeout(double seconds) { recvTimeout_ = seconds; }
  double recvTimeout() const { return recvTimeout_; }

  /// Bounded retry of default-timeout receives: when the deadline expires,
  /// retry up to `retries` more times, multiplying the window by `backoff`
  /// each attempt, before letting TimeoutError escape.  A single delayed
  /// message is then absorbed locally instead of escalating to a failure
  /// vote and a full rollback.  Explicit-deadline receives never retry.
  void setRecvRetry(int retries, double backoff) {
    recvRetries_ = retries;
    recvBackoff_ = backoff;
  }
  int recvRetries() const { return recvRetries_; }
  double recvRetryBackoff() const { return recvBackoff_; }

  // ---- fault tolerance -------------------------------------------------
  /// Report the local simulation step to the fault plan; throws
  /// RankKilledError on the configured victim rank (one-shot).
  void faultTick(std::uint64_t step);
  /// Discard every pending message in this rank's mailbox (recovery path:
  /// stale halo traffic from an aborted step must not leak into the replay).
  /// Returns the number of messages discarded.
  std::size_t drainMailbox();
  /// Allreduce-based liveness vote callable between steps: every rank
  /// reports its own health; returns how many ranks said alive.
  int livenessVote(bool alive);

  // ---- elastic recovery (DESIGN.md §10) --------------------------------
  /// Message-based liveness probe, callable when a collective vote has
  /// already timed out (so collectives cannot be trusted).  Pings every
  /// unheard peer of the current communicator with retry-and-backoff per
  /// `hc`, gossips heard-masks so indirect evidence counts, then runs a
  /// confirmation round among the believed-alive peers (which doubles as a
  /// survivor barrier).  Returns an alive mask indexed by *world* rank
  /// (entries outside the current group are reported dead).  Collective
  /// among the surviving ranks; safe for dead ranks to never call.
  std::vector<std::uint8_t> probeLiveness(const HealthConfig& hc = {});

  /// Compact this communicator onto the surviving ranks of `aliveWorld`
  /// (mask indexed by world rank, as returned by probeLiveness): dense
  /// reranking in ascending world-rank order, stale mailbox traffic
  /// drained, collective sequence preserved so in-flight collective frames
  /// of survivors stay matchable.  Returns the new rank.  Throws when the
  /// calling rank itself is not in the mask.  Must be called with the same
  /// mask on every survivor.
  int shrink(const std::vector<std::uint8_t>& aliveWorld);

  const HealthStats& healthStats() const { return health_; }

  template <typename T>
  void sendValue(int dst, int tag, const T& v) {
    send(dst, tag, &v, sizeof(T));
  }
  template <typename T>
  T recvValue(int src, int tag) {
    T v{};
    recv(src, tag, &v, sizeof(T));
    return v;
  }

  // ---- collectives ----------------------------------------------------
  // Convenience entry points; all delegate to swlb::coll (message-based
  // tree/ring algorithms over the point-to-point layer), so they inherit
  // fault injection, timeouts and metering like any other traffic.
  void barrier();
  enum class Op { Sum, Min, Max };
  double allreduce(double value, Op op);
  /// Gather `bytes` from every rank into `out` (root only; out must hold
  /// size()*bytes).  Non-root ranks pass their slice via `data`.
  void gather(int root, const void* data, std::size_t bytes, void* out);
  /// Broadcast from root into `data` on every rank.
  void broadcast(int root, void* data, std::size_t bytes);

  /// Collective sequence state (see colltag): one number is consumed per
  /// collective operation on this communicator, by swlb::coll.  Counters
  /// agree across ranks because collectives are globally ordered.
  std::uint64_t collSequence() const { return collSeq_; }
  std::uint64_t nextCollSequence() { return collSeq_++; }

  const CommStats& stats() const { return stats_; }

 private:
  friend class World;
  friend class Request;
  Comm(World* world, int rank) : world_(world), rank_(rank) {}
  World* world_;
  int rank_;  ///< communicator rank (== world rank until a shrink)
  /// Survivor group after shrink(s): communicator rank -> world rank,
  /// ascending.  Empty means the identity mapping over the whole world.
  std::vector<int> group_;
  CommStats stats_;
  HealthStats health_;
  double recvTimeout_ = 0;  ///< seconds; 0 = block forever
  int recvRetries_ = 0;     ///< extra attempts of default-timeout recvs
  double recvBackoff_ = 2.0;
  std::uint64_t collSeq_ = 0;
  std::uint64_t probeEpoch_ = 0;  ///< filters stale health frames
};

/// Owns the mailboxes and fault-injection state; runs rank functions on
/// threads.  Collectives are pure message-passing (swlb::coll) — the World
/// holds no centralized collective state.
class World {
 public:
  explicit World(int size, const WorldConfig& cfg = {});
  ~World();

  World(const World&) = delete;
  World& operator=(const World&) = delete;

  int size() const { return size_; }

  /// Execute `fn` on every rank (one thread each); blocks until all ranks
  /// return.  The first exception thrown by any rank is rethrown here.
  void run(const std::function<void(Comm&)>& fn);

  /// Aggregate statistics over all ranks of the last run.
  CommStats totalStats() const;

  /// Counters of injected faults applied so far (deterministic for fully
  /// specified rules; reproducible per seed for probabilistic ones).
  FaultStats faultStats() const;

  /// World ranks that died *permanently* during the last run (fail-stop
  /// without respawn).  A permanent RankKilledError unwinding a rank's
  /// thread is recorded here instead of being rethrown by run() — the
  /// victim's exit is part of the scenario, not a run failure.
  std::vector<int> deadRanks() const;

 private:
  friend class Comm;
  friend class Request;
  struct Impl;
  std::unique_ptr<Impl> impl_;
  int size_;
  std::vector<CommStats> lastStats_;
};

}  // namespace swlb::runtime
