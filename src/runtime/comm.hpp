// Message-passing runtime: MPI-style semantics with ranks as threads.
//
// The paper runs one MPI process per core group (160,000 processes on
// TaihuLight).  No MPI implementation is available in this environment, so
// this runtime provides the same programming model — tagged point-to-point
// send/recv, non-blocking isend/irecv with requests, barrier and
// reductions — executed by std::threads within one process.  The
// distributed solver and halo-exchange code are written against this
// interface exactly as they would be against MPI.
//
// A configurable synthetic network model (per-message latency plus
// byte-rate) lets benchmarks reproduce communication/computation overlap
// effects (paper Fig. 6): with zero-cost delivery the on-the-fly scheme
// would show no benefit on shared memory.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "core/common.hpp"

namespace swlb::runtime {

/// Matches any source rank in recv/irecv.
inline constexpr int kAnySource = -1;

struct WorldConfig {
  /// Synthetic per-message latency (seconds); 0 disables the network model.
  double latency = 0.0;
  /// Synthetic bandwidth (bytes/second); 0 means infinite.
  double bandwidth = 0.0;
  /// Busy-wait (spin) for pending deliveries instead of sleeping.  This is
  /// how a blocking MPE behaves on the real machine: it polls the network
  /// and cannot do anything else — which is exactly what the on-the-fly
  /// scheme (Fig. 6(2)) avoids.  Meaningful on oversubscribed hosts where
  /// sleeping would hand the core to another rank.
  bool busyWait = false;
};

/// Per-rank communication counters.
struct CommStats {
  std::uint64_t messagesSent = 0;
  std::uint64_t bytesSent = 0;
  std::uint64_t messagesReceived = 0;
  std::uint64_t bytesReceived = 0;
};

class World;

/// Handle on a pending non-blocking operation.  Default-constructed
/// requests are complete.
class Request {
 public:
  Request() = default;
  /// Block until the operation finishes (recv: data landed in the buffer).
  void wait();
  /// Poll without blocking.
  bool test();

 private:
  friend class Comm;
  struct State;
  std::shared_ptr<State> state_;
};

/// Per-rank endpoint passed to the rank function by World::run.
class Comm {
 public:
  int rank() const { return rank_; }
  int size() const;

  // ---- point to point ------------------------------------------------
  void send(int dst, int tag, const void* data, std::size_t bytes);
  void recv(int src, int tag, void* data, std::size_t bytes);
  /// Buffered (eager) send: safe to reuse `data` immediately.
  Request isend(int dst, int tag, const void* data, std::size_t bytes);
  Request irecv(int src, int tag, void* data, std::size_t bytes);

  template <typename T>
  void sendValue(int dst, int tag, const T& v) {
    send(dst, tag, &v, sizeof(T));
  }
  template <typename T>
  T recvValue(int src, int tag) {
    T v{};
    recv(src, tag, &v, sizeof(T));
    return v;
  }

  // ---- collectives ----------------------------------------------------
  void barrier();
  enum class Op { Sum, Min, Max };
  double allreduce(double value, Op op);
  /// Gather `bytes` from every rank into `out` (root only; out must hold
  /// size()*bytes).  Non-root ranks pass their slice via `data`.
  void gather(int root, const void* data, std::size_t bytes, void* out);
  /// Broadcast from root into `data` on every rank.
  void broadcast(int root, void* data, std::size_t bytes);

  const CommStats& stats() const { return stats_; }

 private:
  friend class World;
  friend class Request;
  Comm(World* world, int rank) : world_(world), rank_(rank) {}
  World* world_;
  int rank_;
  CommStats stats_;
};

/// Owns the mailboxes and collective state; runs rank functions on threads.
class World {
 public:
  explicit World(int size, const WorldConfig& cfg = {});
  ~World();

  World(const World&) = delete;
  World& operator=(const World&) = delete;

  int size() const { return size_; }

  /// Execute `fn` on every rank (one thread each); blocks until all ranks
  /// return.  The first exception thrown by any rank is rethrown here.
  void run(const std::function<void(Comm&)>& fn);

  /// Aggregate statistics over all ranks of the last run.
  CommStats totalStats() const;

 private:
  friend class Comm;
  friend class Request;
  struct Impl;
  std::unique_ptr<Impl> impl_;
  int size_;
  std::vector<CommStats> lastStats_;
};

}  // namespace swlb::runtime
