#include "runtime/comm.hpp"

#include "coll/coll.hpp"
#include "obs/context.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <exception>
#include <map>
#include <thread>
#include <tuple>

namespace swlb::runtime {

using Clock = std::chrono::steady_clock;

namespace {
constexpr Clock::time_point kNoDeadline = Clock::time_point::max();

Clock::time_point deadlineFrom(double timeoutSec) {
  if (timeoutSec <= 0) return kNoDeadline;
  // Huge timeouts (the resilience vote path scales them x4) can overflow
  // duration_cast and wrap the deadline into the past, turning "wait
  // nearly forever" into an instant timeout.  Anything beyond the clock's
  // representable horizon simply means no deadline.
  const auto now = Clock::now();
  const double maxSec =
      std::chrono::duration<double>(kNoDeadline - now).count();
  if (timeoutSec >= maxSec) return kNoDeadline;
  return now + std::chrono::duration_cast<Clock::duration>(
                   std::chrono::duration<double>(timeoutSec));
}

std::uint64_t splitmix64(std::uint64_t z) {
  z += 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}
}  // namespace

double fault_roll(std::uint64_t seed, int src, int dst, int tag, std::uint64_t n) {
  std::uint64_t h = splitmix64(seed);
  h = splitmix64(h ^ (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)) |
                      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(dst)) << 32)));
  h = splitmix64(h ^ static_cast<std::uint64_t>(static_cast<std::uint32_t>(tag)));
  h = splitmix64(h ^ n);
  // 53 high bits -> uniform double in [0, 1).
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

struct Request::State {
  // Completed-send requests are created with done = true.
  bool done = false;
  // Pending receive parameters (matched lazily in wait/test).
  Comm* comm = nullptr;
  int src = kAnySource;
  int tag = 0;
  void* buf = nullptr;
  std::size_t bytes = 0;
};

struct Message {
  int src;
  int tag;
  std::vector<std::uint8_t> data;
  Clock::time_point availableAt;
};

struct Mailbox {
  std::mutex m;
  std::condition_variable cv;
  std::deque<Message> q;
};

struct World::Impl {
  WorldConfig cfg;
  std::vector<Mailbox> boxes;

  // Fault-injection state.  Flow counters are keyed by (rule, src, dst,
  // tag) so "the nth message" is well defined per sender regardless of
  // cross-rank interleaving.
  std::mutex faultM;
  std::map<std::tuple<std::size_t, int, int, int>, std::uint64_t> flowCounts;
  bool killFired = false;
  FaultStats faultStats;

  explicit Impl(int size, const WorldConfig& c) : cfg(c), boxes(size) {}

  /// Apply matching message-fault rules to an outgoing message; returns
  /// true when the message must be dropped.
  bool applyMessageFaults(int src, int dst, int tag, Message& msg) {
    const FaultPlan& fp = cfg.faults;
    std::lock_guard<std::mutex> lock(faultM);
    for (std::size_t i = 0; i < fp.messageFaults.size(); ++i) {
      const FaultPlan::MessageFault& r = fp.messageFaults[i];
      if ((r.src != kAnySource && r.src != src) ||
          (r.dst != kAnySource && r.dst != dst) ||
          (r.tag != kAnyTag && r.tag != tag))
        continue;
      const std::uint64_t n = flowCounts[{i, src, dst, tag}]++;
      if (n < r.nth || n - r.nth >= r.count) continue;
      if (r.probability < 1.0 &&
          fault_roll(fp.seed ^ static_cast<std::uint64_t>(i), src, dst, tag, n) >=
              r.probability)
        continue;
      switch (r.action) {
        case FaultPlan::Action::Drop:
          ++faultStats.dropped;
          obs::count("comm.faults.dropped");
          return true;
        case FaultPlan::Action::Delay:
          msg.availableAt += std::chrono::duration_cast<Clock::duration>(
              std::chrono::duration<double>(r.delay));
          ++faultStats.delayed;
          obs::count("comm.faults.delayed");
          break;
        case FaultPlan::Action::Corrupt:
          if (!msg.data.empty()) {
            msg.data[r.corruptByte % msg.data.size()] ^= r.xorMask;
            ++faultStats.corrupted;
            obs::count("comm.faults.corrupted");
          }
          break;
      }
    }
    return false;
  }

  Clock::time_point deliveryTime(std::size_t bytes) const {
    auto t = Clock::now();
    if (cfg.latency > 0)
      t += std::chrono::duration_cast<Clock::duration>(
          std::chrono::duration<double>(cfg.latency));
    if (cfg.bandwidth > 0)
      t += std::chrono::duration_cast<Clock::duration>(
          std::chrono::duration<double>(static_cast<double>(bytes) / cfg.bandwidth));
    return t;
  }

  void deliver(int dst, Message&& msg) {
    Mailbox& box = boxes[static_cast<std::size_t>(dst)];
    {
      std::lock_guard<std::mutex> lock(box.m);
      box.q.push_back(std::move(msg));
    }
    box.cv.notify_all();
  }

  /// Find the first message matching (src, tag) in FIFO order.
  static std::deque<Message>::iterator findMatch(std::deque<Message>& q, int src,
                                                 int tag) {
    return std::find_if(q.begin(), q.end(), [&](const Message& m) {
      return (src == kAnySource || m.src == src) && m.tag == tag;
    });
  }

  /// Blocking receive with the synthetic network model: waits for a
  /// matching message, then until its modeled delivery time has passed.
  /// Throws TimeoutError when `deadline` passes first (kNoDeadline waits
  /// forever — a dropped message then deadlocks, which is exactly what the
  /// timeout path exists to avoid).
  void recvBlocking(int me, int src, int tag, void* data, std::size_t bytes,
                    Clock::time_point deadline) {
    Mailbox& box = boxes[static_cast<std::size_t>(me)];
    std::unique_lock<std::mutex> lock(box.m);
    for (;;) {
      auto it = findMatch(box.q, src, tag);
      const auto now = Clock::now();
      if (it != box.q.end() && it->availableAt <= now) {
        if (it->data.size() != bytes) {
          throw Error("Comm::recv: message size mismatch (got " +
                      std::to_string(it->data.size()) + ", expected " +
                      std::to_string(bytes) + ")");
        }
        if (bytes > 0) std::memcpy(data, it->data.data(), bytes);
        box.q.erase(it);
        return;
      }
      if (deadline != kNoDeadline && now >= deadline) {
        throw TimeoutError("Comm::recv: rank " + std::to_string(me) +
                           " timed out waiting for message (src=" +
                           std::to_string(src) + ", tag=" + std::to_string(tag) +
                           ")");
      }
      if (it != box.q.end()) {
        // Matched but not yet delivered by the network model: wait out the
        // modeled latency (bounded by the deadline).
        auto until = it->availableAt;
        if (deadline != kNoDeadline && deadline < until) until = deadline;
        lock.unlock();
        if (cfg.busyWait) {
          while (Clock::now() < until) {
            // spin: the MPE polls the interconnect
          }
        } else {
          std::this_thread::sleep_until(until);
        }
        lock.lock();
      } else if (deadline == kNoDeadline) {
        box.cv.wait(lock);
      } else {
        box.cv.wait_until(lock, deadline);
      }
    }
  }

  /// Non-blocking probe + receive; returns false when nothing matched yet.
  bool tryRecv(int me, int src, int tag, void* data, std::size_t bytes) {
    Mailbox& box = boxes[static_cast<std::size_t>(me)];
    std::lock_guard<std::mutex> lock(box.m);
    auto it = findMatch(box.q, src, tag);
    if (it == box.q.end() || it->availableAt > Clock::now()) return false;
    if (it->data.size() != bytes) {
      throw Error("Comm::irecv: message size mismatch");
    }
    if (bytes > 0) std::memcpy(data, it->data.data(), bytes);
    box.q.erase(it);
    return true;
  }
};

// ------------------------------------------------------------------ Request

void Request::wait() {
  if (!state_ || state_->done) return;
  state_->comm->recv(state_->src, state_->tag, state_->buf, state_->bytes);
  state_->done = true;
}

void Request::wait(double timeoutSec) {
  if (!state_ || state_->done) return;
  state_->comm->recv(state_->src, state_->tag, state_->buf, state_->bytes,
                     timeoutSec);
  state_->done = true;
}

bool Request::test() {
  if (!state_ || state_->done) return true;
  World::Impl& impl = *state_->comm->world_->impl_;
  if (impl.tryRecv(state_->comm->rank(), state_->src, state_->tag, state_->buf,
                   state_->bytes)) {
    state_->done = true;
  }
  return state_->done;
}

// --------------------------------------------------------------------- Comm

int Comm::size() const { return world_->size(); }

void Comm::send(int dst, int tag, const void* data, std::size_t bytes) {
  SWLB_ASSERT(dst >= 0 && dst < size());
  World::Impl& impl = *world_->impl_;
  Message msg;
  msg.src = rank_;
  msg.tag = tag;
  msg.data.resize(bytes);
  if (bytes > 0) std::memcpy(msg.data.data(), data, bytes);
  msg.availableAt = impl.deliveryTime(bytes);
  ++stats_.messagesSent;
  stats_.bytesSent += bytes;
  obs::count("comm.messages_sent");
  obs::count("comm.bytes_sent", bytes);
  if (impl.cfg.faults.enabled() &&
      impl.applyMessageFaults(rank_, dst, tag, msg))
    return;  // dropped by the fault plan
  impl.deliver(dst, std::move(msg));
}

void Comm::recv(int src, int tag, void* data, std::size_t bytes) {
  recv(src, tag, data, bytes, recvTimeout_);
}

void Comm::recv(int src, int tag, void* data, std::size_t bytes,
                double timeoutSec) {
  try {
    world_->impl_->recvBlocking(rank_, src, tag, data, bytes,
                                deadlineFrom(timeoutSec));
  } catch (const TimeoutError&) {
    obs::count("comm.timeouts");
    throw;
  }
  ++stats_.messagesReceived;
  stats_.bytesReceived += bytes;
  obs::count("comm.messages_received");
  obs::count("comm.bytes_received", bytes);
}

void Comm::sendChecksummed(int dst, int tag, const void* data,
                           std::size_t bytes) {
  std::vector<std::uint8_t> frame(bytes + sizeof(std::uint64_t));
  if (bytes > 0) std::memcpy(frame.data(), data, bytes);
  const std::uint64_t h = fnv1a_hash(data, bytes);
  std::memcpy(frame.data() + bytes, &h, sizeof(h));
  send(dst, tag, frame.data(), frame.size());
}

void Comm::recvChecksummed(int src, int tag, void* data, std::size_t bytes) {
  std::vector<std::uint8_t> frame(bytes + sizeof(std::uint64_t));
  recv(src, tag, frame.data(), frame.size());
  std::uint64_t h = 0;
  std::memcpy(&h, frame.data() + bytes, sizeof(h));
  if (fnv1a_hash(frame.data(), bytes) != h) {
    obs::count("comm.corruption_detected");
    throw CorruptionError("Comm::recvChecksummed: checksum mismatch on rank " +
                          std::to_string(rank_) + " (src=" + std::to_string(src) +
                          ", tag=" + std::to_string(tag) +
                          "): payload corrupted in transit");
  }
  if (bytes > 0) std::memcpy(data, frame.data(), bytes);
}

void Comm::faultTick(std::uint64_t step) {
  World::Impl& impl = *world_->impl_;
  const FaultPlan& fp = impl.cfg.faults;
  if (fp.killRank != rank_ || step != fp.killAtStep) return;
  std::lock_guard<std::mutex> lock(impl.faultM);
  if (impl.killFired) return;  // one-shot: the respawned rank survives
  impl.killFired = true;
  ++impl.faultStats.kills;
  obs::count("comm.faults.kills");
  throw RankKilledError(rank_, step);
}

std::size_t Comm::drainMailbox() {
  // Discard stale traffic only: user messages (tag >= 0 — an aborted
  // step's halo strips) and collective messages whose sequence lies
  // strictly behind this rank's counter (leftovers of an abandoned
  // collective).  Current/future collective messages must survive — a
  // peer that already passed the recovery vote may be inside the next
  // collective, and eating its traffic would deadlock the world.
  Mailbox& box = world_->impl_->boxes[static_cast<std::size_t>(rank_)];
  std::lock_guard<std::mutex> lock(box.m);
  const std::uint64_t myMod = collSeq_ % colltag::kWindow;
  const std::size_t before = box.q.size();
  std::erase_if(box.q, [&](const Message& m) {
    if (m.tag >= 0) return true;
    if (!colltag::isCollective(m.tag)) return false;
    const std::uint64_t behind =
        (myMod - colltag::sequenceOf(m.tag) + colltag::kWindow) %
        colltag::kWindow;
    return behind != 0 && behind < colltag::kWindow / 2;
  });
  return before - box.q.size();
}

int Comm::livenessVote(bool alive) {
  coll::Collectives cs(*this);
  return static_cast<int>(
      cs.allreduce_value<std::int64_t>(alive ? 1 : 0, coll::Op::Sum));
}

Request Comm::isend(int dst, int tag, const void* data, std::size_t bytes) {
  // Eager buffered send: the payload is copied, so the operation is
  // already complete from the sender's point of view.
  send(dst, tag, data, bytes);
  Request r;
  r.state_ = std::make_shared<Request::State>();
  r.state_->done = true;
  return r;
}

Request Comm::irecv(int src, int tag, void* data, std::size_t bytes) {
  Request r;
  r.state_ = std::make_shared<Request::State>();
  r.state_->comm = this;
  r.state_->src = src;
  r.state_->tag = tag;
  r.state_->buf = data;
  r.state_->bytes = bytes;
  return r;
}

void Comm::barrier() { coll::Collectives(*this).barrier(); }

double Comm::allreduce(double value, Op op) {
  coll::Op cop = coll::Op::Sum;
  switch (op) {
    case Op::Sum: cop = coll::Op::Sum; break;
    case Op::Min: cop = coll::Op::Min; break;
    case Op::Max: cop = coll::Op::Max; break;
  }
  coll::Collectives cs(*this);
  return cs.allreduce_value(value, cop);
}

void Comm::gather(int root, const void* data, std::size_t bytes, void* out) {
  if (rank_ == root) SWLB_ASSERT(out != nullptr);
  coll::Collectives cs(*this);
  cs.gather<std::uint8_t>(
      root, {static_cast<const std::uint8_t*>(data), bytes},
      {static_cast<std::uint8_t*>(out),
       rank_ == root ? bytes * static_cast<std::size_t>(size()) : 0});
}

void Comm::broadcast(int root, void* data, std::size_t bytes) {
  coll::Collectives cs(*this);
  cs.broadcast<std::uint8_t>(root, {static_cast<std::uint8_t*>(data), bytes});
}

// -------------------------------------------------------------------- World

World::World(int size, const WorldConfig& cfg) : size_(size) {
  if (size <= 0) throw Error("World: size must be positive");
  impl_ = std::make_unique<Impl>(size, cfg);
}

World::~World() = default;

void World::run(const std::function<void(Comm&)>& fn) {
  // Fresh Comms reset the collective sequence counters to zero, so any
  // leftover mailbox traffic from a previous (faulted) run would alias the
  // new run's collective tags.  No rank is alive between runs, so pending
  // messages are garbage by definition: clear them.
  for (Mailbox& box : impl_->boxes) {
    std::lock_guard<std::mutex> lock(box.m);
    box.q.clear();
  }
  std::vector<std::thread> threads;
  std::vector<Comm> comms;
  comms.reserve(static_cast<std::size_t>(size_));
  for (int r = 0; r < size_; ++r) comms.push_back(Comm(this, r));

  std::mutex errM;
  std::exception_ptr firstError;

  threads.reserve(static_cast<std::size_t>(size_));
  for (int r = 0; r < size_; ++r) {
    threads.emplace_back([&, r] {
      // Observability binding covers the rank's whole lifetime so phase
      // scopes and Comm counters attribute to the right rank timeline.
      obs::ScopedBind obsBind(impl_->cfg.tracer, impl_->cfg.metrics, r);
      try {
        fn(comms[static_cast<std::size_t>(r)]);
      } catch (...) {
        std::lock_guard<std::mutex> lock(errM);
        if (!firstError) firstError = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();

  lastStats_.clear();
  for (const auto& c : comms) lastStats_.push_back(c.stats());
  if (firstError) std::rethrow_exception(firstError);
}

FaultStats World::faultStats() const {
  std::lock_guard<std::mutex> lock(impl_->faultM);
  return impl_->faultStats;
}

CommStats World::totalStats() const {
  CommStats total;
  for (const auto& s : lastStats_) {
    total.messagesSent += s.messagesSent;
    total.bytesSent += s.bytesSent;
    total.messagesReceived += s.messagesReceived;
    total.bytesReceived += s.bytesReceived;
  }
  return total;
}

}  // namespace swlb::runtime
