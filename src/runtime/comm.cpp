#include "runtime/comm.hpp"

#include "coll/coll.hpp"
#include "obs/context.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <exception>
#include <map>
#include <thread>
#include <tuple>

namespace swlb::runtime {

using Clock = std::chrono::steady_clock;

namespace {
constexpr Clock::time_point kNoDeadline = Clock::time_point::max();

Clock::time_point deadlineFrom(double timeoutSec) {
  if (timeoutSec <= 0) return kNoDeadline;
  // Huge timeouts (the resilience vote path scales them x4) can overflow
  // duration_cast and wrap the deadline into the past, turning "wait
  // nearly forever" into an instant timeout.  Anything beyond the clock's
  // representable horizon simply means no deadline.
  const auto now = Clock::now();
  const double maxSec =
      std::chrono::duration<double>(kNoDeadline - now).count();
  if (timeoutSec >= maxSec) return kNoDeadline;
  return now + std::chrono::duration_cast<Clock::duration>(
                   std::chrono::duration<double>(timeoutSec));
}

std::uint64_t splitmix64(std::uint64_t z) {
  z += 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}
}  // namespace

double fault_roll(std::uint64_t seed, int src, int dst, int tag, std::uint64_t n) {
  std::uint64_t h = splitmix64(seed);
  h = splitmix64(h ^ (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)) |
                      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(dst)) << 32)));
  h = splitmix64(h ^ static_cast<std::uint64_t>(static_cast<std::uint32_t>(tag)));
  h = splitmix64(h ^ n);
  // 53 high bits -> uniform double in [0, 1).
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

struct Request::State {
  // Completed-send requests are created with done = true.
  bool done = false;
  // Pending receive parameters (matched lazily in wait/test).
  Comm* comm = nullptr;
  int src = kAnySource;
  int tag = 0;
  void* buf = nullptr;
  std::size_t bytes = 0;
};

struct Message {
  int src;
  int tag;
  std::vector<std::uint8_t> data;
  Clock::time_point availableAt;
};

struct Mailbox {
  std::mutex m;
  std::condition_variable cv;
  std::deque<Message> q;
};

struct World::Impl {
  WorldConfig cfg;
  std::vector<Mailbox> boxes;

  // Fault-injection state.  Flow counters are keyed by (rule, src, dst,
  // tag) so "the nth message" is well defined per sender regardless of
  // cross-rank interleaving.
  std::mutex faultM;
  std::map<std::tuple<std::size_t, int, int, int>, std::uint64_t> flowCounts;
  bool killFired = false;
  std::vector<char> rankKillsFired;
  FaultStats faultStats;

  // World ranks lost to permanent kills during the current run.
  std::mutex deadM;
  std::vector<int> deadRanks;

  explicit Impl(int size, const WorldConfig& c)
      : cfg(c), boxes(size), rankKillsFired(c.faults.rankKills.size(), 0) {}

  /// Apply matching message-fault rules to an outgoing message; returns
  /// true when the message must be dropped.
  bool applyMessageFaults(int src, int dst, int tag, Message& msg) {
    const FaultPlan& fp = cfg.faults;
    std::lock_guard<std::mutex> lock(faultM);
    for (std::size_t i = 0; i < fp.messageFaults.size(); ++i) {
      const FaultPlan::MessageFault& r = fp.messageFaults[i];
      if ((r.src != kAnySource && r.src != src) ||
          (r.dst != kAnySource && r.dst != dst) ||
          (r.tag != kAnyTag && r.tag != tag))
        continue;
      const std::uint64_t n = flowCounts[{i, src, dst, tag}]++;
      if (n < r.nth || n - r.nth >= r.count) continue;
      if (r.probability < 1.0 &&
          fault_roll(fp.seed ^ static_cast<std::uint64_t>(i), src, dst, tag, n) >=
              r.probability)
        continue;
      switch (r.action) {
        case FaultPlan::Action::Drop:
          ++faultStats.dropped;
          obs::count("comm.faults.dropped");
          return true;
        case FaultPlan::Action::Delay:
          msg.availableAt += std::chrono::duration_cast<Clock::duration>(
              std::chrono::duration<double>(r.delay));
          ++faultStats.delayed;
          obs::count("comm.faults.delayed");
          break;
        case FaultPlan::Action::Corrupt:
          if (!msg.data.empty()) {
            msg.data[r.corruptByte % msg.data.size()] ^= r.xorMask;
            ++faultStats.corrupted;
            obs::count("comm.faults.corrupted");
          }
          break;
      }
    }
    return false;
  }

  Clock::time_point deliveryTime(std::size_t bytes) const {
    auto t = Clock::now();
    if (cfg.latency > 0)
      t += std::chrono::duration_cast<Clock::duration>(
          std::chrono::duration<double>(cfg.latency));
    if (cfg.bandwidth > 0)
      t += std::chrono::duration_cast<Clock::duration>(
          std::chrono::duration<double>(static_cast<double>(bytes) / cfg.bandwidth));
    return t;
  }

  void deliver(int dst, Message&& msg) {
    Mailbox& box = boxes[static_cast<std::size_t>(dst)];
    {
      std::lock_guard<std::mutex> lock(box.m);
      box.q.push_back(std::move(msg));
    }
    box.cv.notify_all();
  }

  /// Find the first message matching (src, tag) in FIFO order.
  static std::deque<Message>::iterator findMatch(std::deque<Message>& q, int src,
                                                 int tag) {
    return std::find_if(q.begin(), q.end(), [&](const Message& m) {
      return (src == kAnySource || m.src == src) && m.tag == tag;
    });
  }

  /// Blocking receive with the synthetic network model: waits for a
  /// matching message, then until its modeled delivery time has passed.
  /// Throws TimeoutError when `deadline` passes first (kNoDeadline waits
  /// forever — a dropped message then deadlocks, which is exactly what the
  /// timeout path exists to avoid).
  void recvBlocking(int me, int src, int tag, void* data, std::size_t bytes,
                    Clock::time_point deadline) {
    Mailbox& box = boxes[static_cast<std::size_t>(me)];
    std::unique_lock<std::mutex> lock(box.m);
    for (;;) {
      auto it = findMatch(box.q, src, tag);
      const auto now = Clock::now();
      if (it != box.q.end() && it->availableAt <= now) {
        if (it->data.size() != bytes) {
          throw Error("Comm::recv: message size mismatch (got " +
                      std::to_string(it->data.size()) + ", expected " +
                      std::to_string(bytes) + ")");
        }
        if (bytes > 0) std::memcpy(data, it->data.data(), bytes);
        box.q.erase(it);
        return;
      }
      if (deadline != kNoDeadline && now >= deadline) {
        throw TimeoutError("Comm::recv: rank " + std::to_string(me) +
                           " timed out waiting for message (src=" +
                           std::to_string(src) + ", tag=" + std::to_string(tag) +
                           ")");
      }
      if (it != box.q.end()) {
        // Matched but not yet delivered by the network model: wait out the
        // modeled latency (bounded by the deadline).
        auto until = it->availableAt;
        if (deadline != kNoDeadline && deadline < until) until = deadline;
        lock.unlock();
        if (cfg.busyWait) {
          while (Clock::now() < until) {
            // spin: the MPE polls the interconnect
          }
        } else {
          std::this_thread::sleep_until(until);
        }
        lock.lock();
      } else if (deadline == kNoDeadline) {
        box.cv.wait(lock);
      } else {
        box.cv.wait_until(lock, deadline);
      }
    }
  }

  /// Non-blocking probe + receive; returns false when nothing matched yet.
  bool tryRecv(int me, int src, int tag, void* data, std::size_t bytes) {
    Mailbox& box = boxes[static_cast<std::size_t>(me)];
    std::lock_guard<std::mutex> lock(box.m);
    auto it = findMatch(box.q, src, tag);
    if (it == box.q.end() || it->availableAt > Clock::now()) return false;
    if (it->data.size() != bytes) {
      throw Error("Comm::irecv: message size mismatch");
    }
    if (bytes > 0) std::memcpy(data, it->data.data(), bytes);
    box.q.erase(it);
    return true;
  }
};

// ------------------------------------------------------------------ Request

void Request::wait() {
  if (!state_ || state_->done) return;
  state_->comm->recv(state_->src, state_->tag, state_->buf, state_->bytes);
  state_->done = true;
}

void Request::wait(double timeoutSec) {
  if (!state_ || state_->done) return;
  state_->comm->recv(state_->src, state_->tag, state_->buf, state_->bytes,
                     timeoutSec);
  state_->done = true;
}

bool Request::test() {
  if (!state_ || state_->done) return true;
  World::Impl& impl = *state_->comm->world_->impl_;
  if (impl.tryRecv(state_->comm->worldRank(), state_->src, state_->tag,
                   state_->buf, state_->bytes)) {
    state_->done = true;
  }
  return state_->done;
}

// --------------------------------------------------------------------- Comm

int Comm::size() const {
  return group_.empty() ? world_->size() : static_cast<int>(group_.size());
}

void Comm::send(int dst, int tag, const void* data, std::size_t bytes) {
  SWLB_ASSERT(dst >= 0 && dst < size());
  World::Impl& impl = *world_->impl_;
  Message msg;
  // Matching happens in communicator ranks (consistent across survivors
  // within an epoch); routing and fault rules use immutable world ranks.
  msg.src = rank_;
  msg.tag = tag;
  msg.data.resize(bytes);
  if (bytes > 0) std::memcpy(msg.data.data(), data, bytes);
  msg.availableAt = impl.deliveryTime(bytes);
  ++stats_.messagesSent;
  stats_.bytesSent += bytes;
  obs::count("comm.messages_sent");
  obs::count("comm.bytes_sent", bytes);
  if (impl.cfg.faults.enabled() &&
      impl.applyMessageFaults(worldRank(), worldRankOf(dst), tag, msg))
    return;  // dropped by the fault plan
  impl.deliver(worldRankOf(dst), std::move(msg));
}

void Comm::recv(int src, int tag, void* data, std::size_t bytes) {
  // Bounded retry with exponential backoff (setRecvRetry): one delayed
  // message is absorbed here instead of escalating to the failure vote.
  double window = recvTimeout_;
  for (int attempt = 0;; ++attempt) {
    try {
      recv(src, tag, data, bytes, window);
      return;
    } catch (const TimeoutError&) {
      if (recvTimeout_ <= 0 || attempt >= recvRetries_) throw;
      obs::count("comm.recv_retries");
      window *= recvBackoff_;
    }
  }
}

void Comm::recv(int src, int tag, void* data, std::size_t bytes,
                double timeoutSec) {
  try {
    world_->impl_->recvBlocking(worldRank(), src, tag, data, bytes,
                                deadlineFrom(timeoutSec));
  } catch (const TimeoutError&) {
    obs::count("comm.timeouts");
    throw;
  }
  ++stats_.messagesReceived;
  stats_.bytesReceived += bytes;
  obs::count("comm.messages_received");
  obs::count("comm.bytes_received", bytes);
}

void Comm::sendChecksummed(int dst, int tag, const void* data,
                           std::size_t bytes) {
  std::vector<std::uint8_t> frame(bytes + sizeof(std::uint64_t));
  if (bytes > 0) std::memcpy(frame.data(), data, bytes);
  const std::uint64_t h = fnv1a_hash(data, bytes);
  std::memcpy(frame.data() + bytes, &h, sizeof(h));
  send(dst, tag, frame.data(), frame.size());
}

void Comm::recvChecksummed(int src, int tag, void* data, std::size_t bytes) {
  std::vector<std::uint8_t> frame(bytes + sizeof(std::uint64_t));
  recv(src, tag, frame.data(), frame.size());
  std::uint64_t h = 0;
  std::memcpy(&h, frame.data() + bytes, sizeof(h));
  if (fnv1a_hash(frame.data(), bytes) != h) {
    obs::count("comm.corruption_detected");
    throw CorruptionError("Comm::recvChecksummed: checksum mismatch on rank " +
                          std::to_string(rank_) + " (src=" + std::to_string(src) +
                          ", tag=" + std::to_string(tag) +
                          "): payload corrupted in transit");
  }
  if (bytes > 0) std::memcpy(data, frame.data(), bytes);
}

void Comm::faultTick(std::uint64_t step) {
  World::Impl& impl = *world_->impl_;
  const FaultPlan& fp = impl.cfg.faults;
  const int wr = worldRank();  // kill rules name immutable world ranks
  if (fp.killRank == wr && step == fp.killAtStep) {
    std::lock_guard<std::mutex> lock(impl.faultM);
    if (!impl.killFired) {  // one-shot: the respawned rank survives
      impl.killFired = true;
      ++impl.faultStats.kills;
      obs::count("comm.faults.kills");
      throw RankKilledError(wr, step, fp.killPermanent);
    }
  }
  for (std::size_t i = 0; i < fp.rankKills.size(); ++i) {
    const FaultPlan::RankKill& k = fp.rankKills[i];
    if (k.rank != wr || step != k.step) continue;
    std::lock_guard<std::mutex> lock(impl.faultM);
    if (impl.rankKillsFired[i]) continue;
    impl.rankKillsFired[i] = 1;
    ++impl.faultStats.kills;
    obs::count("comm.faults.kills");
    throw RankKilledError(wr, step, k.permanent);
  }
}

std::size_t Comm::drainMailbox() {
  // Discard stale traffic only: user messages (tag >= 0 — an aborted
  // step's halo strips) and collective messages whose sequence lies
  // strictly behind this rank's counter (leftovers of an abandoned
  // collective).  Current/future collective messages must survive — a
  // peer that already passed the recovery vote may be inside the next
  // collective, and eating its traffic would deadlock the world.
  Mailbox& box = world_->impl_->boxes[static_cast<std::size_t>(worldRank())];
  std::lock_guard<std::mutex> lock(box.m);
  const std::uint64_t myMod = collSeq_ % colltag::kWindow;
  const std::size_t before = box.q.size();
  std::erase_if(box.q, [&](const Message& m) {
    if (m.tag >= 0) return true;
    if (m.tag == kHealthTag) return true;  // finished probe's leftovers
    if (!colltag::isCollective(m.tag)) return false;
    const std::uint64_t behind =
        (myMod - colltag::sequenceOf(m.tag) + colltag::kWindow) %
        colltag::kWindow;
    return behind != 0 && behind < colltag::kWindow / 2;
  });
  return before - box.q.size();
}

int Comm::livenessVote(bool alive) {
  coll::Collectives cs(*this);
  return static_cast<int>(
      cs.allreduce_value<std::int64_t>(alive ? 1 : 0, coll::Op::Sum));
}

std::vector<std::uint8_t> Comm::probeLiveness(const HealthConfig& hc) {
  // Health frames are fixed-size per world (epoch | phase | sender world
  // rank | heard-mask over *world* size), so frames can never size-mismatch
  // across shrinks, and the epoch filter discards leftovers of previous
  // probes.  Probes are collectively ordered among survivors (each one is
  // triggered by the same aborted vote), so probeEpoch_ agrees.
  obs::TraceScope probeScope("comm.health.probe");
  World::Impl& impl = *world_->impl_;
  const int n = size();
  const int wn = world_->size();
  const std::size_t maskBytes = static_cast<std::size_t>(wn > 0 ? wn : 0);
  const std::uint64_t epoch = ++probeEpoch_;
  ++health_.probes;
  obs::count("comm.health.probes");

  std::vector<std::uint8_t> heard(maskBytes, 0);
  heard[static_cast<std::size_t>(worldRank())] = 1;
  std::vector<std::uint8_t> confirmed(static_cast<std::size_t>(n), 0);
  confirmed[static_cast<std::size_t>(rank_)] = 1;

  const std::size_t maskOff = sizeof(std::uint64_t) + 1 + sizeof(std::int32_t);
  const std::size_t frameBytes = maskOff + maskBytes;
  auto makeFrame = [&](std::uint8_t phase) {
    std::vector<std::uint8_t> f(frameBytes);
    std::memcpy(f.data(), &epoch, sizeof(epoch));
    f[sizeof(epoch)] = phase;
    const std::int32_t me = worldRank();
    std::memcpy(f.data() + sizeof(epoch) + 1, &me, sizeof(me));
    std::memcpy(f.data() + maskOff, heard.data(), maskBytes);
    return f;
  };
  auto allHeard = [&] {
    for (int r = 0; r < n; ++r)
      if (!heard[static_cast<std::size_t>(worldRankOf(r))]) return false;
    return true;
  };
  // Consume one health frame before `deadline`; false on timeout.  Frames
  // from other epochs are swallowed silently; gossip (mask union) spreads
  // indirect evidence so one relayed frame can vouch for several peers.
  std::vector<std::uint8_t> buf(frameBytes);
  auto consumeFrame = [&](Clock::time_point deadline) {
    try {
      impl.recvBlocking(worldRank(), kAnySource, kHealthTag, buf.data(),
                        frameBytes, deadline);
    } catch (const TimeoutError&) {
      return false;
    }
    ++stats_.messagesReceived;
    stats_.bytesReceived += frameBytes;
    std::uint64_t e = 0;
    std::memcpy(&e, buf.data(), sizeof(e));
    if (e != epoch) return true;
    std::int32_t senderWorld = -1;
    std::memcpy(&senderWorld, buf.data() + sizeof(e) + 1, sizeof(senderWorld));
    for (int w = 0; w < wn; ++w)
      heard[static_cast<std::size_t>(w)] |= buf[maskOff + w];
    if (senderWorld >= 0 && senderWorld < wn) {
      heard[static_cast<std::size_t>(senderWorld)] = 1;
      if (buf[sizeof(e)] == 1) {  // confirmation frame
        for (int r = 0; r < n; ++r)
          if (worldRankOf(r) == senderWorld) {
            confirmed[static_cast<std::size_t>(r)] = 1;
            break;
          }
      }
    }
    return true;
  };

  // Detection ladder: ping unheard peers, widen the window each round.
  // `ladder` is the full detection time a slow peer may legally take —
  // the confirmation round below must out-wait it even when this rank
  // heard everyone in round 0.
  double window = hc.timeout;
  double ladder = 0;
  for (int i = 0; i <= hc.retries; ++i) ladder += hc.timeout * std::pow(hc.backoff, i);
  for (int round = 0; round <= hc.retries; ++round) {
    if (allHeard()) break;
    if (round > 0) {
      ++health_.retries;
      obs::count("comm.health.retries");
    }
    const std::vector<std::uint8_t> ping = makeFrame(0);
    for (int r = 0; r < n; ++r)
      if (r != rank_ && !heard[static_cast<std::size_t>(worldRankOf(r))])
        send(r, kHealthTag, ping.data(), ping.size());
    const Clock::time_point deadline = deadlineFrom(window);
    while (!allHeard() && consumeFrame(deadline)) {
    }
    window *= hc.backoff;
  }
  for (int r = 0; r < n; ++r)
    if (!heard[static_cast<std::size_t>(worldRankOf(r))]) {
      ++health_.suspected;
      obs::count("comm.health.suspected");
    }

  // Confirmation round among believed-alive peers: final masks converge by
  // gossip union, and waiting for every confirmation doubles as a barrier
  // among survivors — nobody races ahead into post-probe traffic while a
  // peer is still probing.  The window covers a peer that entered its
  // ladder late and walked it fully.
  {
    const std::vector<std::uint8_t> confirm = makeFrame(1);
    for (int r = 0; r < n; ++r)
      if (r != rank_ && heard[static_cast<std::size_t>(worldRankOf(r))])
        send(r, kHealthTag, confirm.data(), confirm.size());
    auto unconfirmed = [&] {
      for (int r = 0; r < n; ++r)
        if (heard[static_cast<std::size_t>(worldRankOf(r))] &&
            !confirmed[static_cast<std::size_t>(r)])
          return true;
      return false;
    };
    const Clock::time_point deadline = deadlineFrom(ladder + hc.timeout);
    while (unconfirmed() && consumeFrame(deadline)) {
    }
    for (int r = 0; r < n; ++r) {
      const std::size_t w = static_cast<std::size_t>(worldRankOf(r));
      if (heard[w] && !confirmed[static_cast<std::size_t>(r)]) {
        heard[w] = 0;  // vouched for by gossip but never confirmed itself
        ++health_.suspected;
        obs::count("comm.health.suspected");
      }
    }
  }

  for (int r = 0; r < n; ++r)
    if (!heard[static_cast<std::size_t>(worldRankOf(r))]) {
      ++health_.declaredDead;
      obs::count("comm.health.declared_dead");
    }
  return heard;
}

int Comm::shrink(const std::vector<std::uint8_t>& aliveWorld) {
  const int n = size();
  std::vector<int> group;
  group.reserve(static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) {
    const int w = worldRankOf(r);
    if (w < static_cast<int>(aliveWorld.size()) &&
        aliveWorld[static_cast<std::size_t>(w)])
      group.push_back(w);
  }
  if (group.empty())
    throw Error("Comm::shrink: alive mask leaves no survivors");
  int newRank = -1;
  for (std::size_t i = 0; i < group.size(); ++i)
    if (group[i] == worldRank()) newRank = static_cast<int>(i);
  if (newRank < 0)
    throw Error("Comm::shrink: world rank " + std::to_string(worldRank()) +
                " is itself declared dead");
  if (static_cast<int>(group.size()) == n) return rank_;  // nothing lost
  // Stale traffic of the failed epoch must not leak into the shrunken
  // world; the collective sequence is *kept* so a survivor already inside
  // a post-shrink collective stays matchable (its frames carry the current
  // sequence, which the selective drain preserves).
  drainMailbox();
  group_ = std::move(group);
  rank_ = newRank;
  obs::count("comm.shrink.count");
  obs::gaugeSet("comm.size", size());
  return rank_;
}

Request Comm::isend(int dst, int tag, const void* data, std::size_t bytes) {
  // Eager buffered send: the payload is copied, so the operation is
  // already complete from the sender's point of view.
  send(dst, tag, data, bytes);
  Request r;
  r.state_ = std::make_shared<Request::State>();
  r.state_->done = true;
  return r;
}

Request Comm::irecv(int src, int tag, void* data, std::size_t bytes) {
  Request r;
  r.state_ = std::make_shared<Request::State>();
  r.state_->comm = this;
  r.state_->src = src;
  r.state_->tag = tag;
  r.state_->buf = data;
  r.state_->bytes = bytes;
  return r;
}

void Comm::barrier() { coll::Collectives(*this).barrier(); }

double Comm::allreduce(double value, Op op) {
  coll::Op cop = coll::Op::Sum;
  switch (op) {
    case Op::Sum: cop = coll::Op::Sum; break;
    case Op::Min: cop = coll::Op::Min; break;
    case Op::Max: cop = coll::Op::Max; break;
  }
  coll::Collectives cs(*this);
  return cs.allreduce_value(value, cop);
}

void Comm::gather(int root, const void* data, std::size_t bytes, void* out) {
  if (rank_ == root) SWLB_ASSERT(out != nullptr);
  coll::Collectives cs(*this);
  cs.gather<std::uint8_t>(
      root, {static_cast<const std::uint8_t*>(data), bytes},
      {static_cast<std::uint8_t*>(out),
       rank_ == root ? bytes * static_cast<std::size_t>(size()) : 0});
}

void Comm::broadcast(int root, void* data, std::size_t bytes) {
  coll::Collectives cs(*this);
  cs.broadcast<std::uint8_t>(root, {static_cast<std::uint8_t*>(data), bytes});
}

// -------------------------------------------------------------------- World

World::World(int size, const WorldConfig& cfg) : size_(size) {
  if (size <= 0) throw Error("World: size must be positive");
  impl_ = std::make_unique<Impl>(size, cfg);
}

World::~World() = default;

void World::run(const std::function<void(Comm&)>& fn) {
  // Fresh Comms reset the collective sequence counters to zero, so any
  // leftover mailbox traffic from a previous (faulted) run would alias the
  // new run's collective tags.  No rank is alive between runs, so pending
  // messages are garbage by definition: clear them.
  for (Mailbox& box : impl_->boxes) {
    std::lock_guard<std::mutex> lock(box.m);
    box.q.clear();
  }
  {
    std::lock_guard<std::mutex> lock(impl_->deadM);
    impl_->deadRanks.clear();
  }
  std::vector<std::thread> threads;
  std::vector<Comm> comms;
  comms.reserve(static_cast<std::size_t>(size_));
  for (int r = 0; r < size_; ++r) comms.push_back(Comm(this, r));

  std::mutex errM;
  std::exception_ptr firstError;

  threads.reserve(static_cast<std::size_t>(size_));
  for (int r = 0; r < size_; ++r) {
    threads.emplace_back([&, r] {
      // Observability binding covers the rank's whole lifetime so phase
      // scopes and Comm counters attribute to the right rank timeline.
      obs::ScopedBind obsBind(impl_->cfg.tracer, impl_->cfg.metrics, r);
      try {
        fn(comms[static_cast<std::size_t>(r)]);
      } catch (const RankKilledError& e) {
        if (e.permanent()) {
          // A permanently killed rank exiting its thread is part of the
          // scenario (survivors shrink around it), not a run failure.
          std::lock_guard<std::mutex> lock(impl_->deadM);
          impl_->deadRanks.push_back(r);
        } else {
          std::lock_guard<std::mutex> lock(errM);
          if (!firstError) firstError = std::current_exception();
        }
      } catch (...) {
        std::lock_guard<std::mutex> lock(errM);
        if (!firstError) firstError = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();

  lastStats_.clear();
  for (const auto& c : comms) lastStats_.push_back(c.stats());
  if (firstError) std::rethrow_exception(firstError);
}

FaultStats World::faultStats() const {
  std::lock_guard<std::mutex> lock(impl_->faultM);
  return impl_->faultStats;
}

std::vector<int> World::deadRanks() const {
  std::lock_guard<std::mutex> lock(impl_->deadM);
  return impl_->deadRanks;
}

CommStats World::totalStats() const {
  CommStats total;
  for (const auto& s : lastStats_) {
    total.messagesSent += s.messagesSent;
    total.bytesSent += s.bytesSent;
    total.messagesReceived += s.messagesReceived;
    total.bytesReceived += s.bytesReceived;
  }
  return total;
}

}  // namespace swlb::runtime
