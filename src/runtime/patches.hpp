// Patch-based decomposition with measured dynamic load balancing
// (DESIGN.md §13; Feichtinger et al., arXiv:1007.1388).
//
// The paper's static uniform 2-D split (§IV-C1) assigns every rank the
// same cell *volume*, so any non-uniform workload — terrain masks, hulls,
// sponge zones — idles the ranks that drew the solid-heavy blocks.  The
// patch model splits the global box into many small sub-boxes ("patches",
// several per rank), orders them along a Morton space-filling curve, and
// assigns *contiguous curve segments* to ranks by weighted recursive
// bisection.  Weights start as fluid-cell counts from the mask and are
// replaced online by measured per-patch step-time EMAs, so `rebalanceEvery`
// can migrate the smallest set of patches that brings the measured
// imbalance back under a threshold.  Migration ships the current-parity
// population buffer verbatim (checkpoint-style raw payload), so a
// migrated run is bit-identical to an unmigrated one.
//
// PatchSolver is the distributed runtime's patch-aware mode: it reuses
// Decomposition for the patch grid, HaloExchange's planned links for the
// per-patch ghost strips (intra-rank faces become local copies, inter-rank
// faces become tagged messages), and the same fused pull kernel — which
// is why every patch layout is bit-identical to the monolithic solver.
#pragma once

#include <chrono>
#include <cstring>
#include <map>
#include <optional>

#include "coll/coll.hpp"
#include "core/backends.hpp"
#include "core/kernels.hpp"
#include "core/solver.hpp"
#include "obs/context.hpp"
#include "runtime/halo.hpp"

namespace swlb::runtime {

/// Geometry + assignment policy of the patch decomposition.  Pure
/// functions of (global box, patch grid, weights) — no communication —
/// so every rank computes identical layouts and rebalance plans from
/// identical inputs (the solver feeds it deterministically-allreduced
/// weight vectors).
class PatchLayout {
 public:
  /// `patchGrid.z` must be 1 (full z per patch, the paper's xy scheme).
  PatchLayout(const Int3& global, const Int3& patchGrid);

  int patchCount() const { return decomp_.rankCount(); }
  const Decomposition& decomposition() const { return decomp_; }
  Box3 boxOf(int patch) const { return decomp_.blockOf(patch); }

  /// Patch ids ordered along the Morton curve over patch-grid (x, y)
  /// coordinates — deterministic, a permutation of 0..patchCount-1.
  const std::vector<int>& sfcOrder() const { return order_; }

  /// Per-patch streaming-cell counts ("fluid weights"): cells whose
  /// material class streams (fluid, porous, Zou/He...) cost a full
  /// gather+collide; solid/wall cells take the cheap boundary path.
  std::vector<double> fluidWeights(const MaskField& globalMask,
                                   const MaterialTable& mats) const;

  /// Assign contiguous curve segments to `nranks` by weighted recursive
  /// bisection.  Every rank receives at least one patch.  Returns the
  /// owner rank per patch id.
  std::vector<int> assignBisect(const std::vector<double>& weights,
                                int nranks) const;

  /// Load-imbalance factor of an assignment: max rank load / mean rank
  /// load (1.0 = perfectly balanced).
  static double rankImbalance(const std::vector<int>& owners,
                              const std::vector<double>& weights, int nranks);

  struct Move {
    int patch = -1;
    int from = -1;
    int to = -1;
  };

  /// Greedy move plan bringing `rankImbalance` under `threshold`: each
  /// round moves the one patch from the most-loaded to the least-loaded
  /// rank that most lowers their pairwise peak — an approximately minimal
  /// migration set.  Never empties a rank.  Deterministic for identical
  /// inputs; returns an empty plan when already under threshold or no
  /// move improves.
  std::vector<Move> planRebalance(const std::vector<int>& owners,
                                  const std::vector<double>& weights,
                                  int nranks, double threshold) const;

 private:
  Decomposition decomp_;
  std::vector<int> order_;
};

/// Patch-aware distributed solver (fused pull kernel, A-B parity).  Each
/// rank owns the patches the layout assigns it; ghost strips between
/// patches on the same rank are local copies, strips crossing ranks ride
/// tagged messages with HaloExchange's own link plan and pack order.
template <class D, class S = Real>
class PatchSolver {
 public:
  using Field = PopulationFieldT<S>;

  enum class Assignment {
    FluidWeighted,  ///< bisect by mask fluid-cell counts (default)
    UniformCount,   ///< equal patch counts per rank (static-split proxy)
  };

  struct Config {
    Int3 global{0, 0, 0};
    CollisionConfig collision;
    Periodicity periodic;
    /// Patch grid; {0,0,0} selects Decomposition::choose of
    /// patchesPerRank * comm.size() patches.
    Int3 patchGrid{0, 0, 0};
    int patchesPerRank = 2;
    Assignment assignment = Assignment::FluidWeighted;
    /// Every `rebalanceEvery` steps, allreduce the measured per-patch
    /// step-time EMAs and migrate patches if the measured imbalance
    /// exceeds `rebalanceThreshold`.  0 disables.
    std::uint64_t rebalanceEvery = 0;
    double rebalanceThreshold = 1.10;
    /// EMA smoothing of the per-patch step-time measurements.
    double emaAlpha = 0.3;
    /// Default stream/collide backend for every patch (registry name,
    /// core/backend.hpp).  In-place backends are rejected: patch ghost
    /// exchange needs the two-lattice A-B contract.
    std::string backend = "fused";
    /// Per-patch overrides (patch id -> backend name), the tuner's
    /// heterogeneous mixed-backend plan.  Every rank must pass the same
    /// map (validated on all ranks; migration re-creates the patch's
    /// backend on the receiver from this same table).
    std::map<int, std::string> patchBackends;
    /// Host threads for caps.usesHostThreads backends (<= 0 = one per
    /// hardware core).
    int hostThreads = 1;
  };

  PatchSolver(Comm& comm, const Config& cfg)
      : comm_(comm),
        cfg_(cfg),
        layout_(cfg.global,
                cfg.patchGrid.x > 0
                    ? cfg.patchGrid
                    : Decomposition::choose(
                          std::max(1, cfg.patchesPerRank) * comm.size(),
                          cfg.global)),
        globalMask_(Grid(cfg.global.x, cfg.global.y, cfg.global.z),
                    MaterialTable::kFluid) {
    if (layout_.patchCount() < comm_.size())
      throw Error("PatchSolver: fewer patches than ranks");
  }

  Comm& comm() { return comm_; }
  const PatchLayout& layout() const { return layout_; }
  MaterialTable& materials() { return mats_; }
  CollisionConfig& collision() { return cfg_.collision; }
  /// The replicated global mask (paint before finalizeMask; every rank
  /// must paint identically — same contract as a collective).
  MaskField& globalMask() { return globalMask_; }

  /// Paint material `id` over a box in global coordinates.
  void paintGlobal(const Box3& globalBox, std::uint8_t id) {
    const Box3 b = intersect(
        globalBox, Box3{{0, 0, 0}, {cfg_.global.x, cfg_.global.y,
                                    cfg_.global.z}});
    for (int z = b.lo.z; z < b.hi.z; ++z)
      for (int y = b.lo.y; y < b.hi.y; ++y)
        for (int x = b.lo.x; x < b.hi.x; ++x) globalMask_(x, y, z) = id;
  }

  /// Finish setup: compute the initial assignment (fluid-weighted
  /// bisection over the Morton order unless UniformCount) and build the
  /// owned patches with their ghost masks and link plans.  Collective
  /// only in the trivial sense — every rank derives the same assignment
  /// from the replicated mask, no messages.
  void finalizeMask() {
    // Validate the backend plan on *every* rank (owners and not), so a
    // bad name or capability conflict fails identically everywhere
    // instead of desynchronizing the collectives below.
    validateBackendName(cfg_.backend);
    for (const auto& [id, name] : cfg_.patchBackends) {
      if (id < 0 || id >= layout_.patchCount())
        throw Error("PatchSolver: patchBackends names patch " +
                    std::to_string(id) + " but the layout has " +
                    std::to_string(layout_.patchCount()) + " patches");
      validateBackendName(name);
    }
    std::vector<double> w;
    if (cfg_.assignment == Assignment::FluidWeighted) {
      w = layout_.fluidWeights(globalMask_, mats_);
      double total = 0;
      for (double v : w) total += v;
      if (total <= 0) w.assign(w.size(), 1.0);
    } else {
      w.assign(static_cast<std::size_t>(layout_.patchCount()), 1.0);
    }
    owners_ = layout_.assignBisect(w, comm_.size());
    for (int p = 0; p < layout_.patchCount(); ++p)
      if (owners_[static_cast<std::size_t>(p)] == comm_.rank())
        patches_.emplace(p, buildPatch(p));
    maskFinal_ = true;
    obs::gaugeSet("patch.owned", static_cast<double>(patches_.size()));
    obs::gaugeSet("patch.total", static_cast<double>(layout_.patchCount()));
  }

  /// Equilibrium initialization from a *global*-coordinate field function
  /// (same contract as DistributedSolver::initField).
  void initField(const std::function<void(int, int, int, Real&, Vec3&)>& fn) {
    if (!maskFinal_) finalizeMask();
    Real feq[D::Q];
    for (auto& [id, p] : patches_) {
      for (int z = -1; z <= p.grid.nz; ++z)
        for (int y = -1; y <= p.grid.ny; ++y)
          for (int x = -1; x <= p.grid.nx; ++x) {
            Real rho = 1;
            Vec3 u{0, 0, 0};
            fn(x + p.box.lo.x, y + p.box.lo.y, z + p.box.lo.z, rho, u);
            equilibria<D>(rho, u, feq);
            for (int i = 0; i < D::Q; ++i) {
              p.f[0](i, x, y, z) = feq[i];
              p.f[1](i, x, y, z) = feq[i];
            }
          }
    }
  }

  void initUniform(Real rho, const Vec3& u) {
    initField([&](int, int, int, Real& r, Vec3& v) {
      r = rho;
      v = u;
    });
  }

  void step() {
    obs::TraceScope stepScope("step");
    SWLB_ASSERT(maskFinal_);
    {
      // z is never decomposed: wrap it locally per patch before the
      // exchange so ghost strips carry valid z-halo rows (halo.hpp
      // contract).
      obs::TraceScope zScope("z_wrap");
      for (auto& [id, p] : patches_)
        apply_periodic(p.f[parity_],
                       Periodicity{false, false, cfg_.periodic.z});
    }
    {
      obs::TraceScope exScope("patch.exchange");
      exchangeGhosts();
    }
    {
      obs::TraceScope computeScope("patch.compute");
      for (auto& [id, p] : patches_) {
        const auto t0 = std::chrono::steady_clock::now();
        BackendStepArgs<D, S> args;
        args.src = &p.f[parity_];
        args.dst = &p.f[1 - parity_];
        args.mask = &p.mask;
        args.mats = &mats_;
        args.cfg = &cfg_.collision;
        args.range = p.grid.interior();
        args.periodic = Periodicity{false, false, cfg_.periodic.z};
        args.threads = cfg_.hostThreads;
        p.backend->step(args);
        const double dt =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          t0)
                .count();
        p.ema = p.emaInit ? cfg_.emaAlpha * dt + (1 - cfg_.emaAlpha) * p.ema
                          : dt;
        p.emaInit = true;
        computeSeconds_ += dt;
        obs::observe("patch.step_seconds", dt);
      }
    }
    parity_ = 1 - parity_;
    ++steps_;
    if (cfg_.rebalanceEvery > 0 && steps_ % cfg_.rebalanceEvery == 0)
      rebalanceMeasured();
  }

  void run(std::uint64_t n) {
    for (std::uint64_t s = 0; s < n; ++s) step();
  }

  /// Run n steps; returns global MLUPS (identical on every rank).
  double runMeasured(std::uint64_t n) {
    comm_.barrier();
    const auto t0 = std::chrono::steady_clock::now();
    run(n);
    comm_.barrier();
    const auto t1 = std::chrono::steady_clock::now();
    const double sec = comm_.allreduce(
        std::chrono::duration<double>(t1 - t0).count(), Comm::Op::Max);
    const double cells = static_cast<double>(cfg_.global.x) * cfg_.global.y *
                         cfg_.global.z;
    return cells * static_cast<double>(n) / sec / 1e6;
  }

  std::uint64_t stepsDone() const { return steps_; }
  int parity() const { return parity_; }
  const std::vector<int>& owners() const { return owners_; }
  /// Backend name patch `id` runs under (the per-patch override, else the
  /// default) — identical on every rank, owned or not.
  const std::string& patchBackendName(int id) const {
    const auto it = cfg_.patchBackends.find(id);
    return it != cfg_.patchBackends.end() ? it->second : cfg_.backend;
  }
  /// Patch ids owned by this rank, ascending.
  std::vector<int> ownedPatches() const {
    std::vector<int> ids;
    ids.reserve(patches_.size());
    for (const auto& [id, p] : patches_) ids.push_back(id);
    return ids;
  }
  /// This rank's accumulated kernel seconds (the balance target).
  double computeSeconds() const { return computeSeconds_; }

  /// Measured per-patch step-time EMAs, allreduced so every rank sees the
  /// full vector (collective, deterministic reduction order).
  std::vector<double> measuredWeights() {
    std::vector<double> w(static_cast<std::size_t>(layout_.patchCount()),
                          0.0);
    for (const auto& [id, p] : patches_)
      w[static_cast<std::size_t>(id)] = p.emaInit ? p.ema : 0.0;
    coll::Collectives cs(comm_);
    cs.allreduce(std::span<double>(w.data(), w.size()), coll::Op::Sum);
    return w;
  }

  /// Measured rank imbalance (max/mean of per-rank EMA sums).  Collective.
  double measuredImbalance() {
    return PatchLayout::rankImbalance(owners_, measuredWeights(),
                                      comm_.size());
  }

  /// Rebalance now against an explicit weight vector (every rank must
  /// pass identical weights — e.g. from measuredWeights()).  Returns the
  /// number of patches migrated.  Collective.
  int rebalanceNow(const std::vector<double>& weights, double threshold) {
    const auto moves =
        layout_.planRebalance(owners_, weights, comm_.size(), threshold);
    if (!moves.empty()) migrate(moves);
    return static_cast<int>(moves.size());
  }

  /// Gather the full population field on `root` (interior cells, decoded
  /// to Real).  Collective; test/IO helper.
  PopulationField gatherPopulations(int root) {
    std::vector<Real> local(localCellCount() * D::Q);
    std::size_t k = 0;
    for (const auto& [id, p] : patches_) {
      const Field& f = p.f[parity_];
      for (int q = 0; q < D::Q; ++q)
        for (int z = 0; z < p.grid.nz; ++z)
          for (int y = 0; y < p.grid.ny; ++y)
            for (int x = 0; x < p.grid.nx; ++x) local[k++] = f(q, x, y, z);
    }
    std::vector<std::size_t> counts(static_cast<std::size_t>(comm_.size()),
                                    0);
    std::size_t totalCount = 0;
    for (int p = 0; p < layout_.patchCount(); ++p) {
      const std::size_t c =
          static_cast<std::size_t>(layout_.boxOf(p).volume()) * D::Q;
      counts[static_cast<std::size_t>(owners_[static_cast<std::size_t>(p)])] +=
          c;
      totalCount += c;
    }
    coll::Collectives cs(comm_);
    if (comm_.rank() != root) {
      cs.gatherv<Real>(root, local, counts, {});
      return PopulationField();
    }
    std::vector<Real> all(totalCount);
    cs.gatherv<Real>(root, local, counts, all);
    Grid g(cfg_.global.x, cfg_.global.y, cfg_.global.z);
    PopulationField out(g, D::Q);
    std::size_t j = 0;
    for (int r = 0; r < comm_.size(); ++r)
      for (int p = 0; p < layout_.patchCount(); ++p) {
        if (owners_[static_cast<std::size_t>(p)] != r) continue;
        const Box3 b = layout_.boxOf(p);
        for (int q = 0; q < D::Q; ++q)
          for (int z = b.lo.z; z < b.hi.z; ++z)
            for (int y = b.lo.y; y < b.hi.y; ++y)
              for (int x = b.lo.x; x < b.hi.x; ++x) out(q, x, y, z) = all[j++];
      }
    return out;
  }

 private:
  struct PatchState {
    int id = -1;
    Box3 box;  // global coordinates
    Grid grid;
    Field f[2];
    MaskField mask;
    std::vector<HaloExchange::Link> links;
    std::vector<std::vector<std::uint8_t>> sendBufs, recvBufs;
    std::vector<Request> pending;
    /// This patch's kernel backend instance (rebuilt from the replicated
    /// Config plan on migration — backend state never travels).
    std::unique_ptr<KernelBackend<D, S>> backend;
    double ema = 0;  // measured step-seconds EMA (travels on migration)
    bool emaInit = false;

    PatchState(int id_, const Box3& box_, const Grid& grid_)
        : id(id_), box(box_), grid(grid_), mask(grid_, MaterialTable::kFluid) {}
  };

  // Ghost-message tags: disjoint from HaloExchange's forward (0..8) and
  // reverse (16..24) spaces and from any example driver's ad-hoc tags.
  // Nine directions per destination patch.
  static constexpr int kGhostTagBase = 1 << 20;
  static constexpr int kMigrateTagBase = 1 << 19;
  static int ghostTag(int destPatch, int dirTag) {
    return kGhostTagBase + destPatch * 9 + dirTag;
  }

  /// Mask oracle in global coordinates: periodic axes wrap, anything
  /// outside the domain is solid — exactly the state DistributedSolver's
  /// fill_halo_mask + exchangeMask produces in every block's ghost layer.
  std::uint8_t maskAt(int gx, int gy, int gz) const {
    auto wrap = [](int v, int n, bool per) -> int {
      if (v >= 0 && v < n) return v;
      if (!per) return -1;
      return ((v % n) + n) % n;
    };
    const int x = wrap(gx, cfg_.global.x, cfg_.periodic.x);
    const int y = wrap(gy, cfg_.global.y, cfg_.periodic.y);
    const int z = wrap(gz, cfg_.global.z, cfg_.periodic.z);
    if (x < 0 || y < 0 || z < 0) return MaterialTable::kSolid;
    return globalMask_(x, y, z);
  }

  PatchState buildPatch(int id) const {
    const Box3 box = layout_.boxOf(id);
    const Grid grid(box.hi.x - box.lo.x, box.hi.y - box.lo.y,
                    box.hi.z - box.lo.z);
    PatchState p(id, box, grid);
    for (int z = -1; z <= grid.nz; ++z)
      for (int y = -1; y <= grid.ny; ++y)
        for (int x = -1; x <= grid.nx; ++x)
          p.mask(x, y, z) =
              maskAt(x + box.lo.x, y + box.lo.y, z + box.lo.z);
    p.f[0] = Field(grid, D::Q);
    p.f[1] = Field(grid, D::Q);
    p.f[0].setShift(D::w);
    p.f[1].setShift(D::w);
    // Reuse HaloExchange's plan over the patch-grid decomposition: patch
    // ids play the rank role, boxes/tags come out in the forward space.
    HaloExchange plan(layout_.decomposition(), id, cfg_.periodic, grid);
    p.links = plan.links();
    p.sendBufs.resize(p.links.size());
    p.recvBufs.resize(p.links.size());
    p.pending.resize(p.links.size());
    p.backend = make_backend<D, S>(patchBackendName(id));
    p.backend->init(grid, p.mask, mats_);
    return p;
  }

  /// Reject names the patch runtime cannot drive — explicitly, with the
  /// capability that failed, never by substituting another backend.
  void validateBackendName(const std::string& name) const {
    const BackendInfo* info = find_backend_info(name);
    if (!info || !BackendRegistry<D, S>::instance().has(name))
      (void)make_backend<D, S>(name);  // throws the registered-list error
    if (info->caps.inPlaceStreaming)
      throw Error("PatchSolver: backend '" + name +
                  "' streams in place (capability 'inPlaceStreaming'); "
                  "patch ghost exchange needs the two-lattice A-B contract");
    if (!info->caps.distributed)
      throw Error("PatchSolver: backend '" + name +
                  "' is a single-rank ablation baseline (capability "
                  "'distributed' is off)");
  }

  void exchangeGhosts() {
    const int q = D::Q;
    const int me = comm_.rank();
    // Post all inter-rank receives first (eager sends may land any time).
    for (auto& [id, p] : patches_) {
      for (std::size_t li = 0; li < p.links.size(); ++li) {
        const auto& l = p.links[li];
        const int peerRank = owners_[static_cast<std::size_t>(l.peer)];
        if (peerRank == me) continue;
        auto& buf = p.recvBufs[li];
        buf.resize(static_cast<std::size_t>(l.recvBox.volume()) * q *
                   sizeof(S));
        p.pending[li] =
            comm_.irecv(peerRank, ghostTag(id, l.recvTag), buf.data(),
                        buf.size());
      }
    }
    // Pack + send inter-rank strips.  The sender's backend serializes in
    // the HaloExchange pack order (q, z, y, x) — the packHalo/unpackHalo
    // contract both ends agree on even when the two patches run
    // different backends.
    for (auto& [id, p] : patches_) {
      const Field& src = p.f[parity_];
      for (std::size_t li = 0; li < p.links.size(); ++li) {
        const auto& l = p.links[li];
        const int peerRank = owners_[static_cast<std::size_t>(l.peer)];
        if (peerRank == me) continue;
        auto& buf = p.sendBufs[li];
        buf.resize(static_cast<std::size_t>(l.sendBox.volume()) * q *
                   sizeof(S));
        p.backend->packHalo(src, l.sendBox, reinterpret_cast<S*>(buf.data()));
        comm_.isend(peerRank, ghostTag(l.peer, l.sendTag), buf.data(),
                    buf.size());
      }
    }
    // Intra-rank faces: pack the owned peer's send strip (mirrored link,
    // identical extents) through its backend and unpack into our halo
    // through ours.  Reads touch interior columns only, writes touch halo
    // cells only, so order between links cannot interfere.
    for (auto& [id, p] : patches_) {
      Field& dst = p.f[parity_];
      for (const auto& l : p.links) {
        if (owners_[static_cast<std::size_t>(l.peer)] != me) continue;
        const PatchState& peer = patches_.at(l.peer);
        const HaloExchange::Link* ml = nullptr;
        for (const auto& cand : peer.links)
          if (cand.dx == -l.dx && cand.dy == -l.dy) {
            ml = &cand;
            break;
          }
        SWLB_ASSERT(ml && ml->peer == id);
        localStrip_.resize(static_cast<std::size_t>(ml->sendBox.volume()) *
                           static_cast<std::size_t>(q));
        peer.backend->packHalo(peer.f[parity_], ml->sendBox,
                               localStrip_.data());
        p.backend->unpackHalo(dst, l.recvBox, localStrip_.data());
      }
    }
    // Wait for and unpack the inter-rank strips.
    for (auto& [id, p] : patches_) {
      Field& dst = p.f[parity_];
      for (std::size_t li = 0; li < p.links.size(); ++li) {
        const auto& l = p.links[li];
        if (owners_[static_cast<std::size_t>(l.peer)] == me) continue;
        p.pending[li].wait();
        p.backend->unpackHalo(
            dst, l.recvBox,
            reinterpret_cast<const S*>(p.recvBufs[li].data()));
      }
    }
  }

  /// Measured-trigger rebalance (runs inside step() on every rank at the
  /// same step count, so the collectives line up).
  void rebalanceMeasured() {
    obs::TraceScope scope("patch.rebalance");
    const std::vector<double> w = measuredWeights();
    const double imb =
        PatchLayout::rankImbalance(owners_, w, comm_.size());
    obs::gaugeSet("patch.imbalance", imb);
    if (imb <= cfg_.rebalanceThreshold) return;
    if (rebalanceNow(w, cfg_.rebalanceThreshold) > 0)
      obs::count("patch.rebalances");
  }

  /// Apply a move plan: senders ship the current-parity buffer verbatim
  /// (raw storage elements — the same bytes a checkpoint would carry)
  /// plus the patch's measured EMA; receivers rebuild the patch locally
  /// and drop the payload in.  Every rank applies the same plan, so the
  /// owner table stays replicated.
  void migrate(const std::vector<PatchLayout::Move>& moves) {
    const int me = comm_.rank();
    for (const auto& m : moves) {
      if (m.from == me) {
        PatchState& p = patches_.at(m.patch);
        comm_.isend(m.to, kMigrateTagBase + 2 * m.patch,
                    p.f[parity_].data(), p.f[parity_].bytes());
        const double ema = p.emaInit ? p.ema : 0.0;
        comm_.send(m.to, kMigrateTagBase + 2 * m.patch + 1, &ema,
                   sizeof(ema));
        patches_.erase(m.patch);
        obs::count("patch.migrations");
      } else if (m.to == me) {
        auto [it, inserted] = patches_.emplace(m.patch, buildPatch(m.patch));
        SWLB_ASSERT(inserted);
        PatchState& p = it->second;
        comm_.recv(m.from, kMigrateTagBase + 2 * m.patch,
                   p.f[parity_].data(), p.f[parity_].bytes());
        double ema = 0;
        comm_.recv(m.from, kMigrateTagBase + 2 * m.patch + 1, &ema,
                   sizeof(ema));
        p.ema = ema;
        p.emaInit = ema > 0;
        obs::count("patch.migrated_bytes", p.f[parity_].bytes());
      }
      owners_[static_cast<std::size_t>(m.patch)] = m.to;
    }
    obs::gaugeSet("patch.owned", static_cast<double>(patches_.size()));
  }

  std::size_t localCellCount() const {
    std::size_t n = 0;
    for (const auto& [id, p] : patches_)
      n += static_cast<std::size_t>(p.box.volume());
    return n;
  }

  Comm& comm_;
  Config cfg_;
  PatchLayout layout_;
  MaskField globalMask_;
  MaterialTable mats_;
  std::vector<int> owners_;
  std::map<int, PatchState> patches_;  // owned patches, ascending id
  std::vector<S> localStrip_;  // scratch for intra-rank ghost copies
  int parity_ = 0;
  std::uint64_t steps_ = 0;
  bool maskFinal_ = false;
  double computeSeconds_ = 0;
};

}  // namespace swlb::runtime
