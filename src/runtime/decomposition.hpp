// Block domain decomposition (paper §IV-C1, Fig. 5(1)).
//
// SunwayLB uses a 2-D decomposition over x and y with the full z axis per
// subdomain: 1-D does not expose enough parallelism for 160,000 MPI
// processes, and 3-D increases communication complexity (each process
// would have up to 26 neighbours instead of 8).  The general Pz > 1 case
// is supported for completeness and for the decomposition ablation.
#pragma once

#include <vector>

#include "core/boundary.hpp"
#include "core/common.hpp"
#include "core/field.hpp"

namespace swlb::runtime {

class Decomposition {
 public:
  /// Partition `global` cells over a procGrid.x * procGrid.y * procGrid.z
  /// process grid.  Every factor must divide the rank count used with it.
  Decomposition(const Int3& global, const Int3& procGrid);

  /// Choose a process grid for `nranks`.  With `allow3d == false` the
  /// paper's 2-D xy scheme is used (pz == 1); the factors are picked to
  /// minimize total halo-surface area.
  static Int3 choose(int nranks, const Int3& global, bool allow3d = false);

  int rankCount() const { return procGrid_.x * procGrid_.y * procGrid_.z; }
  const Int3& procGrid() const { return procGrid_; }
  const Int3& globalSize() const { return global_; }

  /// Cartesian coordinates of a rank (x fastest).
  Int3 coordsOf(int rank) const;
  /// Rank of process-grid coordinates; periodic axes wrap, otherwise
  /// returns -1 for out-of-grid coordinates.
  int rankOf(Int3 coords, bool wrapX, bool wrapY, bool wrapZ) const;

  /// Global cell box owned by `rank` (half-open).  Remainder cells are
  /// spread over the leading blocks so sizes differ by at most one.
  Box3 blockOf(int rank) const;

  /// Local interior size of `rank`'s block.
  Int3 localSize(int rank) const;

  /// Maximum imbalance: max block volume / min block volume.
  double imbalance() const;

  /// Fluid-cell-weighted load-imbalance factor: max per-block fluid-cell
  /// count over the mean.  Solid cells skip collision, so this — not raw
  /// volume — predicts which rank bottlenecks a masked case.  The mask
  /// must cover the full global box (halo ignored).
  double imbalance(const MaskField& mask) const;

  /// Total halo cells shipped per exchange, summed over all blocks — the
  /// metric minimized when choosing a process grid.  Matches what
  /// HaloExchange actually sends in the pz == 1 scheme: face strips span
  /// the z halo (nz + 2) and the four corner columns are counted.
  long long totalHaloArea() const;

 private:
  static void split(int n, int parts, int idx, int& lo, int& hi);
  Int3 global_;
  Int3 procGrid_;
};

}  // namespace swlb::runtime
