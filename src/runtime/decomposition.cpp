#include "runtime/decomposition.hpp"

#include <limits>

namespace swlb::runtime {

Decomposition::Decomposition(const Int3& global, const Int3& procGrid)
    : global_(global), procGrid_(procGrid) {
  if (global.x <= 0 || global.y <= 0 || global.z <= 0)
    throw Error("Decomposition: global size must be positive");
  if (procGrid.x <= 0 || procGrid.y <= 0 || procGrid.z <= 0)
    throw Error("Decomposition: process grid must be positive");
  if (procGrid.x > global.x || procGrid.y > global.y || procGrid.z > global.z)
    throw Error("Decomposition: more processes than cells along an axis");
}

void Decomposition::split(int n, int parts, int idx, int& lo, int& hi) {
  // Sizes differ by at most one; the first (n % parts) blocks get the
  // extra cell.
  const int base = n / parts;
  const int extra = n % parts;
  lo = idx * base + std::min(idx, extra);
  hi = lo + base + (idx < extra ? 1 : 0);
}

Int3 Decomposition::choose(int nranks, const Int3& global, bool allow3d) {
  if (nranks <= 0) throw Error("Decomposition::choose: nranks must be positive");
  Int3 best{0, 0, 0};  // overwritten by the first valid grid
  long long bestCost = std::numeric_limits<long long>::max();
  bool found = false;
  for (int px = 1; px <= nranks; ++px) {
    if (nranks % px != 0 || px > global.x) continue;
    const int rest = nranks / px;
    for (int py = 1; py <= rest; ++py) {
      if (rest % py != 0 || py > global.y) continue;
      const int pz = rest / py;
      if (!allow3d && pz != 1) continue;
      if (pz > global.z) continue;
      Decomposition d(global, {px, py, pz});
      const long long cost = d.totalHaloArea();
      if (cost < bestCost) {
        bestCost = cost;
        best = {px, py, pz};
        found = true;
      }
    }
  }
  if (!found)
    throw Error("Decomposition::choose: no valid process grid for rank count");
  return best;
}

Int3 Decomposition::coordsOf(int rank) const {
  SWLB_ASSERT(rank >= 0 && rank < rankCount());
  Int3 c;
  c.x = rank % procGrid_.x;
  c.y = (rank / procGrid_.x) % procGrid_.y;
  c.z = rank / (procGrid_.x * procGrid_.y);
  return c;
}

int Decomposition::rankOf(Int3 coords, bool wrapX, bool wrapY, bool wrapZ) const {
  auto wrap = [](int v, int n, bool w) -> int {
    if (v >= 0 && v < n) return v;
    if (!w) return -1;
    return ((v % n) + n) % n;
  };
  const int x = wrap(coords.x, procGrid_.x, wrapX);
  const int y = wrap(coords.y, procGrid_.y, wrapY);
  const int z = wrap(coords.z, procGrid_.z, wrapZ);
  if (x < 0 || y < 0 || z < 0) return -1;
  return (z * procGrid_.y + y) * procGrid_.x + x;
}

Box3 Decomposition::blockOf(int rank) const {
  const Int3 c = coordsOf(rank);
  Box3 b;
  split(global_.x, procGrid_.x, c.x, b.lo.x, b.hi.x);
  split(global_.y, procGrid_.y, c.y, b.lo.y, b.hi.y);
  split(global_.z, procGrid_.z, c.z, b.lo.z, b.hi.z);
  return b;
}

Int3 Decomposition::localSize(int rank) const {
  const Box3 b = blockOf(rank);
  return {b.hi.x - b.lo.x, b.hi.y - b.lo.y, b.hi.z - b.lo.z};
}

double Decomposition::imbalance() const {
  long long minV = std::numeric_limits<long long>::max();
  long long maxV = 0;
  for (int r = 0; r < rankCount(); ++r) {
    const long long v = blockOf(r).volume();
    minV = std::min(minV, v);
    maxV = std::max(maxV, v);
  }
  return static_cast<double>(maxV) / static_cast<double>(minV);
}

double Decomposition::imbalance(const MaskField& mask) const {
  if (mask.grid().nx != global_.x || mask.grid().ny != global_.y ||
      mask.grid().nz != global_.z)
    throw Error("Decomposition::imbalance: mask grid does not match global");
  long long maxW = 0, total = 0;
  for (int r = 0; r < rankCount(); ++r) {
    const Box3 b = blockOf(r);
    long long w = 0;
    for (int z = b.lo.z; z < b.hi.z; ++z)
      for (int y = b.lo.y; y < b.hi.y; ++y)
        for (int x = b.lo.x; x < b.hi.x; ++x)
          if (mask(x, y, z) == MaterialTable::kFluid) ++w;
    maxW = std::max(maxW, w);
    total += w;
  }
  if (total == 0) return 1.0;
  const double mean = static_cast<double>(total) / rankCount();
  return static_cast<double>(maxW) / mean;
}

long long Decomposition::totalHaloArea() const {
  // Count exactly what HaloExchange ships.  In the paper's 2-D xy scheme
  // (pz == 1) every block sends, toward each existing neighbour, a 1-wide
  // strip spanning the full z extent *including both z halo layers*
  // (zLo = -1 .. nz+1), and the four diagonal neighbours get 1x1 corner
  // columns of the same z span.  The old model counted faces only, with
  // interior z extent, so choose() ranked grids by an underestimate.
  // For pz > 1 (3-D ablation) the same direction enumeration generalizes
  // to up to 26 neighbours with interior-extent strips.
  const int halo = 1;
  long long area = 0;
  for (int r = 0; r < rankCount(); ++r) {
    const Int3 n = localSize(r);
    const Int3 c = coordsOf(r);
    const int dzMax = procGrid_.z > 1 ? 1 : 0;
    for (int dz = -dzMax; dz <= dzMax; ++dz)
      for (int dy = -1; dy <= 1; ++dy)
        for (int dx = -1; dx <= 1; ++dx) {
          if (dx == 0 && dy == 0 && dz == 0) continue;
          // Neighbour existence without periodic wrap: wrapped messages
          // are still paid for, but choose() compares grids for a fixed
          // periodicity, so the non-wrapped count is the comparable core.
          if (c.x + dx < 0 || c.x + dx >= procGrid_.x) continue;
          if (c.y + dy < 0 || c.y + dy >= procGrid_.y) continue;
          if (c.z + dz < 0 || c.z + dz >= procGrid_.z) continue;
          const long long sx = dx != 0 ? halo : n.x;
          const long long sy = dy != 0 ? halo : n.y;
          const long long sz = dz != 0          ? halo
                               : procGrid_.z == 1 ? n.z + 2 * halo
                                                  : n.z;
          area += sx * sy * sz;
        }
  }
  return area;
}

}  // namespace swlb::runtime
