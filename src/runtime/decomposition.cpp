#include "runtime/decomposition.hpp"

#include <limits>

namespace swlb::runtime {

Decomposition::Decomposition(const Int3& global, const Int3& procGrid)
    : global_(global), procGrid_(procGrid) {
  if (global.x <= 0 || global.y <= 0 || global.z <= 0)
    throw Error("Decomposition: global size must be positive");
  if (procGrid.x <= 0 || procGrid.y <= 0 || procGrid.z <= 0)
    throw Error("Decomposition: process grid must be positive");
  if (procGrid.x > global.x || procGrid.y > global.y || procGrid.z > global.z)
    throw Error("Decomposition: more processes than cells along an axis");
}

void Decomposition::split(int n, int parts, int idx, int& lo, int& hi) {
  // Sizes differ by at most one; the first (n % parts) blocks get the
  // extra cell.
  const int base = n / parts;
  const int extra = n % parts;
  lo = idx * base + std::min(idx, extra);
  hi = lo + base + (idx < extra ? 1 : 0);
}

Int3 Decomposition::choose(int nranks, const Int3& global, bool allow3d) {
  if (nranks <= 0) throw Error("Decomposition::choose: nranks must be positive");
  Int3 best{1, 1, nranks > global.z ? 1 : 1};
  long long bestCost = std::numeric_limits<long long>::max();
  bool found = false;
  for (int px = 1; px <= nranks; ++px) {
    if (nranks % px != 0 || px > global.x) continue;
    const int rest = nranks / px;
    for (int py = 1; py <= rest; ++py) {
      if (rest % py != 0 || py > global.y) continue;
      const int pz = rest / py;
      if (!allow3d && pz != 1) continue;
      if (pz > global.z) continue;
      Decomposition d(global, {px, py, pz});
      const long long cost = d.totalHaloArea();
      if (cost < bestCost) {
        bestCost = cost;
        best = {px, py, pz};
        found = true;
      }
    }
  }
  if (!found)
    throw Error("Decomposition::choose: no valid process grid for rank count");
  return best;
}

Int3 Decomposition::coordsOf(int rank) const {
  SWLB_ASSERT(rank >= 0 && rank < rankCount());
  Int3 c;
  c.x = rank % procGrid_.x;
  c.y = (rank / procGrid_.x) % procGrid_.y;
  c.z = rank / (procGrid_.x * procGrid_.y);
  return c;
}

int Decomposition::rankOf(Int3 coords, bool wrapX, bool wrapY, bool wrapZ) const {
  auto wrap = [](int v, int n, bool w) -> int {
    if (v >= 0 && v < n) return v;
    if (!w) return -1;
    return ((v % n) + n) % n;
  };
  const int x = wrap(coords.x, procGrid_.x, wrapX);
  const int y = wrap(coords.y, procGrid_.y, wrapY);
  const int z = wrap(coords.z, procGrid_.z, wrapZ);
  if (x < 0 || y < 0 || z < 0) return -1;
  return (z * procGrid_.y + y) * procGrid_.x + x;
}

Box3 Decomposition::blockOf(int rank) const {
  const Int3 c = coordsOf(rank);
  Box3 b;
  split(global_.x, procGrid_.x, c.x, b.lo.x, b.hi.x);
  split(global_.y, procGrid_.y, c.y, b.lo.y, b.hi.y);
  split(global_.z, procGrid_.z, c.z, b.lo.z, b.hi.z);
  return b;
}

Int3 Decomposition::localSize(int rank) const {
  const Box3 b = blockOf(rank);
  return {b.hi.x - b.lo.x, b.hi.y - b.lo.y, b.hi.z - b.lo.z};
}

double Decomposition::imbalance() const {
  long long minV = std::numeric_limits<long long>::max();
  long long maxV = 0;
  for (int r = 0; r < rankCount(); ++r) {
    const long long v = blockOf(r).volume();
    minV = std::min(minV, v);
    maxV = std::max(maxV, v);
  }
  return static_cast<double>(maxV) / static_cast<double>(minV);
}

long long Decomposition::totalHaloArea() const {
  long long area = 0;
  for (int r = 0; r < rankCount(); ++r) {
    const Int3 n = localSize(r);
    const Int3 c = coordsOf(r);
    // Count faces toward existing neighbours (interior faces counted once
    // per side, which is what each rank pays in message volume).
    if (procGrid_.x > 1) area += (c.x > 0 ? 1 : 0) * static_cast<long long>(n.y) * n.z +
                                 (c.x < procGrid_.x - 1 ? 1 : 0) * static_cast<long long>(n.y) * n.z;
    if (procGrid_.y > 1) area += (c.y > 0 ? 1 : 0) * static_cast<long long>(n.x) * n.z +
                                 (c.y < procGrid_.y - 1 ? 1 : 0) * static_cast<long long>(n.x) * n.z;
    if (procGrid_.z > 1) area += (c.z > 0 ? 1 : 0) * static_cast<long long>(n.x) * n.y +
                                 (c.z < procGrid_.z - 1 ? 1 : 0) * static_cast<long long>(n.x) * n.y;
  }
  return area;
}

}  // namespace swlb::runtime
