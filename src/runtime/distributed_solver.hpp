// Multi-rank LBM solver: 2-D xy domain decomposition with sequential or
// on-the-fly (overlapped) halo exchange — the structure of paper Figs. 6/9.
//
// In Sequential mode each step is: halo exchange, then update the whole
// subdomain.  In Overlap mode receives are posted and sends packed first,
// the *inner* cells (which need no remote data) are updated while messages
// are in flight, and the one-cell boundary shell is updated after the halo
// lands — hiding almost all communication cost behind computation.
//
// Every rank owns exactly one uniform block here.  For workloads where
// the uniform volume split leaves ranks idle (solid-heavy masks), the
// patch-aware mode in runtime/patches.hpp (PatchSolver, DESIGN.md §13)
// splits the domain into many small patches per rank, balances them by
// fluid weight or measured step time, and stays bit-identical to this
// solver and the monolithic one.
#pragma once

#include <chrono>
#include <cmath>

#include "coll/coll.hpp"
#include "core/backends.hpp"
#include "core/kernels.hpp"
#include "core/macroscopic.hpp"
#include "core/observables.hpp"
#include "core/solver.hpp"
#include "obs/context.hpp"
#include "runtime/halo.hpp"

namespace swlb::runtime {

// HaloMode (Sequential vs Overlap scheduling) lives in runtime/halo.hpp.

/// `S` selects the population storage precision (see core/precision.hpp);
/// halo traffic, checkpoints and the byte-based perf model all scale with
/// sizeof(S).  Collision arithmetic stays in Real.
template <class D, class S = Real>
class DistributedSolver {
 public:
  using Field = PopulationFieldT<S>;
  struct Config {
    Int3 global{0, 0, 0};
    CollisionConfig collision;
    Periodicity periodic;
    HaloMode mode = HaloMode::Overlap;
    /// Process grid; {0,0,0} selects Decomposition::choose(comm.size()).
    Int3 procGrid{0, 0, 0};
    /// Stream/collide backend (enum spelling; see core/backend.hpp).
    /// Backends without caps.distributed (twostep, push) are rejected at
    /// construction.  In-place backends (esoteric) free the second
    /// buffer and only communicate on even steps (halved exchange
    /// frequency); their step always runs the sequential-style schedule
    /// regardless of `mode`, because the in-place sweep cannot split
    /// into inner/shell passes around an exchange that its own scatter
    /// must precede.  Whole-block backends (!caps.subRange, swcpe) force
    /// HaloMode::Sequential for the same reason.
    KernelVariant variant = KernelVariant::Fused;
    /// Registry-name spelling of the backend; when non-empty it takes
    /// precedence over `variant` (the tuner writes this field).
    std::string backend;
    /// Host threads for caps.usesHostThreads backends (<= 0 = one per
    /// hardware core).
    int hostThreads = 1;
  };

  DistributedSolver(Comm& comm, const Config& cfg)
      : comm_(comm),
        cfg_(cfg),
        decomp_(cfg.global, cfg.procGrid.x > 0
                                ? cfg.procGrid
                                : Decomposition::choose(comm.size(), cfg.global)),
        owned_(decomp_.blockOf(comm.rank())),
        grid_(owned_.hi.x - owned_.lo.x, owned_.hi.y - owned_.lo.y,
              owned_.hi.z - owned_.lo.z),
        halo_(decomp_, comm.rank(), cfg.periodic, grid_),
        f_{Field(grid_, D::Q), Field(grid_, D::Q)},
        mask_(grid_, MaterialTable::kFluid) {
    if (decomp_.rankCount() != comm.size())
      throw Error("DistributedSolver: process grid does not match world size");
    const std::string name = cfg_.backend.empty()
                                 ? kernel_variant_name(cfg_.variant)
                                 : cfg_.backend;
    backend_ = make_backend<D, S>(name);
    cfg_.variant = kernel_variant_from_name(name);
    const BackendCaps& caps = backend_->info().caps;
    if (!caps.distributed)
      throw Error("DistributedSolver: backend '" + name +
                  "' is a single-rank ablation baseline (capability "
                  "'distributed' is off)");
    // Whole-block backends cannot run the overlap schedule's inner/shell
    // split; drop to the sequential schedule instead of mis-slicing.
    if (!caps.subRange) cfg_.mode = HaloMode::Sequential;
    f_[0].setShift(D::w);
    f_[1].setShift(D::w);
    if (caps.inPlaceStreaming) f_[1] = Field();
    obs::gaugeSet("solver.population_bytes",
                  static_cast<double>(populationBytes()));
  }

  Comm& comm() { return comm_; }
  const Decomposition& decomposition() const { return decomp_; }
  const Box3& ownedBox() const { return owned_; }
  const Grid& localGrid() const { return grid_; }
  MaterialTable& materials() { return mats_; }
  const MaskField& mask() const { return mask_; }
  CollisionConfig& collision() { return cfg_.collision; }

  /// Paint material `id` over a box given in *global* coordinates.
  void paintGlobal(const Box3& globalBox, std::uint8_t id) {
    const Box3 local = intersect(globalBox, owned_);
    for (int z = local.lo.z; z < local.hi.z; ++z)
      for (int y = local.lo.y; y < local.hi.y; ++y)
        for (int x = local.lo.x; x < local.hi.x; ++x)
          mask_(x - owned_.lo.x, y - owned_.lo.y, z - owned_.lo.z) = id;
  }

  /// Finish mask setup: halo defaults to solid, periodic z wraps locally,
  /// x/y halo strips are exchanged with the neighbours.  Collective.
  void finalizeMask() {
    fill_halo_mask(mask_, Periodicity{false, false, zWrapLocal()},
                   MaterialTable::kSolid);
    halo_.exchangeMask(comm_, mask_);
    maskFinal_ = true;
    // Capability validation: in-place backends reject Outflow masks here.
    backend_->init(grid_, mask_, mats_);
  }

  /// Equilibrium initialization from a *global*-coordinate field function.
  void initField(const std::function<void(int, int, int, Real&, Vec3&)>& fn) {
    if (!maskFinal_) finalizeMask();
    Real feq[D::Q];
    for (int z = -1; z <= grid_.nz; ++z)
      for (int y = -1; y <= grid_.ny; ++y)
        for (int x = -1; x <= grid_.nx; ++x) {
          Real rho = 1;
          Vec3 u{0, 0, 0};
          fn(x + owned_.lo.x, y + owned_.lo.y, z + owned_.lo.z, rho, u);
          equilibria<D>(rho, u, feq);
          for (int i = 0; i < D::Q; ++i) {
            f_[0](i, x, y, z) = feq[i];
            if (f_[1].size()) f_[1](i, x, y, z) = feq[i];
          }
        }
  }

  void initUniform(Real rho, const Vec3& u) {
    initField([&](int, int, int, Real& r, Vec3& v) {
      r = rho;
      v = u;
    });
  }

  // Phase names below ("z_wrap", "halo.post", "compute.interior", ...) are
  // the observability layer's contract: each is one trace event per step
  // per rank and one histogram observation (DESIGN.md §6).  Top-level
  // phases are disjoint sub-intervals of "step", so their times sum to at
  // most the step time — an invariant test_obs_integration checks.
  void step() {
    obs::TraceScope stepScope("step");
    SWLB_ASSERT(maskFinal_);
    if (inPlace()) {
      stepInPlace();
      parity_ = 1 - parity_;
      ++steps_;
      return;
    }
    Field& src = f_[parity_];
    Field& dst = f_[1 - parity_];
    {
      // z is never decomposed: wrap it locally before the x/y exchange so
      // the exchanged strips carry valid z-halo rows.
      obs::TraceScope zScope("z_wrap");
      apply_periodic(src, Periodicity{false, false, zWrapLocal()});
    }

    if (cfg_.mode == HaloMode::Sequential) {
      {
        obs::TraceScope haloScope("halo.exchange");
        halo_.exchange(comm_, src);
      }
      obs::TraceScope computeScope("compute.interior");
      runKernel(src, dst, grid_.interior());
    } else {
      {
        obs::TraceScope postScope("halo.post");
        halo_.begin(comm_, src);
      }
      {
        obs::TraceScope computeScope("compute.interior");
        runKernel(src, dst, halo_.innerBox());
      }
      {
        obs::TraceScope finishScope("halo.finish");
        halo_.finish(comm_, src);
      }
      obs::TraceScope frontierScope("compute.frontier");
      for (const Box3& b : halo_.boundaryShell()) runKernel(src, dst, b);
    }
    parity_ = 1 - parity_;
    ++steps_;
  }

  void run(std::uint64_t n) {
    for (std::uint64_t s = 0; s < n; ++s) step();
  }

  /// Run n steps; returns global MLUPS (identical on every rank).
  double runMeasured(std::uint64_t n) {
    comm_.barrier();
    const auto t0 = std::chrono::steady_clock::now();
    run(n);
    comm_.barrier();
    const auto t1 = std::chrono::steady_clock::now();
    const double sec =
        comm_.allreduce(std::chrono::duration<double>(t1 - t0).count(), Comm::Op::Max);
    const double cells = static_cast<double>(cfg_.global.x) * cfg_.global.y *
                         cfg_.global.z;
    return cells * static_cast<double>(n) / sec / 1e6;
  }

  std::uint64_t stepsDone() const { return steps_; }
  int parity() const { return parity_; }
  /// Restore step counter and A-B parity (group checkpoint restart).
  /// In-place checkpoints must be cut at an even phase (natural layout).
  void restoreState(std::uint64_t steps, int parity) {
    SWLB_ASSERT(parity == 0 || parity == 1);
    SWLB_ASSERT(!inPlace() || parity == 0);
    steps_ = steps;
    parity_ = parity;
  }
  const Field& f() const { return inPlace() ? f_[0] : f_[parity_]; }
  Field& f() { return inPlace() ? f_[0] : f_[parity_]; }
  const KernelBackend<D, S>& backend() const { return *backend_; }
  const std::string& backendName() const { return backend_->info().name; }
  /// Effective halo schedule (may differ from the configured one when
  /// the backend forces Sequential — see Config::variant docs).
  HaloMode haloMode() const { return cfg_.mode; }

  /// Bytes held in population storage (one lattice under Esoteric).
  std::size_t populationBytes() const {
    return f_[0].bytes() + f_[1].bytes();
  }

  Real density(int lx, int ly, int lz) const {
    Real rho;
    Vec3 u;
    if (rotatedPhase())
      cell_macroscopic<D>(EsotericPhase1View<D, S>(f_[0]), lx, ly, lz,
                          cfg_.collision, rho, u);
    else
      cell_macroscopic<D>(f(), lx, ly, lz, cfg_.collision, rho, u);
    return rho;
  }
  Vec3 velocity(int lx, int ly, int lz) const {
    Real rho;
    Vec3 u;
    if (rotatedPhase())
      cell_macroscopic<D>(EsotericPhase1View<D, S>(f_[0]), lx, ly, lz,
                          cfg_.collision, rho, u);
    else
      cell_macroscopic<D>(f(), lx, ly, lz, cfg_.collision, rho, u);
    return u;
  }

  /// Total fluid mass across all ranks (collective).
  Real globalMass() {
    return comm_.allreduce(localMass(), Comm::Op::Sum);
  }

  /// Fluid mass of this rank's block only (local; the resilient runner's
  /// divergence guard folds it into one well-ordered allreduce).
  Real localMass() const {
    if (rotatedPhase())
      return total_mass<D>(EsotericPhase1View<D, S>(f_[0]), mask_, mats_);
    return total_mass<D>(f(), mask_, mats_);
  }

  /// Globally reduced communication counters (collective): every rank
  /// returns the world totals of the per-rank CommStats accumulated so
  /// far.  One 4-component integer vector allreduce; the reduction's own
  /// traffic is counted after the snapshot, so it does not pollute it.
  CommStats totalStats() {
    std::int64_t v[4] = {
        static_cast<std::int64_t>(comm_.stats().messagesSent),
        static_cast<std::int64_t>(comm_.stats().bytesSent),
        static_cast<std::int64_t>(comm_.stats().messagesReceived),
        static_cast<std::int64_t>(comm_.stats().bytesReceived)};
    coll::Collectives cs(comm_);
    cs.allreduce(std::span<std::int64_t>(v, 4), coll::Op::Sum);
    CommStats total;
    total.messagesSent = static_cast<std::uint64_t>(v[0]);
    total.bytesSent = static_cast<std::uint64_t>(v[1]);
    total.messagesReceived = static_cast<std::uint64_t>(v[2]);
    total.bytesReceived = static_cast<std::uint64_t>(v[3]);
    return total;
  }

  /// Global momentum-exchange force on cells of material `id`
  /// (collective): local obstacle force per rank, folded with one
  /// 3-component vector allreduce — identical on every rank.  Each
  /// fluid->wall link is owned by the rank of its fluid cell, and ghost
  /// masks are exchanged at init, so links crossing rank boundaries are
  /// counted exactly once.
  Vec3 globalForce(std::uint8_t id) {
    const Vec3 local =
        rotatedPhase()
            ? momentum_exchange_force<D>(EsotericPhase1View<D, S>(f_[0]),
                                         mask_, mats_, id)
            : momentum_exchange_force<D>(f(), mask_, mats_, id);
    double v[3] = {local.x, local.y, local.z};
    coll::Collectives cs(comm_);
    cs.allreduce(std::span<double>(v, 3), coll::Op::Sum);
    return {v[0], v[1], v[2]};
  }

  /// Local NaN/Inf guard over the interior of the current population
  /// buffer.  Purely local so it can run inside a step's try block without
  /// risking a mismatched collective.  Ghost layers are excluded: they are
  /// rewritten by the halo exchange before every read, but a stale NaN can
  /// linger there across a rollback (streaming never writes ghosts) and
  /// must not re-trip the guard after recovery.
  bool populationsFinite() const {
    const Field& field = f();
    const Grid& g = field.grid();
    for (int q = 0; q < D::Q; ++q)
      for (int z = 0; z < g.nz; ++z)
        for (int y = 0; y < g.ny; ++y)
          for (int x = 0; x < g.nx; ++x)
            if (!std::isfinite(field(q, x, y, z))) return false;
    return true;
  }

  /// Gather the full population field on `root` (interior cells only;
  /// other ranks receive an empty field).  Collective; test/IO helper.
  /// Values are decoded to Real before the gather, so the result is a
  /// plain double field regardless of the local storage precision.
  /// Variable-size gatherv (blocks differ under uneven decompositions)
  /// with all receives posted up front — a slow rank never serializes the
  /// others behind it.
  PopulationField gatherPopulations(int root) {
    std::vector<Real> local(static_cast<std::size_t>(owned_.volume()) * D::Q);
    packLocal(local);
    std::vector<std::size_t> counts(static_cast<std::size_t>(comm_.size()));
    std::size_t totalCount = 0;
    for (int r = 0; r < comm_.size(); ++r) {
      counts[static_cast<std::size_t>(r)] =
          static_cast<std::size_t>(decomp_.blockOf(r).volume()) * D::Q;
      totalCount += counts[static_cast<std::size_t>(r)];
    }
    coll::Collectives cs(comm_);
    if (comm_.rank() != root) {
      cs.gatherv<Real>(root, local, counts, {});
      return PopulationField();
    }
    std::vector<Real> all(totalCount);
    cs.gatherv<Real>(root, local, counts, all);
    Grid g(cfg_.global.x, cfg_.global.y, cfg_.global.z);
    PopulationField out(g, D::Q);
    std::size_t k = 0;
    for (int r = 0; r < comm_.size(); ++r) {
      const Box3 block = decomp_.blockOf(r);
      for (int q = 0; q < D::Q; ++q)
        for (int z = block.lo.z; z < block.hi.z; ++z)
          for (int y = block.lo.y; y < block.hi.y; ++y)
            for (int x = block.lo.x; x < block.hi.x; ++x)
              out(q, x, y, z) = all[k++];
    }
    return out;
  }

  /// Bytes exchanged per step (send side) — input to the network model.
  /// Tracks the storage element size: reduced precision halves/quarters it.
  std::size_t haloBytesPerStep() const {
    return halo_.bytesPerExchange(D::Q, sizeof(S));
  }

 private:
  bool zWrapLocal() const { return cfg_.periodic.z; }
  bool inPlace() const { return backend_->info().caps.inPlaceStreaming; }
  /// True when the single in-place buffer is in the rotated (post-even)
  /// layout and reads must go through EsotericPhase1View.
  bool rotatedPhase() const { return inPlace() && parity_ == 1; }

  /// One backend update of `range`.  No fallback: the backend was
  /// resolved by name at construction and capability-checked, so
  /// whatever it is runs — an unsupported combination already threw.
  void runKernel(Field& src, Field& dst, const Box3& range) {
    BackendStepArgs<D, S> args;
    args.src = &src;
    args.dst = &dst;
    args.mask = &mask_;
    args.mats = &mats_;
    args.cfg = &cfg_.collision;
    args.range = range;
    args.periodic = Periodicity{false, false, zWrapLocal()};
    args.threads = cfg_.hostThreads;
    backend_->step(args);
  }

  /// In-place (Esoteric-Pull) step.  Even phase: local z wrap, forward
  /// exchange (the gather pulls from the halo exactly like the fused
  /// kernel), one whole-interior in-place sweep, then the *reverse*
  /// exchange + local reverse z wrap fold the outward scatter back to
  /// its owners.  Odd phase: fully local — no communication at all,
  /// halving the exchange frequency relative to the two-lattice
  /// schedule.
  void stepInPlace() {
    Field& buf = f_[0];
    if (parity_ == 0) {
      {
        obs::TraceScope zScope("z_wrap");
        apply_periodic(buf, Periodicity{false, false, zWrapLocal()});
      }
      {
        obs::TraceScope haloScope("halo.exchange");
        halo_.exchange(comm_, buf);
      }
      {
        obs::TraceScope computeScope("compute.interior");
        backend_->stepInPlaceEven(buf, mask_, mats_, cfg_.collision,
                                  grid_.interior(), cfg_.hostThreads);
      }
      {
        obs::TraceScope haloScope("halo.exchange");
        halo_.template exchangeReverse<D>(comm_, buf);
      }
      obs::TraceScope zScope("z_wrap");
      apply_periodic_reverse<D>(buf, Periodicity{false, false, zWrapLocal()});
    } else {
      obs::TraceScope computeScope("compute.interior");
      backend_->stepInPlaceOdd(buf, mask_, mats_, cfg_.collision,
                               grid_.interior(), cfg_.hostThreads);
    }
  }

  void packLocal(std::vector<Real>& buf) const {
    std::size_t k = 0;
    if (rotatedPhase()) {
      const EsotericPhase1View<D, S> view(f_[0]);
      for (int q = 0; q < D::Q; ++q)
        for (int z = 0; z < grid_.nz; ++z)
          for (int y = 0; y < grid_.ny; ++y)
            for (int x = 0; x < grid_.nx; ++x) buf[k++] = view(q, x, y, z);
      return;
    }
    const Field& field = f();
    for (int q = 0; q < D::Q; ++q)
      for (int z = 0; z < grid_.nz; ++z)
        for (int y = 0; y < grid_.ny; ++y)
          for (int x = 0; x < grid_.nx; ++x) buf[k++] = field(q, x, y, z);
  }

  Comm& comm_;
  Config cfg_;
  Decomposition decomp_;
  Box3 owned_;
  Grid grid_;
  HaloExchange halo_;
  Field f_[2];
  MaskField mask_;
  MaterialTable mats_;
  std::unique_ptr<KernelBackend<D, S>> backend_;
  int parity_ = 0;
  std::uint64_t steps_ = 0;
  bool maskFinal_ = false;
};

}  // namespace swlb::runtime
