// Parallel I/O for distributed runs (paper §IV-B: "the I/O layer provides
// support ... with several options such as group I/O and MPI I/O, with
// addition of a checkpoint and restart controller").
//
// Group checkpointing writes one checksummed file per rank plus a root
// manifest describing the decomposition; restart validates the manifest
// against the live run so a checkpoint can only be restored onto the
// layout it was taken from.  Field output is gathered to a root rank and
// written with the serial writers.
#pragma once

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "core/macroscopic.hpp"
#include "io/checkpoint.hpp"
#include "io/vtk.hpp"
#include "obs/context.hpp"
#include "runtime/distributed_solver.hpp"

namespace swlb::runtime {

/// Per-rank checkpoint path under a common prefix.
inline std::string group_checkpoint_path(const std::string& prefix, int rank) {
  return prefix + ".rank" + std::to_string(rank) + ".ckpt";
}
inline std::string group_manifest_path(const std::string& prefix) {
  return prefix + ".manifest";
}

/// Write one checkpoint file per rank plus the root manifest.  Collective.
/// The manifest is the generation's commit record: it is written (atomic
/// tmp-then-rename) only after a barrier proves every rank's block landed,
/// so a crash mid-save can leave stray rank files but never a manifest
/// that points at an incomplete generation.
template <class D, class S>
void save_group_checkpoint(DistributedSolver<D, S>& solver,
                           const std::string& prefix) {
  obs::TraceScope saveScope("checkpoint.group_save");
  Comm& comm = solver.comm();
  io::save_checkpoint(group_checkpoint_path(prefix, comm.rank()), solver.f(),
                      solver.stepsDone(), solver.parity());
  comm.barrier();  // every block durable before the manifest commits them
  if (comm.rank() == 0) {
    const std::string path = group_manifest_path(prefix);
    const std::string tmp = path + ".tmp";
    {
      std::ofstream os(tmp, std::ios::trunc);
      if (!os) throw Error("group checkpoint: cannot write manifest");
      const auto& d = solver.decomposition();
      os << "swlb-group-checkpoint 1\n"
         << "ranks " << comm.size() << "\n"
         << "global " << d.globalSize().x << ' ' << d.globalSize().y << ' '
         << d.globalSize().z << "\n"
         << "procgrid " << d.procGrid().x << ' ' << d.procGrid().y << ' '
         << d.procGrid().z << "\n"
         << "steps " << solver.stepsDone() << "\n";
      os.flush();
      if (!os) throw Error("group checkpoint: manifest write failed");
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
      std::remove(tmp.c_str());
      throw Error("group checkpoint: cannot commit manifest '" + path + "'");
    }
  }
  comm.barrier();  // manifest visible before anyone reports success
}

/// Restore a group checkpoint.  Throws when the manifest does not match
/// the live decomposition (wrong rank count / grid / mesh).  Collective.
template <class D, class S>
void load_group_checkpoint(DistributedSolver<D, S>& solver,
                           const std::string& prefix) {
  obs::TraceScope restoreScope("checkpoint.group_restore");
  Comm& comm = solver.comm();
  // Every rank parses the manifest (cheap, avoids a broadcast round).
  std::ifstream in(group_manifest_path(prefix));
  if (!in) throw Error("group checkpoint: missing manifest for '" + prefix + "'");
  std::string magic;
  int version = 0, ranks = 0;
  Int3 global, grid;
  std::uint64_t steps = 0;
  std::string key;
  in >> magic >> version >> key >> ranks >> key >> global.x >> global.y >>
      global.z >> key >> grid.x >> grid.y >> grid.z >> key >> steps;
  if (!in || magic != "swlb-group-checkpoint" || version != 1)
    throw Error("group checkpoint: malformed manifest");
  const auto& d = solver.decomposition();
  if (ranks != comm.size() || !(global == d.globalSize()) ||
      !(grid == d.procGrid())) {
    throw Error("group checkpoint: decomposition mismatch (checkpoint " +
                std::to_string(ranks) + " ranks, live " +
                std::to_string(comm.size()) + ")");
  }
  const io::CheckpointMeta meta = io::read_checkpoint_meta(
      group_checkpoint_path(prefix, comm.rank()));
  solver.restoreState(meta.steps, meta.parity);
  io::load_checkpoint(group_checkpoint_path(prefix, comm.rank()), solver.f());
  comm.barrier();
}

/// Gather density and velocity into *global* fields on `root` (other
/// ranks receive empty fields).  Collective.
template <class D, class S>
void gather_macroscopic(DistributedSolver<D, S>& solver, int root,
                        ScalarField& rhoOut, VectorField& uOut) {
  Comm& comm = solver.comm();
  const Grid& lg = solver.localGrid();
  // Local macroscopic block, packed (rho, ux, uy, uz) per cell.
  std::vector<Real> buf(lg.interiorVolume() * 4);
  std::size_t k = 0;
  for (int z = 0; z < lg.nz; ++z)
    for (int y = 0; y < lg.ny; ++y)
      for (int x = 0; x < lg.nx; ++x) {
        Real rho = 0;
        Vec3 u{0, 0, 0};
        const Material& m = solver.materials()[solver.mask()(x, y, z)];
        if (is_pullable(m.cls)) {
          cell_macroscopic<D>(solver.f(), x, y, z, solver.collision(), rho, u);
        } else {
          rho = m.rho;
          u = m.u;
        }
        buf[k++] = rho;
        buf[k++] = u.x;
        buf[k++] = u.y;
        buf[k++] = u.z;
      }

  // Variable-size gatherv over the collective layer: receives are posted
  // up front on the root, so one slow rank cannot serialize the rest.
  const auto& d = solver.decomposition();
  std::vector<std::size_t> counts(static_cast<std::size_t>(comm.size()));
  std::size_t totalCount = 0;
  for (int r = 0; r < comm.size(); ++r) {
    counts[static_cast<std::size_t>(r)] =
        static_cast<std::size_t>(d.blockOf(r).volume()) * 4;
    totalCount += counts[static_cast<std::size_t>(r)];
  }
  coll::Collectives cs(comm);
  if (comm.rank() != root) {
    cs.gatherv<Real>(root, buf, counts, {});
    return;
  }
  std::vector<Real> all(totalCount);
  cs.gatherv<Real>(root, buf, counts, all);
  const Int3 g = d.globalSize();
  Grid gg(g.x, g.y, g.z);
  rhoOut = ScalarField(gg);
  uOut = VectorField(gg);
  std::size_t j = 0;
  for (int r = 0; r < comm.size(); ++r) {
    const Box3 block = d.blockOf(r);
    for (int z = block.lo.z; z < block.hi.z; ++z)
      for (int y = block.lo.y; y < block.hi.y; ++y)
        for (int x = block.lo.x; x < block.hi.x; ++x) {
          rhoOut(x, y, z) = all[j];
          uOut.set(x, y, z, {all[j + 1], all[j + 2], all[j + 3]});
          j += 4;
        }
  }
}

/// Gather to `root` and write one VTK file with density + velocity.
template <class D, class S>
void write_vtk_gathered(DistributedSolver<D, S>& solver, int root,
                        const std::string& path) {
  ScalarField rho;
  VectorField u;
  gather_macroscopic(solver, root, rho, u);
  if (solver.comm().rank() != root) return;
  io::VtkWriter vtk(rho.grid());
  vtk.addScalar("density", rho);
  vtk.addVector("velocity", u);
  vtk.write(path);
}

}  // namespace swlb::runtime
