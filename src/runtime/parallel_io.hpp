// Parallel I/O for distributed runs (paper §IV-B: "the I/O layer provides
// support ... with several options such as group I/O and MPI I/O, with
// addition of a checkpoint and restart controller").
//
// Group checkpointing writes one checksummed file per rank plus a root
// manifest describing the decomposition; restart validates the manifest
// against the live run so a checkpoint can only be restored onto the
// layout it was taken from.  Field output is gathered to a root rank and
// written with the serial writers.
#pragma once

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/macroscopic.hpp"
#include "io/checkpoint.hpp"
#include "io/vtk.hpp"
#include "obs/context.hpp"
#include "runtime/distributed_solver.hpp"

namespace swlb::runtime {

/// Per-rank checkpoint path under a common prefix.
inline std::string group_checkpoint_path(const std::string& prefix, int rank) {
  return prefix + ".rank" + std::to_string(rank) + ".ckpt";
}
inline std::string group_manifest_path(const std::string& prefix) {
  return prefix + ".manifest";
}

/// Parsed group-checkpoint manifest.  Version 2 records each rank's owned
/// global sub-box, which is what makes restore rank-count-independent: a
/// survivor set of any size can map old blocks onto a new decomposition.
/// Version-1 manifests (no block list) derive the blocks from the recorded
/// process grid, so old generations stay restorable.
struct GroupManifest {
  int version = 0;
  int ranks = 0;
  Int3 global{};
  Int3 procGrid{};
  std::uint64_t steps = 0;
  std::vector<Box3> blocks;  ///< owned global sub-box per writing rank
};

/// Read and validate a generation's manifest.  Throws on missing or
/// malformed files (the caller treats that as "generation not committed").
inline GroupManifest read_group_manifest(const std::string& prefix) {
  std::ifstream in(group_manifest_path(prefix));
  if (!in)
    throw Error("group checkpoint: missing manifest for '" + prefix + "'");
  GroupManifest m;
  std::string magic, key;
  in >> magic >> m.version;
  if (!in || magic != "swlb-group-checkpoint" ||
      (m.version != 1 && m.version != 2))
    throw Error("group checkpoint: malformed manifest for '" + prefix + "'");
  in >> key >> m.ranks >> key >> m.global.x >> m.global.y >> m.global.z >>
      key >> m.procGrid.x >> m.procGrid.y >> m.procGrid.z >> key >> m.steps;
  if (!in || m.ranks <= 0)
    throw Error("group checkpoint: malformed manifest for '" + prefix + "'");
  if (m.version >= 2) {
    m.blocks.resize(static_cast<std::size_t>(m.ranks));
    for (int r = 0; r < m.ranks; ++r) {
      int rr = -1;
      Box3 b;
      in >> key >> rr >> b.lo.x >> b.lo.y >> b.lo.z >> b.hi.x >> b.hi.y >>
          b.hi.z;
      if (!in || key != "block" || rr != r)
        throw Error("group checkpoint: malformed block table for '" + prefix +
                    "'");
      m.blocks[static_cast<std::size_t>(r)] = b;
    }
  } else {
    const Decomposition d(m.global, m.procGrid);
    if (d.rankCount() != m.ranks)
      throw Error("group checkpoint: inconsistent v1 manifest for '" + prefix +
                  "'");
    m.blocks.resize(static_cast<std::size_t>(m.ranks));
    for (int r = 0; r < m.ranks; ++r)
      m.blocks[static_cast<std::size_t>(r)] = d.blockOf(r);
  }
  return m;
}

/// Write one checkpoint file per rank plus the root manifest.  Collective.
/// The manifest is the generation's commit record: it is written (atomic
/// tmp-then-rename) only after a barrier proves every rank's block landed,
/// so a crash mid-save can leave stray rank files but never a manifest
/// that points at an incomplete generation.
template <class D, class S>
void save_group_checkpoint(DistributedSolver<D, S>& solver,
                           const std::string& prefix) {
  obs::TraceScope saveScope("checkpoint.group_save");
  Comm& comm = solver.comm();
  io::save_checkpoint(group_checkpoint_path(prefix, comm.rank()), solver.f(),
                      solver.stepsDone(), solver.parity());
  comm.barrier();  // every block durable before the manifest commits them
  if (comm.rank() == 0) {
    const std::string path = group_manifest_path(prefix);
    const std::string tmp = path + ".tmp";
    {
      std::ofstream os(tmp, std::ios::trunc);
      if (!os) throw Error("group checkpoint: cannot write manifest");
      const auto& d = solver.decomposition();
      os << "swlb-group-checkpoint 2\n"
         << "ranks " << comm.size() << "\n"
         << "global " << d.globalSize().x << ' ' << d.globalSize().y << ' '
         << d.globalSize().z << "\n"
         << "procgrid " << d.procGrid().x << ' ' << d.procGrid().y << ' '
         << d.procGrid().z << "\n"
         << "steps " << solver.stepsDone() << "\n";
      // v2 block table: each writing rank's owned global sub-box, the key
      // to rank-count-independent (splice) restore.
      for (int r = 0; r < comm.size(); ++r) {
        const Box3 b = d.blockOf(r);
        os << "block " << r << ' ' << b.lo.x << ' ' << b.lo.y << ' ' << b.lo.z
           << ' ' << b.hi.x << ' ' << b.hi.y << ' ' << b.hi.z << "\n";
      }
      os.flush();
      if (!os) throw Error("group checkpoint: manifest write failed");
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
      std::remove(tmp.c_str());
      throw Error("group checkpoint: cannot commit manifest '" + path + "'");
    }
  }
  comm.barrier();  // manifest visible before anyone reports success
}

/// Restore a group checkpoint.  Throws when the manifest does not match
/// the live decomposition (wrong rank count / grid / mesh).  Collective.
template <class D, class S>
void load_group_checkpoint(DistributedSolver<D, S>& solver,
                           const std::string& prefix) {
  obs::TraceScope restoreScope("checkpoint.group_restore");
  Comm& comm = solver.comm();
  // Every rank parses the manifest (cheap, avoids a broadcast round).
  const GroupManifest m = read_group_manifest(prefix);
  const auto& d = solver.decomposition();
  if (m.ranks != comm.size() || !(m.global == d.globalSize()) ||
      !(m.procGrid == d.procGrid())) {
    throw Error("group checkpoint: decomposition mismatch (checkpoint " +
                std::to_string(m.ranks) + " ranks, live " +
                std::to_string(comm.size()) + ")");
  }
  const io::CheckpointMeta meta = io::read_checkpoint_meta(
      group_checkpoint_path(prefix, comm.rank()));
  solver.restoreState(meta.steps, meta.parity);
  io::load_checkpoint(group_checkpoint_path(prefix, comm.rank()), solver.f());
  comm.barrier();
}

namespace detail {

/// Copy `region` (global coordinates) of one old block's payload into the
/// live field.  Same-precision same-shift elements are copied raw (encode
/// after decode is lossy for reduced precision, raw copies are bit-exact);
/// anything else goes through the file-shift decode / field-shift encode
/// path, exactly like whole-field cross-precision restore.
template <class S, class FS>
void splice_block_region(PopulationFieldT<S>& f, const Box3& mine,
                         const io::detail::RawCheckpoint& raw,
                         const Box3& oldBox, const Box3& region) {
  const Grid og(oldBox.hi.x - oldBox.lo.x, oldBox.hi.y - oldBox.lo.y,
                oldBox.hi.z - oldBox.lo.z, raw.meta.halo);
  const std::size_t ovol = og.volume();
  const int q = f.q();
  if (raw.payload.size() != ovol * static_cast<std::size_t>(q) * sizeof(FS))
    throw Error("group checkpoint: splice payload size mismatch");
  const FS* in = reinterpret_cast<const FS*>(raw.payload.data());
  bool sameRepr = raw.meta.precisionBits == StorageTraits<S>::kBits;
  for (int i = 0; i < q && sameRepr; ++i)
    if (raw.shift[static_cast<std::size_t>(i)] != f.shift(i)) sameRepr = false;
  const Grid& lg = f.grid();
  for (int qq = 0; qq < q; ++qq) {
    const Real sh = raw.shift[static_cast<std::size_t>(qq)];
    const FS* slab = in + static_cast<std::size_t>(qq) * ovol;
    for (int z = region.lo.z; z < region.hi.z; ++z)
      for (int y = region.lo.y; y < region.hi.y; ++y)
        for (int x = region.lo.x; x < region.hi.x; ++x) {
          const std::size_t oi =
              og.idx(x - oldBox.lo.x, y - oldBox.lo.y, z - oldBox.lo.z);
          const std::size_t ni =
              lg.idx(x - mine.lo.x, y - mine.lo.y, z - mine.lo.z);
          if constexpr (std::is_same_v<S, FS>) {
            if (sameRepr) {
              f.data()[f.slab(qq) + ni] = slab[oi];
              continue;
            }
          }
          f.store(qq, ni, StorageTraits<FS>::decode(slab[oi], sh));
        }
  }
}

}  // namespace detail

/// Rank-count-independent restore: each live rank opens every *old* block
/// whose padded box overlaps its own padded box and splices the overlap
/// region by region.  Two passes give a deterministic result independent
/// of the live decomposition:
///
///   pass 0 — old blocks' *padded* boxes in ascending old-rank order seed
///            the live ghost layer (old ghosts were valid when the
///            generation was taken: saves happen post-step, pre-exchange,
///            exactly like the state a same-layout restore reproduces);
///   pass 1 — old blocks' *interiors* (disjoint) overwrite every in-domain
///            cell, so interior data always wins over any stale ghost.
///
/// Composes with cross-precision checkpoints via the same decode/encode
/// path as load_checkpoint.  Collective.
template <class D, class S>
void load_group_checkpoint_spliced(DistributedSolver<D, S>& solver,
                                   const std::string& prefix,
                                   const GroupManifest& m) {
  obs::TraceScope spliceScope("checkpoint.splice_restore");
  Comm& comm = solver.comm();
  const auto& d = solver.decomposition();
  if (!(m.global == d.globalSize()))
    throw Error("group checkpoint: global-size mismatch, cannot splice '" +
                prefix + "' onto a " + std::to_string(comm.size()) +
                "-rank run");
  // Step counter and A-B parity come from old block 0's header (identical
  // in every block of a committed generation); restore them first so the
  // payload lands in the buffer that was current at save time.
  const io::CheckpointMeta meta0 =
      io::read_checkpoint_meta(group_checkpoint_path(prefix, 0));
  solver.restoreState(meta0.steps, meta0.parity);
  auto& f = solver.f();
  const Grid& lg = f.grid();
  const Box3 mine = solver.ownedBox();
  const int halo = lg.halo;
  const Box3 minePad{{mine.lo.x - halo, mine.lo.y - halo, mine.lo.z - halo},
                     {mine.hi.x + halo, mine.hi.y + halo, mine.hi.z + halo}};
  std::uint64_t blocksRead = 0, cellsSpliced = 0;
  // Old blocks overlapping this rank are read once and reused by pass 1.
  std::vector<std::unique_ptr<io::detail::RawCheckpoint>> cache(
      static_cast<std::size_t>(m.ranks));
  for (int pass = 0; pass < 2; ++pass) {
    for (int r = 0; r < m.ranks; ++r) {
      const Box3& oldBox = m.blocks[static_cast<std::size_t>(r)];
      const Box3 oldPad{
          {oldBox.lo.x - halo, oldBox.lo.y - halo, oldBox.lo.z - halo},
          {oldBox.hi.x + halo, oldBox.hi.y + halo, oldBox.hi.z + halo}};
      const Box3 region = intersect(minePad, pass == 0 ? oldPad : oldBox);
      if (region.hi.x <= region.lo.x || region.hi.y <= region.lo.y ||
          region.hi.z <= region.lo.z)
        continue;
      auto& raw = cache[static_cast<std::size_t>(r)];
      if (!raw) {
        raw = std::make_unique<io::detail::RawCheckpoint>(
            io::detail::read_checkpoint_file(group_checkpoint_path(prefix, r)));
        obs::count("checkpoint.bytes_read", raw->fileBytes);
        if (raw->meta.q != f.q() || raw->meta.halo != halo ||
            raw->meta.steps != meta0.steps || raw->meta.parity != meta0.parity ||
            raw->meta.interior.x != oldBox.hi.x - oldBox.lo.x ||
            raw->meta.interior.y != oldBox.hi.y - oldBox.lo.y ||
            raw->meta.interior.z != oldBox.hi.z - oldBox.lo.z)
          throw Error("group checkpoint: block " + std::to_string(r) +
                      " disagrees with manifest of '" + prefix + "'");
        ++blocksRead;
      }
      switch (raw->meta.precisionBits) {
        case 64:
          detail::splice_block_region<S, double>(f, mine, *raw, oldBox, region);
          break;
        case 32:
          detail::splice_block_region<S, float>(f, mine, *raw, oldBox, region);
          break;
        case 16:
          detail::splice_block_region<S, f16>(f, mine, *raw, oldBox, region);
          break;
        default:
          throw Error("group checkpoint: unknown storage precision " +
                      std::to_string(raw->meta.precisionBits));
      }
      cellsSpliced += static_cast<std::uint64_t>(region.volume());
    }
  }
  obs::count("checkpoint.splice.blocks_read", blocksRead);
  obs::count("checkpoint.splice.cells", cellsSpliced);
  comm.barrier();
}

/// Restore a generation onto whatever decomposition the solver currently
/// has: exact per-rank reload when the layout matches the manifest,
/// splice-restore otherwise.  Collective.
template <class D, class S>
void load_group_checkpoint_elastic(DistributedSolver<D, S>& solver,
                                   const std::string& prefix) {
  const GroupManifest m = read_group_manifest(prefix);
  const auto& d = solver.decomposition();
  if (m.ranks == solver.comm().size() && m.global == d.globalSize() &&
      m.procGrid == d.procGrid()) {
    load_group_checkpoint(solver, prefix);
    return;
  }
  load_group_checkpoint_spliced(solver, prefix, m);
}

/// Gather density and velocity into *global* fields on `root` (other
/// ranks receive empty fields).  Collective.
template <class D, class S>
void gather_macroscopic(DistributedSolver<D, S>& solver, int root,
                        ScalarField& rhoOut, VectorField& uOut) {
  Comm& comm = solver.comm();
  const Grid& lg = solver.localGrid();
  // Local macroscopic block, packed (rho, ux, uy, uz) per cell.
  std::vector<Real> buf(lg.interiorVolume() * 4);
  std::size_t k = 0;
  for (int z = 0; z < lg.nz; ++z)
    for (int y = 0; y < lg.ny; ++y)
      for (int x = 0; x < lg.nx; ++x) {
        Real rho = 0;
        Vec3 u{0, 0, 0};
        const Material& m = solver.materials()[solver.mask()(x, y, z)];
        if (is_pullable(m.cls)) {
          cell_macroscopic<D>(solver.f(), x, y, z, solver.collision(), rho, u);
        } else {
          rho = m.rho;
          u = m.u;
        }
        buf[k++] = rho;
        buf[k++] = u.x;
        buf[k++] = u.y;
        buf[k++] = u.z;
      }

  // Variable-size gatherv over the collective layer: receives are posted
  // up front on the root, so one slow rank cannot serialize the rest.
  const auto& d = solver.decomposition();
  std::vector<std::size_t> counts(static_cast<std::size_t>(comm.size()));
  std::size_t totalCount = 0;
  for (int r = 0; r < comm.size(); ++r) {
    counts[static_cast<std::size_t>(r)] =
        static_cast<std::size_t>(d.blockOf(r).volume()) * 4;
    totalCount += counts[static_cast<std::size_t>(r)];
  }
  coll::Collectives cs(comm);
  if (comm.rank() != root) {
    cs.gatherv<Real>(root, buf, counts, {});
    return;
  }
  std::vector<Real> all(totalCount);
  cs.gatherv<Real>(root, buf, counts, all);
  const Int3 g = d.globalSize();
  Grid gg(g.x, g.y, g.z);
  rhoOut = ScalarField(gg);
  uOut = VectorField(gg);
  std::size_t j = 0;
  for (int r = 0; r < comm.size(); ++r) {
    const Box3 block = d.blockOf(r);
    for (int z = block.lo.z; z < block.hi.z; ++z)
      for (int y = block.lo.y; y < block.hi.y; ++y)
        for (int x = block.lo.x; x < block.hi.x; ++x) {
          rhoOut(x, y, z) = all[j];
          uOut.set(x, y, z, {all[j + 1], all[j + 2], all[j + 3]});
          j += 4;
        }
  }
}

/// Gather to `root` and write one VTK file with density + velocity.
template <class D, class S>
void write_vtk_gathered(DistributedSolver<D, S>& solver, int root,
                        const std::string& path) {
  ScalarField rho;
  VectorField u;
  gather_macroscopic(solver, root, rho, u);
  if (solver.comm().rank() != root) return;
  io::VtkWriter vtk(rho.grid());
  vtk.addScalar("density", rho);
  vtk.addVector("velocity", u);
  vtk.write(path);
}

}  // namespace swlb::runtime
