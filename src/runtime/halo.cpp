#include "runtime/halo.hpp"

namespace swlb::runtime {

HaloExchange::HaloExchange(const Decomposition& decomp, int rank,
                           const Periodicity& periodic, const Grid& localGrid)
    : grid_(localGrid) {
  if (localGrid.halo != 1)
    throw Error("HaloExchange: only halo width 1 is supported");
  if (decomp.procGrid().z != 1)
    throw Error("HaloExchange: z axis must not be decomposed (paper's 2-D xy scheme)");

  const Int3 myCoords = decomp.coordsOf(rank);
  const int nx = localGrid.nx, ny = localGrid.ny, nz = localGrid.nz;

  for (int dy = -1; dy <= 1; ++dy)
    for (int dx = -1; dx <= 1; ++dx) {
      if (dx == 0 && dy == 0) continue;
      const int nRank = decomp.rankOf({myCoords.x + dx, myCoords.y + dy, myCoords.z},
                                      periodic.x, periodic.y, periodic.z);
      if (nRank < 0) continue;

      Neighbor n;
      n.rank = nRank;
      n.dx = dx;
      n.dy = dy;
      // Strips span the full z extent including the z halo so corner pulls
      // across the subdomain edge see wrapped/valid data.
      const int zLo = -1, zHi = nz + 1;
      auto xRange = [&](int d, bool send, int& lo, int& hi) {
        if (d == 0) {
          lo = 0;
          hi = nx;
        } else if (send) {
          lo = d < 0 ? 0 : nx - 1;
          hi = lo + 1;
        } else {
          lo = d < 0 ? -1 : nx;
          hi = lo + 1;
        }
      };
      auto yRange = [&](int d, bool send, int& lo, int& hi) {
        if (d == 0) {
          lo = 0;
          hi = ny;
        } else if (send) {
          lo = d < 0 ? 0 : ny - 1;
          hi = lo + 1;
        } else {
          lo = d < 0 ? -1 : ny;
          hi = lo + 1;
        }
      };
      xRange(dx, true, n.sendBox.lo.x, n.sendBox.hi.x);
      yRange(dy, true, n.sendBox.lo.y, n.sendBox.hi.y);
      n.sendBox.lo.z = zLo;
      n.sendBox.hi.z = zHi;
      xRange(dx, false, n.recvBox.lo.x, n.recvBox.hi.x);
      yRange(dy, false, n.recvBox.lo.y, n.recvBox.hi.y);
      n.recvBox.lo.z = zLo;
      n.recvBox.hi.z = zHi;
      // The message I receive from the neighbour in direction (dx, dy) was
      // sent by it toward (-dx, -dy) from its own point of view... which
      // is the direction from it to me; its tag is tagOf of *its* send
      // direction = tagOf(-dx, -dy).
      n.sendTag = tagOf(dx, dy);
      n.recvTag = tagOf(-dx, -dy);
      if (dx != 0) decomposedX_ = true;
      if (dy != 0) decomposedY_ = true;
      neighbors_.push_back(std::move(n));
    }
}

void HaloExchange::exchangeMask(Comm& comm, MaskField& mask) {
  for (auto& n : neighbors_) {
    n.recvBuf.resize(static_cast<std::size_t>(n.recvBox.volume()));
    n.pending = comm.irecv(n.rank, n.recvTag, n.recvBuf.data(),
                           n.recvBuf.size());
  }
  for (auto& n : neighbors_) {
    n.sendBuf.resize(static_cast<std::size_t>(n.sendBox.volume()));
    std::size_t k = 0;
    const Box3& box = n.sendBox;
    for (int z = box.lo.z; z < box.hi.z; ++z)
      for (int y = box.lo.y; y < box.hi.y; ++y)
        for (int x = box.lo.x; x < box.hi.x; ++x)
          n.sendBuf[k++] = mask(x, y, z);
    comm.isend(n.rank, n.sendTag, n.sendBuf.data(), n.sendBuf.size());
  }
  for (auto& n : neighbors_) {
    n.pending.wait();
    std::size_t k = 0;
    const Box3& box = n.recvBox;
    for (int z = box.lo.z; z < box.hi.z; ++z)
      for (int y = box.lo.y; y < box.hi.y; ++y)
        for (int x = box.lo.x; x < box.hi.x; ++x)
          mask(x, y, z) = n.recvBuf[k++];
  }
}

Box3 HaloExchange::innerBox() const {
  Box3 b = grid_.interior();
  if (decomposedX_) {
    b.lo.x += 1;
    b.hi.x -= 1;
  }
  if (decomposedY_) {
    b.lo.y += 1;
    b.hi.y -= 1;
  }
  return b;
}

std::vector<Box3> HaloExchange::boundaryShell() const {
  std::vector<Box3> shell;
  const Box3 inner = innerBox();
  const Box3 full = grid_.interior();
  if (decomposedX_) {
    shell.push_back({{full.lo.x, full.lo.y, full.lo.z}, {inner.lo.x, full.hi.y, full.hi.z}});
    shell.push_back({{inner.hi.x, full.lo.y, full.lo.z}, {full.hi.x, full.hi.y, full.hi.z}});
  }
  if (decomposedY_) {
    shell.push_back({{inner.lo.x, full.lo.y, full.lo.z}, {inner.hi.x, inner.lo.y, full.hi.z}});
    shell.push_back({{inner.lo.x, inner.hi.y, full.lo.z}, {inner.hi.x, full.hi.y, full.hi.z}});
  }
  // Drop empty boxes (tiny blocks).
  std::erase_if(shell, [](const Box3& b) { return b.empty(); });
  return shell;
}

std::size_t HaloExchange::bytesPerExchange(int q, std::size_t elemBytes) const {
  std::size_t bytes = 0;
  for (const auto& n : neighbors_)
    bytes += static_cast<std::size_t>(n.sendBox.volume()) * q * elemBytes;
  return bytes;
}

}  // namespace swlb::runtime
