// Fault-tolerant runtime: distributed checkpoint generations and a
// rollback-recovery driver (paper §IV-B: "a checkpoint and restart
// controller which enables fast recover from system-level or hardware
// fault").
//
// Failure model: fail-stop with warm respawn.  A failure (injected rank
// kill, receive timeout from a lost message, or a NaN / mass-divergence
// guard trip) aborts the current step on the affected rank; the per-step
// consensus vote (allreduce Max over local failure flags) makes the abort
// collective, survivors drain stale halo traffic, and every rank rolls
// back to the newest *complete* checkpoint generation on disk before
// resuming.  Because checkpoints restore the populations, step counter and
// A-B parity bit-exactly, a recovered run is bit-identical to an
// uninterrupted one.
//
// Checkpoint generation layout (all writes atomic tmp-then-rename):
//   <prefix>.g<step>.rank<r>.ckpt   one checksummed block per rank
//   <prefix>.g<step>.manifest      root-written commit record (appears
//                                  only after a barrier proves all blocks
//                                  landed; a generation without a valid
//                                  manifest + full set of blocks is
//                                  ignored on restore)
#pragma once

#include <cstdio>
#include <deque>
#include <filesystem>
#include <functional>
#include <string>
#include <vector>

#include "coll/coll.hpp"
#include "runtime/parallel_io.hpp"

namespace swlb::runtime {

struct DistributedCheckpointPolicy {
  std::uint64_t interval = 50;  ///< save every this many steps
  int keep = 2;                 ///< retain the newest K generations
};

/// Rotated multi-generation group checkpoints for a DistributedSolver.
/// Every rank writes its own block; the root's manifest commits a
/// generation.  Construction scans the disk so recovery works across real
/// process restarts, not just within one process.
template <class D, class S = Real>
class DistributedCheckpointController {
 public:
  DistributedCheckpointController(Comm& comm, std::string prefix,
                                  const DistributedCheckpointPolicy& policy)
      : comm_(comm), prefix_(std::move(prefix)), policy_(policy) {
    if (policy_.interval == 0)
      throw Error("DistributedCheckpointPolicy: interval must be > 0");
    if (policy_.keep < 1)
      throw Error("DistributedCheckpointPolicy: keep must be >= 1");
    generations_ = scanGenerations();
  }

  std::string generationPrefix(std::uint64_t step) const {
    return prefix_ + ".g" + std::to_string(step);
  }

  /// Steps of the generations currently retained (oldest first).
  const std::deque<std::uint64_t>& generations() const { return generations_; }

  /// Save a generation at the solver's current step and rotate old ones
  /// out.  Collective.
  void save(DistributedSolver<D, S>& solver) {
    const std::uint64_t step = solver.stepsDone();
    save_group_checkpoint(solver, generationPrefix(step));
    if (generations_.empty() || generations_.back() != step)
      generations_.push_back(step);
    while (static_cast<int>(generations_.size()) > policy_.keep) {
      removeGeneration(generations_.front());
      generations_.pop_front();
    }
  }

  /// Save when the step count hits a multiple of the interval.  Collective
  /// when due (and only then).  Returns true when a generation was written.
  bool maybeSave(DistributedSolver<D, S>& solver) {
    const std::uint64_t step = solver.stepsDone();
    if (step == 0 || step % policy_.interval != 0) return false;
    if (!generations_.empty() && generations_.back() == step) return false;
    save(solver);
    return true;
  }

  /// Roll every rank back to the newest generation whose manifest AND all
  /// rank blocks validate on every rank (allreduce Min agreement per
  /// candidate, so all ranks restore the same generation or none).
  /// Collective; throws when no complete generation exists.
  std::uint64_t restoreNewestComplete(DistributedSolver<D, S>& solver) {
    std::deque<std::uint64_t> candidates = scanGenerations();
    coll::Collectives cs(comm_);
    for (auto it = candidates.rbegin(); it != candidates.rend(); ++it) {
      const std::uint64_t step = *it;
      std::int64_t ok = 1;
      try {
        const io::CheckpointMeta meta = io::read_checkpoint_meta(
            group_checkpoint_path(generationPrefix(step), comm_.rank()));
        if (meta.steps != step) ok = 0;
      } catch (const Error&) {
        ok = 0;
      }
      if (cs.allreduce_value<std::int64_t>(ok, coll::Op::Min) < 1) continue;
      load_group_checkpoint(solver, generationPrefix(step));
      generations_ = candidates;
      while (!generations_.empty() && generations_.back() > step)
        generations_.pop_back();
      return step;
    }
    throw Error("DistributedCheckpointController: no complete checkpoint "
                "generation under '" + prefix_ + "'");
  }

  /// Delete every retained generation (end of campaign).  Collective.
  void clear() {
    comm_.barrier();
    for (const std::uint64_t step : generations_) removeGeneration(step);
    generations_.clear();
    comm_.barrier();
  }

 private:
  /// Committed (manifest present) generations on disk, oldest first.  All
  /// ranks see the same quiescent filesystem when this runs (post-vote or
  /// at construction), so the scan agrees across ranks.
  std::deque<std::uint64_t> scanGenerations() const {
    namespace fs = std::filesystem;
    const fs::path full(prefix_);
    const fs::path dir =
        full.has_parent_path() ? full.parent_path() : fs::path(".");
    const std::string base = full.filename().string() + ".g";
    const std::string suffix = ".manifest";
    std::deque<std::uint64_t> found;
    std::error_code ec;
    for (const auto& entry : fs::directory_iterator(dir, ec)) {
      const std::string name = entry.path().filename().string();
      if (name.size() <= base.size() + suffix.size() ||
          name.rfind(base, 0) != 0 ||
          name.substr(name.size() - suffix.size()) != suffix)
        continue;
      const std::string digits =
          name.substr(base.size(), name.size() - base.size() - suffix.size());
      if (digits.empty() ||
          digits.find_first_not_of("0123456789") != std::string::npos)
        continue;
      found.push_back(std::stoull(digits));
    }
    std::sort(found.begin(), found.end());
    return found;
  }

  /// Each rank deletes its own block; root deletes the manifest first so a
  /// half-deleted generation is never mistaken for a complete one.
  void removeGeneration(std::uint64_t step) {
    const std::string gp = generationPrefix(step);
    if (comm_.rank() == 0)
      std::remove(group_manifest_path(gp).c_str());
    std::remove(group_checkpoint_path(gp, comm_.rank()).c_str());
  }

  Comm& comm_;
  std::string prefix_;
  DistributedCheckpointPolicy policy_;
  std::deque<std::uint64_t> generations_;
};

template <class D, class S = Real>
struct ResilientRunnerConfig {
  DistributedCheckpointPolicy checkpoint;
  /// Receive deadline while the runner drives the solver: a lost halo
  /// message surfaces as TimeoutError within this many seconds instead of
  /// deadlocking the world.
  double recvTimeout = 2.0;
  /// Check NaN and global mass conservation every this many steps
  /// (0 disables the guard).
  std::uint64_t guardInterval = 0;
  /// Relative tolerance on global mass drift before the guard trips.
  double massTolerance = 1e-8;
  /// Give up (throw) after this many rollbacks.
  int maxRecoveries = 8;
  /// Test hook, called on every rank right before each step attempt
  /// (e.g. to poke a NaN into the field and exercise the guard).
  std::function<void(DistributedSolver<D, S>&, std::uint64_t)> beforeStep;
};

/// Drives a DistributedSolver to a target step, detecting failures and
/// recovering by collective rollback to the newest complete checkpoint
/// generation.  Call run() from every rank.
template <class D, class S = Real>
class ResilientRunner {
 public:
  struct Report {
    std::uint64_t recoveries = 0;       ///< rollbacks performed
    std::uint64_t lastRestoredStep = 0; ///< step of the newest rollback target
    std::uint64_t drainedMessages = 0;  ///< stale messages discarded (this rank)
  };

  ResilientRunner(DistributedSolver<D, S>& solver, std::string prefix,
                  const ResilientRunnerConfig<D, S>& cfg = {})
      : solver_(solver), cfg_(cfg),
        ckpt_(solver.comm(), std::move(prefix), cfg.checkpoint) {}

  DistributedCheckpointController<D, S>& checkpoints() { return ckpt_; }

  /// Run until solver.stepsDone() == targetStep.  Collective.
  Report run(std::uint64_t targetStep) {
    Comm& comm = solver_.comm();
    const double oldTimeout = comm.recvTimeout();
    comm.setRecvTimeout(cfg_.recvTimeout);
    Report rep;
    // Baseline generation: a failure before the first periodic checkpoint
    // must still have a rollback target.
    if (ckpt_.generations().empty()) ckpt_.save(solver_);
    const bool guard = cfg_.guardInterval > 0;
    const double mass0 =
        guard ? comm.allreduce(solver_.localMass(), Comm::Op::Sum) : 0;

    while (solver_.stepsDone() < targetStep) {
      int fail = 0;
      const bool guardDue =
          guard && (solver_.stepsDone() + 1) % cfg_.guardInterval == 0;
      try {
        if (cfg_.beforeStep) cfg_.beforeStep(solver_, solver_.stepsDone());
        comm.faultTick(solver_.stepsDone());
        solver_.step();
        if (guardDue && !solver_.populationsFinite()) fail = 1;
      } catch (const RankKilledError&) {
        fail = 1;
      } catch (const TimeoutError&) {
        fail = 1;
      }
      // Consensus vote: any rank's failure aborts the step everywhere.
      // This is the only collective a failed rank still participates in,
      // so collectives stay aligned across ranks.  A rank that just burned
      // its whole receive deadline discovering a lost message enters the
      // vote up to recvTimeout late; the vote (messages like any other
      // collective) gets a proportionally larger deadline so the abort
      // consensus cannot itself time out on the punctual ranks.
      comm.setRecvTimeout(4 * cfg_.recvTimeout);
      coll::Collectives vote(comm);
      bool anyFail = vote.allreduce_value<std::int64_t>(fail, coll::Op::Max) > 0;
      comm.setRecvTimeout(cfg_.recvTimeout);
      if (!anyFail && guardDue) {
        const double mass = comm.allreduce(solver_.localMass(), Comm::Op::Sum);
        // NaN mass also fails this comparison, collapsing both guard
        // conditions into one agreed-on verdict.
        if (!(std::abs(mass - mass0) <=
              cfg_.massTolerance * std::max(std::abs(mass0), 1.0)))
          anyFail = true;
      }
      if (anyFail) {
        if (static_cast<int>(++rep.recoveries) > cfg_.maxRecoveries)
          throw Error("ResilientRunner: giving up after " +
                      std::to_string(rep.recoveries - 1) + " recoveries");
        // All ranks are past the vote: every message of the aborted step
        // is already in some mailbox, so draining now removes exactly the
        // stale traffic.  Barrier before restore so no rank resumes
        // sending while a neighbour is still draining.
        rep.drainedMessages += comm.drainMailbox();
        comm.barrier();
        rep.lastRestoredStep = ckpt_.restoreNewestComplete(solver_);
        continue;
      }
      ckpt_.maybeSave(solver_);
    }
    comm.setRecvTimeout(oldTimeout);
    return rep;
  }

 private:
  DistributedSolver<D, S>& solver_;
  ResilientRunnerConfig<D, S> cfg_;
  DistributedCheckpointController<D, S> ckpt_;
};

}  // namespace swlb::runtime
