// Fault-tolerant runtime: distributed checkpoint generations and a
// rollback-recovery driver (paper §IV-B: "a checkpoint and restart
// controller which enables fast recover from system-level or hardware
// fault").
//
// Failure model: an escalation ladder (DESIGN.md §10).
//   1. A delayed message is absorbed by bounded recv retry with backoff
//      (FaultConfig::recvRetries) — no rollback at all.
//   2. A transient failure (injected rank kill with respawn, receive
//      timeout from a lost message, or a NaN / mass-divergence guard trip)
//      aborts the current step on the affected rank; the per-step
//      consensus vote (allreduce Max over local failure flags) makes the
//      abort collective, survivors drain stale halo traffic, and every
//      rank rolls back to the newest *complete* checkpoint generation on
//      disk.  Checkpoints restore populations, step counter and A-B parity
//      bit-exactly, so a recovered run is bit-identical to an
//      uninterrupted one.
//   3. When the vote itself times out — a rank is not answering at all —
//      survivors run the message-based liveness probe (retry + backoff per
//      FaultConfig::probe*), shrink the communicator onto the survivors
//      (Comm::shrink), rebuild the solver on a fresh N-k-rank
//      decomposition, and splice-restore the newest complete generation
//      (rank-count-independent, load_group_checkpoint_elastic).  The
//      post-shrink trajectory is bit-identical to a fresh N-k-rank run
//      restored from the same generation.
//
// Checkpoint generation layout (all writes atomic tmp-then-rename):
//   <prefix>.g<step>.rank<r>.ckpt   one checksummed block per rank
//   <prefix>.g<step>.manifest      root-written commit record (appears
//                                  only after a barrier proves all blocks
//                                  landed; a generation without a valid
//                                  manifest + full set of blocks is
//                                  ignored on restore)
#pragma once

#include <chrono>
#include <cstdio>
#include <deque>
#include <filesystem>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "coll/coll.hpp"
#include "runtime/parallel_io.hpp"

namespace swlb::runtime {

struct DistributedCheckpointPolicy {
  std::uint64_t interval = 50;  ///< save every this many steps
  int keep = 2;                 ///< retain the newest K generations
};

/// Failure-handling knobs of the resilient driver (DESIGN.md §10).
struct FaultConfig {
  /// Receive deadline while the runner drives the solver: a lost halo
  /// message surfaces as TimeoutError instead of deadlocking the world.
  double recvTimeout = 2.0;
  /// Bounded retry of step receives before declaring the step failed: one
  /// delayed message costs `recvTimeout * (backoff^1 + ...)` extra wait,
  /// not a rollback.  0 escalates straight to the vote (pre-retry
  /// behaviour).
  int recvRetries = 1;
  double recvBackoff = 2.0;
  /// Liveness-probe ladder after a vote timeout: a peer is declared dead
  /// only after 1 + probeRetries unanswered detection rounds with
  /// exponentially widening windows.
  double probeTimeout = 0.25;
  int probeRetries = 3;
  double probeBackoff = 2.0;
  /// How many shrink-to-fit recoveries are allowed before giving up;
  /// 0 (default) keeps the strict fail-stop-with-respawn model.
  int maxShrinks = 0;

  /// Worst-case wall time a healthy-but-slow rank may spend inside one
  /// step's receive retries — the vote deadline must out-wait it.
  double stallWindow() const {
    double w = 0, t = recvTimeout;
    for (int i = 0; i <= recvRetries; ++i, t *= recvBackoff) w += t;
    return w;
  }
};

/// Rotated multi-generation group checkpoints for a DistributedSolver.
/// Every rank writes its own block; the root's manifest commits a
/// generation.  Construction is collective: it garbage-collects crash
/// debris and scans the disk (so recovery works across real process
/// restarts, not just within one process), and barriers so no rank can
/// start writing a new generation while a peer is still sweeping.
template <class D, class S = Real>
class DistributedCheckpointController {
 public:
  DistributedCheckpointController(Comm& comm, std::string prefix,
                                  const DistributedCheckpointPolicy& policy)
      : comm_(comm), prefix_(std::move(prefix)), policy_(policy) {
    if (policy_.interval == 0)
      throw Error("DistributedCheckpointPolicy: interval must be > 0");
    if (policy_.keep < 1)
      throw Error("DistributedCheckpointPolicy: keep must be >= 1");
    garbageCollect();
    comm_.barrier();
    generations_ = scanGenerations();
  }

  std::string generationPrefix(std::uint64_t step) const {
    return prefix_ + ".g" + std::to_string(step);
  }

  /// Steps of the generations currently retained (oldest first).
  const std::deque<std::uint64_t>& generations() const { return generations_; }

  /// Save a generation at the solver's current step and rotate old ones
  /// out.  Collective.
  void save(DistributedSolver<D, S>& solver) {
    const std::uint64_t step = solver.stepsDone();
    save_group_checkpoint(solver, generationPrefix(step));
    if (generations_.empty() || generations_.back() != step)
      generations_.push_back(step);
    while (static_cast<int>(generations_.size()) > policy_.keep) {
      removeGeneration(generations_.front());
      generations_.pop_front();
    }
  }

  /// Save when the step count hits a multiple of the interval.  Collective
  /// when due (and only then).  Returns true when a generation was written.
  bool maybeSave(DistributedSolver<D, S>& solver) {
    const std::uint64_t step = solver.stepsDone();
    if (step == 0 || step % policy_.interval != 0) return false;
    if (!generations_.empty() && generations_.back() == step) return false;
    save(solver);
    return true;
  }

  /// Roll every rank back to the newest generation whose manifest AND all
  /// of its blocks validate on every rank (allreduce Min agreement per
  /// candidate, so all ranks restore the same generation or none).  The
  /// block headers are validated *striped over the manifest's old rank
  /// count* — which may exceed the live one after a shrink — and the load
  /// itself is elastic: exact reload on a matching layout, splice-restore
  /// onto a different one.  Collective; throws when no complete generation
  /// exists.
  std::uint64_t restoreNewestComplete(DistributedSolver<D, S>& solver) {
    garbageCollect();
    std::deque<std::uint64_t> candidates = scanGenerations();
    coll::Collectives cs(comm_);
    for (auto it = candidates.rbegin(); it != candidates.rend(); ++it) {
      const std::uint64_t step = *it;
      const std::int64_t ok = validateGeneration(step) ? 1 : 0;
      if (cs.allreduce_value<std::int64_t>(ok, coll::Op::Min) < 1) continue;
      load_group_checkpoint_elastic(solver, generationPrefix(step));
      generations_ = candidates;
      while (!generations_.empty() && generations_.back() > step)
        generations_.pop_back();
      return step;
    }
    throw Error("DistributedCheckpointController: no complete checkpoint "
                "generation under '" + prefix_ + "'");
  }

  /// Delete every retained generation (end of campaign).  Collective.
  void clear() {
    comm_.barrier();
    for (const std::uint64_t step : generations_) removeGeneration(step);
    generations_.clear();
    comm_.barrier();
  }

  /// Delete crash debris under the prefix: stray `.tmp` files (atomic
  /// writes that never renamed) and rank blocks of generations that never
  /// committed a manifest.  Runs on every rank at construction and before
  /// each restore scan — the filesystem is quiescent at those points, and
  /// concurrent deletion of the same file is harmless (ENOENT ignored).
  /// Returns the number of files this rank removed.
  std::size_t garbageCollect() const {
    namespace fs = std::filesystem;
    const fs::path full(prefix_);
    const fs::path dir =
        full.has_parent_path() ? full.parent_path() : fs::path(".");
    const std::string base = full.filename().string() + ".g";
    const std::deque<std::uint64_t> committed = scanGenerations();
    std::size_t removed = 0;
    std::error_code ec;
    std::vector<fs::path> doomed;
    for (const auto& entry : fs::directory_iterator(dir, ec)) {
      const std::string name = entry.path().filename().string();
      if (name.rfind(base, 0) != 0) continue;
      if (name.size() > 4 && name.substr(name.size() - 4) == ".tmp") {
        doomed.push_back(entry.path());
        continue;
      }
      // "<base><digits>.rank<k>.ckpt" without a committed manifest.
      const std::size_t dot = name.find('.', base.size());
      if (dot == std::string::npos || dot == base.size()) continue;
      const std::string digits = name.substr(base.size(), dot - base.size());
      if (digits.find_first_not_of("0123456789") != std::string::npos) continue;
      if (name.compare(dot, 5, ".rank") != 0) continue;
      const std::uint64_t step = std::stoull(digits);
      if (std::find(committed.begin(), committed.end(), step) ==
          committed.end())
        doomed.push_back(entry.path());
    }
    for (const fs::path& p : doomed)
      if (fs::remove(p, ec)) ++removed;
    if (removed > 0) obs::count("resilience.gc.files_removed", removed);
    return removed;
  }

 private:
  /// One rank's share of validating a candidate generation: the manifest
  /// plus every block header congruent with it, striped over the *old*
  /// rank count so shrunken worlds still cover all blocks.
  bool validateGeneration(std::uint64_t step) const {
    try {
      const GroupManifest m = read_group_manifest(generationPrefix(step));
      if (m.steps != step) return false;
      for (int b = comm_.rank(); b < m.ranks; b += comm_.size()) {
        const io::CheckpointMeta meta = io::read_checkpoint_meta(
            group_checkpoint_path(generationPrefix(step), b));
        const Box3& blk = m.blocks[static_cast<std::size_t>(b)];
        if (meta.steps != step ||
            meta.interior.x != blk.hi.x - blk.lo.x ||
            meta.interior.y != blk.hi.y - blk.lo.y ||
            meta.interior.z != blk.hi.z - blk.lo.z)
          return false;
      }
      return true;
    } catch (const Error&) {
      return false;
    }
  }

  /// Committed (manifest present) generations on disk, oldest first.  All
  /// ranks see the same quiescent filesystem when this runs (post-vote or
  /// at construction), so the scan agrees across ranks.
  std::deque<std::uint64_t> scanGenerations() const {
    namespace fs = std::filesystem;
    const fs::path full(prefix_);
    const fs::path dir =
        full.has_parent_path() ? full.parent_path() : fs::path(".");
    const std::string base = full.filename().string() + ".g";
    const std::string suffix = ".manifest";
    std::deque<std::uint64_t> found;
    std::error_code ec;
    for (const auto& entry : fs::directory_iterator(dir, ec)) {
      const std::string name = entry.path().filename().string();
      if (name.size() <= base.size() + suffix.size() ||
          name.rfind(base, 0) != 0 ||
          name.substr(name.size() - suffix.size()) != suffix)
        continue;
      const std::string digits =
          name.substr(base.size(), name.size() - base.size() - suffix.size());
      if (digits.empty() ||
          digits.find_first_not_of("0123456789") != std::string::npos)
        continue;
      found.push_back(std::stoull(digits));
    }
    std::sort(found.begin(), found.end());
    return found;
  }

  /// Rotate a generation off disk.  The manifest records how many blocks
  /// it has (possibly more than the live rank count after a shrink); each
  /// rank deletes a stripe, and the root deletes the manifest first so a
  /// half-deleted generation is never mistaken for a complete one.  Blocks
  /// a racing rank already saw the manifest vanish for are swept by the
  /// next garbageCollect.
  void removeGeneration(std::uint64_t step) {
    const std::string gp = generationPrefix(step);
    int blocks = comm_.size();
    try {
      blocks = std::max(blocks, read_group_manifest(gp).ranks);
    } catch (const Error&) {
    }
    if (comm_.rank() == 0)
      std::remove(group_manifest_path(gp).c_str());
    for (int b = comm_.rank(); b < blocks; b += comm_.size())
      std::remove(group_checkpoint_path(gp, b).c_str());
  }

  Comm& comm_;
  std::string prefix_;
  DistributedCheckpointPolicy policy_;
  std::deque<std::uint64_t> generations_;
};

template <class D, class S = Real>
struct ResilientRunnerConfig {
  DistributedCheckpointPolicy checkpoint;
  /// Timeouts, retries and the shrink budget (DESIGN.md §10).
  FaultConfig fault;
  /// Check NaN and global mass conservation every this many steps
  /// (0 disables the guard).
  std::uint64_t guardInterval = 0;
  /// Relative tolerance on global mass drift before the guard trips.
  double massTolerance = 1e-8;
  /// Give up (throw) after this many rollbacks.
  int maxRecoveries = 8;
  /// Factory rebuilding a fully initialized solver (mask, materials,
  /// initial fields) for the *current* communicator — required for
  /// shrink-to-fit recovery, where survivors re-decompose at N-k ranks
  /// before the splice restore overwrites the payload state.
  std::function<std::unique_ptr<DistributedSolver<D, S>>(Comm&)> rebuild;
  /// Test hook, called on every rank right before each step attempt
  /// (e.g. to poke a NaN into the field and exercise the guard).
  std::function<void(DistributedSolver<D, S>&, std::uint64_t)> beforeStep;
};

/// Drives a DistributedSolver to a target step, detecting failures and
/// recovering along the escalation ladder: recv retry -> collective
/// rollback -> shrink-to-fit (when cfg.fault.maxShrinks > 0 and
/// cfg.rebuild is set).  Call run() from every rank.  After a shrink the
/// original solver object is stale — use solver() for the live one.
template <class D, class S = Real>
class ResilientRunner {
 public:
  struct Report {
    std::uint64_t recoveries = 0;       ///< recoveries (rollbacks + shrinks)
    std::uint64_t lastRestoredStep = 0; ///< step of the newest rollback target
    std::uint64_t drainedMessages = 0;  ///< stale messages discarded (this rank)
    std::uint64_t shrinks = 0;          ///< shrink-to-fit recoveries
    std::uint64_t ranksLost = 0;        ///< ranks permanently lost
  };

  ResilientRunner(DistributedSolver<D, S>& solver, std::string prefix,
                  const ResilientRunnerConfig<D, S>& cfg = {})
      : solver_(&solver), cfg_(cfg),
        ckpt_(solver.comm(), std::move(prefix), cfg.checkpoint) {}

  DistributedCheckpointController<D, S>& checkpoints() { return ckpt_; }

  /// The solver currently driven: the constructor argument until a shrink
  /// replaces it with a rebuilt one on the compacted communicator.
  DistributedSolver<D, S>& solver() { return *solver_; }

  /// Run until solver().stepsDone() == targetStep.  Collective.  On a rank
  /// killed permanently the pending RankKilledError is rethrown (the
  /// thread must unwind); survivors shrink around it and keep running.
  Report run(std::uint64_t targetStep) {
    Comm& comm = solver_->comm();
    const double oldTimeout = comm.recvTimeout();
    const int oldRetries = comm.recvRetries();
    const double oldBackoff = comm.recvRetryBackoff();
    comm.setRecvTimeout(cfg_.fault.recvTimeout);
    comm.setRecvRetry(cfg_.fault.recvRetries, cfg_.fault.recvBackoff);
    Report rep;
    // Baseline generation: a failure before the first periodic checkpoint
    // must still have a rollback target.
    if (ckpt_.generations().empty()) ckpt_.save(*solver_);
    const bool guard = cfg_.guardInterval > 0;
    const double mass0 =
        guard ? comm.allreduce(solver_->localMass(), Comm::Op::Sum) : 0;

    while (solver_->stepsDone() < targetStep) {
      int fail = 0;
      const bool guardDue =
          guard && (solver_->stepsDone() + 1) % cfg_.guardInterval == 0;
      try {
        if (cfg_.beforeStep) cfg_.beforeStep(*solver_, solver_->stepsDone());
        comm.faultTick(solver_->stepsDone());
        solver_->step();
        if (guardDue && !solver_->populationsFinite()) fail = 1;
      } catch (const RankKilledError& e) {
        // A permanent kill is this rank's death, not a recoverable step
        // failure: unwind the thread, survivors will shrink around us.
        if (e.permanent()) throw;
        fail = 1;
      } catch (const TimeoutError&) {
        fail = 1;
      } catch (const CorruptionError&) {
        fail = 1;
      }
      // Consensus vote: any rank's failure aborts the step everywhere.
      // This is the only collective a failed rank still participates in,
      // so collectives stay aligned across ranks.  A rank that just burned
      // its whole receive-retry ladder discovering a lost message enters
      // the vote up to stallWindow() late; the vote gets a proportionally
      // larger deadline (and no retries of its own) so the abort consensus
      // cannot itself time out on punctual ranks — unless a peer is not
      // answering at all, which escalates to the liveness probe below.
      bool anyFail = false, voteLost = false;
      comm.setRecvTimeout(4 * cfg_.fault.stallWindow());
      comm.setRecvRetry(0, cfg_.fault.recvBackoff);
      try {
        coll::Collectives vote(comm);
        anyFail = vote.allreduce_value<std::int64_t>(fail, coll::Op::Max) > 0;
      } catch (const TimeoutError&) {
        voteLost = true;
      }
      comm.setRecvTimeout(cfg_.fault.recvTimeout);
      comm.setRecvRetry(cfg_.fault.recvRetries, cfg_.fault.recvBackoff);

      if (voteLost) {
        // Rung 3 of the ladder: the vote itself broke down, so some peer
        // may be permanently gone.  Probe with retry-and-backoff before
        // declaring anyone dead; an all-alive verdict downgrades this to
        // a transient failure (rung 2).
        const auto tFail = std::chrono::steady_clock::now();
        HealthConfig hc;
        hc.timeout = cfg_.fault.probeTimeout;
        hc.retries = cfg_.fault.probeRetries;
        hc.backoff = cfg_.fault.probeBackoff;
        const std::vector<std::uint8_t> alive = comm.probeLiveness(hc);
        std::uint64_t lost = 0;
        for (int r = 0; r < comm.size(); ++r)
          if (!alive[static_cast<std::size_t>(comm.worldRankOf(r))]) ++lost;
        if (lost == 0) {
          anyFail = true;  // everyone answered: treat as transient
        } else {
          if (static_cast<int>(rep.shrinks) >= cfg_.fault.maxShrinks)
            throw Error(
                "ResilientRunner: permanent rank loss but the shrink budget "
                "is exhausted (fault.maxShrinks = " +
                std::to_string(cfg_.fault.maxShrinks) + ")");
          if (!cfg_.rebuild)
            throw Error(
                "ResilientRunner: shrink recovery requires cfg.rebuild");
          obs::TraceScope shrinkScope("resilience.shrink");
          comm.shrink(alive);
          ++rep.shrinks;
          rep.ranksLost += lost;
          ++rep.recoveries;
          obs::count("resilience.shrink.count");
          obs::count("resilience.shrink.ranks_lost", lost);
          // Survivors are synchronized by the probe's confirmation round;
          // barrier again on the shrunken communicator before the rebuild
          // emits any user-tag traffic (a peer may still be draining).
          comm.barrier();
          owned_ = cfg_.rebuild(comm);
          if (!owned_)
            throw Error("ResilientRunner: cfg.rebuild returned null");
          solver_ = owned_.get();
          rep.lastRestoredStep = ckpt_.restoreNewestComplete(*solver_);
          obs::observe("resilience.downtime_seconds",
                       std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - tFail)
                           .count());
          continue;
        }
      }

      if (!anyFail && guardDue) {
        const double mass = comm.allreduce(solver_->localMass(), Comm::Op::Sum);
        // NaN mass also fails this comparison, collapsing both guard
        // conditions into one agreed-on verdict.  The reduction order
        // changes with the rank count, so the tolerance (not bit equality)
        // is what makes this verdict stable across shrinks.
        if (!(std::abs(mass - mass0) <=
              cfg_.massTolerance * std::max(std::abs(mass0), 1.0)))
          anyFail = true;
      }
      if (anyFail) {
        const auto tFail = std::chrono::steady_clock::now();
        if (static_cast<int>(++rep.recoveries) > cfg_.maxRecoveries)
          throw Error("ResilientRunner: giving up after " +
                      std::to_string(rep.recoveries - 1) + " recoveries");
        // All ranks are past the vote: every message of the aborted step
        // is already in some mailbox, so draining now removes exactly the
        // stale traffic.  Barrier before restore so no rank resumes
        // sending while a neighbour is still draining.
        rep.drainedMessages += comm.drainMailbox();
        comm.barrier();
        rep.lastRestoredStep = ckpt_.restoreNewestComplete(*solver_);
        obs::observe("resilience.downtime_seconds",
                     std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - tFail)
                         .count());
        continue;
      }
      ckpt_.maybeSave(*solver_);
    }
    comm.setRecvTimeout(oldTimeout);
    comm.setRecvRetry(oldRetries, oldBackoff);
    return rep;
  }

 private:
  DistributedSolver<D, S>* solver_;           ///< live solver (never null)
  std::unique_ptr<DistributedSolver<D, S>> owned_;  ///< post-shrink rebuild
  ResilientRunnerConfig<D, S> cfg_;
  DistributedCheckpointController<D, S> ckpt_;
};

}  // namespace swlb::runtime
