#include "runtime/patches.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace swlb::runtime {

namespace {

/// Interleave the low 32 bits of x and y (x in the even bit positions):
/// the Morton / Z-order key over patch-grid coordinates.  Consecutive
/// keys are spatially close, so contiguous curve segments make compact
/// rank territories with short inter-rank borders.
std::uint64_t mortonKey(std::uint32_t x, std::uint32_t y) {
  auto spread = [](std::uint64_t v) {
    v &= 0xffffffffull;
    v = (v | (v << 16)) & 0x0000ffff0000ffffull;
    v = (v | (v << 8)) & 0x00ff00ff00ff00ffull;
    v = (v | (v << 4)) & 0x0f0f0f0f0f0f0f0full;
    v = (v | (v << 2)) & 0x3333333333333333ull;
    v = (v | (v << 1)) & 0x5555555555555555ull;
    return v;
  };
  return spread(x) | (spread(y) << 1);
}

}  // namespace

PatchLayout::PatchLayout(const Int3& global, const Int3& patchGrid)
    : decomp_(global, patchGrid) {
  if (patchGrid.z != 1)
    throw Error("PatchLayout: patch grid must keep z whole (xy scheme)");
  order_.resize(static_cast<std::size_t>(patchCount()));
  for (int p = 0; p < patchCount(); ++p)
    order_[static_cast<std::size_t>(p)] = p;
  std::sort(order_.begin(), order_.end(), [&](int a, int b) {
    const Int3 ca = decomp_.coordsOf(a);
    const Int3 cb = decomp_.coordsOf(b);
    const std::uint64_t ka =
        mortonKey(static_cast<std::uint32_t>(ca.x),
                  static_cast<std::uint32_t>(ca.y));
    const std::uint64_t kb =
        mortonKey(static_cast<std::uint32_t>(cb.x),
                  static_cast<std::uint32_t>(cb.y));
    return ka != kb ? ka < kb : a < b;
  });
}

std::vector<double> PatchLayout::fluidWeights(const MaskField& globalMask,
                                              const MaterialTable& mats) const {
  const Int3& g = decomp_.globalSize();
  if (globalMask.grid().nx != g.x || globalMask.grid().ny != g.y ||
      globalMask.grid().nz != g.z)
    throw Error("PatchLayout::fluidWeights: mask grid does not match global");
  std::vector<double> w(static_cast<std::size_t>(patchCount()), 0.0);
  for (int p = 0; p < patchCount(); ++p) {
    const Box3 b = decomp_.blockOf(p);
    long long n = 0;
    for (int z = b.lo.z; z < b.hi.z; ++z)
      for (int y = b.lo.y; y < b.hi.y; ++y)
        for (int x = b.lo.x; x < b.hi.x; ++x)
          if (is_streaming(mats[globalMask(x, y, z)].cls)) ++n;
    w[static_cast<std::size_t>(p)] = static_cast<double>(n);
  }
  return w;
}

std::vector<int> PatchLayout::assignBisect(const std::vector<double>& weights,
                                           int nranks) const {
  const int n = patchCount();
  if (nranks <= 0 || nranks > n)
    throw Error("PatchLayout::assignBisect: need 1..patchCount ranks");
  if (static_cast<int>(weights.size()) != n)
    throw Error("PatchLayout::assignBisect: weight vector size mismatch");
  std::vector<double> prefix(static_cast<std::size_t>(n) + 1, 0.0);
  for (int i = 0; i < n; ++i)
    prefix[static_cast<std::size_t>(i) + 1] =
        prefix[static_cast<std::size_t>(i)] +
        std::max(0.0, weights[static_cast<std::size_t>(order_[
                          static_cast<std::size_t>(i)])]);
  std::vector<int> owners(static_cast<std::size_t>(n), -1);
  // Recursive bisection over the curve: split the rank range in half and
  // find the curve cut whose left weight best matches the left half's
  // share, keeping at least one patch per rank on each side.
  auto rec = [&](auto&& self, int a, int b, int r0, int r1) -> void {
    if (r1 - r0 == 1) {
      for (int i = a; i < b; ++i)
        owners[static_cast<std::size_t>(order_[static_cast<std::size_t>(i)])] =
            r0;
      return;
    }
    const int rm = r0 + (r1 - r0) / 2;
    const double total = prefix[static_cast<std::size_t>(b)] -
                         prefix[static_cast<std::size_t>(a)];
    const double target = prefix[static_cast<std::size_t>(a)] +
                          total * static_cast<double>(rm - r0) / (r1 - r0);
    const int sLo = a + (rm - r0);
    const int sHi = b - (r1 - rm);
    int sBest = sLo;
    double best = std::numeric_limits<double>::max();
    for (int s = sLo; s <= sHi; ++s) {
      const double d = std::abs(prefix[static_cast<std::size_t>(s)] - target);
      if (d < best) {
        best = d;
        sBest = s;
      }
    }
    self(self, a, sBest, r0, rm);
    self(self, sBest, b, rm, r1);
  };
  rec(rec, 0, n, 0, nranks);
  return owners;
}

double PatchLayout::rankImbalance(const std::vector<int>& owners,
                                  const std::vector<double>& weights,
                                  int nranks) {
  std::vector<double> load(static_cast<std::size_t>(nranks), 0.0);
  double total = 0;
  for (std::size_t p = 0; p < owners.size(); ++p) {
    const double w = std::max(0.0, weights[p]);
    load[static_cast<std::size_t>(owners[p])] += w;
    total += w;
  }
  if (total <= 0) return 1.0;
  const double mean = total / nranks;
  return *std::max_element(load.begin(), load.end()) / mean;
}

std::vector<PatchLayout::Move> PatchLayout::planRebalance(
    const std::vector<int>& owners, const std::vector<double>& weights,
    int nranks, double threshold) const {
  const int n = patchCount();
  std::vector<int> own = owners;
  std::vector<double> load(static_cast<std::size_t>(nranks), 0.0);
  std::vector<int> count(static_cast<std::size_t>(nranks), 0);
  double total = 0;
  for (int p = 0; p < n; ++p) {
    const double w = std::max(0.0, weights[static_cast<std::size_t>(p)]);
    load[static_cast<std::size_t>(own[static_cast<std::size_t>(p)])] += w;
    ++count[static_cast<std::size_t>(own[static_cast<std::size_t>(p)])];
    total += w;
  }
  std::vector<Move> moves;
  if (total <= 0) return moves;
  const double mean = total / nranks;
  // Greedy: repeatedly move the one patch from the most- to the
  // least-loaded rank that most lowers their pairwise peak.  Bounded by
  // the patch count; each accepted move strictly lowers max(load of the
  // pair), so it terminates.
  for (int iter = 0; iter < n; ++iter) {
    int maxR = 0, minR = 0;
    for (int r = 1; r < nranks; ++r) {
      if (load[static_cast<std::size_t>(r)] >
          load[static_cast<std::size_t>(maxR)])
        maxR = r;
      if (load[static_cast<std::size_t>(r)] <
          load[static_cast<std::size_t>(minR)])
        minR = r;
    }
    if (load[static_cast<std::size_t>(maxR)] <= threshold * mean) break;
    if (count[static_cast<std::size_t>(maxR)] <= 1) break;
    int pBest = -1;
    double bestPeak = load[static_cast<std::size_t>(maxR)];
    for (int p = 0; p < n; ++p) {
      if (own[static_cast<std::size_t>(p)] != maxR) continue;
      const double w = std::max(0.0, weights[static_cast<std::size_t>(p)]);
      const double peak = std::max(load[static_cast<std::size_t>(maxR)] - w,
                                   load[static_cast<std::size_t>(minR)] + w);
      if (peak < bestPeak) {
        bestPeak = peak;
        pBest = p;
      }
    }
    if (pBest < 0) break;
    const double w = std::max(0.0, weights[static_cast<std::size_t>(pBest)]);
    moves.push_back({pBest, maxR, minR});
    own[static_cast<std::size_t>(pBest)] = minR;
    load[static_cast<std::size_t>(maxR)] -= w;
    load[static_cast<std::size_t>(minR)] += w;
    --count[static_cast<std::size_t>(maxR)];
    ++count[static_cast<std::size_t>(minR)];
  }
  return moves;
}

}  // namespace swlb::runtime
