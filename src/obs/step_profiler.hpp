// Step-level aggregate of the observability layer: the host-side stand-in
// for the Sunway PERF monitor the paper measures with (§V).  Records wall
// time per step and reports min/mean/max plus update rates; per-phase
// breakdowns live in the Tracer / MetricsRegistry (obs/trace.hpp,
// obs/metrics.hpp), this is the one-number-per-step view benches print.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <limits>

#include "core/common.hpp"

namespace swlb::obs {

class StepProfiler {
 public:
  /// @param cellsPerStep lattice cells updated per step (for LUPS rates)
  explicit StepProfiler(double cellsPerStep) : cells_(cellsPerStep) {
    if (cellsPerStep <= 0) throw Error("StepProfiler: cells must be positive");
  }

  /// Time one step of `fn`.
  template <typename Fn>
  void step(Fn&& fn) {
    const auto t0 = Clock::now();
    fn();
    record(std::chrono::duration<double>(Clock::now() - t0).count());
  }

  /// Record an externally measured step duration (seconds).
  void record(double seconds) {
    ++steps_;
    total_ += seconds;
    minS_ = std::min(minS_, seconds);
    maxS_ = std::max(maxS_, seconds);
  }

  std::uint64_t steps() const { return steps_; }
  double totalSeconds() const { return total_; }
  double meanSeconds() const { return steps_ ? total_ / steps_ : 0; }
  double minSeconds() const { return steps_ ? minS_ : 0; }
  double maxSeconds() const { return steps_ ? maxS_ : 0; }

  /// Mean million lattice updates per second.  Zero until at least one
  /// step with measurable (> 0) duration was recorded: a run of steps all
  /// below the clock's resolution must report "no rate" rather than
  /// divide by a zero total.
  double mlups() const {
    return (steps_ && total_ > 0)
               ? cells_ * static_cast<double>(steps_) / total_ / 1e6
               : 0;
  }
  /// Sustained flops implied by a flops-per-update constant (PERF-style).
  double gflops(double flopsPerLup) const {
    return mlups() * 1e6 * flopsPerLup / 1e9;
  }

  void reset() {
    steps_ = 0;
    total_ = 0;
    minS_ = std::numeric_limits<double>::infinity();
    maxS_ = 0;
  }

 private:
  using Clock = std::chrono::steady_clock;
  double cells_;
  std::uint64_t steps_ = 0;
  double total_ = 0;
  double minS_ = std::numeric_limits<double>::infinity();
  double maxS_ = 0;
};

}  // namespace swlb::obs

namespace swlb {
/// StepProfiler predates the obs layer and is used throughout benches and
/// tests under its original unqualified name.
using obs::StepProfiler;
}  // namespace swlb
