// Metrics registry of the observability layer (DESIGN.md §6).
//
// Counters (monotonic, atomic), gauges (last value / high-water mark) and
// histograms (exact count/total/min/max plus sample-backed nearest-rank
// quantiles) keyed by name.  One registry is typically shared by all ranks
// of a World: counters and gauges are lock-free atomics, histograms take a
// short per-histogram mutex, and name lookup takes the registry mutex, so
// concurrent ranks can record without coordinating.  References returned
// by counter()/gauge()/histogram() stay valid for the registry's lifetime.
#pragma once

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/common.hpp"

namespace swlb::obs {

/// Monotonically increasing event count (messages, bytes, faults...).
class Counter {
 public:
  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-written value with an optional high-water-mark update mode.
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  /// Keep the maximum of the current and the offered value (LDM high-water).
  void setMax(double v) {
    double cur = v_.load(std::memory_order_relaxed);
    while (v > cur &&
           !v_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  double value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0};
};

/// Distribution of observed values (phase durations in seconds).
///
/// count/total/min/max are exact for every observation; quantiles come
/// from a bounded *reservoir* sample (Algorithm R) using the nearest-rank
/// definition on the sorted samples, so memory stays bounded on
/// arbitrarily long runs while every observation — early or late — has an
/// equal chance of being sampled.  (Keeping only the first `sampleCap`
/// observations would freeze p50/p95 on the warmup phase of a long run.)
/// The reservoir's random choices come from a deterministic counter hash
/// seeded per histogram — no global RNG state, reproducible runs.
class Histogram {
 public:
  static constexpr std::size_t kDefaultSampleCap = 1u << 16;

  explicit Histogram(std::size_t sampleCap = kDefaultSampleCap,
                     std::uint64_t seed = 0x9e3779b97f4a7c15ull)
      : cap_(sampleCap), seed_(seed) {}

  void observe(double x) {
    std::lock_guard<std::mutex> lock(m_);
    ++count_;
    total_ += x;
    min_ = count_ == 1 ? x : std::min(min_, x);
    max_ = count_ == 1 ? x : std::max(max_, x);
    if (cap_ == 0) return;
    if (samples_.size() < cap_) {
      samples_.push_back(x);
    } else {
      // Algorithm R: the n-th observation replaces a random reservoir
      // slot with probability cap/n, keeping the sample uniform over the
      // whole stream.
      const std::uint64_t j = mix(seed_ ^ count_) % count_;
      if (j < cap_) samples_[static_cast<std::size_t>(j)] = x;
    }
  }

  std::uint64_t count() const {
    std::lock_guard<std::mutex> lock(m_);
    return count_;
  }
  double total() const {
    std::lock_guard<std::mutex> lock(m_);
    return total_;
  }
  double mean() const {
    std::lock_guard<std::mutex> lock(m_);
    return count_ ? total_ / static_cast<double>(count_) : 0;
  }
  double min() const {
    std::lock_guard<std::mutex> lock(m_);
    return count_ ? min_ : 0;
  }
  double max() const {
    std::lock_guard<std::mutex> lock(m_);
    return count_ ? max_ : 0;
  }

  /// Nearest-rank quantile over the stored samples: for q in (0, 1] the
  /// value at 1-based rank ceil(q * n) of the sorted samples; q <= 0 gives
  /// the smallest sample.  Returns 0 when nothing was observed.
  double quantile(double q) const {
    std::vector<double> s;
    {
      std::lock_guard<std::mutex> lock(m_);
      s = samples_;
    }
    if (s.empty()) return 0;
    std::sort(s.begin(), s.end());
    return nearestRank(s, q);
  }

  struct Summary {
    std::uint64_t count = 0;
    double total = 0, mean = 0, min = 0, max = 0, p50 = 0, p95 = 0;
  };
  /// Snapshot every field under ONE lock acquisition: a concurrent
  /// observe() can land entirely before or entirely after the snapshot,
  /// but never between two fields (no torn count-vs-total summaries).
  Summary summary() const {
    Summary s;
    std::vector<double> samp;
    {
      std::lock_guard<std::mutex> lock(m_);
      s.count = count_;
      s.total = total_;
      s.min = count_ ? min_ : 0;
      s.max = count_ ? max_ : 0;
      samp = samples_;
    }
    s.mean = s.count ? s.total / static_cast<double>(s.count) : 0;
    if (!samp.empty()) {
      std::sort(samp.begin(), samp.end());
      s.p50 = nearestRank(samp, 0.50);
      s.p95 = nearestRank(samp, 0.95);
    }
    return s;
  }

 private:
  /// splitmix64 finalizer: cheap, well-mixed 64-bit hash.
  static std::uint64_t mix(std::uint64_t z) {
    z += 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// Nearest-rank quantile of an already-sorted, non-empty sample vector.
  static double nearestRank(const std::vector<double>& sorted, double q) {
    if (q <= 0) return sorted.front();
    if (q >= 1) return sorted.back();
    const auto n = static_cast<double>(sorted.size());
    const auto rank = static_cast<std::size_t>(std::max(1.0, std::ceil(q * n)));
    return sorted[rank - 1];
  }

  mutable std::mutex m_;
  std::size_t cap_;
  std::uint64_t seed_;
  std::uint64_t count_ = 0;
  double total_ = 0, min_ = 0, max_ = 0;
  std::vector<double> samples_;
};

class ScopedMetrics;

class MetricsRegistry {
 public:
  Counter& counter(const std::string& name) { return *get(counters_, name); }
  Gauge& gauge(const std::string& name) { return *get(gauges_, name); }
  Histogram& histogram(const std::string& name) {
    return *get(histograms_, name);
  }

  /// Prefix view: scoped("tenant.3").counter("steps") names the counter
  /// "tenant.3.steps" in THIS registry — subsystems namespace their
  /// per-entity metrics without string-pasting at every call site.
  inline ScopedMetrics scoped(const std::string& prefix);

  /// Read a counter without creating it (0 when absent).
  std::uint64_t counterValue(const std::string& name) const {
    std::lock_guard<std::mutex> lock(m_);
    const auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second->value();
  }
  /// Read a gauge without creating it (0 when absent).
  double gaugeValue(const std::string& name) const {
    std::lock_guard<std::mutex> lock(m_);
    const auto it = gauges_.find(name);
    return it == gauges_.end() ? 0 : it->second->value();
  }
  /// Summary of a histogram without creating it (all-zero when absent).
  Histogram::Summary histogramSummary(const std::string& name) const {
    const Histogram* h = nullptr;
    {
      std::lock_guard<std::mutex> lock(m_);
      const auto it = histograms_.find(name);
      if (it != histograms_.end()) h = it->second.get();
    }
    return h ? h->summary() : Histogram::Summary{};
  }

  std::map<std::string, std::uint64_t> counterSnapshot() const {
    std::lock_guard<std::mutex> lock(m_);
    std::map<std::string, std::uint64_t> out;
    for (const auto& [k, v] : counters_) out[k] = v->value();
    return out;
  }
  std::map<std::string, double> gaugeSnapshot() const {
    std::lock_guard<std::mutex> lock(m_);
    std::map<std::string, double> out;
    for (const auto& [k, v] : gauges_) out[k] = v->value();
    return out;
  }
  std::map<std::string, Histogram::Summary> histogramSnapshot() const {
    std::vector<std::pair<std::string, const Histogram*>> hs;
    {
      std::lock_guard<std::mutex> lock(m_);
      for (const auto& [k, v] : histograms_) hs.emplace_back(k, v.get());
    }
    std::map<std::string, Histogram::Summary> out;
    for (const auto& [k, h] : hs) out[k] = h->summary();
    return out;
  }

  bool empty() const {
    std::lock_guard<std::mutex> lock(m_);
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }

 private:
  template <typename T>
  T* get(std::map<std::string, std::unique_ptr<T>>& where,
         const std::string& name) {
    std::lock_guard<std::mutex> lock(m_);
    auto& slot = where[name];
    if (!slot) slot = std::make_unique<T>();
    return slot.get();
  }

  mutable std::mutex m_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Lightweight value handle over a registry that prepends "<prefix>." to
/// every metric name.  Copyable; valid as long as the registry it views.
/// Scopes nest: reg.scoped("serve.tenant").scoped("acme") addresses the
/// "serve.tenant.acme.*" namespace.
class ScopedMetrics {
 public:
  ScopedMetrics(MetricsRegistry& reg, std::string prefix)
      : reg_(&reg), prefix_(std::move(prefix)) {}

  Counter& counter(const std::string& name) { return reg_->counter(key(name)); }
  Gauge& gauge(const std::string& name) { return reg_->gauge(key(name)); }
  Histogram& histogram(const std::string& name) {
    return reg_->histogram(key(name));
  }

  std::uint64_t counterValue(const std::string& name) const {
    return reg_->counterValue(key(name));
  }
  double gaugeValue(const std::string& name) const {
    return reg_->gaugeValue(key(name));
  }
  Histogram::Summary histogramSummary(const std::string& name) const {
    return reg_->histogramSummary(key(name));
  }

  ScopedMetrics scoped(const std::string& prefix) const {
    return ScopedMetrics(*reg_, key(prefix));
  }

  const std::string& prefix() const { return prefix_; }

 private:
  std::string key(const std::string& name) const {
    return prefix_.empty() ? name : prefix_ + "." + name;
  }

  MetricsRegistry* reg_;
  std::string prefix_;
};

inline ScopedMetrics MetricsRegistry::scoped(const std::string& prefix) {
  return ScopedMetrics(*this, prefix);
}

}  // namespace swlb::obs
