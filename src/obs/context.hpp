// Thread-bound observability context: which Tracer / MetricsRegistry (if
// any) the calling thread reports to, and as which rank.
//
// Instrumentation sites (solver phases, Comm, halo exchange, checkpoints,
// the sw emulator) are written against the *current thread's* context so
// they cost one thread-local load plus a branch when observability is off
// — the zero-overhead-when-disabled contract tested by test_obs.  World::run
// binds each rank thread from WorldConfig; serial drivers (swlb_run,
// benches) bind the main thread with ScopedBind.
#pragma once

#include <chrono>
#include <cstdint>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace swlb::obs {

struct Context {
  Tracer* tracer = nullptr;
  MetricsRegistry* metrics = nullptr;
  int rank = 0;
};

namespace detail {
inline thread_local Context t_context;
inline thread_local bool t_bound = false;
}  // namespace detail

/// The calling thread's context, or nullptr when observability is off.
inline const Context* current() {
  return detail::t_bound ? &detail::t_context : nullptr;
}

/// RAII binding of a context to the calling thread (nestable; restores the
/// previous binding on destruction).  Binding two nullptrs is equivalent
/// to unbinding — instrumentation reverts to the no-op path.
class ScopedBind {
 public:
  ScopedBind(Tracer* tracer, MetricsRegistry* metrics, int rank = 0)
      : prev_(detail::t_context), prevBound_(detail::t_bound) {
    detail::t_context = {tracer, metrics, rank};
    detail::t_bound = tracer != nullptr || metrics != nullptr;
  }
  ~ScopedBind() {
    detail::t_context = prev_;
    detail::t_bound = prevBound_;
  }
  ScopedBind(const ScopedBind&) = delete;
  ScopedBind& operator=(const ScopedBind&) = delete;

 private:
  Context prev_;
  bool prevBound_;
};

// ---- named-metric helpers (no-ops when the thread is unbound) ----------

inline void count(const char* name, std::uint64_t n = 1) {
  if (const Context* c = current(); c && c->metrics)
    c->metrics->counter(name).add(n);
}

inline void observe(const char* name, double v) {
  if (const Context* c = current(); c && c->metrics)
    c->metrics->histogram(name).observe(v);
}

inline void gaugeSet(const char* name, double v) {
  if (const Context* c = current(); c && c->metrics)
    c->metrics->gauge(name).set(v);
}

inline void gaugeMax(const char* name, double v) {
  if (const Context* c = current(); c && c->metrics)
    c->metrics->gauge(name).setMax(v);
}

/// RAII phase scope: emits one complete trace event on the bound tracer
/// AND one observation (seconds) into the same-named histogram of the
/// bound registry.  `name` must be a static string (it is not copied).
class TraceScope {
 public:
  explicit TraceScope(const char* name) {
    const Context* c = current();
    if (!c) return;
    if (c->tracer && c->tracer->enabled()) tracer_ = c->tracer;
    metrics_ = c->metrics;
    if (!tracer_ && !metrics_) return;
    name_ = name;
    rank_ = c->rank;
    begin_ = Tracer::Clock::now();
  }
  ~TraceScope() {
    if (!name_) return;
    const auto end = Tracer::Clock::now();
    if (tracer_) tracer_->record(name_, begin_, end, rank_);
    if (metrics_)
      metrics_->histogram(name_).observe(
          std::chrono::duration<double>(end - begin_).count());
  }
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  Tracer* tracer_ = nullptr;
  MetricsRegistry* metrics_ = nullptr;
  const char* name_ = nullptr;
  int rank_ = 0;
  Tracer::Clock::time_point begin_;
};

}  // namespace swlb::obs
