#include "obs/bench_report.hpp"

#include <cmath>
#include <cstdio>
#include <deque>
#include <fstream>

namespace swlb::obs {

namespace {

void writeString(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      os << '\\' << c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      os << buf;
    } else {
      os << c;
    }
  }
  os << '"';
}

/// Shortest round-trip double representation; JSON has no inf/nan, map
/// them to null so the file always parses.
void writeNumber(std::ostream& os, double v) {
  if (!std::isfinite(v)) {
    os << "null";
    return;
  }
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      std::abs(v) < 1e15) {
    os << static_cast<long long>(v);
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  os << buf;
}

template <typename Map, typename Fn>
void writeObject(std::ostream& os, const Map& map, Fn&& writeValue) {
  os << '{';
  bool first = true;
  for (const auto& [k, v] : map) {
    if (!first) os << ',';
    first = false;
    writeString(os, k);
    os << ':';
    writeValue(v);
  }
  os << '}';
}

}  // namespace

BenchReport::Result& BenchReport::add(const std::string& name) {
  results_.emplace_back(name);
  return results_.back();
}

void BenchReport::write(std::ostream& os) const {
  os << "{\"schema\":\"" << kBenchSchema << "\",\"bench\":";
  writeString(os, bench_);
  os << ",\"results\":[";
  bool firstResult = true;
  for (const Result& r : results_) {
    if (!firstResult) os << ',';
    firstResult = false;
    os << "{\"name\":";
    writeString(os, r.name_);
    os << ",\"values\":";
    writeObject(os, r.values_, [&](double v) { writeNumber(os, v); });
    os << ",\"text\":";
    writeObject(os, r.text_, [&](const std::string& v) { writeString(os, v); });
    os << ",\"counters\":";
    writeObject(os, r.counters_, [&](std::uint64_t v) { os << v; });
    os << ",\"gauges\":";
    writeObject(os, r.gauges_, [&](double v) { writeNumber(os, v); });
    os << ",\"phases\":";
    writeObject(os, r.phases_, [&](const Histogram::Summary& s) {
      os << "{\"count\":" << s.count << ",\"total_s\":";
      writeNumber(os, s.total);
      os << ",\"mean_s\":";
      writeNumber(os, s.mean);
      os << ",\"min_s\":";
      writeNumber(os, s.min);
      os << ",\"max_s\":";
      writeNumber(os, s.max);
      os << ",\"p50_s\":";
      writeNumber(os, s.p50);
      os << ",\"p95_s\":";
      writeNumber(os, s.p95);
      os << '}';
    });
    os << '}';
  }
  os << "]}\n";
}

void BenchReport::write(const std::string& path) const {
  std::ofstream os(path, std::ios::trunc);
  if (!os) throw Error("BenchReport: cannot open '" + path + "' for writing");
  write(os);
  os.flush();
  if (!os) throw Error("BenchReport: write failed for '" + path + "'");
}

}  // namespace swlb::obs
