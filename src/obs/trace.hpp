// Per-rank event tracer of the observability layer (DESIGN.md §6).
//
// The tracer answers the question the paper's whole evaluation hangs on
// (§V, Figs. 8-17): *where inside a step does the time go* — collide vs.
// stream, halo pack/exchange/unpack, overlapped compute — per rank, on a
// shared timeline.  Every rank thread records complete [begin, end) events
// into its own bounded buffer (no locks on the hot path; registration of a
// new thread takes the registry mutex once), and export merges all buffers
// of a World into one Chrome-trace JSON timeline that loads directly in
// chrome://tracing or Perfetto (one "thread" row per rank).
//
// Thread-safety contract: record() is called concurrently from many rank
// threads (each touching only its own buffer); eventCount()/events()/
// writeChromeTrace() must only run after those threads quiesced (e.g.
// after World::run returned — thread join provides the happens-before).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "core/common.hpp"

namespace swlb::obs {

/// One complete phase occurrence on one rank's timeline.
struct TraceEvent {
  const char* name = "";  ///< static phase label (not owned)
  int rank = 0;
  double beginUs = 0;  ///< microseconds since the tracer's epoch
  double durUs = 0;
};

class Tracer {
 public:
  using Clock = std::chrono::steady_clock;

  /// @param maxEventsPerThread bound on buffered events per recording
  ///   thread; further events are counted as dropped, never allocated.
  explicit Tracer(std::size_t maxEventsPerThread = 1u << 20);
  ~Tracer();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void setEnabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }

  /// Record one complete event on the calling thread's buffer.
  void record(const char* name, Clock::time_point begin, Clock::time_point end,
              int rank);

  /// Total buffered events across all threads (quiesced readers only).
  std::size_t eventCount() const;
  /// Events rejected because a thread buffer hit its bound.
  std::uint64_t droppedEvents() const;
  /// Number of distinct recording threads seen so far.
  std::size_t threadCount() const;
  /// All events merged across threads, sorted by begin time.
  std::vector<TraceEvent> events() const;
  /// Drop all buffered events (buffers stay registered).
  void clear();

  /// Chrome trace-event JSON ("X" complete events, ts/dur in microseconds,
  /// tid = rank) merging every rank into one timeline.
  void writeChromeTrace(std::ostream& os) const;
  void writeChromeTrace(const std::string& path) const;

 private:
  struct ThreadBuffer {
    int rank = 0;
    std::vector<TraceEvent> events;
    std::uint64_t dropped = 0;
  };

  ThreadBuffer& buffer(int rank);
  double toUs(Clock::time_point t) const {
    return std::chrono::duration<double, std::micro>(t - epoch_).count();
  }

  const std::uint64_t id_;  ///< process-unique, guards thread-local caches
  const std::size_t cap_;
  const Clock::time_point epoch_;
  std::atomic<bool> enabled_{true};
  mutable std::mutex m_;  ///< guards buffers_ registration and bulk reads
  std::deque<std::unique_ptr<ThreadBuffer>> buffers_;
};

}  // namespace swlb::obs
