// Machine-readable benchmark reports (DESIGN.md §6).
//
// Every bench that prints a human table can also serialize its rows to a
// stable JSON schema ("swlb-bench-v1") so performance trajectories are
// diffable across commits — the BENCH_*.json seed files at the repo root
// are produced by this writer.  Schema:
//
//   {
//     "schema":  "swlb-bench-v1",
//     "bench":   "<bench binary name>",
//     "results": [
//       { "name":     "<case / configuration>",
//         "values":   { "<key>": <number>, ... },        // mlups, steps...
//         "text":     { "<key>": "<string>", ... },      // sizes, notes
//         "counters": { "<metric>": <integer>, ... },    // from the registry
//         "gauges":   { "<metric>": <number>, ... },
//         "phases":   { "<phase>": { "count": n, "total_s": t, "mean_s": m,
//                                    "min_s": a, "max_s": b,
//                                    "p50_s": p, "p95_s": q }, ... } }
//     ]
//   }
//
// Key order is lexicographic (std::map) so the output is byte-stable for
// identical inputs.
#pragma once

#include <deque>
#include <map>
#include <ostream>
#include <string>

#include "obs/metrics.hpp"

namespace swlb::obs {

inline constexpr const char* kBenchSchema = "swlb-bench-v1";

class BenchReport {
 public:
  class Result {
   public:
    explicit Result(std::string name) : name_(std::move(name)) {}

    void set(const std::string& key, double value) { values_[key] = value; }
    void setText(const std::string& key, const std::string& value) {
      text_[key] = value;
    }
    /// Fold a registry's counters, gauges and histogram summaries (as
    /// phase breakdowns) into this result.
    void addMetrics(const MetricsRegistry& reg) {
      for (const auto& [k, v] : reg.counterSnapshot()) counters_[k] += v;
      for (const auto& [k, v] : reg.gaugeSnapshot()) gauges_[k] = v;
      for (const auto& [k, v] : reg.histogramSnapshot()) phases_[k] = v;
    }

   private:
    friend class BenchReport;
    std::string name_;
    std::map<std::string, double> values_;
    std::map<std::string, std::string> text_;
    std::map<std::string, std::uint64_t> counters_;
    std::map<std::string, double> gauges_;
    std::map<std::string, Histogram::Summary> phases_;
  };

  explicit BenchReport(std::string benchName) : bench_(std::move(benchName)) {}

  /// Append a result row; the reference stays valid for the report's life.
  Result& add(const std::string& name);

  void write(std::ostream& os) const;
  void write(const std::string& path) const;

 private:
  std::string bench_;
  std::deque<Result> results_;  ///< deque: add() references stay valid
};

}  // namespace swlb::obs
