#include "obs/trace.hpp"

#include <algorithm>
#include <fstream>

namespace swlb::obs {

namespace {

std::uint64_t nextTracerId() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

/// Per-thread cache of the buffer registered with one tracer.  Keyed by
/// the tracer's process-unique id so a thread that outlives a tracer (or
/// records into a second one) re-registers instead of touching a stale
/// pointer.
struct BufferCache {
  std::uint64_t tracerId = 0;
  void* buffer = nullptr;
};
thread_local BufferCache t_cache;

/// Minimal JSON string escaping for event names (static C strings in
/// practice, but exported files must stay valid JSON for any label).
void writeEscaped(std::ostream& os, const char* s) {
  for (; *s; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      os << '\\' << c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      os << "\\u00" << "0123456789abcdef"[(c >> 4) & 0xf]
         << "0123456789abcdef"[c & 0xf];
    } else {
      os << c;
    }
  }
}

}  // namespace

Tracer::Tracer(std::size_t maxEventsPerThread)
    : id_(nextTracerId()), cap_(maxEventsPerThread), epoch_(Clock::now()) {}

Tracer::~Tracer() = default;

Tracer::ThreadBuffer& Tracer::buffer(int rank) {
  if (t_cache.tracerId == id_) {
    auto& buf = *static_cast<ThreadBuffer*>(t_cache.buffer);
    buf.rank = rank;  // rebind is free; rank is stable within a World::run
    return buf;
  }
  std::lock_guard<std::mutex> lock(m_);
  buffers_.push_back(std::make_unique<ThreadBuffer>());
  ThreadBuffer& buf = *buffers_.back();
  buf.rank = rank;
  buf.events.reserve(std::min<std::size_t>(cap_, 1024));
  t_cache = {id_, &buf};
  return buf;
}

void Tracer::record(const char* name, Clock::time_point begin,
                    Clock::time_point end, int rank) {
  ThreadBuffer& buf = buffer(rank);
  if (buf.events.size() >= cap_) {
    ++buf.dropped;
    return;
  }
  buf.events.push_back({name, rank, toUs(begin), toUs(end) - toUs(begin)});
}

std::size_t Tracer::eventCount() const {
  std::lock_guard<std::mutex> lock(m_);
  std::size_t n = 0;
  for (const auto& b : buffers_) n += b->events.size();
  return n;
}

std::uint64_t Tracer::droppedEvents() const {
  std::lock_guard<std::mutex> lock(m_);
  std::uint64_t n = 0;
  for (const auto& b : buffers_) n += b->dropped;
  return n;
}

std::size_t Tracer::threadCount() const {
  std::lock_guard<std::mutex> lock(m_);
  return buffers_.size();
}

std::vector<TraceEvent> Tracer::events() const {
  std::vector<TraceEvent> out;
  {
    std::lock_guard<std::mutex> lock(m_);
    for (const auto& b : buffers_)
      out.insert(out.end(), b->events.begin(), b->events.end());
  }
  std::sort(out.begin(), out.end(), [](const TraceEvent& a, const TraceEvent& b) {
    return a.beginUs < b.beginUs;
  });
  return out;
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(m_);
  for (auto& b : buffers_) {
    b->events.clear();
    b->dropped = 0;
  }
}

void Tracer::writeChromeTrace(std::ostream& os) const {
  const std::vector<TraceEvent> evs = events();

  // Ranks present, for thread-name metadata rows.
  std::vector<int> ranks;
  for (const TraceEvent& e : evs) ranks.push_back(e.rank);
  std::sort(ranks.begin(), ranks.end());
  ranks.erase(std::unique(ranks.begin(), ranks.end()), ranks.end());

  os << "{\"traceEvents\":[";
  bool first = true;
  for (const int r : ranks) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":" << r
       << ",\"args\":{\"name\":\"rank " << r << "\"}}";
  }
  const auto old = os.precision(6);
  os << std::fixed;
  for (const TraceEvent& e : evs) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"";
    writeEscaped(os, e.name);
    os << "\",\"ph\":\"X\",\"ts\":" << e.beginUs << ",\"dur\":" << e.durUs
       << ",\"pid\":0,\"tid\":" << e.rank << "}";
  }
  os.unsetf(std::ios_base::floatfield);
  os.precision(old);
  os << "],\"displayTimeUnit\":\"ms\"}\n";
}

void Tracer::writeChromeTrace(const std::string& path) const {
  std::ofstream os(path, std::ios::trunc);
  if (!os) throw Error("Tracer: cannot open '" + path + "' for writing");
  writeChromeTrace(os);
  os.flush();
  if (!os) throw Error("Tracer: write failed for '" + path + "'");
}

}  // namespace swlb::obs
