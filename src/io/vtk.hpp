// Legacy VTK structured-points writer for ParaView / Tecplot style
// post-processing (paper §IV-B lists both as supported visualization
// interfaces; legacy VTK is readable by both).
#pragma once

#include <string>

#include "core/field.hpp"

namespace swlb::io {

/// Incrementally build one legacy-VTK dataset over the grid interior and
/// write it with any number of point fields attached.
class VtkWriter {
 public:
  explicit VtkWriter(const Grid& grid, Real spacing = 1.0,
                     const Vec3& origin = {0, 0, 0});

  /// Attach a scalar field (copied).
  void addScalar(const std::string& name, const ScalarField& field);
  /// Attach a vector field (copied).
  void addVector(const std::string& name, const VectorField& field);

  /// Write everything as ASCII legacy VTK.
  void write(const std::string& path) const;

 private:
  struct Named {
    std::string name;
    bool isVector;
    std::vector<Real> data;  // nx*ny*nz (x fastest) or 3x that for vectors
  };
  Grid grid_;
  Real spacing_;
  Vec3 origin_;
  std::vector<Named> fields_;
};

}  // namespace swlb::io
