// PPM image output — the paper's built-in post-processing function
// generates "image files in the format of PPM" (§IV-B).
#pragma once

#include <string>

#include "core/field.hpp"

namespace swlb::io {

enum class Colormap {
  BlueWhiteRed,  ///< diverging (signed fields: vorticity, Q-criterion)
  Heat,          ///< sequential black-red-yellow-white (magnitudes)
  Gray,
};

/// Write a z-slice of a scalar field as a PPM image.  Values are mapped
/// linearly from [lo, hi] onto the colormap; pass lo == hi to autoscale.
void write_ppm_slice(const std::string& path, const ScalarField& field, int z,
                     Real lo = 0, Real hi = 0,
                     Colormap map = Colormap::Heat);

/// Write a z-slice of the velocity magnitude.
void write_ppm_velocity_slice(const std::string& path, const VectorField& u,
                              int z, Real maxMag = 0);

/// Raw interface: rgb has 3*w*h bytes, row-major, top row first.
void write_ppm(const std::string& path, int w, int h,
               const std::vector<std::uint8_t>& rgb);

}  // namespace swlb::io
