#include "io/checkpoint.hpp"

#include <cstdio>
#include <cstring>
#include <fstream>

#include "obs/context.hpp"

#ifdef __unix__
#include <fcntl.h>
#include <unistd.h>
#endif

namespace swlb::io {

namespace {

constexpr char kMagic[8] = {'S', 'W', 'L', 'B', 'C', 'K', 'P', 'T'};

struct Header {
  char magic[8];
  std::uint32_t version;
  std::int32_t nx, ny, nz, halo, q, parity;
  std::uint64_t steps;
  std::uint64_t payloadBytes;
  std::uint64_t checksum;
};

Header readHeader(std::ifstream& in, const std::string& path) {
  Header h{};
  in.read(reinterpret_cast<char*>(&h), sizeof(h));
  if (!in) throw Error("checkpoint: truncated header in '" + path + "'");
  if (std::memcmp(h.magic, kMagic, sizeof(kMagic)) != 0)
    throw Error("checkpoint: bad magic in '" + path + "'");
  if (h.version != kCheckpointVersion)
    throw Error("checkpoint: unsupported version " + std::to_string(h.version));
  return h;
}

CheckpointMeta toMeta(const Header& h) {
  CheckpointMeta m;
  m.version = h.version;
  m.interior = {h.nx, h.ny, h.nz};
  m.halo = h.halo;
  m.q = h.q;
  m.steps = h.steps;
  m.parity = h.parity;
  return m;
}

}  // namespace

std::uint64_t fnv1a(const void* data, std::size_t bytes) {
  return fnv1a_hash(data, bytes);
}

namespace {

/// Best-effort durability barrier: flush the file's data to storage so a
/// crash after the rename cannot leave a committed-but-empty checkpoint.
void syncToDisk(const std::string& path) {
#ifdef __unix__
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
#else
  (void)path;
#endif
}

}  // namespace

void save_checkpoint(const std::string& path, const PopulationField& f,
                     std::uint64_t steps, int parity) {
  obs::TraceScope saveScope("checkpoint.save");
  obs::count("checkpoint.bytes_written", sizeof(Header) + f.bytes());
  // Atomic commit: write the full payload to <path>.tmp, flush it, then
  // rename over the destination.  A crash at any point leaves either the
  // previous checkpoint intact or a stale .tmp that load ignores — never a
  // torn file at the committed path.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    if (!os) throw Error("checkpoint: cannot open '" + tmp + "' for writing");

    Header h{};
    std::memcpy(h.magic, kMagic, sizeof(kMagic));
    h.version = kCheckpointVersion;
    h.nx = f.grid().nx;
    h.ny = f.grid().ny;
    h.nz = f.grid().nz;
    h.halo = f.grid().halo;
    h.q = f.q();
    h.parity = parity;
    h.steps = steps;
    h.payloadBytes = f.bytes();
    h.checksum = fnv1a(f.data(), f.bytes());

    os.write(reinterpret_cast<const char*>(&h), sizeof(h));
    os.write(reinterpret_cast<const char*>(f.data()),
             static_cast<std::streamsize>(f.bytes()));
    os.flush();
    if (!os) {
      std::remove(tmp.c_str());
      throw Error("checkpoint: write failed for '" + tmp + "'");
    }
  }
  syncToDisk(tmp);
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw Error("checkpoint: cannot rename '" + tmp + "' to '" + path + "'");
  }
}

CheckpointMeta read_checkpoint_meta(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("checkpoint: cannot open '" + path + "'");
  return toMeta(readHeader(in, path));
}

CheckpointMeta load_checkpoint(const std::string& path, PopulationField& f) {
  obs::TraceScope restoreScope("checkpoint.restore");
  obs::count("checkpoint.bytes_read", sizeof(Header) + f.bytes());
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("checkpoint: cannot open '" + path + "'");
  const Header h = readHeader(in, path);
  if (h.nx != f.grid().nx || h.ny != f.grid().ny || h.nz != f.grid().nz ||
      h.halo != f.grid().halo || h.q != f.q()) {
    throw Error("checkpoint: geometry mismatch restoring '" + path + "'");
  }
  if (h.payloadBytes != f.bytes())
    throw Error("checkpoint: payload size mismatch in '" + path + "'");
  in.read(reinterpret_cast<char*>(f.data()),
          static_cast<std::streamsize>(f.bytes()));
  if (!in) throw Error("checkpoint: truncated payload in '" + path + "'");
  if (fnv1a(f.data(), f.bytes()) != h.checksum)
    throw Error("checkpoint: checksum mismatch in '" + path + "' (corrupt file)");
  return toMeta(h);
}

}  // namespace swlb::io
