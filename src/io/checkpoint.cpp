#include "io/checkpoint.hpp"

#include <cstdio>
#include <cstring>
#include <fstream>

#ifdef __unix__
#include <fcntl.h>
#include <unistd.h>
#endif

namespace swlb::io {

namespace {

constexpr char kMagic[8] = {'S', 'W', 'L', 'B', 'C', 'K', 'P', 'T'};

// v2 layout: 8 + 4 + 7*4 = 40 bytes of leading fields, then three 8-byte
// fields at an 8-aligned offset — sizeof(Header) == 64 with no padding
// holes.  The header is still memset to zero before filling so the raw
// write is deterministic byte for byte.
struct Header {
  char magic[8];
  std::uint32_t version;
  std::int32_t nx, ny, nz, halo, q, parity;
  std::uint32_t precision;  ///< storage element width in bits (64/32/16)
  std::uint64_t steps;
  std::uint64_t payloadBytes;
  std::uint64_t checksum;
};
static_assert(sizeof(Header) == 64);

Header readHeader(std::ifstream& in, const std::string& path) {
  Header h;
  std::memset(&h, 0, sizeof(h));
  in.read(reinterpret_cast<char*>(&h), sizeof(h));
  if (!in) throw Error("checkpoint: truncated header in '" + path + "'");
  if (std::memcmp(h.magic, kMagic, sizeof(kMagic)) != 0)
    throw Error("checkpoint: bad magic in '" + path + "'");
  if (h.version != kCheckpointVersion)
    throw Error("checkpoint: unsupported version " + std::to_string(h.version));
  return h;
}

CheckpointMeta toMeta(const Header& h) {
  CheckpointMeta m;
  m.version = h.version;
  m.interior = {h.nx, h.ny, h.nz};
  m.halo = h.halo;
  m.q = h.q;
  m.steps = h.steps;
  m.parity = h.parity;
  m.precisionBits = h.precision;
  return m;
}

/// Best-effort durability barrier: flush the file's data to storage so a
/// crash after the rename cannot leave a committed-but-empty checkpoint.
void syncToDisk(const std::string& path) {
#ifdef __unix__
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
#else
  (void)path;
#endif
}

}  // namespace

std::uint64_t fnv1a(const void* data, std::size_t bytes) {
  return fnv1a_hash(data, bytes);
}

namespace detail {

void write_checkpoint_file(const std::string& path, const void* payload,
                           std::size_t payloadBytes, const Grid& grid, int q,
                           std::uint64_t steps, int parity,
                           std::uint32_t precisionBits, const Real* shift) {
  obs::TraceScope saveScope("checkpoint.save");
  const std::size_t shiftBytes = static_cast<std::size_t>(q) * sizeof(double);
  obs::count("checkpoint.bytes_written",
             sizeof(Header) + shiftBytes + payloadBytes);
  // Atomic commit: write the full payload to <path>.tmp, flush it, then
  // rename over the destination.  A crash at any point leaves either the
  // previous checkpoint intact or a stale .tmp that load ignores — never a
  // torn file at the committed path.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    if (!os) throw Error("checkpoint: cannot open '" + tmp + "' for writing");

    // Zero the whole struct first: any padding the ABI might introduce is
    // written as deterministic zero bytes, so identical state produces
    // byte-identical files.
    Header h;
    std::memset(&h, 0, sizeof(h));
    std::memcpy(h.magic, kMagic, sizeof(kMagic));
    h.version = kCheckpointVersion;
    h.nx = grid.nx;
    h.ny = grid.ny;
    h.nz = grid.nz;
    h.halo = grid.halo;
    h.q = q;
    h.parity = parity;
    h.precision = precisionBits;
    h.steps = steps;
    h.payloadBytes = payloadBytes;
    h.checksum = fnv1a(payload, payloadBytes);

    os.write(reinterpret_cast<const char*>(&h), sizeof(h));
    os.write(reinterpret_cast<const char*>(shift),
             static_cast<std::streamsize>(shiftBytes));
    os.write(reinterpret_cast<const char*>(payload),
             static_cast<std::streamsize>(payloadBytes));
    os.flush();
    if (!os) {
      std::remove(tmp.c_str());
      throw Error("checkpoint: write failed for '" + tmp + "'");
    }
  }
  syncToDisk(tmp);
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw Error("checkpoint: cannot rename '" + tmp + "' to '" + path + "'");
  }
}

RawCheckpoint read_checkpoint_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("checkpoint: cannot open '" + path + "'");
  const Header h = readHeader(in, path);
  if (h.q <= 0 || h.q > 64)
    throw Error("checkpoint: implausible Q in '" + path + "'");
  RawCheckpoint raw;
  raw.meta = toMeta(h);
  raw.shift.resize(static_cast<std::size_t>(h.q));
  in.read(reinterpret_cast<char*>(raw.shift.data()),
          static_cast<std::streamsize>(raw.shift.size() * sizeof(double)));
  raw.payload.resize(h.payloadBytes);
  in.read(reinterpret_cast<char*>(raw.payload.data()),
          static_cast<std::streamsize>(raw.payload.size()));
  if (!in) throw Error("checkpoint: truncated payload in '" + path + "'");
  if (fnv1a(raw.payload.data(), raw.payload.size()) != h.checksum)
    throw Error("checkpoint: checksum mismatch in '" + path + "' (corrupt file)");
  raw.fileBytes =
      sizeof(Header) + raw.shift.size() * sizeof(double) + raw.payload.size();
  return raw;
}

}  // namespace detail

CheckpointMeta read_checkpoint_meta(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("checkpoint: cannot open '" + path + "'");
  return toMeta(readHeader(in, path));
}

}  // namespace swlb::io
