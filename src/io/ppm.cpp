#include "io/ppm.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>

namespace swlb::io {

namespace {

struct Rgb {
  std::uint8_t r, g, b;
};

Rgb colorize(Real t, Colormap map) {
  t = std::clamp<Real>(t, 0, 1);
  auto u8 = [](Real v) {
    return static_cast<std::uint8_t>(std::lround(std::clamp<Real>(v, 0, 1) * 255));
  };
  switch (map) {
    case Colormap::BlueWhiteRed: {
      if (t < Real(0.5)) {
        const Real s = t * 2;  // blue -> white
        return {u8(s), u8(s), 255};
      }
      const Real s = (t - Real(0.5)) * 2;  // white -> red
      return {255, u8(1 - s), u8(1 - s)};
    }
    case Colormap::Heat: {
      // black -> red -> yellow -> white
      return {u8(t * 3), u8(t * 3 - 1), u8(t * 3 - 2)};
    }
    case Colormap::Gray:
    default:
      return {u8(t), u8(t), u8(t)};
  }
}

}  // namespace

void write_ppm(const std::string& path, int w, int h,
               const std::vector<std::uint8_t>& rgb) {
  if (static_cast<std::size_t>(w) * h * 3 != rgb.size())
    throw Error("write_ppm: buffer size does not match dimensions");
  std::ofstream os(path, std::ios::binary);
  if (!os) throw Error("write_ppm: cannot open '" + path + "'");
  os << "P6\n" << w << ' ' << h << "\n255\n";
  os.write(reinterpret_cast<const char*>(rgb.data()),
           static_cast<std::streamsize>(rgb.size()));
  if (!os) throw Error("write_ppm: write failed for '" + path + "'");
}

void write_ppm_slice(const std::string& path, const ScalarField& field, int z,
                     Real lo, Real hi, Colormap map) {
  const Grid& g = field.grid();
  if (z < 0 || z >= g.nz) throw Error("write_ppm_slice: z out of range");
  if (lo == hi) {  // autoscale
    lo = hi = field(0, 0, z);
    for (int y = 0; y < g.ny; ++y)
      for (int x = 0; x < g.nx; ++x) {
        lo = std::min(lo, field(x, y, z));
        hi = std::max(hi, field(x, y, z));
      }
    if (lo == hi) hi = lo + 1;
  }
  std::vector<std::uint8_t> rgb(static_cast<std::size_t>(g.nx) * g.ny * 3);
  std::size_t k = 0;
  for (int y = g.ny - 1; y >= 0; --y)  // top row first
    for (int x = 0; x < g.nx; ++x) {
      const Real t = (field(x, y, z) - lo) / (hi - lo);
      const Rgb c = colorize(t, map);
      rgb[k++] = c.r;
      rgb[k++] = c.g;
      rgb[k++] = c.b;
    }
  write_ppm(path, g.nx, g.ny, rgb);
}

void write_ppm_velocity_slice(const std::string& path, const VectorField& u,
                              int z, Real maxMag) {
  const Grid& g = u.grid();
  ScalarField mag(g);
  for (int y = 0; y < g.ny; ++y)
    for (int x = 0; x < g.nx; ++x)
      mag(x, y, z) = std::sqrt(u.at(x, y, z).norm2());
  write_ppm_slice(path, mag, z, 0, maxMag, Colormap::Heat);
}

}  // namespace swlb::io
