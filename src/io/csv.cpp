#include "io/csv.hpp"

#include <iomanip>

namespace swlb::io {

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& columns)
    : os_(path), width_(columns.size()) {
  if (!os_) throw Error("CsvWriter: cannot open '" + path + "'");
  if (columns.empty()) throw Error("CsvWriter: need at least one column");
  for (std::size_t i = 0; i < columns.size(); ++i)
    os_ << (i ? "," : "") << columns[i];
  os_ << '\n';
}

void CsvWriter::row(const std::vector<Real>& values) {
  if (values.size() != width_) throw Error("CsvWriter: row width mismatch");
  os_ << std::setprecision(12);
  for (std::size_t i = 0; i < values.size(); ++i)
    os_ << (i ? "," : "") << values[i];
  os_ << '\n';
  ++rows_;
  if (!os_) throw Error("CsvWriter: write failed");
}

void CsvWriter::rowText(const std::vector<std::string>& values) {
  if (values.size() != width_) throw Error("CsvWriter: row width mismatch");
  for (std::size_t i = 0; i < values.size(); ++i)
    os_ << (i ? "," : "") << values[i];
  os_ << '\n';
  ++rows_;
}

}  // namespace swlb::io
