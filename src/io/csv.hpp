// CSV time-series writer (drag history, energy decay, benchmark series).
#pragma once

#include <fstream>
#include <string>
#include <vector>

#include "core/common.hpp"

namespace swlb::io {

class CsvWriter {
 public:
  CsvWriter(const std::string& path, const std::vector<std::string>& columns);

  /// One row; the width must match the header.
  void row(const std::vector<Real>& values);
  /// Mixed text/number row.
  void rowText(const std::vector<std::string>& values);

  std::size_t rowsWritten() const { return rows_; }

 private:
  std::ofstream os_;
  std::size_t width_;
  std::size_t rows_ = 0;
};

}  // namespace swlb::io
