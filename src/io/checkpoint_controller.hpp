// Checkpoint rotation policy: "save every N steps, keep the last K" —
// the operational half of the paper's checkpoint-and-restart controller
// for long campaigns (§IV-B).
#pragma once

#include <algorithm>
#include <cstdio>
#include <deque>
#include <filesystem>
#include <string>

#include "io/checkpoint.hpp"

namespace swlb::io {

struct CheckpointPolicy {
  std::uint64_t interval = 1000;  ///< save every this many steps
  int keep = 2;                   ///< retain the newest K checkpoints
};

/// Drives rotated checkpoints for a single-block solver.  Call
/// maybeSave(solver) once per step (cheap when not due).
class CheckpointController {
 public:
  /// With discoverExisting the controller scans the prefix's directory for
  /// retained `<prefix>.step*.ckpt` files, so restoreLatest works after a
  /// real process restart (not just within one process).
  CheckpointController(std::string prefix, const CheckpointPolicy& policy,
                       bool discoverExisting = false)
      : prefix_(std::move(prefix)), policy_(policy) {
    if (policy_.interval == 0) throw Error("CheckpointPolicy: interval must be > 0");
    if (policy_.keep < 1) throw Error("CheckpointPolicy: keep must be >= 1");
    if (discoverExisting) scanExisting();
  }

  std::string pathFor(std::uint64_t step) const {
    return prefix_ + ".step" + std::to_string(step) + ".ckpt";
  }

  /// Rediscover `<prefix>.step*.ckpt` files on disk: files with unreadable
  /// or mismatched headers are skipped, survivors replace the in-memory
  /// retained list (oldest beyond the keep policy are deleted, as a save
  /// would).  Returns how many checkpoints are retained afterwards.
  std::size_t scanExisting() {
    namespace fs = std::filesystem;
    const fs::path full(prefix_);
    const fs::path dir =
        full.has_parent_path() ? full.parent_path() : fs::path(".");
    const std::string base = full.filename().string() + ".step";
    std::deque<std::uint64_t> found;
    std::error_code ec;
    for (const auto& entry : fs::directory_iterator(dir, ec)) {
      const std::string name = entry.path().filename().string();
      if (name.size() <= base.size() + 5 || name.rfind(base, 0) != 0 ||
          name.substr(name.size() - 5) != ".ckpt")
        continue;
      const std::string digits =
          name.substr(base.size(), name.size() - base.size() - 5);
      if (digits.empty() ||
          digits.find_first_not_of("0123456789") != std::string::npos)
        continue;
      const std::uint64_t step = std::stoull(digits);
      try {
        if (read_checkpoint_meta(pathFor(step)).steps != step) continue;
      } catch (const Error&) {
        continue;  // truncated/corrupt header: not restorable
      }
      found.push_back(step);
    }
    std::sort(found.begin(), found.end());
    saved_ = std::move(found);
    while (static_cast<int>(saved_.size()) > policy_.keep) {
      std::remove(pathFor(saved_.front()).c_str());
      saved_.pop_front();
    }
    return saved_.size();
  }

  /// Save when the solver's step count hits a multiple of the interval.
  /// Returns true when a checkpoint was written.
  template <class D, class S>
  bool maybeSave(const Solver<D, S>& solver) {
    const std::uint64_t step = solver.stepsDone();
    if (step == 0 || step % policy_.interval != 0) return false;
    if (!saved_.empty() && saved_.back() == step) return false;  // same step
    save_checkpoint(pathFor(step), solver);
    saved_.push_back(step);
    while (static_cast<int>(saved_.size()) > policy_.keep) {
      std::remove(pathFor(saved_.front()).c_str());
      saved_.pop_front();
    }
    return true;
  }

  /// Restore the newest retained checkpoint; throws when none exists.
  template <class D, class S>
  void restoreLatest(Solver<D, S>& solver) const {
    if (saved_.empty()) throw Error("CheckpointController: nothing saved yet");
    load_checkpoint(pathFor(saved_.back()), solver);
  }

  const std::deque<std::uint64_t>& retained() const { return saved_; }

  /// Delete every retained checkpoint file (end of campaign).
  void clear() {
    for (const auto step : saved_) std::remove(pathFor(step).c_str());
    saved_.clear();
  }

 private:
  std::string prefix_;
  CheckpointPolicy policy_;
  std::deque<std::uint64_t> saved_;
};

}  // namespace swlb::io
