// Checkpoint/restart controller (paper §IV-B: "a checkpoint and restart
// controller which enables fast recover from system-level or hardware
// fault").  Versioned binary format with an FNV-1a payload checksum.
#pragma once

#include <cstdint>
#include <string>

#include "core/field.hpp"
#include "core/solver.hpp"

namespace swlb::io {

struct CheckpointMeta {
  std::uint32_t version = 0;
  Int3 interior;
  int halo = 0;
  int q = 0;
  std::uint64_t steps = 0;
  int parity = 0;
};

inline constexpr std::uint32_t kCheckpointVersion = 1;

/// Save the population field plus solver step state.  The write is atomic:
/// data goes to `<path>.tmp` (flushed/fsynced) and is renamed into place,
/// so a crash mid-save never corrupts an existing checkpoint at `path`.
void save_checkpoint(const std::string& path, const PopulationField& f,
                     std::uint64_t steps, int parity);

/// Header only (cheap inspection before a full restore).
CheckpointMeta read_checkpoint_meta(const std::string& path);

/// Restore into a field of the *same* grid and Q; throws on any mismatch,
/// corrupt checksum, or unsupported version.
CheckpointMeta load_checkpoint(const std::string& path, PopulationField& f);

/// Solver-level convenience wrappers.
template <class D>
void save_checkpoint(const std::string& path, const Solver<D>& solver) {
  save_checkpoint(path, solver.f(), solver.stepsDone(), solver.parity());
}

template <class D>
void load_checkpoint(const std::string& path, Solver<D>& solver) {
  // Restore parity first so the payload lands in the buffer that was
  // current when the checkpoint was taken.
  const CheckpointMeta meta = read_checkpoint_meta(path);
  solver.restoreState(meta.steps, meta.parity);
  load_checkpoint(path, solver.f());
}

/// FNV-1a 64-bit hash used for the payload checksum (delegates to
/// swlb::fnv1a_hash, shared with the runtime's checksummed messaging).
std::uint64_t fnv1a(const void* data, std::size_t bytes);

}  // namespace swlb::io
