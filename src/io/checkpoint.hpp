// Checkpoint/restart controller (paper §IV-B: "a checkpoint and restart
// controller which enables fast recover from system-level or hardware
// fault").  Versioned binary format with an FNV-1a payload checksum.
//
// Format v2 records the population *storage* precision (64/32/16 bits)
// plus the per-direction shift table, so a checkpoint written by a
// reduced-precision run is self-contained: loading into a field of a
// different storage type converts explicitly (decode with the file's
// shift, re-encode with the field's) instead of reinterpreting bytes.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "core/field.hpp"
#include "core/precision.hpp"
#include "core/solver.hpp"
#include "obs/context.hpp"

namespace swlb::io {

struct CheckpointMeta {
  std::uint32_t version = 0;
  Int3 interior;
  int halo = 0;
  int q = 0;
  std::uint64_t steps = 0;
  int parity = 0;
  /// Storage element width of the payload (64, 32 or 16).
  std::uint32_t precisionBits = 64;
};

inline constexpr std::uint32_t kCheckpointVersion = 2;

namespace detail {

/// A fully read + validated checkpoint file (header fields, shift table,
/// raw payload bytes) — the precision-agnostic half of load_checkpoint.
struct RawCheckpoint {
  CheckpointMeta meta;
  std::vector<double> shift;          ///< per-direction storage shift
  std::vector<std::uint8_t> payload;  ///< raw storage elements
  std::size_t fileBytes = 0;          ///< total on-disk size
};

/// Atomic write (tmp + fsync + rename) of a v2 checkpoint file; counts
/// checkpoint.bytes_written.  `payload` holds raw storage elements.
void write_checkpoint_file(const std::string& path, const void* payload,
                           std::size_t payloadBytes, const Grid& grid, int q,
                           std::uint64_t steps, int parity,
                           std::uint32_t precisionBits, const Real* shift);

/// Read + validate (magic, version, checksum) a checkpoint file.
RawCheckpoint read_checkpoint_file(const std::string& path);

}  // namespace detail

/// Save the population field plus solver step state.  The write is atomic:
/// data goes to `<path>.tmp` (flushed/fsynced) and is renamed into place,
/// so a crash mid-save never corrupts an existing checkpoint at `path`.
template <class S>
void save_checkpoint(const std::string& path, const PopulationFieldT<S>& f,
                     std::uint64_t steps, int parity) {
  detail::write_checkpoint_file(path, f.data(), f.bytes(), f.grid(), f.q(),
                                steps, parity, StorageTraits<S>::kBits,
                                f.shiftData());
}

/// Header only (cheap inspection before a full restore).
CheckpointMeta read_checkpoint_meta(const std::string& path);

/// Restore into a field of the *same* grid and Q; throws on any geometry
/// mismatch, corrupt checksum, or unsupported version.  A payload written
/// with the field's own storage type and shift is restored bit-for-bit;
/// any other precision is converted value by value (file decode -> field
/// encode), never reinterpreted.
template <class S>
CheckpointMeta load_checkpoint(const std::string& path,
                               PopulationFieldT<S>& f) {
  obs::TraceScope restoreScope("checkpoint.restore");
  detail::RawCheckpoint raw = detail::read_checkpoint_file(path);
  obs::count("checkpoint.bytes_read", raw.fileBytes);
  const Grid& g = f.grid();
  if (raw.meta.interior.x != g.nx || raw.meta.interior.y != g.ny ||
      raw.meta.interior.z != g.nz || raw.meta.halo != g.halo ||
      raw.meta.q != f.q()) {
    throw Error("checkpoint: geometry mismatch restoring '" + path + "'");
  }
  const int q = f.q();
  const std::size_t vol = g.volume();
  bool sameShift = true;
  for (int i = 0; i < q; ++i)
    if (raw.shift[static_cast<std::size_t>(i)] != f.shift(i)) sameShift = false;

  if (raw.meta.precisionBits == StorageTraits<S>::kBits && sameShift) {
    if (raw.payload.size() != f.bytes())
      throw Error("checkpoint: payload size mismatch in '" + path + "'");
    std::memcpy(f.data(), raw.payload.data(), f.bytes());
    return raw.meta;
  }

  // Cross-precision restore: decode each stored element with the *file's*
  // shift, re-encode with the field's.  Dispatch on the file's tag.
  auto convert = [&](auto tag) {
    using FS = decltype(tag);
    if (raw.payload.size() != vol * static_cast<std::size_t>(q) * sizeof(FS))
      throw Error("checkpoint: payload size mismatch in '" + path + "'");
    const FS* in = reinterpret_cast<const FS*>(raw.payload.data());
    for (int qq = 0; qq < q; ++qq) {
      const Real sh = raw.shift[static_cast<std::size_t>(qq)];
      const FS* slab = in + static_cast<std::size_t>(qq) * vol;
      for (std::size_t c = 0; c < vol; ++c)
        f.store(qq, c, StorageTraits<FS>::decode(slab[c], sh));
    }
  };
  switch (raw.meta.precisionBits) {
    case 64: convert(double{}); break;
    case 32: convert(float{}); break;
    case 16: convert(f16{}); break;
    default:
      throw Error("checkpoint: unknown storage precision " +
                  std::to_string(raw.meta.precisionBits) + " in '" + path +
                  "'");
  }
  return raw.meta;
}

/// Solver-level convenience wrappers.
template <class D, class S>
void save_checkpoint(const std::string& path, const Solver<D, S>& solver) {
  save_checkpoint(path, solver.f(), solver.stepsDone(), solver.parity());
}

template <class D, class S>
void load_checkpoint(const std::string& path, Solver<D, S>& solver) {
  // Restore parity first so the payload lands in the buffer that was
  // current when the checkpoint was taken.
  const CheckpointMeta meta = read_checkpoint_meta(path);
  solver.restoreState(meta.steps, meta.parity);
  load_checkpoint(path, solver.f());
}

/// FNV-1a 64-bit hash used for the payload checksum (delegates to
/// swlb::fnv1a_hash, shared with the runtime's checksummed messaging).
std::uint64_t fnv1a(const void* data, std::size_t bytes);

}  // namespace swlb::io
