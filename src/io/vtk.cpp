#include "io/vtk.hpp"

#include <fstream>

namespace swlb::io {

VtkWriter::VtkWriter(const Grid& grid, Real spacing, const Vec3& origin)
    : grid_(grid), spacing_(spacing), origin_(origin) {}

void VtkWriter::addScalar(const std::string& name, const ScalarField& field) {
  if (!(field.grid() == grid_)) throw Error("VtkWriter: grid mismatch");
  Named n;
  n.name = name;
  n.isVector = false;
  n.data.reserve(grid_.interiorVolume());
  for (int z = 0; z < grid_.nz; ++z)
    for (int y = 0; y < grid_.ny; ++y)
      for (int x = 0; x < grid_.nx; ++x) n.data.push_back(field(x, y, z));
  fields_.push_back(std::move(n));
}

void VtkWriter::addVector(const std::string& name, const VectorField& field) {
  if (!(field.grid() == grid_)) throw Error("VtkWriter: grid mismatch");
  Named n;
  n.name = name;
  n.isVector = true;
  n.data.reserve(grid_.interiorVolume() * 3);
  for (int z = 0; z < grid_.nz; ++z)
    for (int y = 0; y < grid_.ny; ++y)
      for (int x = 0; x < grid_.nx; ++x) {
        const Vec3 v = field.at(x, y, z);
        n.data.push_back(v.x);
        n.data.push_back(v.y);
        n.data.push_back(v.z);
      }
  fields_.push_back(std::move(n));
}

void VtkWriter::write(const std::string& path) const {
  std::ofstream os(path);
  if (!os) throw Error("VtkWriter: cannot open '" + path + "'");
  os << "# vtk DataFile Version 3.0\n"
     << "SunwayLB reproduction output\n"
     << "ASCII\n"
     << "DATASET STRUCTURED_POINTS\n"
     << "DIMENSIONS " << grid_.nx << ' ' << grid_.ny << ' ' << grid_.nz << '\n'
     << "ORIGIN " << origin_.x << ' ' << origin_.y << ' ' << origin_.z << '\n'
     << "SPACING " << spacing_ << ' ' << spacing_ << ' ' << spacing_ << '\n'
     << "POINT_DATA " << grid_.interiorVolume() << '\n';
  for (const auto& f : fields_) {
    if (f.isVector) {
      os << "VECTORS " << f.name << " double\n";
      for (std::size_t i = 0; i < f.data.size(); i += 3)
        os << f.data[i] << ' ' << f.data[i + 1] << ' ' << f.data[i + 2] << '\n';
    } else {
      os << "SCALARS " << f.name << " double 1\n"
         << "LOOKUP_TABLE default\n";
      for (const Real v : f.data) os << v << '\n';
    }
  }
  if (!os) throw Error("VtkWriter: write failed for '" + path + "'");
}

}  // namespace swlb::io
