# Empty dependencies file for swlb.
# This may be replaced when dependencies are built.
