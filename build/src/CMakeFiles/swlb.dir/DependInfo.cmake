
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/app/cases.cpp" "src/CMakeFiles/swlb.dir/app/cases.cpp.o" "gcc" "src/CMakeFiles/swlb.dir/app/cases.cpp.o.d"
  "/root/repo/src/app/config.cpp" "src/CMakeFiles/swlb.dir/app/config.cpp.o" "gcc" "src/CMakeFiles/swlb.dir/app/config.cpp.o.d"
  "/root/repo/src/core/collision_ops.cpp" "src/CMakeFiles/swlb.dir/core/collision_ops.cpp.o" "gcc" "src/CMakeFiles/swlb.dir/core/collision_ops.cpp.o.d"
  "/root/repo/src/core/derived_fields.cpp" "src/CMakeFiles/swlb.dir/core/derived_fields.cpp.o" "gcc" "src/CMakeFiles/swlb.dir/core/derived_fields.cpp.o.d"
  "/root/repo/src/core/kernels.cpp" "src/CMakeFiles/swlb.dir/core/kernels.cpp.o" "gcc" "src/CMakeFiles/swlb.dir/core/kernels.cpp.o.d"
  "/root/repo/src/core/observables.cpp" "src/CMakeFiles/swlb.dir/core/observables.cpp.o" "gcc" "src/CMakeFiles/swlb.dir/core/observables.cpp.o.d"
  "/root/repo/src/io/checkpoint.cpp" "src/CMakeFiles/swlb.dir/io/checkpoint.cpp.o" "gcc" "src/CMakeFiles/swlb.dir/io/checkpoint.cpp.o.d"
  "/root/repo/src/io/csv.cpp" "src/CMakeFiles/swlb.dir/io/csv.cpp.o" "gcc" "src/CMakeFiles/swlb.dir/io/csv.cpp.o.d"
  "/root/repo/src/io/ppm.cpp" "src/CMakeFiles/swlb.dir/io/ppm.cpp.o" "gcc" "src/CMakeFiles/swlb.dir/io/ppm.cpp.o.d"
  "/root/repo/src/io/vtk.cpp" "src/CMakeFiles/swlb.dir/io/vtk.cpp.o" "gcc" "src/CMakeFiles/swlb.dir/io/vtk.cpp.o.d"
  "/root/repo/src/mesh/geometry.cpp" "src/CMakeFiles/swlb.dir/mesh/geometry.cpp.o" "gcc" "src/CMakeFiles/swlb.dir/mesh/geometry.cpp.o.d"
  "/root/repo/src/mesh/stl.cpp" "src/CMakeFiles/swlb.dir/mesh/stl.cpp.o" "gcc" "src/CMakeFiles/swlb.dir/mesh/stl.cpp.o.d"
  "/root/repo/src/mesh/terrain.cpp" "src/CMakeFiles/swlb.dir/mesh/terrain.cpp.o" "gcc" "src/CMakeFiles/swlb.dir/mesh/terrain.cpp.o.d"
  "/root/repo/src/mesh/urban.cpp" "src/CMakeFiles/swlb.dir/mesh/urban.cpp.o" "gcc" "src/CMakeFiles/swlb.dir/mesh/urban.cpp.o.d"
  "/root/repo/src/mesh/voxelizer.cpp" "src/CMakeFiles/swlb.dir/mesh/voxelizer.cpp.o" "gcc" "src/CMakeFiles/swlb.dir/mesh/voxelizer.cpp.o.d"
  "/root/repo/src/perf/gpu_model.cpp" "src/CMakeFiles/swlb.dir/perf/gpu_model.cpp.o" "gcc" "src/CMakeFiles/swlb.dir/perf/gpu_model.cpp.o.d"
  "/root/repo/src/perf/ladder.cpp" "src/CMakeFiles/swlb.dir/perf/ladder.cpp.o" "gcc" "src/CMakeFiles/swlb.dir/perf/ladder.cpp.o.d"
  "/root/repo/src/perf/report.cpp" "src/CMakeFiles/swlb.dir/perf/report.cpp.o" "gcc" "src/CMakeFiles/swlb.dir/perf/report.cpp.o.d"
  "/root/repo/src/perf/scaling.cpp" "src/CMakeFiles/swlb.dir/perf/scaling.cpp.o" "gcc" "src/CMakeFiles/swlb.dir/perf/scaling.cpp.o.d"
  "/root/repo/src/runtime/comm.cpp" "src/CMakeFiles/swlb.dir/runtime/comm.cpp.o" "gcc" "src/CMakeFiles/swlb.dir/runtime/comm.cpp.o.d"
  "/root/repo/src/runtime/decomposition.cpp" "src/CMakeFiles/swlb.dir/runtime/decomposition.cpp.o" "gcc" "src/CMakeFiles/swlb.dir/runtime/decomposition.cpp.o.d"
  "/root/repo/src/runtime/halo.cpp" "src/CMakeFiles/swlb.dir/runtime/halo.cpp.o" "gcc" "src/CMakeFiles/swlb.dir/runtime/halo.cpp.o.d"
  "/root/repo/src/sw/cpe.cpp" "src/CMakeFiles/swlb.dir/sw/cpe.cpp.o" "gcc" "src/CMakeFiles/swlb.dir/sw/cpe.cpp.o.d"
  "/root/repo/src/sw/sw_kernels.cpp" "src/CMakeFiles/swlb.dir/sw/sw_kernels.cpp.o" "gcc" "src/CMakeFiles/swlb.dir/sw/sw_kernels.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
