file(REMOVE_RECURSE
  "libswlb.a"
)
