# Empty compiler generated dependencies file for test_cavity_ghia.
# This may be replaced when dependencies are built.
