file(REMOVE_RECURSE
  "CMakeFiles/test_cavity_ghia.dir/test_cavity_ghia.cpp.o"
  "CMakeFiles/test_cavity_ghia.dir/test_cavity_ghia.cpp.o.d"
  "test_cavity_ghia"
  "test_cavity_ghia.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cavity_ghia.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
