file(REMOVE_RECURSE
  "CMakeFiles/test_porous.dir/test_porous.cpp.o"
  "CMakeFiles/test_porous.dir/test_porous.cpp.o.d"
  "test_porous"
  "test_porous.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_porous.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
