# Empty dependencies file for test_porous.
# This may be replaced when dependencies are built.
