file(REMOVE_RECURSE
  "CMakeFiles/test_observables.dir/test_observables.cpp.o"
  "CMakeFiles/test_observables.dir/test_observables.cpp.o.d"
  "test_observables"
  "test_observables.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_observables.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
