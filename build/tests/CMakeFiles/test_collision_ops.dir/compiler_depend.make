# Empty compiler generated dependencies file for test_collision_ops.
# This may be replaced when dependencies are built.
