file(REMOVE_RECURSE
  "CMakeFiles/test_collision_ops.dir/test_collision_ops.cpp.o"
  "CMakeFiles/test_collision_ops.dir/test_collision_ops.cpp.o.d"
  "test_collision_ops"
  "test_collision_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_collision_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
