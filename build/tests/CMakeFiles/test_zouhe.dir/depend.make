# Empty dependencies file for test_zouhe.
# This may be replaced when dependencies are built.
