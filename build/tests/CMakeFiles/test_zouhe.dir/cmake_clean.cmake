file(REMOVE_RECURSE
  "CMakeFiles/test_zouhe.dir/test_zouhe.cpp.o"
  "CMakeFiles/test_zouhe.dir/test_zouhe.cpp.o.d"
  "test_zouhe"
  "test_zouhe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_zouhe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
