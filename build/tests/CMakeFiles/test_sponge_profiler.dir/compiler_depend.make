# Empty compiler generated dependencies file for test_sponge_profiler.
# This may be replaced when dependencies are built.
