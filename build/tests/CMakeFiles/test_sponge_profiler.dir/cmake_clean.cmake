file(REMOVE_RECURSE
  "CMakeFiles/test_sponge_profiler.dir/test_sponge_profiler.cpp.o"
  "CMakeFiles/test_sponge_profiler.dir/test_sponge_profiler.cpp.o.d"
  "test_sponge_profiler"
  "test_sponge_profiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sponge_profiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
