file(REMOVE_RECURSE
  "CMakeFiles/test_parallel_io.dir/test_parallel_io.cpp.o"
  "CMakeFiles/test_parallel_io.dir/test_parallel_io.cpp.o.d"
  "test_parallel_io"
  "test_parallel_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_parallel_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
