file(REMOVE_RECURSE
  "CMakeFiles/test_sw_kernels.dir/test_sw_kernels.cpp.o"
  "CMakeFiles/test_sw_kernels.dir/test_sw_kernels.cpp.o.d"
  "test_sw_kernels"
  "test_sw_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sw_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
