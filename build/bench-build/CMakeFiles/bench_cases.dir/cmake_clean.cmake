file(REMOVE_RECURSE
  "../bench/bench_cases"
  "../bench/bench_cases.pdb"
  "CMakeFiles/bench_cases.dir/bench_cases.cpp.o"
  "CMakeFiles/bench_cases.dir/bench_cases.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
