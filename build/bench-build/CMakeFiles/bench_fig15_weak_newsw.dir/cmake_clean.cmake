file(REMOVE_RECURSE
  "../bench/bench_fig15_weak_newsw"
  "../bench/bench_fig15_weak_newsw.pdb"
  "CMakeFiles/bench_fig15_weak_newsw.dir/bench_fig15_weak_newsw.cpp.o"
  "CMakeFiles/bench_fig15_weak_newsw.dir/bench_fig15_weak_newsw.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_weak_newsw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
