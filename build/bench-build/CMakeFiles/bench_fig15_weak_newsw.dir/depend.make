# Empty dependencies file for bench_fig15_weak_newsw.
# This may be replaced when dependencies are built.
