file(REMOVE_RECURSE
  "../bench/bench_machine_table"
  "../bench/bench_machine_table.pdb"
  "CMakeFiles/bench_machine_table.dir/bench_machine_table.cpp.o"
  "CMakeFiles/bench_machine_table.dir/bench_machine_table.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_machine_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
