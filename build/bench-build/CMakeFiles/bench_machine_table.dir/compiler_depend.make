# Empty compiler generated dependencies file for bench_machine_table.
# This may be replaced when dependencies are built.
