file(REMOVE_RECURSE
  "../bench/bench_fig13_weak_taihulight"
  "../bench/bench_fig13_weak_taihulight.pdb"
  "CMakeFiles/bench_fig13_weak_taihulight.dir/bench_fig13_weak_taihulight.cpp.o"
  "CMakeFiles/bench_fig13_weak_taihulight.dir/bench_fig13_weak_taihulight.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_weak_taihulight.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
