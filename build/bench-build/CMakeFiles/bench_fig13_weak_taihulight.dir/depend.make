# Empty dependencies file for bench_fig13_weak_taihulight.
# This may be replaced when dependencies are built.
