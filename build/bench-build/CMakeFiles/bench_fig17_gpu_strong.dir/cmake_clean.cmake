file(REMOVE_RECURSE
  "../bench/bench_fig17_gpu_strong"
  "../bench/bench_fig17_gpu_strong.pdb"
  "CMakeFiles/bench_fig17_gpu_strong.dir/bench_fig17_gpu_strong.cpp.o"
  "CMakeFiles/bench_fig17_gpu_strong.dir/bench_fig17_gpu_strong.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_gpu_strong.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
