# Empty compiler generated dependencies file for bench_blocking_sweep.
# This may be replaced when dependencies are built.
