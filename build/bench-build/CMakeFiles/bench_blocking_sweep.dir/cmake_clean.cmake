file(REMOVE_RECURSE
  "../bench/bench_blocking_sweep"
  "../bench/bench_blocking_sweep.pdb"
  "CMakeFiles/bench_blocking_sweep.dir/bench_blocking_sweep.cpp.o"
  "CMakeFiles/bench_blocking_sweep.dir/bench_blocking_sweep.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_blocking_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
