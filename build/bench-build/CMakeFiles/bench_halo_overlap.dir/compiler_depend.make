# Empty compiler generated dependencies file for bench_halo_overlap.
# This may be replaced when dependencies are built.
