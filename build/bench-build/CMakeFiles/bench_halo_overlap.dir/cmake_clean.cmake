file(REMOVE_RECURSE
  "../bench/bench_halo_overlap"
  "../bench/bench_halo_overlap.pdb"
  "CMakeFiles/bench_halo_overlap.dir/bench_halo_overlap.cpp.o"
  "CMakeFiles/bench_halo_overlap.dir/bench_halo_overlap.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_halo_overlap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
