# Empty dependencies file for bench_fig14_strong_taihulight.
# This may be replaced when dependencies are built.
