file(REMOVE_RECURSE
  "../bench/bench_fig16_strong_newsw"
  "../bench/bench_fig16_strong_newsw.pdb"
  "CMakeFiles/bench_fig16_strong_newsw.dir/bench_fig16_strong_newsw.cpp.o"
  "CMakeFiles/bench_fig16_strong_newsw.dir/bench_fig16_strong_newsw.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_strong_newsw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
