# Empty dependencies file for bench_fig16_strong_newsw.
# This may be replaced when dependencies are built.
