file(REMOVE_RECURSE
  "../bench/bench_roofline_table"
  "../bench/bench_roofline_table.pdb"
  "CMakeFiles/bench_roofline_table.dir/bench_roofline_table.cpp.o"
  "CMakeFiles/bench_roofline_table.dir/bench_roofline_table.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_roofline_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
