# Empty dependencies file for bench_roofline_table.
# This may be replaced when dependencies are built.
