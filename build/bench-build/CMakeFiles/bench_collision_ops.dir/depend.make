# Empty dependencies file for bench_collision_ops.
# This may be replaced when dependencies are built.
