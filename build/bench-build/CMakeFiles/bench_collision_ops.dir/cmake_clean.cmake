file(REMOVE_RECURSE
  "../bench/bench_collision_ops"
  "../bench/bench_collision_ops.pdb"
  "CMakeFiles/bench_collision_ops.dir/bench_collision_ops.cpp.o"
  "CMakeFiles/bench_collision_ops.dir/bench_collision_ops.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_collision_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
