file(REMOVE_RECURSE
  "../bench/bench_fig08_ladder"
  "../bench/bench_fig08_ladder.pdb"
  "CMakeFiles/bench_fig08_ladder.dir/bench_fig08_ladder.cpp.o"
  "CMakeFiles/bench_fig08_ladder.dir/bench_fig08_ladder.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_ladder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
