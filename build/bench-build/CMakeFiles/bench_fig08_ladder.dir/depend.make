# Empty dependencies file for bench_fig08_ladder.
# This may be replaced when dependencies are built.
