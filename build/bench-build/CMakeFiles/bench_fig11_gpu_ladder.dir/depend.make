# Empty dependencies file for bench_fig11_gpu_ladder.
# This may be replaced when dependencies are built.
