file(REMOVE_RECURSE
  "CMakeFiles/swlb_run.dir/swlb_run.cpp.o"
  "CMakeFiles/swlb_run.dir/swlb_run.cpp.o.d"
  "swlb_run"
  "swlb_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swlb_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
