# Empty dependencies file for swlb_run.
# This may be replaced when dependencies are built.
