# Empty dependencies file for suboff.
# This may be replaced when dependencies are built.
