file(REMOVE_RECURSE
  "CMakeFiles/suboff.dir/suboff.cpp.o"
  "CMakeFiles/suboff.dir/suboff.cpp.o.d"
  "suboff"
  "suboff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/suboff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
