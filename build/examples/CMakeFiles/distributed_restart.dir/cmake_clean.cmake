file(REMOVE_RECURSE
  "CMakeFiles/distributed_restart.dir/distributed_restart.cpp.o"
  "CMakeFiles/distributed_restart.dir/distributed_restart.cpp.o.d"
  "distributed_restart"
  "distributed_restart.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distributed_restart.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
