# Empty compiler generated dependencies file for distributed_restart.
# This may be replaced when dependencies are built.
