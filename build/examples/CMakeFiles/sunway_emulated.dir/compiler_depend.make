# Empty compiler generated dependencies file for sunway_emulated.
# This may be replaced when dependencies are built.
