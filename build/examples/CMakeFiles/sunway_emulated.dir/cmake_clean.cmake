file(REMOVE_RECURSE
  "CMakeFiles/sunway_emulated.dir/sunway_emulated.cpp.o"
  "CMakeFiles/sunway_emulated.dir/sunway_emulated.cpp.o.d"
  "sunway_emulated"
  "sunway_emulated.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sunway_emulated.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
