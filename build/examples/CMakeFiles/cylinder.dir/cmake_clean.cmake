file(REMOVE_RECURSE
  "CMakeFiles/cylinder.dir/cylinder.cpp.o"
  "CMakeFiles/cylinder.dir/cylinder.cpp.o.d"
  "cylinder"
  "cylinder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cylinder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
