# Empty compiler generated dependencies file for cylinder.
# This may be replaced when dependencies are built.
