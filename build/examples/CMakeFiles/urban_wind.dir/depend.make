# Empty dependencies file for urban_wind.
# This may be replaced when dependencies are built.
