file(REMOVE_RECURSE
  "CMakeFiles/urban_wind.dir/urban_wind.cpp.o"
  "CMakeFiles/urban_wind.dir/urban_wind.cpp.o.d"
  "urban_wind"
  "urban_wind.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/urban_wind.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
