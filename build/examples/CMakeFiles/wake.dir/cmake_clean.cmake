file(REMOVE_RECURSE
  "CMakeFiles/wake.dir/wake.cpp.o"
  "CMakeFiles/wake.dir/wake.cpp.o.d"
  "wake"
  "wake.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wake.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
