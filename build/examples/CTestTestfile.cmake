# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart" "24" "300")
set_tests_properties(example_quickstart PROPERTIES  WORKING_DIRECTORY "/root/repo/build/examples" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;24;swlb_example_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cylinder "/root/repo/build/examples/cylinder" "12" "6000")
set_tests_properties(example_cylinder PROPERTIES  WORKING_DIRECTORY "/root/repo/build/examples" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;25;swlb_example_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_suboff "/root/repo/build/examples/suboff" "48" "250")
set_tests_properties(example_suboff PROPERTIES  WORKING_DIRECTORY "/root/repo/build/examples" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;26;swlb_example_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_urban_wind "/root/repo/build/examples/urban_wind" "60" "150")
set_tests_properties(example_urban_wind PROPERTIES  WORKING_DIRECTORY "/root/repo/build/examples" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;27;swlb_example_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_distributed_restart "/root/repo/build/examples/distributed_restart" "16" "80")
set_tests_properties(example_distributed_restart PROPERTIES  WORKING_DIRECTORY "/root/repo/build/examples" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;28;swlb_example_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_sunway_emulated "/root/repo/build/examples/sunway_emulated" "32" "32" "8")
set_tests_properties(example_sunway_emulated PROPERTIES  WORKING_DIRECTORY "/root/repo/build/examples" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;29;swlb_example_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_wake "/root/repo/build/examples/wake" "30" "1200")
set_tests_properties(example_wake PROPERTIES  WORKING_DIRECTORY "/root/repo/build/examples" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;30;swlb_example_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_swlb_run "/root/repo/build/examples/swlb_run" "--demo")
set_tests_properties(example_swlb_run PROPERTIES  WORKING_DIRECTORY "/root/repo/build/examples" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;31;add_test;/root/repo/examples/CMakeLists.txt;0;")
