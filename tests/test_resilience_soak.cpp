// Randomized-looking but fully deterministic fault-injection soak: a
// fixed-seed campaign of delay / drop / corrupt / permanent-kill events
// over a lid-driven cavity run that shrinks 4 -> 3 -> 2 ranks, asserting
// the run completes and the final populations match a fault-free
// reference within storage-precision bounds.  Every rung of the
// escalation ladder fires at least once:
//   - the delayed halo message is absorbed by recv retry (no rollback),
//   - the dropped halo message times out and rolls back,
//   - the corrupted halo payload trips the per-step mass guard,
//   - each permanent kill triggers probe + shrink + splice restore.
// Step count is tunable via SWLB_SOAK_STEPS (CI keeps the short profile).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>

#include "obs/metrics.hpp"
#include "runtime/resilience.hpp"

namespace swlb::runtime {
namespace {

namespace fs = std::filesystem;

std::string tmpPrefix(const std::string& name) {
  return (fs::temp_directory_path() / name).string();
}

void removeAll(const std::string& prefix) {
  std::error_code ec;
  const fs::path full(prefix);
  const fs::path dir = full.has_parent_path() ? full.parent_path() : ".";
  const std::string base = full.filename().string();
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (entry.path().filename().string().rfind(base, 0) == 0)
      fs::remove(entry.path(), ec);
  }
}

std::unique_ptr<DistributedSolver<D2Q9>> buildCavity(Comm& c, int n) {
  DistributedSolver<D2Q9>::Config cfg;
  cfg.global = {n, n, 1};
  cfg.collision.omega = 1.3;
  cfg.periodic = {false, false, true};
  auto s = std::make_unique<DistributedSolver<D2Q9>>(c, cfg);
  const std::uint8_t lid = s->materials().addMovingWall({0.05, 0, 0});
  s->paintGlobal({{0, n - 1, 0}, {n, n, 1}}, lid);
  s->finalizeMask();
  s->initUniform(1.0, {0, 0, 0});
  return s;
}

int soakSteps() {
  if (const char* env = std::getenv("SWLB_SOAK_STEPS"))
    return std::max(60, std::atoi(env));  // both kills must still fire
  return 80;
}

TEST(ResilienceSoak, CampaignSurvivesTwoShrinksAndMatchesReference) {
  const int n = 20, total = soakSteps();
  const std::string prefix = tmpPrefix("swlb_res_soak");
  removeAll(prefix);

  // Fault-free 4-rank reference trajectory.
  PopulationField reference;
  {
    World world(4);
    world.run([&](Comm& c) {
      auto s = buildCavity(c, n);
      s->run(total);
      PopulationField g = s->gatherPopulations(0);
      if (c.rank() == 0) reference = std::move(g);
    });
  }

  obs::MetricsRegistry reg;
  WorldConfig wcfg;
  wcfg.faults.seed = 1234;
  // Two permanent node retirements: 4 -> 3 ranks at step 25, 3 -> 2 at
  // step 55 (world-rank rules stay valid across the shrinks).
  wcfg.faults.rankKills.push_back({3, 25, true});
  wcfg.faults.rankKills.push_back({1, 55, true});
  // One delayed +x halo strip: longer than the first recv window, inside
  // the retry ladder (0.25 + 0.5 s) -> absorbed without a rollback.
  FaultPlan::MessageFault slow;
  slow.action = FaultPlan::Action::Delay;
  slow.src = 0;
  slow.dst = 1;
  slow.tag = 7;  // +x halo only: never collective or health traffic
  slow.nth = 5;
  slow.delay = 0.4;
  wcfg.faults.messageFaults.push_back(slow);
  // One dropped +x halo strip -> recv retries burn out -> timeout,
  // collective abort vote, rollback.
  FaultPlan::MessageFault drop;
  drop.action = FaultPlan::Action::Drop;
  drop.src = 0;
  drop.dst = 1;
  drop.tag = 7;
  drop.nth = 15;
  wcfg.faults.messageFaults.push_back(drop);
  // One corrupted -x halo payload: flips a double's exponent byte, so the
  // per-step mass guard trips and rolls the world back.
  FaultPlan::MessageFault corrupt;
  corrupt.action = FaultPlan::Action::Corrupt;
  corrupt.src = 1;
  corrupt.dst = 0;
  corrupt.tag = 1;
  corrupt.nth = 20;  // inside the 4-rank phase: the 3-rank decomposition
                     // stacks along y, retiring this -x flow
  corrupt.corruptByte = 327;  // 327 % 8 == 7: high (exponent) byte
  wcfg.faults.messageFaults.push_back(corrupt);
  wcfg.metrics = &reg;

  World world(4, wcfg);
  PopulationField survived;
  std::uint64_t shrinks = 0, ranksLost = 0, recoveries = 0;
  int finalRanks = 0;
  world.run([&](Comm& c) {
    auto solver = buildCavity(c, n);
    ResilientRunnerConfig<D2Q9> rcfg;
    rcfg.checkpoint.interval = 10;
    rcfg.checkpoint.keep = 4;
    rcfg.fault.recvTimeout = 0.25;
    rcfg.fault.recvRetries = 1;
    rcfg.fault.maxShrinks = 2;
    rcfg.guardInterval = 1;  // catches the silent halo corruption
    rcfg.maxRecoveries = 16;
    rcfg.rebuild = [n](Comm& cc) { return buildCavity(cc, n); };
    ResilientRunner<D2Q9> runner(*solver, prefix, rcfg);
    const auto rep = runner.run(static_cast<std::uint64_t>(total));
    EXPECT_EQ(runner.solver().stepsDone(), static_cast<std::uint64_t>(total));
    PopulationField g = runner.solver().gatherPopulations(0);
    if (c.rank() == 0) {
      survived = std::move(g);
      shrinks = rep.shrinks;
      ranksLost = rep.ranksLost;
      recoveries = rep.recoveries;
      finalRanks = c.size();
    }
  });

  EXPECT_EQ(world.faultStats().kills, 2u);
  EXPECT_GE(world.faultStats().delayed, 1u);
  EXPECT_GE(world.faultStats().dropped, 1u);
  EXPECT_GE(world.faultStats().corrupted, 1u);
  std::vector<int> dead = world.deadRanks();
  std::sort(dead.begin(), dead.end());
  EXPECT_EQ(dead, (std::vector<int>{1, 3}));
  EXPECT_EQ(shrinks, 2u);
  EXPECT_EQ(ranksLost, 2u);
  EXPECT_GE(recoveries, 3u);  // 2 shrinks + at least 1 transient rollback
  EXPECT_EQ(finalRanks, 2);
  EXPECT_GE(reg.counterValue("resilience.shrink.count"), 2u);
  EXPECT_GE(reg.histogramSummary("resilience.downtime_seconds").count, 2u);

  // Every recovery path is bit-exact for f64 storage, so the survivor of
  // the whole campaign matches the fault-free reference to storage
  // precision (tolerance absorbs nothing today, but keeps the assertion
  // honest if reduced-precision storage ever runs this campaign).
  ASSERT_EQ(reference.size(), survived.size());
  ASSERT_GT(reference.size(), 0u);
  for (std::size_t i = 0; i < reference.size(); ++i) {
    const Real a = reference.data()[i], b = survived.data()[i];
    ASSERT_NEAR(a, b, 1e-12 * std::max(std::abs(a), Real(1)))
        << "population " << i << " diverged";
  }
  removeAll(prefix);
}

}  // namespace
}  // namespace swlb::runtime
