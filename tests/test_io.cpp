// I/O layer: PPM, VTK, CSV, checkpoint/restart (including corruption
// detection and bitwise-identical restarts).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "io/checkpoint.hpp"
#include "io/csv.hpp"
#include "io/ppm.hpp"
#include "io/vtk.hpp"

namespace swlb::io {
namespace {

namespace fs = std::filesystem;

std::string tmpPath(const std::string& name) {
  return (fs::temp_directory_path() / name).string();
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// ------------------------------------------------------------------- PPM

TEST(Ppm, WritesValidP6Header) {
  const std::string path = tmpPath("swlb_test.ppm");
  std::vector<std::uint8_t> rgb(4 * 3 * 3, 128);
  write_ppm(path, 4, 3, rgb);
  const std::string content = slurp(path);
  EXPECT_EQ(content.rfind("P6\n4 3\n255\n", 0), 0u);
  EXPECT_EQ(content.size(), std::string("P6\n4 3\n255\n").size() + 36);
  std::remove(path.c_str());
}

TEST(Ppm, SliceAutoscalesAndColors) {
  Grid g(8, 6, 2);
  ScalarField f(g, 0);
  for (int y = 0; y < 6; ++y)
    for (int x = 0; x < 8; ++x) f(x, y, 1) = x;
  const std::string path = tmpPath("swlb_slice.ppm");
  write_ppm_slice(path, f, 1);
  const std::string content = slurp(path);
  EXPECT_EQ(content.rfind("P6\n8 6\n255\n", 0), 0u);
  std::remove(path.c_str());
}

TEST(Ppm, RejectsMismatchedBufferAndBadSlice) {
  std::vector<std::uint8_t> rgb(10);
  EXPECT_THROW(write_ppm(tmpPath("x.ppm"), 4, 3, rgb), Error);
  Grid g(4, 4, 2);
  ScalarField f(g, 0);
  EXPECT_THROW(write_ppm_slice(tmpPath("x.ppm"), f, 5), Error);
}

TEST(Ppm, VelocityMagnitudeSlice) {
  Grid g(4, 4, 1);
  VectorField u(g);
  u.set(2, 2, 0, {0.3, 0.4, 0});
  const std::string path = tmpPath("swlb_vel.ppm");
  write_ppm_velocity_slice(path, u, 0, 0.5);
  EXPECT_FALSE(slurp(path).empty());
  std::remove(path.c_str());
}

// ------------------------------------------------------------------- VTK

TEST(Vtk, StructuredPointsLayout) {
  Grid g(3, 2, 2);
  ScalarField rho(g, 1.5);
  VectorField u(g);
  u.set(1, 1, 1, {1, 2, 3});
  VtkWriter w(g, 0.5, {10, 0, 0});
  w.addScalar("density", rho);
  w.addVector("velocity", u);
  const std::string path = tmpPath("swlb_test.vtk");
  w.write(path);
  const std::string content = slurp(path);
  EXPECT_NE(content.find("DATASET STRUCTURED_POINTS"), std::string::npos);
  EXPECT_NE(content.find("DIMENSIONS 3 2 2"), std::string::npos);
  EXPECT_NE(content.find("ORIGIN 10 0 0"), std::string::npos);
  EXPECT_NE(content.find("SPACING 0.5 0.5 0.5"), std::string::npos);
  EXPECT_NE(content.find("POINT_DATA 12"), std::string::npos);
  EXPECT_NE(content.find("SCALARS density double 1"), std::string::npos);
  EXPECT_NE(content.find("VECTORS velocity double"), std::string::npos);
  EXPECT_NE(content.find("1 2 3"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Vtk, RejectsGridMismatch) {
  VtkWriter w(Grid(4, 4, 4));
  ScalarField wrong(Grid(3, 3, 3), 0);
  EXPECT_THROW(w.addScalar("x", wrong), Error);
}

// ------------------------------------------------------------------- CSV

TEST(Csv, HeaderAndRows) {
  const std::string path = tmpPath("swlb_test.csv");
  {
    CsvWriter w(path, {"step", "drag", "lift"});
    w.row({1, 0.5, -0.25});
    w.row({2, 0.6, -0.20});
    EXPECT_EQ(w.rowsWritten(), 2u);
  }
  const std::string content = slurp(path);
  EXPECT_EQ(content.rfind("step,drag,lift\n", 0), 0u);
  EXPECT_NE(content.find("1,0.5,-0.25"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Csv, RejectsWidthMismatchAndEmptyHeader) {
  const std::string path = tmpPath("swlb_bad.csv");
  CsvWriter w(path, {"a", "b"});
  EXPECT_THROW(w.row({1.0}), Error);
  EXPECT_THROW(CsvWriter(tmpPath("swlb_bad2.csv"), {}), Error);
  std::remove(path.c_str());
}

// ------------------------------------------------------------ checkpoint

TEST(Checkpoint, FieldRoundTripIsBitwise) {
  Grid g(6, 5, 4);
  PopulationField f(g, 19);
  for (std::size_t i = 0; i < f.size(); ++i)
    f.data()[i] = static_cast<Real>(i) * 0.001 - 3.0;

  const std::string path = tmpPath("swlb_test.ckpt");
  save_checkpoint(path, f, 1234, 1);

  const CheckpointMeta meta = read_checkpoint_meta(path);
  EXPECT_EQ(meta.version, kCheckpointVersion);
  EXPECT_EQ(meta.steps, 1234u);
  EXPECT_EQ(meta.parity, 1);
  EXPECT_EQ(meta.interior, (Int3{6, 5, 4}));
  EXPECT_EQ(meta.q, 19);

  PopulationField back(g, 19);
  load_checkpoint(path, back);
  for (std::size_t i = 0; i < f.size(); ++i)
    ASSERT_EQ(back.data()[i], f.data()[i]);
  std::remove(path.c_str());
}

TEST(Checkpoint, SolverRestartContinuesIdentically) {
  // Run 30 steps; checkpoint at 10 and re-run 20 in a fresh solver: the
  // final states must match bit for bit.
  auto makeSolver = [] {
    CollisionConfig cfg;
    cfg.omega = 1.3;
    Solver<D3Q19> s(Grid(8, 8, 4), cfg, Periodicity{true, true, true});
    s.finalizeMask();
    s.initField([](int x, int y, int z, Real& rho, Vec3& u) {
      rho = 1.0 + 0.005 * ((x + y + z) % 5);
      u = {0.01 * (x % 3), -0.01 * (y % 2), 0.005 * (z % 2)};
    });
    return s;
  };

  Solver<D3Q19> reference = makeSolver();
  reference.run(30);

  const std::string path = tmpPath("swlb_restart.ckpt");
  Solver<D3Q19> first = makeSolver();
  first.run(10);
  save_checkpoint(path, first);

  Solver<D3Q19> resumed = makeSolver();
  load_checkpoint(path, resumed);
  EXPECT_EQ(resumed.stepsDone(), 10u);
  resumed.run(20);

  const PopulationField& a = reference.f();
  const PopulationField& b = resumed.f();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) ASSERT_EQ(a.data()[i], b.data()[i]);
  std::remove(path.c_str());
}

TEST(Checkpoint, IdenticalStateProducesByteIdenticalFiles) {
  // The header struct is zeroed before filling, so any ABI padding is
  // written as deterministic bytes: saving the same state twice must give
  // byte-identical files (required for dedup/content-addressed storage).
  Grid g(5, 4, 3);
  PopulationField f(g, 19);
  for (std::size_t i = 0; i < f.size(); ++i)
    f.data()[i] = std::sin(static_cast<Real>(i));

  const std::string pathA = tmpPath("swlb_dup_a.ckpt");
  const std::string pathB = tmpPath("swlb_dup_b.ckpt");
  save_checkpoint(pathA, f, 77, 1);
  save_checkpoint(pathB, f, 77, 1);
  const std::string a = slurp(pathA);
  const std::string b = slurp(pathB);
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
  std::remove(pathA.c_str());
  std::remove(pathB.c_str());
}

TEST(Checkpoint, DetectsCorruption) {
  Grid g(4, 4, 4);
  PopulationField f(g, 19);
  f.fill(0.25);
  const std::string path = tmpPath("swlb_corrupt.ckpt");
  save_checkpoint(path, f, 1, 0);
  // Flip one payload byte.
  {
    std::fstream io(path, std::ios::in | std::ios::out | std::ios::binary);
    io.seekp(-9, std::ios::end);
    char c;
    io.read(&c, 1);
    io.seekp(-9, std::ios::end);
    c = static_cast<char>(c ^ 0x40);
    io.write(&c, 1);
  }
  PopulationField back(g, 19);
  EXPECT_THROW(load_checkpoint(path, back), Error);
  std::remove(path.c_str());
}

TEST(Checkpoint, RejectsGeometryMismatchAndBadFiles) {
  Grid g(4, 4, 4);
  PopulationField f(g, 19);
  const std::string path = tmpPath("swlb_geom.ckpt");
  save_checkpoint(path, f, 5, 0);

  PopulationField wrongGrid(Grid(5, 4, 4), 19);
  EXPECT_THROW(load_checkpoint(path, wrongGrid), Error);
  PopulationField wrongQ(g, 15);
  EXPECT_THROW(load_checkpoint(path, wrongQ), Error);
  EXPECT_THROW(read_checkpoint_meta(tmpPath("swlb_missing.ckpt")), Error);

  // Bad magic.
  {
    std::ofstream os(path, std::ios::binary);
    os << "NOTACKPTFILE----------------------------------------";
  }
  EXPECT_THROW(read_checkpoint_meta(path), Error);
  std::remove(path.c_str());
}

TEST(Checkpoint, Fnv1aKnownVector) {
  // FNV-1a("") = offset basis; FNV-1a("a") = 0xaf63dc4c8601ec8c.
  EXPECT_EQ(fnv1a("", 0), 14695981039346656037ull);
  EXPECT_EQ(fnv1a("a", 1), 0xaf63dc4c8601ec8cull);
}

}  // namespace
}  // namespace swlb::io
