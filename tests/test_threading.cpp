// Host-thread parallel fused kernel: disjoint z-slab writes make any
// thread count bit-identical to the serial kernel.
#include <gtest/gtest.h>

#include <cmath>

#include "core/solver.hpp"

namespace swlb {
namespace {

class ThreadCountSweep : public ::testing::TestWithParam<int> {};

TEST_P(ThreadCountSweep, BitIdenticalToSerialKernel) {
  const int threads = GetParam();
  auto run = [&](int n) {
    CollisionConfig cfg;
    cfg.omega = 1.4;
    Solver<D3Q19> solver(Grid(12, 10, 9), cfg, Periodicity{true, true, true});
    solver.setHostThreads(n);
    const auto lidLess = solver.materials().addMovingWall({0.03, 0, 0});
    solver.paint({{2, 2, 2}, {5, 5, 5}}, MaterialTable::kSolid);
    solver.paint({{8, 3, 3}, {10, 6, 6}}, lidLess);
    solver.finalizeMask();
    solver.initField([](int x, int y, int z, Real& rho, Vec3& u) {
      rho = 1.0 + 0.003 * ((x * 3 + y * 5 + z * 7) % 11);
      u = {0.02 * std::sin(0.4 * y), 0.01 * std::cos(0.6 * z), 0.005};
    });
    solver.run(12);
    return solver;
  };
  Solver<D3Q19> serial = run(1);
  Solver<D3Q19> parallel = run(threads);
  ASSERT_EQ(serial.f().size(), parallel.f().size());
  for (std::size_t i = 0; i < serial.f().size(); ++i)
    ASSERT_EQ(serial.f().data()[i], parallel.f().data()[i]);
}

INSTANTIATE_TEST_SUITE_P(Threads, ThreadCountSweep, ::testing::Values(2, 3, 4, 16),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "t" + std::to_string(info.param);
                         });

TEST(Threading, MoreThreadsThanSlabsStillCorrect) {
  // nz = 2 with 8 threads: the kernel clamps the thread count.
  CollisionConfig cfg;
  cfg.omega = 1.2;
  Grid g(8, 8, 2);
  MaskField mask(g, MaterialTable::kFluid);
  MaterialTable mats;
  fill_halo_mask(mask, Periodicity{true, true, true}, MaterialTable::kSolid);
  PopulationField src(g, D3Q19::Q), a(g, D3Q19::Q), b(g, D3Q19::Q);
  Real feq[D3Q19::Q];
  equilibria<D3Q19>(1.0, {0.02, -0.01, 0}, feq);
  for (int q = 0; q < D3Q19::Q; ++q)
    for (int z = -1; z <= 2; ++z)
      for (int y = -1; y <= 8; ++y)
        for (int x = -1; x <= 8; ++x) src(q, x, y, z) = feq[q];
  stream_collide_fused<D3Q19>(src, a, mask, mats, cfg, g.interior());
  stream_collide_fused_mt<D3Q19>(src, b, mask, mats, cfg, g.interior(), 8);
  for (std::size_t i = 0; i < a.size(); ++i)
    ASSERT_EQ(a.data()[i], b.data()[i]);
}

TEST(Threading, SubRangeDispatchRespectsBounds) {
  // A partial z-range with threads must only write that range.
  Grid g(6, 6, 8);
  MaskField mask(g, MaterialTable::kFluid);
  MaterialTable mats;
  fill_halo_mask(mask, Periodicity{true, true, true}, MaterialTable::kSolid);
  PopulationField src(g, D3Q19::Q), dst(g, D3Q19::Q);
  Real feq[D3Q19::Q];
  equilibria<D3Q19>(1.0, {0.01, 0, 0}, feq);
  for (int q = 0; q < D3Q19::Q; ++q)
    for (int z = -1; z <= 8; ++z)
      for (int y = -1; y <= 6; ++y)
        for (int x = -1; x <= 6; ++x) src(q, x, y, z) = feq[q];
  dst.fill(-7.0);  // sentinel
  CollisionConfig cfg;
  cfg.omega = 1.0;
  Box3 range = g.interior();
  range.lo.z = 2;
  range.hi.z = 6;
  stream_collide_fused_mt<D3Q19>(src, dst, mask, mats, cfg, range, 3);
  EXPECT_EQ(dst(0, 3, 3, 1), -7.0);  // untouched below
  EXPECT_EQ(dst(0, 3, 3, 6), -7.0);  // untouched above
  EXPECT_NE(dst(0, 3, 3, 3), -7.0);  // written inside
}

}  // namespace
}  // namespace swlb
