// Equilibrium distribution properties: exact moments, Galilean terms,
// positivity in the low-Mach regime.
#include <gtest/gtest.h>

#include <cmath>

#include "core/equilibrium.hpp"

namespace swlb {
namespace {

template <class D>
class EquilibriumTest : public ::testing::Test {};

using Descriptors = ::testing::Types<D2Q9, D3Q15, D3Q19, D3Q27>;
TYPED_TEST_SUITE(EquilibriumTest, Descriptors);

template <class D>
Vec3 clampToDim(Vec3 u) {
  if (D::dim == 2) u.z = 0;
  return u;
}

TYPED_TEST(EquilibriumTest, ZerothMomentIsDensity) {
  using D = TypeParam;
  for (Real rho : {0.5, 1.0, 1.2}) {
    for (Vec3 u : {Vec3{0, 0, 0}, Vec3{0.05, -0.02, 0.01}, Vec3{-0.1, 0.1, 0.03}}) {
      u = clampToDim<D>(u);
      Real feq[D::Q];
      equilibria<D>(rho, u, feq);
      Real sum = 0;
      for (int i = 0; i < D::Q; ++i) sum += feq[i];
      EXPECT_NEAR(sum, rho, 1e-13);
    }
  }
}

TYPED_TEST(EquilibriumTest, FirstMomentIsMomentum) {
  using D = TypeParam;
  const Real rho = 1.1;
  const Vec3 u = clampToDim<D>({0.08, -0.03, 0.05});
  Real feq[D::Q];
  equilibria<D>(rho, u, feq);
  Vec3 mom{0, 0, 0};
  for (int i = 0; i < D::Q; ++i) {
    mom.x += feq[i] * D::c[i][0];
    mom.y += feq[i] * D::c[i][1];
    mom.z += feq[i] * D::c[i][2];
  }
  EXPECT_NEAR(mom.x, rho * u.x, 1e-13);
  EXPECT_NEAR(mom.y, rho * u.y, 1e-13);
  EXPECT_NEAR(mom.z, rho * u.z, 1e-13);
}

TYPED_TEST(EquilibriumTest, SecondMomentMatchesEulerStress) {
  using D = TypeParam;
  // sum_i feq_i c_ia c_ib = rho cs^2 delta_ab + rho u_a u_b  (exact for the
  // second-order polynomial equilibrium on these lattices).
  const Real rho = 0.9;
  const Vec3 u = clampToDim<D>({0.06, 0.02, -0.04});
  const Real uv[3] = {u.x, u.y, u.z};
  Real feq[D::Q];
  equilibria<D>(rho, u, feq);
  const int dmax = D::dim;
  for (int a = 0; a < dmax; ++a)
    for (int b = 0; b < dmax; ++b) {
      Real m = 0;
      for (int i = 0; i < D::Q; ++i) m += feq[i] * D::c[i][a] * D::c[i][b];
      const Real expected = rho * (kCs2 * (a == b ? 1 : 0) + uv[a] * uv[b]);
      EXPECT_NEAR(m, expected, 1e-13) << "a=" << a << " b=" << b;
    }
}

TYPED_TEST(EquilibriumTest, AtRestEqualsWeightTimesDensity) {
  using D = TypeParam;
  Real feq[D::Q];
  equilibria<D>(2.0, {0, 0, 0}, feq);
  for (int i = 0; i < D::Q; ++i) EXPECT_NEAR(feq[i], 2.0 * D::w[i], 1e-15);
}

TYPED_TEST(EquilibriumTest, PositiveAtLowMach) {
  using D = TypeParam;
  Real feq[D::Q];
  const Vec3 u = clampToDim<D>({0.1, 0.1, 0.1});
  equilibria<D>(1.0, u, feq);
  for (int i = 0; i < D::Q; ++i) EXPECT_GT(feq[i], 0.0) << "direction " << i;
}

TYPED_TEST(EquilibriumTest, SingleAndBatchedFormsAgree) {
  using D = TypeParam;
  const Real rho = 1.05;
  const Vec3 u = clampToDim<D>({0.03, -0.07, 0.02});
  Real feq[D::Q];
  equilibria<D>(rho, u, feq);
  for (int i = 0; i < D::Q; ++i)
    EXPECT_DOUBLE_EQ(feq[i], (equilibrium<D>(i, rho, u)));
}

TYPED_TEST(EquilibriumTest, ReflectionSymmetry) {
  using D = TypeParam;
  // feq_i(rho, u) == feq_opp(i)(rho, -u)
  const Real rho = 1.0;
  const Vec3 u = clampToDim<D>({0.04, 0.05, -0.06});
  const Vec3 mu{-u.x, -u.y, -u.z};
  Real a[D::Q], b[D::Q];
  equilibria<D>(rho, u, a);
  equilibria<D>(rho, mu, b);
  for (int i = 0; i < D::Q; ++i) EXPECT_NEAR(a[i], b[D::opp(i)], 1e-15);
}

TYPED_TEST(EquilibriumTest, MomentsHelperInvertsEquilibria) {
  using D = TypeParam;
  const Real rho = 0.95;
  const Vec3 u = clampToDim<D>({0.02, 0.08, -0.01});
  Real feq[D::Q];
  equilibria<D>(rho, u, feq);
  Real r;
  Vec3 mom;
  moments<D>(feq, r, mom);
  EXPECT_NEAR(r, rho, 1e-13);
  EXPECT_NEAR(mom.x, rho * u.x, 1e-13);
  EXPECT_NEAR(mom.y, rho * u.y, 1e-13);
  EXPECT_NEAR(mom.z, rho * u.z, 1e-13);
}

}  // namespace
}  // namespace swlb
