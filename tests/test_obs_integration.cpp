// Cross-layer observability invariants (DESIGN.md §6): the metrics the
// obs layer reports must agree with what the runtime independently
// measures — halo bytes with the decomposition's model, comm counters
// with World::totalStats, fault counters with FaultStats, checkpoint
// bytes with the files on disk — and phase times must nest inside the
// step time.  Everything runs on both halo modes where it applies.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "obs/context.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/comm.hpp"
#include "runtime/distributed_solver.hpp"
#include "runtime/parallel_io.hpp"

namespace {

using namespace swlb;
using namespace swlb::obs;
using runtime::Comm;
using runtime::DistributedSolver;
using runtime::FaultPlan;
using runtime::HaloMode;
using runtime::TimeoutError;
using runtime::World;
using runtime::WorldConfig;

DistributedSolver<D2Q9>::Config solverConfig(HaloMode mode) {
  DistributedSolver<D2Q9>::Config cfg;
  cfg.global = {16, 16, 1};
  cfg.procGrid = {2, 2, 1};
  cfg.periodic = {true, true, false};
  cfg.mode = mode;
  return cfg;
}

void initShear(DistributedSolver<D2Q9>& solver) {
  solver.initField([](int, int y, int, Real& rho, Vec3& u) {
    rho = 1.0;
    u = {0.02 * ((y % 4) - 1.5), 0.0, 0.0};
  });
}

class ObsIntegration : public ::testing::TestWithParam<HaloMode> {};

// Halo traffic metered by Comm must equal the decomposition's analytic
// model: counter delta over the stepping window == sum over ranks of
// haloBytesPerStep() x steps.  Barriers fence the window; collectives use
// condition variables, not messages, so they never pollute the counters.
TEST_P(ObsIntegration, HaloBytesCounterMatchesModel) {
  constexpr std::uint64_t kSteps = 7;
  constexpr int kRanks = 4;
  MetricsRegistry reg;
  WorldConfig wcfg;
  wcfg.metrics = &reg;
  World world(kRanks, wcfg);

  std::uint64_t sentBefore = 0, sentAfter = 0;
  std::uint64_t recvBefore = 0, recvAfter = 0;
  std::uint64_t msgsBefore = 0, msgsAfter = 0;
  std::uint64_t collMsgsBefore = 0, collMsgsAfter = 0;
  double expectedBytes = 0;
  // Collectives are messages (swlb::coll), so counter snapshots need a
  // quiescent instant: a barrier alone cannot fence its own traffic (a
  // peer may still owe its last dissemination send when rank 0 exits).
  // Rendezvous: after a barrier every rank reports to rank 0 with a
  // zero-byte token and blocks until rank 0 has read the counters and
  // releases it — nothing is in flight during the read.  All rendezvous
  // payloads are zero bytes, so byte deltas stay pure halo traffic.
  constexpr int kReportTag = 500;
  constexpr int kReleaseTag = 501;
  auto quiescentRead = [&](Comm& comm, auto&& read) {
    comm.barrier();
    if (comm.rank() == 0) {
      for (int r = 1; r < comm.size(); ++r)
        comm.recv(r, kReportTag, nullptr, 0);
      read();
      for (int r = 1; r < comm.size(); ++r)
        comm.send(r, kReleaseTag, nullptr, 0);
    } else {
      comm.send(0, kReportTag, nullptr, 0);
      comm.recv(0, kReleaseTag, nullptr, 0);
    }
  };
  world.run([&](Comm& comm) {
    DistributedSolver<D2Q9> solver(comm, solverConfig(GetParam()));
    initShear(solver);
    quiescentRead(comm, [&] {
      sentBefore = reg.counterValue("comm.bytes_sent");
      recvBefore = reg.counterValue("comm.bytes_received");
      msgsBefore = reg.counterValue("comm.messages_sent");
      collMsgsBefore = reg.counterValue("coll.messages_sent");
    });
    solver.run(kSteps);
    quiescentRead(comm, [&] {
      sentAfter = reg.counterValue("comm.bytes_sent");
      recvAfter = reg.counterValue("comm.bytes_received");
      msgsAfter = reg.counterValue("comm.messages_sent");
      collMsgsAfter = reg.counterValue("coll.messages_sent");
    });
    const double total = comm.allreduce(
        static_cast<double>(solver.haloBytesPerStep()), Comm::Op::Sum);
    if (comm.rank() == 0) expectedBytes = total;
  });

  const auto expected =
      static_cast<std::uint64_t>(expectedBytes) * kSteps;
  EXPECT_EQ(sentAfter - sentBefore, expected);
  // Nothing was dropped, so every sent halo byte was also received.
  EXPECT_EQ(recvAfter - recvBefore, expected);
  // 2x2 periodic torus: 8 neighbour messages per rank per step.  The
  // window also contains one barrier (subtracted via the coll counter)
  // and the zero-byte rendezvous tokens: P-1 releases after the first
  // read plus P-1 reports before the second.
  const std::uint64_t collMsgs = collMsgsAfter - collMsgsBefore;
  const std::uint64_t tokenMsgs = 2u * (kRanks - 1);
  EXPECT_EQ((msgsAfter - msgsBefore) - collMsgs - tokenMsgs,
            4u * 8u * kSteps);
}

// Top-level phase times are disjoint sub-intervals of "step": summed over
// the whole run (and all ranks, since the registry is shared) they must
// not exceed the step total by more than bookkeeping overhead.
TEST_P(ObsIntegration, PhaseTimesSumWithinStepTime) {
  constexpr std::uint64_t kSteps = 10;
  constexpr int kRanks = 4;
  MetricsRegistry reg;
  WorldConfig wcfg;
  wcfg.metrics = &reg;
  World world(kRanks, wcfg);
  world.run([&](Comm& comm) {
    DistributedSolver<D2Q9> solver(comm, solverConfig(GetParam()));
    initShear(solver);
    solver.run(kSteps);
  });

  const std::vector<std::string> topLevel =
      GetParam() == HaloMode::Sequential
          ? std::vector<std::string>{"z_wrap", "halo.exchange",
                                     "compute.interior"}
          : std::vector<std::string>{"z_wrap", "halo.post",
                                     "compute.interior", "halo.finish",
                                     "compute.frontier"};
  const Histogram::Summary step = reg.histogramSummary("step");
  EXPECT_EQ(step.count, static_cast<std::uint64_t>(kRanks) * kSteps);
  double phaseSum = 0;
  for (const std::string& name : topLevel) {
    const Histogram::Summary s = reg.histogramSummary(name);
    EXPECT_EQ(s.count, static_cast<std::uint64_t>(kRanks) * kSteps) << name;
    EXPECT_GE(s.total, 0.0) << name;
    phaseSum += s.total;
  }
  EXPECT_GT(step.total, 0.0);
  // Tolerance covers the per-scope clock reads between phases.
  EXPECT_LE(phaseSum, step.total * 1.05);
}

// The obs counters and the runtime's own per-rank CommStats meter the
// same events at the same sites: whole-run totals must agree exactly.
TEST_P(ObsIntegration, CommCountersMatchWorldTotalStats) {
  MetricsRegistry reg;
  WorldConfig wcfg;
  wcfg.metrics = &reg;
  World world(4, wcfg);
  world.run([&](Comm& comm) {
    DistributedSolver<D2Q9> solver(comm, solverConfig(GetParam()));
    initShear(solver);
    solver.run(5);
    solver.gatherPopulations(0);
  });
  const runtime::CommStats total = world.totalStats();
  EXPECT_GT(total.messagesSent, 0u);
  EXPECT_EQ(reg.counterValue("comm.messages_sent"), total.messagesSent);
  EXPECT_EQ(reg.counterValue("comm.bytes_sent"), total.bytesSent);
  EXPECT_EQ(reg.counterValue("comm.messages_received"),
            total.messagesReceived);
  EXPECT_EQ(reg.counterValue("comm.bytes_received"), total.bytesReceived);
}

INSTANTIATE_TEST_SUITE_P(BothHaloModes, ObsIntegration,
                         ::testing::Values(HaloMode::Sequential,
                                           HaloMode::Overlap),
                         [](const auto& info) {
                           return info.param == HaloMode::Sequential
                                      ? "Sequential"
                                      : "Overlap";
                         });

// A fault-injected drop must show up in *both* books: the world's
// FaultStats and the obs counter — and surface as a metered timeout on
// the starved receiver.
TEST(ObsFaults, DroppedMessageCountedInFaultStatsAndMetrics) {
  MetricsRegistry reg;
  WorldConfig wcfg;
  wcfg.metrics = &reg;
  FaultPlan::MessageFault drop;
  drop.action = FaultPlan::Action::Drop;
  drop.src = 0;
  drop.dst = 1;
  drop.tag = 7;
  wcfg.faults.messageFaults.push_back(drop);
  World world(2, wcfg);
  int timeouts = 0;
  world.run([&](Comm& comm) {
    if (comm.rank() == 0) {
      const double v = 1.0;
      comm.send(1, 7, &v, sizeof(v));
    } else {
      double v = 0;
      try {
        comm.recv(0, 7, &v, sizeof(v), /*timeoutSec=*/0.1);
      } catch (const TimeoutError&) {
        ++timeouts;
      }
    }
  });
  EXPECT_EQ(timeouts, 1);
  EXPECT_EQ(world.faultStats().dropped, 1u);
  EXPECT_EQ(reg.counterValue("comm.faults.dropped"), 1u);
  EXPECT_EQ(reg.counterValue("comm.timeouts"), 1u);
  // The dropped message was sent but never received.
  EXPECT_EQ(reg.counterValue("comm.messages_sent"), 1u);
  EXPECT_EQ(reg.counterValue("comm.messages_received"), 0u);
}

// Delay faults applied to live halo traffic: the run completes and the
// two books agree on how many deliveries were slowed.
TEST(ObsFaults, DelayedHaloMessagesCountedOnBothBooks) {
  MetricsRegistry reg;
  WorldConfig wcfg;
  wcfg.metrics = &reg;
  FaultPlan::MessageFault delay;
  delay.action = FaultPlan::Action::Delay;
  delay.src = 0;
  delay.nth = 0;
  delay.count = 3;
  delay.delay = 0.002;
  wcfg.faults.messageFaults.push_back(delay);
  World world(4, wcfg);
  world.run([&](Comm& comm) {
    DistributedSolver<D2Q9> solver(comm, solverConfig(HaloMode::Overlap));
    initShear(solver);
    solver.run(3);
  });
  EXPECT_GT(world.faultStats().delayed, 0u);
  EXPECT_EQ(reg.counterValue("comm.faults.delayed"),
            world.faultStats().delayed);
}

// Checkpoint byte counters must match the files actually on disk, and the
// save/restore phases must appear on the shared timeline.
TEST(ObsCheckpoint, ByteCountersMatchFilesOnDisk) {
  const std::string prefix = ::testing::TempDir() + "swlb_obs_ckpt";
  Tracer tracer;
  MetricsRegistry reg;
  WorldConfig wcfg;
  wcfg.tracer = &tracer;
  wcfg.metrics = &reg;
  constexpr int kRanks = 4;
  World world(kRanks, wcfg);
  world.run([&](Comm& comm) {
    DistributedSolver<D2Q9> solver(comm, solverConfig(HaloMode::Overlap));
    initShear(solver);
    solver.run(2);
    runtime::save_group_checkpoint(solver, prefix);
    runtime::load_group_checkpoint(solver, prefix);
  });

  std::uint64_t onDisk = 0;
  for (int r = 0; r < kRanks; ++r) {
    std::ifstream in(runtime::group_checkpoint_path(prefix, r),
                     std::ios::binary | std::ios::ate);
    ASSERT_TRUE(in) << "rank " << r;
    onDisk += static_cast<std::uint64_t>(in.tellg());
  }
  EXPECT_EQ(reg.counterValue("checkpoint.bytes_written"), onDisk);
  EXPECT_EQ(reg.counterValue("checkpoint.bytes_read"), onDisk);

  std::map<std::string, int> phases;
  for (const TraceEvent& e : tracer.events()) ++phases[e.name];
  EXPECT_EQ(phases["checkpoint.group_save"], kRanks);
  EXPECT_EQ(phases["checkpoint.save"], kRanks);
  EXPECT_EQ(phases["checkpoint.group_restore"], kRanks);
  EXPECT_EQ(phases["checkpoint.restore"], kRanks);

  for (int r = 0; r < kRanks; ++r)
    std::remove(runtime::group_checkpoint_path(prefix, r).c_str());
  std::remove(runtime::group_manifest_path(prefix).c_str());
}

}  // namespace
