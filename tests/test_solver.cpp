// Solver orchestration: masks, A-B pattern, boundary materials, units.
#include <gtest/gtest.h>

#include "core/solver.hpp"
#include "core/units.hpp"

namespace swlb {
namespace {

TEST(Solver, DefaultDomainIsClosedBox) {
  // With no periodicity the halo mask is solid: fluid started moving
  // toward a wall loses momentum (walls absorb it) but conserves mass.
  CollisionConfig cfg;
  cfg.omega = 1.2;
  Solver<D3Q19> solver(Grid(8, 8, 8), cfg);
  solver.finalizeMask();
  solver.initUniform(1.0, {0.03, 0, 0});
  const Real m0 = solver.totalMass();
  solver.run(50);
  EXPECT_NEAR(solver.totalMass(), m0, 1e-9 * m0);
  const Vec3 p = solver.totalMomentum();
  EXPECT_LT(std::abs(p.x), std::abs(0.03 * m0));
}

TEST(Solver, UniformStateIsSteadyOnPeriodicBox) {
  CollisionConfig cfg;
  cfg.omega = 1.0;
  Solver<D3Q19> solver(Grid(6, 6, 6), cfg, Periodicity{true, true, true});
  solver.finalizeMask();
  solver.initUniform(1.0, {0.02, 0.01, -0.03});
  solver.run(20);
  for (int z = 0; z < 6; ++z)
    for (int y = 0; y < 6; ++y)
      for (int x = 0; x < 6; ++x) {
        const Vec3 u = solver.velocity(x, y, z);
        EXPECT_NEAR(u.x, 0.02, 1e-12);
        EXPECT_NEAR(u.y, 0.01, 1e-12);
        EXPECT_NEAR(u.z, -0.03, 1e-12);
        EXPECT_NEAR(solver.density(x, y, z), 1.0, 1e-12);
      }
}

TEST(Solver, PaintClipsToInterior) {
  CollisionConfig cfg;
  Solver<D3Q19> solver(Grid(4, 4, 4), cfg);
  solver.paint({{-10, -10, -10}, {100, 100, 2}}, MaterialTable::kSolid);
  int solids = 0;
  for (int z = 0; z < 4; ++z)
    for (int y = 0; y < 4; ++y)
      for (int x = 0; x < 4; ++x)
        if (solver.mask()(x, y, z) == MaterialTable::kSolid) ++solids;
  EXPECT_EQ(solids, 4 * 4 * 2);
}

TEST(Solver, ParityAlternatesEachStep) {
  CollisionConfig cfg;
  Solver<D2Q9> solver(Grid(4, 4, 1), cfg, Periodicity{true, true, true});
  solver.finalizeMask();
  solver.initUniform(1.0, {0, 0, 0});
  EXPECT_EQ(solver.parity(), 0);
  solver.step();
  EXPECT_EQ(solver.parity(), 1);
  solver.step();
  EXPECT_EQ(solver.parity(), 0);
  EXPECT_EQ(solver.stepsDone(), 2u);
}

TEST(Solver, VelocityInletImposesEquilibrium) {
  CollisionConfig cfg;
  cfg.omega = 1.0;
  Solver<D3Q19> solver(Grid(8, 4, 4), cfg);
  const Vec3 uin{0.05, 0, 0};
  const auto inlet = solver.materials().addVelocityInlet(uin);
  const auto outlet = solver.materials().addOutflow({-1, 0, 0});
  solver.paint({{0, 0, 0}, {1, 4, 4}}, inlet);
  solver.paint({{7, 0, 0}, {8, 4, 4}}, outlet);
  solver.finalizeMask();
  solver.initUniform(1.0, {0, 0, 0});
  solver.run(200);

  // Inlet cells hold exactly the prescribed equilibrium.
  const Vec3 u = solver.velocity(0, 1, 1);
  EXPECT_NEAR(u.x, uin.x, 1e-12);
  // Downstream fluid is dragged forward.
  EXPECT_GT(solver.velocity(4, 1, 1).x, 0.0);
}

TEST(Solver, OutflowTracksUpstreamNeighbour) {
  CollisionConfig cfg;
  cfg.omega = 1.0;
  Solver<D3Q19> solver(Grid(8, 4, 4), cfg, Periodicity{false, true, true});
  const auto inlet = solver.materials().addVelocityInlet({0.04, 0, 0});
  const auto outlet = solver.materials().addOutflow({-1, 0, 0});
  solver.paint({{0, 0, 0}, {1, 4, 4}}, inlet);
  solver.paint({{7, 0, 0}, {8, 4, 4}}, outlet);
  solver.finalizeMask();
  solver.initUniform(1.0, {0.04, 0, 0});
  solver.run(300);
  // Steady plug flow: outflow plane matches its upstream neighbour closely.
  const Real uOut = solver.velocity(7, 2, 2).x;
  const Real uUp = solver.velocity(6, 2, 2).x;
  EXPECT_NEAR(uOut, uUp, 5e-3);
  EXPECT_GT(uOut, 0.02);
}

TEST(Solver, MovingWallDragsFluid) {
  CollisionConfig cfg;
  cfg.omega = 1.0;
  Solver<D2Q9> solver(Grid(8, 8, 1), cfg, Periodicity{true, false, true});
  const auto lid = solver.materials().addMovingWall({0.05, 0, 0});
  solver.paint({{0, 7, 0}, {8, 8, 1}}, lid);
  solver.finalizeMask();
  solver.initUniform(1.0, {0, 0, 0});
  solver.run(400);
  EXPECT_GT(solver.velocity(4, 6, 0).x, 0.01);
  EXPECT_GT(solver.velocity(4, 6, 0).x, solver.velocity(4, 1, 0).x);
}

TEST(Solver, RunMeasuredReportsPositiveMlups) {
  CollisionConfig cfg;
  Solver<D3Q19> solver(Grid(12, 12, 12), cfg, Periodicity{true, true, true});
  solver.finalizeMask();
  solver.initUniform(1.0, {0.01, 0, 0});
  EXPECT_GT(solver.runMeasured(5), 0.0);
}

TEST(MaterialTableTest, BuiltinsAndLimits) {
  MaterialTable t;
  EXPECT_EQ(t.size(), 2u);
  EXPECT_EQ(t[MaterialTable::kFluid].cls, CellClass::Fluid);
  EXPECT_EQ(t[MaterialTable::kSolid].cls, CellClass::Solid);
  const auto id = t.addVelocityInlet({0.1, 0, 0}, 1.05);
  EXPECT_EQ(t[id].cls, CellClass::VelocityInlet);
  EXPECT_EQ(t[id].rho, 1.05);
}

TEST(MaterialTableTest, RejectsOverflow) {
  MaterialTable t;
  for (int i = 0; i < 253; ++i) t.add(Material{});
  EXPECT_THROW(t.add(Material{}), Error);
}

// ------------------------------------------------------------------ units

TEST(Units, DerivedQuantitiesAreConsistent) {
  // L = 1 m, U = 1 m/s, nu = 1e-3 -> Re = 1000.
  UnitConverter uc(1.0, 1.0, 1e-3, 1000.0, 100, 0.05);
  EXPECT_NEAR(uc.reynolds(), 1e3, 1e-9);
  EXPECT_NEAR(uc.dx(), 0.01, 1e-12);
  EXPECT_NEAR(uc.dt(), 0.05 * 0.01, 1e-12);
  EXPECT_GT(uc.tau(), 0.5);
  // Round trips.
  EXPECT_NEAR(uc.toPhysVelocity(uc.toLatticeVelocity(0.7)), 0.7, 1e-12);
  EXPECT_NEAR(uc.toPhysLength(uc.toLatticeLength(0.3)), 0.3, 1e-12);
  EXPECT_NEAR(uc.toPhysTime(uc.toLatticeTime(2.5)), 2.5, 1e-12);
}

TEST(Units, LatticeViscosityMatchesReynolds) {
  UnitConverter uc(2.0, 3.0, 1.5e-3, 1.2, 64, 0.08);
  // Re in lattice units must equal the physical Reynolds number.
  const Real reLat = uc.latticeVelocity() * uc.resolution() / uc.latticeViscosity();
  EXPECT_NEAR(reLat, uc.reynolds(), 1e-6 * uc.reynolds());
}

TEST(Units, RejectsUnstableAndInvalidSetups) {
  EXPECT_THROW(UnitConverter(1, 1, 1e-9, 1000, 4, 0.01), Error);  // tau ~ 0.5
  EXPECT_THROW(UnitConverter(-1, 1, 1e-6, 1000, 10, 0.05), Error);
  EXPECT_THROW(UnitConverter(1, 1, 1e-6, 1000, 10, -0.05), Error);
}

TEST(Units, PressureConversionIsGaugeAtRest) {
  UnitConverter uc(1.0, 1.0, 1e-3, 1000.0, 50, 0.05);
  EXPECT_NEAR(uc.toPhysPressure(1.0), 0.0, 1e-12);
  EXPECT_GT(uc.toPhysPressure(1.01), 0.0);
}

}  // namespace
}  // namespace swlb
