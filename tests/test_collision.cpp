// BGK collision invariants, Guo forcing, Smagorinsky subgrid closure.
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "core/collision.hpp"

namespace swlb {
namespace {

template <class D>
void randomPopulations(Real* f, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<Real> dist(0.01, 0.2);
  for (int i = 0; i < D::Q; ++i) f[i] = D::w[i] + dist(rng) * D::w[i];
}

template <class D>
class CollisionTest : public ::testing::Test {};

using Descriptors = ::testing::Types<D2Q9, D3Q15, D3Q19, D3Q27>;
TYPED_TEST_SUITE(CollisionTest, Descriptors);

TYPED_TEST(CollisionTest, ConservesMassAndMomentum) {
  using D = TypeParam;
  for (Real omega : {0.6, 1.0, 1.6, 1.95}) {
    Real f[D::Q];
    randomPopulations<D>(f, 42);
    Real rho0;
    Vec3 m0;
    moments<D>(f, rho0, m0);

    CollisionConfig cfg;
    cfg.omega = omega;
    Real rho;
    Vec3 u;
    bgk_collide_cell<D>(f, cfg, rho, u);

    Real rho1;
    Vec3 m1;
    moments<D>(f, rho1, m1);
    EXPECT_NEAR(rho1, rho0, 1e-13);
    EXPECT_NEAR(m1.x, m0.x, 1e-13);
    EXPECT_NEAR(m1.y, m0.y, 1e-13);
    EXPECT_NEAR(m1.z, m0.z, 1e-13);
  }
}

TYPED_TEST(CollisionTest, OmegaOneProjectsOntoEquilibrium) {
  using D = TypeParam;
  Real f[D::Q];
  randomPopulations<D>(f, 7);
  Real rho0;
  Vec3 m0;
  moments<D>(f, rho0, m0);
  const Vec3 u0{m0.x / rho0, m0.y / rho0, m0.z / rho0};

  CollisionConfig cfg;
  cfg.omega = 1.0;
  Real rho;
  Vec3 u;
  bgk_collide_cell<D>(f, cfg, rho, u);

  Real feq[D::Q];
  equilibria<D>(rho0, u0, feq);
  for (int i = 0; i < D::Q; ++i) EXPECT_NEAR(f[i], feq[i], 1e-14);
}

TYPED_TEST(CollisionTest, EquilibriumIsFixedPoint) {
  using D = TypeParam;
  Real f[D::Q];
  const Vec3 u0 = D::dim == 2 ? Vec3{0.05, -0.02, 0} : Vec3{0.05, -0.02, 0.03};
  equilibria<D>(1.1, u0, f);
  Real before[D::Q];
  for (int i = 0; i < D::Q; ++i) before[i] = f[i];

  CollisionConfig cfg;
  cfg.omega = 1.7;
  Real rho;
  Vec3 u;
  bgk_collide_cell<D>(f, cfg, rho, u);
  for (int i = 0; i < D::Q; ++i) EXPECT_NEAR(f[i], before[i], 1e-13);
}

TYPED_TEST(CollisionTest, GuoForceAddsMomentum) {
  using D = TypeParam;
  // One collision with constant force F changes momentum by exactly F
  // (Guo scheme: half at moment evaluation, half via the source term).
  Real f[D::Q];
  equilibria<D>(1.0, {0, 0, 0}, f);
  CollisionConfig cfg;
  cfg.omega = 1.2;
  cfg.bodyForce = D::dim == 2 ? Vec3{1e-4, -2e-5, 0} : Vec3{1e-4, -2e-5, 3e-5};
  Real rho;
  Vec3 u;
  bgk_collide_cell<D>(f, cfg, rho, u);
  Real rho1;
  Vec3 m1;
  moments<D>(f, rho1, m1);
  EXPECT_NEAR(rho1, 1.0, 1e-13);
  EXPECT_NEAR(m1.x, cfg.bodyForce.x, 1e-12);
  EXPECT_NEAR(m1.y, cfg.bodyForce.y, 1e-12);
  EXPECT_NEAR(m1.z, cfg.bodyForce.z, 1e-12);
}

TYPED_TEST(CollisionTest, ReportedVelocityIncludesHalfForce) {
  using D = TypeParam;
  Real f[D::Q];
  equilibria<D>(1.0, {0, 0, 0}, f);
  CollisionConfig cfg;
  cfg.omega = 1.0;
  cfg.bodyForce = {2e-4, 0, 0};
  Real rho;
  Vec3 u;
  bgk_collide_cell<D>(f, cfg, rho, u);
  EXPECT_NEAR(u.x, 1e-4, 1e-15);
}

TYPED_TEST(CollisionTest, SmagorinskyReducesToBgkAtEquilibrium) {
  using D = TypeParam;
  Real f[D::Q];
  equilibria<D>(1.0, {0.03, 0.01, 0}, f);
  Real feq[D::Q];
  for (int i = 0; i < D::Q; ++i) feq[i] = f[i];
  const Real omega = smagorinsky_omega<D>(f, feq, 1.0, 1.6, 0.1);
  EXPECT_NEAR(omega, 1.6, 1e-12);
}

TYPED_TEST(CollisionTest, SmagorinskyIncreasesEffectiveViscosity) {
  using D = TypeParam;
  Real f[D::Q];
  randomPopulations<D>(f, 99);
  Real rho0;
  Vec3 m0;
  moments<D>(f, rho0, m0);
  Real feq[D::Q];
  equilibria<D>(rho0, {m0.x / rho0, m0.y / rho0, m0.z / rho0}, feq);
  const Real omega0 = 1.6;
  const Real omega = smagorinsky_omega<D>(f, feq, rho0, omega0, 0.16);
  EXPECT_LT(omega, omega0);  // tau_eff > tau0 => extra (eddy) viscosity
  EXPECT_GT(omega, 0.0);
  // Larger Smagorinsky constant => more eddy viscosity.
  const Real omegaBig = smagorinsky_omega<D>(f, feq, rho0, omega0, 0.3);
  EXPECT_LT(omegaBig, omega);
}

TYPED_TEST(CollisionTest, LesCollisionStillConservesInvariants) {
  using D = TypeParam;
  Real f[D::Q];
  randomPopulations<D>(f, 5);
  Real rho0;
  Vec3 m0;
  moments<D>(f, rho0, m0);
  CollisionConfig cfg;
  cfg.omega = 1.5;
  cfg.les = true;
  cfg.smagorinskyCs = 0.14;
  Real rho;
  Vec3 u;
  bgk_collide_cell<D>(f, cfg, rho, u);
  Real rho1;
  Vec3 m1;
  moments<D>(f, rho1, m1);
  EXPECT_NEAR(rho1, rho0, 1e-13);
  EXPECT_NEAR(m1.x, m0.x, 1e-13);
  EXPECT_NEAR(m1.y, m0.y, 1e-13);
  EXPECT_NEAR(m1.z, m0.z, 1e-13);
}

}  // namespace
}  // namespace swlb
