// Property tests on all lattice descriptors: weights, symmetry, moment
// isotropy, opposite-pair convention.
#include <gtest/gtest.h>

#include "core/lattice.hpp"

namespace swlb {
namespace {

template <class D>
class LatticeTest : public ::testing::Test {};

using Descriptors = ::testing::Types<D2Q9, D3Q15, D3Q19, D3Q27>;
TYPED_TEST_SUITE(LatticeTest, Descriptors);

TYPED_TEST(LatticeTest, WeightsArePositiveAndSumToOne) {
  using D = TypeParam;
  Real sum = 0;
  for (int i = 0; i < D::Q; ++i) {
    EXPECT_GT(D::w[i], 0) << "direction " << i;
    sum += D::w[i];
  }
  EXPECT_NEAR(sum, 1.0, 1e-14);
}

TYPED_TEST(LatticeTest, RestPopulationIsFirst) {
  using D = TypeParam;
  EXPECT_EQ(D::c[0][0], 0);
  EXPECT_EQ(D::c[0][1], 0);
  EXPECT_EQ(D::c[0][2], 0);
  EXPECT_EQ(D::opp(0), 0);
}

TYPED_TEST(LatticeTest, FirstMomentVanishes) {
  using D = TypeParam;
  for (int a = 0; a < 3; ++a) {
    Real m = 0;
    for (int i = 0; i < D::Q; ++i) m += D::w[i] * D::c[i][a];
    EXPECT_NEAR(m, 0.0, 1e-14) << "axis " << a;
  }
}

TYPED_TEST(LatticeTest, SecondMomentIsIsotropicCs2) {
  using D = TypeParam;
  for (int a = 0; a < 3; ++a)
    for (int b = 0; b < 3; ++b) {
      Real m = 0;
      for (int i = 0; i < D::Q; ++i) m += D::w[i] * D::c[i][a] * D::c[i][b];
      const Real expected = (a == b && (D::dim == 3 || a < 2)) ? kCs2 : 0.0;
      EXPECT_NEAR(m, expected, 1e-14) << "axes " << a << "," << b;
    }
}

TYPED_TEST(LatticeTest, ThirdMomentVanishes) {
  using D = TypeParam;
  for (int a = 0; a < 3; ++a)
    for (int b = 0; b < 3; ++b)
      for (int g = 0; g < 3; ++g) {
        Real m = 0;
        for (int i = 0; i < D::Q; ++i)
          m += D::w[i] * D::c[i][a] * D::c[i][b] * D::c[i][g];
        EXPECT_NEAR(m, 0.0, 1e-14);
      }
}

TYPED_TEST(LatticeTest, OppositePairsAreExactNegations) {
  using D = TypeParam;
  for (int i = 0; i < D::Q; ++i) {
    const int o = D::opp(i);
    ASSERT_GE(o, 0);
    ASSERT_LT(o, D::Q);
    EXPECT_EQ(D::opp(o), i) << "opp is an involution";
    for (int a = 0; a < 3; ++a)
      EXPECT_EQ(D::c[i][a], -D::c[o][a]) << "direction " << i << " axis " << a;
    EXPECT_DOUBLE_EQ(D::w[i], D::w[o]);
  }
}

TYPED_TEST(LatticeTest, PairOrderingConvention) {
  using D = TypeParam;
  for (int i = 1; i < D::Q; i += 2) EXPECT_EQ(D::opp(i), i + 1);
}

TYPED_TEST(LatticeTest, VelocitiesAreUniqueAndUnitRange) {
  using D = TypeParam;
  for (int i = 0; i < D::Q; ++i) {
    for (int a = 0; a < 3; ++a) {
      EXPECT_GE(D::c[i][a], -1);
      EXPECT_LE(D::c[i][a], 1);
    }
    for (int j = i + 1; j < D::Q; ++j) {
      EXPECT_FALSE(D::c[i][0] == D::c[j][0] && D::c[i][1] == D::c[j][1] &&
                   D::c[i][2] == D::c[j][2])
          << "duplicate velocity " << i << " vs " << j;
    }
  }
}

TYPED_TEST(LatticeTest, TwoDimensionalDescriptorsStayInPlane) {
  using D = TypeParam;
  if (D::dim == 3) return;
  for (int i = 0; i < D::Q; ++i) EXPECT_EQ(D::c[i][2], 0);
}

TEST(LatticeHelpers, ViscosityTauRoundTrip) {
  for (Real nu : {0.01, 0.1, 1.0 / 6.0, 0.5}) {
    const Real tau = tau_from_viscosity(nu);
    EXPECT_NEAR(viscosity_from_tau(tau), nu, 1e-14);
    EXPECT_GT(tau, 0.5);
  }
}

TEST(LatticeHelpers, PaperViscosityRelation) {
  // Paper §IV-A: nu = (2 tau - 1) / 6.
  EXPECT_NEAR(viscosity_from_tau(1.0), 1.0 / 6.0, 1e-15);
  EXPECT_NEAR(omega_from_tau(0.8), 1.25, 1e-15);
}

TEST(LatticeNames, AreDistinct) {
  EXPECT_STREQ(D3Q19::name(), "D3Q19");
  EXPECT_STREQ(D2Q9::name(), "D2Q9");
  EXPECT_STREQ(D3Q15::name(), "D3Q15");
  EXPECT_STREQ(D3Q27::name(), "D3Q27");
}

}  // namespace
}  // namespace swlb
