// Distributed solver correctness: any rank count / halo mode must
// reproduce the single-block reference solver exactly, and the physics
// validations must hold across subdomain boundaries.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "core/solver.hpp"
#include "runtime/distributed_solver.hpp"

namespace swlb::runtime {
namespace {

using swlb::Solver;

struct DistCase {
  int ranks;
  Int3 procGrid;
  HaloMode mode;
  const char* label;
};

class DistributedEquivalence : public ::testing::TestWithParam<DistCase> {};

/// Reference: single-block solver with a cylinder-ish obstacle, inlet and
/// walls; distributed run must match the gathered populations exactly.
TEST_P(DistributedEquivalence, MatchesSingleBlockReference) {
  const DistCase& tc = GetParam();
  const Int3 global{16, 12, 6};
  const int steps = 12;

  CollisionConfig col;
  col.omega = 1.3;
  const Periodicity per{false, false, true};

  // Reference solution.
  Solver<D3Q19> ref(Grid(global.x, global.y, global.z), col, per);
  const auto refInlet = ref.materials().addVelocityInlet({0.04, 0, 0});
  const auto refOut = ref.materials().addOutflow({-1, 0, 0});
  ref.paint({{0, 0, 0}, {1, global.y, global.z}}, refInlet);
  ref.paint({{global.x - 1, 0, 0}, {global.x, global.y, global.z}}, refOut);
  ref.paint({{6, 4, 0}, {9, 8, global.z}}, MaterialTable::kSolid);
  ref.finalizeMask();
  ref.initUniform(1.0, {0.02, 0, 0});
  ref.run(steps);

  // Distributed solution.
  World world(tc.ranks);
  world.run([&](Comm& c) {
    typename DistributedSolver<D3Q19>::Config cfg;
    cfg.global = global;
    cfg.collision = col;
    cfg.periodic = per;
    cfg.mode = tc.mode;
    cfg.procGrid = tc.procGrid;
    DistributedSolver<D3Q19> solver(c, cfg);
    const auto inlet = solver.materials().addVelocityInlet({0.04, 0, 0});
    const auto out = solver.materials().addOutflow({-1, 0, 0});
    solver.paintGlobal({{0, 0, 0}, {1, global.y, global.z}}, inlet);
    solver.paintGlobal({{global.x - 1, 0, 0}, {global.x, global.y, global.z}}, out);
    solver.paintGlobal({{6, 4, 0}, {9, 8, global.z}}, MaterialTable::kSolid);
    solver.finalizeMask();
    solver.initUniform(1.0, {0.02, 0, 0});
    solver.run(steps);

    PopulationField gathered = solver.gatherPopulations(0);
    if (c.rank() == 0) {
      const PopulationField& expect = ref.f();
      for (int q = 0; q < D3Q19::Q; ++q)
        for (int z = 0; z < global.z; ++z)
          for (int y = 0; y < global.y; ++y)
            for (int x = 0; x < global.x; ++x)
              ASSERT_EQ(gathered(q, x, y, z), expect(q, x, y, z))
                  << tc.label << " q=" << q << " (" << x << "," << y << "," << z
                  << ")";
    }
  });
}

INSTANTIATE_TEST_SUITE_P(
    RankGridsAndModes, DistributedEquivalence,
    ::testing::Values(
        DistCase{1, {1, 1, 1}, HaloMode::Sequential, "1rank-seq"},
        DistCase{2, {2, 1, 1}, HaloMode::Sequential, "2x1-seq"},
        DistCase{2, {1, 2, 1}, HaloMode::Overlap, "1x2-ovl"},
        DistCase{4, {2, 2, 1}, HaloMode::Sequential, "2x2-seq"},
        DistCase{4, {2, 2, 1}, HaloMode::Overlap, "2x2-ovl"},
        DistCase{4, {4, 1, 1}, HaloMode::Overlap, "4x1-ovl"},
        // Non-power-of-two rank counts: uneven block splits exercise the
        // unbalanced gatherv and the ring collectives' non-po2 chunking.
        DistCase{3, {3, 1, 1}, HaloMode::Sequential, "3x1-seq"},
        DistCase{3, {1, 3, 1}, HaloMode::Overlap, "1x3-ovl"},
        DistCase{5, {5, 1, 1}, HaloMode::Sequential, "5x1-seq"},
        DistCase{5, {1, 5, 1}, HaloMode::Overlap, "1x5-ovl"},
        DistCase{6, {3, 2, 1}, HaloMode::Sequential, "3x2-seq"},
        DistCase{6, {3, 2, 1}, HaloMode::Overlap, "3x2-ovl"}),
    [](const ::testing::TestParamInfo<DistCase>& info) {
      std::string s = info.param.label;
      for (auto& ch : s)
        if (ch == '-') ch = '_';
      return s;
    });

TEST(DistributedPeriodic, FullyPeriodicMatchesReference) {
  const Int3 global{12, 12, 4};
  const int steps = 10;
  CollisionConfig col;
  col.omega = 1.1;
  const Periodicity per{true, true, true};

  Solver<D3Q19> ref(Grid(global.x, global.y, global.z), col, per);
  ref.finalizeMask();
  ref.initField([&](int x, int y, int z, Real& rho, Vec3& u) {
    rho = 1.0 + 0.01 * std::sin(2 * std::numbers::pi * x / global.x);
    u = {0.02 * std::cos(2 * std::numbers::pi * y / global.y),
         0.01 * std::sin(2 * std::numbers::pi * z / global.z), 0.005};
  });
  ref.run(steps);

  World world(4);
  world.run([&](Comm& c) {
    typename DistributedSolver<D3Q19>::Config cfg;
    cfg.global = global;
    cfg.collision = col;
    cfg.periodic = per;
    cfg.mode = HaloMode::Overlap;
    cfg.procGrid = {2, 2, 1};
    DistributedSolver<D3Q19> solver(c, cfg);
    solver.finalizeMask();
    solver.initField([&](int x, int y, int z, Real& rho, Vec3& u) {
      // Wrap halo coordinates periodically to match the reference init.
      const int gx = ((x % global.x) + global.x) % global.x;
      const int gy = ((y % global.y) + global.y) % global.y;
      const int gz = ((z % global.z) + global.z) % global.z;
      rho = 1.0 + 0.01 * std::sin(2 * std::numbers::pi * gx / global.x);
      u = {0.02 * std::cos(2 * std::numbers::pi * gy / global.y),
           0.01 * std::sin(2 * std::numbers::pi * gz / global.z), 0.005};
    });
    solver.run(steps);

    PopulationField gathered = solver.gatherPopulations(0);
    if (c.rank() == 0) {
      for (int q = 0; q < D3Q19::Q; ++q)
        for (int z = 0; z < global.z; ++z)
          for (int y = 0; y < global.y; ++y)
            for (int x = 0; x < global.x; ++x)
              ASSERT_EQ(gathered(q, x, y, z), ref.f()(q, x, y, z));
    }
  });
}

// The SIMD and esoteric kernels must stay bit-identical to the fused
// single-rank reference when the domain is split across 4 ranks: SIMD in
// both halo schedules (its bulk/boundary segmentation interacts with the
// inner/shell split), esoteric through the forward+reverse halo exchange
// pair.  An even step count returns the esoteric field to natural layout
// before the gather.
TEST(DistributedKernelVariants, FourRankBitIdentityToFusedReference) {
  const Int3 global{12, 12, 4};
  const int steps = 10;
  CollisionConfig col;
  col.omega = 1.3;
  const Periodicity per{true, true, true};

  Solver<D3Q19> ref(Grid(global.x, global.y, global.z), col, per);
  ref.finalizeMask();
  auto init = [&](int x, int y, int z, Real& rho, Vec3& u) {
    const int gx = ((x % global.x) + global.x) % global.x;
    const int gy = ((y % global.y) + global.y) % global.y;
    const int gz = ((z % global.z) + global.z) % global.z;
    rho = 1.0 + 0.01 * std::sin(2 * std::numbers::pi * gx / global.x);
    u = {0.02 * std::cos(2 * std::numbers::pi * gy / global.y),
         0.01 * std::sin(2 * std::numbers::pi * gz / global.z), 0.005};
  };
  ref.initField(init);
  ref.run(steps);

  struct Case {
    KernelVariant variant;
    HaloMode mode;
  };
  const Case cases[] = {{KernelVariant::Simd, HaloMode::Sequential},
                        {KernelVariant::Simd, HaloMode::Overlap},
                        {KernelVariant::Esoteric, HaloMode::Sequential}};
  for (const Case& tc : cases) {
    SCOPED_TRACE(std::string(kernel_variant_name(tc.variant)) + "/" +
                 (tc.mode == HaloMode::Overlap ? "overlap" : "sequential"));
    World world(4);
    world.run([&](Comm& c) {
      typename DistributedSolver<D3Q19>::Config cfg;
      cfg.global = global;
      cfg.collision = col;
      cfg.periodic = per;
      cfg.mode = tc.mode;
      cfg.variant = tc.variant;
      cfg.procGrid = {2, 2, 1};
      DistributedSolver<D3Q19> solver(c, cfg);
      solver.finalizeMask();
      solver.initField(init);
      solver.run(steps);

      PopulationField gathered = solver.gatherPopulations(0);
      if (c.rank() == 0) {
        long long bad = 0;
        for (int q = 0; q < D3Q19::Q && bad == 0; ++q)
          for (int z = 0; z < global.z && bad == 0; ++z)
            for (int y = 0; y < global.y && bad == 0; ++y)
              for (int x = 0; x < global.x; ++x)
                if (gathered(q, x, y, z) != ref.f()(q, x, y, z)) {
                  ADD_FAILURE() << "mismatch at q=" << q << " (" << x << ","
                                << y << "," << z << ")";
                  ++bad;
                  break;
                }
        EXPECT_EQ(bad, 0);
      }
    });
  }
}

TEST(DistributedPhysics, TaylorGreenDecayAcrossRanks) {
  const int n = 24;
  const Real nu = 0.03, u0 = 0.02;
  const Real k = 2 * std::numbers::pi / n;
  CollisionConfig col;
  col.omega = omega_from_tau(tau_from_viscosity(nu));

  World world(4);
  world.run([&](Comm& c) {
    typename DistributedSolver<D2Q9>::Config cfg;
    cfg.global = {n, n, 1};
    cfg.collision = col;
    cfg.periodic = {true, true, true};
    cfg.mode = HaloMode::Overlap;
    cfg.procGrid = {2, 2, 1};
    DistributedSolver<D2Q9> solver(c, cfg);
    solver.finalizeMask();
    solver.initField([&](int x, int y, int, Real& rho, Vec3& u) {
      rho = 1.0;
      u.x = -u0 * std::cos(k * (x + 0.5)) * std::sin(k * (y + 0.5));
      u.y = u0 * std::sin(k * (x + 0.5)) * std::cos(k * (y + 0.5));
    });
    const int steps = 300;
    solver.run(steps);
    const Real decay = std::exp(-2 * nu * k * k * steps);

    // Every rank checks its own cells against the analytic solution.
    const Box3 own = solver.ownedBox();
    for (int ly = 0; ly < solver.localGrid().ny; ++ly)
      for (int lx = 0; lx < solver.localGrid().nx; ++lx) {
        const int gx = own.lo.x + lx;
        const int gy = own.lo.y + ly;
        const Real ex = -u0 * decay * std::cos(k * (gx + 0.5)) * std::sin(k * (gy + 0.5));
        const Vec3 got = solver.velocity(lx, ly, 0);
        ASSERT_NEAR(got.x, ex, 0.03 * u0);
      }
  });
}

TEST(DistributedAdvancedBcs, ZouHeAndPorousAcrossRankBoundaries) {
  // Zou-He inlet/outlet plus a porous block straddling all four rank
  // boundaries must still match the single-block reference bitwise.
  const Int3 global{16, 12, 4};
  const int steps = 10;
  CollisionConfig col;
  col.omega = 1.25;
  const Periodicity per{false, true, true};

  auto setup = [&](auto& s) {
    const auto in = s.materials().addZouHeVelocity({0.04, 0, 0}, {1, 0, 0});
    const auto out = s.materials().addZouHePressure(1.0, {-1, 0, 0});
    const auto porous = s.materials().addPorous(0.25);
    return std::tuple{in, out, porous};
  };

  Solver<D3Q19> ref(Grid(global.x, global.y, global.z), col, per);
  {
    auto [in, out, porous] = setup(ref);
    ref.paint({{0, 0, 0}, {1, global.y, global.z}}, in);
    ref.paint({{global.x - 1, 0, 0}, {global.x, global.y, global.z}}, out);
    ref.paint({{6, 4, 1}, {10, 8, 3}}, porous);  // straddles the 2x2 cut
  }
  ref.finalizeMask();
  ref.initUniform(1.0, {0.04, 0, 0});
  ref.run(steps);

  World world(4);
  world.run([&](Comm& c) {
    typename DistributedSolver<D3Q19>::Config cfg;
    cfg.global = global;
    cfg.collision = col;
    cfg.periodic = per;
    cfg.mode = HaloMode::Overlap;
    cfg.procGrid = {2, 2, 1};
    DistributedSolver<D3Q19> solver(c, cfg);
    auto [in, out, porous] = setup(solver);
    solver.paintGlobal({{0, 0, 0}, {1, global.y, global.z}}, in);
    solver.paintGlobal({{global.x - 1, 0, 0}, {global.x, global.y, global.z}},
                       out);
    solver.paintGlobal({{6, 4, 1}, {10, 8, 3}}, porous);
    solver.finalizeMask();
    solver.initUniform(1.0, {0.04, 0, 0});
    solver.run(steps);
    PopulationField got = solver.gatherPopulations(0);
    if (c.rank() == 0) {
      for (int q = 0; q < D3Q19::Q; ++q)
        for (int z = 0; z < global.z; ++z)
          for (int y = 0; y < global.y; ++y)
            for (int x = 0; x < global.x; ++x)
              ASSERT_EQ(got(q, x, y, z), ref.f()(q, x, y, z))
                  << q << " " << x << "," << y << "," << z;
    }
  });
}

TEST(DistributedSolverApi, MassIsConservedGlobally) {
  World world(4);
  world.run([](Comm& c) {
    typename DistributedSolver<D3Q19>::Config cfg;
    cfg.global = {12, 12, 6};
    cfg.collision.omega = 1.4;
    cfg.periodic = {true, true, true};
    cfg.procGrid = {2, 2, 1};
    DistributedSolver<D3Q19> solver(c, cfg);
    solver.finalizeMask();
    solver.initUniform(1.0, {0.02, -0.01, 0.01});
    const Real m0 = solver.globalMass();
    solver.run(20);
    const Real m1 = solver.globalMass();
    EXPECT_NEAR(m1, m0, 1e-9 * m0);
  });
}

TEST(DistributedSolverApi, HaloBytesMatchPlanArea) {
  World world(4);
  world.run([](Comm& c) {
    typename DistributedSolver<D3Q19>::Config cfg;
    cfg.global = {16, 16, 8};
    cfg.periodic = {false, false, false};
    cfg.procGrid = {2, 2, 1};
    DistributedSolver<D3Q19> solver(c, cfg);
    // Each rank owns 8x8x8; 2 faces of 8x(8+2 halo) cells + 1 corner
    // column of (8+2), all times Q populations of 8 bytes.
    const std::size_t expect =
        (2u * 8 * 10 + 1u * 10) * D3Q19::Q * sizeof(Real);
    EXPECT_EQ(solver.haloBytesPerStep(), expect);
  });
}

TEST(DistributedSolverApi, RunMeasuredAgreesAcrossRanks) {
  World world(2);
  std::vector<double> mlups(2, 0);
  world.run([&](Comm& c) {
    typename DistributedSolver<D3Q19>::Config cfg;
    cfg.global = {16, 8, 8};
    cfg.periodic = {true, true, true};
    cfg.procGrid = {2, 1, 1};
    DistributedSolver<D3Q19> solver(c, cfg);
    solver.finalizeMask();
    solver.initUniform(1.0, {0.01, 0, 0});
    mlups[static_cast<std::size_t>(c.rank())] = solver.runMeasured(3);
  });
  EXPECT_GT(mlups[0], 0);
  EXPECT_EQ(mlups[0], mlups[1]);
}

TEST(DistributedSolverApi, RejectsMismatchedProcessGrid) {
  World world(2);
  EXPECT_THROW(world.run([](Comm& c) {
    typename DistributedSolver<D3Q19>::Config cfg;
    cfg.global = {8, 8, 8};
    cfg.procGrid = {3, 1, 1};  // 3 blocks for 2 ranks
    DistributedSolver<D3Q19> solver(c, cfg);
  }),
               Error);
}

TEST(DistributedSolverApi, RejectsNonDistributedBackends) {
  // twostep and push advertise caps.distributed = false (their streaming
  // traffic isn't compatible with the one-layer halo contract).  The old
  // KernelVariant switch silently fell back to fused here; the backend
  // layer must refuse instead.
  for (const char* name : {"twostep", "push"}) {
    SCOPED_TRACE(name);
    World world(2);
    EXPECT_THROW(world.run([&](Comm& c) {
      typename DistributedSolver<D3Q19>::Config cfg;
      cfg.global = {8, 8, 4};
      cfg.backend = name;
      DistributedSolver<D3Q19> solver(c, cfg);
    }),
                 Error);
  }
}

TEST(DistributedSolverApi, SubRangeLessBackendForcesSequentialHalo) {
  // swcpe updates the whole block per call (caps.subRange = false), so an
  // Overlap request must degrade to the Sequential schedule explicitly
  // rather than mis-running the inner/shell split.
  World world(2);
  world.run([](Comm& c) {
    typename DistributedSolver<D2Q9>::Config cfg;
    cfg.global = {8, 8, 1};
    cfg.backend = "swcpe";
    cfg.mode = HaloMode::Overlap;
    cfg.periodic = {true, true, false};
    DistributedSolver<D2Q9> solver(c, cfg);
    EXPECT_EQ(solver.haloMode(), HaloMode::Sequential);
    EXPECT_EQ(solver.backendName(), "swcpe");
  });
}

TEST(DistributedKernelVariants, ThreadsBackendMatchesFusedAcrossRanks) {
  // Mixed parallelism: 2 ranks x thread-team backend inside each rank
  // must still reproduce the single-block fused trajectory bit-for-bit.
  const Int3 global{10, 8, 4};
  const int steps = 6;
  CollisionConfig col;
  col.omega = 1.4;
  const Periodicity per{true, true, true};
  Solver<D3Q19> ref(Grid(global.x, global.y, global.z), col, per);
  ref.finalizeMask();
  auto init = [&](int x, int y, int z, Real& rho, Vec3& u) {
    const int gx = ((x % global.x) + global.x) % global.x;
    const int gy = ((y % global.y) + global.y) % global.y;
    const int gz = ((z % global.z) + global.z) % global.z;
    rho = 1.0 + 0.01 * std::sin(0.6 * gx) * std::cos(0.4 * gy + 0.2 * gz);
    u = {0.015 * std::cos(0.5 * gy), 0.01 * std::sin(0.3 * gx), 0.005};
  };
  ref.initField(init);
  ref.run(steps);

  World world(2);
  world.run([&](Comm& c) {
    typename DistributedSolver<D3Q19>::Config cfg;
    cfg.global = global;
    cfg.collision = col;
    cfg.periodic = per;
    cfg.backend = "threads";
    cfg.hostThreads = 2;
    cfg.procGrid = {2, 1, 1};
    DistributedSolver<D3Q19> solver(c, cfg);
    solver.finalizeMask();
    solver.initField(init);
    solver.run(steps);
    PopulationField gathered = solver.gatherPopulations(0);
    if (c.rank() == 0) {
      long long bad = 0;
      for (int q = 0; q < D3Q19::Q; ++q)
        for (int z = 0; z < global.z; ++z)
          for (int y = 0; y < global.y; ++y)
            for (int x = 0; x < global.x; ++x)
              if (gathered(q, x, y, z) != ref.f()(q, x, y, z)) ++bad;
      EXPECT_EQ(bad, 0);
    }
  });
}

}  // namespace
}  // namespace swlb::runtime
