// Grid indexing, halo handling, SoA/AoS layout invariants.
#include <gtest/gtest.h>

#include "core/field.hpp"

namespace swlb {
namespace {

TEST(Grid, SizesIncludeHalo) {
  Grid g(4, 5, 6, 1);
  EXPECT_EQ(g.sx(), 6);
  EXPECT_EQ(g.sy(), 7);
  EXPECT_EQ(g.sz(), 8);
  EXPECT_EQ(g.volume(), 6u * 7 * 8);
  EXPECT_EQ(g.interiorVolume(), 4u * 5 * 6);
}

TEST(Grid, XIsFastestAxis) {
  Grid g(8, 4, 2, 1);
  EXPECT_EQ(g.idx(1, 0, 0), g.idx(0, 0, 0) + 1);
  EXPECT_EQ(g.idx(0, 1, 0), g.idx(0, 0, 0) + g.sx());
  EXPECT_EQ(g.idx(0, 0, 1), g.idx(0, 0, 0) + static_cast<std::size_t>(g.sx()) * g.sy());
}

TEST(Grid, HaloCoordinatesAreAddressable) {
  Grid g(3, 3, 3, 1);
  EXPECT_EQ(g.idx(-1, -1, -1), 0u);
  EXPECT_EQ(g.idx(3, 3, 3), g.volume() - 1);
}

TEST(Grid, IndexIsBijectiveOverFullBox) {
  Grid g(3, 4, 2, 1);
  std::vector<char> seen(g.volume(), 0);
  for (int z = -1; z <= g.nz; ++z)
    for (int y = -1; y <= g.ny; ++y)
      for (int x = -1; x <= g.nx; ++x) {
        const std::size_t i = g.idx(x, y, z);
        ASSERT_LT(i, g.volume());
        EXPECT_EQ(seen[i], 0);
        seen[i] = 1;
      }
}

TEST(Grid, InteriorBoxMatchesDimensions) {
  Grid g(5, 6, 7);
  EXPECT_EQ(g.interior().volume(), 5 * 6 * 7);
  EXPECT_TRUE(g.interior().contains({0, 0, 0}));
  EXPECT_TRUE(g.interior().contains({4, 5, 6}));
  EXPECT_FALSE(g.interior().contains({5, 0, 0}));
  EXPECT_FALSE(g.interior().contains({-1, 0, 0}));
}

TEST(Box3, VolumeAndIntersection) {
  Box3 a{{0, 0, 0}, {4, 4, 4}};
  Box3 b{{2, 2, 2}, {6, 6, 6}};
  EXPECT_EQ(a.volume(), 64);
  EXPECT_EQ(intersect(a, b).volume(), 8);
  Box3 disjoint{{10, 10, 10}, {12, 12, 12}};
  EXPECT_TRUE(intersect(a, disjoint).empty());
}

TEST(PopulationField, SoASlabsAreContiguousPerDirection) {
  Grid g(4, 3, 2, 1);
  PopulationField f(g, 19);
  EXPECT_EQ(f.size(), g.volume() * 19);
  // Direction q's slab starts at q * volume.
  EXPECT_EQ(f.slab(0), 0u);
  EXPECT_EQ(f.slab(5), 5 * g.volume());
  f(7, 1, 2, 0) = 3.25;
  EXPECT_EQ(f.data()[f.slab(7) + g.idx(1, 2, 0)], 3.25);
}

TEST(PopulationField, FillAndAccessors) {
  Grid g(2, 2, 2, 1);
  PopulationField f(g, 9);
  f.fill(0.5);
  EXPECT_EQ(f(8, -1, -1, -1), 0.5);
  f.at(3, g.idx(0, 1, 1)) = 2.0;
  EXPECT_EQ(f(3, 0, 1, 1), 2.0);
}

TEST(PopulationFieldAoS, CellPopulationsAreAdjacent) {
  Grid g(4, 3, 2, 1);
  PopulationFieldAoS f(g, 19);
  f(0, 0, 0, 0) = 1.0;
  f(1, 0, 0, 0) = 2.0;
  const std::size_t base = g.idx(0, 0, 0) * 19;
  EXPECT_EQ(f.data()[base + 0], 1.0);
  EXPECT_EQ(f.data()[base + 1], 2.0);
}

TEST(CellField, MaskStoresBytes) {
  Grid g(3, 3, 1, 1);
  MaskField m(g, 0);
  m(1, 1, 0) = 7;
  EXPECT_EQ(m(1, 1, 0), 7);
  EXPECT_EQ(m(0, 0, 0), 0);
  m.fill(2);
  EXPECT_EQ(m(-1, -1, -1), 2);
}

TEST(VectorField, SetAndGetRoundTrip) {
  Grid g(2, 2, 2, 1);
  VectorField v(g);
  v.set(1, 0, 1, {1.0, -2.0, 3.0});
  const Vec3 got = v.at(1, 0, 1);
  EXPECT_EQ(got, (Vec3{1.0, -2.0, 3.0}));
  EXPECT_EQ(v.x()(1, 0, 1), 1.0);
}

TEST(Vec3, Arithmetic) {
  Vec3 a{1, 2, 3}, b{4, 5, 6};
  EXPECT_EQ((a + b), (Vec3{5, 7, 9}));
  EXPECT_EQ((b - a), (Vec3{3, 3, 3}));
  EXPECT_EQ((a * 2.0), (Vec3{2, 4, 6}));
  EXPECT_DOUBLE_EQ(a.dot(b), 32.0);
  EXPECT_DOUBLE_EQ(a.norm2(), 14.0);
}

}  // namespace
}  // namespace swlb
