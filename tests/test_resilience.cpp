// Fault-tolerant runtime: distributed checkpoint generations, failure
// detection (injected kill, lost message, NaN guard) and rollback recovery
// that is bit-identical to an uninterrupted run.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <memory>
#include <numbers>

#include "obs/metrics.hpp"
#include "runtime/resilience.hpp"

namespace swlb::runtime {
namespace {

namespace fs = std::filesystem;

std::string tmpPrefix(const std::string& name) {
  return (fs::temp_directory_path() / name).string();
}

/// Remove every file the controller may have produced under `prefix`.
void removeAll(const std::string& prefix) {
  std::error_code ec;
  const fs::path full(prefix);
  const fs::path dir = full.has_parent_path() ? full.parent_path() : ".";
  const std::string base = full.filename().string();
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (entry.path().filename().string().rfind(base, 0) == 0)
      fs::remove(entry.path(), ec);
  }
}

DistributedSolver<D2Q9>::Config tgvConfig(int n) {
  DistributedSolver<D2Q9>::Config cfg;
  cfg.global = {n, n, 1};
  cfg.collision.omega = 1.3;
  cfg.periodic = {true, true, true};
  cfg.procGrid = {2, 2, 1};
  return cfg;
}

void initTgv(DistributedSolver<D2Q9>& solver, int n) {
  const Real k = 2 * std::numbers::pi_v<Real> / n;
  solver.finalizeMask();
  solver.initField([&](int x, int y, int, Real& rho, Vec3& u) {
    rho = 1.0;
    u = {-0.02 * std::cos(k * (x + Real(0.5))) * std::sin(k * (y + Real(0.5))),
         0.02 * std::sin(k * (x + Real(0.5))) * std::cos(k * (y + Real(0.5))), 0};
  });
}

/// Fault-free reference populations after `steps` steps on 4 ranks.
PopulationField referenceRun(int n, int steps) {
  PopulationField out;
  World world(4);
  world.run([&](Comm& c) {
    DistributedSolver<D2Q9> solver(c, tgvConfig(n));
    initTgv(solver, n);
    solver.run(steps);
    PopulationField g = solver.gatherPopulations(0);
    if (c.rank() == 0) out = std::move(g);
  });
  return out;
}

/// Lid-driven cavity on whatever communicator it is handed: the
/// decomposition adapts to the live rank count (procGrid auto), which is
/// what shrink-to-fit recovery rebuilds after a permanent rank loss.
template <class S = Real>
std::unique_ptr<DistributedSolver<D2Q9, S>> buildCavity(Comm& c, int n) {
  typename DistributedSolver<D2Q9, S>::Config cfg;
  cfg.global = {n, n, 1};
  cfg.collision.omega = 1.3;
  cfg.periodic = {false, false, true};
  auto s = std::make_unique<DistributedSolver<D2Q9, S>>(c, cfg);
  const std::uint8_t lid = s->materials().addMovingWall({0.05, 0, 0});
  s->paintGlobal({{0, n - 1, 0}, {n, n, 1}}, lid);
  s->finalizeMask();
  s->initUniform(1.0, {0, 0, 0});
  return s;
}

void expectBitIdentical(const PopulationField& a, const PopulationField& b) {
  ASSERT_EQ(a.size(), b.size());
  ASSERT_GT(a.size(), 0u);
  for (std::size_t i = 0; i < a.size(); ++i) ASSERT_EQ(a.data()[i], b.data()[i]);
}

TEST(Resilience, InjectedRankKillRollsBackAndResumesBitIdentical) {
  const int n = 24, total = 60;
  const std::string prefix = tmpPrefix("swlb_res_kill");
  removeAll(prefix);
  const PopulationField reference = referenceRun(n, total);

  WorldConfig wcfg;
  wcfg.faults.killRank = 2;
  wcfg.faults.killAtStep = 37;  // between the step-30 and step-40 generations
  World world(4, wcfg);
  PopulationField recovered;
  std::uint64_t recoveries = 0, restoredStep = 0;
  world.run([&](Comm& c) {
    DistributedSolver<D2Q9> solver(c, tgvConfig(n));
    initTgv(solver, n);
    ResilientRunnerConfig<D2Q9> rcfg;
    rcfg.checkpoint.interval = 10;
    rcfg.checkpoint.keep = 2;
    rcfg.fault.recvTimeout = 0.25;
    ResilientRunner<D2Q9> runner(solver, prefix, rcfg);
    const auto rep = runner.run(total);
    EXPECT_EQ(solver.stepsDone(), static_cast<std::uint64_t>(total));
    PopulationField g = solver.gatherPopulations(0);
    if (c.rank() == 0) {
      recovered = std::move(g);
      recoveries = rep.recoveries;
      restoredStep = rep.lastRestoredStep;
    }
  });
  EXPECT_EQ(world.faultStats().kills, 1u);
  EXPECT_EQ(recoveries, 1u);
  EXPECT_EQ(restoredStep, 30u);  // newest complete generation before the kill
  expectBitIdentical(reference, recovered);
  removeAll(prefix);
}

TEST(Resilience, DroppedHaloMessageTimesOutAndRecoversBitIdentical) {
  const int n = 16, total = 40;
  const std::string prefix = tmpPrefix("swlb_res_drop");
  removeAll(prefix);
  const PopulationField reference = referenceRun(n, total);

  WorldConfig wcfg;
  FaultPlan::MessageFault drop;
  drop.action = FaultPlan::Action::Drop;
  drop.src = 0;
  drop.dst = 1;  // any tag: rank 1 is rank 0's wrapped x neighbour, so two
  drop.nth = 25; // flows (+x, -x) each lose their 26th strip in one step
  wcfg.faults.messageFaults.push_back(drop);
  World world(4, wcfg);
  PopulationField recovered;
  std::uint64_t recoveries = 0;
  world.run([&](Comm& c) {
    DistributedSolver<D2Q9> solver(c, tgvConfig(n));
    initTgv(solver, n);
    ResilientRunnerConfig<D2Q9> rcfg;
    rcfg.checkpoint.interval = 10;
    rcfg.fault.recvTimeout = 0.25;
    ResilientRunner<D2Q9> runner(solver, prefix, rcfg);
    const auto rep = runner.run(total);
    PopulationField g = solver.gatherPopulations(0);
    if (c.rank() == 0) {
      recovered = std::move(g);
      recoveries = rep.recoveries;
    }
  });
  EXPECT_EQ(world.faultStats().dropped, 2u);  // both x flows, same step
  EXPECT_EQ(recoveries, 1u);
  expectBitIdentical(reference, recovered);
  removeAll(prefix);
}

TEST(Resilience, NanGuardTripsRollbackAndHeals) {
  const int n = 16, total = 30;
  const std::string prefix = tmpPrefix("swlb_res_nan");
  removeAll(prefix);
  const PopulationField reference = referenceRun(n, total);

  World world(4);
  PopulationField recovered;
  std::uint64_t recoveries = 0;
  std::atomic<bool> injected{false};
  world.run([&](Comm& c) {
    DistributedSolver<D2Q9> solver(c, tgvConfig(n));
    initTgv(solver, n);
    ResilientRunnerConfig<D2Q9> rcfg;
    rcfg.checkpoint.interval = 10;
    rcfg.fault.recvTimeout = 0.25;
    rcfg.guardInterval = 1;
    rcfg.beforeStep = [&](DistributedSolver<D2Q9>& s, std::uint64_t step) {
      if (step == 15 && s.comm().rank() == 1 && !injected.exchange(true))
        s.f()(0, 2, 2, 0) = std::numeric_limits<Real>::quiet_NaN();
    };
    ResilientRunner<D2Q9> runner(solver, prefix, rcfg);
    const auto rep = runner.run(total);
    PopulationField g = solver.gatherPopulations(0);
    if (c.rank() == 0) {
      recovered = std::move(g);
      recoveries = rep.recoveries;
    }
  });
  EXPECT_TRUE(injected.load());
  EXPECT_EQ(recoveries, 1u);
  expectBitIdentical(reference, recovered);
  removeAll(prefix);
}

TEST(Resilience, RestoreSkipsIncompleteGeneration) {
  const int n = 16;
  const std::string prefix = tmpPrefix("swlb_res_incomplete");
  removeAll(prefix);
  World world(4);
  world.run([&](Comm& c) {
    DistributedSolver<D2Q9> solver(c, tgvConfig(n));
    initTgv(solver, n);
    DistributedCheckpointPolicy policy;
    policy.interval = 10;
    policy.keep = 3;
    DistributedCheckpointController<D2Q9> ckpt(c, prefix, policy);
    solver.run(10);
    ckpt.save(solver);
    solver.run(10);
    ckpt.save(solver);
    c.barrier();
    if (c.rank() == 2) {
      // Simulate a crash that tore rank 2's block of the newest
      // generation after its manifest committed.
      std::ofstream os(group_checkpoint_path(ckpt.generationPrefix(20), 2),
                       std::ios::binary | std::ios::trunc);
      os << "torn";
    }
    c.barrier();
    const std::uint64_t restored = ckpt.restoreNewestComplete(solver);
    EXPECT_EQ(restored, 10u);
    EXPECT_EQ(solver.stepsDone(), 10u);
  });
  removeAll(prefix);
}

TEST(Resilience, ControllerRotatesAndRediscoversGenerations) {
  const int n = 16;
  const std::string prefix = tmpPrefix("swlb_res_rotate");
  removeAll(prefix);
  World world(4);
  world.run([&](Comm& c) {
    DistributedSolver<D2Q9> solver(c, tgvConfig(n));
    initTgv(solver, n);
    DistributedCheckpointPolicy policy;
    policy.interval = 5;
    policy.keep = 2;
    {
      DistributedCheckpointController<D2Q9> ckpt(c, prefix, policy);
      for (int i = 0; i < 15; ++i) {
        solver.step();
        ckpt.maybeSave(solver);
      }
      ASSERT_EQ(ckpt.generations().size(), 2u);
      EXPECT_EQ(ckpt.generations().front(), 10u);
      EXPECT_EQ(ckpt.generations().back(), 15u);
      c.barrier();
      // Rotated-out generation is gone from disk.
      EXPECT_FALSE(fs::exists(group_manifest_path(ckpt.generationPrefix(5))));
      EXPECT_FALSE(
          fs::exists(group_checkpoint_path(ckpt.generationPrefix(5), c.rank())));
    }
    c.barrier();
    // A fresh controller (fresh "process") rediscovers what is on disk.
    DistributedCheckpointController<D2Q9> again(c, prefix, policy);
    ASSERT_EQ(again.generations().size(), 2u);
    EXPECT_EQ(again.generations().front(), 10u);
    EXPECT_EQ(again.generations().back(), 15u);
    const std::uint64_t restored = again.restoreNewestComplete(solver);
    EXPECT_EQ(restored, 15u);
  });
  removeAll(prefix);
}

TEST(Resilience, RunnerWithoutFaultsMatchesPlainRunAndCheckpointsRotate) {
  const int n = 16, total = 25;
  const std::string prefix = tmpPrefix("swlb_res_clean");
  removeAll(prefix);
  const PopulationField reference = referenceRun(n, total);

  World world(4);
  PopulationField got;
  world.run([&](Comm& c) {
    DistributedSolver<D2Q9> solver(c, tgvConfig(n));
    initTgv(solver, n);
    ResilientRunnerConfig<D2Q9> rcfg;
    rcfg.checkpoint.interval = 10;
    rcfg.checkpoint.keep = 2;
    rcfg.guardInterval = 5;  // guard on, never trips on a healthy run
    ResilientRunner<D2Q9> runner(solver, prefix, rcfg);
    const auto rep = runner.run(total);
    EXPECT_EQ(rep.recoveries, 0u);
    const auto& gens = runner.checkpoints().generations();
    ASSERT_EQ(gens.size(), 2u);  // keep=2: steps 10 and 20 survive
    EXPECT_EQ(gens.front(), 10u);
    EXPECT_EQ(gens.back(), 20u);
    PopulationField g = solver.gatherPopulations(0);
    if (c.rank() == 0) got = std::move(g);
  });
  expectBitIdentical(reference, got);
  removeAll(prefix);
}

TEST(Resilience, DelayedMessageIsRetriedWithoutRollback) {
  const int n = 16, total = 40;
  const std::string prefix = tmpPrefix("swlb_res_delay");
  removeAll(prefix);
  const PopulationField reference = referenceRun(n, total);

  obs::MetricsRegistry reg;
  WorldConfig wcfg;
  FaultPlan::MessageFault slow;
  slow.action = FaultPlan::Action::Delay;
  slow.src = 0;
  slow.dst = 1;
  slow.nth = 25;
  slow.delay = 0.4;  // beyond the 0.25 s first window, inside the retry
  wcfg.faults.messageFaults.push_back(slow);
  wcfg.metrics = &reg;
  World world(4, wcfg);
  PopulationField recovered;
  std::uint64_t recoveries = 1;
  world.run([&](Comm& c) {
    DistributedSolver<D2Q9> solver(c, tgvConfig(n));
    initTgv(solver, n);
    ResilientRunnerConfig<D2Q9> rcfg;
    rcfg.checkpoint.interval = 10;
    rcfg.fault.recvTimeout = 0.25;
    rcfg.fault.recvRetries = 1;  // one retry, window widening 0.25 -> 0.5 s
    ResilientRunner<D2Q9> runner(solver, prefix, rcfg);
    const auto rep = runner.run(total);
    PopulationField g = solver.gatherPopulations(0);
    if (c.rank() == 0) {
      recovered = std::move(g);
      recoveries = rep.recoveries;
    }
  });
  EXPECT_EQ(world.faultStats().delayed, 2u);  // both x flows, same step
  EXPECT_EQ(recoveries, 0u);                  // absorbed, no rollback
  EXPECT_GE(reg.counterValue("comm.recv_retries"), 1u);
  expectBitIdentical(reference, recovered);
  removeAll(prefix);
}

TEST(Resilience, ScanGenerationsGarbageCollectsOrphans) {
  const int n = 16;
  const std::string prefix = tmpPrefix("swlb_res_gc");
  removeAll(prefix);
  World world(4);
  world.run([&](Comm& c) {
    DistributedSolver<D2Q9> solver(c, tgvConfig(n));
    initTgv(solver, n);
    DistributedCheckpointPolicy policy;
    policy.interval = 10;
    {
      DistributedCheckpointController<D2Q9> ckpt(c, prefix, policy);
      solver.run(10);
      ckpt.save(solver);
    }
    c.barrier();
    if (c.rank() == 0) {
      // Crash debris: blocks of a generation whose manifest never
      // committed, plus stray atomic-write temporaries.
      std::ofstream(prefix + ".g999.rank0.ckpt") << "torn";
      std::ofstream(prefix + ".g999.rank1.ckpt") << "torn";
      std::ofstream(prefix + ".g10.rank0.ckpt.tmp") << "torn";
      std::ofstream(prefix + ".g999.manifest.tmp") << "torn";
    }
    c.barrier();
    // A fresh controller (fresh "process") sweeps the debris on
    // construction and rediscovers only the committed generation.
    DistributedCheckpointController<D2Q9> again(c, prefix, policy);
    ASSERT_EQ(again.generations().size(), 1u);
    EXPECT_EQ(again.generations().front(), 10u);
    if (c.rank() == 0) {
      EXPECT_FALSE(fs::exists(prefix + ".g999.rank0.ckpt"));
      EXPECT_FALSE(fs::exists(prefix + ".g999.rank1.ckpt"));
      EXPECT_FALSE(fs::exists(prefix + ".g10.rank0.ckpt.tmp"));
      EXPECT_FALSE(fs::exists(prefix + ".g999.manifest.tmp"));
      // The committed generation's files survive the sweep.
      EXPECT_TRUE(fs::exists(group_manifest_path(prefix + ".g10")));
      EXPECT_TRUE(fs::exists(group_checkpoint_path(prefix + ".g10", 0)));
    }
    solver.run(5);  // drift, then prove the swept store still restores
    const std::uint64_t restored = again.restoreNewestComplete(solver);
    EXPECT_EQ(restored, 10u);
    EXPECT_EQ(solver.stepsDone(), 10u);
  });
  removeAll(prefix);
}

TEST(Resilience, PermanentRankLossShrinksToFitAndContinues) {
  const int n = 24, total = 60;
  const std::string prefix = tmpPrefix("swlb_res_shrink");
  removeAll(prefix);

  // Fault-free 4-rank cavity reference.
  PopulationField reference;
  {
    World world(4);
    world.run([&](Comm& c) {
      auto s = buildCavity(c, n);
      s->run(total);
      PopulationField g = s->gatherPopulations(0);
      if (c.rank() == 0) reference = std::move(g);
    });
  }

  obs::MetricsRegistry reg;
  WorldConfig wcfg;
  wcfg.faults.killRank = 2;
  wcfg.faults.killAtStep = 37;  // between the step-30 and step-40 generations
  wcfg.faults.killPermanent = true;  // node retired: no respawn
  wcfg.metrics = &reg;
  World world(4, wcfg);
  PopulationField recovered;
  std::uint64_t shrinks = 0, ranksLost = 0, restored = 0;
  int finalRanks = 0;
  world.run([&](Comm& c) {
    auto solver = buildCavity(c, n);
    ResilientRunnerConfig<D2Q9> rcfg;
    rcfg.checkpoint.interval = 10;
    rcfg.checkpoint.keep = 8;  // keep .g30 for the comparison runs below
    rcfg.fault.recvTimeout = 0.25;
    rcfg.fault.maxShrinks = 1;
    rcfg.rebuild = [n](Comm& cc) { return buildCavity(cc, n); };
    ResilientRunner<D2Q9> runner(*solver, prefix, rcfg);
    // Rank 2's thread unwinds via RankKilledError here; survivors shrink
    // around it and keep running.
    const auto rep = runner.run(total);
    EXPECT_EQ(runner.solver().stepsDone(), static_cast<std::uint64_t>(total));
    PopulationField g = runner.solver().gatherPopulations(0);
    if (c.rank() == 0) {
      recovered = std::move(g);
      shrinks = rep.shrinks;
      ranksLost = rep.ranksLost;
      restored = rep.lastRestoredStep;
      finalRanks = c.size();
    }
  });
  EXPECT_EQ(world.faultStats().kills, 1u);
  EXPECT_EQ(world.deadRanks(), std::vector<int>{2});
  EXPECT_EQ(shrinks, 1u);
  EXPECT_EQ(ranksLost, 1u);
  EXPECT_EQ(restored, 30u);  // newest complete generation before the kill
  EXPECT_EQ(finalRanks, 3);
  EXPECT_GE(reg.counterValue("resilience.shrink.count"), 1u);
  EXPECT_GE(reg.counterValue("resilience.shrink.ranks_lost"), 1u);
  EXPECT_GE(reg.histogramSummary("resilience.downtime_seconds").count, 1u);

  // A fresh 3-rank run restored from the same generation must continue
  // bit-identically to the shrunken survivors (f64 path) ...
  PopulationField fresh;
  {
    World w3(3);
    w3.run([&](Comm& c) {
      auto s = buildCavity(c, n);
      load_group_checkpoint_elastic(*s, prefix + ".g30");
      EXPECT_EQ(s->stepsDone(), 30u);
      s->run(total - 30);
      PopulationField g = s->gatherPopulations(0);
      if (c.rank() == 0) fresh = std::move(g);
    });
  }
  expectBitIdentical(recovered, fresh);
  // ... and the whole recovered trajectory matches the fault-free one
  // (per-cell collision + bitwise halo copies are layout-independent).
  expectBitIdentical(reference, recovered);
  removeAll(prefix);
}

TEST(Resilience, SpliceRestoreComposesWithCrossPrecisionCheckpoints) {
  const int n = 16, steps = 20;
  const std::string prefix = tmpPrefix("swlb_res_xprec");
  removeAll(prefix);
  const std::string gp = prefix + ".g20";

  // Write an f32-storage generation at 4 ranks; keep its decoded gather.
  PopulationField saved;
  {
    World world(4);
    world.run([&](Comm& c) {
      auto s = buildCavity<float>(c, n);
      s->run(steps);
      save_group_checkpoint(*s, gp);
      PopulationField g = s->gatherPopulations(0);
      if (c.rank() == 0) saved = std::move(g);
    });
  }

  // Same-precision splice at 3 ranks: raw storage copy, bit-exact.
  PopulationField at3f32;
  {
    World world(3);
    world.run([&](Comm& c) {
      auto s = buildCavity<float>(c, n);
      load_group_checkpoint_elastic(*s, gp);
      EXPECT_EQ(s->stepsDone(), 20u);
      PopulationField g = s->gatherPopulations(0);
      if (c.rank() == 0) at3f32 = std::move(g);
    });
  }
  expectBitIdentical(saved, at3f32);

  // Cross-precision splice at 3 ranks: the f32 file decodes into the f64
  // field exactly as the f32 solver's own gather decodes it.
  PopulationField at3f64;
  {
    World world(3);
    world.run([&](Comm& c) {
      auto s = buildCavity<Real>(c, n);
      load_group_checkpoint_elastic(*s, gp);
      EXPECT_EQ(s->stepsDone(), 20u);
      PopulationField g = s->gatherPopulations(0);
      if (c.rank() == 0) at3f64 = std::move(g);
    });
  }
  expectBitIdentical(saved, at3f64);
  removeAll(prefix);
}

}  // namespace
}  // namespace swlb::runtime
