// Fault-tolerant runtime: distributed checkpoint generations, failure
// detection (injected kill, lost message, NaN guard) and rollback recovery
// that is bit-identical to an uninterrupted run.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <numbers>

#include "runtime/resilience.hpp"

namespace swlb::runtime {
namespace {

namespace fs = std::filesystem;

std::string tmpPrefix(const std::string& name) {
  return (fs::temp_directory_path() / name).string();
}

/// Remove every file the controller may have produced under `prefix`.
void removeAll(const std::string& prefix) {
  std::error_code ec;
  const fs::path full(prefix);
  const fs::path dir = full.has_parent_path() ? full.parent_path() : ".";
  const std::string base = full.filename().string();
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (entry.path().filename().string().rfind(base, 0) == 0)
      fs::remove(entry.path(), ec);
  }
}

DistributedSolver<D2Q9>::Config tgvConfig(int n) {
  DistributedSolver<D2Q9>::Config cfg;
  cfg.global = {n, n, 1};
  cfg.collision.omega = 1.3;
  cfg.periodic = {true, true, true};
  cfg.procGrid = {2, 2, 1};
  return cfg;
}

void initTgv(DistributedSolver<D2Q9>& solver, int n) {
  const Real k = 2 * std::numbers::pi_v<Real> / n;
  solver.finalizeMask();
  solver.initField([&](int x, int y, int, Real& rho, Vec3& u) {
    rho = 1.0;
    u = {-0.02 * std::cos(k * (x + Real(0.5))) * std::sin(k * (y + Real(0.5))),
         0.02 * std::sin(k * (x + Real(0.5))) * std::cos(k * (y + Real(0.5))), 0};
  });
}

/// Fault-free reference populations after `steps` steps on 4 ranks.
PopulationField referenceRun(int n, int steps) {
  PopulationField out;
  World world(4);
  world.run([&](Comm& c) {
    DistributedSolver<D2Q9> solver(c, tgvConfig(n));
    initTgv(solver, n);
    solver.run(steps);
    PopulationField g = solver.gatherPopulations(0);
    if (c.rank() == 0) out = std::move(g);
  });
  return out;
}

void expectBitIdentical(const PopulationField& a, const PopulationField& b) {
  ASSERT_EQ(a.size(), b.size());
  ASSERT_GT(a.size(), 0u);
  for (std::size_t i = 0; i < a.size(); ++i) ASSERT_EQ(a.data()[i], b.data()[i]);
}

TEST(Resilience, InjectedRankKillRollsBackAndResumesBitIdentical) {
  const int n = 24, total = 60;
  const std::string prefix = tmpPrefix("swlb_res_kill");
  removeAll(prefix);
  const PopulationField reference = referenceRun(n, total);

  WorldConfig wcfg;
  wcfg.faults.killRank = 2;
  wcfg.faults.killAtStep = 37;  // between the step-30 and step-40 generations
  World world(4, wcfg);
  PopulationField recovered;
  std::uint64_t recoveries = 0, restoredStep = 0;
  world.run([&](Comm& c) {
    DistributedSolver<D2Q9> solver(c, tgvConfig(n));
    initTgv(solver, n);
    ResilientRunnerConfig<D2Q9> rcfg;
    rcfg.checkpoint.interval = 10;
    rcfg.checkpoint.keep = 2;
    rcfg.recvTimeout = 0.25;
    ResilientRunner<D2Q9> runner(solver, prefix, rcfg);
    const auto rep = runner.run(total);
    EXPECT_EQ(solver.stepsDone(), static_cast<std::uint64_t>(total));
    PopulationField g = solver.gatherPopulations(0);
    if (c.rank() == 0) {
      recovered = std::move(g);
      recoveries = rep.recoveries;
      restoredStep = rep.lastRestoredStep;
    }
  });
  EXPECT_EQ(world.faultStats().kills, 1u);
  EXPECT_EQ(recoveries, 1u);
  EXPECT_EQ(restoredStep, 30u);  // newest complete generation before the kill
  expectBitIdentical(reference, recovered);
  removeAll(prefix);
}

TEST(Resilience, DroppedHaloMessageTimesOutAndRecoversBitIdentical) {
  const int n = 16, total = 40;
  const std::string prefix = tmpPrefix("swlb_res_drop");
  removeAll(prefix);
  const PopulationField reference = referenceRun(n, total);

  WorldConfig wcfg;
  FaultPlan::MessageFault drop;
  drop.action = FaultPlan::Action::Drop;
  drop.src = 0;
  drop.dst = 1;  // any tag: rank 1 is rank 0's wrapped x neighbour, so two
  drop.nth = 25; // flows (+x, -x) each lose their 26th strip in one step
  wcfg.faults.messageFaults.push_back(drop);
  World world(4, wcfg);
  PopulationField recovered;
  std::uint64_t recoveries = 0;
  world.run([&](Comm& c) {
    DistributedSolver<D2Q9> solver(c, tgvConfig(n));
    initTgv(solver, n);
    ResilientRunnerConfig<D2Q9> rcfg;
    rcfg.checkpoint.interval = 10;
    rcfg.recvTimeout = 0.25;
    ResilientRunner<D2Q9> runner(solver, prefix, rcfg);
    const auto rep = runner.run(total);
    PopulationField g = solver.gatherPopulations(0);
    if (c.rank() == 0) {
      recovered = std::move(g);
      recoveries = rep.recoveries;
    }
  });
  EXPECT_EQ(world.faultStats().dropped, 2u);  // both x flows, same step
  EXPECT_EQ(recoveries, 1u);
  expectBitIdentical(reference, recovered);
  removeAll(prefix);
}

TEST(Resilience, NanGuardTripsRollbackAndHeals) {
  const int n = 16, total = 30;
  const std::string prefix = tmpPrefix("swlb_res_nan");
  removeAll(prefix);
  const PopulationField reference = referenceRun(n, total);

  World world(4);
  PopulationField recovered;
  std::uint64_t recoveries = 0;
  std::atomic<bool> injected{false};
  world.run([&](Comm& c) {
    DistributedSolver<D2Q9> solver(c, tgvConfig(n));
    initTgv(solver, n);
    ResilientRunnerConfig<D2Q9> rcfg;
    rcfg.checkpoint.interval = 10;
    rcfg.recvTimeout = 0.25;
    rcfg.guardInterval = 1;
    rcfg.beforeStep = [&](DistributedSolver<D2Q9>& s, std::uint64_t step) {
      if (step == 15 && s.comm().rank() == 1 && !injected.exchange(true))
        s.f()(0, 2, 2, 0) = std::numeric_limits<Real>::quiet_NaN();
    };
    ResilientRunner<D2Q9> runner(solver, prefix, rcfg);
    const auto rep = runner.run(total);
    PopulationField g = solver.gatherPopulations(0);
    if (c.rank() == 0) {
      recovered = std::move(g);
      recoveries = rep.recoveries;
    }
  });
  EXPECT_TRUE(injected.load());
  EXPECT_EQ(recoveries, 1u);
  expectBitIdentical(reference, recovered);
  removeAll(prefix);
}

TEST(Resilience, RestoreSkipsIncompleteGeneration) {
  const int n = 16;
  const std::string prefix = tmpPrefix("swlb_res_incomplete");
  removeAll(prefix);
  World world(4);
  world.run([&](Comm& c) {
    DistributedSolver<D2Q9> solver(c, tgvConfig(n));
    initTgv(solver, n);
    DistributedCheckpointPolicy policy;
    policy.interval = 10;
    policy.keep = 3;
    DistributedCheckpointController<D2Q9> ckpt(c, prefix, policy);
    solver.run(10);
    ckpt.save(solver);
    solver.run(10);
    ckpt.save(solver);
    c.barrier();
    if (c.rank() == 2) {
      // Simulate a crash that tore rank 2's block of the newest
      // generation after its manifest committed.
      std::ofstream os(group_checkpoint_path(ckpt.generationPrefix(20), 2),
                       std::ios::binary | std::ios::trunc);
      os << "torn";
    }
    c.barrier();
    const std::uint64_t restored = ckpt.restoreNewestComplete(solver);
    EXPECT_EQ(restored, 10u);
    EXPECT_EQ(solver.stepsDone(), 10u);
  });
  removeAll(prefix);
}

TEST(Resilience, ControllerRotatesAndRediscoversGenerations) {
  const int n = 16;
  const std::string prefix = tmpPrefix("swlb_res_rotate");
  removeAll(prefix);
  World world(4);
  world.run([&](Comm& c) {
    DistributedSolver<D2Q9> solver(c, tgvConfig(n));
    initTgv(solver, n);
    DistributedCheckpointPolicy policy;
    policy.interval = 5;
    policy.keep = 2;
    {
      DistributedCheckpointController<D2Q9> ckpt(c, prefix, policy);
      for (int i = 0; i < 15; ++i) {
        solver.step();
        ckpt.maybeSave(solver);
      }
      ASSERT_EQ(ckpt.generations().size(), 2u);
      EXPECT_EQ(ckpt.generations().front(), 10u);
      EXPECT_EQ(ckpt.generations().back(), 15u);
      c.barrier();
      // Rotated-out generation is gone from disk.
      EXPECT_FALSE(fs::exists(group_manifest_path(ckpt.generationPrefix(5))));
      EXPECT_FALSE(
          fs::exists(group_checkpoint_path(ckpt.generationPrefix(5), c.rank())));
    }
    c.barrier();
    // A fresh controller (fresh "process") rediscovers what is on disk.
    DistributedCheckpointController<D2Q9> again(c, prefix, policy);
    ASSERT_EQ(again.generations().size(), 2u);
    EXPECT_EQ(again.generations().front(), 10u);
    EXPECT_EQ(again.generations().back(), 15u);
    const std::uint64_t restored = again.restoreNewestComplete(solver);
    EXPECT_EQ(restored, 15u);
  });
  removeAll(prefix);
}

TEST(Resilience, RunnerWithoutFaultsMatchesPlainRunAndCheckpointsRotate) {
  const int n = 16, total = 25;
  const std::string prefix = tmpPrefix("swlb_res_clean");
  removeAll(prefix);
  const PopulationField reference = referenceRun(n, total);

  World world(4);
  PopulationField got;
  world.run([&](Comm& c) {
    DistributedSolver<D2Q9> solver(c, tgvConfig(n));
    initTgv(solver, n);
    ResilientRunnerConfig<D2Q9> rcfg;
    rcfg.checkpoint.interval = 10;
    rcfg.checkpoint.keep = 2;
    rcfg.guardInterval = 5;  // guard on, never trips on a healthy run
    ResilientRunner<D2Q9> runner(solver, prefix, rcfg);
    const auto rep = runner.run(total);
    EXPECT_EQ(rep.recoveries, 0u);
    const auto& gens = runner.checkpoints().generations();
    ASSERT_EQ(gens.size(), 2u);  // keep=2: steps 10 and 20 survive
    EXPECT_EQ(gens.front(), 10u);
    EXPECT_EQ(gens.back(), 20u);
    PopulationField g = solver.gatherPopulations(0);
    if (c.rank() == 0) got = std::move(g);
  });
  expectBitIdentical(reference, got);
  removeAll(prefix);
}

}  // namespace
}  // namespace swlb::runtime
